package gdi_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/analytics"
	"github.com/gdi-go/gdi/internal/kron"
)

// The HTAP coherence tier: snapshot analytics (internal/analytics HTAP
// sessions over internal/snapshot cuts) running concurrently with live OLTP
// writers and optimistic readers. The load-bearing invariants:
//
//   - cut stability: PageRank over a pinned cut is bit-identical to the
//     quiesced result from before the writes started, no matter how many
//     commits land mid-iteration;
//   - fold equivalence: refreshing a session by folding the delta log is
//     bit-identical to rebuilding the CSR from scratch (the golden test);
//   - arena hygiene: dropping a session mid-run returns every retired block
//     version, leaving the arena at zero bytes;
//   - conservation: every committed create survives to the quiesced end
//     state (TestHTAPCoherenceStress, run under -race in CI).

// htapGraph loads a deterministic Kronecker graph into a database with the
// snapshot subsystem (and the dense analytics engine it feeds) enabled.
func htapGraph(t *testing.T, ranks int, cfg kron.Config, optimistic bool) (*gdi.Runtime, *gdi.Database, *analytics.Graph) {
	t.Helper()
	cfg = cfg.WithDefaults()
	rt := gdi.Init(ranks)
	db := rt.CreateDatabase(gdi.DatabaseParams{
		BlockSize:       512,
		BlocksPerRank:   1 << 16,
		DenseAnalytics:  true,
		HTAPSnapshots:   true,
		OptimisticReads: optimistic,
	})
	sch, err := kron.DefineSchema(db.Engine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var loadErr error
	var mu sync.Mutex
	rt.Run(db, func(p *gdi.Process) {
		n := p.Size()
		if err := p.BulkLoadVertices(kron.VerticesFor(cfg, sch, int(p.Rank()), n)); err == nil {
			err = p.BulkLoadEdges(kron.EdgesFor(cfg, sch, int(p.Rank()), n))
		} else {
			mu.Lock()
			loadErr = err
			mu.Unlock()
		}
	})
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	return rt, db, &analytics.Graph{DB: db, Schema: sch}
}

// quiescedPageRank runs dense PageRank on the idle database and merges the
// per-rank shard maps.
func quiescedPageRank(t *testing.T, rt *gdi.Runtime, db *gdi.Database, g *analytics.Graph, iters int) map[uint64]float64 {
	t.Helper()
	out := make(map[uint64]float64)
	var mu sync.Mutex
	rt.Run(db, func(p *gdi.Process) {
		pr, _, err := analytics.PageRank(p, g, iters, 0.85)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		for k, v := range pr {
			out[k] = v
		}
		mu.Unlock()
	})
	return out
}

// samePageRank requires exact (bit-identical) equality of two merged
// PageRank maps.
func samePageRank(t *testing.T, what string, got, want map[uint64]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vertices, want %d", what, len(got), len(want))
	}
	for k, w := range want {
		v, ok := got[k]
		if !ok {
			t.Fatalf("%s: vertex %d missing", what, k)
		}
		if v != w {
			t.Fatalf("%s: vertex %d = %v, want %v (not bit-identical)", what, k, v, w)
		}
	}
}

// htapWriter commits ops local read-write transactions from the given rank:
// even rounds create a fresh vertex plus an edge to an existing one, odd
// rounds add an edge between two existing vertices. Transient transaction
// aborts are retried by moving on, exactly like an OLTP driver; created
// counts only committed creates.
func htapWriter(db *gdi.Database, rank gdi.Rank, seed int64, ops int, base uint64, existing uint64, report func(error)) (commits, created int64) {
	rng := rand.New(rand.NewSource(seed))
	p := db.Process(rank)
	for i := 0; i < ops; i++ {
		tx := p.StartTransaction(gdi.ReadWrite)
		oldApp := uint64(rng.Intn(int(existing)))
		old, err := tx.TranslateVertexID(oldApp)
		if err != nil {
			tx.Abort()
			if errors.Is(err, gdi.ErrTransactionCritical) || errors.Is(err, gdi.ErrNotFound) {
				continue
			}
			report(err)
			return
		}
		madeVertex := false
		if i%2 == 0 {
			nv, err := tx.CreateVertex(base + uint64(i))
			if err != nil {
				tx.Abort()
				if errors.Is(err, gdi.ErrTransactionCritical) {
					continue
				}
				report(err)
				return
			}
			_, err = tx.CreateEdge(nv, old, gdi.DirOut, 0)
			if err != nil {
				tx.Abort()
				if errors.Is(err, gdi.ErrTransactionCritical) {
					continue
				}
				report(err)
				return
			}
			madeVertex = true
		} else {
			otherApp := uint64(rng.Intn(int(existing)))
			other, err := tx.TranslateVertexID(otherApp)
			if err != nil {
				tx.Abort()
				if errors.Is(err, gdi.ErrTransactionCritical) || errors.Is(err, gdi.ErrNotFound) {
					continue
				}
				report(err)
				return
			}
			if _, err := tx.CreateEdge(old, other, gdi.DirUndirected, 0); err != nil {
				tx.Abort()
				if errors.Is(err, gdi.ErrTransactionCritical) {
					continue
				}
				report(err)
				return
			}
		}
		if err := tx.Commit(); err != nil {
			if errors.Is(err, gdi.ErrTransactionCritical) {
				continue
			}
			report(err)
			return
		}
		commits++
		if madeVertex {
			created++
		}
	}
	return commits, created
}

func TestHTAPOpenRequiresKnob(t *testing.T) {
	rt := gdi.Init(2)
	defer rt.Finalize()
	db := rt.CreateDatabase(gdi.DatabaseParams{BlockSize: 256, BlocksPerRank: 1 << 12, DenseAnalytics: true})
	g := &analytics.Graph{DB: db}
	rt.Run(db, func(p *gdi.Process) {
		if _, err := analytics.OpenHTAP(p, g); err == nil {
			t.Error("OpenHTAP succeeded without HTAPSnapshots")
		}
	})
}

// TestHTAPCutStableUnderWrites pins a cut, lets writers commit hundreds of
// transactions while PageRank iterates over it, and requires the result to be
// bit-identical to the quiesced pre-write answer. After the writers drain, a
// Refresh must land the session on the post-write state, again bit-identical
// to a quiesced rerun.
func TestHTAPCutStableUnderWrites(t *testing.T) {
	const (
		ranks   = 4
		scale   = 8
		writers = 3
		ops     = 120
		iters   = 20
	)
	cfg := kron.Config{Scale: scale, EdgeFactor: 8, Seed: 7}
	rt, db, g := htapGraph(t, ranks, cfg, false)
	defer rt.Finalize()
	nVerts := uint64(1) << scale

	before := quiescedPageRank(t, rt, db, g, iters)

	var (
		mu       sync.Mutex
		firstErr error
		duringPR = make(map[uint64]float64)
		afterPR  = make(map[uint64]float64)
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	start := make(chan struct{})
	writersDone := make(chan struct{})
	var wwg sync.WaitGroup
	totalCommits, totalCreated := int64(0), int64(0)
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			<-start
			c, n := htapWriter(db, gdi.Rank(w%ranks), int64(w)*977+13, ops,
				uint64(1)<<33+uint64(w)<<20, nVerts, report)
			mu.Lock()
			totalCommits += c
			totalCreated += n
			mu.Unlock()
		}(w)
	}
	go func() {
		wwg.Wait()
		close(writersDone)
	}()

	snap := db.Engine().Snapshots()
	rt.Run(db, func(p *gdi.Process) {
		s, err := analytics.OpenHTAP(p, g)
		if err != nil {
			report(err)
			return
		}
		p.Barrier()
		if p.Rank() == 0 {
			close(start)
		}
		pr, _, err := s.PageRank(iters, 0.85)
		if err != nil {
			report(err)
			return
		}
		mu.Lock()
		for k, v := range pr {
			duringPR[k] = v
		}
		mu.Unlock()
		<-writersDone
		p.Barrier()
		if p.Rank() == 0 && snap.ArenaBytes() == 0 {
			report(errors.New("no block version was retired while the cut was pinned"))
		}
		if err := s.Refresh(); err != nil {
			report(err)
			return
		}
		pr2, _, err := s.PageRank(iters, 0.85)
		if err != nil {
			report(err)
			return
		}
		mu.Lock()
		for k, v := range pr2 {
			afterPR[k] = v
		}
		mu.Unlock()
		s.Close()
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if totalCommits == 0 {
		t.Fatal("no writer transaction ever committed")
	}
	samePageRank(t, "PageRank over the pinned cut", duringPR, before)

	after := quiescedPageRank(t, rt, db, g, iters)
	if len(after) != len(before)+int(totalCreated) {
		t.Fatalf("post-write graph has %d vertices, want %d + %d created", len(after), len(before), totalCreated)
	}
	samePageRank(t, "PageRank after Refresh", afterPR, after)
	if got := snap.ArenaBytes(); got != 0 {
		t.Fatalf("arena holds %d bytes after the session closed", got)
	}
	if snap.RetiredBlocks() == 0 {
		t.Fatal("writers never retired a block version")
	}
	t.Logf("commits: %d (created %d); retired versions: %d; cuts: %d; folds: %d",
		totalCommits, totalCreated, snap.RetiredBlocks(), snap.CutsAcquired(), snap.DeltaFolds())
}

// TestHTAPFoldBitIdenticalToRebuild is the golden equivalence test: after a
// batch of creates, adjacency updates, and a delete, a session refreshed by
// folding the delta log must produce exactly the CSR a freshly opened session
// rebuilds from block reads — held to bit-identical PageRank output.
func TestHTAPFoldBitIdenticalToRebuild(t *testing.T) {
	const ranks = 4
	cfg := kron.Config{Scale: 7, EdgeFactor: 8, Seed: 11}
	rt, db, g := htapGraph(t, ranks, cfg, false)
	defer rt.Finalize()

	var (
		mu       sync.Mutex
		firstErr error
		foldPR   = make(map[uint64]float64)
		fullPR   = make(map[uint64]float64)
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	eng := db.Engine()
	rt.Run(db, func(p *gdi.Process) {
		s, err := analytics.OpenHTAP(p, g)
		if err != nil {
			report(err)
			return
		}
		p.Barrier()
		if p.Rank() == 0 {
			// One writer, quiesced around the barriers: creates, an adjacency
			// rewrite, and a delete — every delta-record kind.
			tx := p.StartTransaction(gdi.ReadWrite)
			a, err := tx.CreateVertex(1 << 40)
			if err == nil {
				var old gdi.VertexID
				if old, err = tx.TranslateVertexID(3); err == nil {
					_, err = tx.CreateEdge(a, old, gdi.DirOut, 0)
				}
				var o2 gdi.VertexID
				if err == nil {
					if o2, err = tx.TranslateVertexID(5); err == nil {
						_, err = tx.CreateEdge(old, o2, gdi.DirUndirected, 0)
					}
				}
				var victim gdi.VertexID
				if err == nil {
					if victim, err = tx.TranslateVertexID(9); err == nil {
						err = tx.DeleteVertex(victim)
					}
				}
			}
			if err == nil {
				err = tx.Commit()
			} else {
				tx.Abort()
			}
			if err != nil {
				report(err)
			}
		}
		p.Barrier()
		foldsBefore := eng.DeltaFolds()
		if err := s.Refresh(); err != nil {
			report(err)
			return
		}
		if p.Rank() == 0 && eng.DeltaFolds() != foldsBefore+1 {
			report(fmt.Errorf("refresh fell back to a rebuild: folds %d -> %d", foldsBefore, eng.DeltaFolds()))
		}
		pr, _, err := s.PageRank(15, 0.85)
		if err != nil {
			report(err)
			return
		}
		s2, err := analytics.OpenHTAP(p, g)
		if err != nil {
			report(err)
			return
		}
		pr2, _, err := s2.PageRank(15, 0.85)
		if err != nil {
			report(err)
			return
		}
		mu.Lock()
		for k, v := range pr {
			foldPR[k] = v
		}
		for k, v := range pr2 {
			fullPR[k] = v
		}
		mu.Unlock()
		s2.Close()
		s.Close()
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	samePageRank(t, "folded session vs full rebuild", foldPR, fullPR)
	if got := db.Engine().Snapshots().ArenaBytes(); got != 0 {
		t.Fatalf("arena holds %d bytes after both sessions closed", got)
	}
}

// TestHTAPArenaLeakOnDrop abandons an analytics run mid-iteration via the
// non-collective Drop and requires every retired block version to be
// released: the arena must return to exactly zero bytes (the leak fix this
// PR ships a regression test for).
func TestHTAPArenaLeakOnDrop(t *testing.T) {
	const ranks = 4
	cfg := kron.Config{Scale: 7, EdgeFactor: 8, Seed: 3}
	rt, db, g := htapGraph(t, ranks, cfg, false)
	defer rt.Finalize()

	var (
		mu       sync.Mutex
		firstErr error
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	snap := db.Engine().Snapshots()
	rt.Run(db, func(p *gdi.Process) {
		s, err := analytics.OpenHTAP(p, g)
		if err != nil {
			report(err)
			return
		}
		p.Barrier()
		// Every rank rewrites a few of its vertices while the cut is pinned,
		// forcing retirement of the overwritten block versions.
		c, _ := htapWriter(db, p.Rank(), int64(p.Rank())*31+7, 20,
			uint64(1)<<34+uint64(p.Rank())<<20, 1<<7, report)
		if c == 0 {
			report(fmt.Errorf("rank %d: no writer commit landed", p.Rank()))
		}
		// Check before the barrier: once any rank passes it, it may Drop the
		// shared cut and legitimately empty the arena.
		if snap.ArenaBytes() == 0 {
			report(fmt.Errorf("rank %d: writes under a pinned cut retired nothing", p.Rank()))
		}
		p.Barrier()
		// Abandon the run mid-iteration: no collective Close, just Drop from
		// every rank (idempotent on the shared cut).
		s.Drop()
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if got := snap.ArenaBytes(); got != 0 {
		t.Fatalf("arena leaked %d bytes after Drop", got)
	}
	if snap.RetiredBlocks() == 0 {
		t.Fatal("stress produced no retired versions; the leak check tested nothing")
	}
}

// TestHTAPReplicatedCommitsUnderPinnedCut is the replication/snapshot
// interplay test: fixed-size property rewrites on k=3 replicated vertices
// commit while an HTAP cut is pinned. The commit path then does three things
// at once — retires the primary's overwritten block versions into the cut,
// fans the new content to the follower chains through the same write-back
// train, and bumps the mirror words — and the invariants are:
//
//   - the mirror fan-out must NOT retire follower blocks into the cut (the
//     mirror trains fire no release hook; only the primary's release does),
//     so the arena drains to exactly zero when the session closes;
//   - follower chains are invisible to analytics (they live in the replica
//     directory, not the local vertex index), so PageRank over the pinned
//     cut stays bit-identical to the pre-write answer and a post-Refresh
//     rank equals a quiesced rerun;
//   - the fan-out keeps every follower in lockstep across the pinned cut:
//     zero drops, and once the writers drain a replica-served optimistic
//     read returns exactly the last committed value.
func TestHTAPReplicatedCommitsUnderPinnedCut(t *testing.T) {
	const (
		ranks        = 4
		scale        = 7
		keysPerRank  = 32
		writeOps     = 96
		readOps      = 64
		payloadBytes = 32
		replicaK     = 3
		iters        = 15
	)
	cfg := kron.Config{Scale: scale, EdgeFactor: 8, Seed: 31}
	rt, db, g := htapGraph(t, ranks, cfg, true)
	defer rt.Finalize()

	payload, err := db.DefinePType("replpayload", gdi.PTypeSpec{Datatype: gdi.TypeBytes})
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu       sync.Mutex
		firstErr error
		duringPR = make(map[uint64]float64)
		afterPR  = make(map[uint64]float64)
		lasts    = make([]map[uint64]byte, ranks)
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// writeVal commits one fixed-size payload write, retried past transient
	// aborts; false means it never committed (and wrote nothing).
	writeVal := func(p *gdi.Process, app uint64, v byte) bool {
		for try := 0; try < 8; try++ {
			tx := p.StartTransaction(gdi.ReadWrite)
			dp, err := tx.TranslateVertexID(app)
			if err != nil {
				tx.Abort()
				if errors.Is(err, gdi.ErrTransactionCritical) {
					continue
				}
				report(err)
				return false
			}
			h, err := tx.AssociateVertex(dp)
			if err != nil {
				tx.Abort()
				continue
			}
			wp := make([]byte, payloadBytes)
			wp[0] = v
			if err := h.SetProperty(payload, wp); err != nil {
				tx.Abort()
				report(err)
				return false
			}
			if err := tx.Commit(); err == nil {
				return true
			}
		}
		return false
	}
	// readVal runs one optimistic read of the payload byte; false means the
	// read did not validate (fine while writers race, an error once drained).
	readVal := func(p *gdi.Process, app uint64) (byte, bool) {
		tx := p.StartTransaction(gdi.ReadOnly)
		dp, err := tx.TranslateVertexID(app)
		if err != nil {
			tx.Abort()
			return 0, false
		}
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			tx.Abort()
			return 0, false
		}
		val, ok := h.Property(payload)
		if !ok || len(val) != payloadBytes {
			tx.Abort()
			return 0, false
		}
		v := val[0]
		if err := tx.Commit(); err != nil {
			return 0, false
		}
		return v, true
	}

	// Seed the payload at its fixed size on every key we will rewrite: shape
	// changes are free before any follower chain exists, and from here on
	// every write keeps the holder shape constant.
	rt.Run(db, func(p *gdi.Process) {
		me, n := int(p.Rank()), p.Size()
		for j := 0; j < keysPerRank; j++ {
			if !writeVal(p, uint64(me+j*n), 0) {
				report(fmt.Errorf("rank %d: seeding key %d never committed", me, j))
			}
		}
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	before := quiescedPageRank(t, rt, db, g, iters)

	var seeded int64
	rt.Run(db, func(p *gdi.Process) {
		n := int64(p.Replicate(replicaK))
		mu.Lock()
		seeded += n
		mu.Unlock()
	})
	if seeded == 0 {
		t.Fatal("Replicate seeded no follower chains")
	}

	snap := db.Engine().Snapshots()
	retiredBefore := snap.RetiredBlocks()

	rt.Run(db, func(p *gdi.Process) {
		me, n := int(p.Rank()), p.Size()
		s, err := analytics.OpenHTAP(p, g)
		if err != nil {
			report(err)
			return
		}
		p.Barrier()
		// Replicated rewrites while the cut is pinned.
		last := make(map[uint64]byte, keysPerRank)
		for i := 0; i < writeOps; i++ {
			app := uint64(me + (i%keysPerRank)*n)
			v := byte(i + 1)
			if writeVal(p, app, v) {
				last[app] = v
			}
		}
		mu.Lock()
		lasts[me] = last
		mu.Unlock()
		// Optimistic reads of the previous rank's keys: its follower chains
		// live here, so these are replica-served, each validated against the
		// primary's version word. Racing its writer may abort them; at least
		// one must land.
		prev := (me + n - 1) % n
		okReads := 0
		for i := 0; i < readOps; i++ {
			if _, ok := readVal(p, uint64(prev+(i%keysPerRank)*n)); ok {
				okReads++
			}
		}
		if okReads == 0 {
			report(fmt.Errorf("rank %d: no optimistic read validated", me))
		}
		// The pinned cut must not have seen any of it.
		pr, _, err := s.PageRank(iters, 0.85)
		if err != nil {
			report(err)
			return
		}
		mu.Lock()
		for k, v := range pr {
			duringPR[k] = v
		}
		mu.Unlock()
		p.Barrier()
		if p.Rank() == 0 && snap.ArenaBytes() == 0 {
			report(errors.New("replicated writes under the pinned cut retired nothing"))
		}
		if err := s.Refresh(); err != nil {
			report(err)
			return
		}
		pr2, _, err := s.PageRank(iters, 0.85)
		if err != nil {
			report(err)
			return
		}
		mu.Lock()
		for k, v := range pr2 {
			afterPR[k] = v
		}
		mu.Unlock()
		s.Close()
		p.Barrier()
		// Writers drained: a replica-served read of the previous rank's keys
		// must return exactly its last committed value — the fan-out kept
		// the followers in lockstep across the pinned cut.
		mu.Lock()
		want := lasts[prev]
		mu.Unlock()
		for app, wantV := range want {
			got, ok := readVal(p, app)
			if !ok {
				report(fmt.Errorf("rank %d: quiesced read of key %d did not validate", me, app))
				continue
			}
			if got != wantV {
				report(fmt.Errorf("rank %d: key %d = %d, want last committed %d", me, app, got, wantV))
			}
		}
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	samePageRank(t, "PageRank over the cut pinned across replicated commits", duringPR, before)
	after := quiescedPageRank(t, rt, db, g, iters)
	samePageRank(t, "PageRank after Refresh", afterPR, after)
	if snap.RetiredBlocks() == retiredBefore {
		t.Fatal("no block version was retired by the replicated writes")
	}
	if got := snap.ArenaBytes(); got != 0 {
		t.Fatalf("arena holds %d bytes after the session closed (follower fan-out must not retire)", got)
	}
	st := db.ReplicaStats()
	if st.Reads == 0 {
		t.Fatal("no read was served by a follower chain")
	}
	if st.Drops != 0 {
		t.Fatalf("fixed-size fan-out dropped %d follower groups under the pinned cut", st.Drops)
	}
	t.Logf("seeded: %d chains; replica reads: %d; retired: %d; reseeds: %d",
		seeded, st.Reads, snap.RetiredBlocks()-retiredBefore, st.Reseeds)
}

// TestHTAPCoherenceStress is the full HTAP tier, run under -race in CI:
// OLTP writers and optimistic readers race against an analytics session that
// keeps refreshing and re-ranking. Afterwards the database must be conserved
// (every committed create present) and a final refreshed PageRank must be
// bit-identical to a quiesced rerun.
func TestHTAPCoherenceStress(t *testing.T) {
	const (
		ranks     = 4
		scale     = 7
		writers   = 2
		readers   = 2
		writerOps = 100
		readerOps = 150
		rounds    = 3
	)
	cfg := kron.Config{Scale: scale, EdgeFactor: 8, Seed: 23}
	rt, db, g := htapGraph(t, ranks, cfg, true)
	defer rt.Finalize()
	nVerts := uint64(1) << scale
	initial := db.TotalVertices()

	var (
		mu        sync.Mutex
		firstErr  error
		finalPR   = make(map[uint64]float64)
		commits   int64
		created   int64
		validated int64
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	start := make(chan struct{})
	oltpDone := make(chan struct{})
	var owg sync.WaitGroup
	for w := 0; w < writers; w++ {
		owg.Add(1)
		go func(w int) {
			defer owg.Done()
			<-start
			c, n := htapWriter(db, gdi.Rank(w%ranks), int64(w)*557+3, writerOps,
				uint64(1)<<35+uint64(w)<<20, nVerts, report)
			mu.Lock()
			commits += c
			created += n
			mu.Unlock()
		}(w)
	}
	for r := 0; r < readers; r++ {
		owg.Add(1)
		go func(r int) {
			defer owg.Done()
			<-start
			rng := rand.New(rand.NewSource(int64(r)*101 + 17))
			p := db.Process(gdi.Rank((r + 1) % ranks))
			ok := int64(0)
			for i := 0; i < readerOps; i++ {
				tx := p.StartTransaction(gdi.ReadOnly)
				id, err := tx.TranslateVertexID(uint64(rng.Intn(int(nVerts))))
				if err != nil {
					tx.Abort()
					if errors.Is(err, gdi.ErrTransactionCritical) || errors.Is(err, gdi.ErrNotFound) {
						continue
					}
					report(err)
					return
				}
				h, err := tx.AssociateVertex(id)
				if err != nil {
					tx.Abort()
					if errors.Is(err, gdi.ErrTransactionCritical) || errors.Is(err, gdi.ErrNotFound) {
						continue
					}
					report(err)
					return
				}
				if _, err := h.Neighbors(gdi.MaskAll, nil); err != nil {
					tx.Abort()
					if errors.Is(err, gdi.ErrTransactionCritical) || errors.Is(err, gdi.ErrNotFound) {
						continue
					}
					report(err)
					return
				}
				if err := tx.Commit(); err != nil {
					continue // optimistic validation raced a writer; discarded
				}
				ok++
			}
			mu.Lock()
			validated += ok
			mu.Unlock()
		}(r)
	}
	go func() {
		owg.Wait()
		close(oltpDone)
	}()

	rt.Run(db, func(p *gdi.Process) {
		s, err := analytics.OpenHTAP(p, g)
		if err != nil {
			report(err)
			return
		}
		p.Barrier()
		if p.Rank() == 0 {
			close(start)
		}
		for round := 0; round < rounds; round++ {
			if _, _, err := s.PageRank(5, 0.85); err != nil {
				report(err)
				return
			}
			if err := s.Refresh(); err != nil {
				report(err)
				return
			}
		}
		<-oltpDone
		p.Barrier()
		if err := s.Refresh(); err != nil { // quiesced: final cut is the end state
			report(err)
			return
		}
		pr, _, err := s.PageRank(15, 0.85)
		if err != nil {
			report(err)
			return
		}
		mu.Lock()
		for k, v := range pr {
			finalPR[k] = v
		}
		mu.Unlock()
		s.Close()
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if commits == 0 {
		t.Fatal("no writer transaction ever committed")
	}
	if validated == 0 {
		t.Fatal("no optimistic reader ever validated")
	}
	if got := db.TotalVertices(); int64(got) != int64(initial)+created {
		t.Fatalf("conservation: %d vertices, want %d initial + %d created", got, initial, created)
	}
	want := quiescedPageRank(t, rt, db, g, 15)
	samePageRank(t, "final refreshed PageRank vs quiesced rerun", finalPR, want)
	snap := db.Engine().Snapshots()
	if got := snap.ArenaBytes(); got != 0 {
		t.Fatalf("arena holds %d bytes after the stress run", got)
	}
	t.Logf("commits: %d (created %d); reads validated: %d; cuts: %d; folds: %d; retired: %d",
		commits, created, validated, snap.CutsAcquired(), snap.DeltaFolds(), snap.RetiredBlocks())
}
