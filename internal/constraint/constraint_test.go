package constraint

import (
	"math/rand"
	"testing"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
)

const (
	lPerson lpg.LabelID = 16
	lCar    lpg.LabelID = 17
	pAge    lpg.PTypeID = 20
	pName   lpg.PTypeID = 21
)

func props(age uint64, name string) []lpg.Property {
	return []lpg.Property{
		{PType: pAge, Value: lpg.EncodeUint64(age)},
		{PType: pName, Value: lpg.EncodeString(name)},
	}
}

func TestNilConstraintMatchesEverything(t *testing.T) {
	var c *Constraint
	if !c.Eval(nil, nil) {
		t.Fatal("nil constraint rejected an element")
	}
}

func TestEmptyConstraintMatchesNothing(t *testing.T) {
	c := &Constraint{}
	if c.Eval([]lpg.LabelID{lPerson}, props(40, "x")) {
		t.Fatal("empty DNF matched an element")
	}
}

func TestEmptySubconstraintMatchesEverything(t *testing.T) {
	c := &Constraint{}
	c.AddSubconstraint(Subconstraint{})
	if !c.Eval(nil, nil) {
		t.Fatal("vacuous subconstraint rejected an element")
	}
}

func TestLabelConditions(t *testing.T) {
	c := &Constraint{}
	i := c.AddSubconstraint(Subconstraint{})
	c.AddLabelCond(i, LabelCond{Label: lPerson})
	c.AddLabelCond(i, LabelCond{Label: lCar, Absent: true})
	if !c.Eval([]lpg.LabelID{lPerson}, nil) {
		t.Fatal("person without car rejected")
	}
	if c.Eval([]lpg.LabelID{lPerson, lCar}, nil) {
		t.Fatal("person with car accepted despite absence condition")
	}
	if c.Eval(nil, nil) {
		t.Fatal("unlabeled element accepted")
	}
}

func TestNumericComparisons(t *testing.T) {
	mk := func(op Op, operand uint64) *Constraint {
		c := &Constraint{}
		i := c.AddSubconstraint(Subconstraint{})
		c.AddPropCond(i, PropCond{PType: pAge, Datatype: lpg.TypeUint64, Op: op, Operand: lpg.EncodeUint64(operand)})
		return c
	}
	cases := []struct {
		op   Op
		arg  uint64
		age  uint64
		want bool
	}{
		{OpEq, 30, 30, true}, {OpEq, 30, 31, false},
		{OpNe, 30, 31, true}, {OpNe, 30, 30, false},
		{OpLt, 30, 29, true}, {OpLt, 30, 30, false},
		{OpLe, 30, 30, true}, {OpLe, 30, 31, false},
		{OpGt, 30, 31, true}, {OpGt, 30, 30, false},
		{OpGe, 30, 30, true}, {OpGe, 30, 29, false},
	}
	for _, tc := range cases {
		if got := mk(tc.op, tc.arg).Eval(nil, props(tc.age, "")); got != tc.want {
			t.Errorf("age %d %s %d = %v, want %v", tc.age, tc.op, tc.arg, got, tc.want)
		}
	}
}

func TestSignedAndFloatComparisons(t *testing.T) {
	pNeg := lpg.PTypeID(30)
	c := &Constraint{}
	i := c.AddSubconstraint(Subconstraint{})
	c.AddPropCond(i, PropCond{PType: pNeg, Datatype: lpg.TypeInt64, Op: OpLt, Operand: lpg.EncodeInt64(0)})
	if !c.Eval(nil, []lpg.Property{{PType: pNeg, Value: lpg.EncodeInt64(-5)}}) {
		t.Fatal("-5 < 0 rejected under int64 ordering")
	}
	pF := lpg.PTypeID(31)
	c2 := &Constraint{}
	i = c2.AddSubconstraint(Subconstraint{})
	c2.AddPropCond(i, PropCond{PType: pF, Datatype: lpg.TypeFloat64, Op: OpGt, Operand: lpg.EncodeFloat64(1.5)})
	if !c2.Eval(nil, []lpg.Property{{PType: pF, Value: lpg.EncodeFloat64(2.25)}}) {
		t.Fatal("2.25 > 1.5 rejected")
	}
}

func TestStringOpsAndPrefix(t *testing.T) {
	c := &Constraint{}
	i := c.AddSubconstraint(Subconstraint{})
	c.AddPropCond(i, PropCond{PType: pName, Datatype: lpg.TypeString, Op: OpPrefix, Operand: []byte("al")})
	if !c.Eval(nil, props(1, "alice")) {
		t.Fatal("prefix al did not match alice")
	}
	if c.Eval(nil, props(1, "bob")) {
		t.Fatal("prefix al matched bob")
	}
}

func TestOpExists(t *testing.T) {
	c := &Constraint{}
	i := c.AddSubconstraint(Subconstraint{})
	c.AddPropCond(i, PropCond{PType: pAge, Op: OpExists})
	if !c.Eval(nil, props(1, "x")) {
		t.Fatal("existing property not found")
	}
	if c.Eval(nil, nil) {
		t.Fatal("OpExists matched an element without the property")
	}
}

func TestMultiValuedPropertyAnyMatch(t *testing.T) {
	c := &Constraint{}
	i := c.AddSubconstraint(Subconstraint{})
	c.AddPropCond(i, PropCond{PType: pAge, Datatype: lpg.TypeUint64, Op: OpEq, Operand: lpg.EncodeUint64(7)})
	multi := []lpg.Property{
		{PType: pAge, Value: lpg.EncodeUint64(3)},
		{PType: pAge, Value: lpg.EncodeUint64(7)},
	}
	if !c.Eval(nil, multi) {
		t.Fatal("multi-entry property: no entry matched")
	}
}

func TestDisjunction(t *testing.T) {
	// (Person && age>30) || (Car)
	c := &Constraint{}
	i := c.AddSubconstraint(Subconstraint{})
	c.AddLabelCond(i, LabelCond{Label: lPerson})
	c.AddPropCond(i, PropCond{PType: pAge, Datatype: lpg.TypeUint64, Op: OpGt, Operand: lpg.EncodeUint64(30)})
	j := c.AddSubconstraint(Subconstraint{})
	c.AddLabelCond(j, LabelCond{Label: lCar})
	if !c.Eval([]lpg.LabelID{lPerson}, props(40, "")) {
		t.Fatal("first disjunct rejected")
	}
	if !c.Eval([]lpg.LabelID{lCar}, nil) {
		t.Fatal("second disjunct rejected")
	}
	if c.Eval([]lpg.LabelID{lPerson}, props(20, "")) {
		t.Fatal("young person accepted")
	}
}

// TestAgainstBruteForce cross-checks Eval against a direct evaluation of the
// DNF semantics on randomized constraints and elements.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randCond := func() (LabelCond, bool) {
		return LabelCond{Label: lpg.LabelID(16 + rng.Intn(3)), Absent: rng.Intn(2) == 0}, rng.Intn(2) == 0
	}
	for trial := 0; trial < 500; trial++ {
		c := &Constraint{}
		nSubs := rng.Intn(4)
		for s := 0; s < nSubs; s++ {
			i := c.AddSubconstraint(Subconstraint{})
			for k := rng.Intn(3); k > 0; k-- {
				lc, isLabel := randCond()
				if isLabel {
					c.AddLabelCond(i, lc)
				} else {
					c.AddPropCond(i, PropCond{
						PType: pAge, Datatype: lpg.TypeUint64,
						Op:      Op(1 + rng.Intn(6)),
						Operand: lpg.EncodeUint64(uint64(rng.Intn(5))),
					})
				}
			}
		}
		var labels []lpg.LabelID
		for l := lpg.LabelID(16); l < 19; l++ {
			if rng.Intn(2) == 0 {
				labels = append(labels, l)
			}
		}
		age := uint64(rng.Intn(5))
		ps := []lpg.Property{{PType: pAge, Value: lpg.EncodeUint64(age)}}

		want := false
		for _, sub := range c.Subs {
			ok := true
			for _, lc := range sub.Labels {
				has := false
				for _, l := range labels {
					if l == lc.Label {
						has = true
					}
				}
				if has == lc.Absent {
					ok = false
				}
			}
			for _, pc := range sub.Props {
				v := lpg.DecodeUint64(pc.Operand)
				var m bool
				switch pc.Op {
				case OpEq:
					m = age == v
				case OpNe:
					m = age != v
				case OpLt:
					m = age < v
				case OpLe:
					m = age <= v
				case OpGt:
					m = age > v
				case OpGe:
					m = age >= v
				}
				if !m {
					ok = false
				}
			}
			if ok {
				want = true
			}
		}
		if got := c.Eval(labels, ps); got != want {
			t.Fatalf("trial %d: Eval = %v, want %v for %s on labels=%v age=%d", trial, got, want, c, labels, age)
		}
	}
}

func TestStaleness(t *testing.T) {
	reg := metadata.NewRegistry()
	l, _ := reg.AddLabel("Person")
	pt, _ := reg.AddPType("age", metadata.PTypeSpec{Datatype: lpg.TypeUint64, SizeType: lpg.SizeFixed, Limit: 8})
	c := New(reg)
	i := c.AddSubconstraint(Subconstraint{})
	c.AddLabelCond(i, LabelCond{Label: l.ID})
	c.AddPropCond(i, PropCond{PType: pt.ID, Op: OpExists})
	if c.Stale(reg) {
		t.Fatal("fresh constraint reported stale")
	}
	// An unrelated mutation does not make the constraint stale.
	reg.AddLabel("Unrelated")
	if c.Stale(reg) {
		t.Fatal("constraint stale after unrelated mutation")
	}
	// Deleting a referenced label does.
	reg.RemoveLabel("Person")
	if !c.Stale(reg) {
		t.Fatal("constraint not stale after referenced label removal")
	}
}

func TestStringRendering(t *testing.T) {
	var nilC *Constraint
	if nilC.String() != "true" {
		t.Fatalf("nil String = %q", nilC.String())
	}
	if (&Constraint{}).String() != "false" {
		t.Fatal("empty constraint should render false")
	}
	c := &Constraint{}
	c.AddSubconstraint(Subconstraint{})
	if got := c.String(); got != "(true)" {
		t.Fatalf("vacuous subconstraint renders %q", got)
	}
}
