// Package constraint implements GDI constraints (§3.6 of the paper):
// boolean formulas in disjunctive normal form used to filter vertices and
// edges when querying indexes and neighborhoods.
//
// A Constraint is an OR over Subconstraints; a Subconstraint is an AND over
// label conditions and property conditions. An empty Subconstraint is
// vacuously true; a Constraint with no Subconstraints matches nothing.
//
// Constraints capture the metadata version at creation time. Because
// metadata is only eventually consistent (§3.8), a transaction can ask a
// constraint whether it has become stale — whether any referenced label or
// property type was since renamed or deleted — and abort accordingly.
package constraint

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
)

// Op enumerates property comparison operators.
type Op uint8

const (
	// OpExists is true when the element carries any entry of the p-type.
	OpExists Op = iota
	// OpEq compares for equality.
	OpEq
	// OpNe compares for inequality.
	OpNe
	// OpLt is value < operand.
	OpLt
	// OpLe is value <= operand.
	OpLe
	// OpGt is value > operand.
	OpGt
	// OpGe is value >= operand.
	OpGe
	// OpPrefix is true when a string/bytes value starts with the operand.
	OpPrefix
)

// String returns the operator's symbol.
func (o Op) String() string {
	switch o {
	case OpExists:
		return "exists"
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpPrefix:
		return "prefix"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// LabelCond requires the presence (or absence) of a label.
type LabelCond struct {
	Label  lpg.LabelID
	Absent bool
}

// PropCond compares entries of one property type against an operand.
// Multi-valued properties satisfy the condition if any entry does.
type PropCond struct {
	PType    lpg.PTypeID
	Datatype lpg.Datatype
	Op       Op
	Operand  []byte
}

// Subconstraint is a conjunction of conditions.
type Subconstraint struct {
	Labels []LabelCond
	Props  []PropCond
}

// Constraint is a disjunction of subconstraints plus the metadata version it
// was built against.
type Constraint struct {
	Subs    []Subconstraint
	Version uint64
}

// New creates an empty constraint bound to the registry's current version.
func New(reg *metadata.Registry) *Constraint {
	return &Constraint{Version: reg.Version()}
}

// AddSubconstraint appends sub and returns its index.
func (c *Constraint) AddSubconstraint(sub Subconstraint) int {
	c.Subs = append(c.Subs, sub)
	return len(c.Subs) - 1
}

// AddLabelCond adds a label condition to subconstraint i.
func (c *Constraint) AddLabelCond(i int, cond LabelCond) {
	c.Subs[i].Labels = append(c.Subs[i].Labels, cond)
}

// AddPropCond adds a property condition to subconstraint i.
func (c *Constraint) AddPropCond(i int, cond PropCond) {
	c.Subs[i].Props = append(c.Subs[i].Props, cond)
}

// Stale reports whether the registry has mutated since the constraint was
// built and any referenced label/p-type no longer resolves — the staleness
// verification of §3.6/§3.8.
func (c *Constraint) Stale(reg *metadata.Registry) bool {
	if reg.Version() == c.Version {
		return false
	}
	for _, sub := range c.Subs {
		for _, lc := range sub.Labels {
			if _, ok := reg.LabelByID(lc.Label); !ok {
				return true
			}
		}
		for _, pc := range sub.Props {
			if _, ok := reg.PTypeByID(pc.PType); !ok {
				return true
			}
		}
	}
	return false
}

// Eval evaluates the constraint against an element's labels and properties.
// A nil constraint matches everything.
func (c *Constraint) Eval(labels []lpg.LabelID, props []lpg.Property) bool {
	if c == nil {
		return true
	}
	for _, sub := range c.Subs {
		if sub.eval(labels, props) {
			return true
		}
	}
	return false
}

func (sub *Subconstraint) eval(labels []lpg.LabelID, props []lpg.Property) bool {
	for _, lc := range sub.Labels {
		has := false
		for _, l := range labels {
			if l == lc.Label {
				has = true
				break
			}
		}
		if has == lc.Absent {
			return false
		}
	}
	for _, pc := range sub.Props {
		if !pc.eval(props) {
			return false
		}
	}
	return true
}

func (pc *PropCond) eval(props []lpg.Property) bool {
	for _, p := range props {
		if p.PType != pc.PType {
			continue
		}
		if pc.Op == OpExists {
			return true
		}
		if compare(pc.Datatype, pc.Op, p.Value, pc.Operand) {
			return true
		}
	}
	return false
}

// compare applies op between a stored value and the operand under the
// declared datatype's ordering.
func compare(dt lpg.Datatype, op Op, value, operand []byte) bool {
	if op == OpPrefix {
		return bytes.HasPrefix(value, operand)
	}
	var cmp int
	switch dt {
	case lpg.TypeUint64:
		cmp = cmpOrdered(lpg.DecodeUint64(value), lpg.DecodeUint64(operand))
	case lpg.TypeInt64, lpg.TypeDate:
		cmp = cmpOrdered(lpg.DecodeInt64(value), lpg.DecodeInt64(operand))
	case lpg.TypeFloat64:
		cmp = cmpOrdered(lpg.DecodeFloat64(value), lpg.DecodeFloat64(operand))
	case lpg.TypeBool:
		cmp = cmpOrdered(value[0], operand[0])
	default: // strings, bytes, vectors: lexicographic
		cmp = bytes.Compare(value, operand)
	}
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

func cmpOrdered[T uint64 | int64 | float64 | byte](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the constraint for diagnostics.
func (c *Constraint) String() string {
	if c == nil {
		return "true"
	}
	if len(c.Subs) == 0 {
		return "false"
	}
	var subs []string
	for _, sub := range c.Subs {
		var conds []string
		for _, lc := range sub.Labels {
			neg := ""
			if lc.Absent {
				neg = "!"
			}
			conds = append(conds, fmt.Sprintf("%slabel(%d)", neg, lc.Label))
		}
		for _, pc := range sub.Props {
			conds = append(conds, fmt.Sprintf("p%d %s %x", pc.PType, pc.Op, pc.Operand))
		}
		if len(conds) == 0 {
			conds = append(conds, "true")
		}
		subs = append(subs, "("+strings.Join(conds, " && ")+")")
	}
	return strings.Join(subs, " || ")
}
