package rma

import "sync/atomic"

// Counters aggregates the one-sided traffic a single rank has issued. It
// substitutes for the RDMA NIC hardware counters of the paper's testbed and
// lets experiments report communication volume alongside wall-clock time.
type Counters struct {
	LocalPuts    atomic.Int64
	RemotePuts   atomic.Int64
	LocalGets    atomic.Int64
	RemoteGets   atomic.Int64
	LocalAtomics atomic.Int64
	RemoteAtomic atomic.Int64
	BytesPut     atomic.Int64
	BytesGot     atomic.Int64
	Flushes      atomic.Int64
	// GetBatches counts vectored GetBatch trains towards remote targets;
	// each train pays the injected remote latency once however many
	// constituent gets (counted above) it carries.
	GetBatches atomic.Int64
	// PutBatches counts vectored PutBatch trains towards remote targets
	// (the commit write-back trains of §5.6).
	PutBatches atomic.Int64
	// AtomicBatches counts vectored CASBatch/LoadBatch trains towards remote
	// targets (the lock trains of the batched commit path and the version
	// revalidation trains of the block cache).
	AtomicBatches atomic.Int64
	// CacheHits and CacheMisses count lookups of the rank's block cache:
	// hits are remote block reads served from a version-validated local copy
	// without any GET traffic, misses fall through to a fetch train.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64

	_ [2]int64 // pad to a cache line to avoid false sharing between ranks
}

// Snapshot is a plain-value copy of a rank's counters.
type Snapshot struct {
	LocalPuts, RemotePuts     int64
	LocalGets, RemoteGets     int64
	LocalAtomics, RemoteAtoms int64
	BytesPut, BytesGot        int64
	Flushes                   int64
	GetBatches                int64
	PutBatches                int64
	AtomicBatches             int64
	CacheHits, CacheMisses    int64
}

// RemoteOps returns the total number of remote one-sided operations.
func (s Snapshot) RemoteOps() int64 { return s.RemotePuts + s.RemoteGets + s.RemoteAtoms }

// LocalOps returns the total number of local window operations.
func (s Snapshot) LocalOps() int64 { return s.LocalPuts + s.LocalGets + s.LocalAtomics }

// CounterSnapshot returns a copy of rank r's counters.
func (f *Fabric) CounterSnapshot(r Rank) Snapshot {
	f.checkRank(r)
	c := &f.counters[r]
	return Snapshot{
		LocalPuts: c.LocalPuts.Load(), RemotePuts: c.RemotePuts.Load(),
		LocalGets: c.LocalGets.Load(), RemoteGets: c.RemoteGets.Load(),
		LocalAtomics: c.LocalAtomics.Load(), RemoteAtoms: c.RemoteAtomic.Load(),
		BytesPut: c.BytesPut.Load(), BytesGot: c.BytesGot.Load(),
		Flushes: c.Flushes.Load(), GetBatches: c.GetBatches.Load(),
		PutBatches: c.PutBatches.Load(), AtomicBatches: c.AtomicBatches.Load(),
		CacheHits: c.CacheHits.Load(), CacheMisses: c.CacheMisses.Load(),
	}
}

// TotalSnapshot sums the counters of every rank.
func (f *Fabric) TotalSnapshot() Snapshot {
	var t Snapshot
	for r := 0; r < f.n; r++ {
		s := f.CounterSnapshot(Rank(r))
		t.LocalPuts += s.LocalPuts
		t.RemotePuts += s.RemotePuts
		t.LocalGets += s.LocalGets
		t.RemoteGets += s.RemoteGets
		t.LocalAtomics += s.LocalAtomics
		t.RemoteAtoms += s.RemoteAtoms
		t.BytesPut += s.BytesPut
		t.BytesGot += s.BytesGot
		t.Flushes += s.Flushes
		t.GetBatches += s.GetBatches
		t.PutBatches += s.PutBatches
		t.AtomicBatches += s.AtomicBatches
		t.CacheHits += s.CacheHits
		t.CacheMisses += s.CacheMisses
	}
	return t
}

// ResetCounters zeroes the counters of every rank.
func (f *Fabric) ResetCounters() {
	for r := range f.counters {
		c := &f.counters[r]
		c.LocalPuts.Store(0)
		c.RemotePuts.Store(0)
		c.LocalGets.Store(0)
		c.RemoteGets.Store(0)
		c.LocalAtomics.Store(0)
		c.RemoteAtomic.Store(0)
		c.BytesPut.Store(0)
		c.BytesGot.Store(0)
		c.Flushes.Store(0)
		c.GetBatches.Store(0)
		c.PutBatches.Store(0)
		c.AtomicBatches.Store(0)
		c.CacheHits.Store(0)
		c.CacheMisses.Store(0)
	}
}

// AddCache accounts lookups of origin's rank-local block cache. The cache
// lives in the block layer; the counters live here so cache traffic is
// reported alongside the one-sided traffic it replaces.
func (f *Fabric) AddCache(origin Rank, hits, misses int64) {
	if hits != 0 {
		f.counters[origin].CacheHits.Add(hits)
	}
	if misses != 0 {
		f.counters[origin].CacheMisses.Add(misses)
	}
}

func (f *Fabric) countPut(origin, target Rank, n int) {
	c := &f.counters[origin]
	if origin == target {
		c.LocalPuts.Add(1)
	} else {
		c.RemotePuts.Add(1)
	}
	c.BytesPut.Add(int64(n))
}

func (f *Fabric) countGet(origin, target Rank, n int) {
	c := &f.counters[origin]
	if origin == target {
		c.LocalGets.Add(1)
	} else {
		c.RemoteGets.Add(1)
	}
	c.BytesGot.Add(int64(n))
}

func (f *Fabric) countGetBatch(origin, target Rank) {
	if origin != target {
		f.counters[origin].GetBatches.Add(1)
	}
}

func (f *Fabric) countPutBatch(origin, target Rank) {
	if origin != target {
		f.counters[origin].PutBatches.Add(1)
	}
}

func (f *Fabric) countAtomicBatch(origin, target Rank) {
	if origin != target {
		f.counters[origin].AtomicBatches.Add(1)
	}
}

func (f *Fabric) countAtomic(origin, target Rank) {
	c := &f.counters[origin]
	if origin == target {
		c.LocalAtomics.Add(1)
	} else {
		c.RemoteAtomic.Add(1)
	}
}
