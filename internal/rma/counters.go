package rma

// The counter structures live in the fabric package (shared with the wire
// backends); the simulator keeps one padded Counters per rank and delegates.

// CounterSnapshot returns a copy of rank r's counters.
func (f *Fabric) CounterSnapshot(r Rank) Snapshot {
	f.checkRank(r)
	return f.counters[r].Snapshot()
}

// TotalSnapshot sums the counters of every rank.
func (f *Fabric) TotalSnapshot() Snapshot {
	var t Snapshot
	for r := 0; r < f.n; r++ {
		t.Add(f.counters[r].Snapshot())
	}
	return t
}

// ResetCounters zeroes the counters of every rank.
func (f *Fabric) ResetCounters() {
	for r := range f.counters {
		f.counters[r].Reset()
	}
}

// AddCache accounts lookups of origin's rank-local block cache.
func (f *Fabric) AddCache(origin Rank, hits, misses int64) {
	f.counters[origin].AddCache(hits, misses)
}

func (f *Fabric) countPut(origin, target Rank, n int) {
	f.counters[origin].CountPut(origin == target, n)
}

func (f *Fabric) countGet(origin, target Rank, n int) {
	f.counters[origin].CountGet(origin == target, n)
}

func (f *Fabric) countGetBatch(origin, target Rank) {
	f.counters[origin].CountGetBatch(origin == target)
}

func (f *Fabric) countPutBatch(origin, target Rank) {
	f.counters[origin].CountPutBatch(origin == target)
}

func (f *Fabric) countAtomicBatch(origin, target Rank) {
	f.counters[origin].CountAtomicBatch(origin == target)
}

func (f *Fabric) countAtomic(origin, target Rank) {
	f.counters[origin].CountAtomic(origin == target)
}
