// Package rma is the in-process simulator backend of the fabric SPI
// (package internal/fabric): a simulated one-sided Remote Memory Access
// fabric in which P ranks (goroutines) each own segments of shared windows,
// and any rank may access any segment with one-sided operations. The
// defining property of one-sided communication is preserved — the target
// rank never executes code on the data path; origins operate on target
// memory directly with plain loads/stores (bulk windows) and hardware
// atomics (word windows).
//
// Every operation is accounted per rank (local vs. remote, op class, bytes),
// which substitutes for NIC hardware counters, and an optional Latency model
// injects per-remote-op delays for latency-shaped experiments. Both stay
// simulator-only: they are what make this backend the ablation testbed,
// while internal/fabric/tcp provides the real multi-process deployment.
package rma

import (
	"fmt"
	"sync"

	"github.com/gdi-go/gdi/internal/fabric"
)

// Fabric is a group of N simulated processes sharing RMA windows. It plays
// the role of MPI_COMM_WORLD plus the RDMA NIC: windows are allocated
// collectively from it, and per-rank traffic counters live on it. It
// implements fabric.Transport.
//
// A Fabric is safe for concurrent use by all of its ranks.
type Fabric struct {
	n        int
	latency  Latency
	counters []Counters // one per rank, padded to avoid false sharing
	msgr     *messenger

	svcMu    sync.RWMutex
	services map[fabric.ServiceID]fabric.Handler

	liveMu    sync.RWMutex
	dead      []bool
	deathSubs []func(fabric.Rank)
}

var _ fabric.Transport = (*Fabric)(nil)

// Options configures a Fabric.
type Options struct {
	// Latency, if non-zero, is charged on every remote operation.
	Latency Latency
}

// New creates a fabric of n ranks. n must be in [1, 1<<16] because DPtr
// encodes ranks in 16 bits.
func New(n int, opts ...Options) *Fabric {
	if n < 1 || n > 1<<16 {
		panic(fmt.Sprintf("rma: rank count %d out of range [1, 65536]", n))
	}
	f := &Fabric{
		n:        n,
		counters: make([]Counters, n),
		msgr:     newMessenger(n),
		services: make(map[fabric.ServiceID]fabric.Handler),
		dead:     make([]bool, n),
	}
	if len(opts) > 0 {
		f.latency = opts[0].Latency
	}
	return f
}

// Size returns the number of ranks in the fabric.
func (f *Fabric) Size() int { return f.n }

// Local reports whether rank r's memory lives in this process — always true
// on the simulator, where every rank is a goroutine of one address space.
func (f *Fabric) Local(r Rank) bool {
	f.checkRank(r)
	return true
}

// Run executes fn once per rank, each in its own goroutine, and waits for
// all of them to return. It is the simulation equivalent of launching an
// SPMD program with mpirun.
func (f *Fabric) Run(fn func(rank Rank)) {
	var wg sync.WaitGroup
	wg.Add(f.n)
	for r := 0; r < f.n; r++ {
		go func(r Rank) {
			defer wg.Done()
			fn(r)
		}(Rank(r))
	}
	wg.Wait()
}

// Close releases the fabric's resources; the simulator holds none.
func (f *Fabric) Close() error { return nil }

// NewInbox collectively allocates an inbox with segBytes of mailbox space
// per rank, split evenly across source slots.
func (f *Fabric) NewInbox(segBytes int) fabric.Inbox {
	return fabric.NewSlotInbox(f.n, f.NewByteWin(segBytes))
}

// Messenger returns the pairwise substrate of the collective layer: shared
// address space, so values travel by reference through buffered channels.
func (f *Fabric) Messenger() fabric.Messenger { return f.msgr }

// Flush completes all outstanding non-blocking operations issued by origin
// towards target. In this simulation operations complete eagerly, so Flush
// only charges accounting (and latency, modeling the synchronization
// round-trip of MPI_Win_flush).
func (f *Fabric) Flush(origin, target Rank) {
	f.counters[origin].Flushes.Add(1)
	f.chargeSync(origin, target)
}

// FlushAll completes all outstanding operations issued by origin to every
// target (MPI_Win_flush_all).
func (f *Fabric) FlushAll(origin Rank) {
	f.counters[origin].Flushes.Add(1)
}

// Register installs the handler for one control-plane service. Registering
// a service twice panics — services are engine-global.
func (f *Fabric) Register(svc fabric.ServiceID, h fabric.Handler) {
	f.svcMu.Lock()
	defer f.svcMu.Unlock()
	if _, dup := f.services[svc]; dup {
		panic(fmt.Sprintf("rma: service %d registered twice", svc))
	}
	f.services[svc] = h
}

// Call invokes svc on rank target. All ranks share this process, so the
// call is a direct function invocation; target only selects whose shard the
// handler operates on.
func (f *Fabric) Call(origin, target Rank, svc fabric.ServiceID, req []byte) []byte {
	f.checkRank(origin)
	f.checkRank(target)
	f.checkDead(target, "call")
	f.svcMu.RLock()
	h := f.services[svc]
	f.svcMu.RUnlock()
	if h == nil {
		panic(fmt.Sprintf("rma: call to unregistered service %d", svc))
	}
	return h(origin, req)
}

func (f *Fabric) checkRank(r Rank) {
	if r < 0 || int(r) >= f.n {
		panic(fmt.Sprintf("rma: rank %d out of range [0, %d)", r, f.n))
	}
}

// Alive reports whether rank r is reachable — true unless KillRank marked it.
func (f *Fabric) Alive(r Rank) bool {
	f.checkRank(r)
	f.liveMu.RLock()
	defer f.liveMu.RUnlock()
	return !f.dead[r]
}

// NotifyPeerDeath registers fn to fire once per KillRank.
func (f *Fabric) NotifyPeerDeath(fn func(fabric.Rank)) {
	f.liveMu.Lock()
	defer f.liveMu.Unlock()
	f.deathSubs = append(f.deathSubs, fn)
}

// KillRank is the simulator's fault-injection hook: it marks rank r dead and
// fires the registered death callbacks. From then on byte-window data
// operations, service calls, and messages targeting r panic with
// *fabric.PeerError. Word windows stay reachable — the simulated failure
// model is a crashed data plane whose lock words and DHT shard survive
// (equivalently, a control plane assumed to be independently replicated),
// which is what lets survivors CAS-promote followers of the dead rank's
// primaries. Idempotent.
func (f *Fabric) KillRank(r Rank) {
	f.checkRank(r)
	f.liveMu.Lock()
	if f.dead[r] {
		f.liveMu.Unlock()
		return
	}
	f.dead[r] = true
	subs := append([]func(fabric.Rank){}, f.deathSubs...)
	f.liveMu.Unlock()
	for _, fn := range subs {
		fn(r)
	}
}

// checkDead panics with *fabric.PeerError when target has been killed.
func (f *Fabric) checkDead(target Rank, op string) {
	f.liveMu.RLock()
	d := f.dead[target]
	f.liveMu.RUnlock()
	if d {
		panic(&fabric.PeerError{Rank: target, Op: op})
	}
}

// messenger is the simulator's pairwise message substrate: one buffered
// channel per directed rank pair, moving Go values by reference. The
// capacity of 2 lets the dissemination rounds of the collective layer
// overlap one send without blocking.
type messenger struct {
	n    int
	mail [][]chan any // mail[from][to]
}

var _ fabric.Messenger = (*messenger)(nil)

func newMessenger(n int) *messenger {
	m := &messenger{n: n, mail: make([][]chan any, n)}
	for i := range m.mail {
		m.mail[i] = make([]chan any, n)
		for j := range m.mail[i] {
			m.mail[i][j] = make(chan any, 2)
		}
	}
	return m
}

func (m *messenger) Shared() bool { return true }

func (m *messenger) Send(from, to Rank, v any) { m.mail[from][to] <- v }

func (m *messenger) Recv(from, to Rank) any { return <-m.mail[from][to] }

func (m *messenger) SendBytes(from, to Rank, b []byte) { m.mail[from][to] <- b }

func (m *messenger) RecvBytes(from, to Rank) []byte { return (<-m.mail[from][to]).([]byte) }
