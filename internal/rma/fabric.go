// Package rma provides a simulated one-sided Remote Memory Access fabric.
//
// The paper's GDI-RMA implementation runs on Cray Aries RDMA hardware through
// foMPI's MPI-3 one-sided routines (puts, gets, atomics, flushes). This
// package substitutes a process-local simulation of the same programming
// model: P ranks (goroutines) each own segments of shared windows, and any
// rank may access any segment with one-sided operations. The defining
// property of one-sided communication is preserved — the target rank never
// executes code on the data path; origins operate on target memory directly
// with plain loads/stores (bulk windows) and hardware atomics (word windows).
//
// Every operation is accounted per rank (local vs. remote, op class, bytes),
// which substitutes for NIC hardware counters, and an optional Latency model
// injects per-remote-op delays for latency-shaped experiments.
package rma

import (
	"fmt"
	"sync"
)

// Rank identifies a process within a Fabric. Ranks are dense in [0, N).
type Rank int

// NullRank is the invalid rank value.
const NullRank Rank = -1

// Fabric is a group of N simulated processes sharing RMA windows. It plays
// the role of MPI_COMM_WORLD plus the RDMA NIC: windows are allocated
// collectively from it, and per-rank traffic counters live on it.
//
// A Fabric is safe for concurrent use by all of its ranks.
type Fabric struct {
	n        int
	latency  Latency
	counters []Counters // one per rank, padded to avoid false sharing

	mu       sync.Mutex
	byteWins []*ByteWin
	wordWins []*WordWin
}

// Options configures a Fabric.
type Options struct {
	// Latency, if non-zero, is charged on every remote operation.
	Latency Latency
}

// New creates a fabric of n ranks. n must be in [1, 1<<16] because DPtr
// encodes ranks in 16 bits.
func New(n int, opts ...Options) *Fabric {
	if n < 1 || n > 1<<16 {
		panic(fmt.Sprintf("rma: rank count %d out of range [1, 65536]", n))
	}
	f := &Fabric{n: n, counters: make([]Counters, n)}
	if len(opts) > 0 {
		f.latency = opts[0].Latency
	}
	return f
}

// Size returns the number of ranks in the fabric.
func (f *Fabric) Size() int { return f.n }

// Run executes fn once per rank, each in its own goroutine, and waits for
// all of them to return. It is the simulation equivalent of launching an
// SPMD program with mpirun.
func (f *Fabric) Run(fn func(rank Rank)) {
	var wg sync.WaitGroup
	wg.Add(f.n)
	for r := 0; r < f.n; r++ {
		go func(r Rank) {
			defer wg.Done()
			fn(r)
		}(Rank(r))
	}
	wg.Wait()
}

// Flush completes all outstanding non-blocking operations issued by origin
// towards target. In this simulation operations complete eagerly, so Flush
// only charges accounting (and latency, modeling the synchronization
// round-trip of MPI_Win_flush).
func (f *Fabric) Flush(origin, target Rank) {
	f.counters[origin].Flushes.Add(1)
	f.chargeSync(origin, target)
}

// FlushAll completes all outstanding operations issued by origin to every
// target (MPI_Win_flush_all).
func (f *Fabric) FlushAll(origin Rank) {
	f.counters[origin].Flushes.Add(1)
}

func (f *Fabric) checkRank(r Rank) {
	if r < 0 || int(r) >= f.n {
		panic(fmt.Sprintf("rma: rank %d out of range [0, %d)", r, f.n))
	}
}
