package rma

import "time"

// Latency models the cost of crossing the simulated interconnect. All fields
// are per-operation costs in nanoseconds; zero values disable injection.
//
// The default fabric runs with no injected latency: scaling experiments then
// measure the real parallel execution of the simulation, and the remote-op
// counters expose communication volume. Latency injection is switched on for
// the latency-distribution experiments (Figure 5), where the *absolute*
// spread between one-sided access and RPC-based baselines matters.
type Latency struct {
	// RemoteNs is charged on every remote put/get/atomic.
	RemoteNs int64
	// PerKiBNs is additionally charged per KiB of payload.
	PerKiBNs int64
	// SyncNs is charged on every flush towards a remote rank.
	SyncNs int64
}

// IsZero reports whether no latency injection is configured.
func (l Latency) IsZero() bool { return l.RemoteNs == 0 && l.PerKiBNs == 0 && l.SyncNs == 0 }

func (f *Fabric) chargeOp(origin, target Rank, bytes int) {
	if origin == target || f.latency.IsZero() {
		return
	}
	d := f.latency.RemoteNs + f.latency.PerKiBNs*int64(bytes)/1024
	spinWait(time.Duration(d))
}

func (f *Fabric) chargeSync(origin, target Rank) {
	if origin == target || f.latency.SyncNs == 0 {
		return
	}
	spinWait(time.Duration(f.latency.SyncNs))
}

// spinWait delays the calling goroutine for approximately d. Sub-50µs waits
// busy-spin because time.Sleep granularity on most kernels is far coarser
// than the microsecond-scale latencies being modeled.
func spinWait(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 50*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
