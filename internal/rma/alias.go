package rma

import "github.com/gdi-go/gdi/internal/fabric"

// The addressing types, vectored-op element types, and counter types are
// owned by the fabric SPI package since the transport seam was carved; the
// aliases below keep rma as a drop-in name for backend-agnostic code that
// grew up against the simulator.

// Rank identifies a process within a Fabric. Ranks are dense in [0, N).
type Rank = fabric.Rank

// NullRank is the invalid rank value.
const NullRank = fabric.NullRank

// DPtr is the 64-bit distributed hierarchical pointer of the paper (§5.3).
type DPtr = fabric.DPtr

// NullDPtr is the invalid/absent pointer.
const NullDPtr = fabric.NullDPtr

// MakeDPtr builds a pointer to offset off on rank r.
func MakeDPtr(r Rank, off uint64) DPtr { return fabric.MakeDPtr(r, off) }

// GetOp is one element of a vectored read.
type GetOp = fabric.GetOp

// PutOp is one element of a vectored write.
type PutOp = fabric.PutOp

// CASOp is one element of a vectored compare-and-swap train.
type CASOp = fabric.CASOp

// CASResult reports one constituent CAS of a train.
type CASResult = fabric.CASResult

// Counters aggregates the one-sided traffic a single rank has issued.
type Counters = fabric.Counters

// Snapshot is a plain-value copy of a rank's counters.
type Snapshot = fabric.Snapshot

// Inbox is the one-sided static-slot mailbox of the dense analytics engine.
type Inbox = fabric.Inbox
