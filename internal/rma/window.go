package rma

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/gdi-go/gdi/internal/fabric"
)

// stripeShift determines the granularity of the per-page write serialization
// inside ByteWin: concurrent accesses to different 4KiB pages never contend.
const stripeShift = 12

// ByteWin is a byte-granularity RMA window: every rank owns a segment of
// segSize bytes, and any rank may Put/Get arbitrary ranges of any segment.
// It models the MPI data window used by BGDL for block payloads.
//
// Bulk accesses are serialized per 4KiB page (mirroring the per-cache-line
// atomicity a DMA engine provides); higher layers are responsible for
// protocol-level consistency, exactly as with real RDMA.
type ByteWin struct {
	f       *Fabric
	segSize int
	segs    [][]byte
	stripes [][]sync.RWMutex
}

var _ fabric.ByteWin = (*ByteWin)(nil)

// NewByteWin collectively allocates a byte window with segSize bytes per rank.
func (f *Fabric) NewByteWin(segSize int) fabric.ByteWin {
	if segSize <= 0 {
		panic("rma: ByteWin segment size must be positive")
	}
	w := &ByteWin{f: f, segSize: segSize}
	w.segs = make([][]byte, f.n)
	w.stripes = make([][]sync.RWMutex, f.n)
	nStripes := (segSize >> stripeShift) + 1
	for r := 0; r < f.n; r++ {
		w.segs[r] = make([]byte, segSize)
		w.stripes[r] = make([]sync.RWMutex, nStripes)
	}
	return w
}

// SegSize returns the per-rank segment size in bytes.
func (w *ByteWin) SegSize() int { return w.segSize }

func (w *ByteWin) checkRange(target Rank, off, n int) {
	w.f.checkRank(target)
	if off < 0 || n < 0 || off+n > w.segSize {
		panic(fmt.Sprintf("rma: access [%d, %d) outside window segment of %d bytes", off, off+n, w.segSize))
	}
}

// checkLive enforces the simulated failure model on the data plane: byte
// accesses from a survivor to a killed rank's segment panic with
// *fabric.PeerError (the rank's block memory died with its process), while a
// rank's accesses to its own segment — and all word-window traffic — stay
// reachable (see Fabric.KillRank).
func (w *ByteWin) checkLive(origin, target Rank, op string) {
	if origin != target {
		w.f.checkDead(target, op)
	}
}

// Put writes data into target's segment at off. It is a non-blocking
// one-sided write (PUT in the paper's notation); completion is guaranteed
// after a Flush, though this simulation completes it eagerly.
func (w *ByteWin) Put(origin, target Rank, off int, data []byte) {
	w.checkRange(target, off, len(data))
	w.checkLive(origin, target, "put")
	w.f.countPut(origin, target, len(data))
	w.f.chargeOp(origin, target, len(data))
	w.putStriped(target, off, data)
}

// Get reads len(buf) bytes from target's segment at off into buf (GET).
func (w *ByteWin) Get(origin, target Rank, off int, buf []byte) {
	w.checkRange(target, off, len(buf))
	w.checkLive(origin, target, "get")
	w.f.countGet(origin, target, len(buf))
	w.f.chargeOp(origin, target, len(buf))
	w.getStriped(target, off, buf)
}

// getStriped performs the data movement of one GET under the per-page
// read locks, without accounting or latency.
func (w *ByteWin) getStriped(target Rank, off int, buf []byte) {
	if len(buf) == 0 {
		return
	}
	seg := w.segs[target]
	first, last := off>>stripeShift, (off+len(buf)-1)>>stripeShift
	for s := first; s <= last; s++ {
		w.stripes[target][s].RLock()
	}
	copy(buf, seg[off:off+len(buf)])
	for s := first; s <= last; s++ {
		w.stripes[target][s].RUnlock()
	}
}

// putStriped performs the data movement of one PUT under the per-page
// write locks, without accounting or latency.
func (w *ByteWin) putStriped(target Rank, off int, data []byte) {
	if len(data) == 0 {
		return
	}
	seg := w.segs[target]
	first, last := off>>stripeShift, (off+len(data)-1)>>stripeShift
	for s := first; s <= last; s++ {
		w.stripes[target][s].Lock()
	}
	copy(seg[off:off+len(data)], data)
	for s := first; s <= last; s++ {
		w.stripes[target][s].Unlock()
	}
}

// GetBatch issues every op towards target as one pipelined train of
// non-blocking GETs and completes them all before returning — the paper's
// §5.6 pattern of posting many one-sided accesses and paying a single
// synchronization. Each constituent get is still accounted individually
// (the NIC would still issue that many reads), but injected remote latency
// is charged once for the whole batch plus the usual per-KiB cost of the
// total payload, instead of one full round-trip per op. A batch of size one
// therefore costs exactly as much as a scalar Get.
func (w *ByteWin) GetBatch(origin, target Rank, ops []GetOp) {
	if len(ops) == 0 {
		return
	}
	w.checkLive(origin, target, "get-batch")
	total := 0
	for _, op := range ops {
		w.checkRange(target, op.Off, len(op.Buf))
		w.f.countGet(origin, target, len(op.Buf))
		total += len(op.Buf)
	}
	w.f.countGetBatch(origin, target)
	w.f.chargeOp(origin, target, total)
	for _, op := range ops {
		w.getStriped(target, op.Off, op.Buf)
	}
}

// PutBatch issues every op towards target as one pipelined train of
// non-blocking PUTs and completes them all before returning — the write-side
// counterpart of GetBatch. Each constituent put is still accounted
// individually, but injected remote latency is charged once for the whole
// train plus the per-KiB cost of the total payload, instead of one full
// round-trip per op. A batch of size one costs exactly as much as a scalar
// Put. Ops within one train must not overlap; the per-page serialization
// provides no ordering between them.
func (w *ByteWin) PutBatch(origin, target Rank, ops []PutOp) {
	if len(ops) == 0 {
		return
	}
	w.checkLive(origin, target, "put-batch")
	total := 0
	for _, op := range ops {
		w.checkRange(target, op.Off, len(op.Data))
		w.f.countPut(origin, target, len(op.Data))
		total += len(op.Data)
	}
	w.f.countPutBatch(origin, target)
	w.f.chargeOp(origin, target, total)
	for _, op := range ops {
		w.putStriped(target, op.Off, op.Data)
	}
}

// WordWin is a 64-bit-word-granularity RMA window with atomic semantics:
// the system and usage windows of BGDL, lock words, and the offloaded DHT
// all live in word windows. Word operations map to the network-accelerated
// remote atomics the paper relies on (AGET/APUT/CAS/FetchAdd).
type WordWin struct {
	f     *Fabric
	nWord int
	words [][]uint64
}

var _ fabric.WordWin = (*WordWin)(nil)

// NewWordWin collectively allocates a word window with nWords 64-bit words
// per rank.
func (f *Fabric) NewWordWin(nWords int) fabric.WordWin {
	if nWords <= 0 {
		panic("rma: WordWin word count must be positive")
	}
	w := &WordWin{f: f, nWord: nWords, words: make([][]uint64, f.n)}
	for r := 0; r < f.n; r++ {
		w.words[r] = make([]uint64, nWords)
	}
	return w
}

// Words returns the per-rank segment size in 64-bit words.
func (w *WordWin) Words() int { return w.nWord }

func (w *WordWin) checkIdx(target Rank, idx int) {
	w.f.checkRank(target)
	if idx < 0 || idx >= w.nWord {
		panic(fmt.Sprintf("rma: word index %d outside window of %d words", idx, w.nWord))
	}
}

// Load atomically reads target's word idx (AGET).
func (w *WordWin) Load(origin, target Rank, idx int) uint64 {
	w.checkIdx(target, idx)
	w.f.countAtomic(origin, target)
	w.f.chargeOp(origin, target, 8)
	return atomic.LoadUint64(&w.words[target][idx])
}

// Store atomically writes target's word idx (APUT).
func (w *WordWin) Store(origin, target Rank, idx int, val uint64) {
	w.checkIdx(target, idx)
	w.f.countAtomic(origin, target)
	w.f.chargeOp(origin, target, 8)
	atomic.StoreUint64(&w.words[target][idx], val)
}

// CAS atomically compares target's word idx with old and, when equal,
// replaces it with new. It returns the previous value and whether the swap
// happened — the semantics of the paper's CAS(local_new, compare, result,
// remote).
func (w *WordWin) CAS(origin, target Rank, idx int, old, new uint64) (prev uint64, swapped bool) {
	w.checkIdx(target, idx)
	w.f.countAtomic(origin, target)
	w.f.chargeOp(origin, target, 8)
	addr := &w.words[target][idx]
	if atomic.CompareAndSwapUint64(addr, old, new) {
		return old, true
	}
	// The CAS failed; report the value that caused the failure. A concurrent
	// winner may change the word again between the CAS and this load, which
	// is indistinguishable from the hardware interleaving where our CAS ran
	// after that second change — callers must retry from the reported value.
	return atomic.LoadUint64(addr), false
}

// LoadBatch atomically reads every word in idxs from target's segment as one
// train of remote atomic gets and returns the values in order. Each
// constituent load is accounted individually, but injected remote latency is
// charged once per train — the "CAS-free word train" the block cache uses to
// revalidate many cached holders against their version stamps in a single
// round-trip. A batch of size one costs exactly as much as a scalar Load.
func (w *WordWin) LoadBatch(origin, target Rank, idxs []int) []uint64 {
	if len(idxs) == 0 {
		return nil
	}
	for _, idx := range idxs {
		w.checkIdx(target, idx)
		w.f.countAtomic(origin, target)
	}
	w.f.countAtomicBatch(origin, target)
	w.f.chargeOp(origin, target, 8*len(idxs))
	out := make([]uint64, len(idxs))
	for i, idx := range idxs {
		out[i] = atomic.LoadUint64(&w.words[target][idx])
	}
	return out
}

// CASBatch issues every op towards target as one train of remote CAS
// atomics and returns the per-op results in order. Each constituent CAS is
// accounted individually, but injected remote latency is charged once per
// train — the batching the lock layer uses to acquire or release all lock
// words a commit touches on one rank in a single round-trip. The ops are
// applied independently (no transactional semantics across the train); a
// train of size one costs exactly as much as a scalar CAS.
func (w *WordWin) CASBatch(origin, target Rank, ops []CASOp) []CASResult {
	if len(ops) == 0 {
		return nil
	}
	for _, op := range ops {
		w.checkIdx(target, op.Idx)
		w.f.countAtomic(origin, target)
	}
	w.f.countAtomicBatch(origin, target)
	w.f.chargeOp(origin, target, 8*len(ops))
	res := make([]CASResult, len(ops))
	for i, op := range ops {
		addr := &w.words[target][op.Idx]
		if atomic.CompareAndSwapUint64(addr, op.Old, op.New) {
			res[i] = CASResult{Prev: op.Old, Swapped: true}
		} else {
			res[i] = CASResult{Prev: atomic.LoadUint64(addr)}
		}
	}
	return res
}

// FetchAdd atomically adds delta to target's word idx and returns the
// previous value (MPI_Fetch_and_op with MPI_SUM).
func (w *WordWin) FetchAdd(origin, target Rank, idx int, delta uint64) uint64 {
	w.checkIdx(target, idx)
	w.f.countAtomic(origin, target)
	w.f.chargeOp(origin, target, 8)
	return atomic.AddUint64(&w.words[target][idx], delta) - delta
}
