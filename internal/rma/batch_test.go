package rma

import (
	"bytes"
	"testing"
	"time"
)

func TestGetBatchMatchesScalarGets(t *testing.T) {
	f := New(3)
	w := f.NewByteWin(1 << 14)
	// Fill rank 2's segment with a recognizable pattern spanning stripe
	// boundaries.
	data := make([]byte, 1<<14)
	for i := range data {
		data[i] = byte(i * 31)
	}
	w.Put(2, 2, 0, data)

	ops := []GetOp{
		{Off: 0, Buf: make([]byte, 17)},
		{Off: 4090, Buf: make([]byte, 16)}, // crosses the 4KiB stripe
		{Off: 1 << 13, Buf: make([]byte, 512)},
		{Off: 1<<14 - 8, Buf: make([]byte, 8)},
		{Off: 100, Buf: make([]byte, 0)},
	}
	w.GetBatch(0, 2, ops)
	for i, op := range ops {
		want := make([]byte, len(op.Buf))
		w.Get(1, 2, op.Off, want)
		if !bytes.Equal(op.Buf, want) {
			t.Errorf("op %d: batch read %v != scalar read %v", i, op.Buf, want)
		}
	}
	// Empty batch is a no-op.
	w.GetBatch(0, 2, nil)
}

func TestGetBatchAccounting(t *testing.T) {
	f := New(2)
	w := f.NewByteWin(1024)
	f.ResetCounters()

	ops := []GetOp{
		{Off: 0, Buf: make([]byte, 10)},
		{Off: 64, Buf: make([]byte, 20)},
		{Off: 512, Buf: make([]byte, 30)},
	}
	w.GetBatch(0, 1, ops)
	s := f.CounterSnapshot(0)
	if s.RemoteGets != 3 {
		t.Errorf("RemoteGets = %d, want 3 (each constituent get is counted)", s.RemoteGets)
	}
	if s.BytesGot != 60 {
		t.Errorf("BytesGot = %d, want 60", s.BytesGot)
	}
	if s.GetBatches != 1 {
		t.Errorf("GetBatches = %d, want 1 (one train per flush)", s.GetBatches)
	}

	// Local batches are counted as local gets and no batch train.
	f.ResetCounters()
	w.GetBatch(1, 1, ops)
	s = f.CounterSnapshot(1)
	if s.LocalGets != 3 || s.GetBatches != 0 || s.RemoteGets != 0 {
		t.Errorf("local batch: %+v", s)
	}
}

func TestGetBatchAmortizesRemoteLatency(t *testing.T) {
	// With 500µs per remote op (the sleep-based regime of spinWait), ten
	// scalar gets cost at least 5ms while one ten-op batch charges the
	// injected latency once. Generous factor-2 margin absorbs oversleep.
	const n = 10
	f := New(2, Options{Latency: Latency{RemoteNs: 500_000}})
	w := f.NewByteWin(4096)

	bufs := make([]GetOp, n)
	for i := range bufs {
		bufs[i] = GetOp{Off: i * 64, Buf: make([]byte, 64)}
	}
	start := time.Now()
	for _, op := range bufs {
		w.Get(0, 1, op.Off, op.Buf)
	}
	scalar := time.Since(start)

	start = time.Now()
	w.GetBatch(0, 1, bufs)
	batched := time.Since(start)

	if scalar < n*500*time.Microsecond {
		t.Errorf("scalar loop finished in %v, below the injected %v", scalar, n*500*time.Microsecond)
	}
	if batched > scalar/2 {
		t.Errorf("batched train took %v, not meaningfully below scalar %v", batched, scalar)
	}
}

func TestPutBatchMatchesScalarPuts(t *testing.T) {
	f := New(3)
	w := f.NewByteWin(1 << 14)
	pattern := func(seed byte, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = seed + byte(i*7)
		}
		return b
	}
	ops := []PutOp{
		{Off: 0, Data: pattern(1, 17)},
		{Off: 4090, Data: pattern(2, 16)}, // crosses the 4KiB stripe
		{Off: 1 << 13, Data: pattern(3, 512)},
		{Off: 1<<14 - 8, Data: pattern(4, 8)},
		{Off: 100, Data: nil},
	}
	w.PutBatch(0, 2, ops)
	for i, op := range ops {
		got := make([]byte, len(op.Data))
		w.Get(1, 2, op.Off, got)
		if !bytes.Equal(got, op.Data) {
			t.Errorf("op %d: read back %v, wrote %v", i, got, op.Data)
		}
	}
	// Empty batch is a no-op.
	w.PutBatch(0, 2, nil)
}

func TestPutBatchAccounting(t *testing.T) {
	f := New(2)
	w := f.NewByteWin(1024)
	f.ResetCounters()

	ops := []PutOp{
		{Off: 0, Data: make([]byte, 10)},
		{Off: 64, Data: make([]byte, 20)},
		{Off: 512, Data: make([]byte, 30)},
	}
	w.PutBatch(0, 1, ops)
	s := f.CounterSnapshot(0)
	if s.RemotePuts != 3 {
		t.Errorf("RemotePuts = %d, want 3 (each constituent put is counted)", s.RemotePuts)
	}
	if s.BytesPut != 60 {
		t.Errorf("BytesPut = %d, want 60", s.BytesPut)
	}
	if s.PutBatches != 1 {
		t.Errorf("PutBatches = %d, want 1 (one train per flush)", s.PutBatches)
	}

	// Local batches are counted as local puts and no batch train.
	f.ResetCounters()
	w.PutBatch(1, 1, ops)
	s = f.CounterSnapshot(1)
	if s.LocalPuts != 3 || s.PutBatches != 0 || s.RemotePuts != 0 {
		t.Errorf("local batch: %+v", s)
	}
}

func TestPutBatchAmortizesRemoteLatency(t *testing.T) {
	const n = 10
	f := New(2, Options{Latency: Latency{RemoteNs: 500_000}})
	w := f.NewByteWin(4096)

	ops := make([]PutOp, n)
	for i := range ops {
		ops[i] = PutOp{Off: i * 64, Data: make([]byte, 64)}
	}
	start := time.Now()
	for _, op := range ops {
		w.Put(0, 1, op.Off, op.Data)
	}
	scalar := time.Since(start)

	start = time.Now()
	w.PutBatch(0, 1, ops)
	batched := time.Since(start)

	if scalar < n*500*time.Microsecond {
		t.Errorf("scalar loop finished in %v, below the injected %v", scalar, n*500*time.Microsecond)
	}
	if batched > scalar/2 {
		t.Errorf("batched train took %v, not meaningfully below scalar %v", batched, scalar)
	}
}

func TestCASBatchSemanticsAndAccounting(t *testing.T) {
	f := New(2)
	w := f.NewWordWin(16)
	w.Store(0, 1, 2, 7)
	w.Store(0, 1, 3, 9)
	f.ResetCounters()

	res := w.CASBatch(0, 1, []CASOp{
		{Idx: 1, Old: 0, New: 100}, // free word: swaps
		{Idx: 2, Old: 7, New: 200}, // matching old: swaps
		{Idx: 3, Old: 0, New: 300}, // mismatched old: fails, reports 9
	})
	s := f.CounterSnapshot(0)
	if s.RemoteAtoms != 3 {
		t.Errorf("RemoteAtoms = %d, want 3 (each constituent CAS is counted)", s.RemoteAtoms)
	}
	if s.AtomicBatches != 1 {
		t.Errorf("AtomicBatches = %d, want 1", s.AtomicBatches)
	}
	if !res[0].Swapped || res[0].Prev != 0 {
		t.Errorf("op 0: %+v, want swap from 0", res[0])
	}
	if !res[1].Swapped || res[1].Prev != 7 {
		t.Errorf("op 1: %+v, want swap from 7", res[1])
	}
	if res[2].Swapped || res[2].Prev != 9 {
		t.Errorf("op 2: %+v, want failure reporting 9", res[2])
	}
	if got := w.Load(0, 1, 1); got != 100 {
		t.Errorf("word 1 = %d, want 100", got)
	}
	if got := w.Load(0, 1, 3); got != 9 {
		t.Errorf("word 3 = %d, want 9 (failed CAS must not write)", got)
	}
	if w.CASBatch(0, 1, nil) != nil {
		t.Error("empty CASBatch should return nil")
	}
}

func TestLoadBatchSemanticsAndAccounting(t *testing.T) {
	f := New(2)
	w := f.NewWordWin(16)
	w.Store(0, 1, 1, 11)
	w.Store(0, 1, 5, 55)
	f.ResetCounters()

	got := w.LoadBatch(0, 1, []int{1, 5, 7})
	want := []uint64{11, 55, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d: got %d, want %d", i, got[i], want[i])
		}
	}
	s := f.CounterSnapshot(0)
	if s.RemoteAtoms != 3 {
		t.Errorf("RemoteAtoms = %d, want 3 (each constituent load is counted)", s.RemoteAtoms)
	}
	if s.AtomicBatches != 1 {
		t.Errorf("AtomicBatches = %d, want 1 (latency charged once per train)", s.AtomicBatches)
	}
	if w.LoadBatch(0, 1, nil) != nil {
		t.Error("empty LoadBatch should return nil")
	}

	// Local trains count local atomics and no batch train.
	f.ResetCounters()
	w.LoadBatch(1, 1, []int{1, 5})
	s = f.CounterSnapshot(1)
	if s.LocalAtomics != 2 || s.AtomicBatches != 0 || s.RemoteAtoms != 0 {
		t.Errorf("local train: %+v", s)
	}
}

func TestCacheCounters(t *testing.T) {
	f := New(2)
	f.AddCache(0, 3, 1)
	f.AddCache(1, 0, 2)
	if s := f.CounterSnapshot(0); s.CacheHits != 3 || s.CacheMisses != 1 {
		t.Errorf("rank 0 cache counters: %+v", s)
	}
	if s := f.TotalSnapshot(); s.CacheHits != 3 || s.CacheMisses != 3 {
		t.Errorf("total cache counters: %+v", s)
	}
	f.ResetCounters()
	if s := f.TotalSnapshot(); s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Errorf("cache counters survived reset: %+v", s)
	}
}
