package rma

import (
	"bytes"
	"testing"
	"time"
)

func TestGetBatchMatchesScalarGets(t *testing.T) {
	f := New(3)
	w := f.NewByteWin(1 << 14)
	// Fill rank 2's segment with a recognizable pattern spanning stripe
	// boundaries.
	data := make([]byte, 1<<14)
	for i := range data {
		data[i] = byte(i * 31)
	}
	w.Put(2, 2, 0, data)

	ops := []GetOp{
		{Off: 0, Buf: make([]byte, 17)},
		{Off: 4090, Buf: make([]byte, 16)}, // crosses the 4KiB stripe
		{Off: 1 << 13, Buf: make([]byte, 512)},
		{Off: 1<<14 - 8, Buf: make([]byte, 8)},
		{Off: 100, Buf: make([]byte, 0)},
	}
	w.GetBatch(0, 2, ops)
	for i, op := range ops {
		want := make([]byte, len(op.Buf))
		w.Get(1, 2, op.Off, want)
		if !bytes.Equal(op.Buf, want) {
			t.Errorf("op %d: batch read %v != scalar read %v", i, op.Buf, want)
		}
	}
	// Empty batch is a no-op.
	w.GetBatch(0, 2, nil)
}

func TestGetBatchAccounting(t *testing.T) {
	f := New(2)
	w := f.NewByteWin(1024)
	f.ResetCounters()

	ops := []GetOp{
		{Off: 0, Buf: make([]byte, 10)},
		{Off: 64, Buf: make([]byte, 20)},
		{Off: 512, Buf: make([]byte, 30)},
	}
	w.GetBatch(0, 1, ops)
	s := f.CounterSnapshot(0)
	if s.RemoteGets != 3 {
		t.Errorf("RemoteGets = %d, want 3 (each constituent get is counted)", s.RemoteGets)
	}
	if s.BytesGot != 60 {
		t.Errorf("BytesGot = %d, want 60", s.BytesGot)
	}
	if s.GetBatches != 1 {
		t.Errorf("GetBatches = %d, want 1 (one train per flush)", s.GetBatches)
	}

	// Local batches are counted as local gets and no batch train.
	f.ResetCounters()
	w.GetBatch(1, 1, ops)
	s = f.CounterSnapshot(1)
	if s.LocalGets != 3 || s.GetBatches != 0 || s.RemoteGets != 0 {
		t.Errorf("local batch: %+v", s)
	}
}

func TestGetBatchAmortizesRemoteLatency(t *testing.T) {
	// With 500µs per remote op (the sleep-based regime of spinWait), ten
	// scalar gets cost at least 5ms while one ten-op batch charges the
	// injected latency once. Generous factor-2 margin absorbs oversleep.
	const n = 10
	f := New(2, Options{Latency: Latency{RemoteNs: 500_000}})
	w := f.NewByteWin(4096)

	bufs := make([]GetOp, n)
	for i := range bufs {
		bufs[i] = GetOp{Off: i * 64, Buf: make([]byte, 64)}
	}
	start := time.Now()
	for _, op := range bufs {
		w.Get(0, 1, op.Off, op.Buf)
	}
	scalar := time.Since(start)

	start = time.Now()
	w.GetBatch(0, 1, bufs)
	batched := time.Since(start)

	if scalar < n*500*time.Microsecond {
		t.Errorf("scalar loop finished in %v, below the injected %v", scalar, n*500*time.Microsecond)
	}
	if batched > scalar/2 {
		t.Errorf("batched train took %v, not meaningfully below scalar %v", batched, scalar)
	}
}
