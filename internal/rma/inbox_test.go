package rma

import (
	"bytes"
	"testing"
)

// TestInboxDeliverDrain exercises the one-sided mailbox: concurrent
// deliveries from many sources, drain in ascending source order, and slot
// clearing between epochs.
func TestInboxDeliverDrain(t *testing.T) {
	const n = 4
	f := New(n)
	ib := f.NewInbox(1 << 12)
	// Epoch 1: every rank but 3 delivers one payload to rank 3.
	f.Run(func(r Rank) {
		if r == 3 {
			return
		}
		ib.Deliver(r, 3, []byte{byte(r), byte(r) * 2})
	})
	var got [][]byte
	ib.Drain(3, func(src Rank, payload []byte) {
		got = append(got, append([]byte{byte(src)}, payload...))
	})
	if len(got) != 3 {
		t.Fatalf("drained %d payloads, want 3", len(got))
	}
	for i, g := range got {
		want := []byte{byte(i), byte(i), byte(i) * 2}
		if !bytes.Equal(g, want) {
			t.Fatalf("payload %d = %v, want %v (ascending source order)", i, g, want)
		}
	}
	// Epoch 2: the slots were cleared, a fresh delivery stands alone.
	ib.Deliver(0, 3, []byte("fresh"))
	count := 0
	ib.Drain(3, func(src Rank, payload []byte) {
		count++
		if src != 0 || !bytes.Equal(payload, []byte("fresh")) {
			t.Fatalf("epoch 2 drained %q from %d", payload, src)
		}
	})
	if count != 1 {
		t.Fatalf("epoch 2 drained %d payloads, want 1", count)
	}
	// An empty drain is a no-op.
	ib.Drain(3, func(Rank, []byte) { t.Fatal("drained from an empty inbox") })
}

// TestInboxEmptyPayload: a zero-length delivery is still a delivery — the
// header distinguishes "sent nothing" from "sent an empty payload".
func TestInboxEmptyPayload(t *testing.T) {
	f := New(2)
	ib := f.NewInbox(1 << 10)
	ib.Deliver(0, 1, nil)
	count := 0
	ib.Drain(1, func(src Rank, payload []byte) {
		count++
		if src != 0 || len(payload) != 0 {
			t.Fatalf("drained %q from %d", payload, src)
		}
	})
	if count != 1 {
		t.Fatalf("drained %d payloads, want 1", count)
	}
}

// TestInboxDrainIsLocal: draining pays no remote traffic — the receiving
// rank reads and clears only its own segment.
func TestInboxDrainIsLocal(t *testing.T) {
	f := New(2)
	ib := f.NewInbox(1 << 10)
	ib.Deliver(0, 1, []byte("x"))
	before := f.CounterSnapshot(1)
	ib.Drain(1, func(Rank, []byte) {})
	after := f.CounterSnapshot(1)
	if d := after.RemoteOps() - before.RemoteOps(); d != 0 {
		t.Fatalf("Drain issued %d remote ops", d)
	}
}

// TestInboxDeliveryAccounting: one delivery is exactly one PUT train of two
// constituent puts (header, payload) and no atomics — the latency model
// charges it once.
func TestInboxDeliveryAccounting(t *testing.T) {
	f := New(2)
	ib := f.NewInbox(1 << 10)
	f.ResetCounters()
	ib.Deliver(0, 1, []byte("hello"))
	s := f.CounterSnapshot(0)
	if s.PutBatches != 1 || s.RemotePuts != 2 || s.RemoteAtoms != 0 {
		t.Fatalf("delivery accounting = %+v, want 1 train, 2 puts, 0 atomics", s)
	}
	if s.BytesPut != int64(len("hello"))+4 {
		t.Fatalf("BytesPut = %d, want payload+header", s.BytesPut)
	}
}
