package rma

import (
	"bytes"
	"sync"
	"testing"
)

func TestFabricSize(t *testing.T) {
	f := New(4)
	if f.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", f.Size())
	}
}

func TestNewPanicsOnBadRankCount(t *testing.T) {
	for _, n := range []int{0, -1, 1<<16 + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestRunExecutesEveryRank(t *testing.T) {
	f := New(8)
	var mu sync.Mutex
	seen := make(map[Rank]bool)
	f.Run(func(r Rank) {
		mu.Lock()
		seen[r] = true
		mu.Unlock()
	})
	if len(seen) != 8 {
		t.Fatalf("Run visited %d ranks, want 8", len(seen))
	}
}

func TestByteWinPutGetRoundTrip(t *testing.T) {
	f := New(3)
	w := f.NewByteWin(1 << 14)
	data := []byte("the graph database interface")
	w.Put(0, 2, 100, data)
	buf := make([]byte, len(data))
	w.Get(1, 2, 100, buf)
	if !bytes.Equal(buf, data) {
		t.Fatalf("Get = %q, want %q", buf, data)
	}
}

func TestByteWinCrossPageAccess(t *testing.T) {
	f := New(1)
	w := f.NewByteWin(3 << stripeShift)
	data := make([]byte, 2<<stripeShift) // spans three stripes
	for i := range data {
		data[i] = byte(i)
	}
	off := (1 << stripeShift) - 7
	w.Put(0, 0, off, data)
	buf := make([]byte, len(data))
	w.Get(0, 0, off, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-page round trip mismatch")
	}
}

func TestByteWinBoundsPanic(t *testing.T) {
	f := New(1)
	w := f.NewByteWin(64)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Put did not panic")
		}
	}()
	w.Put(0, 0, 60, make([]byte, 8))
}

func TestByteWinZeroLengthOps(t *testing.T) {
	f := New(1)
	w := f.NewByteWin(64)
	w.Put(0, 0, 64, nil) // zero bytes at the end boundary is legal
	w.Get(0, 0, 0, nil)
}

func TestWordWinLoadStore(t *testing.T) {
	f := New(2)
	w := f.NewWordWin(16)
	w.Store(0, 1, 3, 0xdeadbeef)
	if got := w.Load(1, 1, 3); got != 0xdeadbeef {
		t.Fatalf("Load = %#x, want 0xdeadbeef", got)
	}
}

func TestWordWinCAS(t *testing.T) {
	f := New(1)
	w := f.NewWordWin(4)
	w.Store(0, 0, 0, 7)
	if prev, ok := w.CAS(0, 0, 0, 7, 9); !ok || prev != 7 {
		t.Fatalf("CAS(7->9) = (%d, %v), want (7, true)", prev, ok)
	}
	if prev, ok := w.CAS(0, 0, 0, 7, 11); ok || prev != 9 {
		t.Fatalf("failed CAS = (%d, %v), want (9, false)", prev, ok)
	}
}

func TestWordWinFetchAdd(t *testing.T) {
	f := New(1)
	w := f.NewWordWin(1)
	if prev := w.FetchAdd(0, 0, 0, 5); prev != 0 {
		t.Fatalf("first FetchAdd prev = %d, want 0", prev)
	}
	if prev := w.FetchAdd(0, 0, 0, 3); prev != 5 {
		t.Fatalf("second FetchAdd prev = %d, want 5", prev)
	}
	if got := w.Load(0, 0, 0); got != 8 {
		t.Fatalf("final value = %d, want 8", got)
	}
}

func TestWordWinConcurrentFetchAdd(t *testing.T) {
	const perRank = 1000
	f := New(8)
	w := f.NewWordWin(1)
	f.Run(func(r Rank) {
		for i := 0; i < perRank; i++ {
			w.FetchAdd(r, 0, 0, 1)
		}
	})
	if got := w.Load(0, 0, 0); got != 8*perRank {
		t.Fatalf("concurrent FetchAdd total = %d, want %d", got, 8*perRank)
	}
}

func TestCountersDistinguishLocalRemote(t *testing.T) {
	f := New(2)
	b := f.NewByteWin(64)
	w := f.NewWordWin(4)
	b.Put(0, 0, 0, make([]byte, 8)) // local put
	b.Put(0, 1, 0, make([]byte, 8)) // remote put
	b.Get(0, 1, 0, make([]byte, 4)) // remote get
	w.Load(0, 1, 0)                 // remote atomic
	w.Store(0, 0, 0, 1)             // local atomic
	s := f.CounterSnapshot(0)
	if s.LocalPuts != 1 || s.RemotePuts != 1 || s.RemoteGets != 1 {
		t.Fatalf("put/get counters wrong: %+v", s)
	}
	if s.LocalAtomics != 1 || s.RemoteAtoms != 1 {
		t.Fatalf("atomic counters wrong: %+v", s)
	}
	if s.BytesPut != 16 || s.BytesGot != 4 {
		t.Fatalf("byte counters wrong: %+v", s)
	}
	if s.RemoteOps() != 3 || s.LocalOps() != 2 {
		t.Fatalf("op totals wrong: %+v", s)
	}
}

func TestResetCounters(t *testing.T) {
	f := New(2)
	b := f.NewByteWin(64)
	b.Put(0, 1, 0, make([]byte, 8))
	f.ResetCounters()
	if tot := f.TotalSnapshot(); tot.RemoteOps() != 0 || tot.BytesPut != 0 {
		t.Fatalf("counters not reset: %+v", tot)
	}
}

func TestFlushCounts(t *testing.T) {
	f := New(2)
	f.Flush(0, 1)
	f.FlushAll(1)
	if f.CounterSnapshot(0).Flushes != 1 || f.CounterSnapshot(1).Flushes != 1 {
		t.Fatal("flush counters not incremented")
	}
}

func TestConcurrentByteWinDisjointRanges(t *testing.T) {
	f := New(8)
	w := f.NewByteWin(8 * 512)
	f.Run(func(r Rank) {
		data := bytes.Repeat([]byte{byte(r + 1)}, 512)
		w.Put(r, 0, int(r)*512, data)
	})
	for r := 0; r < 8; r++ {
		buf := make([]byte, 512)
		w.Get(0, 0, r*512, buf)
		for _, b := range buf {
			if b != byte(r+1) {
				t.Fatalf("rank %d region corrupted: got %d", r, b)
			}
		}
	}
}

func TestLatencyInjectionSlowsRemoteOps(t *testing.T) {
	f := New(2, Options{Latency: Latency{RemoteNs: 20_000}})
	w := f.NewWordWin(1)
	start := nowNs()
	for i := 0; i < 10; i++ {
		w.Load(0, 1, 0)
	}
	elapsed := nowNs() - start
	if elapsed < 10*20_000 {
		t.Fatalf("10 remote ops with 20µs latency took %dns, want >= 200µs", elapsed)
	}
	// Local ops must remain fast.
	start = nowNs()
	for i := 0; i < 10; i++ {
		w.Load(0, 0, 0)
	}
	if local := nowNs() - start; local > 10*20_000 {
		t.Fatalf("local ops were latency-charged: %dns", local)
	}
}
