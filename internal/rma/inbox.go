package rma

import (
	"encoding/binary"
	"fmt"
)

// inboxHeader prefixes every delivery in an inbox slot: the payload length
// plus one as a little-endian uint32, so a zeroed slot reads as "empty".
const inboxHeader = 4

// Inbox is a one-sided per-rank mailbox built from a byte window: the
// alltoallv substrate of the dense analytics engine. Every rank owns one
// segment, statically partitioned into one slot per source rank, so a
// delivery needs no offset negotiation at all — the sender writes header
// plus payload into its own slot of the target's segment as a single
// vectored PUT train, paying the injected remote latency exactly once per
// delivery, and the target executes no code on the data path (the defining
// one-sided property the paper's §5.6 message aggregation relies on).
//
// Epoch discipline is the caller's job, exactly as with raw MPI RMA: at most
// one delivery per (source, target) pair per epoch, all Delivers completed
// (externally, e.g. with a barrier) before the target Drains, and the Drain
// completed before the next epoch's Delivers begin, because Drain clears the
// slot headers it consumed.
type Inbox struct {
	f    *Fabric
	data *ByteWin
	slot int // bytes per source slot
}

// NewInbox collectively allocates an inbox with segBytes of mailbox space
// per rank, split evenly across source slots.
func (f *Fabric) NewInbox(segBytes int) *Inbox {
	slot := segBytes / f.Size()
	if slot <= inboxHeader {
		panic(fmt.Sprintf("rma: inbox segment of %d bytes leaves no payload room across %d source slots", segBytes, f.Size()))
	}
	return &Inbox{f: f, data: f.NewByteWin(segBytes), slot: slot}
}

// Budget returns the largest payload one delivery can carry.
func (ib *Inbox) Budget() int { return ib.slot - inboxHeader }

// Deliver writes payload into the origin's slot of target's mailbox as one
// PUT train (header, payload). At most one delivery per (origin, target)
// pair and epoch; payloads beyond Budget are a programming error and panic —
// the exchange layer streams larger slots over several epochs.
func (ib *Inbox) Deliver(origin, target Rank, payload []byte) {
	if len(payload) > ib.Budget() {
		panic(fmt.Sprintf("rma: inbox delivery of %d bytes exceeds the %d-byte slot budget", len(payload), ib.Budget()))
	}
	var hdr [inboxHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload))+1)
	base := int(origin) * ib.slot
	ib.data.PutBatch(origin, target, []PutOp{
		{Off: base, Data: hdr[:]},
		{Off: base + inboxHeader, Data: payload},
	})
}

// Drain scans the caller's own mailbox slots in ascending source order,
// invokes fn once per delivery, and clears the consumed headers for the next
// epoch. Drain touches only rank-local window state, so it pays no injected
// latency. The payload slice is freshly allocated per delivery; fn may
// retain it.
func (ib *Inbox) Drain(me Rank, fn func(src Rank, payload []byte)) {
	var hdr [inboxHeader]byte
	zero := make([]byte, inboxHeader)
	for s := 0; s < ib.f.Size(); s++ {
		base := s * ib.slot
		ib.data.Get(me, me, base, hdr[:])
		l := binary.LittleEndian.Uint32(hdr[:])
		if l == 0 {
			continue
		}
		buf := make([]byte, int(l-1))
		ib.data.Get(me, me, base+inboxHeader, buf)
		ib.data.Put(me, me, base, zero)
		fn(Rank(s), buf)
	}
}
