package rma

import "time"

// nowNs returns a monotonic timestamp in nanoseconds.
func nowNs() int64 { return int64(time.Since(epoch)) }

var epoch = time.Now()
