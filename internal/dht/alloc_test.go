package dht

import (
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

// TestInsertAllocatesOnBucketRank: an entry's heap slot must live on the rank
// its bucket hashes to, never on the rank that happened to insert it. Entries
// then fate-share with their bucket — a rank death severs only the keys
// hashed to it — instead of with their inserter; vertices are inserted by the
// rank that owns them, so inserter-local allocation made a dead rank take
// down its vertices' directory entries together with their primary copies,
// leaving replica failover nothing to swing.
func TestInsertAllocatesOnBucketRank(t *testing.T) {
	f := rma.New(4)
	m := New(f, Config{BucketsPerRank: 16, EntriesPerRank: 256})
	for key := uint64(0); key < 200; key++ {
		// Always insert from rank 0: under the old policy every slot would
		// land on rank 0 (or its overflow successors).
		if !m.Insert(0, key, key*10) {
			t.Fatalf("insert %d failed", key)
		}
	}
	for key := uint64(0); key < 200; key++ {
		bRank, bIdx := m.bucketOf(key)
		bucket := ref(uint64(bRank)<<rankShift | uint64(bIdx))
		found := false
		for p := m.loadNext(0, bucket); !p.isNull(); p = m.loadNext(0, p) {
			k, _, _, ok := m.loadEntry(0, p)
			if !ok {
				t.Fatalf("key %d: entry recycled under a quiescent walk", key)
			}
			if k == key {
				if p.rank() != bRank {
					t.Fatalf("key %d: entry slot on rank %d, bucket on rank %d",
						key, p.rank(), bRank)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %d not found on its bucket chain", key)
		}
	}
	// Exhaustion still falls back to other ranks rather than failing: drain
	// far past one rank's heap and every insert must still succeed.
	small := New(rma.New(2), Config{BucketsPerRank: 4, EntriesPerRank: 8})
	for key := uint64(0); key < 12; key++ {
		if !small.Insert(0, key, key) {
			t.Fatalf("overflow insert %d failed with free slots remaining", key)
		}
	}
}
