package dht

import (
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

// FuzzDHTRefRoundTrip pins the tagged-pointer encoding of the DHT: every
// (heap flag, reuse tag, rank, slot) combination must survive an
// encode/decode round trip with the documented field widths (15-bit tag,
// 16-bit rank, 32-bit slot), decoding an arbitrary word must be total, and
// re-encoding the decoded fields must be idempotent — a heap ref never
// collides with a bucket ref or with NULL. Live migration CAS-swings DHT
// values whose correctness rests on exactly these invariants.
func FuzzDHTRefRoundTrip(f *testing.F) {
	f.Add(true, uint16(0), uint16(0), uint32(0), uint64(0))
	f.Add(true, uint16(0x7fff), uint16(65535), uint32(1<<32-1), uint64(1)<<63)
	f.Add(false, uint16(3), uint16(7), uint32(42), uint64(0xdeadbeefcafe))
	f.Add(true, uint16(0x8001), uint16(12), uint32(9), uint64(1<<48|17))
	f.Fuzz(func(t *testing.T, heap bool, tag uint16, rank uint16, idx uint32, raw uint64) {
		if heap {
			p := heapRef(rma.Rank(rank), idx, tag)
			if !p.isHeap() {
				t.Fatal("heap ref lost its heap flag")
			}
			if p.isNull() {
				t.Fatal("heap ref decoded as NULL")
			}
			if got := p.rank(); got != rma.Rank(rank) {
				t.Fatalf("rank %d round-tripped to %d", rank, got)
			}
			if got := p.idx(); got != idx {
				t.Fatalf("idx %d round-tripped to %d", idx, got)
			}
			if got := p.tag(); got != tag&0x7fff {
				t.Fatalf("tag %#x round-tripped to %#x (15-bit field)", tag, got)
			}
			if again := heapRef(p.rank(), p.idx(), p.tag()); again != p {
				t.Fatalf("re-encode changed the ref: %#x -> %#x", uint64(p), uint64(again))
			}
		} else {
			// Bucket refs carry only rank and index; the heap flag and tag
			// bits stay clear, so they can never alias a heap ref.
			p := ref(uint64(rank)<<rankShift | uint64(idx))
			if p.isHeap() {
				t.Fatal("bucket ref decoded as heap")
			}
			if got := p.rank(); got != rma.Rank(rank) {
				t.Fatalf("bucket rank %d round-tripped to %d", rank, got)
			}
			if got := p.idx(); got != idx {
				t.Fatalf("bucket idx %d round-tripped to %d", idx, got)
			}
		}

		// Decoding any raw word is total, and re-encoding the decoded heap
		// fields reproduces the word exactly (the three fields plus the flag
		// cover all bits a heap ref may carry).
		p := ref(raw)
		_ = p.isNull()
		if p.isHeap() {
			if again := heapRef(p.rank(), p.idx(), p.tag()); again != p {
				t.Fatalf("raw heap word %#x re-encodes to %#x", raw, uint64(again))
			}
		}
	})
}
