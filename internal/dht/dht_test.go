package dht

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gdi-go/gdi/internal/rma"
)

func newMap(ranks, buckets, entries int) *Map {
	return New(rma.New(ranks), Config{BucketsPerRank: buckets, EntriesPerRank: entries})
}

func TestInsertLookup(t *testing.T) {
	m := newMap(4, 16, 64)
	if !m.Insert(0, 42, 4242) {
		t.Fatal("insert failed")
	}
	if v, ok := m.Lookup(2, 42); !ok || v != 4242 {
		t.Fatalf("Lookup(42) = (%d, %v), want (4242, true)", v, ok)
	}
	if _, ok := m.Lookup(1, 43); ok {
		t.Fatal("Lookup of absent key succeeded")
	}
}

func TestDelete(t *testing.T) {
	m := newMap(2, 8, 32)
	m.Insert(0, 7, 70)
	if !m.Delete(1, 7) {
		t.Fatal("Delete of present key reported false")
	}
	if _, ok := m.Lookup(0, 7); ok {
		t.Fatal("key still visible after delete")
	}
	if m.Delete(0, 7) {
		t.Fatal("Delete of absent key reported true")
	}
}

func TestChainedKeysSameBucket(t *testing.T) {
	// One bucket per rank on one rank forces every key into one chain.
	m := newMap(1, 1, 64)
	for k := uint64(1); k <= 20; k++ {
		if !m.Insert(0, k, k*10) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if got := m.Len(0); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	// Delete from the middle, head, and tail of the chain.
	for _, k := range []uint64{10, 20, 1, 15, 2} {
		if !m.Delete(0, k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	for k := uint64(1); k <= 20; k++ {
		v, ok := m.Lookup(0, k)
		deleted := k == 10 || k == 20 || k == 1 || k == 15 || k == 2
		if ok == deleted {
			t.Fatalf("Lookup(%d) ok=%v after deletions", k, ok)
		}
		if ok && v != k*10 {
			t.Fatalf("Lookup(%d) = %d, want %d", k, v, k*10)
		}
	}
}

func TestHeapExhaustionAndReuse(t *testing.T) {
	m := newMap(1, 4, 8)
	for k := uint64(0); k < 8; k++ {
		if !m.Insert(0, k, k) {
			t.Fatalf("insert %d failed with capacity left", k)
		}
	}
	if m.Insert(0, 100, 100) {
		t.Fatal("insert beyond heap capacity succeeded")
	}
	if !m.Delete(0, 3) {
		t.Fatal("delete failed")
	}
	if !m.Insert(0, 100, 100) {
		t.Fatal("slot not reusable after delete")
	}
	if v, ok := m.Lookup(0, 100); !ok || v != 100 {
		t.Fatalf("Lookup(100) = (%d, %v)", v, ok)
	}
}

func TestAllocSpillsToOtherRanks(t *testing.T) {
	m := newMap(2, 4, 2) // tiny per-rank heaps
	for k := uint64(0); k < 4; k++ {
		if !m.Insert(0, k, k) { // rank 0's heap holds 2; the rest spill to rank 1
			t.Fatalf("insert %d failed", k)
		}
	}
	for k := uint64(0); k < 4; k++ {
		if _, ok := m.Lookup(1, k); !ok {
			t.Fatalf("key %d lost after spill", k)
		}
	}
}

func TestAgainstModelSequential(t *testing.T) {
	m := newMap(4, 32, 4096)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(200))
		switch rng.Intn(3) {
		case 0:
			if _, dup := model[k]; !dup {
				if !m.Insert(rma.Rank(rng.Intn(4)), k, k*3) {
					t.Fatal("insert failed")
				}
				model[k] = k * 3
			}
		case 1:
			got := m.Delete(rma.Rank(rng.Intn(4)), k)
			_, want := model[k]
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(model, k)
		case 2:
			v, ok := m.Lookup(rma.Rank(rng.Intn(4)), k)
			wv, wok := model[k]
			if ok != wok || (ok && v != wv) {
				t.Fatalf("step %d: Lookup(%d) = (%d, %v), want (%d, %v)", i, k, v, ok, wv, wok)
			}
		}
	}
	if m.Len(0) != len(model) {
		t.Fatalf("Len = %d, model = %d", m.Len(0), len(model))
	}
}

func TestQuickInsertLookupDelete(t *testing.T) {
	m := newMap(2, 64, 8192)
	seen := map[uint64]bool{}
	prop := func(key uint64, val uint64) bool {
		if seen[key] {
			return true
		}
		seen[key] = true
		if !m.Insert(0, key, val) {
			return false
		}
		v, ok := m.Lookup(1, key)
		if !ok || v != val {
			return false
		}
		if !m.Delete(0, key) {
			return false
		}
		_, ok = m.Lookup(1, key)
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	const ranks, perRank = 8, 500
	m := newMap(ranks, 64, 2048)
	m.f.Run(func(r rma.Rank) {
		base := uint64(r) * perRank
		for i := uint64(0); i < perRank; i++ {
			if !m.Insert(r, base+i, base+i+1) {
				t.Errorf("rank %d: insert %d failed", r, base+i)
				return
			}
		}
		for i := uint64(0); i < perRank; i++ {
			if v, ok := m.Lookup(r, base+i); !ok || v != base+i+1 {
				t.Errorf("rank %d: lookup %d = (%d, %v)", r, base+i, v, ok)
				return
			}
		}
		for i := uint64(0); i < perRank; i += 2 {
			if !m.Delete(r, base+i) {
				t.Errorf("rank %d: delete %d failed", r, base+i)
				return
			}
		}
	})
	if got, want := m.Len(0), ranks*perRank/2; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

func TestConcurrentSameChainChurn(t *testing.T) {
	// All ranks hammer the same single bucket: inserts, lookups, deletes of
	// overlapping keys. Verifies the tombstone protocol under real contention.
	const ranks = 8
	m := New(rma.New(ranks), Config{BucketsPerRank: 1, EntriesPerRank: 4096})
	m.f.Run(func(r rma.Rank) {
		rng := rand.New(rand.NewSource(int64(r) + 7))
		for i := 0; i < 300; i++ {
			k := uint64(r)<<32 | uint64(i) // per-rank keys, same chain
			if !m.Insert(r, k, k+1) {
				t.Errorf("rank %d: insert failed", r)
				return
			}
			// Random probe of any rank's keyspace while chains churn.
			probe := uint64(rng.Intn(ranks))<<32 | uint64(rng.Intn(300))
			if v, ok := m.Lookup(r, probe); ok && v != probe+1 {
				t.Errorf("rank %d: lookup(%d) returned wrong value %d", r, probe, v)
				return
			}
			if i%3 == 0 {
				if !m.Delete(r, k) {
					t.Errorf("rank %d: delete of own key %d failed", r, k)
					return
				}
			}
		}
	})
	// Every remaining key must still be intact.
	for r := 0; r < ranks; r++ {
		for i := 0; i < 300; i++ {
			k := uint64(r)<<32 | uint64(i)
			v, ok := m.Lookup(0, k)
			if i%3 == 0 {
				if ok {
					t.Fatalf("deleted key %d still present", k)
				}
			} else if !ok || v != k+1 {
				t.Fatalf("key %d = (%d, %v), want (%d, true)", k, v, ok, k+1)
			}
		}
	}
}

func TestRefEncoding(t *testing.T) {
	p := heapRef(513, 12345, 0x7abc)
	if !p.isHeap() || p.rank() != 513 || p.idx() != 12345 || p.tag() != 0x7abc&0x7fff {
		t.Fatalf("ref fields: heap=%v rank=%d idx=%d tag=%#x", p.isHeap(), p.rank(), p.idx(), p.tag())
	}
	if ref(0).isHeap() || !ref(0).isNull() {
		t.Fatal("zero ref must be a null bucket ref")
	}
}
