package dht

import (
	"sync"
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

// TestReplaceSwingsValue: the migration CAS-swing updates an existing entry
// in place and refuses to fire on a mismatched old value or a missing key.
func TestReplaceSwingsValue(t *testing.T) {
	f := rma.New(2)
	m := New(f, Config{BucketsPerRank: 8, EntriesPerRank: 64})
	if !m.Insert(0, 42, 100) {
		t.Fatal("insert failed")
	}
	if m.Replace(0, 42, 99, 200) {
		t.Fatal("Replace fired on a mismatched old value")
	}
	if v, _ := m.Lookup(1, 42); v != 100 {
		t.Fatalf("value corrupted to %d by a refused Replace", v)
	}
	if !m.Replace(1, 42, 100, 200) {
		t.Fatal("Replace refused a matching swing")
	}
	if v, ok := m.Lookup(0, 42); !ok || v != 200 {
		t.Fatalf("Lookup after Replace = (%d, %v), want (200, true)", v, ok)
	}
	if m.Replace(0, 7, 0, 1) {
		t.Fatal("Replace fired on a missing key")
	}
	if !m.Delete(0, 42) {
		t.Fatal("delete after Replace failed")
	}
	if m.Replace(0, 42, 200, 300) {
		t.Fatal("Replace fired on a deleted key")
	}
}

// TestReplaceFetchLoserLearnsWinner: a failed ReplaceFetch reports the value
// the entry actually holds — the promotion path relies on this so a follower
// that lost the CAS race learns the winner's placement without re-walking.
func TestReplaceFetchLoserLearnsWinner(t *testing.T) {
	f := rma.New(2)
	m := New(f, Config{BucketsPerRank: 8, EntriesPerRank: 64})
	if !m.Insert(0, 42, 100) {
		t.Fatal("insert failed")
	}
	// Winner swings 100→200.
	if cur, swapped, found := m.ReplaceFetch(0, 42, 100, 200); !swapped || !found || cur != 200 {
		t.Fatalf("winner ReplaceFetch = (%d, %v, %v), want (200, true, true)", cur, swapped, found)
	}
	// Loser tries the same 100→300 swing and must observe the winner's 200.
	if cur, swapped, found := m.ReplaceFetch(1, 42, 100, 300); swapped || !found || cur != 200 {
		t.Fatalf("loser ReplaceFetch = (%d, %v, %v), want (200, false, true)", cur, swapped, found)
	}
	// Missing key: not found, nothing observed.
	if cur, swapped, found := m.ReplaceFetch(0, 7, 0, 1); swapped || found || cur != 0 {
		t.Fatalf("missing-key ReplaceFetch = (%d, %v, %v), want (0, false, false)", cur, swapped, found)
	}
}

// TestReplaceConcurrentChain: Replace stays correct while the chain it walks
// is churned by concurrent inserts and deletes of colliding keys, and
// concurrent swings of the same key are linearizable (exactly one CAS chain
// 0→1→…→n survives).
func TestReplaceConcurrentChain(t *testing.T) {
	const (
		ranks    = 4
		swings   = 200
		churnOps = 200
	)
	f := rma.New(ranks)
	// One bucket per rank forces long collision chains.
	m := New(f, Config{BucketsPerRank: 1, EntriesPerRank: 1024})
	const key = 1
	if !m.Insert(0, key, 0) {
		t.Fatal("insert failed")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < swings; i++ {
			for !m.Replace(1, key, i, i+1) {
				t.Errorf("swing %d→%d failed", i, i+1)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < churnOps; i++ {
			k := uint64(1000 + i%16)
			if !m.Insert(2, k, k) {
				t.Error("churn insert failed")
				return
			}
			m.Delete(3, k)
		}
	}()
	wg.Wait()
	if v, ok := m.Lookup(0, key); !ok || v != swings {
		t.Fatalf("final value %d (found %v), want %d", v, ok, swings)
	}
}
