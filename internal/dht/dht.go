// Package dht implements the fully-offloaded distributed hash table of
// GDI-RMA (§5.7 and Listing 4 of the paper). GDA uses it for internal,
// performance-critical translations such as application-level vertex ID →
// internal DPtr.
//
// Design, following the paper:
//
//   - the table (buckets) and the heap (chained entries) are sharded across
//     all ranks;
//   - every operation — insert, lookup, and delete — uses only one-sided
//     atomics (AGET/APUT/CAS), so the owner of a bucket never executes code
//     on behalf of a client ("the first DHT with all its operations fully
//     offloaded, including deletes");
//   - collisions are resolved with distributed chaining: bucket → linked
//     list of heap entries, where each entry may live on any rank;
//   - deletion is the two-CAS protocol of Listing 4: the first CAS points
//     the victim's next pointer at itself (the self-pointer tombstone that
//     concurrent readers detect and restart on), the second CAS unlinks it
//     from its predecessor.
//
// One hardening beyond the paper's pseudocode: pointers carry a 15-bit
// reuse tag that is bumped when a heap slot is recycled, and every entry
// stores its current tag. A reader that follows a stale pointer into a
// recycled slot sees the tag mismatch and restarts instead of reading an
// unrelated key (the ABA-on-recycle case the pseudocode leaves to the
// implementation).
package dht

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/fabric"
)

// ref is a tagged pointer to either a bucket word or a heap entry:
//
//	bit 63      heap flag (0 = bucket/table, 1 = heap entry)
//	bits 62..48 reuse tag (heap entries only)
//	bits 47..32 rank
//	bits 31..0  slot index
//
// The zero ref is NULL (the empty bucket).
type ref uint64

const (
	heapFlag  uint64 = 1 << 63
	tagShift         = 48
	tagMask   uint64 = (1<<15 - 1) << tagShift
	rankShift        = 32
	rankMask  uint64 = (1<<16 - 1) << rankShift
	idxMask   uint64 = 1<<32 - 1
)

func heapRef(r fabric.Rank, idx uint32, tag uint16) ref {
	return ref(heapFlag | uint64(tag&0x7fff)<<tagShift | uint64(r)<<rankShift | uint64(idx))
}

func (p ref) isNull() bool      { return p == 0 }
func (p ref) isHeap() bool      { return uint64(p)&heapFlag != 0 }
func (p ref) rank() fabric.Rank { return fabric.Rank(uint64(p) & rankMask >> rankShift) }
func (p ref) idx() uint32       { return uint32(uint64(p) & idxMask) }
func (p ref) tag() uint16       { return uint16(uint64(p) & tagMask >> tagShift) }

// Heap entry layout, in words.
const (
	eKey   = 0
	eVal   = 1
	eNext  = 2
	eTag   = 3
	eWords = 4
)

// Map is the distributed hash table. All ranks share one Map; every method
// is safe for concurrent use from any rank and is fully one-sided.
type Map struct {
	f           fabric.Transport
	bucketsPer  int
	entriesPer  int
	table       fabric.WordWin // bucket head pointers (ref words)
	heap        fabric.WordWin // entry slots, eWords words each
	free        fabric.WordWin // free-list links between slots
	sys         fabric.WordWin // word 0: tagged free-list head per rank
	totalBucket uint64
}

// Config sizes the table.
type Config struct {
	// BucketsPerRank is each rank's share of the bucket array.
	BucketsPerRank int
	// EntriesPerRank is each rank's heap capacity.
	EntriesPerRank int
}

// New collectively creates a Map over fabric f.
func New(f fabric.Transport, cfg Config) *Map {
	if cfg.BucketsPerRank < 1 || cfg.EntriesPerRank < 1 {
		panic(fmt.Sprintf("dht: invalid config %+v", cfg))
	}
	if uint64(cfg.EntriesPerRank) >= 1<<32 {
		panic("dht: entries per rank exceed 32-bit slot index")
	}
	m := &Map{
		f:           f,
		bucketsPer:  cfg.BucketsPerRank,
		entriesPer:  cfg.EntriesPerRank,
		table:       f.NewWordWin(cfg.BucketsPerRank),
		heap:        f.NewWordWin(cfg.EntriesPerRank * eWords),
		free:        f.NewWordWin(cfg.EntriesPerRank),
		sys:         f.NewWordWin(1),
		totalBucket: uint64(cfg.BucketsPerRank) * uint64(f.Size()),
	}
	for r := 0; r < f.Size(); r++ {
		rank := fabric.Rank(r)
		// Slot free list: 1-based indices, 0 = empty.
		for i := 1; i < cfg.EntriesPerRank; i++ {
			m.free.Store(rank, rank, i-1, uint64(i+1))
		}
		m.free.Store(rank, rank, cfg.EntriesPerRank-1, 0)
		m.sys.Store(rank, rank, 0, packFreeHead(1, 1))
	}
	return m
}

func packFreeHead(tag uint32, idx uint32) uint64 { return uint64(tag)<<32 | uint64(idx) }
func unpackFreeHead(h uint64) (tag, idx uint32)  { return uint32(h >> 32), uint32(h) }

// hash spreads a key over the global bucket space (Fibonacci hashing).
func (m *Map) bucketOf(key uint64) (fabric.Rank, int) {
	h := key * 0x9e3779b97f4a7c15
	b := h % m.totalBucket
	return fabric.Rank(b / uint64(m.bucketsPer)), int(b % uint64(m.bucketsPer))
}

// alloc grabs a heap slot on the preferred rank and bumps its reuse tag,
// stealing from successive ranks if that heap is exhausted. Insert prefers
// the key's bucket rank, so an entry fate-shares with the bucket that chains
// it: losing a rank severs only the keys *hashed* there. The old
// allocate-local policy tied each entry to its inserter — vertices are
// inserted by the rank that owns them, so a rank death took down every one
// of its vertices' directory entries along with their primary copies, and
// replica failover had nothing left to swing (the correlated loss the
// kill-a-rank tier caught on the wire transport, where dead memory is
// really gone).
func (m *Map) alloc(origin, prefer fabric.Rank) (ref, bool) {
	n := m.f.Size()
	for attempt := 0; attempt < n; attempt++ {
		target := fabric.Rank((int(prefer) + attempt) % n)
		if r, ok := m.allocOn(origin, target); ok {
			return r, true
		}
	}
	return 0, false
}

func (m *Map) allocOn(origin, target fabric.Rank) (ref, bool) {
	for {
		head := m.sys.Load(origin, target, 0)
		tag, idx := unpackFreeHead(head)
		if idx == 0 {
			return 0, false
		}
		next := m.free.Load(origin, target, int(idx-1))
		if _, ok := m.sys.CAS(origin, target, 0, head, packFreeHead(tag+1, uint32(next))); ok {
			slot := idx - 1
			newTag := uint16(m.heap.FetchAdd(origin, target, int(slot)*eWords+eTag, 1) + 1)
			return heapRef(target, slot, newTag), true
		}
	}
}

func (m *Map) dealloc(origin fabric.Rank, p ref) {
	target, slot := p.rank(), p.idx()
	for {
		head := m.sys.Load(origin, target, 0)
		tag, old := unpackFreeHead(head)
		m.free.Store(origin, target, int(slot), uint64(old))
		if _, ok := m.sys.CAS(origin, target, 0, head, packFreeHead(tag+1, slot+1)); ok {
			return
		}
	}
}

// word addressing helpers for the "next field" of a ref: for a bucket the
// next field is the bucket word itself; for a heap entry it is word eNext.
func (m *Map) loadNext(origin fabric.Rank, p ref) ref {
	if p.isHeap() {
		return ref(m.heap.Load(origin, p.rank(), int(p.idx())*eWords+eNext))
	}
	return ref(m.table.Load(origin, p.rank(), int(p.idx())))
}

func (m *Map) casNext(origin fabric.Rank, p ref, old, new ref) bool {
	if p.isHeap() {
		_, ok := m.heap.CAS(origin, p.rank(), int(p.idx())*eWords+eNext, uint64(old), uint64(new))
		return ok
	}
	_, ok := m.table.CAS(origin, p.rank(), int(p.idx()), uint64(old), uint64(new))
	return ok
}

// loadEntry AGETs an entry's fields and verifies the reuse tag. ok is false
// when the slot was recycled under the reader, who must restart.
func (m *Map) loadEntry(origin fabric.Rank, p ref) (key, val uint64, next ref, ok bool) {
	r, base := p.rank(), int(p.idx())*eWords
	key = m.heap.Load(origin, r, base+eKey)
	val = m.heap.Load(origin, r, base+eVal)
	next = ref(m.heap.Load(origin, r, base+eNext))
	tag := uint16(m.heap.Load(origin, r, base+eTag))
	ok = tag == p.tag()
	return
}

// Insert adds key → val. Duplicate keys may coexist (the paper's DHT is a
// multimap at the protocol level); GDA's users ensure key uniqueness.
// Returns false when the heap is exhausted.
func (m *Map) Insert(origin fabric.Rank, key, val uint64) bool {
	bRank, bIdx := m.bucketOf(key)
	bucket := ref(uint64(bRank)<<rankShift | uint64(bIdx))
	p, ok := m.alloc(origin, bRank)
	if !ok {
		return false
	}
	base := int(p.idx()) * eWords
	m.heap.Store(origin, p.rank(), base+eKey, key)
	m.heap.Store(origin, p.rank(), base+eVal, val)
	for {
		head := m.loadNext(origin, bucket)
		m.heap.Store(origin, p.rank(), base+eNext, uint64(head))
		if m.casNext(origin, bucket, head, p) {
			return true
		}
	}
}

// Lookup finds key and returns its value.
func (m *Map) Lookup(origin fabric.Rank, key uint64) (val uint64, found bool) {
	for {
		v, ok, restart := m.lookupOnce(origin, key)
		if !restart {
			return v, ok
		}
	}
}

func (m *Map) lookupOnce(origin fabric.Rank, key uint64) (val uint64, found, restart bool) {
	bRank, bIdx := m.bucketOf(key)
	bucket := ref(uint64(bRank)<<rankShift | uint64(bIdx))
	p := m.loadNext(origin, bucket)
	for !p.isNull() {
		k, v, next, ok := m.loadEntry(origin, p)
		if !ok || next == p {
			// Recycled under us, or a self-pointer tombstone: restart.
			return 0, false, true
		}
		if k == key {
			return v, true, false
		}
		p = next
	}
	return 0, false, false
}

// Replace CAS-swings the value of an existing key from old to new — the
// DHT-entry update live vertex migration publishes its new placement with.
// It walks the chain like Lookup and issues a single CAS on the entry's
// value word, so concurrent readers observe either the old or the new value,
// never a mix. It returns false when no entry holds (key, old) — the caller
// lost a race (or the entry was deleted) and must re-plan. Tombstoned or
// recycled entries restart the walk, exactly as in Lookup.
func (m *Map) Replace(origin fabric.Rank, key, old, new uint64) bool {
	_, swapped, _ := m.ReplaceFetch(origin, key, old, new)
	return swapped
}

// ReplaceFetch is Replace extended with the observed value: on a failed swing
// it returns the value the entry actually held, so the caller learns what won
// without a second chain walk. Follower promotion rides on this — every
// surviving follower of a dead primary CASes the vertex's entry toward its
// own copy, and the losers read the winner's placement straight out of the
// failed CAS. found is false when no entry with the key exists at all.
func (m *Map) ReplaceFetch(origin fabric.Rank, key, old, new uint64) (cur uint64, swapped, found bool) {
	for {
		done, swapped, cur, found := m.replaceOnce(origin, key, old, new)
		if done {
			return cur, swapped, found
		}
	}
}

func (m *Map) replaceOnce(origin fabric.Rank, key, old, new uint64) (done, swapped bool, cur uint64, found bool) {
	bRank, bIdx := m.bucketOf(key)
	bucket := ref(uint64(bRank)<<rankShift | uint64(bIdx))
	p := m.loadNext(origin, bucket)
	for !p.isNull() {
		k, v, next, ok := m.loadEntry(origin, p)
		if !ok || next == p {
			return false, false, 0, false // tombstone or recycled: restart
		}
		if k == key {
			if v != old {
				return true, false, v, true
			}
			base := int(p.idx()) * eWords
			if prev, ok := m.heap.CAS(origin, p.rank(), base+eVal, old, new); ok {
				// The CAS can only race the slot being recycled, which the
				// reuse tag detects: confirm the entry still is ours. On a
				// mismatch the swap landed in a recycled slot; undo it
				// (best-effort — a loss means the new owner overwrote it,
				// so their value stands) and restart the walk.
				if tag := uint16(m.heap.Load(origin, p.rank(), base+eTag)); tag == p.tag() {
					return true, true, new, true
				}
				m.heap.CAS(origin, p.rank(), base+eVal, new, old)
				return false, false, 0, false
			} else {
				return true, false, prev, true
			}
		}
		p = next
	}
	return true, false, 0, false
}

// Delete removes one entry with the given key. It reports whether an entry
// was removed.
func (m *Map) Delete(origin fabric.Rank, key uint64) bool {
	for {
		done, removed := m.deleteOnce(origin, key)
		if done {
			return removed
		}
	}
}

// deleteOnce walks the chain once; done=false requests a restart.
func (m *Map) deleteOnce(origin fabric.Rank, key uint64) (done, removed bool) {
	bRank, bIdx := m.bucketOf(key)
	bucket := ref(uint64(bRank)<<rankShift | uint64(bIdx))
	prev := bucket
	p := m.loadNext(origin, bucket)
	for !p.isNull() {
		k, _, next, ok := m.loadEntry(origin, p)
		if !ok || next == p {
			return false, false // tombstone or recycled: restart
		}
		if k == key {
			// CAS 1 (Listing 4, line 32): tombstone the victim by pointing
			// its next field at itself. Failure means we lost a race on the
			// victim or its successor was just deleted: restart.
			if !m.casNext(origin, p, next, p) {
				return false, false
			}
			// CAS 2 (line 37): unlink the victim from its predecessor. The
			// tombstone keeps the victim reachable — only we can unlink it —
			// so on failure we rewalk and retry the unlink with the
			// successor we captured before tombstoning (the paper's
			// "restart, retaining the original next pointer", line 41).
			if !m.casNext(origin, prev, p, next) {
				m.unlinkTombstone(origin, bucket, p, next)
			}
			m.dealloc(origin, p)
			return true, true
		}
		prev = p
		p = next
	}
	return true, false
}

// unlinkTombstone rewalks the chain from the bucket until it bypasses the
// tombstoned entry t, whose pre-tombstone successor is succ. t stays
// reachable until this succeeds: tombstones are only unlinked by their own
// deleter, and a deleted predecessor's CAS 2 re-routes the chain around the
// predecessor while still leading to t.
func (m *Map) unlinkTombstone(origin fabric.Rank, bucket, t, succ ref) {
	for {
		prev := bucket
		p := m.loadNext(origin, bucket)
		retry := false
		for !p.isNull() {
			if p == t {
				if m.casNext(origin, prev, t, succ) {
					return
				}
				retry = true // predecessor changed under us: rewalk
				break
			}
			_, _, next, ok := m.loadEntry(origin, p)
			if !ok || next == p {
				retry = true // foreign tombstone blocks the walk: rewalk
				break
			}
			prev = p
			p = next
		}
		if !retry && p.isNull() {
			// t must remain reachable until we unlink it; reaching the end
			// of the chain means the walk raced a concurrent restructuring.
			continue
		}
	}
}

// Len counts all entries (diagnostic; walks every bucket).
func (m *Map) Len(origin fabric.Rank) int {
	n := 0
	for r := 0; r < m.f.Size(); r++ {
		for b := 0; b < m.bucketsPer; b++ {
			bucket := ref(uint64(r)<<rankShift | uint64(b))
			for p := m.loadNext(origin, bucket); !p.isNull(); {
				_, _, next, ok := m.loadEntry(origin, p)
				if !ok || next == p {
					break
				}
				n++
				p = next
			}
		}
	}
	return n
}
