// Package kron is the distributed in-memory LPG graph generator of the
// paper's contribution #5 (§6.3): a Kronecker (Graph500 / R-MAT) edge
// generator extended with a user-specified selection of labels and property
// types, assigned to vertices and edges on the fly. It exists because no
// public dataset carries labels and properties at the scales evaluated, and
// because generating in memory avoids the filesystem entirely.
//
// The generator is deterministic for a given Config (including the rank
// decomposition: every rank generates its own slice of vertices and edges
// with per-element seeded RNGs), so experiments are reproducible and
// baselines can be fed the identical graph.
package kron

import (
	"math/rand"

	"github.com/gdi-go/gdi/internal/core"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
)

// Config describes one synthetic LPG graph.
type Config struct {
	// Scale: the graph has 2^Scale vertices.
	Scale int
	// EdgeFactor: approximately EdgeFactor edges per vertex (default 16,
	// the value the paper uses to match real-world sparsity).
	EdgeFactor int
	// A, B, C are the R-MAT quadrant probabilities (D = 1-A-B-C). Zero
	// values select the Graph500 defaults A=0.57, B=0.19, C=0.19.
	A, B, C float64
	// Uniform switches to uniformly random endpoints (an Erdős–Rényi-style
	// degree distribution) for the §6.7 heavy-tail vs. uniform comparison.
	Uniform bool
	// Seed makes runs reproducible.
	Seed int64
	// NumLabels vertex labels are assigned cyclically (paper default 20).
	NumLabels int
	// NumProps property types are attached per vertex (paper default 13).
	NumProps int
	// PropBytes is the payload size of the string-valued properties.
	PropBytes int
	// EdgeLabel, when true, gives every edge a label drawn from the label
	// set (lightweight edges carry at most one label).
	EdgeLabel bool
}

// WithDefaults fills zero fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = 16
	}
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
	if c.NumLabels == 0 {
		c.NumLabels = 20
	}
	if c.NumProps == 0 {
		c.NumProps = 13
	}
	if c.PropBytes == 0 {
		c.PropBytes = 8
	}
	return c
}

// NumVertices returns 2^Scale.
func (c Config) NumVertices() uint64 { return 1 << uint(c.Scale) }

// NumEdges returns EdgeFactor · 2^Scale.
func (c Config) NumEdges() uint64 { return uint64(c.EdgeFactor) << uint(c.Scale) }

// Schema is the generated metadata: label and p-type IDs registered with a
// database.
type Schema struct {
	Labels []lpg.LabelID
	Props  []lpg.PTypeID
	// AgeProp and DateProp point at two well-known uint64 properties used
	// by the BI-style queries (age in years, creation date).
	AgeProp, DateProp lpg.PTypeID
	// FeatureProp holds GNN feature vectors (registered on demand).
	FeatureProp lpg.PTypeID
}

// DefineSchema registers cfg's labels and property types on an engine
// (driver context) and returns the handle set. Property 0 is "age"
// (uint64), property 1 is "creation_date" (uint64); the rest alternate
// uint64 and fixed-size string payloads.
func DefineSchema(eng *core.Engine, cfg Config) (Schema, error) {
	cfg = cfg.WithDefaults()
	var s Schema
	for i := 0; i < cfg.NumLabels; i++ {
		id, err := eng.DefineLabel(labelName(i))
		if err != nil {
			return s, err
		}
		s.Labels = append(s.Labels, id)
	}
	for i := 0; i < cfg.NumProps; i++ {
		name, spec := propSpec(i, cfg.PropBytes)
		id, err := eng.DefinePType(name, spec)
		if err != nil {
			return s, err
		}
		s.Props = append(s.Props, id)
		switch i {
		case 0:
			s.AgeProp = id
		case 1:
			s.DateProp = id
		}
	}
	return s, nil
}

func labelName(i int) string {
	base := []string{"Person", "Car", "City", "Company", "Product", "Post", "Comment", "Forum", "Tag", "Place"}
	if i < len(base) {
		return base[i]
	}
	return base[i%len(base)] + string(rune('A'+i/len(base)))
}

func propSpec(i, propBytes int) (string, metadata.PTypeSpec) {
	names := []string{"age", "creation_date", "name", "score", "balance", "city_code",
		"active", "rating", "category", "views", "nickname", "weight", "region"}
	name := names[i%len(names)]
	if i >= len(names) {
		name += string(rune('A' + i/len(names)))
	}
	switch i % 4 {
	case 2: // string payload of a fixed budget
		return name, metadata.PTypeSpec{Datatype: lpg.TypeString, SizeType: lpg.SizeMax, Limit: propBytes}
	case 3:
		return name, metadata.PTypeSpec{Datatype: lpg.TypeFloat64, SizeType: lpg.SizeFixed, Limit: 8}
	default:
		return name, metadata.PTypeSpec{Datatype: lpg.TypeUint64, SizeType: lpg.SizeFixed, Limit: 8}
	}
}

// VerticesFor generates rank's slice of the vertex set: appIDs congruent to
// rank modulo nranks (matching GDA's round-robin placement, so bulk loading
// is communication-free). O(n/P) work, fully deterministic.
func VerticesFor(cfg Config, s Schema, rank, nranks int) []core.VertexSpec {
	cfg = cfg.WithDefaults()
	n := cfg.NumVertices()
	var specs []core.VertexSpec
	for app := uint64(rank); app < n; app += uint64(nranks) {
		specs = append(specs, VertexSpec(cfg, s, app))
	}
	return specs
}

// VertexSpec builds the deterministic vertex spec for one appID.
func VertexSpec(cfg Config, s Schema, app uint64) core.VertexSpec {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(app*0x9e3779b9+1)))
	sp := core.VertexSpec{AppID: app}
	if len(s.Labels) > 0 {
		sp.Labels = []lpg.LabelID{s.Labels[app%uint64(len(s.Labels))]}
	}
	for i, pt := range s.Props {
		var val []byte
		switch i % 4 {
		case 2:
			b := make([]byte, cfg.PropBytes)
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			val = b
		case 3:
			val = lpg.EncodeFloat64(rng.Float64() * 100)
		case 0: // age: 0..99
			val = lpg.EncodeUint64(uint64(rng.Intn(100)))
		case 1: // creation_date: days
			val = lpg.EncodeUint64(uint64(rng.Intn(20000)))
		default:
			val = lpg.EncodeUint64(rng.Uint64() % 1000)
		}
		sp.Props = append(sp.Props, lpg.Property{PType: pt, Value: val})
	}
	return sp
}

// EdgesFor generates rank's slice of the edge list: edges with index
// congruent to rank modulo nranks. Each edge is sampled independently with
// a per-edge seed, so the full edge list is identical regardless of the
// rank decomposition. O(m/P · Scale) work.
func EdgesFor(cfg Config, s Schema, rank, nranks int) []core.EdgeSpec {
	cfg = cfg.WithDefaults()
	m := cfg.NumEdges()
	var specs []core.EdgeSpec
	for k := uint64(rank); k < m; k += uint64(nranks) {
		specs = append(specs, EdgeSpec(cfg, s, k))
	}
	return specs
}

// EdgeSpec samples the k-th edge.
func EdgeSpec(cfg Config, s Schema, k uint64) core.EdgeSpec {
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(k*0x85ebca6b+7)))
	u, v := sampleEndpoints(cfg, rng)
	sp := core.EdgeSpec{OriginApp: u, TargetApp: v, Dir: holder.DirOut}
	if cfg.EdgeLabel && len(s.Labels) > 0 {
		sp.Label = s.Labels[k%uint64(len(s.Labels))]
	}
	return sp
}

// sampleEndpoints draws one edge: R-MAT recursive quadrant descent, or
// uniform endpoints when cfg.Uniform is set.
func sampleEndpoints(cfg Config, rng *rand.Rand) (u, v uint64) {
	n := cfg.NumVertices()
	if cfg.Uniform {
		return rng.Uint64() % n, rng.Uint64() % n
	}
	for bit := uint(0); bit < uint(cfg.Scale); bit++ {
		r := rng.Float64()
		switch {
		case r < cfg.A:
			// top-left: no bits set
		case r < cfg.A+cfg.B:
			v |= 1 << bit
		case r < cfg.A+cfg.B+cfg.C:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}

// CSR is a plain compressed-sparse-row view of the generated graph, used by
// the Graph500 baseline and as the reference oracle for analytics tests.
// The graph is symmetrized (each directed edge contributes both
// directions), matching how BFS treats GDA's double-sided edge records.
type CSR struct {
	N      uint64
	Offs   []uint64
	Adj    []uint64
	Degree []uint32
}

// BuildCSR materializes the full edge list into CSR form (driver context;
// O(m) memory — intended for laptop-scale verification and baselines).
func BuildCSR(cfg Config) *CSR {
	cfg = cfg.WithDefaults()
	n := cfg.NumVertices()
	m := cfg.NumEdges()
	deg := make([]uint32, n)
	type pair struct{ u, v uint64 }
	edges := make([]pair, 0, m)
	for k := uint64(0); k < m; k++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(k*0x85ebca6b+7)))
		u, v := sampleEndpoints(cfg, rng)
		edges = append(edges, pair{u, v})
		deg[u]++
		if u != v {
			deg[v]++
		}
	}
	c := &CSR{N: n, Degree: deg, Offs: make([]uint64, n+1)}
	for i := uint64(0); i < n; i++ {
		c.Offs[i+1] = c.Offs[i] + uint64(deg[i])
	}
	c.Adj = make([]uint64, c.Offs[n])
	fill := make([]uint64, n)
	for _, e := range edges {
		c.Adj[c.Offs[e.u]+fill[e.u]] = e.v
		fill[e.u]++
		if e.u != e.v {
			c.Adj[c.Offs[e.v]+fill[e.v]] = e.u
			fill[e.v]++
		}
	}
	return c
}

// Neighbors returns vertex u's adjacency slice.
func (c *CSR) Neighbors(u uint64) []uint64 { return c.Adj[c.Offs[u]:c.Offs[u+1]] }
