package kron

import (
	"testing"

	"github.com/gdi-go/gdi/internal/core"
	"github.com/gdi-go/gdi/internal/rma"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{Scale: 10}.WithDefaults()
	if c.EdgeFactor != 16 || c.NumLabels != 20 || c.NumProps != 13 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.NumVertices() != 1024 || c.NumEdges() != 16*1024 {
		t.Fatalf("sizes: n=%d m=%d", c.NumVertices(), c.NumEdges())
	}
}

func TestDeterministicAcrossDecompositions(t *testing.T) {
	cfg := Config{Scale: 8, Seed: 5}.WithDefaults()
	var s Schema // label-free edges: schema only affects labels
	// Union of 4-rank slices == 1-rank slice.
	all := EdgesFor(cfg, s, 0, 1)
	merged := make(map[int]core.EdgeSpec)
	for r := 0; r < 4; r++ {
		for i, sp := range EdgesFor(cfg, s, r, 4) {
			merged[r+4*i] = sp
		}
	}
	if len(merged) != len(all) {
		t.Fatalf("decomposed %d edges, whole %d", len(merged), len(all))
	}
	for k, sp := range merged {
		if all[k] != sp {
			t.Fatalf("edge %d differs across decompositions: %+v vs %+v", k, sp, all[k])
		}
	}
}

func TestVertexSpecsDeterministic(t *testing.T) {
	eng := core.NewEngine(rma.New(1), core.Config{BlockSize: 256, BlocksPerRank: 1024})
	cfg := Config{Scale: 6, Seed: 9, NumLabels: 5, NumProps: 4}.WithDefaults()
	s, err := DefineSchema(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := VertexSpec(cfg, s, 17)
	b := VertexSpec(cfg, s, 17)
	if a.AppID != b.AppID || len(a.Props) != len(b.Props) {
		t.Fatal("vertex spec not deterministic")
	}
	for i := range a.Props {
		if a.Props[i].PType != b.Props[i].PType || string(a.Props[i].Value) != string(b.Props[i].Value) {
			t.Fatal("vertex props not deterministic")
		}
	}
	if len(a.Labels) != 1 || a.Labels[0] != s.Labels[17%5] {
		t.Fatalf("label assignment = %v", a.Labels)
	}
	if len(a.Props) != 4 {
		t.Fatalf("props = %d, want 4", len(a.Props))
	}
}

func TestSchemaCounts(t *testing.T) {
	eng := core.NewEngine(rma.New(1), core.Config{BlockSize: 256, BlocksPerRank: 1024})
	cfg := Config{Scale: 4}.WithDefaults() // paper defaults: 20 labels, 13 props
	s, err := DefineSchema(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Labels) != 20 || len(s.Props) != 13 {
		t.Fatalf("schema = %d labels, %d props", len(s.Labels), len(s.Props))
	}
	if s.AgeProp == 0 || s.DateProp == 0 {
		t.Fatal("well-known props not set")
	}
}

func TestEndpointsWithinRange(t *testing.T) {
	cfg := Config{Scale: 7, Seed: 1}.WithDefaults()
	var s Schema
	for _, sp := range EdgesFor(cfg, s, 0, 1) {
		if sp.OriginApp >= cfg.NumVertices() || sp.TargetApp >= cfg.NumVertices() {
			t.Fatalf("edge endpoint out of range: %+v", sp)
		}
	}
}

func TestHeavyTailVsUniform(t *testing.T) {
	// R-MAT must produce a much higher max degree than the uniform sampler —
	// the §6.7 distinction.
	rmat := BuildCSR(Config{Scale: 10, Seed: 3}.WithDefaults())
	uni := BuildCSR(Config{Scale: 10, Seed: 3, Uniform: true}.WithDefaults())
	maxDeg := func(c *CSR) uint32 {
		var m uint32
		for _, d := range c.Degree {
			if d > m {
				m = d
			}
		}
		return m
	}
	if maxDeg(rmat) < 2*maxDeg(uni) {
		t.Fatalf("R-MAT max degree %d not heavy-tailed vs uniform %d", maxDeg(rmat), maxDeg(uni))
	}
}

func TestCSRConsistency(t *testing.T) {
	cfg := Config{Scale: 8, Seed: 11}.WithDefaults()
	c := BuildCSR(cfg)
	if c.N != cfg.NumVertices() {
		t.Fatalf("CSR.N = %d", c.N)
	}
	// Offsets strictly consistent with degrees; adjacency symmetric in count.
	var total uint64
	for u := uint64(0); u < c.N; u++ {
		if uint64(len(c.Neighbors(u))) != uint64(c.Degree[u]) {
			t.Fatalf("vertex %d: adjacency %d != degree %d", u, len(c.Neighbors(u)), c.Degree[u])
		}
		total += uint64(c.Degree[u])
	}
	// Every directed edge contributes 2 endpoints except self-loops (1 slot
	// counted twice? self-loop contributes 1). So total <= 2m.
	if total > 2*cfg.NumEdges() || total < cfg.NumEdges() {
		t.Fatalf("total adjacency slots %d outside [m, 2m] = [%d, %d]", total, cfg.NumEdges(), 2*cfg.NumEdges())
	}
	// CSR edges match the per-rank edge stream.
	var s Schema
	edges := EdgesFor(cfg, s, 0, 1)
	if uint64(len(edges)) != cfg.NumEdges() {
		t.Fatalf("edge stream has %d edges, want %d", len(edges), cfg.NumEdges())
	}
}

func TestEdgeLabelsAssigned(t *testing.T) {
	eng := core.NewEngine(rma.New(1), core.Config{BlockSize: 256, BlocksPerRank: 1024})
	cfg := Config{Scale: 4, NumLabels: 3, NumProps: 1, EdgeLabel: true}.WithDefaults()
	s, _ := DefineSchema(eng, cfg)
	for k, sp := range EdgesFor(cfg, s, 0, 1)[:9] {
		if sp.Label != s.Labels[k%3] {
			t.Fatalf("edge %d label = %d", k, sp.Label)
		}
	}
}
