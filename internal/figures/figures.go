// Package figures regenerates every table and figure of the paper's
// evaluation (§6) at laptop scale: the same series, rows, and systems, with
// "servers" played by fabric ranks. It is shared by the bench_test.go
// harness and the cmd/gdi-figures binary. EXPERIMENTS.md records the
// paper-vs-measured comparison produced from these runs.
package figures

import (
	"fmt"
	"strings"
	"sync"
	"time"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/analytics"
	"github.com/gdi-go/gdi/internal/baseline/graph500"
	"github.com/gdi-go/gdi/internal/baseline/lockgdb"
	"github.com/gdi-go/gdi/internal/baseline/rpcgdb"
	"github.com/gdi-go/gdi/internal/kron"
	"github.com/gdi-go/gdi/internal/workload"
)

// Profile bounds the experiment sizes so the whole suite fits a laptop.
type Profile struct {
	// Ranks is the "server counts" axis.
	Ranks []int
	// BaseScale is the Kronecker scale at 1 rank (weak scaling adds log2 P).
	BaseScale int
	// EdgeFactor as in the paper (16).
	EdgeFactor int
	// OpsPerWorker for OLTP runs.
	OpsPerWorker int
	// Seed for reproducibility.
	Seed int64
}

// Quick is the default profile used by `go test -bench` and CI.
var Quick = Profile{
	Ranks:        []int{1, 2, 4},
	BaseScale:    9,
	EdgeFactor:   8,
	OpsPerWorker: 2000,
	Seed:         1,
}

// Full is a longer profile for standalone runs of cmd/gdi-figures.
var Full = Profile{
	Ranks:        []int{1, 2, 4, 8},
	BaseScale:    11,
	EdgeFactor:   16,
	OpsPerWorker: 5000,
	Seed:         1,
}

func (p Profile) scaleAt(ranks int, strong bool) int {
	if strong {
		return p.BaseScale
	}
	s := p.BaseScale
	for r := 1; r < ranks; r <<= 1 {
		s++
	}
	return s
}

func (p Profile) kronAt(ranks int, strong bool) kron.Config {
	return kron.Config{
		Scale:      p.scaleAt(ranks, strong),
		EdgeFactor: p.EdgeFactor,
		Seed:       p.Seed,
		NumLabels:  20,
		NumProps:   13,
	}.WithDefaults()
}

// loadGDA builds and loads a GDA instance for a config.
func loadGDA(ranks int, cfg kron.Config) (*gdi.Runtime, *gdi.Database, kron.Schema, error) {
	rt := gdi.Init(ranks)
	// Size the pool to the shard: ~(n + m)/ranks holders with headroom.
	perRank := int((cfg.NumVertices()*8+cfg.NumEdges()*2)/uint64(ranks)) + (1 << 12)
	db := rt.CreateDatabase(gdi.DatabaseParams{
		BlockSize:           512,
		BlocksPerRank:       perRank,
		IndexBucketsPerRank: int(cfg.NumVertices()/uint64(ranks)) + 64,
		IndexEntriesPerRank: int(cfg.NumVertices()/uint64(ranks))*2 + 1024,
	})
	sch, err := kron.DefineSchema(db.Engine(), cfg)
	if err != nil {
		return nil, nil, kron.Schema{}, err
	}
	if err := workload.LoadGDA(rt, db, cfg, sch); err != nil {
		return nil, nil, kron.Schema{}, err
	}
	return rt, db, sch, nil
}

// OLTPPoint is one bar of Figure 4.
type OLTPPoint struct {
	System    string
	Mix       string
	Ranks     int
	Scale     int
	Vertices  uint64
	Edges     uint64
	QPS       float64
	FailedPct float64
}

// RunOLTP produces the Figure 4 series: throughput and failed-transaction
// percentages per mix and server count. strong selects Figures 4b/4d (fixed
// dataset); withBaselines adds the JanusGraph-like baseline for the
// LinkBench mix (Figures 4c/4d).
func RunOLTP(p Profile, mixes []workload.Mix, strong, withBaselines bool) ([]OLTPPoint, error) {
	var points []OLTPPoint
	for _, ranks := range p.Ranks {
		cfg := p.kronAt(ranks, strong)
		rt, db, sch, err := loadGDA(ranks, cfg)
		if err != nil {
			return nil, err
		}
		_ = rt
		for _, mix := range mixes {
			res, err := workload.Run(&workload.GDASystem{DB: db, Schema: sch}, workload.RunConfig{
				Mix: mix, Workers: ranks, OpsPerWorker: p.OpsPerWorker,
				KeySpace: cfg.NumVertices(), Seed: p.Seed,
			})
			if err != nil {
				return nil, err
			}
			points = append(points, OLTPPoint{
				System: "GDA", Mix: mix.Name, Ranks: ranks, Scale: cfg.Scale,
				Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(),
				QPS: res.QPS(), FailedPct: res.FailedFraction() * 100,
			})
		}
		if withBaselines {
			ldb := rpcgdb.New(ranks)
			workload.LoadRPC(ldb, cfg)
			res, err := workload.Run(&workload.RPCSystem{DB: ldb}, workload.RunConfig{
				Mix: workload.LinkBench, Workers: ranks, OpsPerWorker: p.OpsPerWorker,
				KeySpace: cfg.NumVertices(), Seed: p.Seed,
			})
			ldb.Close()
			if err != nil {
				return nil, err
			}
			points = append(points, OLTPPoint{
				System: "JanusGraph-like", Mix: workload.LinkBench.Name, Ranks: ranks, Scale: cfg.Scale,
				Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(),
				QPS: res.QPS(), FailedPct: res.FailedFraction() * 100,
			})
		}
	}
	return points, nil
}

// FormatOLTP renders Figure 4 rows.
func FormatOLTP(title string, points []OLTPPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	fmt.Fprintf(&sb, "%-18s %-16s %7s %7s %12s %12s %12s %8s\n",
		"system", "mix", "servers", "scale", "|V|", "|E|", "queries/s", "failed%")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%-18s %-16s %7d %7d %12d %12d %12.0f %8.2f\n",
			pt.System, pt.Mix, pt.Ranks, pt.Scale, pt.Vertices, pt.Edges, pt.QPS, pt.FailedPct)
	}
	return sb.String()
}

// LatencyRow is one histogram of Figure 5.
type LatencyRow struct {
	System string
	Ranks  int
	Op     workload.Op
	MeanNs float64
	P50Ns  int64
	P99Ns  int64
	Count  int64
	Chart  string
}

// RunLatency produces the Figure 5 latency histograms: the LinkBench mix on
// GDA, the JanusGraph-like, and the Neo4j-like baselines at each server
// count.
func RunLatency(p Profile, renderCharts bool) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, ranks := range p.Ranks {
		cfg := p.kronAt(ranks, true)
		run := func(sysName string, sys workload.System) error {
			res, err := workload.Run(sys, workload.RunConfig{
				Mix: workload.LinkBench, Workers: ranks, OpsPerWorker: p.OpsPerWorker,
				KeySpace: cfg.NumVertices(), Seed: p.Seed,
			})
			if err != nil {
				return err
			}
			for op := workload.Op(0); op < workload.NumOps; op++ {
				h := res.PerOp[op]
				if h.Count() == 0 {
					continue
				}
				row := LatencyRow{
					System: sysName, Ranks: ranks, Op: op,
					MeanNs: h.MeanNs(), P50Ns: h.QuantileNs(0.5), P99Ns: h.QuantileNs(0.99),
					Count: h.Count(),
				}
				if renderCharts {
					row.Chart = h.Render(40)
				}
				rows = append(rows, row)
			}
			return nil
		}
		_, db, sch, err := loadGDA(ranks, cfg)
		if err != nil {
			return nil, err
		}
		if err := run("GDA", &workload.GDASystem{DB: db, Schema: sch}); err != nil {
			return nil, err
		}
		rdb := rpcgdb.New(ranks)
		workload.LoadRPC(rdb, cfg)
		if err := run("JanusGraph-like", &workload.RPCSystem{DB: rdb}); err != nil {
			rdb.Close()
			return nil, err
		}
		rdb.Close()
		ndb := lockgdb.New()
		workload.LoadLock(ndb, cfg)
		if err := run("Neo4j-like", &workload.LockSystem{DB: ndb}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatLatency renders Figure 5 rows.
func FormatLatency(rows []LatencyRow) string {
	var sb strings.Builder
	sb.WriteString("== Figure 5: LinkBench per-operation latency ==\n")
	fmt.Fprintf(&sb, "%-18s %7s %-16s %10s %10s %10s %8s\n",
		"system", "servers", "operation", "mean", "p50", "p99", "count")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %7d %-16s %9.1fµs %9.1fµs %9.1fµs %8d\n",
			r.System, r.Ranks, r.Op, r.MeanNs/1e3, float64(r.P50Ns)/1e3, float64(r.P99Ns)/1e3, r.Count)
		if r.Chart != "" {
			sb.WriteString(r.Chart)
		}
	}
	return sb.String()
}

// AnalyticsPoint is one point of Figure 6.
type AnalyticsPoint struct {
	System   string
	Workload string
	Ranks    int
	Scale    int
	Vertices uint64
	Edges    uint64
	Runtime  time.Duration
	Extra    string
}

// runTimed executes an SPMD analytics closure on all ranks and returns the
// wall-clock of the slowest rank.
func runTimed(rt *gdi.Runtime, db *gdi.Database, fn func(p *gdi.Process) error) (time.Duration, error) {
	var mu sync.Mutex
	var firstErr error
	start := time.Now()
	rt.Run(db, func(p *gdi.Process) {
		if err := fn(p); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	})
	return time.Since(start), firstErr
}

// RunAnalytics produces Figures 6a/6b: PageRank (i=10, df=0.85), CDLP
// (i=5), WCC, plus — when strong — LCC and BI2 with the Neo4j-like BI2
// baseline (the paper only reports LCC/BI2 in the strong-scaling plot).
func RunAnalytics(p Profile, strong bool) ([]AnalyticsPoint, error) {
	var points []AnalyticsPoint
	for _, ranks := range p.Ranks {
		cfg := p.kronAt(ranks, strong)
		rt, db, sch, err := loadGDA(ranks, cfg)
		if err != nil {
			return nil, err
		}
		g := &analytics.Graph{DB: db, Schema: sch}
		add := func(name string, d time.Duration, extra string) {
			points = append(points, AnalyticsPoint{
				System: "GDA", Workload: name, Ranks: ranks, Scale: cfg.Scale,
				Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(), Runtime: d, Extra: extra,
			})
		}
		d, err := runTimed(rt, db, func(p *gdi.Process) error {
			_, _, err := analytics.PageRank(p, g, 10, 0.85)
			return err
		})
		if err != nil {
			return nil, err
		}
		add("PageRank (i=10, df=0.85)", d, "")
		d, err = runTimed(rt, db, func(p *gdi.Process) error {
			_, err := analytics.CDLP(p, g, 5)
			return err
		})
		if err != nil {
			return nil, err
		}
		add("CDLP (i=5)", d, "")
		var iters int
		d, err = runTimed(rt, db, func(p *gdi.Process) error {
			_, it, err := analytics.WCC(p, g, 50)
			if p.Rank() == 0 {
				iters = it
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		add("WCC", d, fmt.Sprintf("converged in %d iters", iters))
		if strong {
			d, err = runTimed(rt, db, func(p *gdi.Process) error {
				_, err := analytics.LCC(p, g)
				return err
			})
			if err != nil {
				return nil, err
			}
			add("LCC", d, "")
			d, err = runTimed(rt, db, func(p *gdi.Process) error {
				_, err := analytics.BI2(p, g, sch.Labels[0], sch.AgeProp, 30, 70, sch.Props[4])
				return err
			})
			if err != nil {
				return nil, err
			}
			add("BI2", d, "")
			// Neo4j-like BI2 baseline.
			ndb := lockgdb.New()
			loadLockRich(ndb, cfg, sch)
			start := time.Now()
			ndb.GroupCount(uint32(sch.Labels[0]), uint32(sch.AgeProp), 30, 70, uint32(sch.Props[4]))
			points = append(points, AnalyticsPoint{
				System: "Neo4j-like", Workload: "BI2", Ranks: ranks, Scale: cfg.Scale,
				Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(), Runtime: time.Since(start),
			})
		}
	}
	return points, nil
}

// loadLockRich loads the lock baseline with the full property set so the
// BI2 baseline query sees the same data.
func loadLockRich(db *lockgdb.DB, cfg kron.Config, sch kron.Schema) {
	n := cfg.NumVertices()
	for app := uint64(0); app < n; app++ {
		sp := kron.VertexSpec(cfg, sch, app)
		db.AddVertex(app, uint32(sp.Labels[0]), 0, nil)
		for _, pr := range sp.Props {
			db.UpdateProperty(app, uint32(pr.PType), pr.Value)
		}
	}
	for _, sp := range kron.EdgesFor(cfg, sch, 0, 1) {
		db.AddEdge(sp.OriginApp, sp.TargetApp)
	}
}

// RunGNN produces Figures 6c/6d: graph convolution for each feature
// dimension k.
func RunGNN(p Profile, ks []int, layers int, strong bool) ([]AnalyticsPoint, error) {
	var points []AnalyticsPoint
	for _, ranks := range p.Ranks {
		cfg := p.kronAt(ranks, strong)
		for _, k := range ks {
			rt, db, sch, err := loadGDA(ranks, cfg)
			if err != nil {
				return nil, err
			}
			g := &analytics.Graph{DB: db, Schema: sch}
			gcfg := analytics.GNNConfig{K: k, Layers: layers, Seed: p.Seed}
			d, err := runTimed(rt, db, func(p *gdi.Process) error {
				feat, featNext, err := analytics.GNNSetup(p, g, gcfg)
				if err != nil {
					return err
				}
				_, err = analytics.GNNForward(p, g, gcfg, feat, featNext)
				return err
			})
			if err != nil {
				return nil, err
			}
			points = append(points, AnalyticsPoint{
				System: "GDA", Workload: fmt.Sprintf("GNN k=%d", k), Ranks: ranks, Scale: cfg.Scale,
				Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(), Runtime: d,
			})
		}
	}
	return points, nil
}

// RunTraversal produces Figures 6e/6f: BFS and k-hop on GDA, Graph500-style
// CSR BFS, and the Neo4j-like BFS.
func RunTraversal(p Profile, strong bool) ([]AnalyticsPoint, error) {
	var points []AnalyticsPoint
	for _, ranks := range p.Ranks {
		cfg := p.kronAt(ranks, strong)
		rt, db, sch, err := loadGDA(ranks, cfg)
		if err != nil {
			return nil, err
		}
		g := &analytics.Graph{DB: db, Schema: sch}
		var visited int64
		d, err := runTimed(rt, db, func(p *gdi.Process) error {
			v, _, err := analytics.BFS(p, g, 0)
			if p.Rank() == 0 {
				visited = v
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		points = append(points, AnalyticsPoint{
			System: "GDA", Workload: "BFS", Ranks: ranks, Scale: cfg.Scale,
			Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(), Runtime: d,
			Extra: fmt.Sprintf("visited %d", visited),
		})
		for _, k := range []int{2, 3, 4} {
			d, err := runTimed(rt, db, func(p *gdi.Process) error {
				_, err := analytics.KHop(p, g, 0, k)
				return err
			})
			if err != nil {
				return nil, err
			}
			points = append(points, AnalyticsPoint{
				System: "GDA", Workload: fmt.Sprintf("%d-hop", k), Ranks: ranks, Scale: cfg.Scale,
				Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(), Runtime: d,
			})
		}
		// Graph500 comparator: same graph, CSR arrays, `ranks` workers.
		csr := kron.BuildCSR(cfg)
		start := time.Now()
		levels := graph500.BFS(csr, 0, ranks)
		points = append(points, AnalyticsPoint{
			System: "Graph500", Workload: "BFS", Ranks: ranks, Scale: cfg.Scale,
			Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(), Runtime: time.Since(start),
			Extra: fmt.Sprintf("visited %d", graph500.Visited(levels)),
		})
		// Neo4j-like comparator.
		ndb := lockgdb.New()
		workload.LoadLock(ndb, cfg)
		start = time.Now()
		nVisited := ndb.BFS(0)
		points = append(points, AnalyticsPoint{
			System: "Neo4j-like", Workload: "BFS", Ranks: ranks, Scale: cfg.Scale,
			Vertices: cfg.NumVertices(), Edges: cfg.NumEdges(), Runtime: time.Since(start),
			Extra: fmt.Sprintf("visited %d", nVisited),
		})
	}
	return points, nil
}

// FormatAnalytics renders Figure 6 rows.
func FormatAnalytics(title string, points []AnalyticsPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	fmt.Fprintf(&sb, "%-12s %-26s %7s %7s %12s %12s %12s  %s\n",
		"system", "workload", "servers", "scale", "|V|", "|E|", "runtime", "notes")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%-12s %-26s %7d %7d %12d %12d %12s  %s\n",
			pt.System, pt.Workload, pt.Ranks, pt.Scale, pt.Vertices, pt.Edges,
			pt.Runtime.Round(time.Microsecond), pt.Extra)
	}
	return sb.String()
}

// RichnessPoint is one row of the §6.6 sweep.
type RichnessPoint struct {
	Labels, Props, EdgeFactor int
	LoadTime                  time.Duration
	QPS                       float64
}

// RunRichness produces the §6.6 sweep: varying label counts, property
// counts, and edge factors on a fixed scale, measuring load time and
// LinkBench throughput.
func RunRichness(p Profile) ([]RichnessPoint, error) {
	ranks := p.Ranks[len(p.Ranks)-1]
	var points []RichnessPoint
	type variant struct{ labels, props, ef int }
	variants := []variant{
		{1, 1, p.EdgeFactor}, {20, 13, p.EdgeFactor}, {40, 26, p.EdgeFactor},
		{20, 13, p.EdgeFactor / 2}, {20, 13, p.EdgeFactor * 2},
	}
	for _, v := range variants {
		cfg := kron.Config{
			Scale: p.BaseScale, EdgeFactor: v.ef, Seed: p.Seed,
			NumLabels: v.labels, NumProps: v.props,
		}.WithDefaults()
		start := time.Now()
		_, db, sch, err := loadGDA(ranks, cfg)
		if err != nil {
			return nil, err
		}
		load := time.Since(start)
		res, err := workload.Run(&workload.GDASystem{DB: db, Schema: sch}, workload.RunConfig{
			Mix: workload.LinkBench, Workers: ranks, OpsPerWorker: p.OpsPerWorker,
			KeySpace: cfg.NumVertices(), Seed: p.Seed,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, RichnessPoint{
			Labels: v.labels, Props: v.props, EdgeFactor: v.ef,
			LoadTime: load, QPS: res.QPS(),
		})
	}
	return points, nil
}

// FormatRichness renders the §6.6 sweep.
func FormatRichness(points []RichnessPoint) string {
	var sb strings.Builder
	sb.WriteString("== §6.6: varying labels, properties, edge factor (LinkBench) ==\n")
	fmt.Fprintf(&sb, "%8s %8s %12s %12s %12s\n", "labels", "p-types", "edge factor", "load time", "queries/s")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%8d %8d %12d %12s %12.0f\n",
			pt.Labels, pt.Props, pt.EdgeFactor, pt.LoadTime.Round(time.Millisecond), pt.QPS)
	}
	return sb.String()
}

// ShapePoint is one row of the §6.7 comparison.
type ShapePoint struct {
	Shape      string
	MaxDegree  uint32
	BFSRuntime time.Duration
	Visited    int64
}

// RunDegreeShape produces the §6.7 comparison: heavy-tail (Kronecker) vs
// uniform-degree graphs of identical size, BFS through GDI.
func RunDegreeShape(p Profile) ([]ShapePoint, error) {
	ranks := p.Ranks[len(p.Ranks)-1]
	var points []ShapePoint
	for _, uniform := range []bool{false, true} {
		cfg := kron.Config{
			Scale: p.BaseScale, EdgeFactor: p.EdgeFactor, Seed: p.Seed,
			NumLabels: 20, NumProps: 13, Uniform: uniform,
		}.WithDefaults()
		rt, db, sch, err := loadGDA(ranks, cfg)
		if err != nil {
			return nil, err
		}
		g := &analytics.Graph{DB: db, Schema: sch}
		var visited int64
		d, err := runTimed(rt, db, func(p *gdi.Process) error {
			v, _, err := analytics.BFS(p, g, 0)
			if p.Rank() == 0 {
				visited = v
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		csr := kron.BuildCSR(cfg)
		var maxDeg uint32
		for _, dg := range csr.Degree {
			if dg > maxDeg {
				maxDeg = dg
			}
		}
		shape := "heavy-tail (Kronecker)"
		if uniform {
			shape = "uniform"
		}
		points = append(points, ShapePoint{Shape: shape, MaxDegree: maxDeg, BFSRuntime: d, Visited: visited})
	}
	return points, nil
}

// FormatDegreeShape renders the §6.7 comparison.
func FormatDegreeShape(points []ShapePoint) string {
	var sb strings.Builder
	sb.WriteString("== §6.7: degree-distribution shape (BFS through GDI) ==\n")
	fmt.Fprintf(&sb, "%-24s %10s %12s %10s\n", "shape", "max degree", "BFS runtime", "visited")
	for _, pt := range points {
		fmt.Fprintf(&sb, "%-24s %10d %12s %10d\n", pt.Shape, pt.MaxDegree, pt.BFSRuntime.Round(time.Microsecond), pt.Visited)
	}
	return sb.String()
}
