package figures

import (
	"strings"
	"testing"

	"github.com/gdi-go/gdi/internal/workload"
)

// tiny keeps figure-wiring tests fast.
var tiny = Profile{Ranks: []int{1, 2}, BaseScale: 6, EdgeFactor: 4, OpsPerWorker: 100, Seed: 1}

func TestRunOLTPProducesAllCells(t *testing.T) {
	pts, err := RunOLTP(tiny, []workload.Mix{workload.ReadMostly, workload.LinkBench}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	// 2 ranks × (2 GDA mixes + 1 baseline) = 6 points.
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6", len(pts))
	}
	for _, pt := range pts {
		if pt.QPS <= 0 {
			t.Fatalf("cell %+v has zero throughput", pt)
		}
	}
	out := FormatOLTP("test", pts)
	if !strings.Contains(out, "JanusGraph-like") || !strings.Contains(out, "queries/s") {
		t.Fatalf("format output incomplete:\n%s", out)
	}
	// Weak scaling must grow the dataset.
	if pts[0].Scale >= pts[3].Scale {
		t.Fatalf("weak scaling did not grow the scale: %d vs %d", pts[0].Scale, pts[3].Scale)
	}
}

func TestRunOLTPStrongKeepsScale(t *testing.T) {
	pts, err := RunOLTP(tiny, []workload.Mix{workload.ReadMostly}, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Scale != pts[1].Scale {
		t.Fatalf("strong scaling changed the dataset: %d vs %d", pts[0].Scale, pts[1].Scale)
	}
}

func TestRunLatencyCoversSystemsAndOps(t *testing.T) {
	rows, err := RunLatency(Profile{Ranks: []int{1}, BaseScale: 6, EdgeFactor: 4, OpsPerWorker: 200, Seed: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	systems := map[string]bool{}
	for _, r := range rows {
		systems[r.System] = true
		if r.MeanNs <= 0 || r.Count <= 0 {
			t.Fatalf("row %+v is empty", r)
		}
		if r.Chart == "" {
			t.Fatalf("row %+v missing chart", r)
		}
	}
	for _, want := range []string{"GDA", "JanusGraph-like", "Neo4j-like"} {
		if !systems[want] {
			t.Fatalf("system %s missing from latency rows", want)
		}
	}
	if out := FormatLatency(rows); !strings.Contains(out, "retrieve vertex") {
		t.Fatal("latency format incomplete")
	}
}

func TestRunAnalyticsWeakAndStrong(t *testing.T) {
	weak, err := RunAnalytics(tiny, false)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, pt := range weak {
		names[pt.Workload] = true
	}
	for _, want := range []string{"PageRank (i=10, df=0.85)", "CDLP (i=5)", "WCC"} {
		if !names[want] {
			t.Fatalf("weak analytics missing %s", want)
		}
	}
	strong, err := RunAnalytics(tiny, true)
	if err != nil {
		t.Fatal(err)
	}
	names = map[string]bool{}
	systems := map[string]bool{}
	for _, pt := range strong {
		names[pt.Workload] = true
		systems[pt.System] = true
	}
	if !names["LCC"] || !names["BI2"] {
		t.Fatal("strong analytics missing LCC/BI2")
	}
	if !systems["Neo4j-like"] {
		t.Fatal("strong analytics missing the Neo4j-like BI2 baseline")
	}
	if out := FormatAnalytics("t", strong); !strings.Contains(out, "BI2") {
		t.Fatal("analytics format incomplete")
	}
}

func TestRunGNNAndTraversal(t *testing.T) {
	gnn, err := RunGNN(Profile{Ranks: []int{1}, BaseScale: 6, EdgeFactor: 4, OpsPerWorker: 10, Seed: 1}, []int{4}, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(gnn) != 1 || gnn[0].Runtime <= 0 {
		t.Fatalf("gnn points = %+v", gnn)
	}
	trav, err := RunTraversal(Profile{Ranks: []int{2}, BaseScale: 6, EdgeFactor: 4, OpsPerWorker: 10, Seed: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	systems := map[string]bool{}
	for _, pt := range trav {
		systems[pt.System] = true
	}
	for _, want := range []string{"GDA", "Graph500", "Neo4j-like"} {
		if !systems[want] {
			t.Fatalf("traversal missing system %s", want)
		}
	}
	// GDA and Graph500 must agree on reachability.
	var gdaVisited, g500Visited string
	for _, pt := range trav {
		if pt.Workload == "BFS" {
			switch pt.System {
			case "GDA":
				gdaVisited = pt.Extra
			case "Graph500":
				g500Visited = pt.Extra
			}
		}
	}
	if gdaVisited != g500Visited || gdaVisited == "" {
		t.Fatalf("BFS visited mismatch: GDA %q vs Graph500 %q", gdaVisited, g500Visited)
	}
}

func TestRunRichnessAndShape(t *testing.T) {
	rich, err := RunRichness(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rich) != 5 {
		t.Fatalf("richness variants = %d, want 5", len(rich))
	}
	if out := FormatRichness(rich); !strings.Contains(out, "edge factor") {
		t.Fatal("richness format incomplete")
	}
	shape, err := RunDegreeShape(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 2 {
		t.Fatalf("shape points = %d, want 2", len(shape))
	}
	if shape[0].MaxDegree <= shape[1].MaxDegree {
		t.Fatalf("heavy-tail max degree %d not above uniform %d", shape[0].MaxDegree, shape[1].MaxDegree)
	}
	if out := FormatDegreeShape(shape); !strings.Contains(out, "heavy-tail") {
		t.Fatal("shape format incomplete")
	}
}
