package block

import (
	"bytes"
	"sync"
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

func newStore(t *testing.T, ranks, perRank int) *Store {
	t.Helper()
	return NewStore(rma.New(ranks), Config{BlockSize: 64, BlocksPerRank: perRank})
}

func TestAcquireReleaseSingleRank(t *testing.T) {
	s := newStore(t, 1, 8)
	if free := s.FreeBlocks(0, 0); free != 7 { // block 0 reserved
		t.Fatalf("initial free = %d, want 7", free)
	}
	var got []rma.DPtr
	for i := 0; i < 7; i++ {
		dp, err := s.AcquireBlock(0, 0)
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if dp.Off() == 0 {
			t.Fatal("allocator handed out reserved block 0")
		}
		got = append(got, dp)
	}
	if _, err := s.AcquireBlock(0, 0); err != ErrNoFreeBlocks {
		t.Fatalf("exhausted acquire err = %v, want ErrNoFreeBlocks", err)
	}
	seen := map[rma.DPtr]bool{}
	for _, dp := range got {
		if seen[dp] {
			t.Fatalf("duplicate block %v", dp)
		}
		seen[dp] = true
	}
	for _, dp := range got {
		s.ReleaseBlock(0, dp)
	}
	if free := s.FreeBlocks(0, 0); free != 7 {
		t.Fatalf("free after release = %d, want 7", free)
	}
}

func TestAcquireOnRemoteRank(t *testing.T) {
	s := newStore(t, 4, 4)
	dp, err := s.AcquireBlock(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Rank() != 3 {
		t.Fatalf("block allocated on rank %d, want 3", dp.Rank())
	}
	s.ReleaseBlock(1, dp) // any rank may release
	if free := s.FreeBlocks(0, 3); free != 3 {
		t.Fatalf("free = %d, want 3", free)
	}
}

func TestConcurrentAcquireReleaseNoDuplicates(t *testing.T) {
	const ranks, perRank, rounds = 8, 128, 200
	s := newStore(t, ranks, perRank)
	var mu sync.Mutex
	owned := make(map[rma.DPtr]rma.Rank)
	s.Fabric().Run(func(r rma.Rank) {
		var mine []rma.DPtr
		for i := 0; i < rounds; i++ {
			target := rma.Rank((int(r) + i) % ranks)
			dp, err := s.AcquireBlock(r, target)
			if err != nil {
				continue // pool transiently exhausted under contention: fine
			}
			mu.Lock()
			if prev, dup := owned[dp]; dup {
				t.Errorf("block %v double-allocated (held by rank %d, acquired by %d)", dp, prev, r)
			}
			owned[dp] = r
			mu.Unlock()
			mine = append(mine, dp)
			if len(mine) > 8 { // release oldest to keep churn high
				old := mine[0]
				mine = mine[1:]
				mu.Lock()
				delete(owned, old)
				mu.Unlock()
				s.ReleaseBlock(r, old)
			}
		}
		for _, dp := range mine {
			mu.Lock()
			delete(owned, dp)
			mu.Unlock()
			s.ReleaseBlock(r, dp)
		}
	})
	// Every rank's pool must be whole again.
	for r := 0; r < ranks; r++ {
		if free := s.FreeBlocks(0, rma.Rank(r)); free != perRank-1 {
			t.Fatalf("rank %d free = %d, want %d", r, free, perRank-1)
		}
	}
}

func TestWriteReadBlock(t *testing.T) {
	s := newStore(t, 2, 4)
	dp, err := s.AcquireBlock(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, 64)
	s.WriteBlock(0, dp, payload)
	buf := make([]byte, 64)
	s.ReadBlock(1, dp, buf)
	if !bytes.Equal(buf, payload) {
		t.Fatal("block payload round-trip mismatch")
	}
}

func TestPartialWriteLeavesTail(t *testing.T) {
	s := newStore(t, 1, 4)
	dp, _ := s.AcquireBlock(0, 0)
	s.WriteBlock(0, dp, bytes.Repeat([]byte{0xff}, 64))
	s.WriteBlock(0, dp, []byte{1, 2, 3})
	buf := make([]byte, 64)
	s.ReadBlock(0, dp, buf)
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 || buf[3] != 0xff {
		t.Fatalf("partial write corrupted block: % x", buf[:8])
	}
}

func TestLockWordDistinctPerBlock(t *testing.T) {
	s := newStore(t, 2, 8)
	a, _ := s.AcquireBlock(0, 1)
	b, _ := s.AcquireBlock(0, 1)
	winA, rA, iA := s.LockWord(a)
	winB, rB, iB := s.LockWord(b)
	if winA != winB || rA != rB {
		t.Fatal("lock words of same-rank blocks in different windows")
	}
	if iA == iB {
		t.Fatal("distinct blocks share a lock word")
	}
}

func TestBadConfigPanics(t *testing.T) {
	cases := []Config{
		{BlockSize: 0, BlocksPerRank: 4},
		{BlockSize: 12, BlocksPerRank: 4}, // not a multiple of 8
		{BlockSize: 64, BlocksPerRank: 1},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStore(%+v) did not panic", cfg)
				}
			}()
			NewStore(rma.New(1), cfg)
		}()
	}
}

func TestCheckDPtrPanics(t *testing.T) {
	s := newStore(t, 1, 4)
	for _, dp := range []rma.DPtr{rma.NullDPtr, rma.MakeDPtr(0, 99)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ReadBlock(%v) did not panic", dp)
				}
			}()
			s.ReadBlock(0, dp, make([]byte, 8))
		}()
	}
}

func TestABARegression(t *testing.T) {
	// Classic ABA schedule: rank 1 acquires A then B, releases A; if the head
	// tag were missing, rank 0's stale CAS could corrupt the list. We can't
	// pause goroutines mid-CAS, so instead hammer a 2-block pool from many
	// ranks and verify the list never loses or duplicates blocks.
	s := NewStore(rma.New(4), Config{BlockSize: 64, BlocksPerRank: 3})
	s.Fabric().Run(func(r rma.Rank) {
		for i := 0; i < 500; i++ {
			dp, err := s.AcquireBlock(r, 0)
			if err != nil {
				continue
			}
			s.ReleaseBlock(r, dp)
		}
	})
	if free := s.FreeBlocks(0, 0); free != 2 {
		t.Fatalf("pool corrupted after churn: free = %d, want 2", free)
	}
}

func TestReadBlocksBatch(t *testing.T) {
	f := rma.New(3)
	s := NewStore(f, Config{BlockSize: 64, BlocksPerRank: 32})
	// One block per rank, each with distinct content.
	var dps []rma.DPtr
	for r := 0; r < 3; r++ {
		dp, err := s.AcquireBlock(0, rma.Rank(r))
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 64)
		for i := range payload {
			payload[i] = byte(r*100 + i)
		}
		s.WriteBlock(0, dp, payload)
		dps = append(dps, dp)
	}
	// Read them back in interleaved order with a vectored batch.
	order := []int{2, 0, 1, 2, 0}
	batch := make([]rma.DPtr, len(order))
	bufs := make([][]byte, len(order))
	for i, j := range order {
		batch[i] = dps[j]
		bufs[i] = make([]byte, 64)
	}
	s.ReadBlocksBatch(1, batch, bufs)
	for i, j := range order {
		want := make([]byte, 64)
		s.ReadBlock(1, dps[j], want)
		if !bytes.Equal(bufs[i], want) {
			t.Errorf("entry %d (block of rank %d): batch read diverges from scalar read", i, j)
		}
	}
	// Length mismatch is a programming error.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched batch lengths should panic")
			}
		}()
		s.ReadBlocksBatch(0, batch, bufs[:1])
	}()
}

func TestWriteBlocksBatch(t *testing.T) {
	s := newStore(t, 3, 8)
	// One block per rank, written in one vectored batch from rank 1.
	var dps []rma.DPtr
	var payloads [][]byte
	for r := 0; r < 3; r++ {
		dp, err := s.AcquireBlock(1, rma.Rank(r))
		if err != nil {
			t.Fatal(err)
		}
		p := make([]byte, 64)
		for i := range p {
			p[i] = byte(r*37 + i)
		}
		dps = append(dps, dp)
		payloads = append(payloads, p)
	}
	// A short payload must leave the block tail unchanged, as WriteBlock does.
	payloads[2] = payloads[2][:16]
	s.WriteBlocksBatch(1, dps, payloads)
	for i, dp := range dps {
		got := make([]byte, len(payloads[i]))
		s.ReadBlock(0, dp, got)
		if !bytes.Equal(got, payloads[i]) {
			t.Errorf("block %d: read back %v, wrote %v", i, got, payloads[i])
		}
	}
	// The batch pays one PUT train per distinct remote rank.
	s.Fabric().ResetCounters()
	s.WriteBlocksBatch(1, dps, payloads)
	snap := s.Fabric().CounterSnapshot(1)
	if snap.PutBatches != 2 {
		t.Errorf("PutBatches = %d, want 2 (ranks 0 and 2; rank 1 is local)", snap.PutBatches)
	}
	// Length mismatch is a programming error.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched batch lengths should panic")
			}
		}()
		s.WriteBlocksBatch(0, dps, payloads[:1])
	}()
}
