package block

import (
	"container/list"
	"fmt"
	"sync"

	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/locks"
)

// The remote-block cache of the optimistic read tier (§3.8, §5.2): each rank
// keeps version-stamped local copies of remote blocks it has fetched, and
// revalidates them with a single vectored atomic-load train over the guard
// lock words instead of re-fetching the payloads. A cached copy is current
// exactly while its guard word still carries the stamped version with the
// write bit clear — writers bump the version at write-unlock, which is the
// entire invalidation protocol: no invalidation messages, no coherence
// directory, just the lock word every transaction already touches.
//
// Entries are keyed by block DPtr and tagged with the guard block (the
// holder primary whose lock word protects the content). Only vertex-holder
// blocks are cached: their content changes exclusively under the primary's
// write lock, so the version stamp is authoritative. Edge holders are
// mutated under their *endpoints'* locks and therefore bypass the cache.
// Local blocks are never cached (a local read costs no remote latency).

// cacheEntry is one version-stamped block copy.
type cacheEntry struct {
	dp      fabric.DPtr
	guard   fabric.DPtr // holder primary whose lock word stamps this copy
	ver     uint64      // guard version the payload corresponds to
	payload []byte
}

// blockCache is one rank's LRU cache. A rank may run many concurrent
// workers, so access is serialized with a mutex; the protected section only
// copies block-sized payloads.
type blockCache struct {
	mu  sync.Mutex
	cap int
	m   map[fabric.DPtr]*list.Element
	lru *list.List // front = most recently used; values are *cacheEntry
}

func newBlockCache(capacity int) *blockCache {
	return &blockCache{
		cap: capacity,
		m:   make(map[fabric.DPtr]*list.Element, capacity),
		lru: list.New(),
	}
}

// lookup copies dp's cached payload into dst when an entry with the given
// guard exists and is large enough, returning its stamped version. The
// caller decides validity by comparing ver against the guard word.
func (c *blockCache) lookup(dp, guard fabric.DPtr, dst []byte) (ver uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.m[dp]
	if !found {
		return 0, false
	}
	e := el.Value.(*cacheEntry)
	if e.guard != guard || len(e.payload) < len(dst) {
		return 0, false
	}
	c.lru.MoveToFront(el)
	copy(dst, e.payload)
	return e.ver, true
}

// install stores a validated copy, evicting from the LRU tail under capacity
// pressure. An existing entry for dp is replaced.
func (c *blockCache) install(dp, guard fabric.DPtr, ver uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.m[dp]; found {
		e := el.Value.(*cacheEntry)
		e.guard, e.ver = guard, ver
		e.payload = append(e.payload[:0], payload...)
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.m, tail.Value.(*cacheEntry).dp)
	}
	e := &cacheEntry{dp: dp, guard: guard, ver: ver, payload: append([]byte(nil), payload...)}
	c.m[dp] = c.lru.PushFront(e)
}

// invalidate drops dp's entry, if any.
func (c *blockCache) invalidate(dp fabric.DPtr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.m[dp]; found {
		c.lru.Remove(el)
		delete(c.m, dp)
	}
}

func (c *blockCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// cacheOf returns origin's cache, or nil when caching is disabled.
func (s *Store) cacheOf(origin fabric.Rank) *blockCache {
	if s.caches == nil {
		return nil
	}
	return s.caches[origin]
}

// CacheEnabled reports whether the store runs with a block cache.
func (s *Store) CacheEnabled() bool { return s.caches != nil }

// CacheLen returns the number of entries in rank r's cache (diagnostics and
// tests).
func (s *Store) CacheLen(r fabric.Rank) int {
	if c := s.cacheOf(r); c != nil {
		return c.len()
	}
	return 0
}

// invalidateCached drops origin's cached copy of dp after a write or a block
// release. This is local hygiene, not the coherence protocol: other ranks'
// stale copies are rejected by version validation, and so would ours — but a
// writer knows its own copies are dead and need not wait for a failed
// revalidation to find out.
func (s *Store) invalidateCached(origin fabric.Rank, dp fabric.DPtr) {
	if c := s.cacheOf(origin); c != nil {
		c.invalidate(dp)
	}
}

// LockStamps reads the lock words guarding the given blocks — one vectored
// atomic-load train per distinct owner rank — and returns the raw words
// aligned with dps. Interpret them with locks.Version and locks.WriteHeld.
// This is the "CAS-free word train": revalidating any number of cached
// holders on one rank costs a single remote round-trip.
func (s *Store) LockStamps(origin fabric.Rank, dps []fabric.DPtr) []uint64 {
	out := make([]uint64, len(dps))
	byTarget := make(map[fabric.Rank][]int) // target -> positions in dps
	for i, dp := range dps {
		s.checkDPtr(dp)
		byTarget[dp.Rank()] = append(byTarget[dp.Rank()], i)
	}
	for t, pos := range byTarget {
		idxs := make([]int, len(pos))
		for j, i := range pos {
			idxs[j] = 1 + int(dps[i].Off())
		}
		for j, w := range s.sys.LoadBatch(origin, t, idxs) {
			out[pos[j]] = w
		}
	}
	return out
}

// LockStamp loads the single lock word guarding dp — the scalar form of
// LockStamps for the one-holder optimistic point read, whose steady-state
// path must not allocate (LockStamps builds per-target batch maps).
func (s *Store) LockStamp(origin fabric.Rank, dp fabric.DPtr) uint64 {
	s.checkDPtr(dp)
	return s.sys.Load(origin, dp.Rank(), 1+int(dp.Off()))
}

// CachedBlock serves dp from origin's cache into dst when a copy guarded by
// guard exists and is current under the caller's stamp (same version, write
// bit clear) — the scalar, allocation-free form of the cache hit in
// ReadBlocksStamped, including the hit/miss accounting. Returns false when
// caching is off, dp is local, or the copy is missing or stale; the caller
// then fetches and (after establishing stability) installs via InstallCached.
func (s *Store) CachedBlock(origin fabric.Rank, dp, guard fabric.DPtr, stamp uint64, dst []byte) bool {
	c := s.cacheOf(origin)
	if c == nil || dp.Rank() == origin {
		return false
	}
	if ver, found := c.lookup(dp, guard, dst); found && ver == locks.Version(stamp) && !locks.WriteHeld(stamp) {
		s.f.AddCache(origin, 1, 0)
		return true
	}
	s.f.AddCache(origin, 0, 1)
	return false
}

// GuardStamps loads the lock words of the distinct guards into a map, one
// vectored atomic-load train per owner rank. A stamp set is the unit the
// read protocols revalidate against: the transaction layer stamps a whole
// fetch's guards once and serves every streaming round of every holder
// against the same stamps, instead of paying a stamp train per round.
func (s *Store) GuardStamps(origin fabric.Rank, guards []fabric.DPtr) map[fabric.DPtr]uint64 {
	uniq := make([]fabric.DPtr, 0, len(guards))
	seen := make(map[fabric.DPtr]uint64, len(guards))
	for _, g := range guards {
		if _, dup := seen[g]; !dup {
			seen[g] = 0
			uniq = append(uniq, g)
		}
	}
	for i, w := range s.LockStamps(origin, uniq) {
		seen[uniq[i]] = w
	}
	return seen
}

// ReadBlocksStamped fetches block dps[i] into bufs[i] against the
// caller-provided guard stamps (from GuardStamps): cached copies carrying
// the stamped version with the write bit clear are served locally with no
// GET traffic, and the rest come off the wire as one vectored GET train per
// owner rank.
//
// When install is true the caller guarantees content stability — it holds
// read locks on the guards, or runs in a collective read epoch (§3.3) — so
// fetched blocks are installed into the cache immediately at the stamped
// version. When install is false (the optimistic tier) nothing is
// installed: the caller must establish stability with a post-stamp train
// and then hand the accepted blocks to InstallCached.
//
// Returns fetched[i] = true for blocks that came off the wire (their
// stability is not yet established when install is false).
func (s *Store) ReadBlocksStamped(origin fabric.Rank, dps, guards []fabric.DPtr, bufs [][]byte, stamps map[fabric.DPtr]uint64, install bool) (fetched []bool) {
	if len(dps) != len(guards) || len(dps) != len(bufs) {
		panic(fmt.Sprintf("block: stamped batch of %d DPtrs, %d guards, %d buffers", len(dps), len(guards), len(bufs)))
	}
	n := len(dps)
	fetched = make([]bool, n)
	if n == 0 {
		return fetched
	}
	cache := s.cacheOf(origin)

	missIdx := make([]int, 0, n)
	var hits, misses int64
	for i := range dps {
		w := stamps[guards[i]]
		if cache != nil && dps[i].Rank() != origin {
			if ver, found := cache.lookup(dps[i], guards[i], bufs[i]); found && ver == locks.Version(w) && !locks.WriteHeld(w) {
				hits++
				continue
			}
			misses++
		}
		missIdx = append(missIdx, i)
	}
	if cache != nil {
		s.f.AddCache(origin, hits, misses)
	}
	if len(missIdx) == 0 {
		return fetched
	}
	mdps := make([]fabric.DPtr, len(missIdx))
	mbufs := make([][]byte, len(missIdx))
	for j, i := range missIdx {
		mdps[j] = dps[i]
		mbufs[j] = bufs[i]
		fetched[i] = true
	}
	s.ReadBlocksBatch(origin, mdps, mbufs)
	if install && cache != nil {
		for _, i := range missIdx {
			if dps[i].Rank() != origin {
				cache.install(dps[i], guards[i], locks.Version(stamps[guards[i]]), bufs[i])
			}
		}
	}
	return fetched
}

// InstallCached installs validated copies of one holder's fetched blocks,
// all guarded by guard and stable at version ver. Callers on the optimistic
// tier invoke it after their post-stamp train confirmed the guard did not
// move across the fetch.
func (s *Store) InstallCached(origin fabric.Rank, guard fabric.DPtr, ver uint64, dps []fabric.DPtr, bufs [][]byte) {
	cache := s.cacheOf(origin)
	if cache == nil {
		return
	}
	for i, dp := range dps {
		if dp.Rank() != origin {
			cache.install(dp, guard, ver, bufs[i])
		}
	}
}

// ReadBlocksCached is the self-contained, one-call form of the stamped read
// protocol (the transaction layer uses the split GuardStamps /
// ReadBlocksStamped / InstallCached primitives directly so one stamp set
// can cover every streaming round of a flush): one stamp train, cache hits
// served locally, misses fetched, and — when locked is false (no read locks
// held, the optimistic tier) — a post-stamp train over the miss guards
// implementing the seqlock double-check: a fetch is accepted and cached
// only if its guard shows the same version with the write bit clear on both
// sides of the read. With locked true the caller guarantees stability (read
// locks or a collective read epoch) and the post-check is elided.
//
// It returns, aligned with dps: the guard version each accepted buffer
// corresponds to, and whether the read was accepted. Rejected reads
// (ok[i] == false, only possible with locked == false) carry torn or moving
// content; the caller must retry or fall back to locking. It works with
// caching disabled, degenerating to validated (but uncached) batch reads.
func (s *Store) ReadBlocksCached(origin fabric.Rank, dps, guards []fabric.DPtr, bufs [][]byte, locked bool) (vers []uint64, ok []bool) {
	if len(dps) != len(guards) || len(dps) != len(bufs) {
		panic(fmt.Sprintf("block: cached batch of %d DPtrs, %d guards, %d buffers", len(dps), len(guards), len(bufs)))
	}
	n := len(dps)
	vers = make([]uint64, n)
	ok = make([]bool, n)
	if n == 0 {
		return vers, ok
	}
	stamps := s.GuardStamps(origin, guards)
	fetched := s.ReadBlocksStamped(origin, dps, guards, bufs, stamps, locked)

	post := stamps
	if !locked {
		var missGuards []fabric.DPtr
		for i := range dps {
			if fetched[i] {
				missGuards = append(missGuards, guards[i])
			}
		}
		if len(missGuards) > 0 {
			post = s.GuardStamps(origin, missGuards)
		}
	}
	for i := range dps {
		pre := stamps[guards[i]]
		if !fetched[i] {
			// Cache hits were validated against the stamp at lookup time.
			vers[i], ok[i] = locks.Version(pre), true
			continue
		}
		if !locked {
			po := post[guards[i]]
			if locks.WriteHeld(pre) || locks.WriteHeld(po) || locks.Version(pre) != locks.Version(po) {
				continue // torn or moving: rejected, not cached
			}
			s.InstallCached(origin, guards[i], locks.Version(pre), dps[i:i+1], bufs[i:i+1])
		}
		vers[i], ok[i] = locks.Version(pre), true
	}
	return vers, ok
}
