package block

import (
	"bytes"
	"testing"

	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/rma"
)

// cacheFixture is a 2-rank store with caching: rank 1 owns the blocks,
// rank 0 reads them remotely through its cache.
func cacheFixture(t *testing.T, cacheBlocks int) (*Store, *rma.Fabric) {
	t.Helper()
	f := rma.New(2)
	s := NewStore(f, Config{BlockSize: 64, BlocksPerRank: 32, CacheBlocks: cacheBlocks})
	return s, f
}

func payloadFor(seed byte) []byte {
	p := make([]byte, 64)
	for i := range p {
		p[i] = seed + byte(i)
	}
	return p
}

// remoteBlock allocates a block on rank 1 and fills it from its owner.
func remoteBlock(t *testing.T, s *Store, seed byte) rma.DPtr {
	t.Helper()
	dp, err := s.AcquireBlock(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.WriteBlock(1, dp, payloadFor(seed))
	return dp
}

func lockOf(s *Store, dp rma.DPtr) locks.Word {
	win, target, idx := s.LockWord(dp)
	return locks.Word{Win: win, Target: target, Idx: idx}
}

// readCached reads one block on rank 0 with the block as its own guard.
func readCached(t *testing.T, s *Store, dp rma.DPtr, locked bool) ([]byte, uint64, bool) {
	t.Helper()
	buf := make([]byte, 64)
	vers, ok := s.ReadBlocksCached(0, []rma.DPtr{dp}, []rma.DPtr{dp}, [][]byte{buf}, locked)
	return buf, vers[0], ok[0]
}

func TestCachedReadHitAndMiss(t *testing.T) {
	s, f := cacheFixture(t, 8)
	dp := remoteBlock(t, s, 1)

	buf, ver, ok := readCached(t, s, dp, false)
	if !ok || !bytes.Equal(buf, payloadFor(1)) {
		t.Fatalf("first read: ok=%v buf=%v", ok, buf[:4])
	}
	if ver != 0 {
		t.Fatalf("fresh block version = %d, want 0", ver)
	}
	snap := f.CounterSnapshot(0)
	if snap.CacheHits != 0 || snap.CacheMisses != 1 {
		t.Fatalf("after first read: hits=%d misses=%d", snap.CacheHits, snap.CacheMisses)
	}
	gets := snap.RemoteGets

	buf, _, ok = readCached(t, s, dp, false)
	if !ok || !bytes.Equal(buf, payloadFor(1)) {
		t.Fatalf("second read: ok=%v buf=%v", ok, buf[:4])
	}
	snap = f.CounterSnapshot(0)
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("after second read: hits=%d misses=%d", snap.CacheHits, snap.CacheMisses)
	}
	if snap.RemoteGets != gets {
		t.Fatalf("cache hit issued %d remote gets", snap.RemoteGets-gets)
	}
	if n := s.CacheLen(0); n != 1 {
		t.Fatalf("cache holds %d entries, want 1", n)
	}
}

func TestLocalBlocksBypassTheCache(t *testing.T) {
	s, f := cacheFixture(t, 8)
	dp, err := s.AcquireBlock(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.WriteBlock(0, dp, payloadFor(9))
	buf, _, ok := readCached(t, s, dp, false)
	if !ok || !bytes.Equal(buf, payloadFor(9)) {
		t.Fatalf("local read: ok=%v", ok)
	}
	if n := s.CacheLen(0); n != 0 {
		t.Fatalf("local block cached (%d entries)", n)
	}
	if snap := f.CounterSnapshot(0); snap.CacheHits != 0 || snap.CacheMisses != 0 {
		t.Fatalf("local reads counted against the cache: %+v", snap)
	}
}

func TestCacheEvictionUnderCapacityPressure(t *testing.T) {
	s, f := cacheFixture(t, 2)
	dps := []rma.DPtr{remoteBlock(t, s, 1), remoteBlock(t, s, 2), remoteBlock(t, s, 3)}
	for _, dp := range dps {
		if _, _, ok := readCached(t, s, dp, false); !ok {
			t.Fatal("read rejected")
		}
	}
	if n := s.CacheLen(0); n != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", n)
	}
	// The LRU victim is the first block: re-reading it must miss, while the
	// most recent two still hit.
	f.ResetCounters()
	readCached(t, s, dps[0], false)
	readCached(t, s, dps[2], false)
	snap := f.CounterSnapshot(0)
	if snap.CacheMisses != 1 || snap.CacheHits != 1 {
		t.Fatalf("after eviction: hits=%d misses=%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
}

// TestCacheInvalidationEdges drives the stale-copy scenarios the version
// protocol must catch, for both the scalar release (one CAS per word) and
// the release train (one CAS train per rank) write-unlock paths.
func TestCacheInvalidationEdges(t *testing.T) {
	for _, tc := range []struct {
		name    string
		release func(w locks.Word)
	}{
		{"scalar-release", func(w locks.Word) { w.ReleaseWrite(1) }},
		{"release-train", func(w locks.Word) { locks.ReleaseWriteTrain(1, []locks.Word{w}, nil) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := cacheFixture(t, 8)
			dp := remoteBlock(t, s, 1)
			w := lockOf(s, dp)

			// Prime rank 0's cache at version 0.
			if _, ver, ok := readCached(t, s, dp, false); !ok || ver != 0 {
				t.Fatalf("prime: ver=%d ok=%v", ver, ok)
			}

			// A remote writer overwrites the block under its lock.
			if err := w.TryAcquireWrite(1, locks.DefaultTries); err != nil {
				t.Fatal(err)
			}
			s.WriteBlock(1, dp, payloadFor(2))
			tc.release(w)

			// The cached copy is stale: revalidation must reject it and the
			// refetch must observe the new content at the bumped version.
			buf, ver, ok := readCached(t, s, dp, false)
			if !ok {
				t.Fatal("post-write read rejected")
			}
			if ver != 1 {
				t.Fatalf("post-write version = %d, want 1", ver)
			}
			if !bytes.Equal(buf, payloadFor(2)) {
				t.Fatalf("stale payload served after remote write: %v", buf[:4])
			}

			// Deletion: the owner zeroes the header and releases the block
			// under its lock; a reader must observe the poison, not the copy.
			if err := w.TryAcquireWrite(1, locks.DefaultTries); err != nil {
				t.Fatal(err)
			}
			s.WriteBlock(1, dp, make([]byte, 8))
			tc.release(w)
			buf, ver, ok = readCached(t, s, dp, false)
			if !ok || ver != 2 {
				t.Fatalf("post-delete read: ver=%d ok=%v", ver, ok)
			}
			if !bytes.Equal(buf[:8], make([]byte, 8)) {
				t.Fatalf("deletion poison not observed: %v", buf[:8])
			}
		})
	}
}

func TestUnstableReadRejectedWhileWriterHolds(t *testing.T) {
	s, f := cacheFixture(t, 8)
	dp := remoteBlock(t, s, 1)
	w := lockOf(s, dp)
	if err := w.TryAcquireWrite(1, locks.DefaultTries); err != nil {
		t.Fatal(err)
	}
	// Unlocked (optimistic) reads under a held writer are rejected and
	// nothing is cached; a locked read (the caller holds a read lock or a
	// collective read epoch) is accepted by contract.
	if _, _, ok := readCached(t, s, dp, false); ok {
		t.Fatal("optimistic read accepted while a writer holds the guard")
	}
	if n := s.CacheLen(0); n != 0 {
		t.Fatalf("rejected read installed %d cache entries", n)
	}
	w.ReleaseWrite(1)
	if _, ver, ok := readCached(t, s, dp, false); !ok || ver != 1 {
		t.Fatalf("read after writer left: ver=%d ok=%v", ver, ok)
	}
	_ = f
}

func TestGuardChangeInvalidatesEntry(t *testing.T) {
	s, _ := cacheFixture(t, 8)
	dp := remoteBlock(t, s, 1)
	guard := remoteBlock(t, s, 2)

	// Cache dp as a continuation block guarded by `guard`.
	buf := make([]byte, 64)
	if _, ok := s.ReadBlocksCached(0, []rma.DPtr{dp}, []rma.DPtr{guard}, [][]byte{buf}, false); !ok[0] {
		t.Fatal("guarded read rejected")
	}
	// The same block requested under a different guard (the block was
	// recycled into another holder) must miss, not serve the old copy.
	w := lockOf(s, dp)
	if err := w.TryAcquireWrite(1, locks.DefaultTries); err != nil {
		t.Fatal(err)
	}
	s.WriteBlock(1, dp, payloadFor(7))
	w.ReleaseWrite(1)
	got, _, ok := readCached(t, s, dp, false) // guard = dp itself now
	if !ok || !bytes.Equal(got, payloadFor(7)) {
		t.Fatalf("recycled block served stale content: ok=%v got=%v", ok, got[:4])
	}
}

func TestWritesInvalidateOwnCachedCopies(t *testing.T) {
	s, _ := cacheFixture(t, 8)
	dp := remoteBlock(t, s, 1)
	if _, _, ok := readCached(t, s, dp, false); !ok {
		t.Fatal("prime read rejected")
	}
	if n := s.CacheLen(0); n != 1 {
		t.Fatalf("cache len %d, want 1", n)
	}
	// Rank 0 writes the block itself (e.g. commit write-back): its own copy
	// must be dropped immediately, for both scalar and batched writes.
	s.WriteBlock(0, dp, payloadFor(5))
	if n := s.CacheLen(0); n != 0 {
		t.Fatalf("scalar write left %d cached copies", n)
	}
	dp2 := remoteBlock(t, s, 8)
	readCached(t, s, dp, false)
	readCached(t, s, dp2, false)
	s.WriteBlocksBatch(0, []rma.DPtr{dp, dp2}, [][]byte{payloadFor(6), payloadFor(6)})
	if n := s.CacheLen(0); n != 0 {
		t.Fatalf("batched write left %d cached copies", n)
	}
	// Releasing a block drops the releaser's copy too.
	readCached(t, s, dp, false)
	s.ReleaseBlock(0, dp)
	if n := s.CacheLen(0); n != 0 {
		t.Fatalf("release left %d cached copies", n)
	}
}
