// Package block implements the Blocked Graph Data Layout (BGDL) of GDI-RMA
// (§5.3, §5.5 of the paper): a distributed-memory pool of fixed-size blocks
// with lock-free, fully one-sided allocation.
//
// Three RMA windows back the layout, exactly as in the paper:
//
//   - the data window holds the block payloads that make up vertex and edge
//     holder objects;
//   - the usage window is a free-list: usage[i] is the index of the free
//     block following block i;
//   - the system window holds, per rank, the tagged head of the free list
//     (word 0) plus one reader-writer lock word per block (words 1..#blocks),
//     used by the transaction layer for the per-vertex locks of §5.6.
//
// Blocks are addressed with 64-bit DPtrs (16-bit rank, 48-bit block index).
// Block index 0 of every rank is reserved so that DPtr 0 remains NULL.
//
// AcquireBlock and ReleaseBlock follow the paper's protocol: get the list
// head, get the next-free link, CAS the head forward. The head word packs a
// 32-bit ABA tag with the 32-bit block index (the "established tagged
// pointer technique" the paper cites), so a concurrent release/acquire pair
// cannot resurrect a stale head.
//
// When Config.CacheBlocks is set, every rank additionally keeps a
// version-validated cache of remote block copies (see cache.go): the
// stamped read protocol — GuardStamps, ReadBlocksStamped, InstallCached,
// or the one-call ReadBlocksCached wrapper — revalidates cached holders
// against the version counters embedded in the per-block lock words and
// skips the GET traffic entirely on a hit.
package block

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/gdi-go/gdi/internal/fabric"
)

// ErrNoFreeBlocks is returned when the target rank's pool is exhausted.
var ErrNoFreeBlocks = errors.New("block: target rank has no free blocks")

// Store is the distributed block pool. All ranks share one Store; every
// method is safe for concurrent use from any rank.
type Store struct {
	f         fabric.Transport
	blockSize int
	perRank   int

	data  fabric.ByteWin // block payloads
	usage fabric.WordWin // free-list links
	sys   fabric.WordWin // word 0: tagged free-list head; words 1+i: lock words

	caches []*blockCache // per-rank version-validated block caches; nil when disabled

	retirer atomic.Pointer[Retirer] // pre-write hook of the snapshot layer; nil when disabled
}

// Retirer receives a notification for every block whose payload is about to
// be overwritten, before the first byte of the new value lands. The HTAP
// snapshot layer uses it to retire the old bytes into its version arena for
// any pinned cut still naming them.
type Retirer interface {
	BeforeWrite(dp fabric.DPtr)
}

// SetRetirer installs (or, with nil, removes) the store's pre-write hook.
func (s *Store) SetRetirer(r Retirer) {
	if r == nil {
		s.retirer.Store(nil)
		return
	}
	s.retirer.Store(&r)
}

// beforeWrite runs the retirement hook for dp, if installed.
func (s *Store) beforeWrite(dp fabric.DPtr) {
	if r := s.retirer.Load(); r != nil {
		(*r).BeforeWrite(dp)
	}
}

// Config sizes the pool.
type Config struct {
	// BlockSize is the payload size of each block in bytes. The paper leaves
	// it user-tunable (communication vs. fragmentation); it must be a
	// positive multiple of 8.
	BlockSize int
	// BlocksPerRank is the pool capacity of each rank, including the
	// reserved block 0. Must be at least 2 and at most 2^32-1 so that a
	// block index fits the 32-bit half of the tagged head word.
	BlocksPerRank int
	// CacheBlocks, when positive, gives every rank a version-validated
	// cache of that many remote block copies, served by the stamped read
	// protocol (ReadBlocksStamped and the ReadBlocksCached wrapper) and
	// revalidated against the guard lock words' version stamps.
	CacheBlocks int
}

// DefaultBlockSize matches the paper's example block granularity.
const DefaultBlockSize = 512

// NewStore collectively creates the block pool over fabric f.
func NewStore(f fabric.Transport, cfg Config) *Store {
	if cfg.BlockSize <= 0 || cfg.BlockSize%8 != 0 {
		panic(fmt.Sprintf("block: block size %d must be a positive multiple of 8", cfg.BlockSize))
	}
	if cfg.BlocksPerRank < 2 || uint64(cfg.BlocksPerRank) >= 1<<32 {
		panic(fmt.Sprintf("block: blocks per rank %d out of range [2, 2^32)", cfg.BlocksPerRank))
	}
	s := &Store{
		f:         f,
		blockSize: cfg.BlockSize,
		perRank:   cfg.BlocksPerRank,
		data:      f.NewByteWin(cfg.BlockSize * cfg.BlocksPerRank),
		usage:     f.NewWordWin(cfg.BlocksPerRank),
		sys:       f.NewWordWin(1 + cfg.BlocksPerRank),
	}
	if cfg.CacheBlocks > 0 {
		s.caches = make([]*blockCache, f.Size())
		for r := range s.caches {
			s.caches[r] = newBlockCache(cfg.CacheBlocks)
		}
	}
	// Thread the free list through blocks 1..perRank-1 of every rank. This
	// is initialization-time setup, performed locally by construction: each
	// process initializes exactly the ranks whose segments it hosts (every
	// rank on the simulator, only its own on a wire transport — the SPMD
	// peers initialize theirs).
	for r := 0; r < f.Size(); r++ {
		rank := fabric.Rank(r)
		if !f.Local(rank) {
			continue
		}
		for i := 1; i < cfg.BlocksPerRank-1; i++ {
			s.usage.Store(rank, rank, i, uint64(i+1))
		}
		s.usage.Store(rank, rank, cfg.BlocksPerRank-1, 0)
		s.sys.Store(rank, rank, 0, packHead(0, 1))
	}
	return s
}

// BlockSize returns the payload size of one block.
func (s *Store) BlockSize() int { return s.blockSize }

// BlocksPerRank returns each rank's pool capacity (including reserved
// block 0).
func (s *Store) BlocksPerRank() int { return s.perRank }

// Fabric returns the underlying fabric.
func (s *Store) Fabric() fabric.Transport { return s.f }

// packHead combines a 32-bit ABA tag with a 32-bit free-block index.
// Index 0 means the list is empty.
func packHead(tag uint32, idx uint32) uint64 { return uint64(tag)<<32 | uint64(idx) }

func unpackHead(h uint64) (tag uint32, idx uint32) { return uint32(h >> 32), uint32(h) }

// AcquireBlock allocates one block on target and returns its DPtr. It is
// fully one-sided: two atomic gets plus one CAS on the fast path (the
// paper's three-step protocol). O(1) work and depth per attempt.
func (s *Store) AcquireBlock(origin, target fabric.Rank) (fabric.DPtr, error) {
	for {
		head := s.sys.Load(origin, target, 0)
		tag, idx := unpackHead(head)
		if idx == 0 {
			return fabric.NullDPtr, ErrNoFreeBlocks
		}
		next := s.usage.Load(origin, target, int(idx))
		if _, ok := s.sys.CAS(origin, target, 0, head, packHead(tag+1, uint32(next))); ok {
			return fabric.MakeDPtr(target, uint64(idx)), nil
		}
		// Another origin raced us on this rank's list; retry from the new head.
	}
}

// ReleaseBlock returns dp to its owner's free list. One atomic get, one
// atomic put, one CAS per attempt.
func (s *Store) ReleaseBlock(origin fabric.Rank, dp fabric.DPtr) {
	s.checkDPtr(dp)
	s.invalidateCached(origin, dp)
	target := dp.Rank()
	idx := uint32(dp.Off())
	for {
		head := s.sys.Load(origin, target, 0)
		tag, old := unpackHead(head)
		s.usage.Store(origin, target, int(idx), uint64(old))
		if _, ok := s.sys.CAS(origin, target, 0, head, packHead(tag+1, idx)); ok {
			return
		}
	}
}

// FreeBlocks counts the free blocks on target by walking its free list.
// It is a debugging/accounting helper, not part of the hot path.
func (s *Store) FreeBlocks(origin, target fabric.Rank) int {
	_, idx := unpackHead(s.sys.Load(origin, target, 0))
	n := 0
	for idx != 0 {
		n++
		idx = uint32(s.usage.Load(origin, target, int(idx)))
	}
	return n
}

// WriteBlock stores payload into block dp. The payload must not exceed the
// block size; shorter payloads leave the tail of the block unchanged.
func (s *Store) WriteBlock(origin fabric.Rank, dp fabric.DPtr, payload []byte) {
	s.checkDPtr(dp)
	if len(payload) > s.blockSize {
		panic(fmt.Sprintf("block: payload of %d bytes exceeds block size %d", len(payload), s.blockSize))
	}
	s.invalidateCached(origin, dp)
	s.beforeWrite(dp)
	s.data.Put(origin, dp.Rank(), int(dp.Off())*s.blockSize, payload)
}

// ReadBlock fetches len(buf) bytes of block dp into buf.
func (s *Store) ReadBlock(origin fabric.Rank, dp fabric.DPtr, buf []byte) {
	s.checkDPtr(dp)
	if len(buf) > s.blockSize {
		panic(fmt.Sprintf("block: read of %d bytes exceeds block size %d", len(buf), s.blockSize))
	}
	s.data.Get(origin, dp.Rank(), int(dp.Off())*s.blockSize, buf)
}

// ReadBlocksBatch fetches block dps[i] into bufs[i] for every i, issuing one
// vectored GET train per distinct target rank instead of one blocking GET
// per block. With injected latency this pays one remote round-trip per
// target touched rather than one per block — the batching that hides the
// frontier-expansion latency of §5.6. The two slices must be equal length.
func (s *Store) ReadBlocksBatch(origin fabric.Rank, dps []fabric.DPtr, bufs [][]byte) {
	if len(dps) != len(bufs) {
		panic(fmt.Sprintf("block: batch of %d DPtrs with %d buffers", len(dps), len(bufs)))
	}
	if len(dps) == 0 {
		return
	}
	if len(dps) == 1 {
		s.ReadBlock(origin, dps[0], bufs[0])
		return
	}
	byTarget := make(map[fabric.Rank][]fabric.GetOp)
	for i, dp := range dps {
		s.checkDPtr(dp)
		if len(bufs[i]) > s.blockSize {
			panic(fmt.Sprintf("block: read of %d bytes exceeds block size %d", len(bufs[i]), s.blockSize))
		}
		t := dp.Rank()
		byTarget[t] = append(byTarget[t], fabric.GetOp{Off: int(dp.Off()) * s.blockSize, Buf: bufs[i]})
	}
	for t, ops := range byTarget {
		s.data.GetBatch(origin, t, ops)
	}
}

// WriteBlocksBatch stores payloads[i] into block dps[i] for every i, issuing
// one vectored PUT train per distinct target rank instead of one blocking
// PUT per block — the write-back counterpart of ReadBlocksBatch. With
// injected latency a commit's write-back pays one remote round-trip per
// owner rank touched rather than one per dirty block (§5.6). The two slices
// must be equal length; dps must not repeat within one batch (a holder block
// is written by at most one committer, which the per-vertex locks guarantee).
func (s *Store) WriteBlocksBatch(origin fabric.Rank, dps []fabric.DPtr, payloads [][]byte) {
	if len(dps) != len(payloads) {
		panic(fmt.Sprintf("block: batch of %d DPtrs with %d payloads", len(dps), len(payloads)))
	}
	if len(dps) == 0 {
		return
	}
	if len(dps) == 1 {
		s.WriteBlock(origin, dps[0], payloads[0])
		return
	}
	byTarget := make(map[fabric.Rank][]fabric.PutOp)
	for i, dp := range dps {
		s.checkDPtr(dp)
		if len(payloads[i]) > s.blockSize {
			panic(fmt.Sprintf("block: payload of %d bytes exceeds block size %d", len(payloads[i]), s.blockSize))
		}
		s.invalidateCached(origin, dp)
		s.beforeWrite(dp)
		t := dp.Rank()
		byTarget[t] = append(byTarget[t], fabric.PutOp{Off: int(dp.Off()) * s.blockSize, Data: payloads[i]})
	}
	for t, ops := range byTarget {
		s.data.PutBatch(origin, t, ops)
	}
}

// LockWord returns the system window and word index of dp's lock word, for
// use by the locks package. Each block has one 64-bit RW-lock word; the
// transaction layer uses the primary block's word as the per-vertex lock.
func (s *Store) LockWord(dp fabric.DPtr) (fabric.WordWin, fabric.Rank, int) {
	s.checkDPtr(dp)
	return s.sys, dp.Rank(), 1 + int(dp.Off())
}

func (s *Store) checkDPtr(dp fabric.DPtr) {
	if dp.IsNull() {
		panic("block: NULL DPtr")
	}
	if off := dp.Off(); off == 0 || off >= uint64(s.perRank) {
		panic(fmt.Sprintf("block: DPtr offset %d outside pool [1, %d)", off, s.perRank))
	}
}
