// Package metadata implements GDA's replicated graph-metadata structures
// (§5.8 of the paper): labels and property types.
//
// Metadata is replicated on every process because |L| and |K| are tiny
// compared to the graph ("Replicating metadata simplifies the design without
// significantly increasing the needed storage"). Each replica keeps, exactly
// as Figure 3 shows, hash maps from names and from integer IDs to the label
// and p-type structures, plus doubly-linked lists so that creation order is
// preserved and add/remove is O(1) given a handle.
//
// Creation, update, and deletion of metadata are collective GDI calls; the
// core engine drives the collective part and applies the same mutation to
// every replica in the same order, which keeps the deterministic integer-ID
// assignment identical everywhere. Every mutation bumps a version stamp;
// constraints and indexes capture the stamp and can later detect staleness
// (the eventual-consistency contract of §3.8).
package metadata

import (
	"container/list"
	"fmt"
	"sync"

	"github.com/gdi-go/gdi/internal/lpg"
)

// Label is the replicated label structure: name, integer ID, database
// reference (implicit: the registry belongs to one database).
type Label struct {
	Name string
	ID   lpg.LabelID

	elem *list.Element
}

// PType is the replicated property-type structure (Figure 3): name, integer
// ID, datatype, entity type, size type with limit, and multiplicity.
type PType struct {
	Name     string
	ID       lpg.PTypeID
	Datatype lpg.Datatype
	Entity   lpg.EntityType
	SizeType lpg.SizeType
	// Limit is the byte bound for SizeMax / the exact size for SizeFixed.
	Limit int
	Mult  lpg.Multiplicity

	elem *list.Element
}

// Registry is one process's metadata replica. It is safe for concurrent
// readers and writers (the owning process may serve OLTP queries while a
// collective metadata update applies).
type Registry struct {
	mu           sync.RWMutex
	labelsByName map[string]*Label
	labelsByID   map[lpg.LabelID]*Label
	labelList    *list.List
	ptypesByName map[string]*PType
	ptypesByID   map[lpg.PTypeID]*PType
	ptypeList    *list.List
	nextLabelID  uint32
	nextPTypeID  uint32
	version      uint64
}

// NewRegistry creates an empty replica with the predefined p-types of
// Figure 3 (DEGREE and ID) pre-registered.
func NewRegistry() *Registry {
	r := &Registry{
		labelsByName: make(map[string]*Label),
		labelsByID:   make(map[lpg.LabelID]*Label),
		labelList:    list.New(),
		ptypesByName: make(map[string]*PType),
		ptypesByID:   make(map[lpg.PTypeID]*PType),
		ptypeList:    list.New(),
		nextLabelID:  lpg.FirstDynamicID,
		nextPTypeID:  lpg.FirstDynamicID,
	}
	r.registerPType(&PType{
		Name: "__degree", ID: lpg.PTypeDegree,
		Datatype: lpg.TypeUint64, Entity: lpg.EntityVertex,
		SizeType: lpg.SizeFixed, Limit: 8, Mult: lpg.MultiSingle,
	})
	r.registerPType(&PType{
		Name: "__app_id", ID: lpg.PTypeAppID,
		Datatype: lpg.TypeUint64, Entity: lpg.EntityVertex,
		SizeType: lpg.SizeFixed, Limit: 8, Mult: lpg.MultiSingle,
	})
	return r
}

func (r *Registry) registerPType(pt *PType) {
	pt.elem = r.ptypeList.PushBack(pt)
	r.ptypesByName[pt.Name] = pt
	r.ptypesByID[pt.ID] = pt
}

// Version returns the replica's mutation stamp. Constraints and indexes
// capture it to implement staleness checks.
func (r *Registry) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// AddLabel registers a new label and assigns the next integer ID.
func (r *Registry) AddLabel(name string) (*Label, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.labelsByName[name]; dup {
		return nil, fmt.Errorf("metadata: label %q already exists", name)
	}
	l := &Label{Name: name, ID: lpg.LabelID(r.nextLabelID)}
	r.nextLabelID++
	l.elem = r.labelList.PushBack(l)
	r.labelsByName[name] = l
	r.labelsByID[l.ID] = l
	r.version++
	return l, nil
}

// LabelByName resolves a label handle from its name (GDI_GetLabelFromName).
func (r *Registry) LabelByName(name string) (*Label, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	l, ok := r.labelsByName[name]
	return l, ok
}

// LabelByID resolves a label handle from its integer ID.
func (r *Registry) LabelByID(id lpg.LabelID) (*Label, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	l, ok := r.labelsByID[id]
	return l, ok
}

// Labels returns all labels in creation order (GDI_GetAllLabelsOfDatabase).
func (r *Registry) Labels() []*Label {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Label, 0, r.labelList.Len())
	for e := r.labelList.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*Label))
	}
	return out
}

// RenameLabel updates a label's name (GDI_UpdateLabel).
func (r *Registry) RenameLabel(old, new string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.labelsByName[old]
	if !ok {
		return fmt.Errorf("metadata: label %q does not exist", old)
	}
	if _, dup := r.labelsByName[new]; dup {
		return fmt.Errorf("metadata: label %q already exists", new)
	}
	delete(r.labelsByName, old)
	l.Name = new
	r.labelsByName[new] = l
	r.version++
	return nil
}

// RemoveLabel deletes a label. Graph data referring to the label keeps its
// integer ID; under eventual consistency transactions detect the dangling ID
// through the version stamp and abort (§3.8).
func (r *Registry) RemoveLabel(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.labelsByName[name]
	if !ok {
		return fmt.Errorf("metadata: label %q does not exist", name)
	}
	delete(r.labelsByName, name)
	delete(r.labelsByID, l.ID)
	r.labelList.Remove(l.elem)
	r.version++
	return nil
}

// PTypeSpec carries the optional performance hints of §3.7 for a new
// property type.
type PTypeSpec struct {
	Datatype lpg.Datatype
	Entity   lpg.EntityType
	SizeType lpg.SizeType
	Limit    int
	Mult     lpg.Multiplicity
}

// AddPType registers a new property type.
func (r *Registry) AddPType(name string, spec PTypeSpec) (*PType, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ptypesByName[name]; dup {
		return nil, fmt.Errorf("metadata: property type %q already exists", name)
	}
	if spec.SizeType == lpg.SizeFixed && spec.Limit <= 0 {
		return nil, fmt.Errorf("metadata: fixed-size property type %q needs a positive size", name)
	}
	pt := &PType{
		Name: name, ID: lpg.PTypeID(r.nextPTypeID),
		Datatype: spec.Datatype, Entity: spec.Entity,
		SizeType: spec.SizeType, Limit: spec.Limit, Mult: spec.Mult,
	}
	r.nextPTypeID++
	r.registerPType(pt)
	r.version++
	return pt, nil
}

// PTypeByName resolves a property type from its name.
func (r *Registry) PTypeByName(name string) (*PType, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pt, ok := r.ptypesByName[name]
	return pt, ok
}

// PTypeByID resolves a property type from its integer ID.
func (r *Registry) PTypeByID(id lpg.PTypeID) (*PType, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pt, ok := r.ptypesByID[id]
	return pt, ok
}

// PTypes returns all property types in creation order, including the
// predefined ones.
func (r *Registry) PTypes() []*PType {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*PType, 0, r.ptypeList.Len())
	for e := r.ptypeList.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*PType))
	}
	return out
}

// RemovePType deletes a property type.
func (r *Registry) RemovePType(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	pt, ok := r.ptypesByName[name]
	if !ok {
		return fmt.Errorf("metadata: property type %q does not exist", name)
	}
	if pt.ID == lpg.PTypeDegree || pt.ID == lpg.PTypeAppID {
		return fmt.Errorf("metadata: property type %q is predefined", name)
	}
	delete(r.ptypesByName, name)
	delete(r.ptypesByID, pt.ID)
	r.ptypeList.Remove(pt.elem)
	r.version++
	return nil
}

// ValidateValue checks a value against a property type's declared datatype
// and size discipline, returning a descriptive error on mismatch.
func ValidateValue(pt *PType, value []byte) error {
	switch pt.SizeType {
	case lpg.SizeFixed:
		if len(value) != pt.Limit {
			return fmt.Errorf("metadata: %q requires exactly %d bytes, got %d", pt.Name, pt.Limit, len(value))
		}
	case lpg.SizeMax:
		if len(value) > pt.Limit {
			return fmt.Errorf("metadata: %q allows at most %d bytes, got %d", pt.Name, pt.Limit, len(value))
		}
	}
	switch pt.Datatype {
	case lpg.TypeUint64, lpg.TypeInt64, lpg.TypeFloat64, lpg.TypeDate:
		if len(value) != 8 {
			return fmt.Errorf("metadata: %q holds a %s and needs 8 bytes, got %d", pt.Name, pt.Datatype, len(value))
		}
	case lpg.TypeBool:
		if len(value) != 1 {
			return fmt.Errorf("metadata: %q holds a bool and needs 1 byte, got %d", pt.Name, len(value))
		}
	case lpg.TypeFloat64Vector:
		if len(value)%8 != 0 {
			return fmt.Errorf("metadata: %q holds a float64 vector and needs a multiple of 8 bytes, got %d", pt.Name, len(value))
		}
	}
	return nil
}
