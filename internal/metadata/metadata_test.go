package metadata

import (
	"testing"

	"github.com/gdi-go/gdi/internal/lpg"
)

func TestAddLabelAssignsSequentialIDs(t *testing.T) {
	r := NewRegistry()
	a, err := r.AddLabel("Person")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := r.AddLabel("Car")
	if a.ID != lpg.LabelID(lpg.FirstDynamicID) || b.ID != a.ID+1 {
		t.Fatalf("IDs = %d, %d", a.ID, b.ID)
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	r := NewRegistry()
	r.AddLabel("Person")
	if _, err := r.AddLabel("Person"); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestLabelLookups(t *testing.T) {
	r := NewRegistry()
	l, _ := r.AddLabel("Person")
	if got, ok := r.LabelByName("Person"); !ok || got != l {
		t.Fatal("LabelByName failed")
	}
	if got, ok := r.LabelByID(l.ID); !ok || got != l {
		t.Fatal("LabelByID failed")
	}
	if _, ok := r.LabelByName("Ghost"); ok {
		t.Fatal("LabelByName found a ghost")
	}
}

func TestLabelsPreserveCreationOrder(t *testing.T) {
	r := NewRegistry()
	names := []string{"A", "B", "C", "D"}
	for _, n := range names {
		r.AddLabel(n)
	}
	r.RemoveLabel("B")
	got := r.Labels()
	want := []string{"A", "C", "D"}
	if len(got) != len(want) {
		t.Fatalf("Labels() has %d entries, want %d", len(got), len(want))
	}
	for i, l := range got {
		if l.Name != want[i] {
			t.Fatalf("Labels()[%d] = %q, want %q", i, l.Name, want[i])
		}
	}
}

func TestRenameLabel(t *testing.T) {
	r := NewRegistry()
	l, _ := r.AddLabel("Person")
	if err := r.RenameLabel("Person", "Human"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.LabelByName("Person"); ok {
		t.Fatal("old name still resolves")
	}
	if got, ok := r.LabelByName("Human"); !ok || got.ID != l.ID {
		t.Fatal("new name does not resolve to same ID")
	}
	r.AddLabel("Car")
	if err := r.RenameLabel("Human", "Car"); err == nil {
		t.Fatal("rename onto existing name accepted")
	}
	if err := r.RenameLabel("Ghost", "X"); err == nil {
		t.Fatal("rename of missing label accepted")
	}
}

func TestVersionBumpsOnEveryMutation(t *testing.T) {
	r := NewRegistry()
	v0 := r.Version()
	r.AddLabel("A")
	v1 := r.Version()
	r.RenameLabel("A", "B")
	v2 := r.Version()
	r.RemoveLabel("B")
	v3 := r.Version()
	r.AddPType("p", PTypeSpec{Datatype: lpg.TypeUint64, SizeType: lpg.SizeFixed, Limit: 8})
	v4 := r.Version()
	if !(v0 < v1 && v1 < v2 && v2 < v3 && v3 < v4) {
		t.Fatalf("versions did not strictly increase: %d %d %d %d %d", v0, v1, v2, v3, v4)
	}
}

func TestPredefinedPTypesPresent(t *testing.T) {
	r := NewRegistry()
	deg, ok := r.PTypeByID(lpg.PTypeDegree)
	if !ok || deg.Datatype != lpg.TypeUint64 || deg.SizeType != lpg.SizeFixed {
		t.Fatalf("degree ptype = %+v, ok=%v", deg, ok)
	}
	if _, ok := r.PTypeByID(lpg.PTypeAppID); !ok {
		t.Fatal("app-id ptype missing")
	}
	if err := r.RemovePType("__degree"); err == nil {
		t.Fatal("predefined ptype removable")
	}
}

func TestAddPTypeValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.AddPType("bad", PTypeSpec{SizeType: lpg.SizeFixed, Limit: 0}); err == nil {
		t.Fatal("fixed-size ptype without size accepted")
	}
	pt, err := r.AddPType("age", PTypeSpec{Datatype: lpg.TypeUint64, SizeType: lpg.SizeFixed, Limit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddPType("age", PTypeSpec{}); err == nil {
		t.Fatal("duplicate ptype accepted")
	}
	if got, ok := r.PTypeByName("age"); !ok || got != pt {
		t.Fatal("PTypeByName failed")
	}
	if err := r.RemovePType("age"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.PTypeByName("age"); ok {
		t.Fatal("removed ptype still resolves")
	}
	if err := r.RemovePType("age"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestPTypesIncludePredefined(t *testing.T) {
	r := NewRegistry()
	r.AddPType("x", PTypeSpec{Datatype: lpg.TypeString})
	pts := r.PTypes()
	if len(pts) != 3 { // __degree, __app_id, x
		t.Fatalf("PTypes() = %d entries, want 3", len(pts))
	}
	if pts[2].Name != "x" {
		t.Fatalf("last ptype = %q, want x", pts[2].Name)
	}
}

func TestValidateValue(t *testing.T) {
	fixed := &PType{Name: "f", Datatype: lpg.TypeUint64, SizeType: lpg.SizeFixed, Limit: 8}
	if err := ValidateValue(fixed, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateValue(fixed, make([]byte, 4)); err == nil {
		t.Fatal("short fixed value accepted")
	}
	capped := &PType{Name: "c", Datatype: lpg.TypeString, SizeType: lpg.SizeMax, Limit: 4}
	if err := ValidateValue(capped, []byte("abcde")); err == nil {
		t.Fatal("oversized capped value accepted")
	}
	if err := ValidateValue(capped, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	boolPt := &PType{Name: "b", Datatype: lpg.TypeBool}
	if err := ValidateValue(boolPt, []byte{1, 2}); err == nil {
		t.Fatal("2-byte bool accepted")
	}
	vec := &PType{Name: "v", Datatype: lpg.TypeFloat64Vector}
	if err := ValidateValue(vec, make([]byte, 24)); err != nil {
		t.Fatal(err)
	}
	if err := ValidateValue(vec, make([]byte, 25)); err == nil {
		t.Fatal("ragged vector accepted")
	}
}

func TestReplicaDeterminism(t *testing.T) {
	// Two replicas applying the same mutation sequence must assign identical
	// IDs — the property the collective metadata path relies on.
	a, b := NewRegistry(), NewRegistry()
	ops := func(r *Registry) {
		r.AddLabel("L1")
		r.AddLabel("L2")
		r.RemoveLabel("L1")
		r.AddLabel("L3")
		r.AddPType("p1", PTypeSpec{Datatype: lpg.TypeUint64})
		r.AddPType("p2", PTypeSpec{Datatype: lpg.TypeString})
	}
	ops(a)
	ops(b)
	la, _ := a.LabelByName("L3")
	lb, _ := b.LabelByName("L3")
	if la.ID != lb.ID {
		t.Fatalf("replica divergence: L3 IDs %d vs %d", la.ID, lb.ID)
	}
	pa, _ := a.PTypeByName("p2")
	pb, _ := b.PTypeByName("p2")
	if pa.ID != pb.ID {
		t.Fatalf("replica divergence: p2 IDs %d vs %d", pa.ID, pb.ID)
	}
	if a.Version() != b.Version() {
		t.Fatalf("replica versions diverge: %d vs %d", a.Version(), b.Version())
	}
}
