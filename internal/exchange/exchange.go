// Package exchange provides the one-sided alltoallv primitive of the dense
// analytics engine: personalized byte payloads routed between ranks through
// per-rank RMA inboxes instead of the collective layer's channel mail, so
// iteration traffic (frontier segments, rank-mass and label messages) is
// visible in the fabric's one-sided counters and pays the injected latency
// model — exactly one PUT train per destination rank and round, however many
// messages the payload carries (the §5.6 message-aggregation design choice).
//
// Self-rank payloads never touch the fabric: the local bucket is handed
// straight from the out slot to the in slot, issuing zero window operations
// and zero PUT trains.
package exchange

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/fabric"
)

// Exchange is a collective alltoallv context over all ranks of a fabric.
// Rounds on one Exchange must be issued in the same order by every rank and
// must not be interleaved with other collective sequences on the same
// communicator — the MPI communicator contract, shared with collective.Comm.
type Exchange struct {
	comm   *collective.Comm
	ib     fabric.Inbox
	n      int
	budget int // max payload bytes per destination and sub-round
}

// New collectively creates an exchange with segBytes of inbox space per
// rank. Each sender owns a static segBytes/P slot per destination and
// sub-round, so the P-1 concurrent senders can never overflow a segment;
// payloads larger than the slot budget are streamed transparently over
// several sub-rounds.
func New(f fabric.Transport, c *collective.Comm, segBytes int) *Exchange {
	n := f.Size()
	ib := f.NewInbox(segBytes)
	if ib.Budget() < 16 {
		panic(fmt.Sprintf("exchange: %d-byte segment leaves a %d-byte per-destination budget on %d ranks", segBytes, ib.Budget(), n))
	}
	return &Exchange{comm: c, ib: ib, n: n, budget: ib.Budget()}
}

// Size returns the number of participating ranks.
func (x *Exchange) Size() int { return x.n }

// Round performs one personalized all-to-all: out[d] is delivered to rank d,
// and the returned slice holds in[s], the bytes rank s sent to the caller
// (nil when s sent nothing). Collective: every rank must call it, with
// len(out) equal to the rank count. The self slot is short-circuited —
// in[me] aliases out[me] and issues no window traffic — so callers must
// treat out as frozen until they are done with in.
//
// Remote slots are streamed in sub-rounds of at most budget bytes per
// destination: one PUT train into the destination's inbox slot, a barrier
// closing the epoch, a local drain, and a barrier reopening the next epoch.
// Payload bytes arrive concatenated in sub-round order, so arbitrarily large
// slots reassemble exactly.
func (x *Exchange) Round(me fabric.Rank, out [][]byte) [][]byte {
	if len(out) != x.n {
		panic(fmt.Sprintf("exchange: Round with %d slots on a %d-rank exchange", len(out), x.n))
	}
	in := make([][]byte, x.n)
	in[me] = out[me]
	if x.n == 1 {
		return in
	}
	sent := make([]int, x.n)
	for {
		more := false
		for d := 0; d < x.n; d++ {
			if fabric.Rank(d) == me {
				continue
			}
			rem := len(out[d]) - sent[d]
			if rem == 0 {
				continue
			}
			chunk := rem
			if chunk > x.budget {
				chunk = x.budget
			}
			x.ib.Deliver(me, fabric.Rank(d), out[d][sent[d]:sent[d]+chunk])
			sent[d] += chunk
			if rem > chunk {
				more = true
			}
		}
		x.comm.Barrier(me)
		x.ib.Drain(me, func(src fabric.Rank, payload []byte) {
			if in[src] == nil {
				in[src] = payload // Drain hands over a fresh buffer
			} else {
				in[src] = append(in[src], payload...)
			}
		})
		// OrReduce both closes the drain epoch (it synchronizes like Barrier)
		// and agrees on whether any rank still streams a leftover chunk.
		if !collective.OrReduce(x.comm, me, more) {
			return in
		}
	}
}
