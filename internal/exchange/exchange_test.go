package exchange

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/rma"
)

func newX(n, segBytes int) (*rma.Fabric, *Exchange) {
	f := rma.New(n)
	return f, New(f, collective.New(f), segBytes)
}

// TestRoundRoutesPayloads checks that every (src, dst) slot arrives intact
// and attributed to the right source.
func TestRoundRoutesPayloads(t *testing.T) {
	const n = 4
	f, x := newX(n, 1<<16)
	payload := func(s, d int) []byte {
		return []byte(fmt.Sprintf("from %d to %d", s, d))
	}
	f.Run(func(me rma.Rank) {
		out := make([][]byte, n)
		for d := 0; d < n; d++ {
			out[d] = payload(int(me), d)
		}
		in := x.Round(me, out)
		for s := 0; s < n; s++ {
			if want := payload(s, int(me)); !bytes.Equal(in[s], want) {
				t.Errorf("rank %d: in[%d] = %q, want %q", me, s, in[s], want)
			}
		}
	})
}

// TestSelfDeliveryBypassesFabric proves the satellite contract: rank-local
// traffic is handed over directly and issues zero PUT trains — in fact zero
// window puts of any kind.
func TestSelfDeliveryBypassesFabric(t *testing.T) {
	for _, n := range []int{1, 4} {
		f, x := newX(n, 1<<12)
		f.ResetCounters()
		f.Run(func(me rma.Rank) {
			out := make([][]byte, n)
			out[me] = []byte("strictly local")
			in := x.Round(me, out)
			if !bytes.Equal(in[me], out[me]) {
				t.Errorf("rank %d: self slot not delivered", me)
			}
		})
		s := f.TotalSnapshot()
		if s.RemotePuts != 0 || s.LocalPuts != 0 || s.PutBatches != 0 || s.BytesPut != 0 {
			t.Fatalf("n=%d: self-only round issued puts: %+v", n, s)
		}
		if s.RemoteAtoms != 0 {
			t.Fatalf("n=%d: self-only round issued remote atomics: %+v", n, s)
		}
	}
}

// TestRemoteDeliveryCountsTrains checks the accounting contract of the
// one-sided path: exactly one PUT train per (src, dst) pair and round — the
// latency model charges each pair once — with the payload bytes visible in
// the counters and no atomics at all.
func TestRemoteDeliveryCountsTrains(t *testing.T) {
	const n = 4
	f, x := newX(n, 1<<16)
	f.ResetCounters()
	const payloadLen = 100
	f.Run(func(me rma.Rank) {
		out := make([][]byte, n)
		for d := 0; d < n; d++ {
			if rma.Rank(d) != me {
				out[d] = bytes.Repeat([]byte{byte(me)}, payloadLen)
			}
		}
		x.Round(me, out)
	})
	s := f.TotalSnapshot()
	pairs := int64(n * (n - 1))
	if s.PutBatches != pairs {
		t.Fatalf("PutBatches = %d, want %d (one train per remote pair)", s.PutBatches, pairs)
	}
	if s.RemoteAtoms != 0 {
		t.Fatalf("RemoteAtoms = %d, want 0 (static slots need no reservation)", s.RemoteAtoms)
	}
	// Each delivery carries a 4-byte header plus the payload; each drain
	// clears the consumed header with a 4-byte local put.
	if want := pairs * (payloadLen + 4 + 4); s.BytesPut != want {
		t.Fatalf("BytesPut = %d, want %d", s.BytesPut, want)
	}
}

// TestChunkedRound streams a slot far larger than the per-destination budget
// and checks byte-exact reassembly across sub-rounds.
func TestChunkedRound(t *testing.T) {
	const n = 2
	f, x := newX(n, 256) // budget = 256/2 - 4 = 124 bytes per destination
	big := make([]byte, 5000)
	for i := range big {
		big[i] = byte(i * 31)
	}
	f.Run(func(me rma.Rank) {
		out := make([][]byte, n)
		other := 1 - me
		out[other] = big
		in := x.Round(me, out)
		if !bytes.Equal(in[other], big) {
			t.Errorf("rank %d: chunked payload corrupted (%d bytes, want %d)", me, len(in[other]), len(big))
		}
	})
	if s := f.TotalSnapshot(); s.PutBatches < 2*41 { // ceil(5000/124) sub-rounds each way
		t.Fatalf("PutBatches = %d, expected one train per sub-round and pair", s.PutBatches)
	}
}

// TestRoundEmptySlots: ranks with nothing to say still participate in the
// collective and receive nil slots.
func TestRoundEmptySlots(t *testing.T) {
	const n = 3
	f, x := newX(n, 1<<12)
	f.Run(func(me rma.Rank) {
		in := x.Round(me, make([][]byte, n))
		for s := 0; s < n; s++ {
			if len(in[s]) != 0 {
				t.Errorf("rank %d: unexpected payload from %d", me, s)
			}
		}
	})
}
