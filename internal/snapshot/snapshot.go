// Package snapshot implements the HTAP snapshot subsystem: MVCC-lite
// copy-on-write block versions keyed off the 31-bit version counters embedded
// in the per-block lock words (package locks), so analytics can read a
// transaction-consistent cut of the store while OLTP commit trains keep
// landing.
//
// The design is deliberately "MVCC-lite": the live store keeps exactly one
// copy of every block, and old bytes are materialized lazily. A collective
// AcquireCut (driven by the core engine under its commit gate) pins a cut by
// stamping every lock word of every shard with one guard-stamp train per rank
// — the same vectored atomic-load train the PR 3 block cache revalidates
// with, issued owner-locally and therefore latency-free. Afterwards, any
// writer about to overwrite a block whose stamped version is still live first
// retires the old bytes into the owner rank's version arena (Manager.Retire,
// invoked from the block store's pre-write hook and from the lock layer's
// write-unlock hook). Cut readers check the arena first and fall back to a
// validated live read; the retire-before-write ordering guarantees a reader
// that misses the arena observed bytes no writer had started replacing.
//
// Arena entries are reference-counted by the cuts whose stamp they preserve
// and freed when the last such cut is released, so a dropped analytics run
// returns the arena to zero bytes (see Manager.ArenaBytes).
//
// The package also owns the per-rank delta log (delta.go): commits append
// committed (vertex, edge-delta) records, cuts record their log position, and
// the incremental CSR fold in internal/analytics replays the window between
// two cuts instead of rebuilding from block reads.
package snapshot

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/gdi-go/gdi/internal/block"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/locks"
)

// DefaultCutRetries bounds the arena/live-read alternation of ReadBlock.
const DefaultCutRetries = 64

// VertexRef is one entry of a cut's per-rank vertex listing: the primary
// block and application ID of a vertex that existed when the cut was pinned.
// The core engine fills it from its local index under the commit gate.
type VertexRef struct {
	DP  fabric.DPtr
	App uint64
}

// arenaKey addresses one retired block version within a rank's arena.
type arenaKey struct {
	off uint64 // block offset within the rank
	ver uint64 // lock-word version the bytes belonged to
}

// arenaEntry is one retired block version, pinned by refs cuts.
type arenaEntry struct {
	data []byte
	refs int
}

// rankShard is the per-rank snapshot state: the version arena, the active
// cuts pinning this shard, and the committed delta log.
type rankShard struct {
	mu     sync.Mutex
	active []*Cut
	arena  map[arenaKey]*arenaEntry
	// pinned mirrors len(active) so the write-path hooks can skip all work
	// with one atomic load while no cut is open.
	pinned atomic.Int32

	// Committed delta records, encoded (delta.go). logBase is the absolute
	// position of recs[0]; positions only grow, records below every active
	// cut's position are trimmed on release.
	recs    [][]byte
	logBase int
}

// Manager tracks the active cuts, version arenas, and delta logs of all
// ranks. One Manager serves one engine; all methods are safe for concurrent
// use from any rank.
type Manager struct {
	store   *block.Store
	sys     fabric.WordWin
	nRanks  int
	perRank int
	bs      int
	retries int

	ranks []rankShard

	arenaBytes atomic.Int64
	retired    atomic.Int64
	cutsTotal  atomic.Int64
	folds      atomic.Int64
}

// NewManager creates the snapshot manager over the given block store.
// retries bounds ReadBlock's validation loop (<=0 uses DefaultCutRetries).
func NewManager(store *block.Store, retries int) *Manager {
	sys, _, _ := store.LockWord(fabric.MakeDPtr(0, 1))
	if retries <= 0 {
		retries = DefaultCutRetries
	}
	m := &Manager{
		store:   store,
		sys:     sys,
		nRanks:  store.Fabric().Size(),
		perRank: store.BlocksPerRank(),
		bs:      store.BlockSize(),
		retries: retries,
		ranks:   make([]rankShard, store.Fabric().Size()),
	}
	for r := range m.ranks {
		m.ranks[r].arena = make(map[arenaKey]*arenaEntry)
	}
	return m
}

// Cut is one pinned consistent cut across all shards. It is created on one
// rank, shared collectively, pinned per rank with PinRank, and released once
// (from any rank) with Release.
type Cut struct {
	m        *Manager
	stamps   [][]uint64    // [rank][off] pinned lock-word version
	verts    [][]VertexRef // [rank] vertex listing at pin time
	logPos   []int         // [rank] delta-log position at pin time
	retained [][]arenaKey  // [rank] arena entries this cut holds a ref on
	released atomic.Bool
}

// NewCut allocates an empty cut shell. The engine's collective AcquireCut
// creates it on one rank, broadcasts it, and then every rank pins its own
// shard with PinRank under the commit gate.
func (m *Manager) NewCut() *Cut {
	m.cutsTotal.Add(1)
	return &Cut{
		m:        m,
		stamps:   make([][]uint64, m.nRanks),
		verts:    make([][]VertexRef, m.nRanks),
		logPos:   make([]int, m.nRanks),
		retained: make([][]arenaKey, m.nRanks),
	}
}

// PinRank stamps rank me's whole shard into the cut: one guard-stamp train
// (a vectored atomic load of every lock word, owner-local and therefore
// latency-free) plus the shard's current delta-log position. It must run
// under the engine's exclusive commit gate, so no commit is between its
// first write-back PUT and its final lock release while any shard stamps —
// that exclusion is what makes the per-rank stamps one transaction-
// consistent cut. Write-held words are stamped at their pre-bump version:
// such a commit has not written a byte yet (its apply phase is gated) and
// will retire the stamped bytes before it does.
func (m *Manager) PinRank(c *Cut, me fabric.Rank) {
	idxs := make([]int, m.perRank-1)
	for i := range idxs {
		idxs[i] = 2 + i // lock word of block 1+i (word 1+off; block 0 is reserved)
	}
	words := m.sys.LoadBatch(me, me, idxs)
	stamps := make([]uint64, m.perRank)
	for i, w := range words {
		stamps[1+i] = locks.Version(w)
	}
	rs := &m.ranks[me]
	rs.mu.Lock()
	c.stamps[me] = stamps
	c.logPos[me] = rs.logBase + len(rs.recs)
	rs.active = append(rs.active, c)
	rs.pinned.Add(1)
	rs.mu.Unlock()
}

// SetVerts records the cut's vertex listing for rank me (filled by the
// engine from its local index, under the same gate as PinRank).
func (c *Cut) SetVerts(me fabric.Rank, refs []VertexRef) { c.verts[me] = refs }

// Verts returns the cut's vertex listing for rank r.
func (c *Cut) Verts(r fabric.Rank) []VertexRef { return c.verts[r] }

// LogPos returns rank r's delta-log position at pin time.
func (c *Cut) LogPos(r fabric.Rank) int { return c.logPos[r] }

// Released reports whether the cut has been released.
func (c *Cut) Released() bool { return c.released.Load() }

// Release unpins the cut on every rank and drops its references on retired
// block versions; entries reaching zero references are freed, so after the
// last cut's release the arena holds zero bytes again. Safe to call from any
// single goroutine and idempotent — an analytics run aborted mid-iteration
// releases exactly like a completed one.
func (c *Cut) Release() { c.m.release(c) }

func (m *Manager) release(c *Cut) {
	if c.released.Swap(true) {
		return
	}
	for r := range m.ranks {
		rs := &m.ranks[r]
		rs.mu.Lock()
		for i, a := range rs.active {
			if a == c {
				rs.active = append(rs.active[:i], rs.active[i+1:]...)
				rs.pinned.Add(-1)
				break
			}
		}
		for _, k := range c.retained[r] {
			e := rs.arena[k]
			if e == nil {
				continue
			}
			e.refs--
			if e.refs <= 0 {
				delete(rs.arena, k)
				m.arenaBytes.Add(-int64(len(e.data)))
			}
		}
		c.retained[r] = nil
		rs.trimLogLocked(fabric.Rank(r))
		rs.mu.Unlock()
	}
}

// BeforeWrite implements block.Retirer: the store calls it before
// overwriting dp's payload, giving the manager the chance to retire the old
// bytes for any cut still pinning them.
func (m *Manager) BeforeWrite(dp fabric.DPtr) { m.Retire(dp.Rank(), dp.Off()) }

// Retire preserves block (target, off)'s current bytes for every active cut
// whose stamp still names the block's current lock-word version, unless that
// version is already in the arena. It runs owner-side: the lock word and the
// payload are read with rank-local accesses, which the fabric charges no
// remote latency for — the model being that the owner's version maintenance
// never crosses the network. Callers (the block store's pre-write hook and
// the lock layer's write-unlock hook) invoke it before the first byte of the
// new value lands and before the version bump, which is the ordering cut
// readers rely on.
func (m *Manager) Retire(target fabric.Rank, off uint64) {
	rs := &m.ranks[target]
	if rs.pinned.Load() == 0 {
		return
	}
	ver := locks.Version(m.sys.Load(target, target, 1+int(off)))
	rs.mu.Lock()
	defer rs.mu.Unlock()
	key := arenaKey{off: off, ver: ver}
	if _, dup := rs.arena[key]; dup {
		return
	}
	refs := 0
	for _, c := range rs.active {
		if c.stamps[target] != nil && c.stamps[target][off] == ver {
			refs++
		}
	}
	if refs == 0 {
		return
	}
	buf := make([]byte, m.bs)
	m.store.ReadBlock(target, fabric.MakeDPtr(target, off), buf)
	rs.arena[key] = &arenaEntry{data: buf, refs: refs}
	for _, c := range rs.active {
		if c.stamps[target] != nil && c.stamps[target][off] == ver {
			c.retained[target] = append(c.retained[target], key)
		}
	}
	m.arenaBytes.Add(int64(m.bs))
	m.retired.Add(1)
}

// lookupArena returns a copy-free view of the retired bytes for (rank, off)
// at the cut's pinned version, or nil. Entries are immutable once inserted
// and outlive the lookup as long as the cut holds its reference, so the
// caller may copy from the returned slice without holding the shard mutex.
func (m *Manager) lookupArena(c *Cut, target fabric.Rank, off uint64) []byte {
	rs := &m.ranks[target]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	e := rs.arena[arenaKey{off: off, ver: c.stamps[target][off]}]
	if e == nil {
		return nil
	}
	return e.data
}

// ReadBlock reads block dp as of the cut into buf (whole-block reads only):
// the versioned read the cut-sourced CSR build walks holder chains with.
//
// Protocol: check the owner's arena for the pinned version; on a miss, read
// the live bytes (charged like any one-sided GET) and re-check the arena.
// A second miss proves consistency: every writer inserts (or observes) the
// arena entry for the pinned version before its first PUT of the block, so
// "no entry after the live read" means no post-cut overwrite had started
// when the read began — including for continuation blocks, whose lock words
// never change and whose reads a version stamp alone could not validate.
func (m *Manager) ReadBlock(origin fabric.Rank, c *Cut, dp fabric.DPtr, buf []byte) error {
	if c.released.Load() {
		return fmt.Errorf("snapshot: read through a released cut")
	}
	target, off := dp.Rank(), dp.Off()
	if c.stamps[target] == nil {
		return fmt.Errorf("snapshot: rank %d was never pinned in this cut", target)
	}
	if len(buf) != m.bs {
		return fmt.Errorf("snapshot: cut reads are whole-block (%d bytes), got %d", m.bs, len(buf))
	}
	for try := 0; try < m.retries; try++ {
		if old := m.lookupArena(c, target, off); old != nil {
			copy(buf, old)
			return nil
		}
		m.store.ReadBlock(origin, dp, buf)
		if old := m.lookupArena(c, target, off); old != nil {
			copy(buf, old)
			return nil
		}
		// The live bytes predate any post-cut overwrite; check that the
		// version still matches the stamp (it must — a bump retires first).
		ver := locks.Version(m.sys.Load(origin, target, 1+int(off)))
		if ver == c.stamps[target][off] {
			return nil
		}
	}
	return fmt.Errorf("snapshot: block %v failed cut validation after %d attempts", dp, m.retries)
}

// ArenaBytes returns the total payload bytes currently held in all version
// arenas. It returns to zero once every cut is released.
func (m *Manager) ArenaBytes() int64 { return m.arenaBytes.Load() }

// RetiredBlocks counts block versions retired into the arenas since start.
func (m *Manager) RetiredBlocks() int64 { return m.retired.Load() }

// CutsAcquired counts cuts created since start.
func (m *Manager) CutsAcquired() int64 { return m.cutsTotal.Load() }

// DeltaFolds counts incremental CSR folds performed against this manager's
// delta logs (incremented by the analytics layer through CountFold).
func (m *Manager) DeltaFolds() int64 { return m.folds.Load() }

// CountFold records one successful incremental fold.
func (m *Manager) CountFold() { m.folds.Add(1) }
