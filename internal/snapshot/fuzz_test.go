package snapshot

import (
	"bytes"
	"testing"

	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/rma"
)

// FuzzDeltaRecord drives the delta-log record codec with arbitrary bytes: the
// decoder must never panic, and any input it accepts must re-encode to the
// identical byte string (the log stores records encoded, so decode∘encode
// must be the identity on valid records).
func FuzzDeltaRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(Record{Kind: KindDelete, DP: rma.MakeDPtr(1, 2), App: 3}))
	f.Add(EncodeRecord(Record{
		Kind: KindUpdate,
		DP:   rma.MakeDPtr(3, 17),
		App:  0xdeadbeef,
		Edges: []holder.EdgeRec{
			{Neighbor: rma.MakeDPtr(0, 1), Dir: holder.DirOut, Label: 7},
			{Neighbor: rma.MakeDPtr(2, 2), Dir: holder.DirUndirected, Heavy: true, Label: 12},
		},
	}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		r, err := DecodeRecord(buf)
		if err != nil {
			return
		}
		if r.Kind > KindDelete {
			t.Fatalf("decoder accepted kind %d", r.Kind)
		}
		out := EncodeRecord(r)
		if !bytes.Equal(out, buf) {
			t.Fatalf("re-encode diverged:\n in:  %x\n out: %x", buf, out)
		}
	})
}
