package snapshot

import (
	"encoding/binary"
	"fmt"

	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
)

// The per-rank delta log. Every committed transaction appends, per vertex it
// created, deleted, or rewrote, one Record to the log of the rank owning that
// vertex's primary block — inside the commit gate, so a record is atomically
// before or after every cut's log position. The incremental CSR fold replays
// the records between two cuts' positions instead of re-reading holders.

// Record kinds.
const (
	// KindCreate introduces a vertex with its full adjacency.
	KindCreate = uint8(iota)
	// KindUpdate replaces a vertex's adjacency wholesale. Carrying the full
	// record list (straight out of the committed holder, in record order)
	// keeps folds order-exact without diffing: a fold replaces the mirror
	// entry and is bit-identical to re-reading the holder.
	KindUpdate
	// KindDelete removes a vertex.
	KindDelete
)

// Record is one committed vertex delta.
type Record struct {
	Kind uint8
	// DP is the vertex's primary block (its identity).
	DP fabric.DPtr
	// App is the application-level vertex ID (create/update).
	App uint64
	// Edges is the committed holder's inline edge-record list, verbatim
	// (create/update). Heavy records still point at their edge holder; the
	// fold resolves them through the cut exactly like a holder walk.
	Edges []holder.EdgeRec
}

// Wire format (little-endian): kind u8, dp u64, app u64, nEdges u32, then
// per edge: neighbor u64, meta u32 (bits 0..1 direction, bit 2 heavy),
// label u32. 21-byte header, 16 bytes per edge.
const (
	recHeaderSize = 1 + 8 + 8 + 4
	recEdgeSize   = 16
	// maxRecEdges bounds decoding against corrupt counts; a vertex holder
	// cannot hold more records than the pool has bytes.
	maxRecEdges = 1 << 28
)

// EncodeRecord serializes r into the delta-log wire format.
func EncodeRecord(r Record) []byte {
	buf := make([]byte, recHeaderSize+recEdgeSize*len(r.Edges))
	buf[0] = r.Kind
	binary.LittleEndian.PutUint64(buf[1:], uint64(r.DP))
	binary.LittleEndian.PutUint64(buf[9:], r.App)
	binary.LittleEndian.PutUint32(buf[17:], uint32(len(r.Edges)))
	off := recHeaderSize
	for _, e := range r.Edges {
		binary.LittleEndian.PutUint64(buf[off:], uint64(e.Neighbor))
		meta := uint32(e.Dir) & 0x3
		if e.Heavy {
			meta |= 1 << 2
		}
		binary.LittleEndian.PutUint32(buf[off+8:], meta)
		binary.LittleEndian.PutUint32(buf[off+12:], uint32(e.Label))
		off += recEdgeSize
	}
	return buf
}

// DecodeRecord parses one delta-log record, rejecting truncated or oversized
// input without panicking (the log may travel over the wire; see the fuzz
// target).
func DecodeRecord(buf []byte) (Record, error) {
	if len(buf) < recHeaderSize {
		return Record{}, fmt.Errorf("snapshot: delta record of %d bytes is smaller than the header", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf[17:]))
	if n < 0 || n > maxRecEdges {
		return Record{}, fmt.Errorf("snapshot: delta record claims %d edges", n)
	}
	if len(buf) != recHeaderSize+recEdgeSize*n {
		return Record{}, fmt.Errorf("snapshot: delta record of %d bytes does not match %d edges", len(buf), n)
	}
	r := Record{
		Kind: buf[0],
		DP:   fabric.DPtr(binary.LittleEndian.Uint64(buf[1:])),
		App:  binary.LittleEndian.Uint64(buf[9:]),
	}
	if r.Kind > KindDelete {
		return Record{}, fmt.Errorf("snapshot: unknown delta record kind %d", r.Kind)
	}
	if n > 0 {
		r.Edges = make([]holder.EdgeRec, n)
		off := recHeaderSize
		for i := range r.Edges {
			meta := binary.LittleEndian.Uint32(buf[off+8:])
			if meta&^uint32(0x7) != 0 || meta&0x3 > uint32(holder.DirUndirected) {
				return Record{}, fmt.Errorf("snapshot: delta record edge %d has invalid meta %#x", i, meta)
			}
			r.Edges[i] = holder.EdgeRec{
				Neighbor: fabric.DPtr(binary.LittleEndian.Uint64(buf[off:])),
				Dir:      holder.Direction(meta & 0x3),
				Heavy:    meta&(1<<2) != 0,
				Label:    lpg.LabelID(binary.LittleEndian.Uint32(buf[off+12:])),
			}
			off += recEdgeSize
		}
	}
	return r, nil
}

// AppendDeltas appends recs (encoded) to rank me's delta log. The caller
// must hold the engine's commit gate in read mode, which serializes appends
// against cut pinning — a commit's records land atomically before or after
// any cut's position.
func (m *Manager) AppendDeltas(me fabric.Rank, recs []Record) {
	if len(recs) == 0 {
		return
	}
	rs := &m.ranks[me]
	rs.mu.Lock()
	for _, r := range recs {
		rs.recs = append(rs.recs, EncodeRecord(r))
	}
	rs.mu.Unlock()
}

// Deltas decodes rank me's log records in positions [from, to). It fails if
// the window was already trimmed (the caller must then fall back to a full
// rebuild).
func (m *Manager) Deltas(me fabric.Rank, from, to int) ([]Record, error) {
	rs := &m.ranks[me]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if from < rs.logBase || to > rs.logBase+len(rs.recs) || from > to {
		return nil, fmt.Errorf("snapshot: delta window [%d, %d) outside log [%d, %d)",
			from, to, rs.logBase, rs.logBase+len(rs.recs))
	}
	out := make([]Record, 0, to-from)
	for _, b := range rs.recs[from-rs.logBase : to-rs.logBase] {
		r, err := DecodeRecord(b)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// LogLen returns rank me's current absolute delta-log position.
func (m *Manager) LogLen(me fabric.Rank) int {
	rs := &m.ranks[me]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.logBase + len(rs.recs)
}

// trimLogLocked drops records below the minimum position any active cut
// pinned on rank r (all of them with no active cut): released analytics
// sessions must not keep the OLTP-side log growing forever.
func (rs *rankShard) trimLogLocked(r fabric.Rank) {
	min := rs.logBase + len(rs.recs)
	for _, c := range rs.active {
		if c.logPos[r] < min {
			min = c.logPos[r]
		}
	}
	if min > rs.logBase {
		rs.recs = append([][]byte(nil), rs.recs[min-rs.logBase:]...)
		rs.logBase = min
	}
}
