package snapshot

import (
	"testing"

	"github.com/gdi-go/gdi/internal/block"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/rma"
)

func sampleRecord() Record {
	return Record{
		Kind: KindUpdate,
		DP:   rma.MakeDPtr(3, 17),
		App:  0xdeadbeefcafe,
		Edges: []holder.EdgeRec{
			{Neighbor: rma.MakeDPtr(0, 1), Dir: holder.DirOut, Label: 7},
			{Neighbor: rma.MakeDPtr(5, 9), Dir: holder.DirIn, Label: 0},
			{Neighbor: rma.MakeDPtr(2, 2), Dir: holder.DirUndirected, Heavy: true, Label: 12},
		},
	}
}

func TestDeltaRecordRoundTrip(t *testing.T) {
	for _, r := range []Record{
		sampleRecord(),
		{Kind: KindCreate, DP: rma.MakeDPtr(0, 0), App: 0},
		{Kind: KindDelete, DP: rma.MakeDPtr(7, 1<<30), App: 42},
	} {
		got, err := DecodeRecord(EncodeRecord(r))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Kind != r.Kind || got.DP != r.DP || got.App != r.App {
			t.Fatalf("header round trip: got %+v, want %+v", got, r)
		}
		if len(got.Edges) != len(r.Edges) {
			t.Fatalf("edge count: got %d, want %d", len(got.Edges), len(r.Edges))
		}
		for i := range r.Edges {
			if got.Edges[i] != r.Edges[i] {
				t.Fatalf("edge %d: got %+v, want %+v", i, got.Edges[i], r.Edges[i])
			}
		}
	}
}

func TestDeltaRecordRejectsCorruption(t *testing.T) {
	good := EncodeRecord(sampleRecord())
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:recHeaderSize-1],
		"truncated":   good[:len(good)-1],
		"oversized":   append(append([]byte(nil), good...), 0),
		"bad kind":    append([]byte{99}, good[1:]...),
		"count lies":  func() []byte { b := append([]byte(nil), good...); b[17] = 200; return b }(),
		"count huge":  func() []byte { b := append([]byte(nil), good...); b[20] = 0xff; return b }(),
		"header only": good[:recHeaderSize], // count still says 3 edges, none present
	}
	for name, buf := range cases {
		if _, err := DecodeRecord(buf); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// newTestManager builds a manager over a tiny 2-rank store.
func newTestManager(t *testing.T) *Manager {
	t.Helper()
	f := rma.New(2)
	st := block.NewStore(f, block.Config{BlockSize: 64, BlocksPerRank: 8})
	return NewManager(st, 0)
}

func TestDeltaLogWindowAndTrim(t *testing.T) {
	m := newTestManager(t)
	mk := func(app uint64) Record { return Record{Kind: KindCreate, DP: rma.MakeDPtr(0, app), App: app} }

	m.AppendDeltas(0, []Record{mk(1), mk(2)})
	c := m.NewCut()
	m.PinRank(c, 0) // records log position 2 for rank 0
	if got := c.LogPos(0); got != 2 {
		t.Fatalf("pinned log position: got %d, want 2", got)
	}

	m.AppendDeltas(0, []Record{mk(3)})
	recs, err := m.Deltas(0, 2, 3)
	if err != nil {
		t.Fatalf("window [2,3): %v", err)
	}
	if len(recs) != 1 || recs[0].App != 3 {
		t.Fatalf("window [2,3): got %+v", recs)
	}

	// A second cut pins position 3. Releasing the first trims the log up to
	// the minimum still-active position: the old window must now be refused,
	// while the absolute position does not move.
	c2 := m.NewCut()
	m.PinRank(c2, 0)
	c.Release()
	if _, err := m.Deltas(0, 0, 2); err == nil {
		t.Fatal("trimmed window [0,2) still readable")
	}
	if recs, err = m.Deltas(0, 3, 3); err != nil || len(recs) != 0 {
		t.Fatalf("empty window [3,3) after trim: %v, %d recs", err, len(recs))
	}
	if got := m.LogLen(0); got != 3 {
		t.Fatalf("absolute position moved: got %d, want 3", got)
	}
	c2.Release()

	// Inverted and out-of-range windows are rejected.
	if _, err := m.Deltas(0, 3, 2); err == nil {
		t.Fatal("inverted window accepted")
	}
	if _, err := m.Deltas(0, 2, 99); err == nil {
		t.Fatal("future window accepted")
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	m := newTestManager(t)
	c := m.NewCut()
	m.PinRank(c, 0)
	m.PinRank(c, 1)
	c.Release()
	c.Release()
	if !c.Released() {
		t.Fatal("cut not marked released")
	}
	if got := m.ArenaBytes(); got != 0 {
		t.Fatalf("arena holds %d bytes after release", got)
	}
	if err := m.ReadBlock(0, c, rma.MakeDPtr(0, 1), make([]byte, m.bs)); err == nil {
		t.Fatal("read through a released cut succeeded")
	}
}

func TestRetireAndCutReadPreserveOldBytes(t *testing.T) {
	m := newTestManager(t)
	dp := rma.MakeDPtr(0, 1)
	old := make([]byte, m.bs)
	for i := range old {
		old[i] = 0xA5
	}
	m.store.WriteBlock(0, dp, old)

	c := m.NewCut()
	m.PinRank(c, 0)

	// A writer overwrites the block; the pre-write hook (Retire) must save
	// the pinned bytes into the arena first.
	m.Retire(dp.Rank(), dp.Off())
	m.store.WriteBlock(0, dp, make([]byte, m.bs))

	if m.RetiredBlocks() == 0 || m.ArenaBytes() == 0 {
		t.Fatalf("nothing retired: %d blocks, %d bytes", m.RetiredBlocks(), m.ArenaBytes())
	}
	got := make([]byte, m.bs)
	if err := m.ReadBlock(0, c, dp, got); err != nil {
		t.Fatalf("cut read: %v", err)
	}
	for i := range got {
		if got[i] != 0xA5 {
			t.Fatalf("cut read byte %d: got %#x, want 0xA5", i, got[i])
		}
	}

	c.Release()
	if got := m.ArenaBytes(); got != 0 {
		t.Fatalf("arena holds %d bytes after release", got)
	}
}
