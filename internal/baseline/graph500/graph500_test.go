package graph500

import (
	"testing"

	"github.com/gdi-go/gdi/internal/kron"
)

func TestBFSReachesComponent(t *testing.T) {
	cfg := kron.Config{Scale: 9, EdgeFactor: 8, Seed: 1}.WithDefaults()
	c := kron.BuildCSR(cfg)
	levels := BFS(c, 0, 4)
	if levels[0] != 0 {
		t.Fatalf("root level = %d", levels[0])
	}
	v := Visited(levels)
	if v < int(c.N)/2 {
		t.Fatalf("BFS reached only %d of %d vertices on an e=8 Kronecker graph", v, c.N)
	}
	// Level consistency: every reached non-root vertex has a neighbor one
	// level closer to the root.
	for u := uint64(0); u < c.N; u++ {
		if levels[u] <= 0 {
			continue
		}
		ok := false
		for _, nb := range c.Neighbors(u) {
			if levels[nb] == levels[u]-1 {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("vertex %d at level %d has no parent", u, levels[u])
		}
	}
}

func TestBFSSerialVsParallel(t *testing.T) {
	cfg := kron.Config{Scale: 8, EdgeFactor: 4, Seed: 2}.WithDefaults()
	c := kron.BuildCSR(cfg)
	a := BFS(c, 3, 1)
	b := BFS(c, 3, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("levels differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBFSOutOfRangeRoot(t *testing.T) {
	cfg := kron.Config{Scale: 4, EdgeFactor: 2, Seed: 1}.WithDefaults()
	c := kron.BuildCSR(cfg)
	if Visited(BFS(c, 1<<40, 2)) != 0 {
		t.Fatal("out-of-range root visited vertices")
	}
}
