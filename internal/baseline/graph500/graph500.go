// Package graph500 is the Graph500-BFS-stand-in comparator of §6.5: a
// tuned parallel level-synchronous breadth-first search over plain CSR
// arrays, with no transactions, no labels, no properties, and no storage
// engine — the upper bound GDA's BFS is measured against in Figure 6e/6f.
package graph500

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/gdi-go/gdi/internal/kron"
)

// BFS runs a parallel level-synchronous BFS from root and returns the level
// of every vertex (-1 = unreached). workers <= 0 selects GOMAXPROCS.
func BFS(c *kron.CSR, root uint64, workers int) []int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	levels := make([]int32, c.N)
	for i := range levels {
		levels[i] = -1
	}
	if root >= c.N {
		return levels
	}
	// Atomic visited bitmap.
	words := make([]uint64, (c.N+63)/64)
	setVisited := func(v uint64) bool {
		w, b := v/64, uint64(1)<<(v%64)
		for {
			old := atomic.LoadUint64(&words[w])
			if old&b != 0 {
				return false
			}
			if atomic.CompareAndSwapUint64(&words[w], old, old|b) {
				return true
			}
		}
	}
	setVisited(root)
	levels[root] = 0
	frontier := []uint64{root}
	for level := int32(1); len(frontier) > 0; level++ {
		nexts := make([][]uint64, workers)
		var wg sync.WaitGroup
		chunk := (len(frontier) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := min(lo+chunk, len(frontier))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				var local []uint64
				for _, u := range frontier[lo:hi] {
					for _, v := range c.Neighbors(u) {
						if setVisited(v) {
							levels[v] = level
							local = append(local, v)
						}
					}
				}
				nexts[w] = local
			}(w, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, l := range nexts {
			frontier = append(frontier, l...)
		}
	}
	return levels
}

// Visited counts reached vertices in a level array.
func Visited(levels []int32) int {
	n := 0
	for _, l := range levels {
		if l >= 0 {
			n++
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
