package rpcgdb

import (
	"sync"
	"testing"
)

func TestVertexLifecycle(t *testing.T) {
	db := New(4)
	defer db.Close()
	db.AddVertex(1, 10, 0, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	if n, ok := db.GetProps(1); !ok || n != 1 {
		t.Fatalf("GetProps = %d, %v", n, ok)
	}
	if !db.UpdateProperty(1, 0, []byte{9, 0, 0, 0, 0, 0, 0, 0}) {
		t.Fatal("UpdateProperty failed")
	}
	if db.UpdateProperty(42, 0, nil) {
		t.Fatal("UpdateProperty on ghost succeeded")
	}
	if !db.DeleteVertex(1) || db.DeleteVertex(1) {
		t.Fatal("delete semantics wrong")
	}
}

func TestCrossShardEdges(t *testing.T) {
	db := New(3)
	defer db.Close()
	db.AddVertex(1, 0, 0, nil) // shard 1
	db.AddVertex(2, 0, 0, nil) // shard 2
	db.AddEdge(1, 2)
	if n, _ := db.CountEdges(1); n != 1 {
		t.Fatalf("CountEdges(1) = %d", n)
	}
	out, in, ok := db.GetEdges(2)
	if !ok || len(out) != 0 || len(in) != 1 || in[0] != 1 {
		t.Fatalf("GetEdges(2) = %v %v %v", out, in, ok)
	}
	// Cross-shard detach on delete.
	db.DeleteVertex(2)
	if n, _ := db.CountEdges(1); n != 0 {
		t.Fatalf("dangling edge after cross-shard delete: %d", n)
	}
}

func TestSelfLoopDelete(t *testing.T) {
	db := New(2)
	defer db.Close()
	db.AddVertex(3, 0, 0, nil)
	db.AddEdge(3, 3)
	if !db.DeleteVertex(3) {
		t.Fatal("self-loop delete failed")
	}
}

func TestGroupCount(t *testing.T) {
	db := New(4)
	defer db.Close()
	mk := func(v uint64) []byte { return []byte{byte(v), 0, 0, 0, 0, 0, 0, 0} }
	for i := uint64(0); i < 12; i++ {
		db.AddVertex(i, 5, 1, mk(i))
		db.UpdateProperty(i, 2, mk(i%4))
	}
	groups := db.GroupCount(5, 1, 0, 8, 2)
	total := int64(0)
	for _, c := range groups {
		total += c
	}
	if total != 8 {
		t.Fatalf("GroupCount total = %d, want 8", total)
	}
}

func TestConcurrentClients(t *testing.T) {
	db := New(4)
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 1000
			for i := uint64(0); i < 200; i++ {
				db.AddVertex(base+i, 0, 0, nil)
				db.AddEdge(base+i, base)
				db.GetProps(base + i)
			}
		}(w)
	}
	wg.Wait()
	if n, ok := db.CountEdges(0); !ok || n == 0 {
		t.Fatalf("hub edges = %d, %v", n, ok)
	}
}
