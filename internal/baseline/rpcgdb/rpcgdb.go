// Package rpcgdb is the JanusGraph-stand-in baseline of the evaluation
// (§6.2): the same sharded storage layout as GDA, but every remote access
// travels as a two-sided RPC handled by the owning shard's server loop.
//
// This reproduces the structural difference the paper measures between GDA
// and distributed two-sided designs: the target's CPU sits on the data path
// (requests queue behind the server goroutine), while GDA's one-sided
// accesses proceed without involving the target. Consistency is eventual —
// no cross-shard coordination — mirroring JanusGraph's default
// configuration that the paper also uses ("we use their high-performance
// consistency guarantees").
package rpcgdb

import "sync"

// opCode enumerates the RPC verbs.
type opCode uint8

const (
	opGetProps opCode = iota
	opCountEdges
	opGetEdges
	opAddVertex
	opDeleteVertex
	opUpdateProp
	opAddOut
	opAddIn
	opDetachOut
	opDetachIn
	opScanGroup
)

// request is one two-sided message; reply carries the result.
type request struct {
	op        opCode
	app, app2 uint64
	prop      uint32
	label     uint32
	val       []byte
	lo, hi    uint64
	reply     chan reply
}

type reply struct {
	ok     bool
	n      int
	out    []uint64
	in     []uint64
	groups map[uint64]int64
}

type vertex struct {
	labels []uint32
	props  map[uint32][]byte
	out    []uint64
	in     []uint64
}

// shard is one rank's partition, owned exclusively by its server goroutine.
type shard struct {
	verts map[uint64]*vertex
	reqs  chan request
}

// DB is the sharded store with one server goroutine per shard.
type DB struct {
	shards []*shard
	wg     sync.WaitGroup
}

// New creates a store with n shards and starts the server loops.
func New(n int) *DB {
	db := &DB{shards: make([]*shard, n)}
	for i := range db.shards {
		s := &shard{verts: make(map[uint64]*vertex), reqs: make(chan request, 256)}
		db.shards[i] = s
		db.wg.Add(1)
		go func() {
			defer db.wg.Done()
			s.serve()
		}()
	}
	return db
}

// Close stops the server loops.
func (db *DB) Close() {
	for _, s := range db.shards {
		close(s.reqs)
	}
	db.wg.Wait()
}

func (db *DB) shardOf(app uint64) *shard { return db.shards[app%uint64(len(db.shards))] }

// call issues one RPC and waits for the reply — the two-sided round trip.
func (db *DB) call(req request) reply {
	req.reply = make(chan reply, 1)
	db.shardOf(req.app).reqs <- req
	return <-req.reply
}

// serve is the per-shard request loop: the target CPU on the data path.
func (s *shard) serve() {
	for req := range s.reqs {
		var rep reply
		switch req.op {
		case opGetProps:
			if v, ok := s.verts[req.app]; ok {
				rep.ok = true
				rep.n = len(v.props)
			}
		case opCountEdges:
			if v, ok := s.verts[req.app]; ok {
				rep.ok = true
				rep.n = len(v.out) + len(v.in)
			}
		case opGetEdges:
			if v, ok := s.verts[req.app]; ok {
				rep.ok = true
				rep.out = append([]uint64(nil), v.out...)
				rep.in = append([]uint64(nil), v.in...)
			}
		case opAddVertex:
			if _, dup := s.verts[req.app]; !dup {
				s.verts[req.app] = &vertex{
					labels: []uint32{req.label},
					props:  map[uint32][]byte{req.prop: append([]byte(nil), req.val...)},
				}
				rep.ok = true
			}
		case opDeleteVertex:
			if v, ok := s.verts[req.app]; ok {
				rep.ok = true
				rep.out = v.out
				rep.in = v.in
				delete(s.verts, req.app)
			}
		case opUpdateProp:
			if v, ok := s.verts[req.app]; ok {
				v.props[req.prop] = append([]byte(nil), req.val...)
				rep.ok = true
			}
		case opAddOut:
			v, ok := s.verts[req.app]
			if !ok {
				v = &vertex{props: map[uint32][]byte{}}
				s.verts[req.app] = v
			}
			v.out = append(v.out, req.app2)
			rep.ok = true
		case opAddIn:
			v, ok := s.verts[req.app]
			if !ok {
				v = &vertex{props: map[uint32][]byte{}}
				s.verts[req.app] = v
			}
			v.in = append(v.in, req.app2)
			rep.ok = true
		case opDetachOut:
			if v, ok := s.verts[req.app]; ok {
				v.out = removeID(v.out, req.app2)
				rep.ok = true
			}
		case opDetachIn:
			if v, ok := s.verts[req.app]; ok {
				v.in = removeID(v.in, req.app2)
				rep.ok = true
			}
		case opScanGroup:
			rep.ok = true
			rep.groups = make(map[uint64]int64)
			for _, v := range s.verts {
				if !hasLabel(v.labels, req.label) {
					continue
				}
				fv, ok := v.props[req.prop]
				if !ok || len(fv) != 8 {
					continue
				}
				x := le64(fv)
				if x < req.lo || x >= req.hi {
					continue
				}
				gv, ok := v.props[uint32(req.app2)]
				if !ok || len(gv) != 8 {
					continue
				}
				rep.groups[le64(gv)]++
			}
		}
		req.reply <- rep
	}
}

func removeID(ids []uint64, gone uint64) []uint64 {
	out := ids[:0]
	for _, id := range ids {
		if id != gone {
			out = append(out, id)
		}
	}
	return out
}

func hasLabel(ls []uint32, l uint32) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

func le64(b []byte) uint64 {
	var x uint64
	for i := 7; i >= 0; i-- {
		x = x<<8 | uint64(b[i])
	}
	return x
}

// Public client operations.

// AddVertex inserts a vertex with one label and one property.
func (db *DB) AddVertex(app uint64, label uint32, prop uint32, val []byte) {
	db.call(request{op: opAddVertex, app: app, label: label, prop: prop, val: val})
}

// DeleteVertex removes a vertex, then detaches it from its neighbors with
// follow-up RPCs (eventually consistent, like the baseline it models).
func (db *DB) DeleteVertex(app uint64) bool {
	rep := db.call(request{op: opDeleteVertex, app: app})
	if !rep.ok {
		return false
	}
	for _, n := range rep.out {
		if n != app {
			db.call(request{op: opDetachIn, app: n, app2: app})
		}
	}
	for _, n := range rep.in {
		if n != app {
			db.call(request{op: opDetachOut, app: n, app2: app})
		}
	}
	return true
}

// AddEdge inserts a directed edge with two single-shard RPCs (no 2PC).
func (db *DB) AddEdge(a, b uint64) {
	db.call(request{op: opAddOut, app: a, app2: b})
	db.call(request{op: opAddIn, app: b, app2: a})
}

// UpdateProperty overwrites one property value.
func (db *DB) UpdateProperty(app uint64, prop uint32, val []byte) bool {
	return db.call(request{op: opUpdateProp, app: app, prop: prop, val: val}).ok
}

// GetProps fetches a vertex's property count (payload shape is irrelevant
// for the latency experiment; the round trip is what is measured).
func (db *DB) GetProps(app uint64) (int, bool) {
	rep := db.call(request{op: opGetProps, app: app})
	return rep.n, rep.ok
}

// CountEdges returns a vertex's degree.
func (db *DB) CountEdges(app uint64) (int, bool) {
	rep := db.call(request{op: opCountEdges, app: app})
	return rep.n, rep.ok
}

// GetEdges returns a vertex's adjacency lists.
func (db *DB) GetEdges(app uint64) (out, in []uint64, ok bool) {
	rep := db.call(request{op: opGetEdges, app: app})
	return rep.out, rep.in, rep.ok
}

// GroupCount runs the BI2-style aggregation: one scan RPC per shard, merged
// at the caller.
func (db *DB) GroupCount(label uint32, filterProp uint32, lo, hi uint64, groupProp uint32) map[uint64]int64 {
	out := make(map[uint64]int64)
	for i := range db.shards {
		req := request{op: opScanGroup, app: uint64(i), app2: uint64(groupProp), label: label, prop: filterProp, lo: lo, hi: hi}
		req.reply = make(chan reply, 1)
		db.shards[i].reqs <- req
		for k, v := range (<-req.reply).groups {
			out[k] += v
		}
	}
	return out
}
