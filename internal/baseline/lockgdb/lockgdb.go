// Package lockgdb is the Neo4j-stand-in baseline of the evaluation (§6.2):
// an in-memory LPG store with a single global reader-writer lock around a
// centralized transaction manager and a write-ahead log.
//
// The paper compares GDA against Neo4j 5.10 configured for in-memory
// execution. Neo4j itself is not available here; this baseline reproduces
// the architectural properties the paper attributes to it — one
// transaction-management domain (no horizontally scalable writes), a
// transaction log on the write path, and an interpreted property/label
// lookup path — so the *shape* of Figures 4 and 5 (GDA ahead by a widening
// margin as servers are added) is reproduced, not Neo4j's absolute numbers.
package lockgdb

import (
	"hash/fnv"
	"sync"
)

// vertex is the object-graph representation typical of centralized stores.
type vertex struct {
	labels []uint32
	props  map[uint32][]byte
	out    []uint64
	in     []uint64
}

// DB is the store. All clients share it; every operation takes the global
// lock (read or write).
type DB struct {
	mu    sync.RWMutex
	verts map[uint64]*vertex
	wal   []byte
	walH  uint64
}

// walPage is the simulated transaction-log granularity: every write
// transaction appends and checksums one page, as a journaling store does.
const walPage = 4096

// New creates an empty store.
func New() *DB {
	return &DB{verts: make(map[uint64]*vertex)}
}

// appendWAL simulates the transaction-log write that accompanies every
// write transaction in a journaling database: one page is materialized and
// checksummed. The WAL buffer is bounded (it recycles), since durability
// itself is out of scope.
func (db *DB) appendWAL(record []byte) {
	var page [walPage]byte
	copy(page[:], record)
	h := fnv.New64a()
	h.Write(page[:])
	db.walH = h.Sum64()
	if len(db.wal) > 1<<20 {
		db.wal = db.wal[:0]
	}
	db.wal = append(db.wal, record...)
}

// AddVertex inserts a vertex with one label and one property.
func (db *DB) AddVertex(app uint64, label uint32, prop uint32, val []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.verts[app]; dup {
		return
	}
	v := &vertex{labels: []uint32{label}, props: map[uint32][]byte{prop: append([]byte(nil), val...)}}
	db.verts[app] = v
	db.appendWAL([]byte{byte(app), byte(app >> 8), 1})
}

// DeleteVertex removes a vertex and detaches its edges.
func (db *DB) DeleteVertex(app uint64) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, ok := db.verts[app]
	if !ok {
		return false
	}
	for _, n := range v.out {
		if nv, ok := db.verts[n]; ok {
			nv.in = removeID(nv.in, app)
		}
	}
	for _, n := range v.in {
		if nv, ok := db.verts[n]; ok {
			nv.out = removeID(nv.out, app)
		}
	}
	delete(db.verts, app)
	db.appendWAL([]byte{byte(app), byte(app >> 8), 2})
	return true
}

func removeID(ids []uint64, gone uint64) []uint64 {
	out := ids[:0]
	for _, id := range ids {
		if id != gone {
			out = append(out, id)
		}
	}
	return out
}

// AddEdge inserts a directed edge; missing endpoints are created bare (the
// permissive semantics JanusGraph/Neo4j exhibit under concurrent load).
func (db *DB) AddEdge(a, b uint64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	av, ok := db.verts[a]
	if !ok {
		av = &vertex{props: map[uint32][]byte{}}
		db.verts[a] = av
	}
	bv, ok := db.verts[b]
	if !ok {
		bv = &vertex{props: map[uint32][]byte{}}
		db.verts[b] = bv
	}
	av.out = append(av.out, b)
	bv.in = append(bv.in, a)
	db.appendWAL([]byte{byte(a), byte(b), 3})
}

// UpdateProperty overwrites one property value.
func (db *DB) UpdateProperty(app uint64, prop uint32, val []byte) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	v, ok := db.verts[app]
	if !ok {
		return false
	}
	v.props[prop] = append([]byte(nil), val...)
	db.appendWAL([]byte{byte(app), byte(prop), 4})
	return true
}

// GetProps returns a copy of a vertex's property map.
func (db *DB) GetProps(app uint64) (map[uint32][]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.verts[app]
	if !ok {
		return nil, false
	}
	out := make(map[uint32][]byte, len(v.props))
	for k, val := range v.props {
		out[k] = append([]byte(nil), val...)
	}
	return out, true
}

// CountEdges returns a vertex's degree.
func (db *DB) CountEdges(app uint64) (int, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.verts[app]
	if !ok {
		return 0, false
	}
	return len(v.out) + len(v.in), true
}

// GetEdges returns copies of a vertex's adjacency lists.
func (db *DB) GetEdges(app uint64) (out, in []uint64, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, found := db.verts[app]
	if !found {
		return nil, nil, false
	}
	return append([]uint64(nil), v.out...), append([]uint64(nil), v.in...), true
}

// Len returns the vertex count.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.verts)
}

// BFS runs a whole-graph traversal under the global read lock (the shape of
// a Neo4j analytical query: single-machine, lock-coupled).
func (db *DB) BFS(root uint64) (visited int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, ok := db.verts[root]; !ok {
		return 0
	}
	seen := map[uint64]bool{root: true}
	frontier := []uint64{root}
	for len(frontier) > 0 {
		var next []uint64
		for _, u := range frontier {
			v := db.verts[u]
			for _, lists := range [][]uint64{v.out, v.in} {
				for _, n := range lists {
					if !seen[n] {
						seen[n] = true
						next = append(next, n)
					}
				}
			}
		}
		frontier = next
	}
	return len(seen)
}

// KHop counts vertices within k hops of root.
func (db *DB) KHop(root uint64, k int) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, ok := db.verts[root]; !ok {
		return 0
	}
	seen := map[uint64]bool{root: true}
	frontier := []uint64{root}
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []uint64
		for _, u := range frontier {
			v := db.verts[u]
			for _, lists := range [][]uint64{v.out, v.in} {
				for _, n := range lists {
					if !seen[n] {
						seen[n] = true
						next = append(next, n)
					}
				}
			}
		}
		frontier = next
	}
	return len(seen)
}

// GroupCount scans all vertices with the given label whose filter property
// lies in [lo, hi) and counts them grouped by group-property value — the
// BI2-style aggregation, executed the centralized way.
func (db *DB) GroupCount(label uint32, filterProp uint32, lo, hi uint64, groupProp uint32) map[uint64]int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[uint64]int64)
	for _, v := range db.verts {
		if !hasLabel(v.labels, label) {
			continue
		}
		fv, ok := v.props[filterProp]
		if !ok || len(fv) != 8 {
			continue
		}
		x := le64(fv)
		if x < lo || x >= hi {
			continue
		}
		gv, ok := v.props[groupProp]
		if !ok || len(gv) != 8 {
			continue
		}
		out[le64(gv)]++
	}
	return out
}

func hasLabel(ls []uint32, l uint32) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}

func le64(b []byte) uint64 {
	var x uint64
	for i := 7; i >= 0; i-- {
		x = x<<8 | uint64(b[i])
	}
	return x
}
