package lockgdb

import (
	"sync"
	"testing"
)

func TestVertexLifecycle(t *testing.T) {
	db := New()
	db.AddVertex(1, 10, 0, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	if db.Len() != 1 {
		t.Fatalf("Len = %d", db.Len())
	}
	props, ok := db.GetProps(1)
	if !ok || len(props) != 1 {
		t.Fatalf("GetProps = %v, %v", props, ok)
	}
	if !db.UpdateProperty(1, 0, []byte{2, 0, 0, 0, 0, 0, 0, 0}) {
		t.Fatal("UpdateProperty failed")
	}
	if db.UpdateProperty(99, 0, nil) {
		t.Fatal("UpdateProperty on ghost succeeded")
	}
	if !db.DeleteVertex(1) || db.DeleteVertex(1) {
		t.Fatal("delete semantics wrong")
	}
}

func TestEdgesAndDegree(t *testing.T) {
	db := New()
	db.AddVertex(1, 0, 0, nil)
	db.AddVertex(2, 0, 0, nil)
	db.AddEdge(1, 2)
	db.AddEdge(1, 2)
	if n, _ := db.CountEdges(1); n != 2 {
		t.Fatalf("CountEdges(1) = %d", n)
	}
	out, in, ok := db.GetEdges(2)
	if !ok || len(out) != 0 || len(in) != 2 {
		t.Fatalf("GetEdges(2) = %v, %v, %v", out, in, ok)
	}
	db.DeleteVertex(2)
	if n, _ := db.CountEdges(1); n != 0 {
		t.Fatalf("dangling edges after neighbor delete: %d", n)
	}
}

func TestAddEdgeCreatesEndpoints(t *testing.T) {
	db := New()
	db.AddEdge(7, 8)
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestBFSAndKHop(t *testing.T) {
	db := New()
	for i := uint64(0); i < 5; i++ {
		db.AddVertex(i, 0, 0, nil)
	}
	// Path 0-1-2-3, isolated 4.
	db.AddEdge(0, 1)
	db.AddEdge(1, 2)
	db.AddEdge(2, 3)
	if got := db.BFS(0); got != 4 {
		t.Fatalf("BFS(0) = %d, want 4", got)
	}
	if got := db.BFS(4); got != 1 {
		t.Fatalf("BFS(4) = %d, want 1", got)
	}
	if got := db.BFS(99); got != 0 {
		t.Fatalf("BFS(ghost) = %d", got)
	}
	if got := db.KHop(0, 2); got != 3 { // 0,1,2
		t.Fatalf("KHop(0,2) = %d, want 3", got)
	}
}

func TestGroupCount(t *testing.T) {
	db := New()
	mk := func(v uint64) []byte { return []byte{byte(v), 0, 0, 0, 0, 0, 0, 0} }
	for i := uint64(0); i < 10; i++ {
		db.AddVertex(i, 5, 1, mk(i)) // label 5, filter prop 1 = i
		db.UpdateProperty(i, 2, mk(i%3))
	}
	groups := db.GroupCount(5, 1, 2, 8, 2) // i in [2,8): 2,3,4,5,6,7
	total := int64(0)
	for _, c := range groups {
		total += c
	}
	if total != 6 {
		t.Fatalf("GroupCount total = %d, want 6", total)
	}
	if groups[0] != 2 || groups[1] != 2 || groups[2] != 2 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestConcurrentClients(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 1000
			for i := uint64(0); i < 100; i++ {
				db.AddVertex(base+i, 0, 0, nil)
				db.AddEdge(base+i, base)
				db.GetProps(base + i)
				db.CountEdges(base)
			}
		}(w)
	}
	wg.Wait()
	if db.Len() != 800 {
		t.Fatalf("Len = %d, want 800", db.Len())
	}
}
