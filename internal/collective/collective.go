// Package collective implements the collective communication operations that
// GDI-RMA uses for collective transactions, bulk loading, and OLAP queries
// (§3.2, §5.1 of the paper): Barrier, Bcast, Reduce, Allreduce, Gather,
// Allgather, Alltoall, and Exscan.
//
// All operations have the MPI collective contract: every rank of the
// communicator must call the routine, with matching arguments where the
// operation requires it. The implementations use the classic O(log P)-round
// algorithms (dissemination barrier, binomial trees, recursive structures)
// over the pairwise message substrate of the fabric SPI
// (fabric.Messenger), so both the semantics and the round complexity match
// what a tuned MPI library provides — and the same algorithms run unchanged
// over the in-process simulator and the multi-process TCP transport.
//
// Value passage is backend-dependent: on a shared-address-space transport
// values travel by reference (zero copies, and subsystems like the HTAP cut
// broadcast rely on receiving the very same object); on a wire transport
// values are encoded per message (raw bytes for []byte payloads, gob for
// everything else — payload types crossing a wire collective must therefore
// be gob-encodable).
package collective

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/gdi-go/gdi/internal/fabric"
)

// Comm is a communicator over all ranks of a transport. Collectives on a
// Comm must be issued in the same order by every rank, and because all Comms
// of one transport share its messenger substrate, only one collective
// sequence may run at a time per transport — mirroring MPI communicator
// semantics over MPI_COMM_WORLD.
type Comm struct {
	m fabric.Messenger
	n int
}

// New creates a communicator spanning all ranks of t.
func New(t fabric.Transport) *Comm {
	return &Comm{m: t.Messenger(), n: t.Size()}
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.n }

// Wire encoding tags for the non-shared (multi-process) path.
const (
	tagNil   = 0 // barrier token / nil value
	tagBytes = 1 // raw []byte payload
	tagGob   = 2 // gob-encoded value
)

func encodeVal(v any) []byte {
	switch b := v.(type) {
	case nil:
		return []byte{tagNil}
	case []byte:
		out := make([]byte, 1+len(b))
		out[0] = tagBytes
		copy(out[1:], b)
		return out
	}
	var buf bytes.Buffer
	buf.WriteByte(tagGob)
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("collective: payload %T does not cross a wire transport: %v", v, err))
	}
	return buf.Bytes()
}

func decodeVal[T any](b []byte) T {
	var out T
	if len(b) == 0 {
		return out
	}
	switch b[0] {
	case tagNil:
		return out
	case tagBytes:
		if v, ok := any(append([]byte(nil), b[1:]...)).(T); ok {
			return v
		}
		panic(fmt.Sprintf("collective: []byte message decoded as %T", out))
	case tagGob:
		if err := gob.NewDecoder(bytes.NewReader(b[1:])).Decode(&out); err != nil {
			panic(fmt.Sprintf("collective: decoding %T: %v", out, err))
		}
		return out
	}
	panic(fmt.Sprintf("collective: unknown wire tag %d", b[0]))
}

// sendVal and recvVal move one typed value across a directed rank pair:
// by reference when the transport is shared, encoded when it is a wire.
func sendVal[T any](c *Comm, from, to fabric.Rank, v T) {
	if c.m.Shared() {
		c.m.Send(from, to, v)
		return
	}
	c.m.SendBytes(from, to, encodeVal(v))
}

func recvVal[T any](c *Comm, from, to fabric.Rank) T {
	if c.m.Shared() {
		v, _ := c.m.Recv(from, to).(T) // nil any → zero T
		return v
	}
	return decodeVal[T](c.m.RecvBytes(from, to))
}

// sendToken and recvToken move the contentless synchronization token of
// Barrier.
func (c *Comm) sendToken(from, to fabric.Rank) {
	if c.m.Shared() {
		c.m.Send(from, to, nil)
		return
	}
	c.m.SendBytes(from, to, []byte{tagNil})
}

func (c *Comm) recvToken(from, to fabric.Rank) {
	if c.m.Shared() {
		c.m.Recv(from, to)
		return
	}
	c.m.RecvBytes(from, to)
}

// Barrier blocks until every rank has entered it. It uses the dissemination
// algorithm: ceil(log2 P) rounds, each rank sending one token per round.
func (c *Comm) Barrier(me fabric.Rank) {
	n := c.n
	for k := 1; k < n; k <<= 1 {
		to := fabric.Rank((int(me) + k) % n)
		from := fabric.Rank((int(me) - k + n) % n)
		c.sendToken(me, to)
		c.recvToken(from, me)
	}
}

// OrReduce combines every rank's flag with logical OR and delivers the
// result to all ranks using the dissemination pattern (ceil(log2 P) rounds,
// the same schedule as Barrier). Because no rank can exit before every rank
// has entered, OrReduce synchronizes like a barrier — callers can fold a
// continuation-flag exchange and a closing barrier into one step, which is
// exactly what the one-sided exchange does between streaming sub-rounds.
func OrReduce(c *Comm, me fabric.Rank, flag bool) bool {
	n := c.n
	for k := 1; k < n; k <<= 1 {
		to := fabric.Rank((int(me) + k) % n)
		from := fabric.Rank((int(me) - k + n) % n)
		sendVal(c, me, to, flag)
		flag = recvVal[bool](c, from, me) || flag
	}
	return flag
}

// Bcast distributes root's value to every rank and returns it. Non-root
// callers pass the zero value; all callers receive root's value. Binomial
// tree, ceil(log2 P) depth.
func Bcast[T any](c *Comm, me, root fabric.Rank, val T) T {
	n := c.n
	rel := (int(me) - int(root) + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := fabric.Rank((rel - mask + int(root)) % n)
			val = recvVal[T](c, parent, me)
			break
		}
		mask <<= 1
	}
	// Forward to children: exactly the masks below the one received on.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			child := fabric.Rank((rel + mask + int(root)) % n)
			sendVal(c, me, child, val)
		}
	}
	return val
}

// Reduce combines every rank's val with op and delivers the result to root;
// other ranks receive the zero value. op must be associative. Binomial tree.
func Reduce[T any](c *Comm, me, root fabric.Rank, val T, op func(T, T) T) T {
	n := c.n
	rel := (int(me) - int(root) + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := fabric.Rank((rel - mask + int(root)) % n)
			sendVal(c, me, parent, val)
			var zero T
			return zero
		}
		if rel+mask < n {
			child := fabric.Rank((rel + mask + int(root)) % n)
			val = op(val, recvVal[T](c, child, me))
		}
	}
	return val
}

// Allreduce combines every rank's val with op and delivers the result to all
// ranks (reduce-to-root followed by broadcast; 2·ceil(log2 P) depth).
func Allreduce[T any](c *Comm, me fabric.Rank, val T, op func(T, T) T) T {
	red := Reduce(c, me, 0, val, op)
	return Bcast(c, me, 0, red)
}

// Gather collects every rank's value at root, indexed by rank. Non-root
// callers receive nil.
func Gather[T any](c *Comm, me, root fabric.Rank, val T) []T {
	if me != root {
		sendVal(c, me, root, val)
		c.Barrier(me)
		return nil
	}
	out := make([]T, c.n)
	for r := 0; r < c.n; r++ {
		if fabric.Rank(r) == root {
			out[r] = val
			continue
		}
		out[r] = recvVal[T](c, fabric.Rank(r), me)
	}
	c.Barrier(me)
	return out
}

// Allgather collects every rank's value at every rank, indexed by rank.
func Allgather[T any](c *Comm, me fabric.Rank, val T) []T {
	g := Gather(c, me, 0, val)
	return Bcast(c, me, 0, g)
}

// Alltoall performs a personalized all-to-all exchange: out[d] is sent to
// rank d, and the returned slice holds in[s] = the value rank s sent to the
// caller. len(out) must equal the communicator size.
func Alltoall[T any](c *Comm, me fabric.Rank, out []T) []T {
	if len(out) != c.n {
		panic(fmt.Sprintf("collective: Alltoall with %d slots on a %d-rank comm", len(out), c.n))
	}
	in := make([]T, c.n)
	for d := 0; d < c.n; d++ {
		if fabric.Rank(d) == me {
			in[d] = out[d]
			continue
		}
		sendVal(c, me, fabric.Rank(d), out[d])
	}
	for s := 0; s < c.n; s++ {
		if fabric.Rank(s) == me {
			continue
		}
		in[s] = recvVal[T](c, fabric.Rank(s), me)
	}
	c.Barrier(me)
	return in
}

// Exscan computes the exclusive prefix reduction of val across ranks in rank
// order: rank 0 receives the zero value, rank i receives op(val_0, …,
// val_{i-1}). Used to assign disjoint global ID ranges during bulk loading.
func Exscan[T any](c *Comm, me fabric.Rank, val T, op func(T, T) T) T {
	all := Allgather(c, me, val)
	var acc T
	for r := 0; r < int(me); r++ {
		if r == 0 {
			acc = all[0]
			continue
		}
		acc = op(acc, all[r])
	}
	return acc
}
