// Package collective implements the collective communication operations that
// GDI-RMA uses for collective transactions, bulk loading, and OLAP queries
// (§3.2, §5.1 of the paper): Barrier, Bcast, Reduce, Allreduce, Gather,
// Allgather, Alltoall, and Exscan.
//
// All operations have the MPI collective contract: every rank of the
// communicator must call the routine, with matching arguments where the
// operation requires it. The implementations use the classic O(log P)-round
// algorithms (dissemination barrier, binomial trees, recursive structures)
// over per-rank-pair mailboxes, so both the semantics and the round
// complexity match what a tuned MPI library provides.
package collective

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/rma"
)

// Comm is a communicator over all ranks of a fabric. Collectives on a Comm
// must be issued in the same order by every rank; concurrent use of one Comm
// by independent collective sequences is not allowed (create one Comm per
// sequence instead), mirroring MPI communicator semantics.
type Comm struct {
	f *rma.Fabric
	n int
	// mail[src][dst] carries messages from src to dst. Capacity 1 suffices:
	// within any single collective, each directed pair exchanges at most one
	// in-flight message per algorithm round, and rounds are self-synchronizing.
	mail [][]chan any
}

// New creates a communicator spanning all ranks of f.
func New(f *rma.Fabric) *Comm {
	n := f.Size()
	c := &Comm{f: f, n: n, mail: make([][]chan any, n)}
	for s := 0; s < n; s++ {
		c.mail[s] = make([]chan any, n)
		for d := 0; d < n; d++ {
			c.mail[s][d] = make(chan any, 2)
		}
	}
	return c
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.n }

func (c *Comm) send(from, to rma.Rank, v any) { c.mail[from][to] <- v }
func (c *Comm) recv(from, to rma.Rank) any    { return <-c.mail[from][to] }

// Barrier blocks until every rank has entered it. It uses the dissemination
// algorithm: ceil(log2 P) rounds, each rank sending one token per round.
func (c *Comm) Barrier(me rma.Rank) {
	n := c.n
	for k := 1; k < n; k <<= 1 {
		to := rma.Rank((int(me) + k) % n)
		from := rma.Rank((int(me) - k + n) % n)
		c.send(me, to, nil)
		c.recv(from, me)
	}
}

// OrReduce combines every rank's flag with logical OR and delivers the
// result to all ranks using the dissemination pattern (ceil(log2 P) rounds,
// the same schedule as Barrier). Because no rank can exit before every rank
// has entered, OrReduce synchronizes like a barrier — callers can fold a
// continuation-flag exchange and a closing barrier into one step, which is
// exactly what the one-sided exchange does between streaming sub-rounds.
func OrReduce(c *Comm, me rma.Rank, flag bool) bool {
	n := c.n
	for k := 1; k < n; k <<= 1 {
		to := rma.Rank((int(me) + k) % n)
		from := rma.Rank((int(me) - k + n) % n)
		c.send(me, to, flag)
		flag = c.recv(from, me).(bool) || flag
	}
	return flag
}

// Bcast distributes root's value to every rank and returns it. Non-root
// callers pass the zero value; all callers receive root's value. Binomial
// tree, ceil(log2 P) depth.
func Bcast[T any](c *Comm, me, root rma.Rank, val T) T {
	n := c.n
	rel := (int(me) - int(root) + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := rma.Rank((rel - mask + int(root)) % n)
			val = c.recv(parent, me).(T)
			break
		}
		mask <<= 1
	}
	// Forward to children: exactly the masks below the one received on.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			child := rma.Rank((rel + mask + int(root)) % n)
			c.send(me, child, val)
		}
	}
	return val
}

// Reduce combines every rank's val with op and delivers the result to root;
// other ranks receive the zero value. op must be associative. Binomial tree.
func Reduce[T any](c *Comm, me, root rma.Rank, val T, op func(T, T) T) T {
	n := c.n
	rel := (int(me) - int(root) + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := rma.Rank((rel - mask + int(root)) % n)
			c.send(me, parent, val)
			var zero T
			return zero
		}
		if rel+mask < n {
			child := rma.Rank((rel + mask + int(root)) % n)
			val = op(val, c.recv(child, me).(T))
		}
	}
	return val
}

// Allreduce combines every rank's val with op and delivers the result to all
// ranks (reduce-to-root followed by broadcast; 2·ceil(log2 P) depth).
func Allreduce[T any](c *Comm, me rma.Rank, val T, op func(T, T) T) T {
	red := Reduce(c, me, 0, val, op)
	return Bcast(c, me, 0, red)
}

// Gather collects every rank's value at root, indexed by rank. Non-root
// callers receive nil.
func Gather[T any](c *Comm, me, root rma.Rank, val T) []T {
	if me != root {
		c.send(me, root, val)
		c.Barrier(me)
		return nil
	}
	out := make([]T, c.n)
	for r := 0; r < c.n; r++ {
		if rma.Rank(r) == root {
			out[r] = val
			continue
		}
		out[r] = c.recv(rma.Rank(r), me).(T)
	}
	c.Barrier(me)
	return out
}

// Allgather collects every rank's value at every rank, indexed by rank.
func Allgather[T any](c *Comm, me rma.Rank, val T) []T {
	g := Gather(c, me, 0, val)
	return Bcast(c, me, 0, g)
}

// Alltoall performs a personalized all-to-all exchange: out[d] is sent to
// rank d, and the returned slice holds in[s] = the value rank s sent to the
// caller. len(out) must equal the communicator size.
func Alltoall[T any](c *Comm, me rma.Rank, out []T) []T {
	if len(out) != c.n {
		panic(fmt.Sprintf("collective: Alltoall with %d slots on a %d-rank comm", len(out), c.n))
	}
	in := make([]T, c.n)
	for d := 0; d < c.n; d++ {
		if rma.Rank(d) == me {
			in[d] = out[d]
			continue
		}
		c.send(me, rma.Rank(d), out[d])
	}
	for s := 0; s < c.n; s++ {
		if rma.Rank(s) == me {
			continue
		}
		in[s] = c.recv(rma.Rank(s), me).(T)
	}
	c.Barrier(me)
	return in
}

// Exscan computes the exclusive prefix reduction of val across ranks in rank
// order: rank 0 receives the zero value, rank i receives op(val_0, …,
// val_{i-1}). Used to assign disjoint global ID ranges during bulk loading.
func Exscan[T any](c *Comm, me rma.Rank, val T, op func(T, T) T) T {
	all := Allgather(c, me, val)
	var acc T
	for r := 0; r < int(me); r++ {
		if r == 0 {
			acc = all[0]
			continue
		}
		acc = op(acc, all[r])
	}
	return acc
}
