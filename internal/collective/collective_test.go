package collective

import (
	"sync/atomic"
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

// sizes exercises non-powers of two, which stress the tree algorithms.
var sizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range sizes {
		f := rma.New(n)
		c := New(f)
		var phase atomic.Int64
		f.Run(func(r rma.Rank) {
			phase.Add(1)
			c.Barrier(r)
			// After the barrier every rank must observe all n arrivals.
			if got := phase.Load(); got != int64(n) {
				t.Errorf("n=%d rank %d: saw %d arrivals after barrier", n, r, got)
			}
			c.Barrier(r)
		})
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for _, n := range sizes {
		f := rma.New(n)
		c := New(f)
		for root := 0; root < n; root++ {
			f.Run(func(r rma.Rank) {
				val := ""
				if r == rma.Rank(root) {
					val = "payload"
				}
				got := Bcast(c, r, rma.Rank(root), val)
				if got != "payload" {
					t.Errorf("n=%d root=%d rank=%d: Bcast = %q", n, root, r, got)
				}
				c.Barrier(r)
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	add := func(a, b int) int { return a + b }
	for _, n := range sizes {
		f := rma.New(n)
		c := New(f)
		want := n * (n - 1) / 2
		for root := 0; root < n; root += max(1, n/3) {
			f.Run(func(r rma.Rank) {
				got := Reduce(c, r, rma.Rank(root), int(r), add)
				if r == rma.Rank(root) && got != want {
					t.Errorf("n=%d root=%d: Reduce = %d, want %d", n, root, got, want)
				}
				if r != rma.Rank(root) && got != 0 {
					t.Errorf("n=%d root=%d rank=%d: non-root Reduce = %d, want 0", n, root, r, got)
				}
				c.Barrier(r)
			})
		}
	}
}

func TestAllreduceMax(t *testing.T) {
	for _, n := range sizes {
		f := rma.New(n)
		c := New(f)
		f.Run(func(r rma.Rank) {
			got := Allreduce(c, r, int(r)*3, func(a, b int) int { return max(a, b) })
			if want := (n - 1) * 3; got != want {
				t.Errorf("n=%d rank=%d: Allreduce = %d, want %d", n, r, got, want)
			}
		})
	}
}

func TestGatherAndAllgather(t *testing.T) {
	for _, n := range sizes {
		f := rma.New(n)
		c := New(f)
		f.Run(func(r rma.Rank) {
			g := Gather(c, r, 0, int(r)+100)
			if r == 0 {
				for i, v := range g {
					if v != i+100 {
						t.Errorf("n=%d: Gather[%d] = %d, want %d", n, i, v, i+100)
					}
				}
			} else if g != nil {
				t.Errorf("n=%d rank=%d: non-root Gather = %v, want nil", n, r, g)
			}
			ag := Allgather(c, r, int(r)*2)
			for i, v := range ag {
				if v != i*2 {
					t.Errorf("n=%d rank=%d: Allgather[%d] = %d, want %d", n, r, i, v, i*2)
				}
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range sizes {
		f := rma.New(n)
		c := New(f)
		f.Run(func(r rma.Rank) {
			out := make([]int, n)
			for d := range out {
				out[d] = int(r)*1000 + d // unique per (src, dst)
			}
			in := Alltoall(c, r, out)
			for s, v := range in {
				if want := s*1000 + int(r); v != want {
					t.Errorf("n=%d rank=%d: in[%d] = %d, want %d", n, r, s, v, want)
				}
			}
		})
	}
}

func TestAlltoallSlicePayloads(t *testing.T) {
	f := rma.New(4)
	c := New(f)
	f.Run(func(r rma.Rank) {
		out := make([][]uint64, 4)
		for d := range out {
			out[d] = []uint64{uint64(r), uint64(d)}
		}
		in := Alltoall(c, r, out)
		for s := range in {
			if len(in[s]) != 2 || in[s][0] != uint64(s) || in[s][1] != uint64(r) {
				t.Errorf("rank=%d: in[%d] = %v", r, s, in[s])
			}
		}
	})
}

func TestExscan(t *testing.T) {
	for _, n := range sizes {
		f := rma.New(n)
		c := New(f)
		f.Run(func(r rma.Rank) {
			got := Exscan(c, r, int(r)+1, func(a, b int) int { return a + b })
			want := 0
			for i := 0; i < int(r); i++ {
				want += i + 1
			}
			if got != want {
				t.Errorf("n=%d rank=%d: Exscan = %d, want %d", n, r, got, want)
			}
		})
	}
}

func TestAlltoallSizeMismatchPanics(t *testing.T) {
	f := rma.New(2)
	c := New(f)
	f.Run(func(r rma.Rank) {
		if r != 0 {
			// Rank 1 matches the panicking rank with a legal call pattern:
			// nothing — it must not block the test; rank 0 panics before
			// communicating.
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("Alltoall with wrong slot count did not panic")
			}
		}()
		Alltoall(c, r, make([]int, 3))
	})
}

func TestRepeatedCollectivesInterleave(t *testing.T) {
	// A realistic OLAP loop: barrier + allreduce + alltoall repeated many
	// times must not deadlock or cross-talk between iterations.
	f := rma.New(6)
	c := New(f)
	f.Run(func(r rma.Rank) {
		for iter := 0; iter < 50; iter++ {
			c.Barrier(r)
			sum := Allreduce(c, r, iter, func(a, b int) int { return a + b })
			if sum != iter*6 {
				t.Errorf("iter %d rank %d: Allreduce = %d, want %d", iter, r, sum, iter*6)
				return
			}
			out := make([]int, 6)
			for d := range out {
				out[d] = iter
			}
			in := Alltoall(c, r, out)
			for _, v := range in {
				if v != iter {
					t.Errorf("iter %d rank %d: Alltoall cross-talk: %v", iter, r, in)
					return
				}
			}
		}
	})
}
