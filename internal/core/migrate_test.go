package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// newMigrationEngine builds an engine shaped for migration tests: small
// blocks so payload vertices span several of them, generous lock budgets.
func newMigrationEngine(t *testing.T, ranks int) *Engine {
	t.Helper()
	return NewEngine(rma.New(ranks), Config{
		BlockSize:             64,
		BlocksPerRank:         1 << 12,
		LockTries:             256,
		RebalanceHeatTracking: true,
	})
}

// moveOf resolves appID's current placement and plans a move to dest.
func moveOf(t *testing.T, e *Engine, appID uint64, dest rma.Rank) MigrationMove {
	t.Helper()
	val, ok := e.index.Lookup(0, appID)
	if !ok {
		t.Fatalf("vertex %d not in the index", appID)
	}
	return MigrationMove{App: appID, Old: rma.DPtr(val), Dest: dest}
}

func mustMigrate(t *testing.T, e *Engine, appID uint64, dest rma.Rank) rma.DPtr {
	t.Helper()
	n, err := e.MigrateVertices(dest, []MigrationMove{moveOf(t, e, appID, dest)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("migrated %d vertices, want 1", n)
	}
	val, ok := e.index.Lookup(0, appID)
	if !ok {
		t.Fatalf("vertex %d vanished from the index after migration", appID)
	}
	dp := rma.DPtr(val)
	if dp.Rank() != dest {
		t.Fatalf("vertex %d landed on rank %d, want %d", appID, dp.Rank(), dest)
	}
	return dp
}

func readPayload(t *testing.T, e *Engine, r rma.Rank, dp rma.DPtr, pt lpg.PTypeID) []byte {
	t.Helper()
	tx := e.StartLocal(r, ReadOnly)
	defer tx.Abort()
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := h.Property(pt)
	if !ok {
		t.Fatal("payload missing")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMigrateVertexBasic drives one live migration end to end: the DHT entry
// swings to the new rank, the explicit indexes move, the payload is
// bit-identical at the new placement, and a stale DPtr still resolves by
// chasing the forwarding stub.
func TestMigrateVertexBasic(t *testing.T) {
	e := newMigrationEngine(t, 2)
	pt := payloadPType(t, e)
	old := seedPayloadVertex(t, e, 1, pt, 16) // 128 B payload: multi-block at 64 B
	if old.Rank() != 1 {
		t.Fatalf("vertex 1 seeded on rank %d, want 1", old.Rank())
	}
	pre := readPayload(t, e, 0, old, pt)

	newDp := mustMigrate(t, e, 1, 0)
	if newDp == old {
		t.Fatal("migration did not change the primary")
	}
	if e.Migrations() != 1 {
		t.Fatalf("Migrations = %d, want 1", e.Migrations())
	}
	if e.LocalVertexCount(0) != 1 || e.LocalVertexCount(1) != 0 {
		t.Fatalf("local index shards = %d/%d, want 1/0", e.LocalVertexCount(0), e.LocalVertexCount(1))
	}

	// Fresh placement, bit-identical content.
	if got := readPayload(t, e, 1, newDp, pt); !bytes.Equal(got, pre) {
		t.Fatalf("payload changed across migration:\n got %v\nwant %v", got, pre)
	}
	// The stale DPtr chases the stub to the same state.
	fwdBefore := e.ForwardedReads()
	tx := e.StartLocal(1, ReadOnly)
	h, err := tx.AssociateVertex(old)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != newDp {
		t.Fatalf("stale DPtr resolved to %v, want %v", h.ID(), newDp)
	}
	if v, _ := h.Property(pt); !bytes.Equal(v, pre) {
		t.Fatal("stale-DPtr read returned different bytes")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.ForwardedReads() <= fwdBefore {
		t.Fatal("stub chase not counted in ForwardedReads")
	}
}

// TestMigrateBackReusesHomeBlock is the ABA case: migrating home again must
// reuse the original primary block, restoring the vertex's first DPtr.
func TestMigrateBackReusesHomeBlock(t *testing.T) {
	e := newMigrationEngine(t, 2)
	pt := payloadPType(t, e)
	old := seedPayloadVertex(t, e, 1, pt, 16)
	pre := readPayload(t, e, 0, old, pt)

	away := mustMigrate(t, e, 1, 0)
	back := mustMigrate(t, e, 1, 1)
	if back != old {
		t.Fatalf("migrate-back landed at %v, want the original home %v", back, old)
	}
	if got := readPayload(t, e, 0, back, pt); !bytes.Equal(got, pre) {
		t.Fatal("payload changed across the round trip")
	}
	// The rank-0 home now forwards; the vertex remembers it for reuse.
	tx := e.StartLocal(0, ReadOnly)
	h, err := tx.AssociateVertex(away)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != old {
		t.Fatalf("stale rank-0 DPtr resolved to %v, want %v", h.ID(), old)
	}
	tx.Abort()
}

// TestMigrateVertexWithEdges checks that traversals and deletions keep
// working when edge records carry pre-migration identities.
func TestMigrateVertexWithEdges(t *testing.T) {
	e := newMigrationEngine(t, 2)
	pt := payloadPType(t, e)
	a := seedPayloadVertex(t, e, 0, pt, 4)
	b := seedPayloadVertex(t, e, 1, pt, 4)

	setup := e.StartLocal(0, ReadWrite)
	if _, err := setup.CreateEdge(a, b, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	newB := mustMigrate(t, e, 1, 0)

	// Traversal from a reaches b through the stale record + stub chase.
	tx := e.StartLocal(1, ReadOnly)
	ha, err := tx.AssociateVertex(a)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := ha.Neighbors(MaskAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 1 {
		t.Fatalf("a has %d neighbors, want 1", len(nbrs))
	}
	hb, err := tx.AssociateVertex(nbrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if hb.ID() != newB || hb.AppID() != 1 {
		t.Fatalf("neighbor resolved to %v (app %d), want %v (app 1)", hb.ID(), hb.AppID(), newB)
	}
	tx.Abort()

	// Deleting the migrated vertex removes the stale sibling record at a.
	del := e.StartLocal(0, ReadWrite)
	if err := del.DeleteVertex(newB); err != nil {
		t.Fatal(err)
	}
	if err := del.Commit(); err != nil {
		t.Fatal(err)
	}
	check := e.StartLocal(0, ReadOnly)
	ha2, err := check.AssociateVertex(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := ha2.Degree(); d != 0 {
		t.Fatalf("a still has %d edge records after deleting its migrated neighbor", d)
	}
	check.Abort()
	if _, err := check2Lookup(e, 1); err == nil {
		t.Fatal("deleted migrated vertex still resolves")
	}
}

func check2Lookup(e *Engine, appID uint64) (rma.DPtr, error) {
	tx := e.StartLocal(0, ReadOnly)
	defer tx.Abort()
	return tx.TranslateVertexID(appID)
}

// TestMigrateDeletedVertexFreesStubs: deleting a migrated vertex retires its
// forwarding stubs — the pool returns to its pre-create level and the stale
// DPtr reports not-found instead of resurrecting anything.
func TestMigrateDeletedVertexFreesStubs(t *testing.T) {
	for _, scalar := range []bool{false, true} {
		t.Run(fmt.Sprintf("scalarCommit=%v", scalar), func(t *testing.T) {
			e := NewEngine(rma.New(2), Config{
				BlockSize: 64, BlocksPerRank: 1 << 12, LockTries: 256,
				ScalarCommit: scalar, RebalanceHeatTracking: true,
			})
			pt := payloadPType(t, e)
			free0, free1 := e.FreeBlocks(0), e.FreeBlocks(1)
			old := seedPayloadVertex(t, e, 1, pt, 16)
			newDp := mustMigrate(t, e, 1, 0)

			del := e.StartLocal(0, ReadWrite)
			if err := del.DeleteVertex(newDp); err != nil {
				t.Fatal(err)
			}
			if err := del.Commit(); err != nil {
				t.Fatal(err)
			}
			if got0, got1 := e.FreeBlocks(0), e.FreeBlocks(1); got0 != free0 || got1 != free1 {
				t.Fatalf("pool leaked: free blocks %d/%d, want %d/%d", got0, got1, free0, free1)
			}
			probe := e.StartLocal(0, ReadOnly)
			if _, err := probe.AssociateVertex(old); !errors.Is(err, ErrNotFound) {
				t.Fatalf("stale DPtr of deleted vertex: err = %v, want ErrNotFound", err)
			}
			probe.Abort()
		})
	}
}

// TestMigrateSkipsContendedVertex: a vertex pinned by a reader's lock is
// skipped, not migrated and not an error.
func TestMigrateSkipsContendedVertex(t *testing.T) {
	e := newMigrationEngine(t, 2)
	pt := payloadPType(t, e)
	dp := seedPayloadVertex(t, e, 1, pt, 4)

	reader := e.StartLocal(0, ReadOnly)
	if _, err := reader.AssociateVertex(dp); err != nil {
		t.Fatal(err)
	}
	n, err := e.MigrateVertices(0, []MigrationMove{moveOf(t, e, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("migrated %d vertices under a held read lock, want 0", n)
	}
	if e.MigrationSkips() == 0 {
		t.Fatal("skip not counted")
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	// With the lock gone the same move succeeds.
	mustMigrate(t, e, 1, 0)
}

// TestMigrateStalePlanSkips: a plan whose Old pointer no longer matches the
// placement (the vertex moved first) is skipped cleanly.
func TestMigrateStalePlanSkips(t *testing.T) {
	e := newMigrationEngine(t, 3)
	pt := payloadPType(t, e)
	seedPayloadVertex(t, e, 1, pt, 4)
	stale := moveOf(t, e, 1, 2) // captured before the move below
	mustMigrate(t, e, 1, 0)

	n, err := e.MigrateVertices(2, []MigrationMove{stale})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("stale plan migrated a vertex")
	}
	// Placement unchanged by the stale apply.
	val, _ := e.index.Lookup(0, 1)
	if rma.DPtr(val).Rank() != 0 {
		t.Fatalf("vertex ended on rank %d, want 0", rma.DPtr(val).Rank())
	}
}

// TestRebalanceMovesHotVerticesToAccessor: the collective folds heat, plans
// greedily, and migrates each hot vertex onto its dominant accessor.
func TestRebalanceMovesHotVerticesToAccessor(t *testing.T) {
	const ranks = 4
	e := NewEngine(rma.New(ranks), Config{
		BlockSize: 64, BlocksPerRank: 1 << 12, LockTries: 256,
		RebalanceHeatTracking: true, RebalanceMinHeat: 2, RebalanceTopK: 16,
	})
	pt := payloadPType(t, e)
	// Vertices 0..7 land round-robin (OwnerOf = app % ranks).
	var dps []rma.DPtr
	for app := uint64(0); app < 8; app++ {
		dps = append(dps, seedPayloadVertex(t, e, app, pt, 4))
	}
	// Rank 3 hammers vertices 0 and 1 (owned by ranks 0 and 1); everything
	// else sees one cold read from its owner.
	for i := 0; i < 8; i++ {
		tx := e.StartLocal(3, ReadOnly)
		for _, dp := range dps[:2] {
			if _, err := tx.AssociateVertex(dp); err != nil {
				t.Fatal(err)
			}
		}
		tx.Abort()
	}
	var firstErr error
	stats := make([]RebalanceStats, ranks)
	e.fab.Run(func(r rma.Rank) {
		s, err := e.Rebalance(r)
		stats[r] = s
		if err != nil && firstErr == nil {
			firstErr = err
		}
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if stats[0].Planned == 0 {
		t.Fatal("rebalance planned nothing")
	}
	for app := uint64(0); app < 2; app++ {
		val, ok := e.index.Lookup(0, app)
		if !ok {
			t.Fatalf("vertex %d vanished", app)
		}
		if got := rma.DPtr(val).Rank(); got != 3 {
			t.Fatalf("hot vertex %d on rank %d after rebalance, want 3", app, got)
		}
	}
	// Heat reset: a second round with no new traffic plans nothing.
	e.fab.Run(func(r rma.Rank) {
		s, err := e.Rebalance(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if r == 0 && s.Planned != 0 {
			t.Errorf("second round planned %d moves from stale heat", s.Planned)
		}
	})
	if firstErr != nil {
		t.Fatal(firstErr)
	}
}

// TestStaleAndFreshDPtrInOneBatch: one association batch naming the same
// migrated vertex under both its stale and current DPtr (stale first, so the
// chase re-queues at a primary whose direct fetch resolves later in the same
// generation) must converge on one shared state, hold exactly one read lock,
// and leave the lock word clean after commit.
func TestStaleAndFreshDPtrInOneBatch(t *testing.T) {
	e := newMigrationEngine(t, 2)
	pt := payloadPType(t, e)
	old := seedPayloadVertex(t, e, 1, pt, 16)
	fresh := mustMigrate(t, e, 1, 0)

	tx := e.StartLocal(1, ReadOnly)
	hs, err := tx.AssociateVertices([]rma.DPtr{old, fresh})
	if err != nil {
		t.Fatal(err)
	}
	if hs[0] == nil || hs[1] == nil {
		t.Fatal("batch dropped a handle")
	}
	if hs[0].ID() != fresh || hs[1].ID() != fresh {
		t.Fatalf("handles resolved to %v/%v, want both %v", hs[0].ID(), hs[1].ID(), fresh)
	}
	if hs[0].st != hs[1].st {
		t.Fatal("stale and fresh DPtr forked the per-transaction state")
	}
	win, target, idx := e.Store().LockWord(fresh)
	if readers := locks.Readers(win.Load(1, target, idx)); readers != 1 {
		t.Fatalf("vertex holds %d read locks inside the transaction, want 1", readers)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if readers := locks.Readers(win.Load(1, target, idx)); readers != 0 {
		t.Fatalf("lock word keeps %d phantom readers after commit", readers)
	}
	// The vertex is still writable (no leaked lock blocks the upgrade).
	w := e.StartLocal(0, ReadWrite)
	wh, err := w.AssociateVertex(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.SetProperty(pt, payloadPattern(1, 16)); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("vertex permanently read-locked after the mixed batch: %v", err)
	}
}

// TestMigrationPlanRoundTrip pins the wire format.
func TestMigrationPlanRoundTrip(t *testing.T) {
	plans := [][]MigrationMove{
		nil,
		{{App: 1, Old: rma.MakeDPtr(1, 17), Dest: 0}},
		{{App: 0, Old: rma.MakeDPtr(0, 1), Dest: 3}, {App: ^uint64(0), Old: rma.MakeDPtr(65535, 1<<48-1), Dest: 65535}},
	}
	for _, p := range plans {
		buf := EncodeMigrationPlan(p)
		got, err := DecodeMigrationPlan(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(p) {
			t.Fatalf("decoded %d moves, want %d", len(got), len(p))
		}
		for i := range p {
			if got[i] != p[i] {
				t.Fatalf("move %d: got %+v, want %+v", i, got[i], p[i])
			}
		}
		if again := EncodeMigrationPlan(got); !bytes.Equal(again, buf) {
			t.Fatal("re-encode not canonical")
		}
	}
	for _, bad := range [][]byte{nil, []byte("GDM"), []byte("XXXX\x01\x00\x00\x00\x00"), append(EncodeMigrationPlan(plans[1]), 0)} {
		if _, err := DecodeMigrationPlan(bad); err == nil {
			t.Fatalf("decode accepted %v", bad)
		}
	}
}

// TestRebalanceIgnoresStaleOwnerHeat is the regression test for the
// heat-attribution skew: heat recorded while a vertex lived on rank A must
// not survive its migration away — before owner-tagged heat cells, the stale
// samples dominated the plan and dragged the vertex straight back to the
// rank it had just vacated.
func TestRebalanceIgnoresStaleOwnerHeat(t *testing.T) {
	e := newMigrationEngine(t, 3)
	pt := payloadPType(t, e)
	old := seedPayloadVertex(t, e, 1, pt, 4)
	owner := old.Rank()

	// The owner rank hammers its own vertex: heat lands on the owner's
	// shard, tagged with the current placement.
	for i := 0; i < 8; i++ {
		readPayload(t, e, owner, old, pt)
	}
	if got := e.HeatOf(owner, 1); got != 8 {
		t.Fatalf("owner heat = %d, want 8", got)
	}

	// The vertex moves to a different rank (an operator migration, not a
	// Rebalance round — so no heat reset happens).
	dest := rma.Rank((int(owner) + 1) % 3)
	mustMigrate(t, e, 1, dest)

	gather := func() [][]HeatSample {
		tops := make([][]HeatSample, 3)
		for r := range tops {
			tops[r] = e.topHeat(rma.Rank(r), 100)
		}
		return tops
	}

	// The stale owner-era heat must not produce a move: every sample was
	// recorded against the vacated placement. The old code planned
	// App 1 → owner here, bouncing the vertex back.
	for _, mv := range e.planRebalance(gather()) {
		if mv.App == 1 {
			t.Fatalf("stale heat produced move %+v back toward the vacated rank", mv)
		}
	}

	// Fresh traffic against the new placement still drives planning: an
	// accessor rank distinct from the new owner reads the vertex more than
	// anyone else, and the plan moves the vertex to it.
	acc := rma.Rank((int(dest) + 1) % 3)
	val, ok := e.index.Lookup(0, 1)
	if !ok {
		t.Fatal("vertex 1 missing from the index")
	}
	for i := 0; i < 12; i++ {
		readPayload(t, e, acc, rma.DPtr(val), pt)
	}
	var planned *MigrationMove
	for _, mv := range e.planRebalance(gather()) {
		if mv.App == 1 {
			planned = &mv
			break
		}
	}
	if planned == nil || planned.Dest != acc {
		t.Fatalf("fresh post-move heat planned %+v, want a move of App 1 to rank %d", planned, acc)
	}

	// An access chasing the forwarding stub is attributed to the post-chase
	// owner, so it counts as current-era heat, not stale heat.
	readPayload(t, e, acc, old, pt)
	tops := gather()
	for _, s := range tops[acc] {
		if s.App == 1 && s.Owner != dest {
			t.Fatalf("stub-chased access recorded owner %d, want post-chase owner %d", s.Owner, dest)
		}
	}
}
