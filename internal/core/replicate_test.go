package core

import (
	"testing"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// newReplicaEngine builds an optimistic-read engine over a killable simulator
// fabric and returns both.
func newReplicaEngine(t *testing.T, ranks int, scalarCommit bool) (*rma.Fabric, *Engine) {
	t.Helper()
	f := rma.New(ranks)
	e := NewEngine(f, Config{
		BlockSize:       64,
		BlocksPerRank:   1 << 12,
		LockTries:       256,
		ScalarCommit:    scalarCommit,
		OptimisticReads: true,
	})
	return f, e
}

// otherRank picks a rank different from dp's owner.
func otherRank(dp rma.DPtr, ranks int) rma.Rank {
	return rma.Rank((int(dp.Rank()) + 1) % ranks)
}

// readSeq performs one optimistic read of app from rank r and returns the
// decoded sequence word, failing the test on a torn payload or a validation
// abort.
func readSeq(t *testing.T, e *Engine, r rma.Rank, app uint64, pt lpg.PTypeID) uint64 {
	t.Helper()
	tx := e.StartLocal(r, ReadOnly)
	dp, err := tx.TranslateVertexID(app)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := h.Property(pt)
	if !ok {
		t.Fatal("payload missing")
	}
	seq, torn := decodePattern(p)
	if torn {
		t.Fatalf("torn payload on rank %d", r)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return seq
}

// writeSeq commits one same-size payload rewrite of app from rank r.
func writeSeq(t *testing.T, e *Engine, r rma.Rank, app, seq uint64, pt lpg.PTypeID, words int) {
	t.Helper()
	tx := e.StartLocal(r, ReadWrite)
	dp, err := tx.TranslateVertexID(app)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetProperty(pt, payloadPattern(seq, words)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicateSeedsFollowerAndServesReads: seeding installs one follower
// copy, and an optimistic read from the follower rank is served locally —
// the replica-read counter moves — while still validating at commit.
func TestReplicateSeedsFollowerAndServesReads(t *testing.T) {
	_, e := newReplicaEngine(t, 2, false)
	pt := payloadPType(t, e)
	dp := seedPayloadVertex(t, e, 1, pt, 8)
	fr := otherRank(dp, 2)

	if n := e.ReplicateFromRank(fr, dp.Rank(), 2); n != 1 {
		t.Fatalf("ReplicateFromRank seeded %d copies, want 1", n)
	}
	if got := e.ReplicaCount(fr); got != 1 {
		t.Fatalf("ReplicaCount(%d) = %d, want 1", fr, got)
	}
	if got := e.Reseeds(); got != 1 {
		t.Fatalf("Reseeds = %d, want 1", got)
	}

	base := e.ReplicaReads()
	if seq := readSeq(t, e, fr, 1, pt); seq != 0 {
		t.Fatalf("replica read seq = %d, want 0", seq)
	}
	if got := e.ReplicaReads(); got != base+1 {
		t.Fatalf("ReplicaReads = %d after a follower-rank read, want %d", got, base+1)
	}
	// Re-seeding the same vertex from the same rank is a no-op.
	if n := e.ReplicateFromRank(fr, dp.Rank(), 2); n != 0 {
		t.Fatalf("duplicate ReplicateFromRank seeded %d copies, want 0", n)
	}
}

// TestReplicatedCommitFansOut: a same-shape rewrite reaches the follower
// inside the commit, so the next replica-served read returns the new value
// and still passes commit-time validation against the primary's word.
func TestReplicatedCommitFansOut(t *testing.T) {
	_, e := newReplicaEngine(t, 2, false)
	pt := payloadPType(t, e)
	const words = 8
	dp := seedPayloadVertex(t, e, 1, pt, words)
	fr := otherRank(dp, 2)
	if n := e.ReplicateFromRank(fr, dp.Rank(), 2); n != 1 {
		t.Fatalf("seeded %d copies, want 1", n)
	}

	for seq := uint64(1); seq <= 3; seq++ {
		writeSeq(t, e, dp.Rank(), 1, seq, pt, words)
		base := e.ReplicaReads()
		if got := readSeq(t, e, fr, 1, pt); got != seq {
			t.Fatalf("replica read after commit %d returned %d", seq, got)
		}
		if e.ReplicaReads() != base+1 {
			t.Fatal("read after fan-out was not served by the follower copy")
		}
	}
	if got := e.ReplicaCount(fr); got != 1 {
		t.Fatalf("follower dropped across same-shape commits: ReplicaCount = %d", got)
	}
	if got := e.ReplicaDrops(); got != 0 {
		t.Fatalf("ReplicaDrops = %d across same-shape commits, want 0", got)
	}
}

// TestReshapeDropsFollowers: a rewrite that changes the holder's block count
// retires the follower groups instead of resizing them under commit latency;
// reads fall back to the primary and stay correct.
func TestReshapeDropsFollowers(t *testing.T) {
	_, e := newReplicaEngine(t, 2, false)
	pt := payloadPType(t, e)
	dp := seedPayloadVertex(t, e, 1, pt, 8)
	fr := otherRank(dp, 2)
	if n := e.ReplicateFromRank(fr, dp.Rank(), 2); n != 1 {
		t.Fatalf("seeded %d copies, want 1", n)
	}

	writeSeq(t, e, dp.Rank(), 1, 9, pt, 64) // 8→64 words: more blocks
	if got := e.ReplicaCount(fr); got != 0 {
		t.Fatalf("ReplicaCount = %d after reshape, want 0", got)
	}
	if got := e.ReplicaDrops(); got == 0 {
		t.Fatal("reshape retired no follower groups")
	}
	if got := readSeq(t, e, fr, 1, pt); got != 9 {
		t.Fatalf("post-reshape read = %d, want 9", got)
	}
	// The vertex is replicable again at its new shape.
	if n := e.ReplicateFromRank(fr, dp.Rank(), 2); n != 1 {
		t.Fatalf("re-seed after reshape seeded %d copies, want 1", n)
	}
	if got := readSeq(t, e, fr, 1, pt); got != 9 {
		t.Fatalf("replica read after re-seed = %d, want 9", got)
	}
}

// TestAbortedWriteKeepsLockstep: a scalar-mode abort releases a held write
// lock, bumping the primary's version without changing content; the follower
// must track the bump or every later replica read would fail validation.
func TestAbortedWriteKeepsLockstep(t *testing.T) {
	_, e := newReplicaEngine(t, 2, true) // scalar: writes lock eagerly
	pt := payloadPType(t, e)
	const words = 8
	dp := seedPayloadVertex(t, e, 1, pt, words)
	fr := otherRank(dp, 2)
	if n := e.ReplicateFromRank(fr, dp.Rank(), 2); n != 1 {
		t.Fatalf("seeded %d copies, want 1", n)
	}

	tx := e.StartLocal(dp.Rank(), ReadWrite)
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetProperty(pt, payloadPattern(5, words)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	base := e.ReplicaReads()
	if got := readSeq(t, e, fr, 1, pt); got != 0 {
		t.Fatalf("read after abort = %d, want 0", got)
	}
	if e.ReplicaReads() != base+1 {
		t.Fatal("follower fell out of lockstep across an aborted write")
	}
}

// TestDeleteRetiresFollowers: deleting a replicated vertex poisons and frees
// the follower copies; the follower rank's directory empties and reads
// report not-found.
func TestDeleteRetiresFollowers(t *testing.T) {
	_, e := newReplicaEngine(t, 2, false)
	pt := payloadPType(t, e)
	dp := seedPayloadVertex(t, e, 1, pt, 8)
	fr := otherRank(dp, 2)
	if n := e.ReplicateFromRank(fr, dp.Rank(), 2); n != 1 {
		t.Fatalf("seeded %d copies, want 1", n)
	}
	free := e.FreeBlocks(fr)

	tx := e.StartLocal(dp.Rank(), ReadWrite)
	if err := tx.DeleteVertex(dp); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if got := e.ReplicaCount(fr); got != 0 {
		t.Fatalf("ReplicaCount = %d after delete, want 0", got)
	}
	if got := e.FreeBlocks(fr); got <= free {
		t.Fatalf("follower blocks not returned: free %d → %d", free, got)
	}
	probe := e.StartLocal(fr, ReadOnly)
	if _, err := probe.TranslateVertexID(1); err == nil {
		t.Fatal("deleted replicated vertex still resolves")
	}
	probe.Abort()
}

// TestPromoteDeadFailsOver: kill the primary's rank, let every surviving
// follower race the DHT CAS, and verify exactly one wins, the committed
// value survives at the new primary, and the loser's copy is rekeyed to keep
// serving replica reads for the winner.
func TestPromoteDeadFailsOver(t *testing.T) {
	const (
		ranks = 3
		words = 8
		app   = uint64(1)
	)
	f, e := newReplicaEngine(t, ranks, false)
	pt := payloadPType(t, e)
	dp := seedPayloadVertex(t, e, app, pt, words)
	src := dp.Rank()
	var followers []rma.Rank
	for r := 0; r < ranks; r++ {
		if rma.Rank(r) != src {
			followers = append(followers, rma.Rank(r))
		}
	}
	for _, fr := range followers {
		if n := e.ReplicateFromRank(fr, src, 3); n != 1 {
			t.Fatalf("rank %d seeded %d copies, want 1", fr, n)
		}
	}
	writeSeq(t, e, followers[0], app, 42, pt, words) // fans to both followers

	f.KillRank(src)
	promos := 0
	for _, fr := range followers {
		promos += e.PromoteDead(fr)
	}
	if promos != 1 {
		t.Fatalf("%d promotions for one vertex, want exactly 1", promos)
	}
	if got := e.Promotions(); got != 1 {
		t.Fatalf("Promotions counter = %d, want 1", got)
	}

	// The DHT now names a surviving rank, and the committed value survived.
	probe := e.StartLocal(followers[0], ReadOnly)
	ndp, err := probe.TranslateVertexID(app)
	if err != nil {
		t.Fatal(err)
	}
	probe.Abort()
	if ndp.Rank() == src {
		t.Fatalf("promoted primary still on dead rank %d", src)
	}
	for _, fr := range followers {
		if got := readSeq(t, e, fr, app, pt); got != 42 {
			t.Fatalf("rank %d reads %d after failover, want 42", fr, got)
		}
	}

	// The losing follower was rekeyed to the new primary and keeps serving
	// local reads; a fresh commit still fans out to it.
	winner, loser := ndp.Rank(), rma.Rank(-1)
	for _, fr := range followers {
		if fr != winner {
			loser = fr
		}
	}
	if got := e.ReplicaCount(loser); got != 1 {
		t.Fatalf("loser rank %d directory holds %d entries, want 1", loser, got)
	}
	writeSeq(t, e, winner, app, 43, pt, words)
	base := e.ReplicaReads()
	if got := readSeq(t, e, loser, app, pt); got != 43 {
		t.Fatalf("loser reads %d after post-failover commit, want 43", got)
	}
	if e.ReplicaReads() != base+1 {
		t.Fatal("loser's rekeyed copy did not serve the read")
	}
	// Idempotent: nothing left to promote.
	for _, fr := range followers {
		if n := e.PromoteDead(fr); n != 0 {
			t.Fatalf("second PromoteDead on rank %d promoted %d", fr, n)
		}
	}
}

// TestReplicatedVertexPinnedDuringMigration: MigrateVertices refuses to move
// a replicated vertex, and the skip (which bumps the primary's version under
// a held lock) leaves the followers in lockstep.
func TestReplicatedVertexPinnedDuringMigration(t *testing.T) {
	_, e := newReplicaEngine(t, 2, false)
	pt := payloadPType(t, e)
	dp := seedPayloadVertex(t, e, 1, pt, 8)
	fr := otherRank(dp, 2)
	if n := e.ReplicateFromRank(fr, dp.Rank(), 2); n != 1 {
		t.Fatalf("seeded %d copies, want 1", n)
	}

	moved, err := e.MigrateVertices(fr, []MigrationMove{{App: 1, Old: dp, Dest: fr}})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("migration moved %d replicated vertices, want 0", moved)
	}
	probe := e.StartLocal(fr, ReadOnly)
	got, err := probe.TranslateVertexID(1)
	probe.Abort()
	if err != nil {
		t.Fatal(err)
	}
	if got != dp {
		t.Fatalf("replicated vertex moved from %v to %v", dp, got)
	}
	base := e.ReplicaReads()
	if seq := readSeq(t, e, fr, 1, pt); seq != 0 {
		t.Fatalf("read after pinned migration = %d, want 0", seq)
	}
	if e.ReplicaReads() != base+1 {
		t.Fatal("follower fell out of lockstep across a skipped migration")
	}
}
