package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/rma"
)

// TestKillARankFailoverStress is the kill-a-rank stress tier: concurrent
// writers rewrite replicated vertex payloads and optimistic readers snapshot
// them while one rank's data plane is killed mid-run; afterwards the
// survivors promote the dead rank's followers. Invariants checked:
//
//   - conservation: every write a surviving writer successfully committed —
//     including commits whose write-back raced the kill and reached only the
//     follower copies — is readable from every surviving rank afterwards;
//   - failover: every vertex whose primary died is promoted exactly once,
//     and accepts new commits at its new primary;
//   - no torn reads and per-reader per-key monotonic sequence numbers
//     throughout, kill included.
//
// Runs under -race in CI (the kill-a-rank step of the race job).
func TestKillARankFailoverStress(t *testing.T) {
	killARankFailoverStress(t, holder.CodecV1)
}

// TestKillARankFailoverStressV2 runs the same kill-a-rank tier over the v2
// (delta+varint) holder codec: replication fan-out, follower promotion, and
// the post-failover re-commit path all re-encode through the compressed wire
// format.
func TestKillARankFailoverStressV2(t *testing.T) {
	killARankFailoverStress(t, holder.CodecV2)
}

func killARankFailoverStress(t *testing.T, codec holder.Codec) {
	const (
		ranks           = 4
		k               = 3 // one primary + two followers
		keys            = 16
		payloadWords    = 16
		writers         = 4
		readers         = 4
		writesPerWriter = 200
		readsPerReader  = 300
		doomed          = rma.Rank(1)
	)
	f := rma.New(ranks)
	e := NewEngine(f, Config{
		BlockSize:       64,
		BlocksPerRank:   1 << 12,
		LockTries:       256,
		OptimisticReads: true,
		HolderCodec:     codec,
	})
	pt := payloadPType(t, e)
	for i := 0; i < keys; i++ {
		seedPayloadVertex(t, e, uint64(i), pt, payloadWords)
	}
	for r := 0; r < ranks; r++ {
		e.ReplicateUniform(rma.Rank(r), k)
	}
	var doomedKeys []uint64
	probe := e.StartLocal(0, ReadOnly)
	for i := 0; i < keys; i++ {
		dp, err := probe.TranslateVertexID(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if dp.Rank() == doomed {
			doomedKeys = append(doomedKeys, uint64(i))
		}
	}
	probe.Abort()
	if len(doomedKeys) == 0 {
		t.Fatal("no vertex has its primary on the doomed rank")
	}

	survivors := make([]rma.Rank, 0, ranks-1)
	for r := 0; r < ranks; r++ {
		if rma.Rank(r) != doomed {
			survivors = append(survivors, rma.Rank(r))
		}
	}

	var (
		wg            sync.WaitGroup
		mu            sync.Mutex
		firstErr      error
		killOnce      sync.Once
		lastCommitted [keys]uint64 // per-key, written only by the key's writer
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// absorb runs one transaction attempt, converting a peer-death panic
	// (an access that raced the kill into the dead rank's data plane) into
	// ok=false — exactly what a production driver does when a request hits a
	// dying peer.
	absorb := func(fn func() bool) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, peer := fabric.AsPeerDeath(r); peer {
					ok = false
					return
				}
				panic(r)
			}
		}()
		return fn()
	}

	// Writers: each owns the keys congruent to its index, so per-key commits
	// are sequential and "last committed" is well defined. Halfway through,
	// writer 0 kills the doomed rank under full load.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rank := survivors[w%len(survivors)]
			seq := uint64(w)*1_000_000 + 1
			for i := 0; i < writesPerWriter; i++ {
				if w == 0 && i == writesPerWriter/2 {
					killOnce.Do(func() { f.KillRank(doomed) })
				}
				app := uint64((i*writers + w) % keys)
				s := seq
				committed := absorb(func() bool {
					tx := e.StartLocal(rank, ReadWrite)
					defer func() {
						if !tx.closed {
							tx.Abort()
						}
					}()
					dp, err := tx.TranslateVertexID(app)
					if err != nil {
						return false
					}
					h, err := tx.AssociateVertex(dp)
					if err != nil {
						return false
					}
					if err := h.SetProperty(pt, payloadPattern(s, payloadWords)); err != nil {
						report(err)
						return false
					}
					return tx.Commit() == nil
				})
				if committed {
					lastCommitted[app] = s
					seq++
				}
			}
		}(w)
	}

	// Readers: optimistic snapshots, panic-tolerant, checking torn-freedom
	// and per-key monotonicity across every validated read.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rank := survivors[r%len(survivors)]
			var seen [keys]uint64
			for i := 0; i < readsPerReader; i++ {
				app := uint64((i*7 + r*3) % keys)
				absorb(func() bool {
					tx := e.StartLocal(rank, ReadOnly)
					defer func() {
						if !tx.closed {
							tx.Abort()
						}
					}()
					dp, err := tx.TranslateVertexID(app)
					if err != nil {
						return false
					}
					h, err := tx.AssociateVertex(dp)
					if err != nil {
						return false
					}
					p, ok := h.Property(pt)
					if !ok {
						report(fmt.Errorf("reader: payload of vertex %d missing", app))
						return false
					}
					seq, torn := decodePattern(p)
					if torn {
						report(fmt.Errorf("reader: torn payload of vertex %d", app))
						return false
					}
					if tx.Commit() != nil {
						return false // optimistic abort: snapshot discarded
					}
					if seq < seen[app] {
						report(fmt.Errorf("reader %d: vertex %d seq went backwards %d → %d",
							r, app, seen[app], seq))
					}
					seen[app] = seq
					return true
				})
			}
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Failover: with in-flight commits drained, every survivor promotes; the
	// doomed rank's vertices must be won exactly once in total.
	promos := 0
	for _, r := range survivors {
		promos += e.PromoteDead(r)
	}
	if promos != len(doomedKeys) {
		t.Fatalf("promoted %d vertices, want %d (one per doomed primary)", promos, len(doomedKeys))
	}

	// Conservation: every surviving rank reads back the last committed value
	// of every key — the doomed-primary keys through their promoted copies.
	for _, r := range survivors {
		for app := uint64(0); app < keys; app++ {
			tx := e.StartLocal(r, ReadOnly)
			dp, err := tx.TranslateVertexID(app)
			if err != nil {
				t.Fatalf("rank %d: vertex %d lost after failover: %v", r, app, err)
			}
			if dp.Rank() == doomed {
				t.Fatalf("vertex %d still placed on the dead rank", app)
			}
			h, err := tx.AssociateVertex(dp)
			if err != nil {
				t.Fatalf("rank %d: associating vertex %d after failover: %v", r, app, err)
			}
			p, ok := h.Property(pt)
			if !ok {
				t.Fatalf("rank %d: payload of vertex %d missing after failover", r, app)
			}
			seq, torn := decodePattern(p)
			if torn {
				t.Fatalf("rank %d: torn payload of vertex %d after failover", r, app)
			}
			if seq != lastCommitted[app] {
				t.Fatalf("rank %d: vertex %d = seq %d after failover, last committed %d (lost write)",
					r, app, seq, lastCommitted[app])
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("rank %d: validating vertex %d after failover: %v", r, app, err)
			}
		}
	}

	// The promoted primaries accept new commits, and those commits fan out
	// to the rekeyed surviving followers.
	for _, app := range doomedKeys {
		writeSeq(t, e, survivors[0], app, 9_000_000+app, pt, payloadWords)
		if got := readSeq(t, e, survivors[1], app, pt); got != 9_000_000+app {
			t.Fatalf("post-failover commit to vertex %d reads back %d", app, got)
		}
	}
	if e.Promotions() == 0 || e.ReplicaReads() == 0 {
		t.Fatalf("counters flat: promotions=%d replicaReads=%d", e.Promotions(), e.ReplicaReads())
	}
}
