package core

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/constraint"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
)

// VertexHandle is the process-local access object for one vertex within one
// transaction (§3.5: handles hide internal representations and are only
// meaningful on the allocating process). Handles compare equal when they
// refer to the same vertex in the same transaction.
type VertexHandle struct {
	tx *Tx
	st *vertexState
}

// ID returns the vertex's internal ID (its primary-block DPtr).
func (h *VertexHandle) ID() fabric.DPtr { return h.st.primary }

// AppID returns the application-level vertex ID.
func (h *VertexHandle) AppID() uint64 { return h.st.v.AppID }

// Labels returns the vertex's labels (GDI_GetAllLabelsOfVertex). O(|labels|).
func (h *VertexHandle) Labels() []lpg.LabelID {
	return append([]lpg.LabelID(nil), h.st.v.Labels...)
}

// HasLabel reports whether the vertex carries label l.
func (h *VertexHandle) HasLabel(l lpg.LabelID) bool {
	for _, x := range h.st.v.Labels {
		if x == l {
			return true
		}
	}
	return false
}

// AddLabel attaches label l (GDI_AddLabelToVertex). O(1).
func (h *VertexHandle) AddLabel(l lpg.LabelID) error {
	if err := h.tx.check(); err != nil {
		return err
	}
	if _, ok := h.tx.registry().LabelByID(l); !ok {
		return fmt.Errorf("%w: label %d", ErrNotFound, l)
	}
	if h.HasLabel(l) {
		return nil
	}
	if err := h.tx.ensureWrite(h.st); err != nil {
		return err
	}
	h.st.v.Labels = append(h.st.v.Labels, l)
	return nil
}

// RemoveLabel detaches label l (GDI_RemoveLabelFromVertex).
func (h *VertexHandle) RemoveLabel(l lpg.LabelID) error {
	if err := h.tx.check(); err != nil {
		return err
	}
	for i, x := range h.st.v.Labels {
		if x == l {
			if err := h.tx.ensureWrite(h.st); err != nil {
				return err
			}
			h.st.v.Labels = append(h.st.v.Labels[:i], h.st.v.Labels[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: label %d on vertex %v", ErrNotFound, l, h.st.primary)
}

// Properties returns the values of all entries of p-type pt
// (GDI_GetPropertiesOfVertex). O(|props|).
func (h *VertexHandle) Properties(pt lpg.PTypeID) [][]byte {
	var out [][]byte
	for _, p := range h.st.v.Props {
		if p.PType == pt {
			out = append(out, append([]byte(nil), p.Value...))
		}
	}
	return out
}

// Property returns the single value of p-type pt, or ok=false.
func (h *VertexHandle) Property(pt lpg.PTypeID) ([]byte, bool) {
	for _, p := range h.st.v.Props {
		if p.PType == pt {
			return append([]byte(nil), p.Value...), true
		}
	}
	return nil, false
}

// PTypes lists the distinct property types present on the vertex
// (GDI_GetAllPropertyTypesOfVertex).
func (h *VertexHandle) PTypes() []lpg.PTypeID {
	seen := map[lpg.PTypeID]bool{}
	var out []lpg.PTypeID
	for _, p := range h.st.v.Props {
		if !seen[p.PType] {
			seen[p.PType] = true
			out = append(out, p.PType)
		}
	}
	return out
}

func (tx *Tx) validateProp(pt lpg.PTypeID, value []byte, entity lpg.EntityType) (*metadata.PType, error) {
	meta, ok := tx.registry().PTypeByID(pt)
	if !ok {
		return nil, fmt.Errorf("%w: property type %d", ErrNotFound, pt)
	}
	if meta.Entity != lpg.EntityAny && meta.Entity != entity {
		return nil, fmt.Errorf("%w: property type %q not allowed on this entity", ErrBadArgument, meta.Name)
	}
	if err := metadata.ValidateValue(meta, value); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgument, err)
	}
	return meta, nil
}

// AddProperty attaches a property entry (GDI_AddPropertyToVertex). For
// MultiSingle p-types a second entry is rejected. O(|props|).
func (h *VertexHandle) AddProperty(pt lpg.PTypeID, value []byte) error {
	if err := h.tx.check(); err != nil {
		return err
	}
	meta, err := h.tx.validateProp(pt, value, lpg.EntityVertex)
	if err != nil {
		return err
	}
	if meta.Mult == lpg.MultiSingle {
		if _, exists := h.Property(pt); exists {
			return fmt.Errorf("%w: property %q is single-valued", ErrBadArgument, meta.Name)
		}
	}
	if err := h.tx.ensureWrite(h.st); err != nil {
		return err
	}
	h.st.v.Props = append(h.st.v.Props, lpg.Property{PType: pt, Value: append([]byte(nil), value...)})
	return nil
}

// SetProperty updates (or creates) the single entry of p-type pt
// (GDI_UpdatePropertyOfVertex).
func (h *VertexHandle) SetProperty(pt lpg.PTypeID, value []byte) error {
	if err := h.tx.check(); err != nil {
		return err
	}
	if _, err := h.tx.validateProp(pt, value, lpg.EntityVertex); err != nil {
		return err
	}
	if err := h.tx.ensureWrite(h.st); err != nil {
		return err
	}
	for i, p := range h.st.v.Props {
		if p.PType == pt {
			h.st.v.Props[i].Value = append([]byte(nil), value...)
			return nil
		}
	}
	h.st.v.Props = append(h.st.v.Props, lpg.Property{PType: pt, Value: append([]byte(nil), value...)})
	return nil
}

// RemoveProperties drops all entries of p-type pt
// (GDI_RemovePropertyFromVertex). It reports how many entries were removed.
func (h *VertexHandle) RemoveProperties(pt lpg.PTypeID) (int, error) {
	if err := h.tx.check(); err != nil {
		return 0, err
	}
	n := 0
	kept := h.st.v.Props[:0]
	for _, p := range h.st.v.Props {
		if p.PType == pt {
			n++
			continue
		}
		kept = append(kept, p)
	}
	if n == 0 {
		return 0, nil
	}
	if err := h.tx.ensureWrite(h.st); err != nil {
		return 0, err
	}
	h.st.v.Props = kept
	return n, nil
}

// DirMask selects edge directions in queries.
type DirMask uint8

const (
	// MaskOut selects outgoing edges.
	MaskOut DirMask = 1 << iota
	// MaskIn selects incoming edges.
	MaskIn
	// MaskUndirected selects undirected edges.
	MaskUndirected
	// MaskAll selects every edge.
	MaskAll = MaskOut | MaskIn | MaskUndirected
)

func (m DirMask) matches(d holder.Direction) bool {
	switch d {
	case holder.DirOut:
		return m&MaskOut != 0
	case holder.DirIn:
		return m&MaskIn != 0
	default:
		return m&MaskUndirected != 0
	}
}

// EdgeInfo describes one edge incident to a vertex.
type EdgeInfo struct {
	// UID identifies the edge relative to the queried vertex.
	UID holder.EdgeUID
	// Neighbor is the other endpoint's vertex DPtr.
	Neighbor fabric.DPtr
	// Dir is the direction relative to the queried vertex.
	Dir holder.Direction
	// Label is the lightweight label (0 if none). For heavy edges it is the
	// first label of the edge holder.
	Label lpg.LabelID
	// Heavy marks edges with a dedicated holder; Holder is its DPtr.
	Heavy  bool
	Holder fabric.DPtr
}

// Edges lists the vertex's incident edges matching mask and, optionally, a
// constraint over the edges' labels/properties (GDI_GetEdgesOfVertex).
// Lightweight edges evaluate the constraint on their single label without
// any communication; heavy edges fetch their holder. O(deg(v)) plus one
// holder fetch per heavy edge.
func (h *VertexHandle) Edges(mask DirMask, cons *constraint.Constraint) ([]EdgeInfo, error) {
	if err := h.tx.check(); err != nil {
		return nil, err
	}
	// EdgeInfo carries record indices (EdgeUIDs), so this path works on the
	// materialized slice; it allocates the result anyway.
	h.tx.materializeEdges(h.st)
	var out []EdgeInfo
	for i, rec := range h.st.v.Edges {
		if !mask.matches(rec.Dir) {
			continue
		}
		info := EdgeInfo{
			UID:      holder.EdgeUID{Vertex: h.st.primary, Index: uint32(i)},
			Neighbor: rec.Neighbor,
			Dir:      rec.Dir,
			Label:    rec.Label,
			Heavy:    rec.Heavy,
		}
		if rec.Heavy {
			info.Holder = rec.Neighbor
			es, err := h.tx.fetchEdgeState(rec.Neighbor)
			if err != nil {
				return nil, err
			}
			if es.deleted {
				continue
			}
			info.Neighbor = heavyNeighbor(es.e, h.st)
			if len(es.e.Labels) > 0 {
				info.Label = es.e.Labels[0]
			}
			if cons != nil && !cons.Eval(es.e.Labels, es.e.Props) {
				continue
			}
		} else if cons != nil {
			var labels []lpg.LabelID
			if rec.Label != 0 {
				labels = []lpg.LabelID{rec.Label}
			}
			if !cons.Eval(labels, nil) {
				continue
			}
		}
		out = append(out, info)
	}
	return out, nil
}

// heavyNeighbor resolves the far endpoint of a heavy edge relative to the
// querying vertex: the edge's target, unless the querying vertex is the
// target (including self-loops, where both endpoints coincide). The
// comparison accepts every identity the querying vertex has had — edge
// holders record endpoint DPtrs as of edge creation, which live migration
// does not rewrite.
func heavyNeighbor(e *holder.Edge, st *vertexState) fabric.DPtr {
	if st.isIdentity(e.Target) {
		return e.Origin
	}
	return e.Target
}

// ForEachNeighbor streams the neighbor vertex ID of every incident edge
// record matching mask to fn, in record order and without materializing
// EdgeInfo values — the allocation-free fast path traversal kernels (BFS,
// k-hop) iterate frontiers with. Neighbors are not deduplicated; heavy-edge
// records resolve their holder exactly as Edges does.
func (h *VertexHandle) ForEachNeighbor(mask DirMask, fn func(fabric.DPtr)) error {
	return h.ForEachEdge(mask, func(nb fabric.DPtr, _ holder.Direction) { fn(nb) })
}

// ForEachEdge streams (neighbor, direction) for every incident edge record
// matching mask, in record order and without materializing EdgeInfo values —
// the snapshot path analytics uses to build CSR adjacency without per-vertex
// slice allocations. Heavy-edge records resolve their holder exactly as
// Edges does; deleted heavy edges are skipped.
func (h *VertexHandle) ForEachEdge(mask DirMask, fn func(nb fabric.DPtr, dir holder.Direction)) error {
	if err := h.tx.check(); err != nil {
		return err
	}
	visit := func(rec holder.EdgeRec) error {
		if !mask.matches(rec.Dir) {
			return nil
		}
		if rec.Heavy {
			es, err := h.tx.fetchEdgeState(rec.Neighbor)
			if err != nil {
				return err
			}
			if es.deleted {
				return nil
			}
			fn(heavyNeighbor(es.e, h.st), rec.Dir)
			return nil
		}
		fn(rec.Neighbor, rec.Dir)
		return nil
	}
	// Lazily decoded holders iterate the encoded stream in place — no
	// []EdgeRec is ever built for a read-only traversal.
	if h.st.lazyEdges {
		var ferr error
		h.st.view.ForEachEdge(func(rec holder.EdgeRec) bool {
			ferr = visit(rec)
			return ferr == nil
		})
		return ferr
	}
	for _, rec := range h.st.v.Edges {
		if err := visit(rec); err != nil {
			return err
		}
	}
	return nil
}

// CountEdges counts incident edges matching mask
// (the LinkBench "count edges of a vertex" operation). O(deg(v)), no
// communication beyond the holder already fetched.
func (h *VertexHandle) CountEdges(mask DirMask) int {
	n := 0
	if h.st.lazyEdges {
		if mask == MaskAll {
			return h.st.view.NumEdges() // header field; no edge-region walk
		}
		h.st.view.ForEachEdge(func(rec holder.EdgeRec) bool {
			if mask.matches(rec.Dir) {
				n++
			}
			return true
		})
		return n
	}
	for _, rec := range h.st.v.Edges {
		if mask.matches(rec.Dir) {
			n++
		}
	}
	return n
}

// Neighbors returns the distinct neighbor vertex IDs reachable over edges
// matching mask and constraint (GDI_GetNeighborVerticesOfVertex).
func (h *VertexHandle) Neighbors(mask DirMask, cons *constraint.Constraint) ([]fabric.DPtr, error) {
	infos, err := h.Edges(mask, cons)
	if err != nil {
		return nil, err
	}
	seen := make(map[fabric.DPtr]struct{}, len(infos))
	out := make([]fabric.DPtr, 0, len(infos))
	for _, e := range infos {
		if _, dup := seen[e.Neighbor]; dup {
			continue
		}
		seen[e.Neighbor] = struct{}{}
		out = append(out, e.Neighbor)
	}
	return out, nil
}

// Degree returns the total number of incident edge records. For lazily
// decoded holders it is a header read — no edge region is touched.
func (h *VertexHandle) Degree() int {
	if h.st.lazyEdges {
		return h.st.view.NumEdges()
	}
	return len(h.st.v.Edges)
}

// CreateEdge adds a lightweight edge (§5.4.2: at most one label, no
// properties) between two vertices. A record is stored in both endpoint
// holders so that incoming and undirected queries stay O(1); the returned
// UID is relative to the origin. O(1) holder updates on both endpoints.
func (tx *Tx) CreateEdge(origin, target fabric.DPtr, dir holder.Direction, label lpg.LabelID) (holder.EdgeUID, error) {
	if err := tx.check(); err != nil {
		return holder.EdgeUID{}, err
	}
	if dir == holder.DirIn {
		return holder.EdgeUID{}, fmt.Errorf("%w: create edges as DirOut or DirUndirected from the origin", ErrBadArgument)
	}
	oh, err := tx.AssociateVertex(origin)
	if err != nil {
		return holder.EdgeUID{}, err
	}
	if err := tx.ensureWrite(oh.st); err != nil {
		return holder.EdgeUID{}, err
	}
	uid := holder.EdgeUID{Vertex: origin, Index: uint32(len(oh.st.v.Edges))}
	if origin == target { // self-loop: both records in one holder
		oh.st.v.Edges = append(oh.st.v.Edges, holder.EdgeRec{Neighbor: target, Dir: dir, Label: label})
		if dir == holder.DirOut {
			oh.st.v.Edges = append(oh.st.v.Edges, holder.EdgeRec{Neighbor: origin, Dir: holder.DirIn, Label: label})
		}
		return uid, nil
	}
	th, err := tx.AssociateVertex(target)
	if err != nil {
		return holder.EdgeUID{}, err
	}
	if err := tx.ensureWrite(th.st); err != nil {
		return holder.EdgeUID{}, err
	}
	oh.st.v.Edges = append(oh.st.v.Edges, holder.EdgeRec{Neighbor: target, Dir: dir, Label: label})
	back := holder.DirIn
	if dir == holder.DirUndirected {
		back = holder.DirUndirected
	}
	th.st.v.Edges = append(th.st.v.Edges, holder.EdgeRec{Neighbor: origin, Dir: back, Label: label})
	return uid, nil
}

// CreateRichEdge adds a heavy edge carrying arbitrary labels and properties
// in a dedicated edge holder. O(1) holder updates plus one holder creation.
func (tx *Tx) CreateRichEdge(origin, target fabric.DPtr, dir holder.Direction, labels []lpg.LabelID, props []lpg.Property) (holder.EdgeUID, error) {
	if err := tx.check(); err != nil {
		return holder.EdgeUID{}, err
	}
	if tx.mode == ReadOnly {
		return holder.EdgeUID{}, ErrReadOnly
	}
	if dir == holder.DirIn {
		return holder.EdgeUID{}, fmt.Errorf("%w: create edges as DirOut or DirUndirected from the origin", ErrBadArgument)
	}
	for _, p := range props {
		if _, err := tx.validateProp(p.PType, p.Value, lpg.EntityEdge); err != nil {
			return holder.EdgeUID{}, err
		}
	}
	oh, err := tx.AssociateVertex(origin)
	if err != nil {
		return holder.EdgeUID{}, err
	}
	if err := tx.ensureWrite(oh.st); err != nil {
		return holder.EdgeUID{}, err
	}
	// The edge holder lives on the origin's rank.
	hp, err := tx.eng.store.AcquireBlock(tx.rank, origin.Rank())
	if err != nil {
		return holder.EdgeUID{}, tx.fail(ErrNoMemory)
	}
	es := &edgeState{
		primary: hp,
		e: &holder.Edge{
			Origin: origin, Target: target, Dir: dir,
			Labels: append([]lpg.LabelID(nil), labels...),
			Props:  clonedProps(props),
		},
		isNew: true,
		dirty: true,
	}
	tx.edges[hp] = es
	uid := holder.EdgeUID{Vertex: origin, Index: uint32(len(oh.st.v.Edges))}
	oh.st.v.Edges = append(oh.st.v.Edges, holder.EdgeRec{Neighbor: hp, Dir: dir, Heavy: true})
	if origin != target {
		th, err := tx.AssociateVertex(target)
		if err != nil {
			return holder.EdgeUID{}, err
		}
		if err := tx.ensureWrite(th.st); err != nil {
			return holder.EdgeUID{}, err
		}
		back := holder.DirIn
		if dir == holder.DirUndirected {
			back = holder.DirUndirected
		}
		th.st.v.Edges = append(th.st.v.Edges, holder.EdgeRec{Neighbor: hp, Dir: back, Heavy: true})
	}
	return uid, nil
}

func clonedProps(props []lpg.Property) []lpg.Property {
	out := make([]lpg.Property, len(props))
	for i, p := range props {
		out[i] = lpg.Property{PType: p.PType, Value: append([]byte(nil), p.Value...)}
	}
	return out
}

// DeleteEdge removes the edge identified by uid, updating both endpoint
// holders (and releasing the edge holder for heavy edges). O(deg) scan at
// the sibling endpoint.
func (tx *Tx) DeleteEdge(uid holder.EdgeUID) error {
	vh, err := tx.AssociateVertex(uid.Vertex)
	if err != nil {
		return err
	}
	tx.materializeEdges(vh.st) // the UID indexes the record slice
	if int(uid.Index) >= len(vh.st.v.Edges) {
		return fmt.Errorf("%w: edge %v/%d", ErrNotFound, uid.Vertex, uid.Index)
	}
	if err := tx.ensureWrite(vh.st); err != nil {
		return err
	}
	rec := vh.st.v.Edges[uid.Index]
	vh.st.v.Edges = append(vh.st.v.Edges[:uid.Index], vh.st.v.Edges[uid.Index+1:]...)
	if rec.Heavy {
		es, err := tx.fetchEdgeState(rec.Neighbor)
		if err != nil {
			return err
		}
		other := es.e.Target
		if vh.st.isIdentity(other) {
			other = es.e.Origin
		}
		if !vh.st.isIdentity(other) {
			// Heavy sibling records point at the edge holder, which never
			// migrates: match it exactly.
			hp := rec.Neighbor
			if err := tx.removeRecord(other, func(r holder.EdgeRec) bool {
				return r.Heavy && r.Neighbor == hp
			}); err != nil {
				return err
			}
		}
		es.deleted = true
		es.dirty = true
		return nil
	}
	if vh.st.isIdentity(rec.Neighbor) {
		// Self-loop: drop the sibling record in the same holder.
		vh.st.v.Edges = removeFirstMatch(vh.st.v.Edges, matchLightSibling(vh.st))
		return nil
	}
	return tx.removeRecord(rec.Neighbor, matchLightSibling(vh.st))
}

// matchLightSibling matches a lightweight record pointing at the given
// vertex under any identity it has had (records written before a live
// migration carry an old primary).
func matchLightSibling(st *vertexState) func(holder.EdgeRec) bool {
	return func(r holder.EdgeRec) bool {
		return !r.Heavy && st.isIdentity(r.Neighbor)
	}
}

// removeRecord drops the first record at vertex `at` accepted by match.
func (tx *Tx) removeRecord(at fabric.DPtr, match func(holder.EdgeRec) bool) error {
	h, err := tx.AssociateVertex(at)
	if err != nil {
		return err
	}
	if err := tx.ensureWrite(h.st); err != nil {
		return err
	}
	before := len(h.st.v.Edges)
	h.st.v.Edges = removeFirstMatch(h.st.v.Edges, match)
	if len(h.st.v.Edges) == before {
		return fmt.Errorf("%w: sibling edge record at %v", ErrNotFound, at)
	}
	return nil
}

func removeFirstMatch(recs []holder.EdgeRec, match func(holder.EdgeRec) bool) []holder.EdgeRec {
	for i, r := range recs {
		if match(r) {
			return append(recs[:i], recs[i+1:]...)
		}
	}
	return recs
}

// EdgeHandle is the access object for one heavy edge.
type EdgeHandle struct {
	tx *Tx
	es *edgeState
}

// AssociateEdgeHolder opens a handle on a heavy edge's holder
// (GDI_AssociateEdge for rich edges).
func (tx *Tx) AssociateEdgeHolder(dp fabric.DPtr) (*EdgeHandle, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	es, err := tx.fetchEdgeState(dp)
	if err != nil {
		return nil, err
	}
	if es.deleted {
		return nil, fmt.Errorf("%w: edge holder %v deleted in this transaction", ErrNotFound, dp)
	}
	return &EdgeHandle{tx: tx, es: es}, nil
}

// Vertices returns the edge's endpoints (GDI_GetVerticesOfEdge).
func (h *EdgeHandle) Vertices() (origin, target fabric.DPtr) { return h.es.e.Origin, h.es.e.Target }

// Dir returns the edge's direction.
func (h *EdgeHandle) Dir() holder.Direction { return h.es.e.Dir }

// Labels returns the edge's labels (GDI_GetAllLabelsOfEdge).
func (h *EdgeHandle) Labels() []lpg.LabelID {
	return append([]lpg.LabelID(nil), h.es.e.Labels...)
}

// AddLabel attaches a label to the edge.
func (h *EdgeHandle) AddLabel(l lpg.LabelID) error {
	if err := h.tx.check(); err != nil {
		return err
	}
	if h.tx.mode == ReadOnly {
		return ErrReadOnly
	}
	if _, ok := h.tx.registry().LabelByID(l); !ok {
		return fmt.Errorf("%w: label %d", ErrNotFound, l)
	}
	for _, x := range h.es.e.Labels {
		if x == l {
			return nil
		}
	}
	h.es.e.Labels = append(h.es.e.Labels, l)
	h.es.dirty = true
	return nil
}

// Properties returns the values of all entries of p-type pt on the edge.
func (h *EdgeHandle) Properties(pt lpg.PTypeID) [][]byte {
	var out [][]byte
	for _, p := range h.es.e.Props {
		if p.PType == pt {
			out = append(out, append([]byte(nil), p.Value...))
		}
	}
	return out
}

// SetProperty updates (or creates) the single entry of p-type pt on the edge.
func (h *EdgeHandle) SetProperty(pt lpg.PTypeID, value []byte) error {
	if err := h.tx.check(); err != nil {
		return err
	}
	if h.tx.mode == ReadOnly {
		return ErrReadOnly
	}
	if _, err := h.tx.validateProp(pt, value, lpg.EntityEdge); err != nil {
		return err
	}
	for i, p := range h.es.e.Props {
		if p.PType == pt {
			h.es.e.Props[i].Value = append([]byte(nil), value...)
			h.es.dirty = true
			return nil
		}
	}
	h.es.e.Props = append(h.es.e.Props, lpg.Property{PType: pt, Value: append([]byte(nil), value...)})
	h.es.dirty = true
	return nil
}
