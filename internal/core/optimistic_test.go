package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
	"github.com/gdi-go/gdi/internal/rma"
)

// newOptimisticEngine builds an engine with the block cache and the
// optimistic read tier enabled. The 64-byte blocks put every payload-bearing
// holder in the multi-block regime, so torn multi-round fetches are possible
// in principle and the validation protocol actually has work to do.
func newOptimisticEngine(t *testing.T, ranks int, scalarCommit bool) *Engine {
	t.Helper()
	return NewEngine(rma.New(ranks), Config{
		BlockSize:       64,
		BlocksPerRank:   1 << 12,
		LockTries:       256,
		ScalarCommit:    scalarCommit,
		CacheBlocks:     true,
		CacheCapacity:   512,
		OptimisticReads: true,
	})
}

// payloadPattern builds a payload of words bytes/8 identical uint64s — a
// reader that observes two different words inside one payload has seen a
// torn block.
func payloadPattern(seq uint64, words int) []byte {
	p := make([]byte, 8*words)
	for i := 0; i < words; i++ {
		binary.LittleEndian.PutUint64(p[8*i:], seq)
	}
	return p
}

// decodePattern extracts the sequence number and checks the payload is not
// torn.
func decodePattern(p []byte) (seq uint64, torn bool) {
	seq = binary.LittleEndian.Uint64(p)
	for off := 8; off+8 <= len(p); off += 8 {
		if binary.LittleEndian.Uint64(p[off:]) != seq {
			return seq, true
		}
	}
	return seq, false
}

// seedPayloadVertex creates one committed vertex carrying the pattern
// payload and returns its DPtr.
func seedPayloadVertex(t *testing.T, e *Engine, appID uint64, pt lpg.PTypeID, words int) rma.DPtr {
	t.Helper()
	tx := e.StartLocal(0, ReadWrite)
	dp, err := tx.CreateVertex(appID)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetProperty(pt, payloadPattern(0, words)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return dp
}

func payloadPType(t *testing.T, e *Engine) lpg.PTypeID {
	t.Helper()
	pt, err := e.DefinePType("payload", metadata.PTypeSpec{Datatype: lpg.TypeBytes})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestOptimisticReadTakesNoLocks(t *testing.T) {
	e := newOptimisticEngine(t, 2, false)
	pt := payloadPType(t, e)
	dp := seedPayloadVertex(t, e, 1, pt, 8)

	tx := e.StartLocal(1, ReadOnly)
	if _, err := tx.AssociateVertex(dp); err != nil {
		t.Fatal(err)
	}
	win, target, idx := e.Store().LockWord(dp)
	word := win.Load(1, target, idx)
	if locks.Readers(word) != 0 || locks.WriteHeld(word) {
		t.Fatalf("optimistic read left the lock word held: readers=%d writer=%v",
			locks.Readers(word), locks.WriteHeld(word))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestOptimisticStaleVersionAbort drives the §3.8 optimistic abort on both
// write paths: a read-only transaction whose read set was overwritten before
// commit must fail validation whether the writer released its locks through
// the batched release train or the scalar CAS-per-word path.
func TestOptimisticStaleVersionAbort(t *testing.T) {
	for _, scalar := range []bool{false, true} {
		t.Run(fmt.Sprintf("scalarCommit=%v", scalar), func(t *testing.T) {
			e := newOptimisticEngine(t, 2, scalar)
			pt := payloadPType(t, e)
			dp := seedPayloadVertex(t, e, 1, pt, 8)

			reader := e.StartLocal(1, ReadOnly)
			h, err := reader.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := h.Property(pt); !ok {
				t.Fatal("payload missing")
			} else if seq, torn := decodePattern(v); seq != 0 || torn {
				t.Fatalf("read seq=%d torn=%v, want 0/false", seq, torn)
			}

			// A concurrent writer commits before the reader validates.
			writer := e.StartLocal(0, ReadWrite)
			wh, err := writer.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if err := wh.SetProperty(pt, payloadPattern(1, 8)); err != nil {
				t.Fatal(err)
			}
			if err := writer.Commit(); err != nil {
				t.Fatal(err)
			}

			err = reader.Commit()
			if !errors.Is(err, ErrTxCritical) {
				t.Fatalf("stale read committed: err = %v, want transaction-critical", err)
			}
			if got := e.OptimisticAborts(); got != 1 {
				t.Fatalf("OptimisticAborts = %d, want 1", got)
			}

			// A fresh transaction revalidates the (stale) cached copy against
			// the bumped version, refetches, and sees the new payload.
			tx := e.StartLocal(1, ReadOnly)
			h2, err := tx.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if v, _ := h2.Property(pt); func() uint64 { s, _ := decodePattern(v); return s }() != 1 {
				t.Fatalf("post-abort read did not observe the new payload")
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReadOnlyCommitValidatesWithoutWriters(t *testing.T) {
	e := newOptimisticEngine(t, 2, false)
	pt := payloadPType(t, e)
	dps := []rma.DPtr{
		seedPayloadVertex(t, e, 0, pt, 8),
		seedPayloadVertex(t, e, 1, pt, 8),
		seedPayloadVertex(t, e, 2, pt, 8),
	}
	tx := e.StartLocal(1, ReadOnly)
	hs, err := tx.AssociateVertices(dps)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hs {
		if h == nil {
			t.Fatalf("vertex %d missing", i)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("unchanged read set failed validation: %v", err)
	}
	if got := e.OptimisticAborts(); got != 0 {
		t.Fatalf("OptimisticAborts = %d, want 0", got)
	}
}

// TestCacheServesRepeatedReads checks that a second transaction reading the
// same remote vertex is served from the block cache: cache hits appear and
// no further GET traffic is issued for the holder blocks.
func TestCacheServesRepeatedReads(t *testing.T) {
	e := newOptimisticEngine(t, 2, false)
	pt := payloadPType(t, e)
	dp := seedPayloadVertex(t, e, 1, pt, 8) // owner rank 1; reader rank 0 is remote

	read := func() {
		tx := e.StartLocal(0, ReadOnly)
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := h.Property(pt); !ok {
			t.Fatal("payload missing")
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	read()
	snap := e.Fabric().CounterSnapshot(0)
	if snap.CacheMisses == 0 {
		t.Fatal("first read recorded no cache misses")
	}
	gets, hits := snap.RemoteGets, snap.CacheHits
	read()
	snap = e.Fabric().CounterSnapshot(0)
	if snap.CacheHits <= hits {
		t.Fatalf("second read recorded no cache hits (%d -> %d)", hits, snap.CacheHits)
	}
	if snap.RemoteGets != gets {
		t.Fatalf("second read issued %d remote gets despite cached copies", snap.RemoteGets-gets)
	}
}

// TestDeletionPoisonInvalidatesCachedCopy: deleting a vertex bumps its
// guard version (the deletion poison is written under the write lock), so a
// reader holding a cached copy must refetch, observe the poison, and report
// not-found rather than resurrect the cached holder.
func TestDeletionPoisonInvalidatesCachedCopy(t *testing.T) {
	for _, scalar := range []bool{false, true} {
		t.Run(fmt.Sprintf("scalarCommit=%v", scalar), func(t *testing.T) {
			e := newOptimisticEngine(t, 2, scalar)
			pt := payloadPType(t, e)
			dp := seedPayloadVertex(t, e, 1, pt, 8)

			// Prime rank 0's cache.
			tx := e.StartLocal(0, ReadOnly)
			if _, err := tx.AssociateVertex(dp); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			del := e.StartLocal(1, ReadWrite)
			if err := del.DeleteVertex(dp); err != nil {
				t.Fatal(err)
			}
			if err := del.Commit(); err != nil {
				t.Fatal(err)
			}

			probe := e.StartLocal(0, ReadOnly)
			if _, err := probe.AssociateVertex(dp); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted vertex served from cache: err = %v, want ErrNotFound", err)
			}
			probe.Abort()
		})
	}
}

// TestOptimisticCoherenceStress is the cross-package coherence test of the
// cache + optimistic tier: writer goroutines continuously rewrite vertex
// payloads through read-write transactions while optimistic readers snapshot
// them. Every payload observed inside a *validated* read transaction must be
// internally consistent (untorn), and the sequence numbers a reader observes
// per vertex must never go backwards (versions are monotonic, and a
// validated read reflects the latest committed state at validation time).
// Run under -race in CI.
func TestOptimisticCoherenceStress(t *testing.T) {
	const (
		ranks           = 4
		keys            = 16
		payloadWords    = 16 // 128-byte payloads: holders span several 64B blocks
		writers         = 4
		readers         = 4
		writesPerWriter = 150
		readsPerReader  = 250
	)
	e := newOptimisticEngine(t, ranks, false)
	pt := payloadPType(t, e)
	dps := make([]rma.DPtr, keys)
	for i := range dps {
		dps[i] = seedPayloadVertex(t, e, uint64(i), pt, payloadWords)
	}

	var (
		wg            sync.WaitGroup
		mu            sync.Mutex
		firstErr      error
		writeCommits  int64
		readValidated int64
		readDiscarded int64
		writerRetries int64
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*101 + 7))
			rank := rma.Rank(w % ranks)
			commits := int64(0)
			retries := int64(0)
			for i := 0; i < writesPerWriter; i++ {
				dp := dps[rng.Intn(keys)]
				tx := e.StartLocal(rank, ReadWrite)
				h, err := tx.AssociateVertex(dp)
				if err != nil {
					tx.Abort()
					if errors.Is(err, ErrTxCritical) {
						retries++
						continue
					}
					report(err)
					return
				}
				cur, ok := h.Property(pt)
				if !ok {
					report(errors.New("writer: payload missing"))
					tx.Abort()
					return
				}
				seq, torn := decodePattern(cur)
				if torn {
					// The writer holds a read lock here; a torn payload would
					// mean the locking tier itself is broken.
					report(fmt.Errorf("writer observed torn payload at seq %d", seq))
					tx.Abort()
					return
				}
				if err := h.SetProperty(pt, payloadPattern(seq+1, payloadWords)); err != nil {
					report(err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					if errors.Is(err, ErrTxCritical) {
						retries++
						continue
					}
					report(err)
					return
				}
				commits++
			}
			mu.Lock()
			writeCommits += commits
			writerRetries += retries
			mu.Unlock()
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*997 + 13))
			rank := rma.Rank(r % ranks)
			lastSeen := make([]uint64, keys)
			validated, discarded := int64(0), int64(0)
			for i := 0; i < readsPerReader; i++ {
				// Snapshot a few vertices in one transaction, in two fetch
				// batches: the gap between them widens the window in which a
				// writer can invalidate the first batch, so commit-time
				// validation is genuinely exercised.
				picks := []int{rng.Intn(keys), rng.Intn(keys), rng.Intn(keys)}
				batch := make([]rma.DPtr, len(picks))
				for j, k := range picks {
					batch[j] = dps[k]
				}
				tx := e.StartLocal(rank, ReadOnly)
				hs, err := tx.AssociateVertices(batch[:1])
				if err == nil {
					runtime.Gosched() // let writers slip between the batches
					var rest []*VertexHandle
					rest, err = tx.AssociateVertices(batch[1:])
					hs = append(hs, rest...)
				}
				if err != nil {
					tx.Abort()
					if errors.Is(err, ErrTxCritical) {
						discarded++
						continue
					}
					report(err)
					return
				}
				seqs := make([]uint64, len(picks))
				for j, h := range hs {
					if h == nil {
						report(fmt.Errorf("reader: vertex %v vanished", batch[j]))
						tx.Abort()
						return
					}
					v, ok := h.Property(pt)
					if !ok {
						report(errors.New("reader: payload missing"))
						tx.Abort()
						return
					}
					seq, torn := decodePattern(v)
					if torn {
						report(fmt.Errorf("reader observed a torn payload (vertex %v, seq %d)", batch[j], seq))
						tx.Abort()
						return
					}
					seqs[j] = seq
				}
				if err := tx.Commit(); err != nil {
					// Validation failed: the snapshot is void and must not
					// advance the reader's view.
					discarded++
					continue
				}
				validated++
				for j, k := range picks {
					if seqs[j] < lastSeen[k] {
						report(fmt.Errorf("vertex %d went backwards: saw seq %d after %d", k, seqs[j], lastSeen[k]))
						return
					}
					lastSeen[k] = seqs[j]
				}
			}
			mu.Lock()
			readValidated += validated
			readDiscarded += discarded
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if writeCommits == 0 {
		t.Fatal("no writer transaction ever committed")
	}
	if readValidated == 0 {
		t.Fatal("no reader transaction ever validated")
	}
	t.Logf("writes committed: %d (retries %d); reads validated: %d, discarded: %d; optimistic aborts: %d",
		writeCommits, writerRetries, readValidated, readDiscarded, e.OptimisticAborts())

	// Quiesced final check: every vertex decodes untorn and the global write
	// count is conserved in the sequence numbers.
	tx := e.StartLocal(0, ReadOnly)
	var total uint64
	for i, dp := range dps {
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := h.Property(pt)
		if !ok {
			t.Fatalf("vertex %d: payload missing after stress", i)
		}
		seq, torn := decodePattern(v)
		if torn {
			t.Fatalf("vertex %d torn after quiesce", i)
		}
		total += seq
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if total != uint64(writeCommits) {
		t.Fatalf("sequence numbers sum to %d, want one increment per committed write (%d)", total, writeCommits)
	}
}
