package core

import (
	"encoding/binary"
	"sync"

	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
)

// k-replica holder chains: read-scale replication with kill-a-rank failover.
//
// A replicated vertex has one primary holder chain (the placement the
// internal index names) plus up to k-1 follower chains, each a byte-identical
// copy of the primary's stream — except the replica flag and the block table,
// which points at the follower's own blocks — living entirely on one other
// rank. The follower's head block's lock word is not a lock but a mirrored
// version word kept in lockstep with the primary's: follower word free at
// version v means the follower content equals the primary content at v
// (package locks' mirror trains maintain this).
//
// The moving parts, all reusing machinery that already exists:
//
//   - Seeding (replicateOne) is a follower-side pull built from the migration
//     train's primitives: best-effort write-lock of the primary, a batched
//     chain read, re-encode with one more follower group, publish, enter the
//     new word into lockstep. The puller records the copy in its rank-local
//     replica directory (primary DPtr → local follower head).
//   - Commit fan-out (commit.go) mirror-marks the follower words of every
//     same-shape rewrite, lands the follower payload inside the same group
//     committer train as the primary's blocks, and releases the words to the
//     primary's new version — primary-then-follower order. Reshapes and
//     deletions drop the groups instead (dropFollowerGroups).
//   - Optimistic reads (tryReplicaRead) are served by the local follower with
//     a seqlock read of its chain; the observed version is recorded against
//     the *primary* DPtr, so the existing commit-time validation train checks
//     it against the primary's word. A follower that fell out of lockstep
//     therefore costs an optimistic abort, never a stale read — correctness
//     does not depend on fan-out completeness.
//   - Failover (PromoteDead): when the transport reports a rank dead, each
//     surviving follower CASes the vertex's DHT entry from the dead primary
//     to its own follower head. The winner re-encodes itself as primary
//     (pruning the dead rank's placements), rewrites the surviving followers
//     back into lockstep, and rekeys their directories; losers just rekey or
//     self-drop. The DHT's word shards survive a data-plane death, which is
//     what makes the CAS arbitration possible.

// replicaEntry is one follower copy hosted by this rank.
type replicaEntry struct {
	head fabric.DPtr // local head block of the follower chain
	app  uint64
}

// replicaShard is one rank's replica directory: primary DPtr → local
// follower. Reads route through it; promotion scans it for dead primaries.
type replicaShard struct {
	mu sync.Mutex
	m  map[fabric.DPtr]replicaEntry
}

func newReplicaShard() *replicaShard {
	return &replicaShard{m: make(map[fabric.DPtr]replicaEntry)}
}

func (s *replicaShard) lookup(primary fabric.DPtr) (replicaEntry, bool) {
	s.mu.Lock()
	e, ok := s.m[primary]
	s.mu.Unlock()
	return e, ok
}

func (s *replicaShard) install(primary fabric.DPtr, e replicaEntry) {
	s.mu.Lock()
	s.m[primary] = e
	s.mu.Unlock()
}

func (s *replicaShard) drop(primary fabric.DPtr) {
	s.mu.Lock()
	delete(s.m, primary)
	s.mu.Unlock()
}

// rekey moves an entry to a new primary key (after a follower promotion).
// Idempotent: the loser and the winner's rekey service call may both run.
func (s *replicaShard) rekey(old, new fabric.DPtr) {
	s.mu.Lock()
	if e, ok := s.m[old]; ok {
		delete(s.m, old)
		s.m[new] = e
	}
	s.mu.Unlock()
}

func (s *replicaShard) size() int {
	s.mu.Lock()
	n := len(s.m)
	s.mu.Unlock()
	return n
}

// promotable snapshots the entries whose primary lives on a dead rank.
func (s *replicaShard) promotable(dead map[fabric.Rank]bool) []promoteItem {
	var out []promoteItem
	s.mu.Lock()
	for primary, e := range s.m {
		if dead[primary.Rank()] {
			out = append(out, promoteItem{primary: primary, head: e.head, app: e.app})
		}
	}
	s.mu.Unlock()
	return out
}

type promoteItem struct {
	primary fabric.DPtr
	head    fabric.DPtr
	app     uint64
}

// runIsolated runs fn, absorbing a peer-death panic (the fabric's report that
// a remote operation hit a dead rank) into a false return. Every other panic
// propagates. Replication work is always best-effort against failures — a
// dead peer never takes the caller down with it.
func runIsolated(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, peer := fabric.AsPeerDeath(r); peer {
				ok = false
				return
			}
			panic(r)
		}
	}()
	fn()
	return true
}

// Directory plumbing across processes: direct map access when the follower
// rank's memory is in this process, one control-plane service call when not —
// the same routing the explicit indexes use.

func (e *Engine) replDirInstall(origin, fr fabric.Rank, primary, head fabric.DPtr, app uint64) {
	if e.fab.Local(fr) {
		e.repl[fr].install(primary, replicaEntry{head: head, app: app})
		return
	}
	req := make([]byte, 24)
	binary.LittleEndian.PutUint64(req[0:], uint64(primary))
	binary.LittleEndian.PutUint64(req[8:], uint64(head))
	binary.LittleEndian.PutUint64(req[16:], app)
	e.fab.Call(origin, fr, fabric.SvcReplicaInstall, req)
}

func (e *Engine) replDirDrop(origin, fr fabric.Rank, primary fabric.DPtr) {
	if e.fab.Local(fr) {
		e.repl[fr].drop(primary)
		return
	}
	req := make([]byte, 16)
	binary.LittleEndian.PutUint64(req[0:], uint64(primary))
	binary.LittleEndian.PutUint64(req[8:], uint64(fr))
	e.fab.Call(origin, fr, fabric.SvcReplicaDrop, req)
}

func (e *Engine) replDirRekey(origin, fr fabric.Rank, old, new fabric.DPtr) {
	if e.fab.Local(fr) {
		e.repl[fr].rekey(old, new)
		return
	}
	req := make([]byte, 24)
	binary.LittleEndian.PutUint64(req[0:], uint64(old))
	binary.LittleEndian.PutUint64(req[8:], uint64(new))
	binary.LittleEndian.PutUint64(req[16:], uint64(fr))
	e.fab.Call(origin, fr, fabric.SvcReplicaRekey, req)
}

// listVertices snapshots rank src's vertex shard as (appID, DPtr) pairs, for
// replica placement planning.
func (e *Engine) listVertices(origin, src fabric.Rank) []promoteItem {
	if e.fab.Local(src) {
		li := e.local[src]
		li.mu.Lock()
		out := make([]promoteItem, 0, len(li.verts))
		for dp, app := range li.verts {
			out = append(out, promoteItem{primary: dp, app: app})
		}
		li.mu.Unlock()
		return out
	}
	req := make([]byte, 8)
	binary.LittleEndian.PutUint64(req, uint64(src))
	resp := e.fab.Call(origin, src, fabric.SvcListVertices, req)
	out := make([]promoteItem, 0, len(resp)/16)
	for off := 0; off+16 <= len(resp); off += 16 {
		out = append(out, promoteItem{
			primary: fabric.DPtr(binary.LittleEndian.Uint64(resp[off:])),
			app:     binary.LittleEndian.Uint64(resp[off+8:]),
		})
	}
	return out
}

// bumpMirrors keeps followers in lockstep across a content-preserving write
// release — an abort, a skipped migration, a bailed seed. The primary's
// release bumped its version without changing content, so each follower word
// just tracks the bump (free@ver → free@ver+1) with one best-effort CAS
// train per follower rank. Called after the primary's release; a follower
// already out of lockstep, or on a dead rank, is left alone.
func (e *Engine) bumpMirrors(origin fabric.Rank, v *holder.Vertex, ver uint64) {
	if v == nil || len(v.Replicas) == 0 {
		return
	}
	byRank := make(map[fabric.Rank][]locks.Word)
	for _, g := range v.Replicas {
		if len(g) == 0 {
			continue
		}
		fr := g[0].Rank()
		if e.isDead(fr) {
			continue
		}
		byRank[fr] = append(byRank[fr], e.lockWordOf(g[0]))
	}
	for _, words := range byRank {
		vers := make([]uint64, len(words))
		for i := range vers {
			vers[i] = ver
		}
		w := words
		runIsolated(func() { locks.BumpMirrorTrain(origin, w, vers) })
	}
}

// ReplicateFromRank seeds follower copies on origin for every vertex of rank
// src that has fewer than k-1 followers and none here yet. Best-effort: busy,
// moved, already-replicated, or dead-rank vertices are skipped. Returns how
// many copies were seeded.
func (e *Engine) ReplicateFromRank(origin, src fabric.Rank, k int) int {
	if src == origin || e.isDead(src) {
		return 0
	}
	var listing []promoteItem
	if !runIsolated(func() { listing = e.listVertices(origin, src) }) {
		return 0
	}
	n := 0
	for _, it := range listing {
		seeded := false
		runIsolated(func() { seeded = e.replicateOne(origin, it.app, k) })
		if seeded {
			n++
		}
	}
	return n
}

// ReplicateUniform gives origin follower copies of the k-1 preceding ranks'
// vertices, so every vertex ends up with followers on the k-1 ranks after its
// primary once all ranks have run it. Returns the seed count.
func (e *Engine) ReplicateUniform(origin fabric.Rank, k int) int {
	n := 0
	size := e.fab.Size()
	for d := 1; d < k && d < size; d++ {
		src := fabric.Rank((int(origin) - d + size) % size)
		n += e.ReplicateFromRank(origin, src, k)
	}
	return n
}

// ReplicateHot seeds follower copies of origin's hottest remote vertices —
// the topM entries of its own access-heat shard whose primary lives
// elsewhere. This is the workload-aware placement the read-scale ablation
// uses: each rank replicates exactly what it reads most. Requires
// Config.RebalanceHeatTracking. Returns the seed count.
func (e *Engine) ReplicateHot(origin fabric.Rank, k, topM int) int {
	n := 0
	for _, s := range e.topHeat(origin, topM) {
		if s.Owner == origin {
			continue
		}
		seeded := false
		runIsolated(func() { seeded = e.replicateOne(origin, s.App, k) })
		if seeded {
			n++
		}
	}
	return n
}

// replicateOne pulls one follower copy of vertex app onto origin, leaving the
// vertex with at most k-1 follower groups. The primary is write-locked for
// the duration (best-effort — a contended vertex is skipped), the chain is
// re-encoded with the new group appended (which may grow the block count: the
// group region participates in the holder's fixed point, so the primary chain
// and every existing group grow in the same train), everything is published
// with one vectored PUT train per rank, and the fresh follower word enters
// lockstep at the version the primary's release bumps to.
func (e *Engine) replicateOne(origin fabric.Rank, app uint64, k int) bool {
	if k < 2 {
		return false
	}
	val, found := e.index.Lookup(origin, app)
	if !found {
		return false
	}
	primary := fabric.DPtr(val)
	if primary.Rank() == origin || !e.validPoolDPtr(primary) || e.isDead(primary.Rank()) {
		return false
	}
	if _, dup := e.repl[origin].lookup(primary); dup {
		return false
	}
	bs := e.cfg.BlockSize

	word := e.lockWordOf(primary)
	vers, held := locks.AcquireWriteTrainEach(origin, []locks.TrainLock{{Word: word}}, e.cfg.LockTries)
	if !held[0] {
		return false
	}
	pv := vers[0]

	var fresh []fabric.DPtr // rollback list for every block acquired here
	var v *holder.Vertex
	bail := func() bool {
		for _, dp := range fresh {
			e.store.ReleaseBlock(origin, dp)
		}
		locks.ReleaseWriteTrain(origin, []locks.Word{word}, []uint64{pv})
		// The release bumped the primary's version without changing content;
		// keep any existing followers in lockstep across it.
		if v != nil {
			e.bumpMirrors(origin, v, pv)
		}
		return false
	}

	// Read the chain under the lock (content is stable).
	buf := make([]byte, bs)
	e.store.ReadBlock(origin, primary, buf)
	nb := holder.NumBlocks(buf)
	if nb < 1 || nb > e.store.BlocksPerRank() || holder.IsMoved(buf) || holder.IsEdgeHolder(buf) {
		return bail()
	}
	chain := make([]fabric.DPtr, 1, nb)
	chain[0] = primary
	if nb > 1 {
		full := make([]byte, nb*bs)
		copy(full, buf)
		buf = full
		for i := 1; i < nb; i++ {
			dp := holder.TableEntry(buf, i-1)
			if !e.validPoolDPtr(dp) {
				return bail()
			}
			e.store.ReadBlock(origin, dp, buf[i*bs:(i+1)*bs])
			chain = append(chain, dp)
		}
	}
	var err error
	v, err = holder.DecodeVertex(buf)
	if err != nil || v.AppID != app || v.IsReplica {
		v = nil
		return bail()
	}
	if len(v.Replicas) >= k-1 {
		return bail()
	}
	for _, g := range v.Replicas {
		if len(g) == 0 || g[0].Rank() == origin || e.isDead(g[0].Rank()) {
			return bail() // already following here, corrupt group, or dead follower
		}
	}

	// Fixed point with one more group, then allocate: the new group here,
	// plus growth blocks for the primary chain and every existing group when
	// the bigger group region pushed the holder over a block boundary.
	existing := len(v.Replicas)
	v.Replicas = append(v.Replicas, nil)
	need := holder.VertexBlocksCodec(v, bs, e.cfg.HolderCodec)
	acquire := func(target fabric.Rank, dst []fabric.DPtr) ([]fabric.DPtr, bool) {
		for len(dst) < need {
			dp, aerr := e.store.AcquireBlock(origin, target)
			if aerr != nil {
				return dst, false
			}
			fresh = append(fresh, dp)
			dst = append(dst, dp)
		}
		return dst, true
	}
	group, ok := acquire(origin, make([]fabric.DPtr, 0, need))
	if !ok {
		return bail()
	}
	if chain, ok = acquire(primary.Rank(), chain); !ok {
		return bail()
	}
	for gi := 0; gi < existing; gi++ {
		if v.Replicas[gi], ok = acquire(v.Replicas[gi][0].Rank(), v.Replicas[gi]); !ok {
			return bail()
		}
	}
	v.Replicas[existing] = group

	// Version monotonicity guard: the fresh follower word will be stored to
	// pv+1, and version-validated caches rely on every word only moving
	// forward. A recycled block whose word already sits at or above pv+1
	// would rewind it — skip the vertex instead (rare: most block words sit
	// far below a live vertex's version).
	headWord := e.lockWordOf(group[0])
	if locks.Version(headWord.Stamp(origin))+1 > pv+1 {
		return bail()
	}

	// Mirror-mark the existing groups: their streams must be rewritten too
	// (the group region of the content changes with ours). A mark that fails
	// means lockstep was already broken — abort the seed and leave the vertex
	// as it was.
	gWords := make([]locks.Word, existing)
	gVers := make([]uint64, existing)
	for gi := 0; gi < existing; gi++ {
		gWords[gi] = e.lockWordOf(v.Replicas[gi][0])
		gVers[gi] = pv
	}
	if existing > 0 {
		heldG := locks.AcquireMirrorTrain(origin, gWords, gVers)
		all := true
		for _, h := range heldG {
			all = all && h
		}
		if !all {
			var got []locks.Word
			var gotV []uint64
			for i, h := range heldG {
				if h {
					got = append(got, gWords[i])
					gotV = append(gotV, gVers[i])
				}
			}
			if len(got) > 0 {
				locks.ReleaseMirrorTrain(origin, got, gotV) // to pv+1, matching bail's bump
			}
			return bail()
		}
	}

	// Publish: the grown primary chain plus every follower stream, one
	// vectored PUT train per rank.
	stream := holder.EncodeVertexCodec(v, bs, e.cfg.HolderCodec)
	for i := 1; i < need; i++ {
		holder.SetTableEntry(stream, i-1, chain[i])
	}
	var wDps []fabric.DPtr
	var wData [][]byte
	for i := 0; i < need; i++ {
		wDps = append(wDps, chain[i])
		wData = append(wData, stream[i*bs:(i+1)*bs])
	}
	for gi := 0; gi <= existing; gi++ {
		rep := holder.RewriteAsReplica(stream, v.Replicas[gi])
		for i, dp := range v.Replicas[gi] {
			wDps = append(wDps, dp)
			wData = append(wData, rep[i*bs:(i+1)*bs])
		}
	}
	e.store.WriteBlocksBatch(origin, wDps, wData)

	// Release in lockstep order: primary first (pv → pv+1), then the marked
	// groups, then the fresh word enters at pv+1; only then does the
	// directory make the copy reachable.
	locks.ReleaseWriteTrain(origin, []locks.Word{word}, []uint64{pv})
	if existing > 0 {
		locks.ReleaseMirrorTrain(origin, gWords, gVers)
	}
	locks.SeedMirrorWord(origin, headWord, pv)
	e.repl[origin].install(primary, replicaEntry{head: group[0], app: app})
	e.reseeds.Add(1)
	return true
}

// tryReplicaRead serves an optimistic fetch from a local follower copy: a
// seqlock read of the follower chain (stamp, read, re-stamp), decoded and
// validated, with the observed version recorded by the caller against the
// primary DPtr — the existing commit-time validation train then checks it
// against the primary's word, so a stale follower costs an abort, never a
// stale read. Returns false (and possibly drops the directory entry) on any
// miss; the caller falls back to the remote fetch path.
func (tx *Tx) tryReplicaRead(dp fabric.DPtr) (*vertexState, uint64, bool) {
	e := tx.eng
	ent, ok := e.repl[tx.rank].lookup(dp)
	if !ok {
		return nil, 0, false
	}
	bs := e.cfg.BlockSize
	word := e.lockWordOf(ent.head)
	w1 := word.Stamp(tx.rank)
	if locks.WriteHeld(w1) {
		return nil, 0, false // fan-out or reseed in flight
	}
	buf := make([]byte, bs)
	e.store.ReadBlock(tx.rank, ent.head, buf)
	nb := holder.NumBlocks(buf)
	if nb < 1 || nb > e.store.BlocksPerRank() || !holder.IsReplicaBlock(buf) || holder.IsMoved(buf) {
		e.repl[tx.rank].drop(dp)
		return nil, 0, false
	}
	if nb > 1 {
		full := make([]byte, nb*bs)
		copy(full, buf)
		buf = full
		for i := 1; i < nb; i++ {
			bdp := holder.TableEntry(buf, i-1)
			if !e.validPoolDPtr(bdp) || bdp.Rank() != tx.rank {
				e.repl[tx.rank].drop(dp)
				return nil, 0, false
			}
			e.store.ReadBlock(tx.rank, bdp, buf[i*bs:(i+1)*bs])
		}
	}
	if word.Stamp(tx.rank) != w1 {
		return nil, 0, false // torn: a fan-out landed mid-read
	}
	v, err := holder.DecodeVertex(buf)
	if err != nil || !v.IsReplica || v.AppID != ent.app {
		e.repl[tx.rank].drop(dp)
		return nil, 0, false
	}
	e.replicaReads.Add(1)
	st := &vertexState{primary: dp, v: v}
	return st, locks.Version(w1), true
}

// PromoteDead promotes this rank's follower copies of every vertex whose
// primary lives on a rank the transport has reported dead. Each entry races
// the vertex's other surviving followers through one DHT CAS
// (ReplaceFetch: dead primary → my follower head); the winner becomes the new
// primary, the losers learn the winner from the failed CAS and rekey their
// directories. Safe to call repeatedly; returns how many vertices this rank
// won.
//
// Call it after the surviving ranks' in-flight commits have drained (the
// OLTP drivers quiesce, then every survivor promotes). A follower word still
// write-marked at that point can only be the unfinished fan-out of a
// committer that died with the primary's rank, which promotion steals; a
// live committer racing this call could have its fan-out half-applied over
// the promoted copy.
func (e *Engine) PromoteDead(origin fabric.Rank) int {
	dead := e.deadSet()
	if len(dead) == 0 {
		return 0
	}
	if e.snap != nil {
		// Like migration: a cut must not stamp shards mid-rewrite.
		e.htapGate.RLock()
		defer e.htapGate.RUnlock()
	}
	won := 0
	for _, it := range e.repl[origin].promotable(dead) {
		promoted := false
		item := it
		runIsolated(func() { promoted = e.promoteOne(origin, item, dead) })
		if promoted {
			won++
		}
	}
	return won
}

func (e *Engine) promoteOne(origin fabric.Rank, it promoteItem, dead map[fabric.Rank]bool) bool {
	bs := e.cfg.BlockSize
	headWord := e.lockWordOf(it.head)

	// My follower word is normally free (the primary that mirror-marks it is
	// dead). A committer that died mid-fan-out can have left it marked — and
	// possibly the content torn — in which case the mark is stolen: nothing
	// will ever complete that fan-out.
	w := headWord.Stamp(origin)
	stolen := locks.WriteHeld(w)
	fv := locks.Version(w)

	cur, swapped, found := e.index.ReplaceFetch(origin, it.app, uint64(it.primary), uint64(it.head))
	if !found {
		// The vertex was deleted. The deleting commit's drop path owns the
		// follower blocks; only the directory entry is ours to clear.
		e.repl[origin].drop(it.primary)
		return false
	}
	if !swapped && fabric.DPtr(cur) != it.head {
		// Lost to another follower. If my word is free the winner mirror-marks
		// and rewrites my copy, so the entry stays valid under the new
		// primary; a stolen (dead-marked) word the winner cannot acquire —
		// it pruned my group, so the copy is garbage: self-drop.
		if stolen {
			e.repl[origin].drop(it.primary)
			e.replicaDrops.Add(1)
			// The blocks are mine alone now (the winner pruned the group);
			// read the chain to find and free them, best-effort.
			buf := make([]byte, bs)
			e.store.ReadBlock(origin, it.head, buf)
			if nb := holder.NumBlocks(buf); nb >= 1 && nb <= e.store.BlocksPerRank() && holder.IsReplicaBlock(buf) {
				locks.SeedMirrorWord(origin, headWord, fv) // clear the dead mark
				if nb > 1 {
					full := make([]byte, nb*bs)
					copy(full, buf)
					buf = full
					for i := 1; i < nb; i++ {
						dp := holder.TableEntry(buf, i-1)
						if !e.validPoolDPtr(dp) || dp.Rank() != origin {
							return false
						}
						e.store.ReadBlock(origin, dp, buf[i*bs:(i+1)*bs])
					}
				}
				if v, err := holder.DecodeVertex(buf); err == nil && v.AppID == it.app {
					for _, g := range v.Replicas {
						if len(g) > 0 && g[0] == it.head {
							for _, dp := range g {
								e.store.ReleaseBlock(origin, dp)
							}
							break
						}
					}
				}
			}
			return false
		}
		e.repl[origin].rekey(it.primary, fabric.DPtr(cur))
		return false
	}

	// Won (or resuming an earlier win that failed before finishing): take the
	// head word exclusively. A stolen mark already is exclusive possession.
	if !swapped && fabric.DPtr(cur) == it.head {
		// A previous PromoteDead call swung the entry but died before the
		// rewrite; fall through and finish the job.
	}
	if !stolen {
		if err := headWord.TryAcquireWrite(origin, e.cfg.LockTries); err != nil {
			return false // local contention; retry on the next PromoteDead
		}
		fv = locks.Version(headWord.Stamp(origin))
	}
	release := func() {
		locks.ReleaseWriteTrain(origin, []locks.Word{headWord}, []uint64{fv})
	}

	// Read my chain under the (held or stolen) word and decode. A torn
	// half-fan-out copy fails decode or identity — the vertex's latest
	// committed state is then unrecoverable from this rank; drop the entry so
	// readers fail over to the DHT's (now swung) placement... which is this
	// chain. That case means data loss was already inflicted by the dead rank
	// mid-commit; nothing to preserve.
	buf := make([]byte, bs)
	e.store.ReadBlock(origin, it.head, buf)
	nb := holder.NumBlocks(buf)
	if nb < 1 || nb > e.store.BlocksPerRank() || !holder.IsReplicaBlock(buf) {
		release()
		e.repl[origin].drop(it.primary)
		return false
	}
	chain := make([]fabric.DPtr, 1, nb)
	chain[0] = it.head
	if nb > 1 {
		full := make([]byte, nb*bs)
		copy(full, buf)
		buf = full
		for i := 1; i < nb; i++ {
			dp := holder.TableEntry(buf, i-1)
			if !e.validPoolDPtr(dp) || dp.Rank() != origin {
				release()
				e.repl[origin].drop(it.primary)
				return false
			}
			e.store.ReadBlock(origin, dp, buf[i*bs:(i+1)*bs])
			chain = append(chain, dp)
		}
	}
	v, err := holder.DecodeVertex(buf)
	if err != nil || v.AppID != it.app {
		release()
		e.repl[origin].drop(it.primary)
		return false
	}

	// Mirror-mark the surviving sibling followers (they are rewritten below
	// into lockstep with the new primary); prune my own group, every group on
	// a dead rank, and any sibling that fails the mark.
	var survivors [][]fabric.DPtr
	var sWords []locks.Word
	var sVers []uint64
	for _, g := range v.Replicas {
		if len(g) == 0 || g[0] == it.head || dead[g[0].Rank()] || e.isDead(g[0].Rank()) {
			continue
		}
		held := false
		gw := e.lockWordOf(g[0])
		runIsolated(func() {
			held = locks.AcquireMirrorTrain(origin, []locks.Word{gw}, []uint64{fv})[0]
		})
		if !held {
			e.replicaDrops.Add(1)
			continue
		}
		survivors = append(survivors, g)
		sWords = append(sWords, gw)
		sVers = append(sVers, fv)
	}

	// Re-encode as primary: replica flag cleared, my group and the dead
	// ranks' placements pruned. Content only shrinks, so the chains keep
	// their block count or release a tail.
	v.IsReplica = false
	v.Replicas = survivors
	homes := v.Homes[:0]
	for _, h := range v.Homes {
		if !dead[h.Rank()] && !e.isDead(h.Rank()) {
			homes = append(homes, h)
		}
	}
	v.Homes = homes
	codec := e.cfg.HolderCodec
	need := holder.VertexBlocksCodec(v, bs, codec)
	if need > nb {
		// A codec switch can inflate the re-encoding past the copy we hold
		// blocks for (a v2 follower promoted on a v1-configured engine). Fall
		// back to the copy's own codec, under which content only shrinks; the
		// next full rewrite converts the holder.
		codec = v.Codec
		need = holder.VertexBlocksCodec(v, bs, codec)
	}
	if need > nb {
		need = nb // cannot happen (content shrank); never grow past the copy
	}
	// Shrink every surviving group to the new block count before encoding
	// (group length must equal the holder's block count exactly).
	var freeTail []fabric.DPtr
	for gi, g := range v.Replicas {
		if len(g) > need {
			freeTail = append(freeTail, g[need:]...)
			v.Replicas[gi] = g[:need]
		}
	}
	stream := holder.EncodeVertexCodec(v, bs, codec)
	for i := 1; i < need; i++ {
		holder.SetTableEntry(stream, i-1, chain[i])
	}

	// Publish: my chain as the new primary, every survivor rewritten back
	// into lockstep.
	var wDps []fabric.DPtr
	var wData [][]byte
	for i := 0; i < need; i++ {
		wDps = append(wDps, chain[i])
		wData = append(wData, stream[i*bs:(i+1)*bs])
	}
	for _, g := range v.Replicas {
		rep := holder.RewriteAsReplica(stream, g)
		for i, dp := range g {
			wDps = append(wDps, dp)
			wData = append(wData, rep[i*bs:(i+1)*bs])
		}
	}
	runIsolated(func() { e.store.WriteBlocksBatch(origin, wDps, wData) })

	// Explicit indexes: the vertex now lives here; the dead rank's shard (if
	// its memory is still in this process, as under the simulator's kill) is
	// cleaned so collective scans stop listing the stale placement.
	e.idxAddVertex(origin, it.head, it.app, v.Labels)
	if e.fab.Local(it.primary.Rank()) {
		e.local[it.primary.Rank()].removeVertex(it.primary, v.Labels)
	}

	// Release primary-then-follower: my word bumps to fv+1, the survivors
	// follow, and their directories rekey to the new primary.
	if stolen {
		// The word carries the dead committer's mark, not a train
		// acquisition; an unconditional store completes the "release".
		locks.SeedMirrorWord(origin, headWord, fv)
	} else {
		release()
	}
	if len(sWords) > 0 {
		runIsolated(func() { locks.ReleaseMirrorTrain(origin, sWords, sVers) })
	}
	for _, g := range v.Replicas {
		fr := g[0].Rank()
		gr := g
		runIsolated(func() { e.replDirRekey(origin, fr, it.primary, it.head) })
		_ = gr
	}
	for _, dp := range freeTail {
		dpc := dp
		runIsolated(func() { e.store.ReleaseBlock(origin, dpc) })
	}
	for _, dp := range chain[need:] {
		e.store.ReleaseBlock(origin, dp)
	}
	e.repl[origin].drop(it.primary)
	e.promotions.Add(1)
	return true
}

// dropFollowerGroups retires a replicated vertex's follower groups at commit
// time (reshape or deletion): each group's head is poisoned through the
// commit's write-back train (put), its blocks are returned, and the follower
// rank's directory entry is dropped — all best-effort against dead ranks. A
// racing local replica read on the follower rank observes either the old
// content (and fails version validation against the primary) or the poison
// (and falls back); neither yields a stale read.
func (e *Engine) dropFollowerGroups(origin fabric.Rank, primary fabric.DPtr, groups [][]fabric.DPtr) {
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		fr := g[0].Rank()
		if !e.isDead(fr) {
			gr := g
			runIsolated(func() {
				for _, dp := range gr {
					e.store.ReleaseBlock(origin, dp)
				}
				e.replDirDrop(origin, fr, primary)
			})
		}
		e.replicaDrops.Add(1)
	}
}
