package core

import (
	"encoding/binary"

	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/lpg"
)

// The explicit indexes (localIndex) are process-local bookkeeping, but the
// ranks that maintain them are not always the ranks that own them: a
// committer inserts a new vertex into the *owner's* shard, and live
// migration retracts a moved vertex from its *old* owner's shard. In the
// simulator every shard is reachable directly; across processes these
// updates ride the transport's control-plane service channel
// (fabric.SvcIndex*). The data path — blocks, locks, DHT — stays strictly
// one-sided in both modes; only this eventual-consistency index maintenance
// (§3.8) uses the escape hatch.

// multiProcess reports whether any rank's memory lives outside this process.
func (e *Engine) multiProcess() bool { return e.mp }

func computeMultiProcess(f fabric.Transport) bool {
	for r := 0; r < f.Size(); r++ {
		if !f.Local(fabric.Rank(r)) {
			return true
		}
	}
	return false
}

// registerServices installs the index-maintenance handlers on the transport.
// Called from NewEngine only in multi-process mode, where one process hosts
// exactly one engine (the transport panics on duplicate registration).
func (e *Engine) registerServices() {
	e.fab.Register(fabric.SvcIndexAdd, func(from fabric.Rank, req []byte) []byte {
		dp, app, labels := decodeIndexAdd(req)
		e.local[dp.Rank()].addVertex(dp, app, labels)
		return nil
	})
	e.fab.Register(fabric.SvcIndexRemove, func(from fabric.Rank, req []byte) []byte {
		dp, _, labels := decodeIndexAdd(req)
		e.local[dp.Rank()].removeVertex(dp, labels)
		return nil
	})
	e.fab.Register(fabric.SvcIndexRelabel, func(from fabric.Rank, req []byte) []byte {
		dp, old, new := decodeIndexRelabel(req)
		e.local[dp.Rank()].updateLabels(dp, old, new)
		return nil
	})
	// Replica-directory maintenance: seeders install, committers drop on
	// reshape/delete, promotion winners rekey survivors. The hosting rank is
	// carried in the request (install routes by the follower head's rank).
	e.fab.Register(fabric.SvcReplicaInstall, func(from fabric.Rank, req []byte) []byte {
		primary := fabric.DPtr(binary.LittleEndian.Uint64(req[0:]))
		head := fabric.DPtr(binary.LittleEndian.Uint64(req[8:]))
		app := binary.LittleEndian.Uint64(req[16:])
		e.repl[head.Rank()].install(primary, replicaEntry{head: head, app: app})
		return nil
	})
	e.fab.Register(fabric.SvcReplicaDrop, func(from fabric.Rank, req []byte) []byte {
		primary := fabric.DPtr(binary.LittleEndian.Uint64(req[0:]))
		fr := fabric.Rank(binary.LittleEndian.Uint64(req[8:]))
		e.repl[fr].drop(primary)
		return nil
	})
	e.fab.Register(fabric.SvcReplicaRekey, func(from fabric.Rank, req []byte) []byte {
		old := fabric.DPtr(binary.LittleEndian.Uint64(req[0:]))
		new := fabric.DPtr(binary.LittleEndian.Uint64(req[8:]))
		fr := fabric.Rank(binary.LittleEndian.Uint64(req[16:]))
		e.repl[fr].rekey(old, new)
		return nil
	})
	e.fab.Register(fabric.SvcListVertices, func(from fabric.Rank, req []byte) []byte {
		src := fabric.Rank(binary.LittleEndian.Uint64(req))
		li := e.local[src]
		li.mu.Lock()
		resp := make([]byte, 0, 16*len(li.verts))
		for dp, app := range li.verts {
			resp = binary.LittleEndian.AppendUint64(resp, uint64(dp))
			resp = binary.LittleEndian.AppendUint64(resp, app)
		}
		li.mu.Unlock()
		return resp
	})
}

// idxAddVertex publishes a committed vertex into its owner's explicit
// indexes: directly when the owner's shard is in this process, else via one
// service call to the owning process.
func (e *Engine) idxAddVertex(origin fabric.Rank, dp fabric.DPtr, appID uint64, labels []lpg.LabelID) {
	owner := dp.Rank()
	if e.fab.Local(owner) {
		e.local[owner].addVertex(dp, appID, labels)
		return
	}
	e.fab.Call(origin, owner, fabric.SvcIndexAdd, encodeIndexAdd(dp, appID, labels))
}

// idxRemoveVertex retracts a deleted (or migrated-away) vertex from its
// owner's explicit indexes.
func (e *Engine) idxRemoveVertex(origin fabric.Rank, dp fabric.DPtr, labels []lpg.LabelID) {
	owner := dp.Rank()
	if e.fab.Local(owner) {
		e.local[owner].removeVertex(dp, labels)
		return
	}
	e.fab.Call(origin, owner, fabric.SvcIndexRemove, encodeIndexAdd(dp, 0, labels))
}

// idxUpdateLabels rewrites a vertex's label postings on its owner.
func (e *Engine) idxUpdateLabels(origin fabric.Rank, dp fabric.DPtr, old, new []lpg.LabelID) {
	owner := dp.Rank()
	if e.fab.Local(owner) {
		e.local[owner].updateLabels(dp, old, new)
		return
	}
	e.fab.Call(origin, owner, fabric.SvcIndexRelabel, encodeIndexRelabel(dp, old, new))
}

// Wire codec: fixed-width little-endian, labels as u32 runs.

func appendLabels(b []byte, labels []lpg.LabelID) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(labels)))
	for _, l := range labels {
		b = binary.LittleEndian.AppendUint32(b, uint32(l))
	}
	return b
}

func takeLabels(b []byte) ([]lpg.LabelID, []byte) {
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	var labels []lpg.LabelID
	for i := uint32(0); i < n; i++ {
		labels = append(labels, lpg.LabelID(binary.LittleEndian.Uint32(b)))
		b = b[4:]
	}
	return labels, b
}

func encodeIndexAdd(dp fabric.DPtr, appID uint64, labels []lpg.LabelID) []byte {
	b := make([]byte, 0, 20+4*len(labels))
	b = binary.LittleEndian.AppendUint64(b, uint64(dp))
	b = binary.LittleEndian.AppendUint64(b, appID)
	return appendLabels(b, labels)
}

func decodeIndexAdd(b []byte) (fabric.DPtr, uint64, []lpg.LabelID) {
	dp := fabric.DPtr(binary.LittleEndian.Uint64(b))
	app := binary.LittleEndian.Uint64(b[8:])
	labels, _ := takeLabels(b[16:])
	return dp, app, labels
}

func encodeIndexRelabel(dp fabric.DPtr, old, new []lpg.LabelID) []byte {
	b := make([]byte, 0, 16+4*(len(old)+len(new)))
	b = binary.LittleEndian.AppendUint64(b, uint64(dp))
	b = appendLabels(b, old)
	return appendLabels(b, new)
}

func decodeIndexRelabel(b []byte) (fabric.DPtr, []lpg.LabelID, []lpg.LabelID) {
	dp := fabric.DPtr(binary.LittleEndian.Uint64(b))
	old, rest := takeLabels(b[8:])
	new, _ := takeLabels(rest)
	return dp, old, new
}
