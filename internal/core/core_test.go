package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/gdi-go/gdi/internal/constraint"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
	"github.com/gdi-go/gdi/internal/rma"
)

func newEngine(t *testing.T, ranks int) *Engine {
	t.Helper()
	return NewEngine(rma.New(ranks), Config{
		BlockSize:     256,
		BlocksPerRank: 4096,
	})
}

// seedPersonSchema registers the schema used across tests.
func seedPersonSchema(t *testing.T, e *Engine) (person, knows lpg.LabelID, age, name lpg.PTypeID) {
	t.Helper()
	var err error
	if person, err = e.DefineLabel("Person"); err != nil {
		t.Fatal(err)
	}
	if knows, err = e.DefineLabel("KNOWS"); err != nil {
		t.Fatal(err)
	}
	if age, err = e.DefinePType("age", metadata.PTypeSpec{Datatype: lpg.TypeUint64, SizeType: lpg.SizeFixed, Limit: 8}); err != nil {
		t.Fatal(err)
	}
	if name, err = e.DefinePType("name", metadata.PTypeSpec{Datatype: lpg.TypeString}); err != nil {
		t.Fatal(err)
	}
	return
}

func TestCreateCommitAndRead(t *testing.T) {
	e := newEngine(t, 2)
	person, _, age, name := seedPersonSchema(t, e)

	tx := e.StartLocal(0, ReadWrite)
	dp, err := tx.CreateVertex(42)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddLabel(person); err != nil {
		t.Fatal(err)
	}
	if err := h.SetProperty(age, lpg.EncodeUint64(33)); err != nil {
		t.Fatal(err)
	}
	if err := h.SetProperty(name, lpg.EncodeString("alice")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// A fresh transaction on another rank sees the committed state.
	tx2 := e.StartLocal(1, ReadOnly)
	got, err := tx2.TranslateVertexID(42)
	if err != nil {
		t.Fatal(err)
	}
	if got != dp {
		t.Fatalf("TranslateVertexID = %v, want %v", got, dp)
	}
	h2, err := tx2.AssociateVertex(got)
	if err != nil {
		t.Fatal(err)
	}
	if h2.AppID() != 42 || !h2.HasLabel(person) {
		t.Fatalf("vertex state wrong: appID=%d labels=%v", h2.AppID(), h2.Labels())
	}
	if v, ok := h2.Property(age); !ok || lpg.DecodeUint64(v) != 33 {
		t.Fatalf("age = %v, %v", v, ok)
	}
	if v, ok := h2.Property(name); !ok || lpg.DecodeString(v) != "alice" {
		t.Fatalf("name = %q, %v", v, ok)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortDiscardsEverything(t *testing.T) {
	e := newEngine(t, 1)
	free := e.FreeBlocks(0)
	tx := e.StartLocal(0, ReadWrite)
	if _, err := tx.CreateVertex(7); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if got := e.FreeBlocks(0); got != free {
		t.Fatalf("aborted create leaked blocks: %d -> %d", free, got)
	}
	tx2 := e.StartLocal(0, ReadOnly)
	if _, err := tx2.TranslateVertexID(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted vertex visible: err = %v", err)
	}
	tx2.Commit()
}

func TestUncommittedInvisible(t *testing.T) {
	e := newEngine(t, 1)
	tx := e.StartLocal(0, ReadWrite)
	if _, err := tx.CreateVertex(1); err != nil {
		t.Fatal(err)
	}
	probe := e.StartLocal(0, ReadOnly)
	if _, err := probe.TranslateVertexID(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted vertex visible: %v", err)
	}
	probe.Commit()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyRejectsMutations(t *testing.T) {
	e := newEngine(t, 1)
	person, _, age, _ := seedPersonSchema(t, e)
	setup := e.StartLocal(0, ReadWrite)
	dp, _ := setup.CreateVertex(1)
	setup.Commit()

	tx := e.StartLocal(0, ReadOnly)
	if _, err := tx.CreateVertex(2); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("CreateVertex in RO tx: %v", err)
	}
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddLabel(person); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("AddLabel in RO tx: %v", err)
	}
	if err := h.SetProperty(age, lpg.EncodeUint64(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("SetProperty in RO tx: %v", err)
	}
	tx.Commit()
}

func TestEdgesLifecycle(t *testing.T) {
	e := newEngine(t, 2)
	_, knows, _, _ := seedPersonSchema(t, e)
	tx := e.StartLocal(0, ReadWrite)
	a, _ := tx.CreateVertex(1)
	b, _ := tx.CreateVertex(2)
	uid, err := tx.CreateEdge(a, b, holder.DirOut, knows)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := e.StartLocal(1, ReadOnly)
	ha, _ := tx2.AssociateVertex(a)
	hb, _ := tx2.AssociateVertex(b)
	if ha.CountEdges(MaskOut) != 1 || ha.CountEdges(MaskIn) != 0 {
		t.Fatalf("origin edge counts: out=%d in=%d", ha.CountEdges(MaskOut), ha.CountEdges(MaskIn))
	}
	if hb.CountEdges(MaskIn) != 1 || hb.CountEdges(MaskOut) != 0 {
		t.Fatalf("target edge counts: in=%d out=%d", hb.CountEdges(MaskIn), hb.CountEdges(MaskOut))
	}
	infos, err := ha.Edges(MaskAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Neighbor != b || infos[0].Label != knows || infos[0].Dir != holder.DirOut {
		t.Fatalf("edge info = %+v", infos)
	}
	tx2.Commit()

	// Delete the edge from the target side's sibling record.
	tx3 := e.StartLocal(0, ReadWrite)
	if err := tx3.DeleteEdge(uid); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	tx4 := e.StartLocal(0, ReadOnly)
	ha, _ = tx4.AssociateVertex(a)
	hb, _ = tx4.AssociateVertex(b)
	if ha.Degree() != 0 || hb.Degree() != 0 {
		t.Fatalf("degrees after delete: %d, %d", ha.Degree(), hb.Degree())
	}
	tx4.Commit()
}

func TestUndirectedEdgeVisibleBothSides(t *testing.T) {
	e := newEngine(t, 1)
	tx := e.StartLocal(0, ReadWrite)
	a, _ := tx.CreateVertex(1)
	b, _ := tx.CreateVertex(2)
	if _, err := tx.CreateEdge(a, b, holder.DirUndirected, 0); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx2 := e.StartLocal(0, ReadOnly)
	for _, dp := range []rma.DPtr{a, b} {
		h, _ := tx2.AssociateVertex(dp)
		if h.CountEdges(MaskUndirected) != 1 {
			t.Fatalf("vertex %v does not see the undirected edge", dp)
		}
	}
	tx2.Commit()
}

func TestSelfLoop(t *testing.T) {
	e := newEngine(t, 1)
	tx := e.StartLocal(0, ReadWrite)
	a, _ := tx.CreateVertex(1)
	uid, err := tx.CreateEdge(a, a, holder.DirOut, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx2 := e.StartLocal(0, ReadOnly)
	h, _ := tx2.AssociateVertex(a)
	if h.CountEdges(MaskOut) != 1 || h.CountEdges(MaskIn) != 1 {
		t.Fatalf("self-loop counts: out=%d in=%d", h.CountEdges(MaskOut), h.CountEdges(MaskIn))
	}
	tx2.Commit()
	tx3 := e.StartLocal(0, ReadWrite)
	if err := tx3.DeleteEdge(uid); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	tx4 := e.StartLocal(0, ReadOnly)
	h, _ = tx4.AssociateVertex(a)
	if h.Degree() != 0 {
		t.Fatalf("self-loop not fully removed: degree=%d", h.Degree())
	}
	tx4.Commit()
}

func TestHeavyEdgeRoundTrip(t *testing.T) {
	e := newEngine(t, 2)
	_, knows, _, _ := seedPersonSchema(t, e)
	weight, err := e.DefinePType("weight", metadata.PTypeSpec{Datatype: lpg.TypeFloat64, Entity: lpg.EntityEdge, SizeType: lpg.SizeFixed, Limit: 8})
	if err != nil {
		t.Fatal(err)
	}
	since, err := e.DefinePType("since", metadata.PTypeSpec{Datatype: lpg.TypeUint64, Entity: lpg.EntityEdge, SizeType: lpg.SizeFixed, Limit: 8})
	if err != nil {
		t.Fatal(err)
	}

	tx := e.StartLocal(0, ReadWrite)
	a, _ := tx.CreateVertex(1)
	b, _ := tx.CreateVertex(2)
	_, err = tx.CreateRichEdge(a, b, holder.DirOut,
		[]lpg.LabelID{knows},
		[]lpg.Property{
			{PType: weight, Value: lpg.EncodeFloat64(0.75)},
			{PType: since, Value: lpg.EncodeUint64(2020)},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := e.StartLocal(1, ReadOnly)
	ha, _ := tx2.AssociateVertex(a)
	infos, err := ha.Edges(MaskOut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Heavy || infos[0].Neighbor != b || infos[0].Label != knows {
		t.Fatalf("heavy edge info = %+v", infos)
	}
	eh, err := tx2.AssociateEdgeHolder(infos[0].Holder)
	if err != nil {
		t.Fatal(err)
	}
	o, tgt := eh.Vertices()
	if o != a || tgt != b {
		t.Fatalf("edge endpoints = %v, %v", o, tgt)
	}
	if vals := eh.Properties(weight); len(vals) != 1 || lpg.DecodeFloat64(vals[0]) != 0.75 {
		t.Fatalf("weight = %v", vals)
	}
	// The target also resolves the true neighbor through the holder.
	hb, _ := tx2.AssociateVertex(b)
	binfos, _ := hb.Edges(MaskIn, nil)
	if len(binfos) != 1 || binfos[0].Neighbor != a {
		t.Fatalf("target-side heavy edge = %+v", binfos)
	}
	tx2.Commit()
}

func TestConstraintFilteredEdges(t *testing.T) {
	e := newEngine(t, 1)
	_, knows, _, _ := seedPersonSchema(t, e)
	owns, _ := e.DefineLabel("OWNS")
	tx := e.StartLocal(0, ReadWrite)
	a, _ := tx.CreateVertex(1)
	b, _ := tx.CreateVertex(2)
	c, _ := tx.CreateVertex(3)
	tx.CreateEdge(a, b, holder.DirOut, knows)
	tx.CreateEdge(a, c, holder.DirOut, owns)
	tx.Commit()

	tx2 := e.StartLocal(0, ReadOnly)
	h, _ := tx2.AssociateVertex(a)
	cons := &constraint.Constraint{}
	i := cons.AddSubconstraint(constraint.Subconstraint{})
	cons.AddLabelCond(i, constraint.LabelCond{Label: owns})
	infos, err := h.Edges(MaskOut, cons)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Neighbor != c {
		t.Fatalf("constrained edges = %+v", infos)
	}
	tx2.Commit()
}

func TestDeleteVertexCleansEverything(t *testing.T) {
	e := newEngine(t, 2)
	person, knows, _, _ := seedPersonSchema(t, e)
	tx := e.StartLocal(0, ReadWrite)
	a, _ := tx.CreateVertex(1)
	b, _ := tx.CreateVertex(2)
	c, _ := tx.CreateVertex(3)
	ha, _ := tx.AssociateVertex(a)
	ha.AddLabel(person)
	tx.CreateEdge(a, b, holder.DirOut, knows)
	tx.CreateEdge(c, a, holder.DirOut, knows)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	freeBefore0, freeBefore1 := e.FreeBlocks(0), e.FreeBlocks(1)

	tx2 := e.StartLocal(1, ReadWrite)
	if err := tx2.DeleteVertex(a); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	tx3 := e.StartLocal(0, ReadOnly)
	if _, err := tx3.TranslateVertexID(1); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted vertex still translatable")
	}
	if _, err := tx3.AssociateVertex(a); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted vertex still associable")
	}
	hb, _ := tx3.AssociateVertex(b)
	hc, _ := tx3.AssociateVertex(c)
	if hb.Degree() != 0 || hc.Degree() != 0 {
		t.Fatalf("neighbors keep dangling records: %d, %d", hb.Degree(), hc.Degree())
	}
	tx3.Commit()
	if got := e.LocalVerticesWithLabel(a.Rank(), person); len(got) != 0 {
		t.Fatalf("label index keeps deleted vertex: %v", got)
	}
	// The vertex's block must be back in the pool (neighbors unchanged size).
	if e.FreeBlocks(0)+e.FreeBlocks(1) <= freeBefore0+freeBefore1-1 {
		t.Fatalf("blocks leaked on delete: before=%d/%d after=%d/%d",
			freeBefore0, freeBefore1, e.FreeBlocks(0), e.FreeBlocks(1))
	}
}

func TestLabelIndexMaintained(t *testing.T) {
	e := newEngine(t, 2)
	person, _, _, _ := seedPersonSchema(t, e)
	car, _ := e.DefineLabel("Car")

	tx := e.StartLocal(0, ReadWrite)
	var dps []rma.DPtr
	for i := uint64(0); i < 10; i++ {
		dp, _ := tx.CreateVertex(i)
		h, _ := tx.AssociateVertex(dp)
		if i%2 == 0 {
			h.AddLabel(person)
		} else {
			h.AddLabel(car)
		}
		dps = append(dps, dp)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	count := func(l lpg.LabelID) int {
		n := 0
		for r := 0; r < 2; r++ {
			n += len(e.LocalVerticesWithLabel(rma.Rank(r), l))
		}
		return n
	}
	if count(person) != 5 || count(car) != 5 {
		t.Fatalf("label postings: person=%d car=%d", count(person), count(car))
	}

	// Relabel one vertex: postings must follow.
	tx2 := e.StartLocal(0, ReadWrite)
	h, _ := tx2.AssociateVertex(dps[0])
	h.RemoveLabel(person)
	h.AddLabel(car)
	tx2.Commit()
	if count(person) != 4 || count(car) != 6 {
		t.Fatalf("after relabel: person=%d car=%d", count(person), count(car))
	}
}

func TestMultiBlockGrowthAndShrink(t *testing.T) {
	e := newEngine(t, 1)
	blob, err := e.DefinePType("blob", metadata.PTypeSpec{Datatype: lpg.TypeBytes})
	if err != nil {
		t.Fatal(err)
	}
	free0 := e.FreeBlocks(0)

	tx := e.StartLocal(0, ReadWrite)
	dp, _ := tx.CreateVertex(9)
	h, _ := tx.AssociateVertex(dp)
	big := make([]byte, 2000) // ~8 blocks of 256B
	for i := range big {
		big[i] = byte(i)
	}
	if err := h.SetProperty(blob, big); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := e.StartLocal(0, ReadOnly)
	h2, _ := tx2.AssociateVertex(dp)
	got, ok := h2.Property(blob)
	if !ok || len(got) != 2000 || got[1999] != big[1999] {
		t.Fatalf("multi-block property corrupted: ok=%v len=%d", ok, len(got))
	}
	tx2.Commit()

	// Shrink back: removing the property must release the extra blocks.
	tx3 := e.StartLocal(0, ReadWrite)
	h3, _ := tx3.AssociateVertex(dp)
	if _, err := h3.RemoveProperties(blob); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.FreeBlocks(0); got != free0-1 { // only the primary remains
		t.Fatalf("shrink did not release blocks: free=%d want %d", got, free0-1)
	}
}

func TestLockConflictFailsTransaction(t *testing.T) {
	// The scalar write path takes exclusive locks eagerly at mutation time;
	// the batched path defers them to the commit lock train (covered by
	// TestDeferredUpgradeConflictSurfacesAtCommit).
	e := NewEngine(rma.New(1), Config{BlockSize: 256, BlocksPerRank: 4096, ScalarCommit: true})
	tx := e.StartLocal(0, ReadWrite)
	dp, _ := tx.CreateVertex(1)
	tx.Commit()

	// Writer holds the exclusive lock...
	w := e.StartLocal(0, ReadWrite)
	hw, err := w.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ensureWrite(hw.st); err != nil {
		t.Fatal(err)
	}
	// ...so a reader must fail with a transaction-critical error.
	r := e.StartLocal(0, ReadWrite)
	if _, err := r.AssociateVertex(dp); !errors.Is(err, ErrTxCritical) {
		t.Fatalf("read under write lock: %v", err)
	}
	if r.Critical() == nil {
		t.Fatal("transaction not marked critical")
	}
	// Every further operation fails fast...
	if _, err := r.TranslateVertexID(1); !errors.Is(err, ErrTxCritical) {
		t.Fatalf("post-critical op: %v", err)
	}
	// ...and commit reports the failure.
	if err := r.Commit(); !errors.Is(err, ErrTxCritical) {
		t.Fatalf("commit of critical tx: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// After the writer committed, readers succeed again.
	r2 := e.StartLocal(0, ReadOnly)
	if _, err := r2.AssociateVertex(dp); err != nil {
		t.Fatal(err)
	}
	r2.Commit()
}

func TestDeferredUpgradeConflictSurfacesAtCommit(t *testing.T) {
	// Batched write path: a mutation on a read-held vertex only marks the
	// upgrade; the held shared lock keeps other writers out, and the
	// exclusive CAS happens in the commit lock train. A concurrent reader
	// therefore still associates freely, and the writer's commit fails
	// while that reader is live.
	e := newEngine(t, 1)
	_, _, age, _ := seedPersonSchema(t, e)
	tx := e.StartLocal(0, ReadWrite)
	dp, _ := tx.CreateVertex(1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	w := e.StartLocal(0, ReadWrite)
	hw, err := w.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.SetProperty(age, lpg.EncodeUint64(30)); err != nil {
		t.Fatal("mutation with deferred upgrade failed:", err)
	}
	if hw.st.lock != lockUpgrade {
		t.Fatalf("lock state = %v, want deferred upgrade", hw.st.lock)
	}

	// A reader can still join: the word holds shared locks only.
	r := e.StartLocal(0, ReadOnly)
	if _, err := r.AssociateVertex(dp); err != nil {
		t.Fatal("reader blocked by a deferred upgrade:", err)
	}

	// The writer's commit train cannot upgrade past the live reader.
	if err := w.Commit(); !errors.Is(err, ErrTxCritical) {
		t.Fatalf("commit with live reader: %v, want ErrTxCritical", err)
	}
	r.Commit()

	// With the reader gone, a fresh writer commits and the value lands.
	w2 := e.StartLocal(0, ReadWrite)
	h2, err := w2.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.SetProperty(age, lpg.EncodeUint64(31)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}
	check := e.StartLocal(0, ReadOnly)
	hc, err := check.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := hc.Property(age); !ok || lpg.DecodeUint64(v) != 31 {
		t.Fatalf("age after retry = %v, %v; want 31", v, ok)
	}
	check.Commit()
}

func TestUpgradeConflictAborts(t *testing.T) {
	e := newEngine(t, 1)
	tx := e.StartLocal(0, ReadWrite)
	dp, _ := tx.CreateVertex(1)
	tx.Commit()

	t1 := e.StartLocal(0, ReadWrite)
	t2 := e.StartLocal(0, ReadWrite)
	h1, _ := t1.AssociateVertex(dp)
	if _, err := t2.AssociateVertex(dp); err != nil {
		t.Fatal(err)
	}
	// Two readers; t1 tries to upgrade and must fail (t2 still reads).
	if err := h1.AddLabel(0); !errors.Is(err, ErrTxCritical) && !errors.Is(err, ErrNotFound) {
		t.Fatalf("upgrade with concurrent reader: %v", err)
	}
	t1.Abort()
	t2.Commit()
}

func TestTxUseAfterClose(t *testing.T) {
	e := newEngine(t, 1)
	tx := e.StartLocal(0, ReadWrite)
	dp, _ := tx.CreateVertex(1)
	tx.Commit()
	if _, err := tx.AssociateVertex(dp); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("use after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxClosed) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestPropertyMultiplicityEnforced(t *testing.T) {
	e := newEngine(t, 1)
	nick, _ := e.DefinePType("nick", metadata.PTypeSpec{Datatype: lpg.TypeString, Mult: lpg.MultiMany})
	ssn, _ := e.DefinePType("ssn", metadata.PTypeSpec{Datatype: lpg.TypeString, Mult: lpg.MultiSingle})
	tx := e.StartLocal(0, ReadWrite)
	dp, _ := tx.CreateVertex(1)
	h, _ := tx.AssociateVertex(dp)
	if err := h.AddProperty(nick, lpg.EncodeString("al")); err != nil {
		t.Fatal(err)
	}
	if err := h.AddProperty(nick, lpg.EncodeString("ali")); err != nil {
		t.Fatal(err)
	}
	if err := h.AddProperty(ssn, lpg.EncodeString("1")); err != nil {
		t.Fatal(err)
	}
	if err := h.AddProperty(ssn, lpg.EncodeString("2")); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("second single-valued entry: %v", err)
	}
	if got := h.Properties(nick); len(got) != 2 {
		t.Fatalf("multi property entries = %d", len(got))
	}
	if got := h.PTypes(); len(got) != 2 {
		t.Fatalf("PTypes = %v", got)
	}
	tx.Commit()
}

func TestEntityTypeEnforced(t *testing.T) {
	e := newEngine(t, 1)
	edgeOnly, _ := e.DefinePType("edge_only", metadata.PTypeSpec{Datatype: lpg.TypeUint64, Entity: lpg.EntityEdge, SizeType: lpg.SizeFixed, Limit: 8})
	tx := e.StartLocal(0, ReadWrite)
	dp, _ := tx.CreateVertex(1)
	h, _ := tx.AssociateVertex(dp)
	if err := h.SetProperty(edgeOnly, lpg.EncodeUint64(1)); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("edge-only property on vertex: %v", err)
	}
	tx.Abort()
}

func TestMetadataStalenessAbortsWriters(t *testing.T) {
	e := newEngine(t, 1)
	tx := e.StartLocal(0, ReadWrite)
	dp, err := tx.CreateVertex(5)
	if err != nil {
		t.Fatal(err)
	}
	_ = dp
	// Metadata changes while the transaction is open.
	if _, err := e.DefineLabel("LateLabel"); err != nil {
		t.Fatal(err)
	}
	if !tx.MetadataStale() {
		t.Fatal("staleness not detected")
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxCritical) {
		t.Fatalf("stale write commit: %v", err)
	}
}

func TestCollectiveTransactionAllRanks(t *testing.T) {
	const ranks = 4
	e := newEngine(t, ranks)
	person, _ := e.DefineLabel("Person")

	// Bulk-load 40 labeled vertices from rank 0's spec slice.
	e.fab.Run(func(r rma.Rank) {
		var specs []VertexSpec
		if r == 0 {
			for i := uint64(0); i < 40; i++ {
				specs = append(specs, VertexSpec{AppID: i, Labels: []lpg.LabelID{person}})
			}
		}
		if err := e.BulkLoadVertices(r, specs); err != nil {
			t.Error(err)
		}
	})

	// A collective read transaction scans local shards.
	counts := make([]int, ranks)
	e.fab.Run(func(r rma.Rank) {
		tx := e.StartCollective(r, ReadOnly)
		if !tx.Collective() {
			t.Error("transaction not marked collective")
		}
		local := e.LocalVertices(r)
		for _, dp := range local {
			h, err := tx.AssociateVertex(dp)
			if err != nil {
				t.Error(err)
				break
			}
			if h.HasLabel(person) {
				counts[r]++
			}
		}
		if err := tx.Commit(); err != nil {
			t.Error(err)
		}
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 40 {
		t.Fatalf("collective scan counted %d, want 40", total)
	}
}

func TestBulkLoadEdgesBuildsGraph(t *testing.T) {
	const ranks = 4
	e := newEngine(t, ranks)
	knows, _ := e.DefineLabel("KNOWS")
	const n = 32
	e.fab.Run(func(r rma.Rank) {
		var vs []VertexSpec
		var es []EdgeSpec
		if r == 0 {
			for i := uint64(0); i < n; i++ {
				vs = append(vs, VertexSpec{AppID: i})
			}
			for i := uint64(0); i < n; i++ { // ring + chords
				es = append(es, EdgeSpec{OriginApp: i, TargetApp: (i + 1) % n, Dir: holder.DirOut, Label: knows})
				es = append(es, EdgeSpec{OriginApp: i, TargetApp: (i + 5) % n, Dir: holder.DirOut, Label: knows})
			}
		}
		if err := e.BulkLoadVertices(r, vs); err != nil {
			t.Error(err)
			return
		}
		if err := e.BulkLoadEdges(r, es); err != nil {
			t.Error(err)
		}
	})

	tx := e.StartLocal(0, ReadOnly)
	for i := uint64(0); i < n; i++ {
		dp, err := tx.TranslateVertexID(i)
		if err != nil {
			t.Fatal(err)
		}
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		if h.CountEdges(MaskOut) != 2 || h.CountEdges(MaskIn) != 2 {
			t.Fatalf("vertex %d: out=%d in=%d, want 2/2", i, h.CountEdges(MaskOut), h.CountEdges(MaskIn))
		}
	}
	tx.Commit()
}

func TestBulkLoadEdgeUnknownEndpoint(t *testing.T) {
	e := newEngine(t, 1)
	e.fab.Run(func(r rma.Rank) {
		if err := e.BulkLoadVertices(r, []VertexSpec{{AppID: 1}}); err != nil {
			t.Error(err)
		}
	})
	err := fmt.Errorf("placeholder")
	e.fab.Run(func(r rma.Rank) {
		err = e.BulkLoadEdges(r, []EdgeSpec{{OriginApp: 1, TargetApp: 999}})
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("bulk edge to missing vertex: %v", err)
	}
}

func TestConcurrentDisjointTransactions(t *testing.T) {
	const ranks = 8
	e := newEngine(t, ranks)
	e.fab.Run(func(r rma.Rank) {
		for i := 0; i < 20; i++ {
			appID := uint64(r)*1000 + uint64(i)
			tx := e.StartLocal(r, ReadWrite)
			if _, err := tx.CreateVertex(appID); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
		}
	})
	total := 0
	for r := 0; r < ranks; r++ {
		total += e.LocalVertexCount(rma.Rank(r))
	}
	if total != ranks*20 {
		t.Fatalf("created %d vertices, want %d", total, ranks*20)
	}
}

func TestConcurrentContendedWrites(t *testing.T) {
	// All ranks add edges around a small vertex set; some transactions must
	// fail (bounded locks), none may corrupt the graph: every committed edge
	// has its sibling record.
	const ranks = 8
	e := newEngine(t, ranks)
	setup := e.StartLocal(0, ReadWrite)
	var dps [8]rma.DPtr
	for i := range dps {
		dps[i], _ = setup.CreateVertex(uint64(i))
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	e.fab.Run(func(r rma.Rank) {
		for i := 0; i < 30; i++ {
			tx := e.StartLocal(r, ReadWrite)
			a := dps[(int(r)+i)%len(dps)]
			b := dps[(int(r)+i+1)%len(dps)]
			if _, err := tx.CreateEdge(a, b, holder.DirOut, 0); err != nil {
				tx.Abort()
				continue
			}
			if err := tx.Commit(); err != nil && !errors.Is(err, ErrTxCritical) {
				t.Errorf("rank %d: unexpected commit error %v", r, err)
				return
			}
		}
	})
	// Consistency check: total out records == total in records.
	tx := e.StartLocal(0, ReadOnly)
	out, in := 0, 0
	for _, dp := range dps {
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		out += h.CountEdges(MaskOut)
		in += h.CountEdges(MaskIn)
	}
	tx.Commit()
	if out != in {
		t.Fatalf("edge records unbalanced: %d out vs %d in", out, in)
	}
	if out == 0 {
		t.Fatal("no edge ever committed under contention")
	}
}
