package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

// Cache and optimistic-read edge cases around live migration: a cached copy
// of a migrated vertex must never be served stale, an optimistic snapshot
// spanning a migration must abort, and the migrate-back ABA case — the
// vertex returns to its original block, so the DPtr matches again — must be
// caught by the guard versions, not the pointer comparison.

// newMigrationCacheEngine: cache + optimistic tier + heat tracking.
func newMigrationCacheEngine(t *testing.T, ranks, cacheCap int) *Engine {
	t.Helper()
	return NewEngine(rma.New(ranks), Config{
		BlockSize:             64,
		BlocksPerRank:         1 << 12,
		LockTries:             256,
		CacheBlocks:           true,
		CacheCapacity:         cacheCap,
		OptimisticReads:       true,
		RebalanceHeatTracking: true,
	})
}

// TestMigratedVertexInvalidatesCachedCopy: rank 0 caches a remote vertex;
// after the vertex migrates, the cached copy's guard version is stale, so a
// new read refetches at the new owner and returns the same bytes.
func TestMigratedVertexInvalidatesCachedCopy(t *testing.T) {
	e := newMigrationCacheEngine(t, 3, 512)
	pt := payloadPType(t, e)
	old := seedPayloadVertex(t, e, 1, pt, 16)
	pre := readPayload(t, e, 0, old, pt) // primes rank 0's cache
	if e.Store().CacheLen(0) == 0 {
		t.Fatal("first read installed nothing into the cache")
	}

	newDp := mustMigrate(t, e, 1, 2)

	missesBefore := e.Fabric().CounterSnapshot(0).CacheMisses
	tx := e.StartLocal(0, ReadOnly)
	h, err := tx.AssociateVertex(old) // stale DPtr: stub chase + refetch
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != newDp {
		t.Fatalf("resolved to %v, want %v", h.ID(), newDp)
	}
	if v, _ := h.Property(pt); !bytes.Equal(v, pre) {
		t.Fatal("post-migration read returned different bytes")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if misses := e.Fabric().CounterSnapshot(0).CacheMisses; misses <= missesBefore {
		t.Fatal("stale cached copy was served without a miss")
	}
}

// TestOptimisticSnapshotAbortsAcrossMigration: an optimistic read-only
// transaction that fetched the vertex before it migrated must fail
// validation at commit (stale guard version), and the follow-up transaction
// reads the identical bytes at the new owner.
func TestOptimisticSnapshotAbortsAcrossMigration(t *testing.T) {
	e := newMigrationCacheEngine(t, 3, 512)
	pt := payloadPType(t, e)
	old := seedPayloadVertex(t, e, 1, pt, 16)
	pre := readPayload(t, e, 0, old, pt)

	reader := e.StartLocal(0, ReadOnly)
	if _, err := reader.AssociateVertex(old); err != nil {
		t.Fatal(err)
	}
	newDp := mustMigrate(t, e, 1, 2)
	if err := reader.Commit(); !errors.Is(err, ErrTxCritical) {
		t.Fatalf("snapshot spanning a migration committed: err = %v", err)
	}
	if e.OptimisticAborts() == 0 {
		t.Fatal("abort not counted")
	}
	retry := e.StartLocal(0, ReadOnly)
	h, err := retry.AssociateVertex(newDp)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := h.Property(pt); !bytes.Equal(v, pre) {
		t.Fatal("refetched bytes differ")
	}
	if err := retry.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateBackABACachedCopyRejected is the full ABA: rank 0 caches V at
// its original block P; V migrates away and back, reusing P — the pointer
// compares equal again, but the cached copy's stamped version is two bumps
// behind, so it must be rejected and refetched (bit-identical content).
func TestMigrateBackABACachedCopyRejected(t *testing.T) {
	e := newMigrationCacheEngine(t, 3, 512)
	pt := payloadPType(t, e)
	old := seedPayloadVertex(t, e, 1, pt, 16)
	pre := readPayload(t, e, 0, old, pt) // cache rank 0's copy of P

	away := mustMigrate(t, e, 1, 2)
	if away.Rank() != 2 {
		t.Fatalf("intermediate hop on rank %d, want 2", away.Rank())
	}
	back := mustMigrate(t, e, 1, 1)
	if back != old {
		t.Fatalf("migrate-back landed at %v, want %v", back, old)
	}

	snap := e.Fabric().CounterSnapshot(0)
	tx := e.StartLocal(0, ReadOnly)
	h, err := tx.AssociateVertex(old)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != old {
		t.Fatalf("resolved to %v, want the restored original %v", h.ID(), old)
	}
	if v, _ := h.Property(pt); !bytes.Equal(v, pre) {
		t.Fatal("ABA read returned different bytes")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := e.Fabric().CounterSnapshot(0)
	if after.CacheMisses <= snap.CacheMisses {
		t.Fatal("stale ABA copy was served as a cache hit")
	}
	if after.RemoteGets <= snap.RemoteGets {
		t.Fatal("ABA read issued no refetch traffic")
	}

	// An optimistic snapshot taken before the round trip must abort too.
	reader := e.StartLocal(0, ReadOnly)
	if _, err := reader.AssociateVertex(old); err != nil {
		t.Fatal(err)
	}
	mustMigrate(t, e, 1, 2)
	mustMigrate(t, e, 1, 1)
	if err := reader.Commit(); !errors.Is(err, ErrTxCritical) {
		t.Fatalf("ABA snapshot committed: err = %v", err)
	}
}

// TestMigratedVertexCacheEviction: with a tiny cache the migrated vertex's
// entries are evicted by unrelated traffic; a later read through the stale
// DPtr must still resolve correctly (eviction plus migration compose).
func TestMigratedVertexCacheEviction(t *testing.T) {
	e := newMigrationCacheEngine(t, 3, 2) // two entries: constant churn
	pt := payloadPType(t, e)
	old := seedPayloadVertex(t, e, 1, pt, 16)
	pre := readPayload(t, e, 0, old, pt)

	// Unrelated remote vertices churn the 2-entry cache.
	var churn []rma.DPtr
	for app := uint64(2); app < 8; app++ {
		churn = append(churn, seedPayloadVertex(t, e, app, pt, 16))
	}
	for _, dp := range churn {
		readPayload(t, e, 0, dp, pt)
	}

	newDp := mustMigrate(t, e, 1, 2)
	tx := e.StartLocal(0, ReadOnly)
	h, err := tx.AssociateVertex(old)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != newDp {
		t.Fatalf("resolved to %v, want %v", h.ID(), newDp)
	}
	if v, _ := h.Property(pt); !bytes.Equal(v, pre) {
		t.Fatal("post-eviction read returned different bytes")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}
