package core

import (
	"bytes"
	"testing"

	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// The multi-hop regression tier: frontiers produced by one hop are fed back
// into AssociateVertices for the next, which is exactly where forwarding
// stubs, the per-tx alias map, and replica-served optimistic reads meet.

// seedTwoHopGraph commits A -> V (A on rank 0, V on rank 1 for a 2-rank
// engine) with a multi-block payload on V, and returns both DPtrs plus the
// payload ptype.
func seedTwoHopGraph(t *testing.T, e *Engine, words int) (dpA, dpV rma.DPtr, pt lpg.PTypeID) {
	t.Helper()
	pt = payloadPType(t, e)
	knows, err := e.DefineLabel("KNOWS")
	if err != nil {
		t.Fatal(err)
	}
	dpV = seedPayloadVertex(t, e, 1, pt, words) // app 1 -> rank 1
	tx := e.StartLocal(0, ReadWrite)
	dpA, err = tx.CreateVertex(2) // app 2 -> rank 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateEdge(dpA, dpV, holder.DirOut, knows); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return dpA, dpV, pt
}

// TestMultiHopRevisitOfMigratedVertexUsesAliasMap migrates a hop-1 result
// before hop 2 runs, then revisits the stale DPtr in a later hop of the SAME
// transaction. The first encounter must chase the forwarding stub exactly
// once (ForwardedReads +1, duplicates in the batch dedup to one chase); every
// later revisit must resolve through the per-tx alias map with no
// communication at all — no new GET trains, no new lock trains, and no second
// ForwardedReads count.
func TestMultiHopRevisitOfMigratedVertexUsesAliasMap(t *testing.T) {
	e := newMigrationEngine(t, 2)
	const words = 8
	dpA, dpV, pt := seedTwoHopGraph(t, e, words)

	// An extra remote vertex, used later to force a real flush round that the
	// aliased revisit must NOT piggyback a re-fetch onto.
	txSeed := e.StartLocal(0, ReadWrite)
	dpC, err := txSeed.CreateVertex(3) // app 3 -> rank 1
	if err != nil {
		t.Fatal(err)
	}
	if err := txSeed.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := e.StartLocal(0, ReadOnly)
	defer tx.Abort()

	// Hop 1: expand A; the edge record still names V's pre-migration DPtr.
	hA, err := tx.AssociateVertex(dpA)
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := hA.Neighbors(MaskAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 1 || frontier[0] != dpV {
		t.Fatalf("hop-1 frontier = %v, want [%v]", frontier, dpV)
	}

	// V migrates between hops. The reading tx only holds A's read lock, so
	// the move proceeds and V's old primary becomes a forwarding stub.
	newDp := mustMigrate(t, e, 1, 0)
	if newDp == dpV {
		t.Fatal("migration did not change V's DPtr")
	}

	// Hop 2: the frontier revisits the stale DPtr, twice in one batch. One
	// stub chase total, and both futures land on the migrated primary.
	fwd0 := e.ForwardedReads()
	hs, err := tx.AssociateVertices([]rma.DPtr{dpV, dpV})
	if err != nil {
		t.Fatal(err)
	}
	if hs[0].ID() != newDp || hs[1].ID() != newDp {
		t.Fatalf("hop-2 handles resolved to %v/%v, want %v", hs[0].ID(), hs[1].ID(), newDp)
	}
	if p, ok := hs[0].Property(pt); !ok || !bytes.Equal(p, payloadPattern(0, words)) {
		t.Fatalf("hop-2 payload wrong: ok=%v", ok)
	}
	if got := e.ForwardedReads(); got != fwd0+1 {
		t.Fatalf("ForwardedReads = %d after one aliased frontier, want %d (exactly one chase)", got, fwd0+1)
	}

	// Hop 3: a pure revisit must be satisfied from the alias map + installed
	// state with zero communication.
	before := e.Fabric().TotalSnapshot()
	h3, err := tx.AssociateVertex(dpV)
	if err != nil {
		t.Fatal(err)
	}
	after := e.Fabric().TotalSnapshot()
	if h3.ID() != newDp {
		t.Fatalf("hop-3 revisit resolved to %v, want %v", h3.ID(), newDp)
	}
	if got := e.ForwardedReads(); got != fwd0+1 {
		t.Fatalf("ForwardedReads = %d after revisit, want %d (alias map must absorb it)", got, fwd0+1)
	}
	if d := after.RemoteGets - before.RemoteGets; d != 0 {
		t.Fatalf("revisit issued %d remote gets, want 0", d)
	}
	if d := after.RemoteAtoms - before.RemoteAtoms; d != 0 {
		t.Fatalf("revisit issued %d remote atomics, want 0", d)
	}

	// Hop 4: the stale DPtr mixed into a batch with a genuinely new remote
	// vertex. The flush for C must not re-fetch or re-chase V: exactly one
	// remote block get (C's single-block holder on rank 1) and no new
	// forwards.
	before = e.Fabric().TotalSnapshot()
	hs4, err := tx.AssociateVertices([]rma.DPtr{dpV, dpC})
	if err != nil {
		t.Fatal(err)
	}
	after = e.Fabric().TotalSnapshot()
	if hs4[0].ID() != newDp {
		t.Fatalf("hop-4 aliased handle resolved to %v, want %v", hs4[0].ID(), newDp)
	}
	if hs4[1].AppID() != 3 {
		t.Fatalf("hop-4 fresh handle AppID = %d, want 3", hs4[1].AppID())
	}
	if got := e.ForwardedReads(); got != fwd0+1 {
		t.Fatalf("ForwardedReads = %d after mixed batch, want %d", got, fwd0+1)
	}
	if d := after.RemoteGets - before.RemoteGets; d != 1 {
		t.Fatalf("mixed batch issued %d remote gets, want 1 (C's block only)", d)
	}
}

// TestLaggingFollowerMultiHopReadValidatesPrimary drives the satellite-2
// contract: a hop-2 handle served from a local follower chain must record the
// PRIMARY DPtr (and the primary's observed version) in the optimistic read
// set. The test lags the follower by bumping the primary's version word
// directly — no commit fan-out, so the follower's mirror word and content
// stay at the old version — and then commits the reader. Validation runs
// against the primary word, so the commit MUST abort; a reader that
// validated against the untouched follower word would wrongly survive.
func TestLaggingFollowerMultiHopReadValidatesPrimary(t *testing.T) {
	_, e := newReplicaEngine(t, 2, false)
	const words = 8
	dpA, dpV, pt := seedTwoHopGraph(t, e, words)
	fr := otherRank(dpV, 2) // rank 0: A's owner, V's follower rank

	if n := e.ReplicateFromRank(fr, dpV.Rank(), 2); n != 1 {
		t.Fatalf("ReplicateFromRank seeded %d copies, want 1", n)
	}

	tx := e.StartLocal(fr, ReadOnly)
	if !tx.optimistic() {
		t.Fatal("reader is not on the optimistic tier")
	}

	// Hop 1: local expansion of A.
	hA, err := tx.AssociateVertex(dpA)
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := hA.Neighbors(MaskAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) != 1 || frontier[0] != dpV {
		t.Fatalf("hop-1 frontier = %v, want [%v]", frontier, dpV)
	}

	// Hop 2: the batch path must serve V from the local follower chain.
	base := e.ReplicaReads()
	hs, err := tx.AssociateVertices(frontier)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.ReplicaReads(); got != base+1 {
		t.Fatalf("ReplicaReads = %d, want %d (hop 2 must be follower-served)", got, base+1)
	}
	p, ok := hs[0].Property(pt)
	if !ok {
		t.Fatal("hop-2 payload missing")
	}
	if seq, torn := decodePattern(p); torn || seq != 0 {
		t.Fatalf("hop-2 payload seq=%d torn=%v, want 0/false", seq, torn)
	}

	// The read set must be keyed by primaries only: V's primary DPtr, never
	// the follower chain's local head.
	if _, ok := tx.optReads[dpV]; !ok {
		t.Fatalf("optimistic read set %v does not contain the primary %v", tx.optReads, dpV)
	}
	for dp := range tx.optReads {
		if dp != dpA && dp != dpV {
			t.Fatalf("optimistic read set contains non-primary DPtr %v", dp)
		}
	}

	// Lag the follower: bump the primary's version word without any commit
	// fan-out. The follower's mirror word and content are untouched.
	wl := e.lockWordOf(dpV)
	vers, held := locks.AcquireWriteTrainEach(fr, []locks.TrainLock{{Word: wl}}, 256)
	if !held[0] {
		t.Fatal("could not write-lock V's primary word")
	}
	locks.ReleaseWriteTrain(fr, []locks.Word{wl}, vers)

	aborts := e.OptimisticAborts()
	if err := tx.Commit(); err == nil {
		t.Fatal("commit survived a lagging follower: hop-2 replica read validated against the follower word, not the primary")
	}
	if got := e.OptimisticAborts(); got != aborts+1 {
		t.Fatalf("OptimisticAborts = %d, want %d", got, aborts+1)
	}
}
