//go:build race

package core

// raceEnabled: see race_off_test.go.
const raceEnabled = true
