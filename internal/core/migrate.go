package core

import (
	"fmt"
	"sort"

	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
)

// Live vertex migration. A migration moves one vertex's holder chain from
// its current primary block P (rank A) to a new primary T on the destination
// rank, without stopping traffic, by composing machinery that already
// exists: the destination blocks come from the BGDL allocator, the copy runs
// under a commit-style exclusive lock train, the internal index entry is
// CAS-swung from P to T, and the vacated blocks are retired through the
// deletion-poison discipline — P is rewritten (under its lock, so its
// version bumps) into a one-hop forwarding stub, which makes every
// version-stamped cache copy and optimistic read of the old placement fail
// validation and refetch at the new owner instead of reading a stale copy.
//
// Stale DPtrs keep working: edge records written before the move still point
// at P, and a fetch that lands on the stub chases it to T (counted in
// ForwardedReads). The vertex remembers its former homes (holder.Vertex
// .Homes); each holds a stub pointing at the current primary — migration
// rewrites all of them, so chases are always one hop — and a migration back
// to a former rank reuses that rank's home block, restoring the vertex's
// original DPtr there. That re-use is the ABA case: a reader holding a copy
// of P's content from before the vertex left must not accept it when the
// vertex returns, which the lock-word version counters guarantee (every stub
// and content write bumps them).
//
// Concurrency: the exclusive lock on P serializes migration against every
// writer and locking reader of the vertex (their read locks block the train,
// so a transaction that fetched the vertex pins its placement until it
// ends), and against DHT inserts/deletes of the key, which only happen under
// the same lock. Optimistic readers need no locks: their version validation
// rejects anything that raced the move.

// lockWordOf addresses dp's per-block reader-writer lock word.
func (e *Engine) lockWordOf(dp fabric.DPtr) locks.Word {
	win, target, idx := e.store.LockWord(dp)
	return locks.Word{Win: win, Target: target, Idx: idx}
}

// validPoolDPtr reports whether dp addresses a real block of the pool
// (plans travel over the wire; apply must not panic on a corrupt one).
func (e *Engine) validPoolDPtr(dp fabric.DPtr) bool {
	return !dp.IsNull() && dp.Off() > 0 && dp.Off() < uint64(e.store.BlocksPerRank()) &&
		int(dp.Rank()) < e.fab.Size()
}

// migCand tracks one move through the phases of a migration train.
type migCand struct {
	mv        MigrationMove
	word      locks.Word    // old primary's lock word
	ver       uint64        // its version while held
	buf       []byte        // old holder's full logical stream
	oldBlocks []fabric.DPtr // old chain (buf's blocks, primary first)
	v         *holder.Vertex
	dst       fabric.DPtr  // new primary on the destination rank
	dstFresh  bool         // dst came from the allocator (vs. a reused home)
	secWords  []locks.Word // dst word + stub words of the other homes
	secVers   []uint64
	newBlocks []fabric.DPtr
	stream    []byte
	ok        bool
}

// MigrateVertices executes one batched migration train: every move must have
// Dest == me. The train write-locks the old primaries with one best-effort
// vectored CAS train (busy vertices are skipped, not retried forever), reads
// the surviving holder chains with batched GETs, locks the destination and
// stub words, publishes the copies plus forwarding stubs with one vectored
// PUT train per owner rank, CAS-swings the DHT entries, and releases all
// locks as one train. It returns how many vertices actually moved; skipped
// moves are counted on the engine (MigrationSkips).
func (e *Engine) MigrateVertices(me fabric.Rank, moves []MigrationMove) (int, error) {
	if len(moves) == 0 {
		return 0, nil
	}
	bs := e.cfg.BlockSize

	// Candidates: structurally valid moves targeting this rank.
	cands := make([]*migCand, 0, len(moves))
	for _, mv := range moves {
		if mv.Dest != me {
			return 0, fmt.Errorf("core: migration move of vertex %d targets rank %d, executed on %d",
				mv.App, mv.Dest, me)
		}
		if !e.validPoolDPtr(mv.Old) || mv.Old.Rank() == me {
			e.migSkips.Add(1)
			continue
		}
		cands = append(cands, &migCand{mv: mv, word: e.lockWordOf(mv.Old)})
	}
	if len(cands) == 0 {
		return 0, nil
	}

	// The whole train runs under the HTAP commit gate (read mode, like a
	// commit's apply phase): a cut must never stamp shards while copies,
	// stubs, and index swings have partially landed. Migration emits no
	// delta records — it changes primary DPtrs, which the incremental fold
	// detects as vertex-set drift and answers with a full rebuild. The body
	// has no barriers, so gate holders never wait on other ranks.
	if e.snap != nil {
		e.htapGate.RLock()
		defer e.htapGate.RUnlock()
	}

	// Phase 1: best-effort exclusive lock train over the old primaries.
	// A contended vertex is skipped this round — migration is background
	// work and must not stall behind a hot lock.
	train := make([]locks.TrainLock, len(cands))
	for i, c := range cands {
		train[i] = locks.TrainLock{Word: c.word}
	}
	vers, held := locks.AcquireWriteTrainEach(me, train, e.cfg.LockTries)
	live := cands[:0]
	relWords := make([]locks.Word, 0, len(cands)) // every held word, released at the end
	relVers := make([]uint64, 0, len(cands))
	for i, c := range cands {
		if !held[i] {
			e.migSkips.Add(1)
			continue
		}
		c.ver = vers[i]
		relWords = append(relWords, c.word)
		relVers = append(relVers, c.ver)
		live = append(live, c)
	}

	// skip drops a candidate after its primary was locked: its lock is
	// already queued on the release train, so only per-candidate state
	// (fresh destination blocks, secondary locks) needs rolling back.
	skip := func(c *migCand) {
		e.migSkips.Add(1)
		if len(c.secWords) > 0 {
			locks.ReleaseWriteTrain(me, c.secWords, c.secVers)
			c.secWords, c.secVers = nil, nil
		}
		if len(c.newBlocks) > 1 {
			for _, dp := range c.newBlocks[1:] {
				e.store.ReleaseBlock(me, dp)
			}
		}
		if c.dstFresh && !c.dst.IsNull() {
			e.store.ReleaseBlock(me, c.dst)
		}
		c.ok = false
	}

	// Phase 2: read the holder chains, batched — round 0 all primaries, then
	// one batched round per continuation block. Content is stable under the
	// exclusive locks.
	var dps []fabric.DPtr
	var bufs [][]byte
	for _, c := range live {
		c.buf = make([]byte, bs)
		dps = append(dps, c.mv.Old)
		bufs = append(bufs, c.buf)
	}
	e.store.ReadBlocksBatch(me, dps, bufs)
	for _, c := range live {
		nb := holder.NumBlocks(c.buf)
		// A poisoned (deleted), forwarded (already migrated), or recycled
		// block means the plan went stale between planning and locking. A
		// recycled block carries arbitrary bytes, so the block count is
		// untrusted until phase 3 confirms the vertex's identity: bound it
		// by the pool size before sizing any allocation on it.
		if nb < 1 || nb > e.store.BlocksPerRank() ||
			holder.IsMoved(c.buf) || holder.IsEdgeHolder(c.buf) {
			skip(c)
			continue
		}
		c.oldBlocks = append(c.oldBlocks, c.mv.Old)
		if nb > 1 {
			full := make([]byte, nb*bs)
			copy(full, c.buf)
			c.buf = full
		}
		c.ok = true
	}
	for round := 1; ; round++ {
		dps, bufs = dps[:0], bufs[:0]
		for _, c := range live {
			if !c.ok || holder.NumBlocks(c.buf) <= round {
				continue
			}
			dp := holder.TableEntry(c.buf, round-1)
			if !e.validPoolDPtr(dp) {
				skip(c)
				continue
			}
			c.oldBlocks = append(c.oldBlocks, dp)
			dps = append(dps, dp)
			bufs = append(bufs, c.buf[round*bs:(round+1)*bs])
		}
		if len(dps) == 0 {
			break
		}
		e.store.ReadBlocksBatch(me, dps, bufs)
	}

	// Phase 3: decode, confirm identity, pick the destination primary, and
	// lock the secondary words (destination + every other home stub) with a
	// second best-effort train.
	var secTrain []locks.TrainLock
	var replSkip []*migCand // replicated vertices skipped under a held lock
	for _, c := range live {
		if !c.ok {
			continue
		}
		v, err := holder.DecodeVertex(c.buf)
		if err != nil || v.AppID != c.mv.App {
			skip(c)
			continue
		}
		if val, found := e.index.Lookup(me, v.AppID); !found || fabric.DPtr(val) != c.mv.Old {
			skip(c) // the index no longer names this placement
			continue
		}
		if len(v.Replicas) > 0 || v.IsReplica {
			// Replicated vertices are pinned in place: moving the primary
			// would strand every follower's lockstep version and directory
			// key. Rebalancing one means dropping its replicas first (a
			// commit-path reshape does that; a later seeding round restores
			// k elsewhere). The write lock is already queued on the release
			// train, whose bump without a content change is fanned to the
			// followers after the train so they stay in lockstep.
			c.v = v
			replSkip = append(replSkip, c)
			skip(c)
			continue
		}
		c.v = v
		for _, h := range v.Homes {
			if h.Rank() == me {
				c.dst = h // reuse the former home block: the ABA path
				break
			}
		}
		if c.dst.IsNull() {
			dp, err := e.store.AcquireBlock(me, me)
			if err != nil {
				skip(c)
				continue
			}
			c.dst, c.dstFresh = dp, true
		}
		words := []locks.Word{e.lockWordOf(c.dst)}
		for _, h := range c.v.Homes {
			if h != c.dst {
				words = append(words, e.lockWordOf(h))
			}
		}
		c.secWords = words
		for _, w := range words {
			secTrain = append(secTrain, locks.TrainLock{Word: w})
		}
	}
	secVers, secHeld := locks.AcquireWriteTrainEach(me, secTrain, e.cfg.LockTries)
	secAt := 0
	for _, c := range live {
		if !c.ok {
			continue
		}
		lo := secAt
		secAt += len(c.secWords)
		all := true
		for i := lo; i < secAt; i++ {
			if !secHeld[i] {
				all = false
			}
		}
		if !all {
			// Roll back the subset this candidate did get and skip it.
			var got []locks.Word
			var gotVers []uint64
			for i := lo; i < secAt; i++ {
				if secHeld[i] {
					got = append(got, secTrain[i].Word)
					gotVers = append(gotVers, secVers[i])
				}
			}
			locks.ReleaseWriteTrain(me, got, gotVers)
			c.secWords, c.secVers = nil, nil
			skip(c)
			continue
		}
		c.secVers = append(c.secVers, secVers[lo:secAt]...)
	}

	// Phase 4: re-encode with the updated home list and acquire the
	// destination continuation blocks.
	for _, c := range live {
		if !c.ok {
			continue
		}
		homes := make([]fabric.DPtr, 0, len(c.v.Homes)+1)
		for _, h := range c.v.Homes {
			if h != c.dst {
				homes = append(homes, h)
			}
		}
		c.v.Homes = append(homes, c.mv.Old)
		// Migration re-encodes under the engine codec — moving a vertex is
		// also how a store converges to a new wire format without downtime.
		c.stream = holder.EncodeVertexCodec(c.v, bs, e.cfg.HolderCodec)
		need := len(c.stream) / bs
		c.newBlocks = append(c.newBlocks, c.dst)
		fail := false
		for len(c.newBlocks) < need {
			dp, err := e.store.AcquireBlock(me, me)
			if err != nil {
				fail = true
				break
			}
			c.newBlocks = append(c.newBlocks, dp)
		}
		if fail {
			skip(c)
			continue
		}
		for i := 1; i < need; i++ {
			holder.SetTableEntry(c.stream, i-1, c.newBlocks[i])
		}
	}

	// Phase 5: publish — the new chains plus every forwarding stub go out as
	// one vectored PUT train per owner rank. The content lands before any
	// pointer to it is readable: the destination words are still write-held,
	// and the DHT swing below happens after the writes.
	var wDps []fabric.DPtr
	var wData [][]byte
	for _, c := range live {
		if !c.ok {
			continue
		}
		for i, dp := range c.newBlocks {
			wDps = append(wDps, dp)
			wData = append(wData, c.stream[i*bs:(i+1)*bs])
		}
		// One stub buffer serves every vacated home: the batch only reads it.
		stub := holder.EncodeMoved(c.mv.App, c.dst, bs)
		wDps = append(wDps, c.mv.Old)
		wData = append(wData, stub)
		for _, h := range c.v.Homes {
			if h != c.mv.Old { // the old primary's stub is queued above
				wDps = append(wDps, h)
				wData = append(wData, stub)
			}
		}
	}
	e.store.WriteBlocksBatch(me, wDps, wData)

	// Phase 6: swing the DHT entries and move the explicit-index postings.
	migrated := 0
	var fatal error
	for _, c := range live {
		if !c.ok {
			continue
		}
		if fatal != nil {
			c.ok = false // not swung; its vacated chain must not be freed
			continue
		}
		if !e.index.Replace(me, c.mv.App, uint64(c.mv.Old), uint64(c.dst)) {
			// Unreachable while we hold the vertex's exclusive lock (the
			// index entry only changes under it); fail loudly if violated —
			// after the release and block-retire phases below, so neither
			// locks nor the already-migrated candidates' blocks leak.
			fatal = fmt.Errorf("core: DHT entry of vertex %d changed under its migration lock", c.mv.App)
			c.ok = false
			continue
		}
		e.idxRemoveVertex(me, c.mv.Old, c.v.Labels)
		e.local[me].addVertex(c.dst, c.v.AppID, c.v.Labels)
		migrated++
	}

	// Phase 7: release every lock (bumping versions — the invalidation
	// broadcast), then retire the vacated continuation blocks. The old
	// primary and the other home blocks stay allocated as stubs.
	for _, c := range live {
		relWords = append(relWords, c.secWords...)
		relVers = append(relVers, c.secVers...)
	}
	locks.ReleaseWriteTrain(me, relWords, relVers)
	for _, c := range replSkip {
		e.bumpMirrors(me, c.v, c.ver)
	}
	for _, c := range live {
		if !c.ok { // skipped, or not swung on the fatal path
			continue
		}
		for _, dp := range c.oldBlocks[1:] {
			e.store.ReleaseBlock(me, dp)
		}
	}
	e.fab.FlushAll(me)
	e.migrations.Add(int64(migrated))
	return migrated, fatal
}

// RebalanceStats reports one Rebalance round from one rank's perspective.
type RebalanceStats struct {
	// Planned is the global plan size (identical on every rank).
	Planned int
	// Migrated counts the moves this rank executed as destination.
	Migrated int
	// Skipped counts this rank's planned moves that were dropped
	// (lock contention or a plan gone stale).
	Skipped int
}

// Rebalance is the workload-aware rebalancing collective: every rank must
// call it. The ranks fold their access-heat shards through the collective
// layer (each contributes its RebalanceTopK hottest vertices), rank 0
// computes a greedy Schism-style plan — hottest vertices first, each moved
// to its dominant accessor when that beats the current placement, capped per
// destination — and broadcasts it in the migration-plan wire format; each
// rank then executes the moves it is the destination of, in migration trains
// of RebalanceBatch vertices. Heat shards reset afterwards so the next round
// reacts to fresh traffic. OLTP traffic may keep running concurrently; the
// per-vertex locks and version stamps keep it coherent.
func (e *Engine) Rebalance(rank fabric.Rank) (RebalanceStats, error) {
	var stats RebalanceStats
	e.comm.Barrier(rank)
	tops := collective.Allgather(e.comm, rank, e.topHeat(rank, e.cfg.RebalanceTopK))
	var planBytes []byte
	if rank == 0 {
		planBytes = EncodeMigrationPlan(e.planRebalance(tops))
	}
	planBytes = collective.Bcast(e.comm, rank, 0, planBytes)
	plan, err := DecodeMigrationPlan(planBytes)
	if err != nil {
		e.comm.Barrier(rank)
		return stats, err
	}
	stats.Planned = len(plan)
	var mine []MigrationMove
	for _, mv := range plan {
		if mv.Dest == rank {
			mine = append(mine, mv)
		}
	}
	for lo := 0; lo < len(mine); lo += e.cfg.RebalanceBatch {
		batch := mine[lo:min(lo+e.cfg.RebalanceBatch, len(mine))]
		n, err := e.MigrateVertices(rank, batch)
		stats.Migrated += n
		stats.Skipped += len(batch) - n
		if err != nil {
			e.comm.Barrier(rank)
			return stats, err
		}
	}
	e.resetHeat(rank)
	e.comm.Barrier(rank)
	return stats, nil
}

// planRebalance computes the global migration plan from the allgathered heat
// samples (rank 0 only). Greedy, Schism-style: sort candidates by total heat
// descending, move each to the rank that accesses it most — but only when
// that rank's observed heat beats the current owner's (a real locality gain)
// and the destination has headroom under RebalanceMaxMoves (the imbalance
// guard: no rank absorbs the whole hot set).
func (e *Engine) planRebalance(tops [][]HeatSample) []MigrationMove {
	n := e.fab.Size()
	type candidate struct {
		app    uint64
		total  uint64
		byRank []uint64
		owners []fabric.Rank // owner each sampling rank observed (NullRank: no sample)
	}
	acc := make(map[uint64]*candidate)
	for r, list := range tops {
		for _, s := range list {
			c := acc[s.App]
			if c == nil {
				c = &candidate{app: s.App, byRank: make([]uint64, n), owners: make([]fabric.Rank, n)}
				for i := range c.owners {
					c.owners[i] = fabric.NullRank
				}
				acc[s.App] = c
			}
			c.byRank[r] += s.Count
			c.owners[r] = s.Owner
			c.total += s.Count
		}
	}
	cands := make([]*candidate, 0, len(acc))
	for _, c := range acc {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].total != cands[j].total {
			return cands[i].total > cands[j].total
		}
		return cands[i].app < cands[j].app
	})
	movesPerDest := make([]int, n)
	var plan []MigrationMove
	for _, c := range cands {
		if c.total < uint64(e.cfg.RebalanceMinHeat) {
			break // sorted descending (raw totals bound filtered ones): nothing hotter follows
		}
		val, found := e.index.Lookup(0, c.app)
		if !found {
			continue
		}
		old := fabric.DPtr(val)
		owner := old.Rank()
		// Only samples recorded against the current placement count: heat a
		// rank accumulated while the vertex lived elsewhere (including reads
		// that chased a forwarding stub off a vacated rank) says nothing
		// about locality under the placement being planned against, and
		// counting it would drag the vertex back to ranks it just left.
		heat := make([]uint64, n)
		var total uint64
		for r := 0; r < n; r++ {
			if c.owners[r] == owner {
				heat[r] = c.byRank[r]
				total += heat[r]
			}
		}
		if total < uint64(e.cfg.RebalanceMinHeat) {
			continue
		}
		best := fabric.Rank(0)
		for r := 1; r < n; r++ {
			if heat[r] > heat[best] {
				best = fabric.Rank(r)
			}
		}
		if best == owner || heat[best] <= heat[owner] {
			continue // already placed with (or tied with) its dominant accessor
		}
		if movesPerDest[best] >= e.cfg.RebalanceMaxMoves {
			continue
		}
		movesPerDest[best]++
		plan = append(plan, MigrationMove{App: c.app, Old: old, Dest: best})
	}
	return plan
}
