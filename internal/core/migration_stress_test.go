package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/rma"
)

// TestMigrationCoherenceStress is the migration-vs-OLTP stress tier:
// concurrent writers rewrite vertex payloads, optimistic readers snapshot
// them, and a migrator keeps live-migrating the same vertex set between
// ranks. Invariants checked:
//
//   - no torn reads: every payload observed inside a validated transaction
//     decodes to one repeated sequence word;
//   - per-reader monotonic versions: the sequence a reader observes for a
//     vertex never goes backwards across its validated snapshots;
//   - no lost updates: after quiescing, the per-vertex sequence numbers sum
//     to exactly the number of committed writes;
//   - golden bit-stability: a vertex nobody writes returns bit-identical
//     bytes before, during, and after every migration.
//
// Run under -race in CI (the migration stress step of the race job).
func TestMigrationCoherenceStress(t *testing.T) {
	migrationCoherenceStress(t, holder.CodecV1)
}

// TestMigrationCoherenceStressV2 is the same stress tier over the v2
// (delta+varint) holder codec: every seed, rewrite, and migration re-encode
// goes through the compressed wire format, so tearing or mis-sizing in the
// varint paths would surface as torn payloads or lost updates here.
func TestMigrationCoherenceStressV2(t *testing.T) {
	migrationCoherenceStress(t, holder.CodecV2)
}

func migrationCoherenceStress(t *testing.T, codec holder.Codec) {
	const (
		ranks             = 4
		keys              = 12
		payloadWords      = 16 // 128-byte payloads: several 64B blocks
		writers           = 3
		readers           = 3
		writesPerWriter   = 120
		readsPerReader    = 200
		migrationAttempts = 160
		goldenApp         = uint64(keys) // written once, migrated forever
	)
	e := newMigrationCacheEngine(t, ranks, 512)
	e.SetHolderCodec(codec)
	pt := payloadPType(t, e)
	dps := make([]rma.DPtr, keys)
	for i := range dps {
		dps[i] = seedPayloadVertex(t, e, uint64(i), pt, payloadWords)
	}
	seedPayloadVertex(t, e, goldenApp, pt, payloadWords)
	golden := readPayload(t, e, 0, func() rma.DPtr {
		v, _ := e.index.Lookup(0, goldenApp)
		return rma.DPtr(v)
	}(), pt)

	var (
		wg            sync.WaitGroup
		mu            sync.Mutex
		firstErr      error
		writeCommits  int64
		readValidated int64
		readDiscarded int64
		migrations    int64
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// lookup resolves a vertex's current primary; migration may move it at
	// any time, so workers re-translate per transaction exactly as the OLTP
	// driver does.
	lookup := func(tx *Tx, app uint64) (rma.DPtr, error) {
		return tx.TranslateVertexID(app)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*211 + 5))
			rank := rma.Rank(w % ranks)
			commits := int64(0)
			for i := 0; i < writesPerWriter; i++ {
				app := uint64(rng.Intn(keys))
				tx := e.StartLocal(rank, ReadWrite)
				dp, err := lookup(tx, app)
				if err != nil {
					tx.Abort()
					report(err)
					return
				}
				h, err := tx.AssociateVertex(dp)
				if err != nil {
					tx.Abort()
					if errors.Is(err, ErrTxCritical) || errors.Is(err, ErrNotFound) {
						continue
					}
					report(err)
					return
				}
				runtime.Gosched() // widen the fetch→commit window migrations race into
				cur, ok := h.Property(pt)
				if !ok {
					report(errors.New("writer: payload missing"))
					tx.Abort()
					return
				}
				seq, torn := decodePattern(cur)
				if torn {
					report(fmt.Errorf("writer observed torn payload at seq %d", seq))
					tx.Abort()
					return
				}
				if err := h.SetProperty(pt, payloadPattern(seq+1, payloadWords)); err != nil {
					report(err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					if errors.Is(err, ErrTxCritical) {
						continue
					}
					report(err)
					return
				}
				commits++
			}
			mu.Lock()
			writeCommits += commits
			mu.Unlock()
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*733 + 11))
			rank := rma.Rank((r + 1) % ranks)
			lastSeen := make([]uint64, keys)
			validated, discarded := int64(0), int64(0)
			for i := 0; i < readsPerReader; i++ {
				picks := []int{rng.Intn(keys), rng.Intn(keys)}
				tx := e.StartLocal(rank, ReadOnly)
				seqs := make([]uint64, len(picks))
				failed := false
				for j, k := range picks {
					if j > 0 {
						runtime.Gosched() // let migrations slip between the fetches
					}
					dp, err := lookup(tx, uint64(k))
					if err != nil {
						report(err)
						tx.Abort()
						return
					}
					h, err := tx.AssociateVertex(dp)
					if err != nil {
						tx.Abort()
						if errors.Is(err, ErrTxCritical) || errors.Is(err, ErrNotFound) {
							failed = true
							break
						}
						report(err)
						return
					}
					v, ok := h.Property(pt)
					if !ok {
						report(errors.New("reader: payload missing"))
						tx.Abort()
						return
					}
					seq, torn := decodePattern(v)
					if torn {
						report(fmt.Errorf("reader observed a torn payload (vertex %d, seq %d)", k, seq))
						tx.Abort()
						return
					}
					seqs[j] = seq
				}
				if failed {
					discarded++
					continue
				}
				if err := tx.Commit(); err != nil {
					discarded++
					continue
				}
				validated++
				for j, k := range picks {
					if seqs[j] < lastSeen[k] {
						report(fmt.Errorf("vertex %d went backwards: saw seq %d after %d", k, seqs[j], lastSeen[k]))
						return
					}
					lastSeen[k] = seqs[j]
				}
			}
			mu.Lock()
			readValidated += validated
			readDiscarded += discarded
			mu.Unlock()
		}(r)
	}

	// The migrator: keeps moving random vertices (including the golden one)
	// to random other ranks, and interleaves golden-vertex reads that must
	// be bit-identical to the pre-stress bytes at every point.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(4099))
		moved := int64(0)
		for i := 0; i < migrationAttempts; i++ {
			app := uint64(rng.Intn(keys + 1)) // keys == goldenApp
			val, ok := e.index.Lookup(0, app)
			if !ok {
				report(fmt.Errorf("migrator: vertex %d missing from the index", app))
				return
			}
			old := rma.DPtr(val)
			dest := rma.Rank(rng.Intn(ranks))
			if dest == old.Rank() {
				dest = rma.Rank((int(dest) + 1) % ranks)
			}
			n, err := e.MigrateVertices(dest, []MigrationMove{{App: app, Old: old, Dest: dest}})
			if err != nil {
				report(fmt.Errorf("migrator: %v", err))
				return
			}
			moved += int64(n)
			if i%8 == 0 {
				// Golden check, mid-flight: reads return bit-identical
				// values before/after migration.
				tx := e.StartLocal(rma.Rank(rng.Intn(ranks)), ReadOnly)
				dp, err := lookup(tx, goldenApp)
				if err != nil {
					report(err)
					tx.Abort()
					return
				}
				h, err := tx.AssociateVertex(dp)
				if err != nil {
					tx.Abort()
					if errors.Is(err, ErrTxCritical) {
						continue
					}
					report(err)
					return
				}
				v, _ := h.Property(pt)
				if err := tx.Commit(); err != nil {
					continue // snapshot raced a migration; void, not golden
				}
				if !bytes.Equal(v, golden) {
					report(fmt.Errorf("golden vertex bytes changed after %d migrations", moved))
					return
				}
			}
		}
		mu.Lock()
		migrations += moved
		mu.Unlock()
	}()

	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if writeCommits == 0 {
		t.Fatal("no writer transaction ever committed")
	}
	if readValidated == 0 {
		t.Fatal("no reader transaction ever validated")
	}
	if migrations == 0 {
		t.Fatal("the migrator never moved a vertex")
	}
	t.Logf("writes committed: %d; reads validated: %d, discarded: %d; migrations: %d (skips %d, forwards %d, optimistic aborts %d)",
		writeCommits, readValidated, readDiscarded, migrations,
		e.MigrationSkips(), e.ForwardedReads(), e.OptimisticAborts())

	// Quiesced final checks: untorn payloads, conserved write count (no lost
	// updates), and the golden vertex still bit-identical.
	tx := e.StartLocal(0, ReadOnly)
	var total uint64
	for i := 0; i < keys; i++ {
		dp, err := tx.TranslateVertexID(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := h.Property(pt)
		if !ok {
			t.Fatalf("vertex %d: payload missing after stress", i)
		}
		seq, torn := decodePattern(v)
		if torn {
			t.Fatalf("vertex %d torn after quiesce", i)
		}
		total += seq
	}
	gdp, err := tx.TranslateVertexID(goldenApp)
	if err != nil {
		t.Fatal(err)
	}
	gh, err := tx.AssociateVertex(gdp)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := gh.Property(pt); !bytes.Equal(v, golden) {
		t.Fatal("golden vertex bytes changed across the stress run")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if total != uint64(writeCommits) {
		t.Fatalf("sequence numbers sum to %d, want one increment per committed write (%d): lost or duplicated updates", total, writeCommits)
	}
}
