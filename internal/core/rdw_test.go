package core

import (
	"errors"
	"testing"

	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
	"github.com/gdi-go/gdi/internal/rma"
)

// Read-your-own-writes: vertices created inside a transaction must be
// reachable through TranslateVertexID before commit.
func TestTranslateSeesOwnCreates(t *testing.T) {
	e := newEngine(t, 2)
	tx := e.StartLocal(0, ReadWrite)
	dp, err := tx.CreateVertex(123)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx.TranslateVertexID(123)
	if err != nil {
		t.Fatalf("own create invisible: %v", err)
	}
	if got != dp {
		t.Fatalf("TranslateVertexID = %v, want %v", got, dp)
	}
	// Create-edge-between-own-creates must work pre-commit.
	dp2, _ := tx.CreateVertex(124)
	if _, err := tx.CreateEdge(dp, dp2, holder.DirOut, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateHidesOwnDeletes(t *testing.T) {
	e := newEngine(t, 1)
	setup := e.StartLocal(0, ReadWrite)
	dp, _ := setup.CreateVertex(9)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := e.StartLocal(0, ReadWrite)
	if err := tx.DeleteVertex(dp); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.TranslateVertexID(9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted vertex still translatable in own tx: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateThenDeleteSameTx(t *testing.T) {
	e := newEngine(t, 1)
	free := e.FreeBlocks(0)
	tx := e.StartLocal(0, ReadWrite)
	dp, _ := tx.CreateVertex(5)
	if err := tx.DeleteVertex(dp); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.TranslateVertexID(5); !errors.Is(err, ErrNotFound) {
		t.Fatal("create-then-delete still translatable")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := e.FreeBlocks(0); got != free {
		t.Fatalf("create+delete in one tx leaked blocks: %d -> %d", free, got)
	}
	probe := e.StartLocal(0, ReadOnly)
	if _, err := probe.TranslateVertexID(5); !errors.Is(err, ErrNotFound) {
		t.Fatal("phantom vertex visible after commit")
	}
	probe.Commit()
}

func TestAssociateNullVertexRejected(t *testing.T) {
	e := newEngine(t, 1)
	tx := e.StartLocal(0, ReadOnly)
	if _, err := tx.AssociateVertex(rma.NullDPtr); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("NULL associate: %v", err)
	}
	tx.Commit()
}

// Failure injection: exhausting the block pool mid-commit must abort the
// whole transaction (atomicity) and leave the pool balanced.
func TestCommitAtomicOnPoolExhaustion(t *testing.T) {
	e := NewEngine(rma.New(1), Config{BlockSize: 256, BlocksPerRank: 16})
	blob, err := e.DefinePType("blob", metadata.PTypeSpec{Datatype: lpg.TypeBytes})
	if err != nil {
		t.Fatal(err)
	}
	setup := e.StartLocal(0, ReadWrite)
	dp, err := setup.CreateVertex(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	free := e.FreeBlocks(0)

	tx := e.StartLocal(0, ReadWrite)
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	// 16 blocks * 256B pool cannot hold a 64KB property.
	if err := h.SetProperty(blob, make([]byte, 1<<16)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxCritical) {
		t.Fatalf("overflowing commit: %v", err)
	}
	if got := e.FreeBlocks(0); got != free {
		t.Fatalf("failed commit leaked blocks: %d -> %d", free, got)
	}
	// The original vertex must be intact.
	probe := e.StartLocal(0, ReadOnly)
	h2, err := probe.AssociateVertex(dp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h2.Property(blob); ok {
		t.Fatal("aborted write became visible")
	}
	probe.Commit()
}
