package core

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/constraint"
	"github.com/gdi-go/gdi/internal/fabric"
)

// Matches evaluates cons against the vertex's labels and properties in
// place — no copies, no communication (a nil constraint matches).
func (h *VertexHandle) Matches(cons *constraint.Constraint) bool {
	return cons.Eval(h.st.v.Labels, h.st.v.Props)
}

// ExpandFrontier is the batch expansion entry point the query layer compiles
// multi-hop traversals onto. It associates every frontier DPtr through the
// future machinery — duplicates and per-tx migration aliases dedup to one
// fetch, and all fetches of one round ride one vectored GET train per owner
// rank, with stub chases and multi-block continuation reads folded into the
// following rounds and replica-/cache-served fetches resolving with no
// traffic at all — then filters the frontier by cons and harvests the
// matched vertices' distinct neighbors under mask.
//
// matched holds the handles of the frontier vertices that satisfy cons, in
// deduped frontier order; next holds the union of their neighbors in
// first-encounter order (mask 0 skips the harvest: associate + filter only,
// the shape a traversal's final hop wants).
func (tx *Tx) ExpandFrontier(frontier []fabric.DPtr, mask DirMask, cons *constraint.Constraint) (matched []*VertexHandle, next []fabric.DPtr, err error) {
	if len(frontier) == 0 {
		return nil, nil, nil
	}
	if cons != nil && cons.Stale(tx.registry()) {
		return nil, nil, fmt.Errorf("%w: stale constraint", ErrTxCritical)
	}
	hs, err := tx.AssociateVertices(frontier)
	if err != nil {
		return nil, nil, err
	}
	matched = make([]*VertexHandle, 0, len(hs))
	seenV := make(map[fabric.DPtr]struct{}, len(hs))
	for _, h := range hs {
		if _, dup := seenV[h.ID()]; dup {
			continue
		}
		seenV[h.ID()] = struct{}{}
		if h.Matches(cons) {
			matched = append(matched, h)
		}
	}
	if mask == 0 {
		return matched, nil, nil
	}
	seenN := make(map[fabric.DPtr]struct{})
	for _, h := range matched {
		if err := h.ForEachNeighbor(mask, func(nb fabric.DPtr) {
			if _, dup := seenN[nb]; !dup {
				seenN[nb] = struct{}{}
				next = append(next, nb)
			}
		}); err != nil {
			return nil, nil, err
		}
	}
	return matched, next, nil
}
