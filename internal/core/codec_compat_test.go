package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// Cross-version compatibility: a store written under the v1 codec must stay
// fully readable after the engine switches to v2 (the upgrade path — flip the
// knob, restart, let rewrites converge), and mixed v1/v2 holders must coexist
// indefinitely because decode dispatches on the per-holder flag, never on the
// engine setting.

func newCodecEngine(t *testing.T, ranks int, codec holder.Codec) *Engine {
	t.Helper()
	return NewEngine(rma.New(ranks), Config{
		BlockSize:       64,
		BlocksPerRank:   1 << 12,
		LockTries:       256,
		OptimisticReads: true,
		HolderCodec:     codec,
	})
}

// seedGraph loads a small labeled graph with properties and a fan of edges
// and returns the vertex DPtrs, all under the engine's current codec.
func seedGraph(t *testing.T, e *Engine, n int, person, knows lpg.LabelID, name lpg.PTypeID) []rma.DPtr {
	t.Helper()
	tx := e.StartLocal(0, ReadWrite)
	dps := make([]rma.DPtr, n)
	for i := range dps {
		dp, err := tx.CreateVertex(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddLabel(person); err != nil {
			t.Fatal(err)
		}
		if err := h.SetProperty(name, lpg.EncodeString(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
		dps[i] = dp
	}
	for i := range dps {
		if _, err := tx.CreateEdge(dps[i], dps[(i+1)%n], holder.DirOut, knows); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.CreateEdge(dps[i], dps[(i+3)%n], holder.DirOut, knows); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return dps
}

// checkGraph reads every vertex back from rank r and verifies labels,
// properties, and adjacency are what seedGraph wrote.
func checkGraph(t *testing.T, e *Engine, r rma.Rank, dps []rma.DPtr, person, knows lpg.LabelID, name lpg.PTypeID) {
	t.Helper()
	n := len(dps)
	tx := e.StartLocal(r, ReadOnly)
	for i, dp := range dps {
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatalf("vertex %d: %v", i, err)
		}
		if !h.HasLabel(person) {
			t.Fatalf("vertex %d lost its label", i)
		}
		if v, ok := h.Property(name); !ok || lpg.DecodeString(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("vertex %d name = %q, %v", i, v, ok)
		}
		if got := h.CountEdges(MaskOut); got != 2 {
			t.Fatalf("vertex %d out-degree = %d, want 2", i, got)
		}
		want := map[rma.DPtr]bool{dps[(i+1)%n]: true, dps[(i+3)%n]: true}
		if err := h.ForEachEdge(MaskOut, func(nb rma.DPtr, _ holder.Direction) {
			delete(want, nb)
		}); err != nil {
			t.Fatal(err)
		}
		if len(want) != 0 {
			t.Fatalf("vertex %d missing out-neighbors %v", i, want)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// codecCounts decodes every vertex's primary via a transactional read and
// tallies holders by wire format.
func codecCounts(t *testing.T, e *Engine, dps []rma.DPtr) (v1, v2 int) {
	t.Helper()
	tx := e.StartLocal(0, ReadOnly)
	for _, dp := range dps {
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		if h.st.lazyEdges {
			if h.st.view.Codec() == holder.CodecV2 {
				v2++
			} else {
				v1++
			}
		} else if h.st.v.Codec == holder.CodecV2 {
			v2++
		} else {
			v1++
		}
	}
	tx.Abort()
	return
}

// TestV1StoreReadableUnderV2 is the upgrade scenario: a graph committed
// entirely under v1 stays byte-for-byte readable after the engine flips to
// v2, new writes land as v2, and the two formats serve the same transactions
// side by side.
func TestV1StoreReadableUnderV2(t *testing.T) {
	const n = 12
	e := newCodecEngine(t, 2, holder.CodecV1)
	person, knows, _, name := seedPersonSchema(t, e)
	dps := seedGraph(t, e, n, person, knows, name)
	if v1, v2 := codecCounts(t, e, dps); v1 != n || v2 != 0 {
		t.Fatalf("seed store codecs: %d v1 / %d v2, want all v1", v1, v2)
	}

	// Flip the knob — the moral equivalent of a restart with -holder-codec=v2.
	e.SetHolderCodec(holder.CodecV2)
	checkGraph(t, e, 1, dps, person, knows, name)

	// Rewriting half the vertices converges them to v2; the untouched half
	// stays v1 and both remain readable.
	tx := e.StartLocal(0, ReadWrite)
	for i := 0; i < n/2; i++ {
		h, err := tx.AssociateVertex(dps[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := h.SetProperty(name, lpg.EncodeString(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	v1, v2 := codecCounts(t, e, dps)
	if v2 != n/2 || v1 != n-n/2 {
		t.Fatalf("after rewriting half: %d v1 / %d v2, want %d/%d", v1, v2, n-n/2, n/2)
	}
	checkGraph(t, e, 0, dps, person, knows, name)
	checkGraph(t, e, 1, dps, person, knows, name)
}

// TestMixedCodecMigrationConverges: migrating a v1 vertex under a v2 engine
// re-encodes it at the destination — live migration is the zero-downtime
// format-conversion path — and the moved holder reads back identically.
func TestMixedCodecMigrationConverges(t *testing.T) {
	const n = 8
	e := newCodecEngine(t, 3, holder.CodecV1)
	person, knows, _, name := seedPersonSchema(t, e)
	dps := seedGraph(t, e, n, person, knows, name)
	e.SetHolderCodec(holder.CodecV2)

	// Migrate every vertex once; each move rewrites the holder as v2.
	cur := make([]rma.DPtr, n)
	copy(cur, dps)
	for i := range cur {
		dest := rma.Rank((int(cur[i].Rank()) + 1) % 3)
		if _, err := e.MigrateVertices(dest, []MigrationMove{{App: uint64(i), Old: cur[i], Dest: dest}}); err != nil {
			t.Fatal(err)
		}
		tx := e.StartLocal(0, ReadOnly)
		ndp, err := tx.TranslateVertexID(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		tx.Abort()
		cur[i] = ndp
	}
	if v1, v2 := codecCounts(t, e, cur); v2 != n {
		t.Fatalf("after migrating all: %d v1 / %d v2, want all v2", v1, v2)
	}
	// Edge records keep the pre-move DPtrs; traversal resolves them through
	// the forwarding stubs. Verify adjacency by application ID, not pointer.
	tx := e.StartLocal(2, ReadOnly)
	for i := range cur {
		h, err := tx.AssociateVertex(cur[i])
		if err != nil {
			t.Fatalf("vertex %d: %v", i, err)
		}
		if !h.HasLabel(person) {
			t.Fatalf("vertex %d lost its label through migration", i)
		}
		if v, ok := h.Property(name); !ok || lpg.DecodeString(v) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("vertex %d name = %q, %v", i, v, ok)
		}
		nbrs, err := h.Neighbors(MaskOut, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]bool{uint64((i + 1) % n): true, uint64((i + 3) % n): true}
		for _, nb := range nbrs {
			nh, err := tx.AssociateVertex(nb)
			if err != nil {
				t.Fatalf("vertex %d: chasing neighbor %v: %v", i, nb, err)
			}
			delete(want, nh.AppID())
		}
		if len(want) != 0 {
			t.Fatalf("vertex %d missing out-neighbors (by app ID) %v", i, want)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestMixedCodecReplication: replica fan-out and follower promotion work on
// holders of either format under either engine codec — RewriteAsReplica only
// touches the fixed regions, which are byte-identical across v1 and v2.
func TestMixedCodecReplication(t *testing.T) {
	const keys = 8
	f := rma.New(4)
	e := NewEngine(f, Config{
		BlockSize:       64,
		BlocksPerRank:   1 << 12,
		LockTries:       256,
		OptimisticReads: true,
		HolderCodec:     holder.CodecV1,
	})
	pt := payloadPType(t, e)
	for i := 0; i < keys; i++ {
		seedPayloadVertex(t, e, uint64(i), pt, 8)
	}
	// Replicate under v2: the replica copies are re-encodes of v1 holders.
	e.SetHolderCodec(holder.CodecV2)
	for r := 0; r < 4; r++ {
		e.ReplicateUniform(rma.Rank(r), 3)
	}

	// Kill a rank; survivors must promote its followers and serve the data.
	doomed := rma.Rank(1)
	f.KillRank(doomed)
	promos := 0
	for r := 0; r < 4; r++ {
		if rma.Rank(r) != doomed {
			promos += e.PromoteDead(rma.Rank(r))
		}
	}
	for app := uint64(0); app < keys; app++ {
		tx := e.StartLocal(0, ReadOnly)
		dp, err := tx.TranslateVertexID(app)
		if err != nil {
			t.Fatalf("vertex %d lost after failover: %v", app, err)
		}
		if dp.Rank() == doomed {
			t.Fatalf("vertex %d still on the dead rank", app)
		}
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		p, ok := h.Property(pt)
		if !ok {
			t.Fatalf("vertex %d payload missing after failover", app)
		}
		if seq, torn := decodePattern(p); torn || seq != 0 {
			t.Fatalf("vertex %d payload wrong after failover: seq=%d torn=%v", app, seq, torn)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if promos == 0 {
		t.Fatal("no promotions despite a dead rank")
	}
}

// TestCodecGoldenBytesStableAcrossFormats: the same logical vertex content
// committed under v1 and v2 engines reads back equal through the public API,
// and a v1→v2→v1 rewrite cycle restores the exact original v1 stream.
func TestCodecGoldenBytesStableAcrossFormats(t *testing.T) {
	build := func(codec holder.Codec) (e *Engine, dp rma.DPtr, pt lpg.PTypeID) {
		e = newCodecEngine(t, 1, codec)
		pt = payloadPType(t, e)
		dp = seedPayloadVertex(t, e, 1, pt, 8)
		return
	}
	e1, dp1, pt1 := build(holder.CodecV1)
	e2, dp2, pt2 := build(holder.CodecV2)
	read := func(e *Engine, dp rma.DPtr, pt lpg.PTypeID) []byte {
		tx := e.StartLocal(0, ReadOnly)
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := h.Property(pt)
		if !ok {
			t.Fatal("payload missing")
		}
		out := append([]byte(nil), v...)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !bytes.Equal(read(e1, dp1, pt1), read(e2, dp2, pt2)) {
		t.Fatal("v1 and v2 stores disagree on identical logical content")
	}
}

// TestAssociateEdgeHolderV2: heavy-edge holders round-trip through the v2
// codec end to end (create, read from another rank, delete).
func TestAssociateEdgeHolderV2(t *testing.T) {
	e := newCodecEngine(t, 2, holder.CodecV2)
	_, knows, _, _ := seedPersonSchema(t, e)

	tx := e.StartLocal(0, ReadWrite)
	a, _ := tx.CreateVertex(1)
	b, _ := tx.CreateVertex(2)
	if _, err := tx.CreateRichEdge(a, b, holder.DirOut, []lpg.LabelID{knows}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := e.StartLocal(1, ReadOnly)
	ha, _ := tx2.AssociateVertex(a)
	infos, err := ha.Edges(MaskOut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Heavy {
		t.Fatalf("heavy edge infos = %+v", infos)
	}
	eh, err := tx2.AssociateEdgeHolder(infos[0].Holder)
	if err != nil {
		t.Fatal(err)
	}
	if o, tgt := eh.Vertices(); o != a || tgt != b {
		t.Fatalf("edge endpoints = %v, %v", o, tgt)
	}
	if ls := eh.Labels(); len(ls) != 1 || ls[0] != knows {
		t.Fatalf("heavy edge labels through v2 = %v", ls)
	}
	tx2.Commit()
}

// TestDeleteVertexV2 exercises the delete path (which must materialize lazy
// edge views on every neighbor) under the v2 codec.
func TestDeleteVertexV2(t *testing.T) {
	e := newCodecEngine(t, 2, holder.CodecV2)
	_, knows, _, _ := seedPersonSchema(t, e)
	tx := e.StartLocal(0, ReadWrite)
	a, _ := tx.CreateVertex(1)
	b, _ := tx.CreateVertex(2)
	c, _ := tx.CreateVertex(3)
	tx.CreateEdge(a, b, holder.DirOut, knows)
	tx.CreateEdge(c, a, holder.DirOut, knows)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := e.StartLocal(1, ReadWrite)
	if err := tx2.DeleteVertex(a); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := e.StartLocal(0, ReadOnly)
	if _, err := tx3.AssociateVertex(a); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted v2 vertex still associable: %v", err)
	}
	hb, _ := tx3.AssociateVertex(b)
	hc, _ := tx3.AssociateVertex(c)
	if hb.Degree() != 0 || hc.Degree() != 0 {
		t.Fatalf("dangling records after v2 delete: %d, %d", hb.Degree(), hc.Degree())
	}
	tx3.Commit()
}
