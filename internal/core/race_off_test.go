//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in. The
// allocation-regression guard skips under -race: the detector instruments
// every memory access and testing.AllocsPerRun counts its shadow allocations,
// so the 0-allocs/op assertion only holds in a plain build (CI runs it as a
// separate non-race step of the race job).
const raceEnabled = false
