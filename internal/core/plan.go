package core

import (
	"encoding/binary"
	"fmt"

	"github.com/gdi-go/gdi/internal/fabric"
)

// MigrationMove is one planned vertex migration: move the vertex with the
// given application ID, currently resident at primary block Old, onto rank
// Dest. Old pins the placement the plan was computed against — an executor
// that finds the vertex elsewhere (it moved or died since planning) skips
// the move instead of migrating a stranger.
type MigrationMove struct {
	App  uint64
	Old  fabric.DPtr
	Dest fabric.Rank
}

// Migration plans travel between ranks (rank 0 computes the plan, everyone
// else receives it through a broadcast), so they have a fixed wire format:
//
//	magic   4 bytes "GDMP"
//	version 1 byte  (1)
//	count   4 bytes little-endian
//	entries count × 18 bytes: appID u64, old DPtr u64, dest rank u16
//
// The codec is canonical: decode(encode(p)) == p and re-encoding a decoded
// plan is byte-identical, which FuzzMigrationPlan pins down.
const (
	planMagic     = "GDMP"
	planVersion   = 1
	planHeaderLen = 4 + 1 + 4
	planEntryLen  = 8 + 8 + 2
)

// EncodeMigrationPlan serializes a plan into its wire format.
func EncodeMigrationPlan(moves []MigrationMove) []byte {
	buf := make([]byte, planHeaderLen+planEntryLen*len(moves))
	copy(buf, planMagic)
	buf[4] = planVersion
	binary.LittleEndian.PutUint32(buf[5:], uint32(len(moves)))
	off := planHeaderLen
	for _, mv := range moves {
		binary.LittleEndian.PutUint64(buf[off:], mv.App)
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(mv.Old))
		binary.LittleEndian.PutUint16(buf[off+16:], uint16(mv.Dest))
		off += planEntryLen
	}
	return buf
}

// DecodeMigrationPlan parses a plan produced by EncodeMigrationPlan. It
// rejects truncated, oversized, and mislabeled inputs rather than guessing.
func DecodeMigrationPlan(buf []byte) ([]MigrationMove, error) {
	if len(buf) < planHeaderLen {
		return nil, fmt.Errorf("core: migration plan of %d bytes is smaller than the header", len(buf))
	}
	if string(buf[:4]) != planMagic {
		return nil, fmt.Errorf("core: migration plan has bad magic %q", buf[:4])
	}
	if buf[4] != planVersion {
		return nil, fmt.Errorf("core: migration plan version %d, want %d", buf[4], planVersion)
	}
	count := int(binary.LittleEndian.Uint32(buf[5:]))
	if want := planHeaderLen + planEntryLen*count; len(buf) != want {
		return nil, fmt.Errorf("core: migration plan of %d bytes carries %d entries (want %d bytes)",
			len(buf), count, want)
	}
	moves := make([]MigrationMove, count)
	off := planHeaderLen
	for i := range moves {
		moves[i] = MigrationMove{
			App:  binary.LittleEndian.Uint64(buf[off:]),
			Old:  fabric.DPtr(binary.LittleEndian.Uint64(buf[off+8:])),
			Dest: fabric.Rank(binary.LittleEndian.Uint16(buf[off+16:])),
		}
		off += planEntryLen
	}
	return moves, nil
}
