package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

// movesFromBytes deterministically derives a migration plan from raw fuzz
// input, covering empty plans, single moves, and batches with extreme field
// values.
func movesFromBytes(data []byte) []MigrationMove {
	next := func() uint64 {
		if len(data) == 0 {
			return 0
		}
		n := min(8, len(data))
		var buf [8]byte
		copy(buf[:], data[:n])
		data = data[n:]
		return binary.LittleEndian.Uint64(buf[:])
	}
	count := int(next() % 9)
	moves := make([]MigrationMove, 0, count)
	for i := 0; i < count; i++ {
		moves = append(moves, MigrationMove{
			App:  next(),
			Old:  rma.DPtr(next()),
			Dest: rma.Rank(uint16(next())),
		})
	}
	return moves
}

// FuzzMigrationPlan drives the migration-plan wire format both ways: plans
// derived from the input must encode/decode/re-encode canonically, and
// decoding the raw input itself must be total — whatever DecodeMigrationPlan
// accepts must re-encode byte-identically (rank 0 broadcasts these bytes to
// every rank, so a non-canonical decode would desynchronize the collective).
func FuzzMigrationPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("GDMP\x01\x00\x00\x00\x00"))
	f.Add(EncodeMigrationPlan([]MigrationMove{{App: 1, Old: rma.MakeDPtr(1, 17), Dest: 3}}))
	f.Add(EncodeMigrationPlan([]MigrationMove{
		{App: ^uint64(0), Old: rma.MakeDPtr(65535, 1<<48-1), Dest: 65535},
		{App: 0, Old: 0, Dest: 0},
	}))
	f.Add([]byte("GDMP\x02\x00\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		moves := movesFromBytes(data)
		buf := EncodeMigrationPlan(moves)
		got, err := DecodeMigrationPlan(buf)
		if err != nil {
			t.Fatalf("decode of a fresh encoding failed: %v", err)
		}
		if len(got) != len(moves) {
			t.Fatalf("decoded %d moves, encoded %d", len(got), len(moves))
		}
		for i := range moves {
			if got[i] != moves[i] {
				t.Fatalf("move %d: got %+v, want %+v", i, got[i], moves[i])
			}
		}
		if again := EncodeMigrationPlan(got); !bytes.Equal(again, buf) {
			t.Fatalf("re-encode not canonical:\n got %v\nwant %v", again, buf)
		}

		// Arbitrary input: decoding must not panic, and an accepted input is
		// exactly a canonical encoding.
		if moves2, err := DecodeMigrationPlan(data); err == nil {
			if again := EncodeMigrationPlan(moves2); !bytes.Equal(again, data) {
				t.Fatalf("accepted input is not canonical:\n got %v\nwant %v", again, data)
			}
		}
	})
}
