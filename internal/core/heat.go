package core

import (
	"sort"
	"sync"

	"github.com/gdi-go/gdi/internal/fabric"
)

// Access-heat tracking for the workload-aware rebalancer. Each rank owns one
// shard counting, by application vertex ID, the holder fetches *it* issued —
// the accessor-side view Schism-style partitioners need: a vertex's dominant
// accessor is the rank whose shard counts it highest, and co-locating the
// vertex with that rank converts its remote round-trips into local reads.
// The counters are process-local (never travel over the fabric); Rebalance
// folds the per-rank top-K samples through the collective layer.
//
// Each cell remembers the owner rank the access actually resolved against
// (the post-chase placement, when the fetch went through a forwarding stub).
// Heat is only meaningful relative to a placement: a count accumulated while
// the vertex lived on rank A says nothing about its locality once it has
// moved to B, and feeding it into a plan would read as demand to move the
// vertex back to the vacated rank. An access observing a new owner therefore
// starts the count over, and planRebalance discards samples whose recorded
// owner is no longer current.
type heatShard struct {
	mu sync.Mutex
	m  map[uint64]heatCell
}

// heatCell is one vertex's entry in a shard: the access count and the owner
// rank those accesses resolved against.
type heatCell struct {
	count uint64
	owner fabric.Rank
}

func newHeatShard() *heatShard {
	return &heatShard{m: make(map[uint64]heatCell)}
}

// HeatSample is one (vertex, access count) record of a rank's heat shard,
// tagged with the owner rank the counted accesses resolved against.
type HeatSample struct {
	App   uint64
	Count uint64
	Owner fabric.Rank
}

// recordHeat counts one holder fetch of appID issued by rank r, resolved
// against the holder's observed owner rank (after any forwarding-stub chase).
// It is the single hot-path hook of the rebalancer and is gated on the knob
// so that databases without rebalancing pay nothing.
func (e *Engine) recordHeat(r fabric.Rank, appID uint64, owner fabric.Rank) {
	if !e.cfg.RebalanceHeatTracking {
		return
	}
	hs := e.heat[r]
	hs.mu.Lock()
	c := hs.m[appID]
	if c.owner != owner {
		// The vertex moved since the last access: counts from the old
		// placement are stale, start the new era at zero.
		c = heatCell{owner: owner}
	}
	c.count++
	hs.m[appID] = c
	hs.mu.Unlock()
}

// HeatTracking reports whether the engine records access heat.
func (e *Engine) HeatTracking() bool { return e.cfg.RebalanceHeatTracking }

// topHeat snapshots rank r's k hottest vertices, ordered by count descending
// with ties broken by ascending appID (a total order, so every rank derives
// the same plan from the same samples).
func (e *Engine) topHeat(r fabric.Rank, k int) []HeatSample {
	hs := e.heat[r]
	hs.mu.Lock()
	out := make([]HeatSample, 0, len(hs.m))
	for app, c := range hs.m {
		out = append(out, HeatSample{App: app, Count: c.count, Owner: c.owner})
	}
	hs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].App < out[j].App
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// HeatOf returns rank r's recorded access count for one vertex (tests and
// diagnostics).
func (e *Engine) HeatOf(r fabric.Rank, appID uint64) uint64 {
	hs := e.heat[r]
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.m[appID].count
}

// resetHeat clears rank r's shard; Rebalance calls it after applying a plan
// so the next round reacts to fresh traffic instead of replaying old heat.
func (e *Engine) resetHeat(r fabric.Rank) {
	hs := e.heat[r]
	hs.mu.Lock()
	hs.m = make(map[uint64]heatCell)
	hs.mu.Unlock()
}
