package core

import (
	"sort"
	"sync"

	"github.com/gdi-go/gdi/internal/fabric"
)

// Access-heat tracking for the workload-aware rebalancer. Each rank owns one
// shard counting, by application vertex ID, the holder fetches *it* issued —
// the accessor-side view Schism-style partitioners need: a vertex's dominant
// accessor is the rank whose shard counts it highest, and co-locating the
// vertex with that rank converts its remote round-trips into local reads.
// The counters are process-local (never travel over the fabric); Rebalance
// folds the per-rank top-K samples through the collective layer.
type heatShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func newHeatShard() *heatShard {
	return &heatShard{m: make(map[uint64]uint64)}
}

// HeatSample is one (vertex, access count) pair of a rank's heat shard.
type HeatSample struct {
	App   uint64
	Count uint64
}

// recordHeat counts one holder fetch of appID issued by rank r. It is the
// single hot-path hook of the rebalancer and is gated on the knob so that
// databases without rebalancing pay nothing.
func (e *Engine) recordHeat(r fabric.Rank, appID uint64) {
	if !e.cfg.RebalanceHeatTracking {
		return
	}
	hs := e.heat[r]
	hs.mu.Lock()
	hs.m[appID]++
	hs.mu.Unlock()
}

// HeatTracking reports whether the engine records access heat.
func (e *Engine) HeatTracking() bool { return e.cfg.RebalanceHeatTracking }

// topHeat snapshots rank r's k hottest vertices, ordered by count descending
// with ties broken by ascending appID (a total order, so every rank derives
// the same plan from the same samples).
func (e *Engine) topHeat(r fabric.Rank, k int) []HeatSample {
	hs := e.heat[r]
	hs.mu.Lock()
	out := make([]HeatSample, 0, len(hs.m))
	for app, n := range hs.m {
		out = append(out, HeatSample{App: app, Count: n})
	}
	hs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].App < out[j].App
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// HeatOf returns rank r's recorded access count for one vertex (tests and
// diagnostics).
func (e *Engine) HeatOf(r fabric.Rank, appID uint64) uint64 {
	hs := e.heat[r]
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.m[appID]
}

// resetHeat clears rank r's shard; Rebalance calls it after applying a plan
// so the next round reacts to fresh traffic instead of replaying old heat.
func (e *Engine) resetHeat(r fabric.Rank) {
	hs := e.heat[r]
	hs.mu.Lock()
	hs.m = make(map[uint64]uint64)
	hs.mu.Unlock()
}
