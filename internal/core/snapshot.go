package core

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/snapshot"
)

// AcquireCut is the collective entry point of the HTAP snapshot subsystem:
// every rank calls it, and all of them return the same pinned
// transaction-consistent cut. Rank 0 takes the commit gate exclusively,
// every rank stamps its own shard (one owner-local guard-stamp train, so the
// whole pin charges zero simulated network latency) and records its vertex
// listing and delta-log position, and only then is the gate dropped — no
// commit's apply phase overlaps any rank's stamping, which is what makes the
// per-rank stamps one global cut.
//
// Work: O(blocks/rank) local atomic loads per rank; depth: O(log P) for the
// barriers. Commits block only for the duration of the stamping itself.
func (e *Engine) AcquireCut(rank fabric.Rank) (*snapshot.Cut, error) {
	if e.snap == nil {
		return nil, fmt.Errorf("%w: HTAP snapshots are not enabled", ErrBadArgument)
	}
	e.comm.Barrier(rank)
	var cut *snapshot.Cut
	if rank == 0 {
		e.htapGate.Lock()
		cut = e.snap.NewCut()
	}
	cut = collective.Bcast(e.comm, rank, 0, cut)
	// Gate held, cut shared: stamp this rank's shard and snapshot its vertex
	// listing. The local index is maintained inside the gated apply phase, so
	// under the exclusive gate it agrees exactly with the stamped blocks.
	e.snap.PinRank(cut, rank)
	cut.SetVerts(rank, e.cutVertexRefs(rank))
	e.comm.Barrier(rank)
	if rank == 0 {
		e.htapGate.Unlock()
	}
	e.comm.Barrier(rank)
	return cut, nil
}

// cutVertexRefs snapshots rank r's local vertex shard as cut references.
func (e *Engine) cutVertexRefs(r fabric.Rank) []snapshot.VertexRef {
	li := e.local[r]
	li.mu.Lock()
	defer li.mu.Unlock()
	out := make([]snapshot.VertexRef, 0, len(li.verts))
	for dp, app := range li.verts {
		out = append(out, snapshot.VertexRef{DP: dp, App: app})
	}
	return out
}

// ReleaseCut collectively unpins a cut: the barrier ensures no rank is still
// reading through it, then rank 0 drops every shard's pin and the arena
// references, returning retired bytes to the pool. A non-collective drop
// (e.g. an analytics run dying mid-iteration) may instead call cut.Release
// directly from one goroutine.
func (e *Engine) ReleaseCut(rank fabric.Rank, cut *snapshot.Cut) {
	e.comm.Barrier(rank)
	if rank == 0 {
		cut.Release()
	}
	e.comm.Barrier(rank)
}

// maxCutForwards bounds forwarding-stub chases during cut reads; live
// migration publishes at most one stub hop per move, and moves between two
// gated phases are finite.
const maxCutForwards = 8

// CutVertex reads a whole vertex holder as of the cut: the primary block and
// every continuation block resolve through the cut's versioned reads, so the
// decoded holder is exactly the committed state at pin time even while live
// writers rewrite the chain. Forwarding stubs left by pre-cut migrations are
// chased like the live read path does.
func (e *Engine) CutVertex(origin fabric.Rank, cut *snapshot.Cut, dp fabric.DPtr) (*holder.Vertex, error) {
	buf, err := e.cutChain(origin, cut, dp)
	if err != nil {
		return nil, err
	}
	v, err := holder.DecodeVertex(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: cut vertex %v: %v", ErrNotFound, dp, err)
	}
	return v, nil
}

// CutEdge reads a heavy-edge holder as of the cut (see CutVertex).
func (e *Engine) CutEdge(origin fabric.Rank, cut *snapshot.Cut, dp fabric.DPtr) (*holder.Edge, error) {
	buf, err := e.cutChain(origin, cut, dp)
	if err != nil {
		return nil, err
	}
	ed, err := holder.DecodeEdge(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: cut edge %v: %v", ErrNotFound, dp, err)
	}
	return ed, nil
}

// cutChain assembles one holder's full block chain through cut reads.
func (e *Engine) cutChain(origin fabric.Rank, cut *snapshot.Cut, dp fabric.DPtr) ([]byte, error) {
	bs := e.cfg.BlockSize
	buf := make([]byte, bs)
	for hop := 0; ; hop++ {
		if err := e.snap.ReadBlock(origin, cut, dp, buf); err != nil {
			return nil, err
		}
		if !holder.IsMoved(buf) {
			break
		}
		if hop >= maxCutForwards {
			return nil, fmt.Errorf("%w: cut read of %v chased %d forwarding stubs", ErrNotFound, dp, hop)
		}
		e.forwards.Add(1)
		dp = holder.MovedTarget(buf)
	}
	nb := holder.NumBlocks(buf)
	if nb < 1 {
		return nil, fmt.Errorf("%w: cut read of %v found a freed block", ErrNotFound, dp)
	}
	if nb == 1 {
		return buf, nil
	}
	full := make([]byte, nb*bs)
	copy(full, buf)
	for i := 1; i < nb; i++ {
		cont := holder.TableEntry(full, i-1)
		if err := e.snap.ReadBlock(origin, cut, cont, full[i*bs:(i+1)*bs]); err != nil {
			return nil, err
		}
	}
	return full, nil
}
