package core

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
)

// Mode distinguishes read-only from read-write transactions (§3.3): GDI
// separates them so read-only transactions can skip write-path machinery.
type Mode uint8

const (
	// ReadOnly transactions reject mutations.
	ReadOnly Mode = iota
	// ReadWrite transactions may mutate graph data.
	ReadWrite
)

// lockState tracks the lock a transaction holds on one vertex.
type lockState uint8

const (
	lockNone lockState = iota
	lockRead
	lockWrite
	// lockUpgrade marks a held shared lock whose exclusive upgrade is
	// deferred to the commit-time lock train (the batched write path).
	// Upgrades are only granted to the sole reader, so the held shared lock
	// keeps every other writer out until the train runs: deferral batches
	// the remote CAS without weakening isolation.
	lockUpgrade
)

// vertexState is a transaction's cached view of one vertex holder: the
// decoded logical form, the physical blocks it was fetched from, its lock,
// and dirtiness bookkeeping (the paper's per-transaction hashmaps plus
// dirty vector, §5.6).
type vertexState struct {
	primary   fabric.DPtr
	v         *holder.Vertex
	blocks    []fabric.DPtr // all blocks incl. primary; nil for fresh vertices
	lock      lockState
	lockVer   uint64 // lock-word version while write-held (from the commit train)
	dirty     bool
	isNew     bool
	deleted   bool
	origLabel []lpg.LabelID // labels at fetch time, for index diffs

	// Lazy edge tier: a fetched holder's edge records stay encoded in the
	// stream the flush materialized (view aliases it) until something needs
	// a mutable []holder.EdgeRec. Read-only iteration — ForEachEdge,
	// CountEdges, Degree, the CSR build — runs on the view and allocates
	// nothing; the first mutation (or an index-addressed read) pays one
	// AppendEdges through materializeEdges, which clears lazyEdges.
	view      holder.View
	lazyEdges bool
}

// isIdentity reports whether dp names this vertex: its current primary or
// any former home block (edge records written before a live migration keep
// pointing at the old primary, so sibling matching must accept every
// identity the vertex has ever had).
func (st *vertexState) isIdentity(dp fabric.DPtr) bool {
	if dp == st.primary {
		return true
	}
	for _, h := range st.v.Homes {
		if h == dp {
			return true
		}
	}
	return false
}

// edgeState caches one heavy-edge holder.
type edgeState struct {
	primary fabric.DPtr
	e       *holder.Edge
	blocks  []fabric.DPtr
	dirty   bool
	isNew   bool
	deleted bool
}

// Tx is one GDI transaction. A Tx belongs to the rank that started it and
// must not be shared between ranks (handles are process-local, §3.5). Any
// rank may run arbitrarily many concurrent transactions.
type Tx struct {
	eng        *Engine
	rank       fabric.Rank
	mode       Mode
	collective bool
	metaVer    uint64

	verts     map[fabric.DPtr]*vertexState
	edges     map[fabric.DPtr]*edgeState
	newByApp  map[uint64]fabric.DPtr      // own uncommitted vertices, by app ID
	dirtyList []fabric.DPtr               // commit write-back order (the paper's vector)
	pending   []*VertexFuture             // queued non-blocking associations
	optReads  map[fabric.DPtr]uint64      // optimistic tier: vertex -> version observed
	moved     map[fabric.DPtr]fabric.DPtr // migration aliases chased: old -> new primary
	critical  error                       // sticky transaction-critical failure
	closed    bool
}

// StartLocal begins a single-process transaction (GDI_StartTransaction).
// O(1) work and depth.
func (e *Engine) StartLocal(rank fabric.Rank, mode Mode) *Tx {
	return &Tx{
		eng: e, rank: rank, mode: mode,
		metaVer: e.regs[rank].Version(),
		verts:   make(map[fabric.DPtr]*vertexState),
		edges:   make(map[fabric.DPtr]*edgeState),
	}
}

// StartCollective begins a collective transaction
// (GDI_StartCollectiveTransaction): every rank must call it. The state is
// replicated per process; a barrier delimits the epoch. Read-only
// collective transactions skip per-vertex locking entirely — GDI specifies
// that read transactions may assume no participant modifies the data
// (§3.3), which is what makes large OLAP scans cheap.
func (e *Engine) StartCollective(rank fabric.Rank, mode Mode) *Tx {
	e.comm.Barrier(rank)
	tx := e.StartLocal(rank, mode)
	tx.collective = true
	return tx
}

// Rank returns the owning rank of the transaction.
func (tx *Tx) Rank() fabric.Rank { return tx.rank }

// Mode returns the transaction's read/write mode.
func (tx *Tx) Mode() Mode { return tx.mode }

// Collective reports whether this is a collective transaction
// (GDI_GetTypeOfTransaction).
func (tx *Tx) Collective() bool { return tx.collective }

// Critical returns the sticky transaction-critical error, if any.
func (tx *Tx) Critical() error { return tx.critical }

func (tx *Tx) fail(err error) error {
	wrapped := fmt.Errorf("%w: %w", ErrTxCritical, err)
	if tx.critical == nil {
		tx.critical = wrapped
	}
	return wrapped
}

func (tx *Tx) check() error {
	if tx.closed {
		return ErrTxClosed
	}
	if tx.critical != nil {
		return tx.critical
	}
	return nil
}

// skipLocks reports whether this transaction runs without per-vertex locks.
func (tx *Tx) skipLocks() bool { return tx.collective && tx.mode == ReadOnly }

// optimistic reports whether this transaction runs the optimistic read tier:
// a local read-only transaction under Config.OptimisticReads takes no read
// locks at all — every holder fetch is accepted only when its guard word
// shows the same version (write bit clear) on both sides of the read, the
// (vertex, version) pair is recorded, and Commit revalidates the whole read
// set with one atomic-load train per owner rank. Collective read-only
// transactions keep their own lock-free path (§3.3 lets them assume no
// concurrent writers, so they need neither locks nor validation).
func (tx *Tx) optimistic() bool {
	return tx.eng.cfg.OptimisticReads && tx.mode == ReadOnly && !tx.collective
}

// batchedCommit reports whether the engine runs the batched write path:
// deferred lock upgrades resolved by a commit-time lock train, vectored
// write-back, and group commit.
func (tx *Tx) batchedCommit() bool { return !tx.eng.cfg.ScalarCommit }

// registry returns the rank-local metadata replica.
func (tx *Tx) registry() *metadata.Registry { return tx.eng.regs[tx.rank] }

// MetadataStale reports whether replicated metadata changed under this
// transaction (the eventual-consistency detection hook of §3.8).
func (tx *Tx) MetadataStale() bool { return tx.registry().Version() != tx.metaVer }

// TranslateVertexID resolves an application-level vertex ID to the internal
// DPtr via the internal index (GDI_TranslateVertexID). Vertices created by
// this transaction are visible before commit (read-your-own-writes). One
// DHT lookup: O(1) expected work and depth.
func (tx *Tx) TranslateVertexID(appID uint64) (fabric.DPtr, error) {
	if err := tx.check(); err != nil {
		return fabric.NullDPtr, err
	}
	if dp, ok := tx.newByApp[appID]; ok {
		if tx.verts[dp] != nil && tx.verts[dp].deleted {
			return fabric.NullDPtr, fmt.Errorf("%w: vertex app ID %d", ErrNotFound, appID)
		}
		return dp, nil
	}
	v, ok := tx.eng.index.Lookup(tx.rank, appID)
	if !ok {
		return fabric.NullDPtr, fmt.Errorf("%w: vertex app ID %d", ErrNotFound, appID)
	}
	if st := tx.verts[fabric.DPtr(v)]; st != nil && st.deleted {
		return fabric.NullDPtr, fmt.Errorf("%w: vertex app ID %d", ErrNotFound, appID)
	}
	return fabric.DPtr(v), nil
}

// fetchBlocks reads a holder's full logical stream starting from its
// primary block, exploiting the streaming invariant of package holder:
// table entry i is always available before block i+1 is needed.
func (tx *Tx) fetchBlocks(primary fabric.DPtr) ([]byte, []fabric.DPtr, error) {
	bs := tx.eng.cfg.BlockSize
	buf := make([]byte, bs)
	tx.eng.store.ReadBlock(tx.rank, primary, buf)
	nb := holder.NumBlocks(buf)
	if nb < 1 {
		return nil, nil, fmt.Errorf("%w: holder %v was deleted", ErrNotFound, primary)
	}
	blocks := make([]fabric.DPtr, 1, nb)
	blocks[0] = primary
	if nb > 1 {
		full := make([]byte, nb*bs)
		copy(full, buf)
		buf = full
		for i := 1; i < nb; i++ {
			dp := holder.TableEntry(buf, i-1)
			if dp.IsNull() {
				return nil, nil, fmt.Errorf("%w: holder %v has a null continuation block", ErrNotFound, primary)
			}
			tx.eng.store.ReadBlock(tx.rank, dp, buf[i*bs:(i+1)*bs])
			blocks = append(blocks, dp)
		}
	}
	return buf, blocks, nil
}

// AssociateVertex creates (or returns the cached) process-local handle for
// vertex dp (GDI_AssociateVertex). For locking transactions it acquires a
// read lock; mutations upgrade it. O(b) block gets for a b-block holder,
// one remote atomic for the lock.
//
// It is a thin blocking wrapper over the non-blocking tier: the call queues
// the fetch and immediately waits, which also flushes any other
// associations the transaction has queued (a blocking operation implies
// progress, exactly as in MPI). Latency-sensitive traversals should prefer
// AssociateVertices or AssociateVertexAsync to amortize remote round-trips.
func (tx *Tx) AssociateVertex(dp fabric.DPtr) (*VertexHandle, error) {
	return tx.AssociateVertexAsync(dp).Wait()
}

func (tx *Tx) lockWord(dp fabric.DPtr) locks.Word {
	win, target, idx := tx.eng.store.LockWord(dp)
	return locks.Word{Win: win, Target: target, Idx: idx}
}

func (tx *Tx) unlockState(st *vertexState) {
	switch st.lock {
	case lockRead, lockUpgrade: // an upgrade not yet granted holds a read lock
		tx.lockWord(st.primary).ReleaseRead(tx.rank)
	case lockWrite:
		tx.lockWord(st.primary).ReleaseWrite(tx.rank)
	}
	st.lock = lockNone
}

// ensureWrite makes st exclusively held and marks it dirty. On the batched
// write path the remote upgrade CAS is deferred: the state moves to
// lockUpgrade and the commit-time lock train resolves every deferred word
// with one vectored CAS train per owner rank. On the scalar path (and for
// states without a lock to build on) the upgrade happens here, one remote
// atomic per call.
func (tx *Tx) ensureWrite(st *vertexState) error {
	if tx.mode == ReadOnly {
		return ErrReadOnly
	}
	switch st.lock {
	case lockWrite, lockUpgrade:
	case lockRead:
		if tx.batchedCommit() {
			st.lock = lockUpgrade
		} else {
			if err := tx.lockWord(st.primary).TryUpgrade(tx.rank, tx.eng.cfg.LockTries); err != nil {
				return tx.fail(fmt.Errorf("upgrading lock on %v: %w", st.primary, err))
			}
			st.lock = lockWrite
		}
	case lockNone:
		// Batched-path fresh vertices stay unlocked until the commit train:
		// they are unpublished, so nothing can race them before then.
		if !tx.skipLocks() && !(tx.batchedCommit() && st.isNew) {
			if err := tx.lockWord(st.primary).TryAcquireWrite(tx.rank, tx.eng.cfg.LockTries); err != nil {
				return tx.fail(fmt.Errorf("write-locking %v: %w", st.primary, err))
			}
			st.lock = lockWrite
		}
	}
	// Mutations (and the commit re-encode they lead to) work on the
	// materialized edge list; lazily decoded holders realize it here.
	tx.materializeEdges(st)
	if !st.dirty {
		st.dirty = true
		tx.dirtyList = append(tx.dirtyList, st.primary)
	}
	return nil
}

// materializeEdges realizes a lazily decoded holder's []EdgeRec from its
// view. Idempotent and free for eager states.
func (tx *Tx) materializeEdges(st *vertexState) {
	if !st.lazyEdges {
		return
	}
	st.v.Edges = st.view.AppendEdges(st.v.Edges[:0])
	st.lazyEdges = false
}

// CreateVertex allocates a new vertex with the given application-level ID,
// placed on OwnerOf(appID), and returns its internal ID. The vertex becomes
// visible to other transactions at commit, when it is published in the
// internal index. O(1) work and depth.
func (tx *Tx) CreateVertex(appID uint64) (fabric.DPtr, error) {
	if err := tx.check(); err != nil {
		return fabric.NullDPtr, err
	}
	if tx.mode == ReadOnly {
		return fabric.NullDPtr, ErrReadOnly
	}
	owner := tx.eng.OwnerOf(appID)
	primary, err := tx.eng.store.AcquireBlock(tx.rank, owner)
	if err != nil {
		return fabric.NullDPtr, tx.fail(ErrNoMemory)
	}
	st := &vertexState{
		primary: primary,
		v:       &holder.Vertex{AppID: appID},
		isNew:   true,
	}
	// On the batched write path the exclusive lock on a fresh vertex is
	// taken by the commit-time lock train (one CAS train per owner rank):
	// the vertex is unpublished until commit, so nothing can touch it
	// before then. The scalar path locks eagerly, one remote atomic each.
	if !tx.skipLocks() && !tx.batchedCommit() {
		if err := tx.lockWord(primary).TryAcquireWrite(tx.rank, tx.eng.cfg.LockTries); err != nil {
			tx.eng.store.ReleaseBlock(tx.rank, primary)
			return fabric.NullDPtr, tx.fail(err)
		}
		st.lock = lockWrite
	}
	st.dirty = true
	tx.dirtyList = append(tx.dirtyList, primary)
	tx.verts[primary] = st
	if tx.newByApp == nil {
		tx.newByApp = make(map[uint64]fabric.DPtr)
	}
	tx.newByApp[appID] = primary
	return primary, nil
}

// DeleteVertex removes a vertex and all of its edges. Every neighbor's
// holder is updated, so the operation write-locks the neighborhood — the
// "demanding vertex deletions" of §6.4. O(deg(v)) holder updates.
func (tx *Tx) DeleteVertex(dp fabric.DPtr) error {
	h, err := tx.AssociateVertex(dp)
	if err != nil {
		return err
	}
	st := h.st
	if err := tx.ensureWrite(st); err != nil {
		return err
	}
	// Remove the sibling record at every neighbor.
	for _, rec := range st.v.Edges {
		if rec.Heavy {
			if err := tx.dropEdgeHolder(rec.Neighbor); err != nil {
				return err
			}
			continue
		}
		if st.isIdentity(rec.Neighbor) {
			continue // self-loop: both records live here
		}
		nh, err := tx.AssociateVertex(rec.Neighbor)
		if err != nil {
			return err
		}
		if err := tx.ensureWrite(nh.st); err != nil {
			return err
		}
		nh.st.v.Edges = removeSiblings(nh.st.v.Edges, st)
	}
	st.v.Edges = nil
	st.deleted = true
	return nil
}

// removeSiblings drops every record pointing at the deleted vertex, under
// any of its identities (current primary or a pre-migration home).
func removeSiblings(recs []holder.EdgeRec, gone *vertexState) []holder.EdgeRec {
	out := recs[:0]
	for _, r := range recs {
		if !r.Heavy && gone.isIdentity(r.Neighbor) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// dropEdgeHolder marks a heavy-edge holder deleted.
func (tx *Tx) dropEdgeHolder(dp fabric.DPtr) error {
	es, err := tx.fetchEdgeState(dp)
	if err != nil {
		return err
	}
	es.deleted = true
	es.dirty = true
	return nil
}

func (tx *Tx) fetchEdgeState(dp fabric.DPtr) (*edgeState, error) {
	if es, ok := tx.edges[dp]; ok {
		return es, nil
	}
	buf, blocks, err := tx.fetchBlocks(dp)
	if err != nil {
		return nil, err
	}
	e, err := holder.DecodeEdge(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, err)
	}
	es := &edgeState{primary: dp, e: e, blocks: blocks}
	tx.edges[dp] = es
	return es, nil
}
