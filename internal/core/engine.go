// Package core implements the GDA storage and transaction engine of §5 of
// the paper — the machinery underneath the public GDI API:
//
//   - sharded graph data over the BGDL block layer (packages block, holder);
//   - the internal index translating application-level vertex IDs to DPtrs,
//     backed by the fully-offloaded DHT (package dht);
//   - per-rank explicit indexes (vertex enumeration and label postings),
//     maintained with eventual consistency at commit time;
//   - replicated metadata registries (package metadata);
//   - local and collective ACID transactions with per-vertex reader-writer
//     locks, dirty-block tracking, and a write-back commit protocol.
//
// Work/depth: unless stated otherwise, every data-path routine is O(1) work
// and depth measured in block operations for holders that fit one block, and
// O(b) for holders spanning b blocks.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/gdi-go/gdi/internal/block"
	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/dht"
	"github.com/gdi-go/gdi/internal/exchange"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
	"github.com/gdi-go/gdi/internal/snapshot"
)

// Canonical engine errors. ErrTxCritical follows the GDI error model (§3.3):
// once a routine returns a transaction-critical error the transaction is
// guaranteed to fail; the user must abort and start a new one.
var (
	// ErrTxCritical marks transaction-critical failures (lock contention,
	// storage exhaustion mid-commit, stale metadata).
	ErrTxCritical = errors.New("core: transaction-critical error")
	// ErrNotFound reports a missing vertex, edge, label, or property.
	ErrNotFound = errors.New("core: not found")
	// ErrTxClosed reports use of a committed or aborted transaction.
	ErrTxClosed = errors.New("core: transaction already closed")
	// ErrReadOnly reports a mutation inside a read-only transaction.
	ErrReadOnly = errors.New("core: mutation in read-only transaction")
	// ErrNoMemory reports block-pool exhaustion.
	ErrNoMemory = errors.New("core: out of blocks")
	// ErrBadArgument reports arguments violating the GDI contract.
	ErrBadArgument = errors.New("core: bad argument")
)

// Config sizes an Engine.
type Config struct {
	// BlockSize is the BGDL block size in bytes (§5.5's tunable
	// communication/fragmentation trade-off).
	BlockSize int
	// BlocksPerRank is each rank's block-pool capacity.
	BlocksPerRank int
	// DHTBucketsPerRank and DHTEntriesPerRank size the internal index.
	DHTBucketsPerRank int
	DHTEntriesPerRank int
	// LockTries bounds lock acquisition; exceeding it aborts the
	// transaction (the paper's failed transactions).
	LockTries int
	// ScalarCommit disables the batched write path — commit-time lock
	// trains, vectored write-back, and group commit — so every dirty block
	// and lock word pays its own remote round-trip at commit. It exists for
	// the CommitBatching ablation and for debugging; production
	// configurations leave it false.
	ScalarCommit bool
	// CacheBlocks gives every rank a version-validated cache of remote
	// block copies: vertex-holder fetches revalidate cached blocks against
	// the version counters in the per-block lock words (one atomic-load
	// train per owner rank) and skip the GET traffic on a hit. It composes
	// with either write path — both bump the versions at write-unlock.
	CacheBlocks bool
	// CacheCapacity is the per-rank cache size in blocks (default 8192);
	// only meaningful with CacheBlocks.
	CacheCapacity int
	// OptimisticReads makes local read-only transactions lock-free: instead
	// of taking per-vertex read locks they record (vertex, version) pairs at
	// fetch time and revalidate all of them with one atomic-load train per
	// owner rank at commit, aborting with a transaction-critical error when
	// any version moved (§3.8's optimistic aborts).
	OptimisticReads bool
	// DenseAnalytics switches the iterative analytics kernels (BFS, PageRank,
	// CDLP, WCC, LCC) to the CSR snapshot engine: per-rank index-compacted
	// adjacency in flat offset+target arrays, bitmap frontiers with
	// direction-optimizing BFS, and all iteration traffic routed through the
	// one-sided exchange (per-rank inbox PUT trains) instead of the
	// collective layer's channel mail. The map-based engine remains the
	// default and the ablation baseline.
	DenseAnalytics bool
	// ExchangeBytesPerRank sizes the one-sided exchange's per-rank inbox
	// (default 2 MiB); oversized rounds stream in sub-rounds automatically.
	ExchangeBytesPerRank int
	// RebalanceHeatTracking enables the per-rank access-heat counters the
	// workload-aware rebalancer consumes: every vertex-holder fetch records
	// one access for (accessing rank, appID) in a rank-local shard. Off by
	// default — the hot path then pays nothing.
	RebalanceHeatTracking bool
	// RebalanceTopK is how many of its hottest vertices each rank proposes
	// per Rebalance round (default 64).
	RebalanceTopK int
	// RebalanceMinHeat is the minimum access count a vertex needs before the
	// rebalancer considers moving it (default 8).
	RebalanceMinHeat int
	// RebalanceMaxMoves caps the migrations planned into any one destination
	// rank per Rebalance round (default 256).
	RebalanceMaxMoves int
	// RebalanceBatch is the migration-train size: how many vertices one rank
	// migrates under a single batched lock/read/write train (default 32).
	RebalanceBatch int
	// HTAPSnapshots enables the MVCC-lite snapshot subsystem (package
	// snapshot): collective AcquireCut pins transaction-consistent cuts of
	// the block store while commits keep landing, writers retire overwritten
	// block versions into per-rank arenas, and committed vertex deltas are
	// logged for the incremental CSR fold. Off by default — the commit path
	// then pays only an uncontended RWMutex and one atomic load per write.
	HTAPSnapshots bool
	// HTAPCutRetries bounds the validated-read loop of cut block reads
	// (default snapshot.DefaultCutRetries).
	HTAPCutRetries int
	// HolderCodec selects the wire format new and rewritten holders are
	// encoded with: holder.CodecV1 (fixed 16-byte edge records, the default
	// and the ablation baseline) or holder.CodecV2 (delta+varint edge runs,
	// varint entries, inline single-block flag). Decoding always dispatches
	// on the stream's own header flag, so a store may hold both formats at
	// once — re-encoding writes (commits, migration, promotion, bulk load)
	// convert holders to the engine codec as they touch them.
	HolderCodec holder.Codec
}

// withDefaults fills zero fields with workable defaults.
func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = block.DefaultBlockSize
	}
	if c.BlocksPerRank == 0 {
		c.BlocksPerRank = 1 << 16
	}
	if c.DHTBucketsPerRank == 0 {
		c.DHTBucketsPerRank = 1 << 12
	}
	if c.DHTEntriesPerRank == 0 {
		c.DHTEntriesPerRank = 1 << 14
	}
	if c.LockTries == 0 {
		c.LockTries = 64
	}
	if c.CacheBlocks && c.CacheCapacity == 0 {
		c.CacheCapacity = 1 << 13
	}
	if c.ExchangeBytesPerRank == 0 {
		c.ExchangeBytesPerRank = 1 << 21
	}
	if c.RebalanceTopK == 0 {
		c.RebalanceTopK = 64
	}
	if c.RebalanceMinHeat == 0 {
		c.RebalanceMinHeat = 8
	}
	if c.RebalanceMaxMoves == 0 {
		c.RebalanceMaxMoves = 256
	}
	if c.RebalanceBatch == 0 {
		c.RebalanceBatch = 32
	}
	return c
}

// Engine is one distributed graph database instance (GDI supports several
// concurrent databases per environment, §3.9 — each gets its own Engine).
type Engine struct {
	fab     fabric.Transport
	store   *block.Store
	index   *dht.Map
	comm    *collective.Comm
	regs    []*metadata.Registry
	local   []*localIndex
	commits []groupCommitter // one write-back combiner per rank
	heat    []*heatShard     // per-rank access-heat counters (rebalancing)
	repl    []*replicaShard  // per-rank replica directories (read-scale replication)
	cfg     Config
	mp      bool // true when some rank lives in another OS process

	// dead is the engine's view of failed ranks, filled by the transport's
	// peer-death notifications; PromoteDead drains it into follower
	// promotions.
	deadMu sync.Mutex
	dead   map[fabric.Rank]bool

	// snap is the HTAP snapshot manager (nil unless Config.HTAPSnapshots).
	// htapGate is the commit gate: commits (and live migration) hold it in
	// read mode across their whole apply phase — first write-back PUT through
	// final lock release plus the delta-log append — while AcquireCut holds
	// it exclusively across every rank's shard stamping. The exclusion makes
	// the per-rank guard-stamp trains one transaction-consistent cut: no
	// commit is mid-write-back while any rank stamps, so every commit's
	// writes and delta records land atomically before or after the cut.
	snap     *snapshot.Manager
	htapGate sync.RWMutex

	xchgOnce sync.Once
	xchg     *exchange.Exchange

	optAborts  atomic.Int64 // optimistic read transactions failing validation
	migrations atomic.Int64 // vertices moved by live migration
	migSkips   atomic.Int64 // planned migrations skipped (contention/staleness)
	forwards   atomic.Int64 // reads that chased a migration forwarding stub

	replicaReads atomic.Int64 // optimistic fetches served by a local follower
	reseeds      atomic.Int64 // follower copies seeded (initial + repair)
	promotions   atomic.Int64 // followers promoted to primary after a rank death
	replicaDrops atomic.Int64 // follower groups dropped (reshape, delete, lockstep loss)
}

// localIndex is one rank's shard of the explicit indexes: the set of local
// vertices (for collective scans) and label postings. It is maintained at
// commit time, i.e. with eventual consistency relative to remote readers
// (§3.8); access is guarded because committing ranks update the owner's
// shard directly in this simulation.
type localIndex struct {
	mu      sync.Mutex
	verts   map[fabric.DPtr]uint64 // local vertex -> appID
	byLabel map[lpg.LabelID]map[fabric.DPtr]struct{}
}

func newLocalIndex() *localIndex {
	return &localIndex{
		verts:   make(map[fabric.DPtr]uint64),
		byLabel: make(map[lpg.LabelID]map[fabric.DPtr]struct{}),
	}
}

// NewEngine collectively creates a database engine over fabric f.
func NewEngine(f fabric.Transport, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	cacheBlocks := 0
	if cfg.CacheBlocks {
		cacheBlocks = cfg.CacheCapacity
	}
	e := &Engine{
		fab:     f,
		store:   block.NewStore(f, block.Config{BlockSize: cfg.BlockSize, BlocksPerRank: cfg.BlocksPerRank, CacheBlocks: cacheBlocks}),
		index:   dht.New(f, dht.Config{BucketsPerRank: cfg.DHTBucketsPerRank, EntriesPerRank: cfg.DHTEntriesPerRank}),
		comm:    collective.New(f),
		regs:    make([]*metadata.Registry, f.Size()),
		local:   make([]*localIndex, f.Size()),
		commits: make([]groupCommitter, f.Size()),
		heat:    make([]*heatShard, f.Size()),
		repl:    make([]*replicaShard, f.Size()),
		dead:    make(map[fabric.Rank]bool),
		cfg:     cfg,
	}
	for r := range e.regs {
		e.regs[r] = metadata.NewRegistry()
		e.local[r] = newLocalIndex()
		e.heat[r] = newHeatShard()
		e.repl[r] = newReplicaShard()
	}
	f.NotifyPeerDeath(func(r fabric.Rank) {
		e.deadMu.Lock()
		e.dead[r] = true
		e.deadMu.Unlock()
	})
	e.mp = computeMultiProcess(f)
	if e.mp {
		if cfg.HTAPSnapshots {
			// The snapshot manager shares cut objects and arenas by
			// reference across ranks; it has no wire representation yet.
			panic("core: HTAPSnapshots requires a shared-address-space transport (run HTAP on the simulator backend)")
		}
		e.registerServices()
	}
	if cfg.HTAPSnapshots {
		e.snap = snapshot.NewManager(e.store, cfg.HTAPCutRetries)
		// Byte-changing writers retire through the store's pre-write hook;
		// bump-without-write releases (aborts after upgrade, no-op updates,
		// migration secondary words) retire through the lock layer's
		// write-unlock hook. Lock word 1+off guards block off; word 0 is the
		// free-list head and never carries a version to preserve.
		e.store.SetRetirer(e.snap)
		sys, _, _ := e.store.LockWord(fabric.MakeDPtr(0, 1))
		locks.SetReleaseHook(sys, func(target fabric.Rank, idx int) {
			if idx >= 1 {
				e.snap.Retire(target, uint64(idx-1))
			}
		})
	}
	return e
}

// Fabric returns the engine's fabric.
func (e *Engine) Fabric() fabric.Transport { return e.fab }

// Comm returns the engine's communicator for user-level collectives.
func (e *Engine) Comm() *collective.Comm { return e.comm }

// DenseAnalytics reports whether the CSR analytics engine is enabled.
func (e *Engine) DenseAnalytics() bool { return e.cfg.DenseAnalytics }

// Exchange returns the engine's one-sided alltoallv context, allocating its
// inbox windows on first use (so OLTP-only databases never pay for them).
// The first calls may race across ranks; allocation is serialized.
func (e *Engine) Exchange() *exchange.Exchange {
	e.xchgOnce.Do(func() {
		e.xchg = exchange.New(e.fab, e.comm, e.cfg.ExchangeBytesPerRank)
	})
	return e.xchg
}

// Store exposes the block pool (used by diagnostics and tests).
func (e *Engine) Store() *block.Store { return e.store }

// Codec returns the holder wire format the engine encodes with. Decoding is
// always format-agnostic (the stream header says which codec wrote it).
func (e *Engine) Codec() holder.Codec { return e.cfg.HolderCodec }

// SetHolderCodec switches the encode codec of a running engine — the
// cross-version compatibility tests use it to grow mixed v1/v2 stores:
// existing holders keep their format until a commit, migration, promotion,
// or bulk merge rewrites them under the new codec.
func (e *Engine) SetHolderCodec(c holder.Codec) { e.cfg.HolderCodec = c }

// Registry returns rank r's metadata replica.
func (e *Engine) Registry(r fabric.Rank) *metadata.Registry { return e.regs[r] }

// OwnerOf returns the rank a vertex with the given application ID is placed
// on. GDA distributes vertices round-robin (§5.4); the GDI spec is
// deliberately orthogonal to this choice.
func (e *Engine) OwnerOf(appID uint64) fabric.Rank {
	return fabric.Rank(appID % uint64(e.fab.Size()))
}

// DefineLabel registers a label on every replica. It is the driver-context
// convenience for the collective GDI_CreateLabel; inside SPMD code use
// CreateLabelCollective.
func (e *Engine) DefineLabel(name string) (lpg.LabelID, error) {
	var id lpg.LabelID
	for r, reg := range e.regs {
		l, err := reg.AddLabel(name)
		if err != nil {
			return 0, err
		}
		if r == 0 {
			id = l.ID
		} else if l.ID != id {
			return 0, fmt.Errorf("core: replica divergence registering label %q", name)
		}
	}
	return id, nil
}

// DefinePType registers a property type on every replica (driver-context
// form of the collective GDI_CreatePropertyType).
func (e *Engine) DefinePType(name string, spec metadata.PTypeSpec) (lpg.PTypeID, error) {
	var id lpg.PTypeID
	for r, reg := range e.regs {
		pt, err := reg.AddPType(name, spec)
		if err != nil {
			return 0, err
		}
		if r == 0 {
			id = pt.ID
		} else if pt.ID != id {
			return 0, fmt.Errorf("core: replica divergence registering p-type %q", name)
		}
	}
	return id, nil
}

// CreateLabelCollective registers a label from SPMD context: every rank must
// call it with the same name. Collective, O(log P) depth for the barrier.
func (e *Engine) CreateLabelCollective(rank fabric.Rank, name string) (lpg.LabelID, error) {
	e.comm.Barrier(rank)
	l, err := e.regs[rank].AddLabel(name)
	e.comm.Barrier(rank)
	if err != nil {
		return 0, err
	}
	return l.ID, nil
}

// CreatePTypeCollective registers a property type from SPMD context.
func (e *Engine) CreatePTypeCollective(rank fabric.Rank, name string, spec metadata.PTypeSpec) (lpg.PTypeID, error) {
	e.comm.Barrier(rank)
	pt, err := e.regs[rank].AddPType(name, spec)
	e.comm.Barrier(rank)
	if err != nil {
		return 0, err
	}
	return pt.ID, nil
}

// LocalVertices snapshots rank r's vertex shard: the "get local vertices of
// an index" primitive collective transactions iterate (Listings 2 and 3).
func (e *Engine) LocalVertices(r fabric.Rank) []fabric.DPtr {
	li := e.local[r]
	li.mu.Lock()
	defer li.mu.Unlock()
	out := make([]fabric.DPtr, 0, len(li.verts))
	for dp := range li.verts {
		out = append(out, dp)
	}
	return out
}

// LocalVertexCount returns the size of rank r's vertex shard.
func (e *Engine) LocalVertexCount(r fabric.Rank) int {
	li := e.local[r]
	li.mu.Lock()
	defer li.mu.Unlock()
	return len(li.verts)
}

// LocalVerticesWithLabel snapshots rank r's posting list for one label.
func (e *Engine) LocalVerticesWithLabel(r fabric.Rank, l lpg.LabelID) []fabric.DPtr {
	li := e.local[r]
	li.mu.Lock()
	defer li.mu.Unlock()
	out := make([]fabric.DPtr, 0, len(li.byLabel[l]))
	for dp := range li.byLabel[l] {
		out = append(out, dp)
	}
	return out
}

func (li *localIndex) addVertex(dp fabric.DPtr, appID uint64, labels []lpg.LabelID) {
	li.mu.Lock()
	defer li.mu.Unlock()
	li.verts[dp] = appID
	for _, l := range labels {
		set, ok := li.byLabel[l]
		if !ok {
			set = make(map[fabric.DPtr]struct{})
			li.byLabel[l] = set
		}
		set[dp] = struct{}{}
	}
}

func (li *localIndex) removeVertex(dp fabric.DPtr, labels []lpg.LabelID) {
	li.mu.Lock()
	defer li.mu.Unlock()
	delete(li.verts, dp)
	for _, l := range labels {
		if set, ok := li.byLabel[l]; ok {
			delete(set, dp)
		}
	}
}

func (li *localIndex) updateLabels(dp fabric.DPtr, old, new []lpg.LabelID) {
	li.mu.Lock()
	defer li.mu.Unlock()
	for _, l := range old {
		if set, ok := li.byLabel[l]; ok {
			delete(set, dp)
		}
	}
	for _, l := range new {
		set, ok := li.byLabel[l]
		if !ok {
			set = make(map[fabric.DPtr]struct{})
			li.byLabel[l] = set
		}
		set[dp] = struct{}{}
	}
}

// FreeBlocks reports the number of free blocks on rank r (diagnostics).
func (e *Engine) FreeBlocks(r fabric.Rank) int { return e.store.FreeBlocks(r, r) }

// OptimisticAborts reports how many optimistic read transactions failed
// version validation at commit — the optimistic-abort counter OLTP reports
// print alongside the train counters.
func (e *Engine) OptimisticAborts() int64 { return e.optAborts.Load() }

// Migrations reports how many vertices live migration has moved.
func (e *Engine) Migrations() int64 { return e.migrations.Load() }

// MigrationSkips reports planned migrations that were skipped because the
// vertex was lock-contended, already moved, or deleted by plan-apply time.
func (e *Engine) MigrationSkips() int64 { return e.migSkips.Load() }

// ForwardedReads reports how many holder fetches chased a migration
// forwarding stub to the vertex's current primary (stale-DPtr traffic; it
// decays as transactions re-translate IDs against the swung DHT entries).
func (e *Engine) ForwardedReads() int64 { return e.forwards.Load() }

// ReplicaReads reports how many optimistic fetches were served from a local
// follower copy instead of paying the remote fetch trains.
func (e *Engine) ReplicaReads() int64 { return e.replicaReads.Load() }

// Reseeds reports how many follower copies have been seeded (initial
// replication plus post-failure repair).
func (e *Engine) Reseeds() int64 { return e.reseeds.Load() }

// Promotions reports how many followers have been promoted to primary after
// a rank death.
func (e *Engine) Promotions() int64 { return e.promotions.Load() }

// ReplicaDrops reports how many follower groups were dropped — by a reshaping
// or deleting commit, or because a follower fell out of lockstep.
func (e *Engine) ReplicaDrops() int64 { return e.replicaDrops.Load() }

// ReplicaCount reports how many follower copies rank r currently hosts.
func (e *Engine) ReplicaCount(r fabric.Rank) int { return e.repl[r].size() }

// isDead reports the engine's view of rank r's liveness (union of the
// transport's advisory signal and the deaths already notified).
func (e *Engine) isDead(r fabric.Rank) bool {
	e.deadMu.Lock()
	d := e.dead[r]
	e.deadMu.Unlock()
	return d || !e.fab.Alive(r)
}

// deadSet snapshots the set of ranks the engine believes dead.
func (e *Engine) deadSet() map[fabric.Rank]bool {
	out := make(map[fabric.Rank]bool)
	e.deadMu.Lock()
	for r := range e.dead {
		out[r] = true
	}
	e.deadMu.Unlock()
	for r := 0; r < e.fab.Size(); r++ {
		if !e.fab.Alive(fabric.Rank(r)) {
			out[fabric.Rank(r)] = true
		}
	}
	return out
}

// Snapshots returns the HTAP snapshot manager, or nil when
// Config.HTAPSnapshots is off.
func (e *Engine) Snapshots() *snapshot.Manager { return e.snap }

// SnapshotCuts reports how many HTAP cuts have been acquired.
func (e *Engine) SnapshotCuts() int64 {
	if e.snap == nil {
		return 0
	}
	return e.snap.CutsAcquired()
}

// RetiredBlocks reports how many block versions writers have retired into
// the snapshot arenas on behalf of pinned cuts.
func (e *Engine) RetiredBlocks() int64 {
	if e.snap == nil {
		return 0
	}
	return e.snap.RetiredBlocks()
}

// ArenaBytes reports how many retired-version bytes the snapshot arenas
// currently hold; zero once every cut has released.
func (e *Engine) ArenaBytes() int64 {
	if e.snap == nil {
		return 0
	}
	return e.snap.ArenaBytes()
}

// DeltaFolds reports how many incremental CSR folds the analytics layer has
// applied from the committed delta logs.
func (e *Engine) DeltaFolds() int64 {
	if e.snap == nil {
		return 0
	}
	return e.snap.DeltaFolds()
}
