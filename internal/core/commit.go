package core

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// Commit makes the transaction's changes durable and visible
// (GDI_CloseTransaction with commit semantics). The protocol preserves
// atomicity by splitting into a prepare phase that can fail (acquiring every
// block the write-back needs) and an apply phase that cannot: either all
// dirty holders are written back or none (§5.6).
//
// Work: O(Σ dirty holder blocks); depth: O(1) per holder after the
// sequential prepare walk. Collective transactions add two O(log P)
// barriers.
func (tx *Tx) Commit() error {
	if tx.closed {
		return ErrTxClosed
	}
	if tx.collective {
		tx.eng.comm.Barrier(tx.rank)
		defer tx.eng.comm.Barrier(tx.rank)
	}
	if tx.critical != nil {
		tx.abortLocked()
		return tx.critical
	}
	if tx.mode == ReadWrite && tx.hasWrites() && tx.MetadataStale() {
		// Metadata is only eventually consistent; a write transaction that
		// raced a metadata change must abort (§3.8).
		tx.fail(fmt.Errorf("metadata changed during transaction"))
		tx.abortLocked()
		return tx.critical
	}

	// Prepare: encode every dirty holder and acquire the extra blocks the
	// new encodings need. Nothing is written yet, so failure aborts cleanly.
	type plan struct {
		vs      *vertexState
		es      *edgeState
		stream  []byte
		blocks  []rma.DPtr // final block list
		release []rma.DPtr // excess blocks to free after apply
	}
	var plans []plan
	var acquired []rma.DPtr // for rollback of a failed prepare
	bs := tx.eng.cfg.BlockSize

	prepare := func(primary rma.DPtr, stream []byte, old []rma.DPtr) (pl plan, err error) {
		need := len(stream) / bs
		blocks := old
		if blocks == nil {
			blocks = []rma.DPtr{primary}
		}
		for len(blocks) < need {
			dp, aerr := tx.eng.store.AcquireBlock(tx.rank, primary.Rank())
			if aerr != nil {
				return plan{}, ErrNoMemory
			}
			acquired = append(acquired, dp)
			blocks = append(blocks, dp)
		}
		pl.stream = stream
		pl.blocks = blocks[:need]
		pl.release = blocks[need:]
		for i := 1; i < need; i++ {
			holder.SetTableEntry(stream, i-1, blocks[i])
		}
		return pl, nil
	}

	fail := func(err error) error {
		for _, dp := range acquired {
			tx.eng.store.ReleaseBlock(tx.rank, dp)
		}
		tx.fail(err)
		tx.abortLocked()
		return tx.critical
	}

	for _, primary := range tx.dirtyList {
		st := tx.verts[primary]
		if st == nil || !st.dirty || st.deleted {
			continue
		}
		pl, err := prepare(primary, holder.EncodeVertex(st.v, bs), st.blocks)
		if err != nil {
			return fail(err)
		}
		pl.vs = st
		plans = append(plans, pl)
	}
	for _, es := range tx.edges {
		if !es.dirty || es.deleted {
			continue
		}
		pl, err := prepare(es.primary, holder.EncodeEdge(es.e, bs), es.blocks)
		if err != nil {
			return fail(err)
		}
		pl.es = es
		plans = append(plans, pl)
	}

	// Apply: write every holder back, publish/retract index entries,
	// release locks. This phase cannot fail.
	for _, pl := range plans {
		for i, dp := range pl.blocks {
			tx.eng.store.WriteBlock(tx.rank, dp, pl.stream[i*bs:(i+1)*bs])
		}
		for _, dp := range pl.release {
			tx.eng.store.ReleaseBlock(tx.rank, dp)
		}
		if pl.vs != nil {
			st := pl.vs
			li := tx.eng.local[st.primary.Rank()]
			if st.isNew {
				tx.eng.index.Insert(tx.rank, st.v.AppID, uint64(st.primary))
				li.addVertex(st.primary, st.v.AppID, st.v.Labels)
			} else if !labelSetsEqual(st.origLabel, st.v.Labels) {
				li.updateLabels(st.primary, st.origLabel, st.v.Labels)
			}
			st.blocks = pl.blocks
		} else {
			pl.es.blocks = pl.blocks
		}
	}

	// Deletions: retract from indexes, poison the primary header so stale
	// DPtrs fail cleanly, then free the storage.
	for _, st := range tx.verts {
		if !st.deleted {
			continue
		}
		li := tx.eng.local[st.primary.Rank()]
		if !st.isNew {
			tx.eng.index.Delete(tx.rank, st.v.AppID)
			li.removeVertex(st.primary, st.origLabel)
			tx.eng.store.WriteBlock(tx.rank, st.primary, make([]byte, holder.HeaderSize))
		}
		tx.unlockState(st)
		if st.blocks == nil {
			st.blocks = []rma.DPtr{st.primary}
		}
		for _, dp := range st.blocks {
			tx.eng.store.ReleaseBlock(tx.rank, dp)
		}
		st.blocks = nil
	}
	for _, es := range tx.edges {
		if !es.deleted {
			continue
		}
		if !es.isNew {
			tx.eng.store.WriteBlock(tx.rank, es.primary, make([]byte, holder.HeaderSize))
		}
		if es.blocks == nil {
			es.blocks = []rma.DPtr{es.primary}
		}
		for _, dp := range es.blocks {
			tx.eng.store.ReleaseBlock(tx.rank, dp)
		}
		es.blocks = nil
	}

	tx.eng.fab.FlushAll(tx.rank)
	for _, st := range tx.verts {
		tx.unlockState(st)
	}
	tx.closed = true
	return nil
}

func (tx *Tx) hasWrites() bool {
	if len(tx.dirtyList) > 0 {
		return true
	}
	for _, es := range tx.edges {
		if es.dirty || es.deleted {
			return true
		}
	}
	for _, st := range tx.verts {
		if st.deleted {
			return true
		}
	}
	return false
}

// Abort discards the transaction (GDI_CloseTransaction with abort
// semantics): new holders' blocks are returned, all locks released, all
// cached state dropped. O(|touched holders|).
func (tx *Tx) Abort() {
	if tx.closed {
		return
	}
	if tx.collective {
		tx.eng.comm.Barrier(tx.rank)
		defer tx.eng.comm.Barrier(tx.rank)
	}
	tx.abortLocked()
}

func (tx *Tx) abortLocked() {
	for _, st := range tx.verts {
		tx.unlockState(st)
		if st.isNew {
			tx.eng.store.ReleaseBlock(tx.rank, st.primary)
		}
	}
	for _, es := range tx.edges {
		if es.isNew {
			tx.eng.store.ReleaseBlock(tx.rank, es.primary)
		}
	}
	tx.closed = true
}

func labelSetsEqual(a, b []lpg.LabelID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
