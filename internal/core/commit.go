package core

import (
	"fmt"

	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/snapshot"
)

// Commit makes the transaction's changes durable and visible
// (GDI_CloseTransaction with commit semantics). The protocol preserves
// atomicity by splitting into a prepare phase that can fail (taking the
// exclusive locks and acquiring every block the write-back needs) and an
// apply phase that cannot: either all dirty holders are written back or
// none (§5.6).
//
// On the batched write path (the default) the remote traffic of a commit is
// organized into per-owner-rank trains instead of per-word and per-block
// round-trips: deferred lock upgrades and fresh-vertex locks resolve as one
// vectored CAS train per owner rank, dirty holder blocks flush as one
// vectored PUT train per owner rank — coalesced with concurrent committers
// of the same rank by the engine's group committer — and the final lock
// release is again one train per rank. Config.ScalarCommit restores the
// scalar protocol (one remote round-trip per lock word and per dirty
// block) for ablation.
//
// Work: O(Σ dirty holder blocks); depth: O(1) per holder after the
// sequential prepare walk. Collective transactions add two O(log P)
// barriers.
func (tx *Tx) Commit() error {
	if tx.closed {
		return ErrTxClosed
	}
	if tx.collective {
		tx.eng.comm.Barrier(tx.rank)
		defer tx.eng.comm.Barrier(tx.rank)
	}
	if tx.critical != nil {
		tx.abortLocked()
		return tx.critical
	}
	if tx.mode == ReadWrite && tx.hasWrites() && tx.MetadataStale() {
		// Metadata is only eventually consistent; a write transaction that
		// raced a metadata change must abort (§3.8).
		tx.fail(fmt.Errorf("metadata changed during transaction"))
		tx.abortLocked()
		return tx.critical
	}
	if err := tx.validateOptimistic(); err != nil {
		tx.abortLocked()
		return tx.critical
	}

	batched := tx.batchedCommit()

	// Prepare, lock train: resolve every deferred exclusive lock — upgrades
	// of read-held words and fresh locks of new vertices — as one vectored
	// CAS train per owner rank, in globally sorted (deadlock-free) order.
	// Contention fails the whole train, which rolls its partial
	// acquisitions back itself; the abort below then drops the still-held
	// read locks.
	if batched && !tx.skipLocks() {
		var train []locks.TrainLock
		var members []*vertexState
		for _, primary := range tx.dirtyList {
			st := tx.verts[primary]
			if st == nil {
				continue
			}
			switch {
			case st.lock == lockUpgrade:
				train = append(train, locks.TrainLock{Word: tx.lockWord(primary), FromRead: true})
				members = append(members, st)
			case st.lock == lockNone && st.isNew:
				train = append(train, locks.TrainLock{Word: tx.lockWord(primary)})
				members = append(members, st)
			}
		}
		vers, err := locks.AcquireWriteTrain(tx.rank, train, tx.eng.cfg.LockTries)
		if err != nil {
			tx.fail(fmt.Errorf("commit lock train over %d vertices: %w", len(train), err))
			tx.abortLocked()
			return tx.critical
		}
		// Remember each word's version: the release trains below seed their
		// CAS with it and converge in one round per rank instead of
		// re-learning values this train already observed.
		for i, st := range members {
			st.lock = lockWrite
			st.lockVer = vers[i]
		}
	}

	// Prepare, stub train: a deleted vertex that migrated in its lifetime
	// still owns the forwarding stubs at its former homes. Deletion retires
	// them with the same discipline as the holder itself: write-lock each
	// stub word (so the poison below bumps its version and every cached or
	// optimistic reader of the stub revalidates), poison in the apply phase,
	// release, and free the blocks. Acquisition can fail, so it belongs to
	// prepare; the scalar path pays one CAS per word.
	var stubWords []locks.Word
	var stubVers []uint64
	var stubBlocks []fabric.DPtr
	if !tx.skipLocks() {
		var stubTrain []locks.TrainLock
		for _, st := range tx.verts {
			if !st.deleted || st.isNew || st.v == nil {
				continue
			}
			for _, h := range st.v.Homes {
				stubTrain = append(stubTrain, locks.TrainLock{Word: tx.lockWord(h)})
				stubBlocks = append(stubBlocks, h)
			}
		}
		if len(stubTrain) > 0 {
			if batched {
				vers, err := locks.AcquireWriteTrain(tx.rank, stubTrain, tx.eng.cfg.LockTries)
				if err != nil {
					tx.fail(fmt.Errorf("commit stub train over %d blocks: %w", len(stubTrain), err))
					tx.abortLocked()
					return tx.critical
				}
				stubVers = vers
			} else {
				for i, l := range stubTrain {
					if err := l.Word.TryAcquireWrite(tx.rank, tx.eng.cfg.LockTries); err != nil {
						for j := 0; j < i; j++ {
							stubTrain[j].Word.ReleaseWrite(tx.rank)
						}
						tx.fail(fmt.Errorf("write-locking migration stub %v: %w", stubBlocks[i], err))
						tx.abortLocked()
						return tx.critical
					}
				}
			}
			for _, l := range stubTrain {
				stubWords = append(stubWords, l.Word)
			}
		}
	}

	// Prepare: encode every dirty holder and acquire the extra blocks the
	// new encodings need. Nothing is written yet, so failure aborts cleanly.
	type plan struct {
		vs      *vertexState
		es      *edgeState
		stream  []byte
		blocks  []fabric.DPtr   // final block list
		release []fabric.DPtr   // excess blocks to free after apply
		fan     [][]fabric.DPtr // follower groups to rewrite in lockstep
		drop    [][]fabric.DPtr // follower groups this commit retires
	}
	var plans []plan
	var acquired []fabric.DPtr // for rollback of a failed prepare
	bs := tx.eng.cfg.BlockSize

	prepare := func(primary fabric.DPtr, stream []byte, old []fabric.DPtr) (pl plan, err error) {
		need := len(stream) / bs
		blocks := old
		if blocks == nil {
			blocks = []fabric.DPtr{primary}
		}
		for len(blocks) < need {
			dp, aerr := tx.eng.store.AcquireBlock(tx.rank, primary.Rank())
			if aerr != nil {
				return plan{}, ErrNoMemory
			}
			acquired = append(acquired, dp)
			blocks = append(blocks, dp)
		}
		pl.stream = stream
		pl.blocks = blocks[:need]
		pl.release = blocks[need:]
		for i := 1; i < need; i++ {
			holder.SetTableEntry(stream, i-1, blocks[i])
		}
		return pl, nil
	}

	fail := func(err error) error {
		for _, dp := range acquired {
			tx.eng.store.ReleaseBlock(tx.rank, dp)
		}
		locks.ReleaseWriteTrain(tx.rank, stubWords, stubVers)
		tx.fail(err)
		tx.abortLocked()
		return tx.critical
	}

	for _, primary := range tx.dirtyList {
		st := tx.verts[primary]
		if st == nil || !st.dirty || st.deleted {
			continue
		}
		stream, fan, drop := tx.encodeForCommit(st, bs)
		pl, err := prepare(primary, stream, st.blocks)
		if err != nil {
			return fail(err)
		}
		pl.vs = st
		pl.fan = fan
		pl.drop = drop
		plans = append(plans, pl)
	}
	for _, es := range tx.edges {
		if !es.dirty || es.deleted {
			continue
		}
		pl, err := prepare(es.primary, holder.EncodeEdgeCodec(es.e, bs, tx.eng.cfg.HolderCodec), es.blocks)
		if err != nil {
			return fail(err)
		}
		pl.es = es
		plans = append(plans, pl)
	}

	// HTAP gate: the whole apply phase — first write-back PUT through the
	// final lock release, plus the delta-log append — runs under the commit
	// gate in read mode. AcquireCut holds the gate exclusively while every
	// rank stamps its shard, so a cut never observes a commit whose writes
	// have partially landed or whose delta records straddle the cut's log
	// position. Lock waits above stay outside the gate: a prepare-stage
	// commit holds locks but has written nothing, which stamping tolerates.
	if tx.eng.snap != nil {
		tx.eng.htapGate.RLock()
		defer tx.eng.htapGate.RUnlock()
	}

	// Replica fan-out, mark: mirror-mark the follower words of every kept
	// follower group — one vectored CAS train per follower rank across the
	// whole transaction. The primary write locks are already held, so no
	// competing mirror train can race; a mark that fails means the follower
	// fell out of lockstep (reseed raced, earlier fan-out died) and that
	// group is skipped and its directory entry dropped — the commit itself
	// never blocks on a follower. Marked groups get the new content through
	// the same group-committer train as the primary blocks below and are
	// released to the primary's new version after the primary's own release:
	// primary-then-follower order end to end.
	type fanRef struct {
		pl    int
		g     int
		group []fabric.DPtr
	}
	fanHeld := make(map[int][][]fabric.DPtr) // plan index → marked groups
	var mirWords [][]locks.Word              // per follower rank, for release
	var mirVers [][]uint64
	if len(plans) > 0 {
		byRank := make(map[fabric.Rank][]fanRef)
		for pi := range plans {
			for gi, g := range plans[pi].fan {
				if len(g) == 0 {
					continue
				}
				fr := g[0].Rank()
				if tx.eng.isDead(fr) {
					tx.eng.replicaDrops.Add(1)
					continue
				}
				byRank[fr] = append(byRank[fr], fanRef{pl: pi, g: gi, group: g})
			}
		}
		for fr, refs := range byRank {
			words := make([]locks.Word, len(refs))
			vers := make([]uint64, len(refs))
			for i, ref := range refs {
				words[i] = tx.lockWord(ref.group[0])
				vers[i] = plans[ref.pl].vs.lockVer
			}
			var held []bool
			if !runIsolated(func() { held = locks.AcquireMirrorTrain(tx.rank, words, vers) }) {
				tx.eng.replicaDrops.Add(int64(len(refs)))
				continue
			}
			var hw []locks.Word
			var hv []uint64
			for i, ref := range refs {
				if held[i] {
					fanHeld[ref.pl] = append(fanHeld[ref.pl], ref.group)
					hw = append(hw, words[i])
					hv = append(hv, vers[i])
				} else {
					// Out of lockstep: retire the copy. Its stale listing in
					// the primary's group table is harmless — every later
					// fan-out fails the same CAS and drops it again.
					pr := plans[ref.pl].vs.primary
					runIsolated(func() { tx.eng.replDirDrop(tx.rank, fr, pr) })
					tx.eng.replicaDrops.Add(1)
				}
			}
			if len(hw) > 0 {
				mirWords = append(mirWords, hw)
				mirVers = append(mirVers, hv)
			}
		}
	}

	// Apply, write-back: every holder block and every deletion poison (a
	// zeroed primary header, so stale DPtrs fail cleanly). This phase
	// cannot fail. The scalar path issues one blocking PUT per block; the
	// batched path collects the transaction's whole write set and hands it
	// to the rank's group committer, which flushes it — merged with any
	// concurrently committing transactions of this rank — as one vectored
	// PUT train per owner rank.
	var wbDps []fabric.DPtr
	var wbData [][]byte
	put := func(dp fabric.DPtr, payload []byte) {
		if batched {
			wbDps = append(wbDps, dp)
			wbData = append(wbData, payload)
		} else {
			tx.eng.store.WriteBlock(tx.rank, dp, payload)
		}
	}
	for pi, pl := range plans {
		for i, dp := range pl.blocks {
			put(dp, pl.stream[i*bs:(i+1)*bs])
		}
		// Follower fan-out: the marked groups receive the same stream with
		// the replica flag set and the block table re-pointed at their own
		// blocks, riding the same write-back train.
		for _, g := range fanHeld[pi] {
			rep := holder.RewriteAsReplica(pl.stream, g)
			for i, dp := range g {
				put(dp, rep[i*bs:(i+1)*bs])
			}
		}
		// Reshaped-away groups are poisoned at the head (a local replica read
		// then fails the replica-flag check and falls back) before their
		// blocks are returned below.
		for _, g := range pl.drop {
			if len(g) > 0 && !tx.eng.isDead(g[0].Rank()) {
				put(g[0], make([]byte, holder.HeaderSize))
			}
		}
	}
	// Deleted replicated vertices retire their follower groups the same way:
	// poison the heads under the primary's lock, return the blocks after the
	// train lands.
	var delDrops []plan
	for _, st := range tx.verts {
		if st.deleted && !st.isNew {
			put(st.primary, make([]byte, holder.HeaderSize))
			if st.v != nil && len(st.v.Replicas) > 0 {
				for _, g := range st.v.Replicas {
					if len(g) > 0 && !tx.eng.isDead(g[0].Rank()) {
						put(g[0], make([]byte, holder.HeaderSize))
					}
				}
				delDrops = append(delDrops, plan{vs: st, drop: st.v.Replicas})
			}
		}
	}
	for _, es := range tx.edges {
		if es.deleted && !es.isNew {
			put(es.primary, make([]byte, holder.HeaderSize))
		}
	}
	for _, h := range stubBlocks {
		put(h, make([]byte, holder.HeaderSize))
	}
	tx.eng.groupWriteBack(tx.rank, wbDps, wbData)

	// Retire dropped follower groups now that their poison has landed: return
	// the blocks and clear the follower ranks' directory entries.
	for pi := range plans {
		if len(plans[pi].drop) > 0 {
			tx.eng.dropFollowerGroups(tx.rank, plans[pi].vs.primary, plans[pi].drop)
		}
	}
	for _, dd := range delDrops {
		tx.eng.dropFollowerGroups(tx.rank, dd.vs.primary, dd.drop)
	}

	// Delta log: one record per created, rewritten, or deleted vertex,
	// routed to the rank owning its primary block. The record carries the
	// committed holder's full inline edge list verbatim, so the incremental
	// CSR fold replaces adjacency wholesale without diffing. Appended inside
	// the gate, after the write-back, so the records and the block state a
	// cut observes always agree.
	if snap := tx.eng.snap; snap != nil {
		byRank := make(map[fabric.Rank][]snapshot.Record)
		for _, pl := range plans {
			if pl.vs == nil {
				continue
			}
			st := pl.vs
			kind := snapshot.KindUpdate
			if st.isNew {
				kind = snapshot.KindCreate
			}
			r := st.primary.Rank()
			byRank[r] = append(byRank[r], snapshot.Record{Kind: kind, DP: st.primary, App: st.v.AppID, Edges: st.v.Edges})
		}
		for _, st := range tx.verts {
			if st.deleted && !st.isNew {
				rec := snapshot.Record{Kind: snapshot.KindDelete, DP: st.primary}
				if st.v != nil {
					rec.App = st.v.AppID
				}
				r := st.primary.Rank()
				byRank[r] = append(byRank[r], rec)
			}
		}
		for r, recs := range byRank {
			snap.AppendDeltas(r, recs)
		}
	}

	// Apply, publish: release excess blocks and maintain the explicit
	// indexes. New vertices become findable here, but their exclusive locks
	// are still held, so no reader observes them before the write-back
	// above has landed.
	for _, pl := range plans {
		for _, dp := range pl.release {
			tx.eng.store.ReleaseBlock(tx.rank, dp)
		}
		if pl.vs != nil {
			st := pl.vs
			if st.isNew {
				tx.eng.index.Insert(tx.rank, st.v.AppID, uint64(st.primary))
				tx.eng.idxAddVertex(tx.rank, st.primary, st.v.AppID, st.v.Labels)
			} else if !labelSetsEqual(st.origLabel, st.v.Labels) {
				tx.eng.idxUpdateLabels(tx.rank, st.primary, st.origLabel, st.v.Labels)
			}
			st.blocks = pl.blocks
		} else {
			pl.es.blocks = pl.blocks
		}
	}

	// Deletions: retract from indexes, unlock (the poison has already been
	// written above, under the lock), then free the storage. Unlocking
	// before the block release keeps a recycler of the freed primary from
	// contending with our stale lock word; the batched path drops every
	// deleted vertex's exclusive lock as one train per owner rank — the
	// paper's demanding deletions write-lock whole neighborhoods, so
	// delete-heavy commits would otherwise pay one release round-trip per
	// vertex.
	if batched {
		var delWords []locks.Word
		var delVers []uint64
		for _, st := range tx.verts {
			if st.deleted && st.lock == lockWrite {
				delWords = append(delWords, tx.lockWord(st.primary))
				delVers = append(delVers, st.lockVer)
				st.lock = lockNone
			}
		}
		locks.ReleaseWriteTrain(tx.rank, delWords, delVers)
	}
	for _, st := range tx.verts {
		if !st.deleted {
			continue
		}
		if !st.isNew {
			tx.eng.index.Delete(tx.rank, st.v.AppID)
			tx.eng.idxRemoveVertex(tx.rank, st.primary, st.origLabel)
		}
		tx.unlockState(st)
		if st.blocks == nil {
			st.blocks = []fabric.DPtr{st.primary}
		}
		for _, dp := range st.blocks {
			tx.eng.store.ReleaseBlock(tx.rank, dp)
		}
		st.blocks = nil
	}
	for _, es := range tx.edges {
		if !es.deleted {
			continue
		}
		if es.blocks == nil {
			es.blocks = []fabric.DPtr{es.primary}
		}
		for _, dp := range es.blocks {
			tx.eng.store.ReleaseBlock(tx.rank, dp)
		}
		es.blocks = nil
	}
	// Retire the deleted vertices' forwarding stubs: unlock (the poison
	// above was written under these locks), then return the blocks.
	locks.ReleaseWriteTrain(tx.rank, stubWords, stubVers)
	for _, h := range stubBlocks {
		tx.eng.store.ReleaseBlock(tx.rank, h)
	}

	tx.eng.fab.FlushAll(tx.rank)

	// Release every remaining lock. The batched path partitions the held
	// words by kind and drops each set as one train per owner rank; the
	// scalar path pays one remote atomic per word.
	if batched {
		var wWords, rWords []locks.Word
		var wVers []uint64
		for _, st := range tx.verts {
			switch st.lock {
			case lockWrite:
				wWords = append(wWords, tx.lockWord(st.primary))
				wVers = append(wVers, st.lockVer)
			case lockRead, lockUpgrade:
				rWords = append(rWords, tx.lockWord(st.primary))
			default:
				continue
			}
			st.lock = lockNone
		}
		locks.ReleaseWriteTrain(tx.rank, wWords, wVers)
		locks.ReleaseReadTrain(tx.rank, rWords)
	} else {
		for _, st := range tx.verts {
			tx.unlockState(st)
		}
	}

	// Replica fan-out, release: the marked follower words move to the
	// version the primaries' release train just published — one CAS train
	// per follower rank, after every primary word is free. A follower rank
	// that died mid-commit is absorbed: its words stay marked and promotion's
	// steal path (or a reseed) reclaims them.
	for i := range mirWords {
		w, v := mirWords[i], mirVers[i]
		runIsolated(func() { locks.ReleaseMirrorTrain(tx.rank, w, v) })
	}
	tx.closed = true
	return nil
}

// encodeForCommit encodes a dirty vertex for write-back and decides the fate
// of its follower groups. A same-shape rewrite under a train-acquired write
// lock keeps them — the fan-out lands the new content on every follower
// inside this commit. A reshape (block count changed) or a scalar commit
// strips the groups from the encoding and retires them instead of resizing
// remote chains on the commit path; a later seeding round restores k.
func (tx *Tx) encodeForCommit(st *vertexState, bs int) (stream []byte, fan, drop [][]fabric.DPtr) {
	// Every rewrite encodes under the engine codec — this is how a store
	// converges to a new wire format holder by holder; a codec change that
	// reshapes the holder drops its follower groups like any other reshape.
	codec := tx.eng.cfg.HolderCodec
	if len(st.v.Replicas) == 0 {
		return holder.EncodeVertexCodec(st.v, bs, codec), nil, nil
	}
	if tx.batchedCommit() && st.lock == lockWrite && st.blocks != nil &&
		holder.VertexBlocksCodec(st.v, bs, codec) == len(st.blocks) {
		return holder.EncodeVertexCodec(st.v, bs, codec), st.v.Replicas, nil
	}
	drop = st.v.Replicas
	st.v.Replicas = nil
	return holder.EncodeVertexCodec(st.v, bs, codec), nil, drop
}

// validateOptimistic is the commit-time check of the optimistic read tier:
// one atomic-load train per owner rank re-reads the guard word of every
// vertex the transaction fetched, and the transaction serializes at this
// instant iff every recorded version is unchanged. A version that moved
// means a writer committed since the fetch — the optimistic abort of §3.8.
// A guard currently write-held with an unchanged version still validates:
// that writer has not released, so the content this transaction read is
// still the latest committed state and the transaction serializes before
// the writer (torn in-flight fetches were already rejected by the seqlock
// double-check at read time).
func (tx *Tx) validateOptimistic() error {
	if !tx.optimistic() || len(tx.optReads) == 0 {
		return nil
	}
	dps := make([]fabric.DPtr, 0, len(tx.optReads))
	for dp := range tx.optReads {
		dps = append(dps, dp)
	}
	words := tx.eng.store.LockStamps(tx.rank, dps)
	for i, dp := range dps {
		if got := locks.Version(words[i]); got != tx.optReads[dp] {
			tx.eng.optAborts.Add(1)
			return tx.fail(fmt.Errorf("optimistic validation of %v: version %d, read at %d: %w",
				dp, got, tx.optReads[dp], locks.ErrContended))
		}
	}
	return nil
}

func (tx *Tx) hasWrites() bool {
	if len(tx.dirtyList) > 0 {
		return true
	}
	for _, es := range tx.edges {
		if es.dirty || es.deleted {
			return true
		}
	}
	for _, st := range tx.verts {
		if st.deleted {
			return true
		}
	}
	return false
}

// Abort discards the transaction (GDI_CloseTransaction with abort
// semantics): new holders' blocks are returned, all locks released, all
// cached state dropped. O(|touched holders|).
func (tx *Tx) Abort() {
	if tx.closed {
		return
	}
	if tx.collective {
		tx.eng.comm.Barrier(tx.rank)
		defer tx.eng.comm.Barrier(tx.rank)
	}
	tx.abortLocked()
}

func (tx *Tx) abortLocked() {
	for _, st := range tx.verts {
		// An aborted write release bumps the primary's version without
		// changing content; lockstep followers track the bump so they keep
		// serving reads (read releases don't bump, so lockUpgrade is exempt).
		bump := st.lock == lockWrite && !st.isNew && st.v != nil && len(st.v.Replicas) > 0
		var mver uint64
		if bump {
			mver = locks.Version(tx.lockWord(st.primary).Stamp(tx.rank))
		}
		tx.unlockState(st)
		if bump {
			tx.eng.bumpMirrors(tx.rank, st.v, mver)
		}
		if st.isNew {
			tx.eng.store.ReleaseBlock(tx.rank, st.primary)
		}
	}
	for _, es := range tx.edges {
		if es.isNew {
			tx.eng.store.ReleaseBlock(tx.rank, es.primary)
		}
	}
	tx.closed = true
}

func labelSetsEqual(a, b []lpg.LabelID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
