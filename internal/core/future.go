package core

import (
	"errors"
	"fmt"

	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/lpg"
)

// VertexFuture is the non-blocking counterpart of AssociateVertex
// (GDI_AssociateVertex's non-blocking tier). Creating a future queues the
// fetch; the remote accesses of every queued future are issued together on
// the next flush — triggered by Wait on any future of the transaction or by
// AssociateVertices — grouped by owner rank into vectored RMA reads. Under
// injected remote latency a flush therefore pays one round-trip per owner
// rank touched instead of one per vertex (§5.6's pipelined one-sided
// accesses).
//
// Futures follow the handle rules of §3.5: they are only meaningful on the
// process that created them and must not be shared between ranks. A future
// left unwaited when its transaction closes is cancelled; Wait then reports
// ErrTxClosed.
type VertexFuture struct {
	tx   *Tx
	dp   fabric.DPtr
	done bool
	h    *VertexHandle
	err  error
}

// Test reports whether the future has completed — either satisfied from the
// per-transaction cache at creation or resolved by a flush — without
// triggering any communication (MPI_Test semantics).
func (f *VertexFuture) Test() bool { return f.done }

// Wait blocks until the future completes and returns its handle or error
// (MPI_Wait semantics). Waiting on one future flushes every fetch the
// transaction has queued, so a loop that creates N futures and then waits on
// them pays the batched cost once, on the first Wait.
func (f *VertexFuture) Wait() (*VertexHandle, error) {
	if !f.done {
		f.tx.flushPending()
	}
	if !f.done {
		// The future was detached from its transaction's queue (it can only
		// happen through misuse across goroutines); fail it rather than spin.
		f.fail(fmt.Errorf("%w: future lost by its transaction", ErrTxCritical))
	}
	return f.h, f.err
}

func (f *VertexFuture) fail(err error) {
	f.done = true
	f.err = err
}

// resolveState completes the future from a cached or freshly installed
// vertex state.
func (f *VertexFuture) resolveState(st *vertexState) {
	f.done = true
	if st.deleted {
		f.err = fmt.Errorf("%w: vertex %v deleted in this transaction", ErrNotFound, f.dp)
		return
	}
	f.h = &VertexHandle{tx: f.tx, st: st}
}

// AssociateVertexAsync begins a non-blocking vertex association. The
// returned future completes immediately when dp is already cached in this
// transaction (or is invalid); otherwise the fetch is queued until the next
// flush. Queueing performs no communication.
func (tx *Tx) AssociateVertexAsync(dp fabric.DPtr) *VertexFuture {
	f := &VertexFuture{tx: tx, dp: dp}
	if err := tx.check(); err != nil {
		f.fail(err)
		return f
	}
	if dp.IsNull() {
		f.fail(fmt.Errorf("%w: NULL vertex ID", ErrBadArgument))
		return f
	}
	if st, ok := tx.verts[dp]; ok {
		f.resolveState(st)
		return f
	}
	// A stale DPtr of a vertex this transaction already chased through its
	// forwarding stub resolves to the cached state without communication.
	if a := tx.chaseAlias(dp); a != dp {
		if st, ok := tx.verts[a]; ok {
			f.resolveState(st)
			return f
		}
	}
	tx.pending = append(tx.pending, f)
	return f
}

// AssociateVertices materializes handles for a whole set of vertices at once
// — the batch entry point frontier expansions use. Fetches are grouped by
// owner rank and issued as vectored RMA reads, so a batch spanning k ranks
// pays k remote round-trips of injected latency rather than len(dps).
//
// The returned slice is aligned with dps: handles[i] belongs to dps[i], and
// duplicates in dps resolve to the same per-transaction state. A vertex that
// does not exist (or was deleted by this transaction) yields a nil entry
// rather than failing the batch; transaction-level failures — closed
// transaction, transaction-critical lock contention, a NULL vertex ID —
// return a non-nil error.
func (tx *Tx) AssociateVertices(dps []fabric.DPtr) ([]*VertexHandle, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	futs := make([]*VertexFuture, len(dps))
	for i, dp := range dps {
		futs[i] = tx.AssociateVertexAsync(dp)
	}
	tx.flushPending()
	out := make([]*VertexHandle, len(dps))
	for i, f := range futs {
		h, err := f.Wait()
		switch {
		case err == nil:
			out[i] = h
		case errors.Is(err, ErrNotFound):
			// Missing vertices are reported positionally as nil handles.
		default:
			return nil, err
		}
	}
	return out, nil
}

// maxForwardHops bounds how many migration forwarding stubs one association
// may chase before the transaction gives up (a chain longer than the rank
// count cannot arise from well-formed migrations, so hitting the bound means
// the vertex is migrating faster than we can follow — contention).
const maxForwardHops = 8

// pendingFetch tracks one unique vertex being materialized by a flush: its
// lock state, the growing logical stream, the guard version the stream was
// validated against (optimistic tier), and every future awaiting it.
type pendingFetch struct {
	dp     fabric.DPtr
	st     *vertexState
	futs   []*VertexFuture
	buf    []byte
	blocks []fabric.DPtr
	nb     int
	ver    uint64
	fwd    fabric.DPtr // set when dp held a migration stub: chase here
	err    error
	// Optimistic-tier bookkeeping: the blocks that came off the wire (their
	// stability is only established by the post-stamp check, after which
	// they are installed into the cache) and a provisional deleted/corrupt
	// verdict awaiting that check.
	fetchedDps  []fabric.DPtr
	fetchedBufs [][]byte
	suspect     error
}

// flushPending completes every queued association (the Flush of the op
// queue). The protocol mirrors the scalar path exactly — lock, fetch,
// decode, install — but performs the fetch rounds with vectored reads:
//
//  1. Per-vertex read locks are acquired as one vectored CAS train per
//     owner rank. Lock contention is transaction-critical and poisons the
//     whole flush. Locking is elided entirely for collective read-only
//     transactions (§3.3) and for the optimistic tier, which instead
//     validates every fetch against the guard words' version stamps and
//     records the (vertex, version) pairs for revalidation at commit.
//  2. Round 0 reads every primary block, one vectored GET train per owner
//     rank. The holder streaming invariant (table entry i precedes block
//     i+1) then lets round i fetch block i of every multi-block holder,
//     again batched by rank, so a flush over b-block holders needs b
//     batched rounds, not Σb scalar reads. With the block cache enabled the
//     reads go through Store.ReadBlocksStamped against guard words stamped
//     once per flush attempt: blocks whose cached copy still carries the
//     guard's current version are served locally with no GET traffic at
//     all. Optimistic holders whose guard version moved
//     mid-fetch (a writer committed between rounds) are torn; they are
//     re-fetched from scratch, up to the transaction's retry budget.
//  3. Each holder is decoded and installed into the per-transaction cache;
//     its futures resolve to handles over the shared state.
func (tx *Tx) flushPending() {
	pending := tx.pending
	tx.pending = nil
	if len(pending) == 0 {
		return
	}
	if err := tx.check(); err != nil {
		for _, f := range pending {
			f.fail(err)
		}
		return
	}

	// Deduplicate by DPtr (resolving migration aliases this transaction has
	// already chased); cache hits resolve without communication. The dedup
	// map is built lazily on the second distinct fetch, so the dominant
	// single-vertex point read allocates no map at all. A multi-hop frontier
	// that revisits an already-chased stale DPtr in a later hop resolves
	// here through chaseAlias + the installed state — no fresh chase
	// generation, no second ForwardedReads count, no traffic
	// (TestMultiHopRevisitOfMigratedVertexUsesAliasMap).
	var fetches []*pendingFetch
	var uniq map[fabric.DPtr]*pendingFetch
	enqueue := func(dp fabric.DPtr, futs []*VertexFuture) {
		dp = tx.chaseAlias(dp)
		if st, ok := tx.verts[dp]; ok {
			for _, f := range futs {
				f.resolveState(st)
			}
			return
		}
		// Optimistic fetches are served by a local follower copy when this
		// rank holds one: zero remote traffic, and the follower-observed
		// version is recorded against the primary DPtr so the commit-time
		// validation train still proves freshness against the primary's word.
		// Heat stays attributed to the primary's owner — a replica read must
		// not make the follower rank look like the place the vertex lives.
		if tx.optimistic() {
			if st, ver, ok := tx.tryReplicaRead(dp); ok {
				st.origLabel = append([]lpg.LabelID(nil), st.v.Labels...)
				tx.verts[dp] = st
				if tx.optReads == nil {
					tx.optReads = make(map[fabric.DPtr]uint64)
				}
				tx.optReads[dp] = ver
				tx.eng.recordHeat(tx.rank, st.v.AppID, dp.Rank())
				for _, f := range futs {
					f.resolveState(st)
				}
				return
			}
		}
		if uniq == nil && len(fetches) > 0 {
			uniq = make(map[fabric.DPtr]*pendingFetch, len(pending))
			for _, q := range fetches {
				uniq[q.dp] = q
			}
		}
		var pf *pendingFetch
		if uniq != nil {
			pf = uniq[dp]
		}
		if pf == nil {
			pf = &pendingFetch{dp: dp}
			if uniq != nil {
				uniq[dp] = pf
			}
			fetches = append(fetches, pf)
		}
		pf.futs = append(pf.futs, futs...)
	}
	for _, f := range pending {
		if !f.done {
			enqueue(f.dp, []*VertexFuture{f})
		}
	}

	// Each generation fetches one hop of the (normally trivial) forwarding
	// graph: fetches that land on a migration stub re-queue at the vertex's
	// current primary and go around again, bounded by maxForwardHops.
	for hop := 0; len(fetches) > 0; hop++ {
		// Scrub the generation against states installed since it was
		// queued: a chase re-queued at the vertex's current primary may
		// race a direct fetch of that same primary resolving later in the
		// previous generation — fetching it again would double-lock the
		// word and fork the per-transaction state.
		if hop > 0 {
			live := fetches[:0]
			for _, pf := range fetches {
				if st, ok := tx.verts[pf.dp]; ok {
					for _, f := range pf.futs {
						f.resolveState(st)
					}
					continue
				}
				live = append(live, pf)
			}
			fetches = live
			if len(fetches) == 0 {
				return
			}
		}
		if hop > maxForwardHops {
			crit := tx.fail(fmt.Errorf("associating %d vertices: migration forwarding chain exceeded %d hops: %w",
				len(fetches), maxForwardHops, locks.ErrContended))
			for _, pf := range fetches {
				for _, f := range pf.futs {
					f.fail(crit)
				}
			}
			return
		}

		// Phase 1: locks, one vectored CAS train per owner rank (elided for
		// collective read-only transactions, §3.3, and for the optimistic
		// tier, which validates instead of locking). A failed acquisition is
		// transaction-critical and poisons the whole flush; the train
		// releases its partial acquisitions itself before reporting it.
		locking := !tx.skipLocks() && !tx.optimistic()
		if locking {
			words := make([]locks.Word, len(fetches))
			for i, pf := range fetches {
				words[i] = tx.lockWord(pf.dp)
			}
			if err := locks.AcquireReadTrain(tx.rank, words, tx.eng.cfg.LockTries); err != nil {
				crit := tx.fail(fmt.Errorf("read-locking a %d-vertex association batch: %w", len(fetches), err))
				for _, pf := range fetches {
					for _, f := range pf.futs {
						f.fail(crit)
					}
				}
				return
			}
		}
		for _, pf := range fetches {
			st := &vertexState{primary: pf.dp}
			if locking {
				st.lock = lockRead
			}
			pf.st = st
		}

		// Phase 2: fetch rounds. Optimistic holders whose guard version
		// moved mid-stream come back torn and are re-fetched from scratch; a
		// holder still unstable after the retry budget fails the
		// transaction, exactly as exhausted lock retries do on the locking
		// path.
		remaining := fetches
		for attempt := 0; len(remaining) > 0; attempt++ {
			unstable := tx.fetchHolderStreams(remaining)
			if len(unstable) == 0 {
				break
			}
			if attempt+1 >= tx.eng.cfg.LockTries {
				// An optimistic abort like the commit-time one, surfaced at
				// fetch time: count it so ablation reports stay
				// self-describing.
				tx.eng.optAborts.Add(1)
				crit := tx.fail(fmt.Errorf("optimistic fetch of %d vertices still torn after %d attempts: %w",
					len(unstable), attempt+1, locks.ErrContended))
				for _, pf := range unstable {
					pf.err = crit
				}
				break
			}
			for _, pf := range unstable {
				pf.buf, pf.blocks, pf.nb, pf.ver, pf.fwd = nil, nil, 0, 0, 0
				pf.fetchedDps, pf.fetchedBufs, pf.suspect = nil, nil, nil
			}
			remaining = unstable
		}

		// Phase 3: decode, install, resolve — or re-queue fetches that found
		// a forwarding stub where the holder used to be. The optimistic tier
		// records the version each holder was validated at; Commit
		// revalidates the whole read set in one train per owner rank.
		gen := fetches
		fetches = nil
		uniq = nil
		for _, pf := range gen {
			if pf.err == nil && !pf.fwd.IsNull() {
				tx.eng.forwards.Add(1)
				tx.addAlias(pf.dp, pf.fwd)
				enqueue(pf.fwd, pf.futs)
				continue
			}
			if pf.err == nil {
				// Lazy decode: validate the stream and materialize everything
				// except the edge records, which stay varint/fixed-encoded in
				// pf.buf behind the state's view until a mutation (or an
				// index-addressed read) needs a mutable slice. Point reads and
				// CSR passes iterate the view in place and allocate nothing
				// per edge.
				st := pf.st
				err := st.view.Reset(pf.buf)
				var v *holder.Vertex
				if err == nil {
					v, err = st.view.DecodeMeta()
				}
				if err != nil {
					tx.unlockState(pf.st)
					pf.err = fmt.Errorf("%w: %v", ErrNotFound, err)
				} else {
					pf.st.v = v
					pf.st.lazyEdges = st.view.NumEdges() > 0
					pf.st.blocks = pf.blocks
					pf.st.origLabel = append([]lpg.LabelID(nil), v.Labels...)
					tx.verts[pf.dp] = pf.st
					// pf.dp is the block the holder actually decoded from —
					// the post-chase primary when the fetch went through a
					// forwarding stub — so heat lands against the vertex's
					// current owner, not the vacated one.
					tx.eng.recordHeat(tx.rank, v.AppID, pf.dp.Rank())
					if tx.optimistic() {
						if tx.optReads == nil {
							tx.optReads = make(map[fabric.DPtr]uint64)
						}
						tx.optReads[pf.dp] = pf.ver
					}
				}
			}
			for _, f := range pf.futs {
				if pf.err != nil {
					f.fail(pf.err)
				} else {
					f.resolveState(pf.st)
				}
			}
		}
	}
}

// chaseAlias resolves dp through the migration aliases this transaction has
// discovered (old primary → current primary), bounded against cycles a
// migrate-back can form.
func (tx *Tx) chaseAlias(dp fabric.DPtr) fabric.DPtr {
	for i := 0; i < maxForwardHops; i++ {
		next, ok := tx.moved[dp]
		if !ok {
			return dp
		}
		dp = next
	}
	return dp
}

// addAlias records that dp's holder moved to next.
func (tx *Tx) addAlias(dp, next fabric.DPtr) {
	if tx.moved == nil {
		tx.moved = make(map[fabric.DPtr]fabric.DPtr)
	}
	tx.moved[dp] = next
}

// fetchHolderStreams materializes the logical streams of the given fetches —
// round 0 reads every primary, round i the i-th continuation block of every
// holder still needing one, each round one vectored read train per owner
// rank — and returns the subset whose optimistic reads came back unstable
// (guard version moved or writer held across the fetch) for the caller to
// retry. Holders that turn out deleted or corrupt have pf.err set and are
// not returned.
//
// Whenever version stamps matter (the optimistic tier or the block cache),
// the guards are stamped once up front — one atomic-load train per owner
// rank — and every round of every holder is served against those stamps:
// cache hits valid at the stamp cost no traffic at all, and misses come off
// the wire one GET train per rank per round. The optimistic tier then
// establishes stability with a single post-stamp train covering only the
// holders that actually touched the wire (a fully cache-served holder is a
// consistent copy at its stamped version by construction); fetched blocks
// of holders whose guard did not move are installed into the cache.
func (tx *Tx) fetchHolderStreams(fetches []*pendingFetch) (unstable []*pendingFetch) {
	bs := tx.eng.cfg.BlockSize
	store := tx.eng.store
	opt := tx.optimistic()
	stamped := opt || store.CacheEnabled()

	// Stamp every primary once; in optimistic mode a guard already held by
	// a writer cannot validate, so its holder goes straight to retry.
	live := make([]*pendingFetch, 0, len(fetches))
	var stamps map[fabric.DPtr]uint64
	if stamped {
		prims := make([]fabric.DPtr, len(fetches))
		for i, pf := range fetches {
			prims[i] = pf.dp
		}
		stamps = store.GuardStamps(tx.rank, prims)
		for _, pf := range fetches {
			w := stamps[pf.dp]
			if opt && locks.WriteHeld(w) {
				unstable = append(unstable, pf)
				continue
			}
			pf.ver = locks.Version(w)
			live = append(live, pf)
		}
	} else {
		live = append(live, fetches...)
	}

	readRound := func(dps, guards []fabric.DPtr, bufs [][]byte, pfs []*pendingFetch) {
		if !stamped {
			store.ReadBlocksBatch(tx.rank, dps, bufs)
			return
		}
		fetched := store.ReadBlocksStamped(tx.rank, dps, guards, bufs, stamps, !opt)
		if opt {
			for j, pf := range pfs {
				if fetched[j] {
					pf.fetchedDps = append(pf.fetchedDps, dps[j])
					pf.fetchedBufs = append(pf.fetchedBufs, bufs[j])
				}
			}
		}
	}
	// fail marks a holder deleted/corrupt. On the optimistic tier the
	// verdict is provisional — the poison itself may be a torn read — and
	// is confirmed or discarded by the post-stamp check.
	var toCheck []*pendingFetch
	fail := func(pf *pendingFetch, err error) {
		if opt {
			pf.suspect = err
			toCheck = append(toCheck, pf)
			return
		}
		tx.unlockState(pf.st)
		pf.err = err
	}

	// Round 0: every primary block, guarded by its own lock word.
	dps := make([]fabric.DPtr, 0, len(live))
	guards := make([]fabric.DPtr, 0, len(live))
	bufs := make([][]byte, 0, len(live))
	roundPfs := make([]*pendingFetch, 0, len(live))
	for _, pf := range live {
		pf.buf = make([]byte, bs)
		dps = append(dps, pf.dp)
		guards = append(guards, pf.dp)
		bufs = append(bufs, pf.buf)
		roundPfs = append(roundPfs, pf)
	}
	readRound(dps, guards, bufs, roundPfs)
	cur := make([]*pendingFetch, 0, len(live))
	for _, pf := range live {
		nb := holder.NumBlocks(pf.buf)
		if nb < 1 {
			fail(pf, fmt.Errorf("%w: holder %v was deleted", ErrNotFound, pf.dp))
			continue
		}
		if holder.IsMoved(pf.buf) {
			// The vertex migrated away and left a forwarding stub: record
			// the chase target and drop any read lock on the vacated block —
			// the flush re-queues the fetch at the current primary. On the
			// optimistic tier the stub read still goes through the
			// post-stamp check below before the target is trusted.
			pf.fwd = holder.MovedTarget(pf.buf)
			tx.unlockState(pf.st)
			continue
		}
		pf.nb = nb
		pf.blocks = make([]fabric.DPtr, 1, nb)
		pf.blocks[0] = pf.dp
		if nb > 1 {
			full := make([]byte, nb*bs)
			copy(full, pf.buf)
			pf.buf = full
		}
		cur = append(cur, pf)
	}

	// Continuation rounds: block `round` of every holder still needing one,
	// guarded by the holder's primary.
	for round := 1; len(cur) > 0; round++ {
		dps, guards, bufs, roundPfs = dps[:0], guards[:0], bufs[:0], roundPfs[:0]
		next := cur[:0]
		for _, pf := range cur {
			if pf.nb <= round {
				continue
			}
			dp := holder.TableEntry(pf.buf, round-1)
			if dp.IsNull() {
				fail(pf, fmt.Errorf("%w: holder %v has a null continuation block", ErrNotFound, pf.dp))
				continue
			}
			pf.blocks = append(pf.blocks, dp)
			dps = append(dps, dp)
			guards = append(guards, pf.dp)
			bufs = append(bufs, pf.buf[round*bs:(round+1)*bs])
			roundPfs = append(roundPfs, pf)
			next = append(next, pf)
		}
		if len(dps) == 0 {
			break
		}
		readRound(dps, guards, bufs, roundPfs)
		cur = next
	}

	// Optimistic post-validation: one stamp train over the holders that
	// fetched anything (or look deleted); an unmoved guard proves every one
	// of their wire reads was stable.
	if opt {
		for _, pf := range fetches {
			if pf.err == nil && pf.suspect == nil && len(pf.fetchedDps) > 0 {
				toCheck = append(toCheck, pf)
			}
		}
		if len(toCheck) == 0 {
			return unstable
		}
		prims := make([]fabric.DPtr, len(toCheck))
		for i, pf := range toCheck {
			prims[i] = pf.dp
		}
		post := store.GuardStamps(tx.rank, prims)
		for _, pf := range toCheck {
			w := post[pf.dp]
			if locks.Version(w) != pf.ver || locks.WriteHeld(w) {
				pf.suspect = nil
				unstable = append(unstable, pf)
				continue
			}
			if pf.suspect != nil {
				pf.err = pf.suspect
				pf.suspect = nil
				continue
			}
			store.InstallCached(tx.rank, pf.dp, pf.ver, pf.fetchedDps, pf.fetchedBufs)
		}
	}
	return unstable
}
