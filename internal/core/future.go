package core

import (
	"errors"
	"fmt"

	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// VertexFuture is the non-blocking counterpart of AssociateVertex
// (GDI_AssociateVertex's non-blocking tier). Creating a future queues the
// fetch; the remote accesses of every queued future are issued together on
// the next flush — triggered by Wait on any future of the transaction or by
// AssociateVertices — grouped by owner rank into vectored RMA reads. Under
// injected remote latency a flush therefore pays one round-trip per owner
// rank touched instead of one per vertex (§5.6's pipelined one-sided
// accesses).
//
// Futures follow the handle rules of §3.5: they are only meaningful on the
// process that created them and must not be shared between ranks. A future
// left unwaited when its transaction closes is cancelled; Wait then reports
// ErrTxClosed.
type VertexFuture struct {
	tx   *Tx
	dp   rma.DPtr
	done bool
	h    *VertexHandle
	err  error
}

// Test reports whether the future has completed — either satisfied from the
// per-transaction cache at creation or resolved by a flush — without
// triggering any communication (MPI_Test semantics).
func (f *VertexFuture) Test() bool { return f.done }

// Wait blocks until the future completes and returns its handle or error
// (MPI_Wait semantics). Waiting on one future flushes every fetch the
// transaction has queued, so a loop that creates N futures and then waits on
// them pays the batched cost once, on the first Wait.
func (f *VertexFuture) Wait() (*VertexHandle, error) {
	if !f.done {
		f.tx.flushPending()
	}
	if !f.done {
		// The future was detached from its transaction's queue (it can only
		// happen through misuse across goroutines); fail it rather than spin.
		f.fail(fmt.Errorf("%w: future lost by its transaction", ErrTxCritical))
	}
	return f.h, f.err
}

func (f *VertexFuture) fail(err error) {
	f.done = true
	f.err = err
}

// resolveState completes the future from a cached or freshly installed
// vertex state.
func (f *VertexFuture) resolveState(st *vertexState) {
	f.done = true
	if st.deleted {
		f.err = fmt.Errorf("%w: vertex %v deleted in this transaction", ErrNotFound, f.dp)
		return
	}
	f.h = &VertexHandle{tx: f.tx, st: st}
}

// AssociateVertexAsync begins a non-blocking vertex association. The
// returned future completes immediately when dp is already cached in this
// transaction (or is invalid); otherwise the fetch is queued until the next
// flush. Queueing performs no communication.
func (tx *Tx) AssociateVertexAsync(dp rma.DPtr) *VertexFuture {
	f := &VertexFuture{tx: tx, dp: dp}
	if err := tx.check(); err != nil {
		f.fail(err)
		return f
	}
	if dp.IsNull() {
		f.fail(fmt.Errorf("%w: NULL vertex ID", ErrBadArgument))
		return f
	}
	if st, ok := tx.verts[dp]; ok {
		f.resolveState(st)
		return f
	}
	tx.pending = append(tx.pending, f)
	return f
}

// AssociateVertices materializes handles for a whole set of vertices at once
// — the batch entry point frontier expansions use. Fetches are grouped by
// owner rank and issued as vectored RMA reads, so a batch spanning k ranks
// pays k remote round-trips of injected latency rather than len(dps).
//
// The returned slice is aligned with dps: handles[i] belongs to dps[i], and
// duplicates in dps resolve to the same per-transaction state. A vertex that
// does not exist (or was deleted by this transaction) yields a nil entry
// rather than failing the batch; transaction-level failures — closed
// transaction, transaction-critical lock contention, a NULL vertex ID —
// return a non-nil error.
func (tx *Tx) AssociateVertices(dps []rma.DPtr) ([]*VertexHandle, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	futs := make([]*VertexFuture, len(dps))
	for i, dp := range dps {
		futs[i] = tx.AssociateVertexAsync(dp)
	}
	tx.flushPending()
	out := make([]*VertexHandle, len(dps))
	for i, f := range futs {
		h, err := f.Wait()
		switch {
		case err == nil:
			out[i] = h
		case errors.Is(err, ErrNotFound):
			// Missing vertices are reported positionally as nil handles.
		default:
			return nil, err
		}
	}
	return out, nil
}

// pendingFetch tracks one unique vertex being materialized by a flush: its
// lock state, the growing logical stream, and every future awaiting it.
type pendingFetch struct {
	dp     rma.DPtr
	st     *vertexState
	futs   []*VertexFuture
	buf    []byte
	blocks []rma.DPtr
	nb     int
	err    error
}

// flushPending completes every queued association (the Flush of the op
// queue). The protocol mirrors the scalar path exactly — lock, fetch,
// decode, install — but performs the fetch rounds with vectored reads:
//
//  1. Per-vertex read locks are acquired as one vectored CAS train per
//     owner rank (elided entirely for collective read-only transactions,
//     §3.3). Lock contention is transaction-critical and poisons the whole
//     flush.
//  2. Round 0 reads every primary block, one vectored GET train per owner
//     rank. The holder streaming invariant (table entry i precedes block
//     i+1) then lets round i fetch block i of every multi-block holder,
//     again batched by rank, so a flush over b-block holders needs b
//     batched rounds, not Σb scalar reads.
//  3. Each holder is decoded and installed into the per-transaction cache;
//     its futures resolve to handles over the shared state.
func (tx *Tx) flushPending() {
	pending := tx.pending
	tx.pending = nil
	if len(pending) == 0 {
		return
	}
	if err := tx.check(); err != nil {
		for _, f := range pending {
			f.fail(err)
		}
		return
	}

	// Deduplicate by DPtr; resolve cache hits without communication.
	fetches := make([]*pendingFetch, 0, len(pending))
	var uniq map[rma.DPtr]*pendingFetch
	if len(pending) > 1 {
		uniq = make(map[rma.DPtr]*pendingFetch, len(pending))
	}
	for _, f := range pending {
		if f.done {
			continue
		}
		if st, ok := tx.verts[f.dp]; ok {
			f.resolveState(st)
			continue
		}
		var pf *pendingFetch
		if uniq != nil {
			pf = uniq[f.dp]
		}
		if pf == nil {
			pf = &pendingFetch{dp: f.dp}
			fetches = append(fetches, pf)
			if uniq != nil {
				uniq[f.dp] = pf
			}
		}
		pf.futs = append(pf.futs, f)
	}
	if len(fetches) == 0 {
		return
	}

	// Phase 1: locks, one vectored CAS train per owner rank (elided
	// entirely for collective read-only transactions, §3.3). A failed
	// acquisition is transaction-critical and poisons the whole flush; the
	// train releases its partial acquisitions itself before reporting it.
	if !tx.skipLocks() {
		words := make([]locks.Word, len(fetches))
		for i, pf := range fetches {
			words[i] = tx.lockWord(pf.dp)
		}
		if err := locks.AcquireReadTrain(tx.rank, words, tx.eng.cfg.LockTries); err != nil {
			crit := tx.fail(fmt.Errorf("read-locking a %d-vertex association batch: %w", len(fetches), err))
			for _, pf := range fetches {
				for _, f := range pf.futs {
					f.fail(crit)
				}
			}
			return
		}
	}
	for _, pf := range fetches {
		st := &vertexState{primary: pf.dp}
		if !tx.skipLocks() {
			st.lock = lockRead
		}
		pf.st = st
	}

	// Phase 2, round 0: every primary block in one batched read per rank.
	bs := tx.eng.cfg.BlockSize
	dps := make([]rma.DPtr, len(fetches))
	bufs := make([][]byte, len(fetches))
	for i, pf := range fetches {
		pf.buf = make([]byte, bs)
		dps[i] = pf.dp
		bufs[i] = pf.buf
	}
	tx.eng.store.ReadBlocksBatch(tx.rank, dps, bufs)
	live := make([]*pendingFetch, 0, len(fetches))
	for _, pf := range fetches {
		nb := holder.NumBlocks(pf.buf)
		if nb < 1 {
			tx.unlockState(pf.st)
			pf.err = fmt.Errorf("%w: holder %v was deleted", ErrNotFound, pf.dp)
			continue
		}
		pf.nb = nb
		pf.blocks = make([]rma.DPtr, 1, nb)
		pf.blocks[0] = pf.dp
		if nb > 1 {
			full := make([]byte, nb*bs)
			copy(full, pf.buf)
			pf.buf = full
		}
		live = append(live, pf)
	}

	// Continuation rounds: block i of every holder still needing one.
	for round := 1; ; round++ {
		dps, bufs = dps[:0], bufs[:0]
		next := live[:0]
		for _, pf := range live {
			if pf.nb <= round {
				continue
			}
			dp := holder.TableEntry(pf.buf, round-1)
			if dp.IsNull() {
				tx.unlockState(pf.st)
				pf.err = fmt.Errorf("%w: holder %v has a null continuation block", ErrNotFound, pf.dp)
				continue
			}
			pf.blocks = append(pf.blocks, dp)
			dps = append(dps, dp)
			bufs = append(bufs, pf.buf[round*bs:(round+1)*bs])
			next = append(next, pf)
		}
		if len(dps) == 0 {
			break
		}
		tx.eng.store.ReadBlocksBatch(tx.rank, dps, bufs)
		live = next
	}

	// Phase 3: decode, install, resolve.
	for _, pf := range fetches {
		if pf.err == nil {
			v, err := holder.DecodeVertex(pf.buf)
			if err != nil {
				tx.unlockState(pf.st)
				pf.err = fmt.Errorf("%w: %v", ErrNotFound, err)
			} else {
				pf.st.v = v
				pf.st.blocks = pf.blocks
				pf.st.origLabel = append([]lpg.LabelID(nil), v.Labels...)
				tx.verts[pf.dp] = pf.st
			}
		}
		for _, f := range pf.futs {
			if pf.err != nil {
				f.fail(pf.err)
			} else {
				f.resolveState(pf.st)
			}
		}
	}
}
