package core

import (
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/locks"
)

// ReadArena is the reusable scratch of the allocation-free point-read path:
// the holder stream buffer, the zero-copy view over it, and the bookkeeping
// slices for blocks fetched off the wire. A worker keeps one arena and passes
// it to every OptimisticPointRead; after warm-up the steady-state hit path
// (local holder, or every remote block served by the validated cache)
// performs zero heap allocations per read.
//
// Arenas follow the handle rules: one arena per goroutine, never shared.
type ReadArena struct {
	buf  []byte
	view holder.View

	fetchedDps  []fabric.DPtr
	fetchedBufs [][]byte
}

// grow returns ar.buf resized to n bytes, preserving current contents (the
// chain walk extends the buffer after the primary block is already in it).
// Steady state reuses capacity and allocates nothing.
func (ar *ReadArena) grow(n int) []byte {
	if cap(ar.buf) < n {
		nb := make([]byte, n)
		copy(nb, ar.buf)
		ar.buf = nb
	}
	ar.buf = ar.buf[:n]
	return ar.buf
}

// OptimisticPointRead performs a one-shot seqlock read of one vertex holder
// and hands the validated stream to fn as a zero-copy view — the leanest
// form of the optimistic tier, for point lookups that need no transaction
// (monitoring probes, benchmark harnesses, read-mostly caches above GDI).
//
// Protocol: stamp the primary's guard word (one atomic load), read the
// holder's blocks — local blocks from the pool, remote blocks from the
// version-validated cache when current, off the wire otherwise — and accept
// iff a post-stamp shows the same version with the write bit clear on both
// sides (the seqlock double-check). Accepted wire blocks are installed into
// the cache at the stamped version, so a re-read of an unchanged holder is
// served entirely locally. Returns false on any instability — a concurrent
// writer, a migration stub, a deleted holder — and the caller falls back to
// a transactional read; fn is only called on acceptance, and the view it
// receives is valid only during the call (it aliases the arena).
//
// The hit path — stamps, cached or local block reads, varint iteration —
// allocates nothing; only cache misses (fetch + install) and first-use arena
// growth touch the heap.
func (e *Engine) OptimisticPointRead(origin fabric.Rank, primary fabric.DPtr, ar *ReadArena, fn func(*holder.View)) bool {
	bs := e.cfg.BlockSize
	store := e.store
	stamp := store.LockStamp(origin, primary)
	if locks.WriteHeld(stamp) {
		return false
	}
	ar.fetchedDps = ar.fetchedDps[:0]
	ar.fetchedBufs = ar.fetchedBufs[:0]

	// readBlock serves dp into dst: local blocks straight from the pool,
	// remote blocks from the validated cache, the rest — recorded for
	// post-validation install — off the wire.
	readBlock := func(dp fabric.DPtr, dst []byte) {
		if dp.Rank() == origin {
			store.ReadBlock(origin, dp, dst)
			return
		}
		if store.CachedBlock(origin, dp, primary, stamp, dst) {
			return
		}
		store.ReadBlock(origin, dp, dst)
		ar.fetchedDps = append(ar.fetchedDps, dp)
		ar.fetchedBufs = append(ar.fetchedBufs, dst)
	}

	buf := ar.grow(bs)
	readBlock(primary, buf)
	nb := holder.NumBlocks(buf)
	if nb < 1 || nb > e.cfg.BlocksPerRank || holder.IsMoved(buf) {
		// Deleted, torn beyond plausibility, or migrated away: the
		// transactional path knows how to chase stubs; we do not.
		return false
	}
	if nb > 1 {
		// The inline fast path is the nb == 1 case skipping this walk
		// entirely: v2 single-block holders always take it. Multi-block
		// chains follow the table under the streaming invariant — entry i-1
		// is inside the first i blocks, already read.
		buf = ar.grow(nb * bs)
		for i := 1; i < nb; i++ {
			dp := holder.TableEntry(buf, i-1)
			if dp.IsNull() {
				return false
			}
			readBlock(dp, buf[i*bs:(i+1)*bs])
		}
	}

	post := store.LockStamp(origin, primary)
	if locks.Version(post) != locks.Version(stamp) || locks.WriteHeld(post) {
		return false
	}
	if err := ar.view.Reset(buf); err != nil {
		return false
	}
	if len(ar.fetchedDps) > 0 {
		store.InstallCached(origin, primary, locks.Version(stamp), ar.fetchedDps, ar.fetchedBufs)
	}
	if e.cfg.RebalanceHeatTracking {
		e.recordHeat(origin, ar.view.AppID(), primary.Rank())
	}
	fn(&ar.view)
	return true
}
