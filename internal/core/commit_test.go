package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
	"github.com/gdi-go/gdi/internal/rma"
)

// commitEngines returns the batched engine and its scalar-commit ablation
// twin, so commit-protocol invariants are checked on both write paths.
func commitEngines(t *testing.T, ranks int, cfg Config) map[string]*Engine {
	t.Helper()
	scalar := cfg
	scalar.ScalarCommit = true
	return map[string]*Engine{
		"batched": NewEngine(rma.New(ranks), cfg),
		"scalar":  NewEngine(rma.New(ranks), scalar),
	}
}

// TestPrepareFailureReleasesAcquiredBlocks drives the prepare phase into a
// mid-walk AcquireBlock failure: a commit that needs several continuation
// blocks with too few left in the pool must release every block it did
// acquire, abort without touching the stored holder, and leave the vertex
// writable for a later transaction.
func TestPrepareFailureReleasesAcquiredBlocks(t *testing.T) {
	for name, e := range commitEngines(t, 1, Config{BlockSize: 64, BlocksPerRank: 64}) {
		t.Run(name, func(t *testing.T) {
			blob, err := e.DefinePType("blob", metadata.PTypeSpec{Datatype: lpg.TypeBytes})
			if err != nil {
				t.Fatal(err)
			}
			setup := e.StartLocal(0, ReadWrite)
			dp, err := setup.CreateVertex(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}

			// Drain the pool down to two free blocks: the grown holder below
			// needs several, so prepare acquires some and then fails.
			var filler []rma.DPtr
			for e.FreeBlocks(0) > 2 {
				f, err := e.store.AcquireBlock(0, 0)
				if err != nil {
					t.Fatal(err)
				}
				filler = append(filler, f)
			}
			free := e.FreeBlocks(0)

			tx := e.StartLocal(0, ReadWrite)
			h, err := tx.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.AddProperty(blob, make([]byte, 64*6)); err != nil {
				t.Fatal(err)
			}
			err = tx.Commit()
			if !errors.Is(err, ErrTxCritical) || !errors.Is(err, ErrNoMemory) {
				t.Fatalf("commit into exhausted pool: %v, want transaction-critical ErrNoMemory", err)
			}
			if got := e.FreeBlocks(0); got != free {
				t.Fatalf("prepare leaked blocks: free %d -> %d", free, got)
			}

			// No partial write-back: the holder decodes with its old state.
			check := e.StartLocal(0, ReadOnly)
			hc, err := check.AssociateVertex(dp)
			if err != nil {
				t.Fatalf("holder unreadable after failed prepare: %v", err)
			}
			if got := hc.Properties(blob); len(got) != 0 {
				t.Fatalf("partial write-back visible: %d blob entries", len(got))
			}
			check.Commit()

			// The abort released the exclusive lock: with the pool refilled a
			// fresh transaction commits the same growth.
			for _, f := range filler {
				e.store.ReleaseBlock(0, f)
			}
			retry := e.StartLocal(0, ReadWrite)
			hr, err := retry.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if err := hr.AddProperty(blob, make([]byte, 64*6)); err != nil {
				t.Fatal(err)
			}
			if err := retry.Commit(); err != nil {
				t.Fatalf("retry after refill: %v", err)
			}
		})
	}
}

// TestMetadataStaleAbortsWithoutPartialWriteBack covers the §3.8 abort: a
// write transaction racing a metadata change must abort at commit with no
// write-back at all — stored holders keep their old state, new vertices
// return their blocks, and every lock is released.
func TestMetadataStaleAbortsWithoutPartialWriteBack(t *testing.T) {
	for name, e := range commitEngines(t, 1, Config{BlockSize: 256, BlocksPerRank: 1024}) {
		t.Run(name, func(t *testing.T) {
			age, err := e.DefinePType("age", metadata.PTypeSpec{Datatype: lpg.TypeUint64, SizeType: lpg.SizeFixed, Limit: 8})
			if err != nil {
				t.Fatal(err)
			}
			setup := e.StartLocal(0, ReadWrite)
			dp, err := setup.CreateVertex(1)
			if err != nil {
				t.Fatal(err)
			}
			hs, err := setup.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if err := hs.SetProperty(age, lpg.EncodeUint64(30)); err != nil {
				t.Fatal(err)
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}
			free := e.FreeBlocks(0)

			tx := e.StartLocal(0, ReadWrite)
			h, err := tx.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.SetProperty(age, lpg.EncodeUint64(99)); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.CreateVertex(2); err != nil {
				t.Fatal(err)
			}
			// Metadata changes under the open transaction.
			if _, err := e.DefineLabel("Late"); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); !errors.Is(err, ErrTxCritical) {
				t.Fatalf("stale write commit: %v, want ErrTxCritical", err)
			}

			// The new vertex's block came back and nothing was published.
			if got := e.FreeBlocks(0); got != free {
				t.Fatalf("stale abort leaked blocks: free %d -> %d", free, got)
			}
			probe := e.StartLocal(0, ReadOnly)
			if _, err := probe.TranslateVertexID(2); !errors.Is(err, ErrNotFound) {
				t.Fatalf("aborted vertex published: %v", err)
			}
			hp, err := probe.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if v, ok := hp.Property(age); !ok || lpg.DecodeUint64(v) != 30 {
				t.Fatalf("age after stale abort = %v, %v; want the old 30", v, ok)
			}
			probe.Commit()

			// All locks were released: a fresh writer succeeds immediately.
			retry := e.StartLocal(0, ReadWrite)
			hr, err := retry.AssociateVertex(dp)
			if err != nil {
				t.Fatal(err)
			}
			if err := hr.SetProperty(age, lpg.EncodeUint64(31)); err != nil {
				t.Fatal(err)
			}
			if err := retry.Commit(); err != nil {
				t.Fatalf("writer after stale abort: %v", err)
			}
		})
	}
}

// TestGroupCommitCoalescesConcurrentWriteBacks submits many single-block
// write sets to one rank's combiner under heavy injected latency: every
// block must land, and the leader/follower protocol must merge queued
// trains instead of flushing one per submitter.
func TestGroupCommitCoalescesConcurrentWriteBacks(t *testing.T) {
	const workers = 16
	f := rma.New(2, rma.Options{Latency: rma.Latency{RemoteNs: 500_000}})
	e := NewEngine(f, Config{BlockSize: 64, BlocksPerRank: 256})

	dps := make([]rma.DPtr, workers)
	for i := range dps {
		dp, err := e.store.AcquireBlock(0, 1) // remote blocks: trains pay latency
		if err != nil {
			t.Fatal(err)
		}
		dps[i] = dp
	}
	f.ResetCounters()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := make([]byte, 64)
			for j := range payload {
				payload[j] = byte(i)
			}
			e.groupWriteBack(0, []rma.DPtr{dps[i]}, [][]byte{payload})
		}(i)
	}
	wg.Wait()

	for i, dp := range dps {
		got := make([]byte, 64)
		e.store.ReadBlock(1, dp, got)
		for _, b := range got {
			if b != byte(i) {
				t.Fatalf("block %d: payload %v not written back", i, got)
			}
		}
	}
	snap := f.CounterSnapshot(0)
	if snap.RemotePuts != workers {
		t.Errorf("RemotePuts = %d, want %d", snap.RemotePuts, workers)
	}
	// A merged flush shows up as a PutBatch train (singleton flushes count
	// as plain puts): with 500µs flushes and all submitters racing, the
	// followers must have piled onto a leader's train at least once.
	if snap.PutBatches == 0 {
		t.Errorf("no coalescing: %d submitters all flushed singleton trains", workers)
	}
}

// TestConcurrentCommittersOneRank runs many goroutines committing disjoint
// vertices from the same rank — the group-commit hot path — and verifies
// every update landed (primarily a race-detector target).
func TestConcurrentCommittersOneRank(t *testing.T) {
	const workers, txPerWorker = 8, 10
	e := newEngine(t, 2)
	age, err := e.DefinePType("age", metadata.PTypeSpec{Datatype: lpg.TypeUint64, SizeType: lpg.SizeFixed, Limit: 8})
	if err != nil {
		t.Fatal(err)
	}
	setup := e.StartLocal(0, ReadWrite)
	dps := make([]rma.DPtr, workers)
	for i := range dps {
		if dps[i], err = setup.CreateVertex(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txPerWorker; i++ {
				tx := e.StartLocal(0, ReadWrite)
				h, err := tx.AssociateVertex(dps[w])
				if err == nil {
					if err = h.SetProperty(age, lpg.EncodeUint64(uint64(i))); err == nil {
						err = tx.Commit()
					}
				}
				if err != nil {
					tx.Abort()
					errc <- fmt.Errorf("worker %d tx %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	check := e.StartLocal(1, ReadOnly)
	for w, dp := range dps {
		h, err := check.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := h.Property(age); !ok || lpg.DecodeUint64(v) != txPerWorker-1 {
			t.Errorf("vertex %d: age = %v, %v; want %d", w, v, ok, txPerWorker-1)
		}
	}
	check.Commit()
}
