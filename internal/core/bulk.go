package core

import (
	"fmt"
	"sort"

	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/snapshot"
)

// VertexSpec describes one vertex for bulk loading.
type VertexSpec struct {
	AppID  uint64
	Labels []lpg.LabelID
	Props  []lpg.Property
}

// EdgeSpec describes one edge for bulk loading, in application-ID space.
type EdgeSpec struct {
	OriginApp, TargetApp uint64
	Dir                  holder.Direction
	Label                lpg.LabelID
}

// BulkLoadVertices is the collective vertex-ingestion path
// (GDI_BulkLoadVertices, the BULK workload class of §2). Every rank
// contributes a slice of specs; vertices are routed to their owner rank
// with one all-to-all, then each rank materializes its own shard locally —
// no locks are needed because bulk loading is collective and delimited by
// barriers.
//
// Work: O(|specs| · holder size); depth: O(log P) for the exchange plus the
// local build.
func (e *Engine) BulkLoadVertices(rank fabric.Rank, specs []VertexSpec) error {
	n := e.fab.Size()
	out := make([][]VertexSpec, n)
	for _, sp := range specs {
		o := e.OwnerOf(sp.AppID)
		out[o] = append(out[o], sp)
	}
	in := collective.Alltoall(e.comm, rank, out)
	bs := e.cfg.BlockSize
	// The local materialization runs under the HTAP commit gate like any
	// apply phase; the gate is scoped between the exchange and the barrier
	// so a holder never waits on another rank.
	if e.snap != nil {
		e.htapGate.RLock()
	}
	var deltas []snapshot.Record
	for _, batch := range in {
		for _, sp := range batch {
			v := &holder.Vertex{AppID: sp.AppID, Labels: sp.Labels, Props: sp.Props}
			stream := holder.EncodeVertexCodec(v, bs, e.cfg.HolderCodec)
			need := len(stream) / bs
			blocks := make([]fabric.DPtr, need)
			for i := range blocks {
				dp, err := e.store.AcquireBlock(rank, rank)
				if err != nil {
					if e.snap != nil {
						e.htapGate.RUnlock()
					}
					return fmt.Errorf("%w: bulk loading vertex %d", ErrNoMemory, sp.AppID)
				}
				blocks[i] = dp
			}
			for i := 1; i < need; i++ {
				holder.SetTableEntry(stream, i-1, blocks[i])
			}
			for i, dp := range blocks {
				e.store.WriteBlock(rank, dp, stream[i*bs:(i+1)*bs])
			}
			e.index.Insert(rank, sp.AppID, uint64(blocks[0]))
			e.local[rank].addVertex(blocks[0], sp.AppID, sp.Labels)
			if e.snap != nil {
				deltas = append(deltas, snapshot.Record{Kind: snapshot.KindCreate, DP: blocks[0], App: sp.AppID})
			}
		}
	}
	if e.snap != nil {
		e.snap.AppendDeltas(rank, deltas)
		e.htapGate.RUnlock()
	}
	e.comm.Barrier(rank)
	return nil
}

// recDelivery routes one edge record to the rank owning its vertex.
type recDelivery struct {
	V   fabric.DPtr
	Rec holder.EdgeRec
}

// BulkLoadEdges is the collective edge-ingestion path (GDI_BulkLoadEdges).
// Records for both endpoints are built in appID space, resolved through the
// internal index, routed to the owning ranks with one all-to-all, and then
// merged: each rank rewrites each of its touched vertices exactly once no
// matter how many edges landed on it.
//
// Work: O(|specs|) DHT lookups + O(Σ touched holder blocks); depth:
// O(log P) exchange + local merge.
func (e *Engine) BulkLoadEdges(rank fabric.Rank, specs []EdgeSpec) error {
	n := e.fab.Size()
	out := make([][]recDelivery, n)
	for _, sp := range specs {
		oRaw, ok := e.index.Lookup(rank, sp.OriginApp)
		if !ok {
			return fmt.Errorf("%w: bulk edge origin %d", ErrNotFound, sp.OriginApp)
		}
		tRaw, ok := e.index.Lookup(rank, sp.TargetApp)
		if !ok {
			return fmt.Errorf("%w: bulk edge target %d", ErrNotFound, sp.TargetApp)
		}
		o, t := fabric.DPtr(oRaw), fabric.DPtr(tRaw)
		back := holder.DirIn
		if sp.Dir == holder.DirUndirected {
			back = holder.DirUndirected
		}
		out[o.Rank()] = append(out[o.Rank()], recDelivery{V: o, Rec: holder.EdgeRec{Neighbor: t, Dir: sp.Dir, Label: sp.Label}})
		if o == t && sp.Dir == holder.DirUndirected {
			continue // undirected self-loop: a single record suffices
		}
		out[t.Rank()] = append(out[t.Rank()], recDelivery{V: t, Rec: holder.EdgeRec{Neighbor: o, Dir: back, Label: sp.Label}})
	}
	in := collective.Alltoall(e.comm, rank, out)

	// Group deliveries by vertex so each holder is rewritten once.
	byVertex := make(map[fabric.DPtr][]holder.EdgeRec)
	for _, batch := range in {
		for _, d := range batch {
			byVertex[d.V] = append(byVertex[d.V], d.Rec)
		}
	}
	order := make([]fabric.DPtr, 0, len(byVertex))
	for dp := range byVertex {
		order = append(order, dp)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	bs := e.cfg.BlockSize
	if e.snap != nil {
		e.htapGate.RLock()
	}
	for _, dp := range order {
		if err := e.appendRecords(rank, dp, byVertex[dp], bs); err != nil {
			if e.snap != nil {
				e.htapGate.RUnlock()
			}
			return err
		}
	}
	if e.snap != nil {
		e.htapGate.RUnlock()
	}
	e.comm.Barrier(rank)
	return nil
}

// appendRecords merges records into one locally-owned vertex holder.
func (e *Engine) appendRecords(rank fabric.Rank, primary fabric.DPtr, recs []holder.EdgeRec, bs int) error {
	buf := make([]byte, bs)
	e.store.ReadBlock(rank, primary, buf)
	nb := holder.NumBlocks(buf)
	if nb < 1 {
		return fmt.Errorf("%w: bulk edge endpoint %v", ErrNotFound, primary)
	}
	blocks := []fabric.DPtr{primary}
	if nb > 1 {
		full := make([]byte, nb*bs)
		copy(full, buf)
		buf = full
		for i := 1; i < nb; i++ {
			dp := holder.TableEntry(buf, i-1)
			e.store.ReadBlock(rank, dp, buf[i*bs:(i+1)*bs])
			blocks = append(blocks, dp)
		}
	}
	v, err := holder.DecodeVertex(buf)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNotFound, err)
	}
	v.Edges = append(v.Edges, recs...)
	stream := holder.EncodeVertexCodec(v, bs, e.cfg.HolderCodec)
	need := len(stream) / bs
	for len(blocks) < need {
		dp, err := e.store.AcquireBlock(rank, rank)
		if err != nil {
			return ErrNoMemory
		}
		blocks = append(blocks, dp)
	}
	for _, dp := range blocks[need:] {
		e.store.ReleaseBlock(rank, dp)
	}
	blocks = blocks[:need]
	for i := 1; i < need; i++ {
		holder.SetTableEntry(stream, i-1, blocks[i])
	}
	for i, dp := range blocks {
		e.store.WriteBlock(rank, dp, stream[i*bs:(i+1)*bs])
	}
	// A bulk edge merge rewrites adjacency without changing the vertex set,
	// which the incremental fold's drift check cannot see — log it.
	if e.snap != nil {
		e.snap.AppendDeltas(rank, []snapshot.Record{{Kind: snapshot.KindUpdate, DP: primary, App: v.AppID, Edges: v.Edges}})
	}
	return nil
}
