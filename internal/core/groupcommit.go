package core

import (
	"sync"

	"github.com/gdi-go/gdi/internal/fabric"
)

// groupCommitter coalesces the apply-phase write-back trains of concurrent
// transactions committing from one rank (group commit). The first
// transaction to reach write-back becomes the train leader and flushes every
// write set queued on the rank — its own plus any that arrive while a flush
// is on the wire — as one vectored PUT train per owner rank; later arrivals
// enqueue and wait for a leader to carry their blocks. Distinct committers
// hold exclusive locks on distinct holders, so merged write sets never
// overlap, and each transaction still returns from Commit only after its own
// blocks are durably written.
type groupCommitter struct {
	mu       sync.Mutex
	pending  []*commitTrain
	flushing bool
}

// commitTrain is one transaction's dirty-block write set awaiting a leader.
type commitTrain struct {
	dps  []fabric.DPtr
	data [][]byte
	done chan struct{}
}

// groupWriteBack submits one transaction's dirty blocks to rank's combiner
// and returns once they are written — either by this goroutine acting as
// leader or by a concurrent leader whose merged train carried them.
func (e *Engine) groupWriteBack(rank fabric.Rank, dps []fabric.DPtr, data [][]byte) {
	if len(dps) == 0 {
		return
	}
	g := &e.commits[rank]
	t := &commitTrain{dps: dps, data: data, done: make(chan struct{})}
	g.mu.Lock()
	g.pending = append(g.pending, t)
	if g.flushing {
		// A leader is already on the wire; it (or its successor iteration)
		// picks this train up before giving up leadership.
		g.mu.Unlock()
		<-t.done
		return
	}
	g.flushing = true
	for len(g.pending) > 0 {
		batch := g.pending
		g.pending = nil
		g.mu.Unlock()
		if len(batch) == 1 {
			e.writeBackByRank(rank, batch[0].dps, batch[0].data)
		} else {
			n := 0
			for _, b := range batch {
				n += len(b.dps)
			}
			mdps := make([]fabric.DPtr, 0, n)
			mdata := make([][]byte, 0, n)
			for _, b := range batch {
				mdps = append(mdps, b.dps...)
				mdata = append(mdata, b.data...)
			}
			e.writeBackByRank(rank, mdps, mdata)
		}
		for _, b := range batch {
			close(b.done)
		}
		g.mu.Lock()
	}
	g.flushing = false
	g.mu.Unlock()
}

// writeBackByRank lands one merged write set, one isolated PUT train per
// destination rank. Isolation is the point: a train whose destination dies
// mid-write-back panics with a peer-death error, and an unprotected leader
// used to carry that panic out of groupWriteBack with its followers' done
// channels never closed — every concurrent committer of the rank then hung
// forever. Absorbing the dead rank's segment is sound: primaries on a dead
// rank are unreachable regardless, and a replicated vertex's surviving
// follower copies receive the same payload through their own ranks' trains —
// which this partitioning guarantees are still issued.
func (e *Engine) writeBackByRank(rank fabric.Rank, dps []fabric.DPtr, data [][]byte) {
	sameRank := true
	for _, dp := range dps[1:] {
		if dp.Rank() != dps[0].Rank() {
			sameRank = false
			break
		}
	}
	if sameRank {
		runIsolated(func() { e.store.WriteBlocksBatch(rank, dps, data) })
		return
	}
	byRank := make(map[fabric.Rank][]int)
	for i, dp := range dps {
		byRank[dp.Rank()] = append(byRank[dp.Rank()], i)
	}
	for _, is := range byRank {
		sub := make([]fabric.DPtr, len(is))
		subData := make([][]byte, len(is))
		for j, i := range is {
			sub[j] = dps[i]
			subData[j] = data[i]
		}
		runIsolated(func() { e.store.WriteBlocksBatch(rank, sub, subData) })
	}
}
