package core

import (
	"fmt"
	"testing"

	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/rma"
)

// Allocation-regression guard for the storage-engine v2 tentpole: the
// steady-state point-read path — seqlock stamps, cached or local block reads,
// in-place varint iteration over the view — must allocate nothing per
// operation. A regression here silently re-introduces GC pressure on the
// hottest read path, so CI runs this as a hard gate (the non-race step of the
// race job; AllocsPerRun is meaningless under the detector, see raceEnabled).

// seedFanVertex commits one center vertex on rank 1 with fan out-edges and
// returns its DPtr.
func seedFanVertex(t *testing.T, e *Engine, fan int) rma.DPtr {
	t.Helper()
	tx := e.StartLocal(1, ReadWrite)
	center, err := tx.CreateVertex(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fan; i++ {
		nb, err := tx.CreateVertex(2000 + uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tx.CreateEdge(center, nb, holder.DirOut, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return center
}

func TestPointReadPathAllocatesNothing(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under the race detector")
	}
	for _, codec := range []holder.Codec{holder.CodecV1, holder.CodecV2} {
		t.Run(codec.String(), func(t *testing.T) {
			e := NewEngine(rma.New(2), Config{
				BlockSize:       64,
				BlocksPerRank:   1 << 12,
				LockTries:       256,
				CacheBlocks:     true,
				CacheCapacity:   512,
				OptimisticReads: true,
				HolderCodec:     codec,
			})
			center := seedFanVertex(t, e, 8)

			// Placement hashes the application ID, so derive the two origins
			// from wherever the vertex actually landed.
			for name, origin := range map[string]rma.Rank{
				"local":      center.Rank(),                    // every block from the pool
				"cached-hit": rma.Rank(1 - int(center.Rank())), // every block from the warm cache
			} {
				t.Run(name, func(t *testing.T) {
					ar := &ReadArena{}
					var degree int
					read := func(w *holder.View) {
						degree = 0
						w.ForEachNeighbor(func(rma.DPtr, holder.Direction) bool {
							degree++
							return true
						})
					}
					// Warm-up: fetches remote blocks, installs them into the
					// cache, and grows the arena to its steady-state size.
					if !e.OptimisticPointRead(origin, center, ar, read) {
						t.Fatal("warm-up point read did not validate")
					}
					if degree != 8 {
						t.Fatalf("degree = %d, want 8", degree)
					}
					allocs := testing.AllocsPerRun(200, func() {
						if !e.OptimisticPointRead(origin, center, ar, read) {
							panic("steady-state point read did not validate")
						}
						if degree != 8 {
							panic(fmt.Sprintf("degree = %d, want 8", degree))
						}
					})
					if allocs != 0 {
						t.Fatalf("steady-state point read allocates %.1f objects/op, want 0", allocs)
					}
				})
			}
		})
	}
}
