package holder

import (
	"bytes"
	"testing"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// sameVertexContent asserts two decoded vertices carry identical logical
// content (everything the codec encodes except the wire format itself).
func sameVertexContent(t *testing.T, got, want *Vertex) {
	t.Helper()
	if got.AppID != want.AppID {
		t.Fatalf("appID %d, want %d", got.AppID, want.AppID)
	}
	if got.IsReplica != want.IsReplica {
		t.Fatalf("isReplica %v, want %v", got.IsReplica, want.IsReplica)
	}
	if len(got.Homes) != len(want.Homes) {
		t.Fatalf("%d homes, want %d", len(got.Homes), len(want.Homes))
	}
	for i := range want.Homes {
		if got.Homes[i] != want.Homes[i] {
			t.Fatalf("home %d: %v, want %v", i, got.Homes[i], want.Homes[i])
		}
	}
	if len(got.Replicas) != len(want.Replicas) {
		t.Fatalf("%d replica groups, want %d", len(got.Replicas), len(want.Replicas))
	}
	for g := range want.Replicas {
		for i := range want.Replicas[g] {
			if got.Replicas[g][i] != want.Replicas[g][i] {
				t.Fatalf("replica group %d block %d: %v, want %v", g, i, got.Replicas[g][i], want.Replicas[g][i])
			}
		}
	}
	sameRecords(t, got.Edges, want.Edges)
	if len(got.Labels) != len(want.Labels) {
		t.Fatalf("%d labels, want %d", len(got.Labels), len(want.Labels))
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label %d: %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
	if len(got.Props) != len(want.Props) {
		t.Fatalf("%d props, want %d", len(got.Props), len(want.Props))
	}
	for i := range want.Props {
		if got.Props[i].PType != want.Props[i].PType || !bytes.Equal(got.Props[i].Value, want.Props[i].Value) {
			t.Fatalf("prop %d: %+v, want %+v", i, got.Props[i], want.Props[i])
		}
	}
}

func testVertex() *Vertex {
	// Same-rank neighbor runs (the delta-friendly common case), a direction
	// change, a heavy record, and a label change — four runs in total.
	return &Vertex{
		AppID: 0xfeedbeefcafe,
		Homes: []rma.DPtr{rma.MakeDPtr(2, 77)},
		Edges: []EdgeRec{
			{Neighbor: rma.MakeDPtr(1, 100), Dir: DirOut, Label: 16},
			{Neighbor: rma.MakeDPtr(1, 103), Dir: DirOut, Label: 16},
			{Neighbor: rma.MakeDPtr(1, 101), Dir: DirOut, Label: 16},
			{Neighbor: rma.MakeDPtr(3, 9000), Dir: DirIn, Label: 16},
			{Neighbor: rma.MakeDPtr(0, 5), Dir: DirOut, Heavy: true},
			{Neighbor: rma.MakeDPtr(1, 104), Dir: DirOut, Label: 17},
		},
		Labels: []lpg.LabelID{16, 300},
		Props: []lpg.Property{
			{PType: lpg.PTypeAppID, Value: lpg.EncodeUint64(0xfeedbeefcafe)},
			{PType: 40, Value: []byte("hello")},
		},
	}
}

func TestV2VertexRoundTrip(t *testing.T) {
	for _, bs := range []int{64, 128, 512} {
		v := testVertex()
		stream := EncodeVertexCodec(v, bs, CodecV2)
		nb := VertexBlocksCodec(v, bs, CodecV2)
		if len(stream) != nb*bs {
			t.Fatalf("bs=%d: stream of %d bytes for %d blocks", bs, len(stream), nb)
		}
		if NumBlocks(stream) != nb {
			t.Fatalf("bs=%d: header says %d blocks, layout computed %d", bs, NumBlocks(stream), nb)
		}
		if Inline(stream) != (nb == 1) {
			t.Fatalf("bs=%d: inline flag %v with %d blocks", bs, Inline(stream), nb)
		}
		got, err := DecodeVertex(stream)
		if err != nil {
			t.Fatalf("bs=%d: decode: %v", bs, err)
		}
		if got.Codec != CodecV2 {
			t.Fatalf("bs=%d: decoded codec %v", bs, got.Codec)
		}
		sameVertexContent(t, got, v)
	}
}

func TestV2CrossCodecRoundTrip(t *testing.T) {
	// v1 → v2 → v1: content must survive both conversions bit-exactly.
	v := testVertex()
	s1 := EncodeVertexCodec(v, 64, CodecV1)
	d1, err := DecodeVertex(s1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Codec != CodecV1 {
		t.Fatalf("v1 stream decoded as %v", d1.Codec)
	}
	s2 := EncodeVertexCodec(d1, 64, CodecV2)
	d2, err := DecodeVertex(s2)
	if err != nil {
		t.Fatal(err)
	}
	s3 := EncodeVertexCodec(d2, 64, CodecV1)
	d3, err := DecodeVertex(s3)
	if err != nil {
		t.Fatal(err)
	}
	sameVertexContent(t, d3, d1)
}

func TestV2Compresses(t *testing.T) {
	// A same-rank neighbor run — the case the delta encoding targets — must
	// shrink the holder materially: 64 sequential neighbors cost 16 bytes
	// each under v1 and 2–4 under v2.
	v := &Vertex{AppID: 7}
	for i := 0; i < 64; i++ {
		v.Edges = append(v.Edges, EdgeRec{Neighbor: rma.MakeDPtr(1, uint64(100+i*2)), Dir: DirOut, Label: 16})
	}
	v1 := len(EncodeVertexCodec(v, 64, CodecV1))
	v2 := len(EncodeVertexCodec(v, 64, CodecV2))
	if v2*2 > v1 {
		t.Fatalf("v2 stream of %d bytes vs v1 %d: expected at least 2x compression", v2, v1)
	}
}

func TestV2ReplicaRewrite(t *testing.T) {
	// Replica groups participate in the fixed regions: encode with groups,
	// rewrite as a follower copy, and decode both forms.
	v := testVertex()
	nb := VertexBlocksCodec(v, 64, CodecV2)
	group := make([]rma.DPtr, nb)
	for i := range group {
		group[i] = rma.MakeDPtr(5, uint64(200+i))
	}
	v.Replicas = [][]rma.DPtr{group}
	if n := VertexBlocksCodec(v, 64, CodecV2); n != nb {
		// The group grew the holder; rebuild the group at the new size.
		group = make([]rma.DPtr, n)
		for i := range group {
			group[i] = rma.MakeDPtr(5, uint64(200+i))
		}
		v.Replicas = [][]rma.DPtr{group}
		nb = VertexBlocksCodec(v, 64, CodecV2)
		if len(group) != nb {
			t.Fatalf("replica fixed point did not settle: %d blocks, group of %d", nb, len(group))
		}
	}
	stream := EncodeVertexCodec(v, 64, CodecV2)
	for i := 1; i < nb; i++ {
		SetTableEntry(stream, i-1, rma.MakeDPtr(0, uint64(10+i)))
	}
	rep := RewriteAsReplica(stream, group)
	if !IsReplicaBlock(rep) {
		t.Fatal("rewritten stream not flagged as replica")
	}
	for i := 1; i < nb; i++ {
		if TableEntry(rep, i-1) != group[i] {
			t.Fatalf("replica table entry %d: %v, want %v", i-1, TableEntry(rep, i-1), group[i])
		}
	}
	got, err := DecodeVertex(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsReplica {
		t.Fatal("decoded replica copy not marked IsReplica")
	}
	want, _ := DecodeVertex(stream)
	want.IsReplica = true
	sameVertexContent(t, got, want)
}

func TestV2EdgeHolderRoundTrip(t *testing.T) {
	e := &Edge{
		Origin: rma.MakeDPtr(1, 9),
		Target: rma.MakeDPtr(2, 11),
		Dir:    DirUndirected,
		Labels: []lpg.LabelID{16, 17},
		Props:  []lpg.Property{{PType: 33, Value: []byte("weight")}},
	}
	stream := EncodeEdgeCodec(e, 64, CodecV2)
	if len(stream) != EdgeBlocksCodec(e, 64, CodecV2)*64 {
		t.Fatalf("stream of %d bytes", len(stream))
	}
	if !IsEdgeHolder(stream) {
		t.Fatal("edge holder not flagged")
	}
	got, err := DecodeEdge(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != e.Origin || got.Target != e.Target || got.Dir != e.Dir {
		t.Fatalf("endpoints/dir: %+v", got)
	}
	if len(got.Labels) != 2 || got.Labels[0] != 16 || got.Labels[1] != 17 {
		t.Fatalf("labels: %v", got.Labels)
	}
	if len(got.Props) != 1 || !bytes.Equal(got.Props[0].Value, []byte("weight")) {
		t.Fatalf("props: %v", got.Props)
	}
}

func TestViewMatchesDecode(t *testing.T) {
	for _, c := range []Codec{CodecV1, CodecV2} {
		v := testVertex()
		stream := EncodeVertexCodec(v, 64, c)
		var w View
		if err := w.Reset(stream); err != nil {
			t.Fatalf("%v: reset: %v", c, err)
		}
		if w.Codec() != c || w.AppID() != v.AppID || w.NumEdges() != len(v.Edges) {
			t.Fatalf("%v: view header %v/%d/%d", c, w.Codec(), w.AppID(), w.NumEdges())
		}
		var got []EdgeRec
		w.ForEachEdge(func(rec EdgeRec) bool { got = append(got, rec); return true })
		sameRecords(t, got, v.Edges)
		if again := w.AppendEdges(nil); len(again) != len(v.Edges) {
			t.Fatalf("%v: AppendEdges returned %d records", c, len(again))
		}
		// Early stop after the first record.
		n := 0
		w.ForEachEdge(func(EdgeRec) bool { n++; return false })
		if n != 1 {
			t.Fatalf("%v: early stop visited %d records", c, n)
		}
		// Light-only neighbor iteration.
		light := 0
		w.ForEachNeighbor(func(rma.DPtr, Direction) bool { light++; return true })
		heavies := 0
		for _, rec := range v.Edges {
			if rec.Heavy {
				heavies++
			}
		}
		if light != len(v.Edges)-heavies {
			t.Fatalf("%v: %d light neighbors, want %d", c, light, len(v.Edges)-heavies)
		}
		meta, err := w.DecodeMeta()
		if err != nil {
			t.Fatalf("%v: DecodeMeta: %v", c, err)
		}
		if meta.Edges != nil {
			t.Fatalf("%v: DecodeMeta materialized edges", c)
		}
		meta.Edges = w.AppendEdges(nil)
		sameVertexContent(t, meta, v)
	}
}

func TestParseCodec(t *testing.T) {
	for s, want := range map[string]Codec{"": CodecV1, "v1": CodecV1, "1": CodecV1, "v2": CodecV2, "2": CodecV2} {
		got, err := ParseCodec(s)
		if err != nil || got != want {
			t.Fatalf("ParseCodec(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseCodec("v3"); err == nil {
		t.Fatal("ParseCodec(v3) accepted")
	}
}
