package holder

import (
	"bytes"
	"testing"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// TestVertexHomesRoundTrip: the home list live migration maintains encodes
// and decodes with the rest of the holder, across block-count boundaries.
func TestVertexHomesRoundTrip(t *testing.T) {
	const bs = 64
	for _, nHomes := range []int{0, 1, 3, 17} {
		v := &Vertex{AppID: 99}
		for i := 0; i < nHomes; i++ {
			v.Homes = append(v.Homes, rma.MakeDPtr(rma.Rank(i%4), uint64(i+1)))
		}
		v.Edges = []EdgeRec{{Neighbor: rma.MakeDPtr(1, 7), Dir: DirOut, Label: 2}}
		v.Labels = []lpg.LabelID{5}
		v.Props = []lpg.Property{{PType: lpg.PTypeID(lpg.FirstDynamicID), Value: []byte("abcd")}}

		buf := EncodeVertex(v, bs)
		if len(buf)%bs != 0 {
			t.Fatalf("stream of %d bytes not block-aligned", len(buf))
		}
		got, err := DecodeVertex(buf)
		if err != nil {
			t.Fatalf("homes=%d: %v", nHomes, err)
		}
		if got.AppID != v.AppID || len(got.Homes) != nHomes {
			t.Fatalf("homes=%d: decoded app %d with %d homes", nHomes, got.AppID, len(got.Homes))
		}
		for i := range v.Homes {
			if got.Homes[i] != v.Homes[i] {
				t.Fatalf("home %d: got %v, want %v", i, got.Homes[i], v.Homes[i])
			}
		}
		if len(got.Edges) != 1 || got.Edges[0] != v.Edges[0] {
			t.Fatalf("homes=%d: edges corrupted: %+v", nHomes, got.Edges)
		}
		if len(got.Labels) != 1 || got.Labels[0] != 5 {
			t.Fatalf("homes=%d: labels corrupted", nHomes)
		}
		if len(got.Props) != 1 || !bytes.Equal(got.Props[0].Value, []byte("abcd")) {
			t.Fatalf("homes=%d: props corrupted", nHomes)
		}
		if again := EncodeVertex(got, bs); !bytes.Equal(again, buf) {
			t.Fatalf("homes=%d: re-encode not canonical", nHomes)
		}
	}
}

// TestMovedStub: the forwarding stub encodes target and app ID, is
// recognized by IsMoved, and is rejected by both holder decoders.
func TestMovedStub(t *testing.T) {
	const bs = 128
	target := rma.MakeDPtr(3, 4242)
	stub := EncodeMoved(77, target, bs)
	if len(stub) != bs {
		t.Fatalf("stub is %d bytes, want one block (%d)", len(stub), bs)
	}
	if !IsMoved(stub) {
		t.Fatal("IsMoved rejected a stub")
	}
	if NumBlocks(stub) != 1 {
		t.Fatalf("stub claims %d blocks, want 1", NumBlocks(stub))
	}
	if got := MovedTarget(stub); got != target {
		t.Fatalf("MovedTarget = %v, want %v", got, target)
	}
	if got := MovedAppID(stub); got != 77 {
		t.Fatalf("MovedAppID = %d, want 77", got)
	}
	if _, err := DecodeVertex(stub); err == nil {
		t.Fatal("DecodeVertex accepted a stub")
	}
	if _, err := DecodeEdge(stub); err == nil {
		t.Fatal("DecodeEdge accepted a stub")
	}
	// Ordinary holders are not moved.
	if IsMoved(EncodeVertex(&Vertex{AppID: 1}, bs)) {
		t.Fatal("IsMoved fired on a vertex holder")
	}
	if IsMoved(EncodeEdge(&Edge{Origin: 1, Target: 2}, bs)) {
		t.Fatal("IsMoved fired on an edge holder")
	}
}
