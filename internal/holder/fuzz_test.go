package holder

import (
	"bytes"
	"testing"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// recordsFromBytes deterministically derives edge records from raw fuzz
// input: arbitrary neighbor DPtrs (rank and offset), all three directions,
// heavy flags, and labels.
func recordsFromBytes(data []byte) []EdgeRec {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	n := int(next()%40) + int(next()%8)
	recs := make([]EdgeRec, 0, n)
	for i := 0; i < n; i++ {
		rank := rma.Rank(uint16(next())<<8 | uint16(next()))
		off := uint64(next())<<16 | uint64(next())<<8 | uint64(next())
		recs = append(recs, EdgeRec{
			Neighbor: rma.MakeDPtr(rank, off),
			Dir:      Direction(next() % 3),
			Heavy:    next()%2 == 1,
			Label:    lpg.LabelID(uint32(next())<<8 | uint32(next())),
		})
	}
	return recs
}

func sameRecords(t *testing.T, got, want []EdgeRec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d edge records, encoded %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// FuzzHolderRecords drives the Logical Layout (§5.4) end to end for vertex
// holders whose edge lists span multi-block chains: encode at a small block
// size, check the block-table streaming invariant, link a synthetic chain
// through the table, decode, and verify every record survives. A second
// append-and-re-encode pass mirrors the bulk-load merge path, which grows a
// decoded holder and writes it back through a longer chain.
func FuzzHolderRecords(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{9, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, byte(1))
	f.Add([]byte{39, 7, 255, 254, 253, 252, 251, 250, 2, 1, 0, 77}, byte(2))
	f.Add([]byte{16, 0, 1, 0, 0, 0, 1, 0, 1, 16, 0, 1, 0, 0, 0, 1, 2, 32}, byte(3))
	f.Fuzz(func(t *testing.T, data []byte, sizeSel byte) {
		blockSize := []int{64, 72, 128, 512}[int(sizeSel)%4]
		recs := recordsFromBytes(data)
		var appID uint64
		for i, b := range data {
			appID |= uint64(b) << (8 * (i % 8))
		}
		v := &Vertex{AppID: appID, Edges: recs}

		stream := EncodeVertex(v, blockSize)
		nb := VertexBlocks(v, blockSize)
		if len(stream) != nb*blockSize {
			t.Fatalf("stream of %d bytes for %d blocks of %d", len(stream), nb, blockSize)
		}
		if NumBlocks(stream) != nb {
			t.Fatalf("header says %d blocks, layout computed %d", NumBlocks(stream), nb)
		}
		if IsEdgeHolder(stream) {
			t.Fatal("vertex holder flagged as edge holder")
		}
		// The streaming invariant: table entry i must be fully contained in
		// the first i+1 blocks, so a reader never needs a block before the
		// entry addressing it.
		for i := 0; i < nb-1; i++ {
			if TableEntryOffset(i)+8 > (i+1)*blockSize {
				t.Fatalf("table entry %d at offset %d spills past block %d (block size %d)",
					i, TableEntryOffset(i), i, blockSize)
			}
		}
		// Link a synthetic continuation chain through the table and read it
		// back, exactly as the fetch rounds do.
		for i := 0; i < nb-1; i++ {
			SetTableEntry(stream, i, rma.MakeDPtr(rma.Rank(i%7), uint64(i+1)))
		}
		for i := 0; i < nb-1; i++ {
			if got := TableEntry(stream, i); got != rma.MakeDPtr(rma.Rank(i%7), uint64(i+1)) {
				t.Fatalf("table entry %d: got %v", i, got)
			}
		}

		got, err := DecodeVertex(stream)
		if err != nil {
			t.Fatalf("decode: %v (%d records, block size %d)", err, len(recs), blockSize)
		}
		if got.AppID != v.AppID {
			t.Fatalf("appID %d, want %d", got.AppID, v.AppID)
		}
		sameRecords(t, got.Edges, v.Edges)

		// Append-and-re-encode: grow the decoded holder by its own records
		// (the bulk-load merge path) and round-trip again through a chain
		// that is at least as long.
		got.Edges = append(got.Edges, recs...)
		stream2 := EncodeVertex(got, blockSize)
		if VertexBlocks(got, blockSize)*blockSize != len(stream2) {
			t.Fatalf("re-encoded stream of %d bytes", len(stream2))
		}
		again, err := DecodeVertex(stream2)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		sameRecords(t, again.Edges, got.Edges)
	})
}

// FuzzEdgeHolderRoundTrip covers the heavy-edge holder codec with fuzzed
// endpoints, direction, and rich data.
func FuzzEdgeHolderRoundTrip(f *testing.F) {
	f.Add(uint64(5), uint64(9), byte(0), []byte{3, 1, 4, 1, 5, 9, 2, 6})
	f.Add(uint64(1<<63), uint64(0), byte(2), []byte{})
	f.Fuzz(func(t *testing.T, origin, target uint64, dir byte, tail []byte) {
		e := &Edge{
			Origin: rma.DPtr(origin),
			Target: rma.DPtr(target),
			Dir:    Direction(dir % 3),
		}
		for i := 0; i+1 < len(tail) && i < 12; i += 2 {
			if tail[i]%2 == 0 {
				e.Labels = append(e.Labels, lpg.LabelID(tail[i+1]))
			} else {
				e.Props = append(e.Props, lpg.Property{
					PType: lpg.PTypeID(lpg.FirstDynamicID + uint32(tail[i])),
					Value: tail[i+1 : min(len(tail), i+1+int(tail[i+1])%9)],
				})
			}
		}
		buf := EncodeEdge(e, 64)
		got, err := DecodeEdge(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Origin != e.Origin || got.Target != e.Target || got.Dir != e.Dir {
			t.Fatalf("endpoints/dir: got %+v, want %+v", got, e)
		}
		if len(got.Labels) != len(e.Labels) || len(got.Props) != len(e.Props) {
			t.Fatalf("rich data: got %d/%d, want %d/%d", len(got.Labels), len(got.Props), len(e.Labels), len(e.Props))
		}
		for i := range e.Props {
			if got.Props[i].PType != e.Props[i].PType || !bytes.Equal(got.Props[i].Value, e.Props[i].Value) {
				t.Fatalf("prop %d: got %+v, want %+v", i, got.Props[i], e.Props[i])
			}
		}
	})
}
