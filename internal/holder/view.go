package holder

import (
	"encoding/binary"
	"fmt"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// View is a zero-copy reader over an encoded vertex-holder stream: it
// validates the layout once at Reset and then iterates edge records in place
// — fixed 16-byte records for v1, varint runs for v2 — without materializing
// a []EdgeRec or copying a byte. The steady-state point-read and CSR index
// paths run entirely on Views, which is what makes them allocation-free.
//
// A View aliases the stream it was Reset with; it is only valid while those
// bytes are stable (a fetched copy, a cached copy under a validated version
// stamp, or a holder protected by the caller's lock). The zero View is ready
// for Reset; Views are cheap to embed and reuse.
type View struct {
	buf   []byte
	codec Codec

	numBlocks   int
	numEdges    int
	numHomes    int
	numReplicas int
	appID       uint64
	isReplica   bool

	edgesOff   int // byte offset of the edge region
	edgesLen   int // its exact encoded length (validated at Reset)
	entryBytes int // entry region length; starts at edgesOff+edgesLen
}

// Reset points the view at a vertex-holder stream, validating the header and
// every region bound (for v2 this includes one in-place walk of the varint
// edge runs). After a nil error the iteration methods cannot fail and do not
// allocate. The view aliases buf.
func (w *View) Reset(buf []byte) error {
	numBlocks, flags, err := checkHeader(buf)
	if err != nil {
		return err
	}
	if flags&flagEdgeHolder != 0 {
		return fmt.Errorf("holder: view over an edge holder")
	}
	w.buf = buf
	w.numBlocks = numBlocks
	w.numEdges = int(binary.LittleEndian.Uint32(buf[4:]))
	w.entryBytes = int(binary.LittleEndian.Uint32(buf[8:]))
	w.numHomes = int(binary.LittleEndian.Uint32(buf[24:]))
	w.numReplicas = int(binary.LittleEndian.Uint32(buf[28:]))
	w.appID = binary.LittleEndian.Uint64(buf[16:])
	w.isReplica = flags&flagReplica != 0
	w.codec = CodecV1
	if flags&flagV2 != 0 {
		w.codec = CodecV2
	}
	off, err := fixedRegionsEnd(buf, numBlocks, w.numHomes, w.numReplicas)
	if err != nil {
		return err
	}
	w.edgesOff = off + 8*w.numHomes + 8*w.numReplicas*numBlocks
	if w.codec == CodecV1 {
		if w.numEdges > (len(buf)-w.edgesOff)/EdgeRecSize {
			return fmt.Errorf("holder: truncated edge region (%d records, %d bytes)", w.numEdges, len(buf)-w.edgesOff)
		}
		w.edgesLen = w.numEdges * EdgeRecSize
	} else {
		w.edgesLen, err = forEachEdgeV2(buf[w.edgesOff:], w.numEdges, nil)
		if err != nil {
			return err
		}
	}
	if w.entryBytes > len(buf)-w.edgesOff-w.edgesLen {
		return fmt.Errorf("holder: truncated entry region (%d bytes, %d left)", w.entryBytes, len(buf)-w.edgesOff-w.edgesLen)
	}
	return nil
}

// Codec returns the wire format of the viewed stream.
func (w *View) Codec() Codec { return w.codec }

// NumBlocks returns the holder's block count.
func (w *View) NumBlocks() int { return w.numBlocks }

// NumEdges returns the number of inline edge records — the vertex degree
// over all directions — straight from the header, without touching the edge
// region.
func (w *View) NumEdges() int { return w.numEdges }

// AppID returns the application-level vertex ID.
func (w *View) AppID() uint64 { return w.appID }

// IsReplica reports whether the stream is a follower copy.
func (w *View) IsReplica() bool { return w.isReplica }

// ForEachEdge calls fn for every inline edge record in insertion order,
// parsing the stream in place. fn returning false stops the walk. The
// records are yielded exactly as DecodeVertex would materialize them.
func (w *View) ForEachEdge(fn func(EdgeRec) bool) {
	if w.numEdges == 0 {
		return
	}
	if w.codec == CodecV1 {
		off := w.edgesOff
		for i := 0; i < w.numEdges; i++ {
			if !fn(decodeEdgeRec(w.buf[off:])) {
				return
			}
			off += EdgeRecSize
		}
		return
	}
	// Reset validated the region; the walk cannot fail.
	forEachEdgeV2(w.buf[w.edgesOff:w.edgesOff+w.edgesLen], w.numEdges, fn)
}

// ForEachNeighbor calls fn with the neighbor DPtr and direction of every
// lightweight record, skipping heavy records (whose Neighbor points at an
// edge holder, not a vertex — resolving those takes a fetch the transaction
// layer owns). fn returning false stops the walk.
func (w *View) ForEachNeighbor(fn func(nbr rma.DPtr, dir Direction) bool) {
	w.ForEachEdge(func(rec EdgeRec) bool {
		if rec.Heavy {
			return true
		}
		return fn(rec.Neighbor, rec.Dir)
	})
}

// AppendEdges materializes the edge records into dst (usually dst[:0] of a
// reusable slice) and returns it — the lazy-decode escape hatch for paths
// that need a mutable []EdgeRec after all.
func (w *View) AppendEdges(dst []EdgeRec) []EdgeRec {
	if cap(dst) < w.numEdges {
		dst = make([]EdgeRec, 0, w.numEdges)
	}
	w.ForEachEdge(func(rec EdgeRec) bool {
		dst = append(dst, rec)
		return true
	})
	return dst
}

// DecodeMeta decodes everything except the edge records into a fresh Vertex
// (Edges stays nil): the lazy form of DecodeVertex the fetch path uses so a
// clean read-only vertex never materializes its edge list — iteration runs
// on the view, and only a mutation pays for AppendEdges.
func (w *View) DecodeMeta() (*Vertex, error) {
	v := &Vertex{AppID: w.appID, IsReplica: w.isReplica, Codec: w.codec}
	off := w.edgesOff - 8*w.numHomes - 8*w.numReplicas*w.numBlocks
	if w.numHomes > 0 {
		v.Homes = make([]rma.DPtr, 0, w.numHomes)
		for i := 0; i < w.numHomes; i++ {
			v.Homes = append(v.Homes, rma.DPtr(binary.LittleEndian.Uint64(w.buf[off:])))
			off += 8
		}
	}
	if w.numReplicas > 0 {
		v.Replicas = make([][]rma.DPtr, w.numReplicas)
		for g := range v.Replicas {
			group := make([]rma.DPtr, w.numBlocks)
			for i := range group {
				group[i] = rma.DPtr(binary.LittleEndian.Uint64(w.buf[off:]))
				off += 8
			}
			v.Replicas[g] = group
		}
	}
	ent := w.buf[w.edgesOff+w.edgesLen : w.edgesOff+w.edgesLen+w.entryBytes]
	var err error
	if w.codec == CodecV2 {
		v.Labels, v.Props, err = lpg.SplitEntriesVar(ent)
	} else {
		v.Labels, v.Props, err = lpg.SplitEntriesSafe(ent)
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}
