// Package holder implements the Logical Layout (LL) level of GDA (§5.4 of
// the paper): the serialization of vertex and edge "holder" objects into the
// fixed-size blocks of the BGDL level.
//
// A holder is a logically contiguous byte stream physically split across
// blocks (which need not be contiguous or even on one rank). The stream
// layout follows Figure 3:
//
//	header      32 bytes: #blocks, #edges, entry-region size, kind/flags,
//	            #home blocks, and the application-level ID (vertices) or the
//	            endpoint DPtrs (edge holders)
//	block table (#blocks-1) DPtrs of the continuation blocks — the primary
//	            block's address is the vertex's identity and is not stored
//	homes       #homes DPtrs of former primary blocks now holding forwarding
//	            stubs (vertices only; populated by live migration)
//	edges       #edges fixed-size lightweight-edge records (vertices only)
//	entries     label & property entries (package lpg wire format)
//	unused      slack up to #blocks · blockSize
//
// Every table entry i lands at logical offset 32+8i, which is always inside
// the first i+1 blocks, so a reader can fetch the primary block and then
// stream the continuation blocks in order without ever missing a table
// entry it needs next — one round trip per block, fully one-sided.
//
// Lightweight edges (§5.4.2) are stored inline in the source vertex's
// holder and carry at most one label. An edge with more labels or with
// properties is "heavy": its inline record points at a dedicated edge
// holder instead of at the neighbor vertex.
package holder

import (
	"encoding/binary"
	"fmt"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// HeaderSize is the fixed holder header size in bytes.
const HeaderSize = 32

// EdgeRecSize is the size of one inline edge record.
const EdgeRecSize = 16

// Direction of an edge relative to the vertex holding the record.
type Direction uint8

const (
	// DirOut marks an outgoing edge (the holder's vertex is the origin).
	DirOut Direction = iota
	// DirIn marks an incoming edge.
	DirIn
	// DirUndirected marks an undirected edge.
	DirUndirected
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case DirOut:
		return "out"
	case DirIn:
		return "in"
	case DirUndirected:
		return "undirected"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// EdgeRec is one inline (lightweight) edge record of a vertex holder.
type EdgeRec struct {
	// Neighbor is the other endpoint's vertex DPtr or, when Heavy, the DPtr
	// of the dedicated edge holder.
	Neighbor rma.DPtr
	// Dir is the edge direction relative to the holding vertex.
	Dir Direction
	// Heavy marks a record that spills to an edge holder.
	Heavy bool
	// Label is the single lightweight label (0 = unlabeled). Heavy edges
	// keep their labels in the edge holder.
	Label lpg.LabelID
}

// EdgeUID identifies an edge relative to one of its endpoint vertices: the
// vertex's DPtr plus the index of the record inside that vertex's holder
// (the paper's 12-byte edge UID, §5.4.2). The same physical edge has two
// different UIDs, one per endpoint.
type EdgeUID struct {
	Vertex rma.DPtr
	Index  uint32
}

// Vertex is the decoded logical form of a vertex holder.
type Vertex struct {
	// AppID is the application-level vertex ID (also exposed as the
	// predefined __app_id property).
	AppID uint64
	// Homes lists the primary blocks this vertex occupied on ranks it has
	// lived on before live migration moved it (at most one per rank). Each
	// listed block stays allocated and holds a one-hop forwarding stub
	// (EncodeMoved) pointing at the current primary, so stale DPtrs in edge
	// records keep resolving; a migration back to a former rank reuses its
	// home block, restoring the vertex's original DPtr there (the ABA case
	// the version counters guard). Empty for never-migrated vertices.
	Homes []rma.DPtr
	// Replicas lists the vertex's follower block groups (the primary chain is
	// not listed). Each group has exactly NumBlocks(v) DPtrs — the follower's
	// head block first, then its continuation blocks in stream order — and
	// holds a byte-identical copy of the holder stream, re-pointed at its own
	// blocks and flagged flagReplica (RewriteAsReplica). The group head's
	// lock word is the follower's version word; the commit fan-out keeps it
	// in lockstep with the primary's (follower word free at version v ⇒
	// follower content equals primary content at v). Empty for unreplicated
	// vertices.
	Replicas [][]rma.DPtr
	// IsReplica reports that this stream was decoded from a follower copy
	// rather than the primary chain (the flagReplica header bit). Follower
	// streams are read-only views: every mutation path goes through the
	// primary.
	IsReplica bool
	// Edges are the inline edge records in insertion order.
	Edges []EdgeRec
	// Labels are the vertex's label IDs in insertion order.
	Labels []lpg.LabelID
	// Props are the vertex's properties in insertion order.
	Props []lpg.Property
	// Codec records which wire format the stream was decoded from (the zero
	// value is CodecV1). Not encoded; re-encoding under a different codec is
	// exactly how migration and promotion convert holders between formats.
	Codec Codec
}

// Edge is the decoded logical form of a heavy-edge holder.
type Edge struct {
	// Origin and Target are the endpoint vertex DPtrs.
	Origin, Target rma.DPtr
	// Dir records whether the edge is directed.
	Dir Direction
	// Labels and Props carry the edge's rich data.
	Labels []lpg.LabelID
	Props  []lpg.Property
}

const (
	flagEdgeHolder = 1 << 0
	// flagMoved marks a forwarding stub left behind by live vertex
	// migration: the block is not a holder, its header carries the DPtr of
	// the vertex's current primary block instead (EncodeMoved/MovedTarget).
	flagMoved = 1 << 1
	// flagReplica marks a follower copy of a replicated vertex holder: the
	// stream is byte-identical to the primary's except for this bit and the
	// block table, which points at the follower's own blocks.
	flagReplica = 1 << 2
	// flagV2 tags a stream encoded with the v2 codec (delta+varint edge
	// runs, varint entries — see v2.go). The decoders dispatch on it, so v1
	// and v2 holders coexist in one store.
	flagV2 = 1 << 3
	// flagInline marks a single-block v2 holder: no block table, no
	// continuation chain — a reader that sees it on the primary block knows
	// the whole holder is already in hand and skips the chain walk.
	flagInline = 1 << 4
)

// contentSizeVertex returns the logical byte size of v excluding slack.
func contentSizeVertex(v *Vertex, numBlocks int) int {
	entries := lpg.EndEntrySize
	for range v.Labels {
		entries += lpg.EntrySize(4)
	}
	for _, p := range v.Props {
		entries += lpg.EntrySize(len(p.Value))
	}
	// Each replica group stores one DPtr per block of the holder, so the
	// replica region participates in the block-count fixed point exactly as
	// the table does.
	return HeaderSize + 8*(numBlocks-1) + 8*len(v.Homes) + 8*len(v.Replicas)*numBlocks +
		EdgeRecSize*len(v.Edges) + entries
}

func contentSizeEdge(e *Edge, numBlocks int) int {
	entries := lpg.EndEntrySize
	for range e.Labels {
		entries += lpg.EntrySize(4)
	}
	for _, p := range e.Props {
		entries += lpg.EntrySize(len(p.Value))
	}
	// Edge holders carry one 8-byte direction word in place of edge records.
	return HeaderSize + 8*(numBlocks-1) + 8 + entries
}

// blocksFor solves the fixed point: the table grows with the block count.
func blocksFor(size func(numBlocks int) int, blockSize int) int {
	n := 1
	for {
		need := size(n)
		fit := (need + blockSize - 1) / blockSize
		if fit <= n {
			return n
		}
		n = fit
	}
}

// VertexBlocks returns how many blocks v needs at the given block size.
func VertexBlocks(v *Vertex, blockSize int) int {
	return blocksFor(func(n int) int { return contentSizeVertex(v, n) }, blockSize)
}

// EdgeBlocks returns how many blocks e needs at the given block size.
func EdgeBlocks(e *Edge, blockSize int) int {
	return blocksFor(func(n int) int { return contentSizeEdge(e, n) }, blockSize)
}

// EncodeVertex serializes v into a logical stream of exactly
// VertexBlocks(v)·blockSize bytes. The block table is zeroed; the caller
// fills it with SetTableEntry after acquiring the continuation blocks.
func EncodeVertex(v *Vertex, blockSize int) []byte {
	numBlocks := VertexBlocks(v, blockSize)
	buf := make([]byte, numBlocks*blockSize)
	entryRegion := lpg.EncodeEntries(v.Labels, v.Props)

	var flags uint32
	if v.IsReplica {
		flags |= flagReplica
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(numBlocks))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(v.Edges)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(entryRegion)))
	binary.LittleEndian.PutUint32(buf[12:], flags)
	binary.LittleEndian.PutUint64(buf[16:], v.AppID)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(v.Homes)))
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(v.Replicas)))

	off := HeaderSize + 8*(numBlocks-1)
	for _, h := range v.Homes {
		binary.LittleEndian.PutUint64(buf[off:], uint64(h))
		off += 8
	}
	for gi, group := range v.Replicas {
		if len(group) != numBlocks {
			panic(fmt.Sprintf("holder: replica group %d has %d blocks, holder has %d", gi, len(group), numBlocks))
		}
		for _, dp := range group {
			binary.LittleEndian.PutUint64(buf[off:], uint64(dp))
			off += 8
		}
	}
	for _, rec := range v.Edges {
		off += encodeEdgeRec(buf[off:], rec)
	}
	copy(buf[off:], entryRegion)
	return buf
}

// DecodeVertex parses a logical stream produced by EncodeVertex or the v2
// encoder, dispatching on the header's codec flag. It returns an error —
// never panics — on malformed input of either format.
func DecodeVertex(buf []byte) (*Vertex, error) {
	numBlocks, flags, err := checkHeader(buf)
	if err != nil {
		return nil, err
	}
	if flags&flagEdgeHolder != 0 {
		return nil, fmt.Errorf("holder: expected a vertex holder, found an edge holder")
	}
	if flags&flagV2 != 0 {
		return decodeVertexV2(buf, numBlocks, flags)
	}
	numEdges := int(binary.LittleEndian.Uint32(buf[4:]))
	entryBytes := int(binary.LittleEndian.Uint32(buf[8:]))
	numHomes := int(binary.LittleEndian.Uint32(buf[24:]))
	numReplicas := int(binary.LittleEndian.Uint32(buf[28:]))
	v := &Vertex{AppID: binary.LittleEndian.Uint64(buf[16:]), IsReplica: flags&flagReplica != 0}
	off, err := fixedRegionsEnd(buf, numBlocks, numHomes, numReplicas)
	if err != nil {
		return nil, err
	}
	rest := len(buf) - off - 8*numHomes - 8*numReplicas*numBlocks
	if numEdges > rest/EdgeRecSize || entryBytes > rest-numEdges*EdgeRecSize {
		return nil, fmt.Errorf("holder: truncated vertex holder (%d blocks, %d homes, %d replicas, %d edges, %d entry bytes, %d buffer)",
			numBlocks, numHomes, numReplicas, numEdges, entryBytes, len(buf))
	}
	if numHomes > 0 {
		v.Homes = make([]rma.DPtr, numHomes)
		for i := range v.Homes {
			v.Homes[i] = rma.DPtr(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	if numReplicas > 0 {
		v.Replicas = make([][]rma.DPtr, numReplicas)
		for g := range v.Replicas {
			group := make([]rma.DPtr, numBlocks)
			for i := range group {
				group[i] = rma.DPtr(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			v.Replicas[g] = group
		}
	}
	v.Edges = make([]EdgeRec, numEdges)
	for i := range v.Edges {
		v.Edges[i] = decodeEdgeRec(buf[off:])
		off += EdgeRecSize
	}
	v.Labels, v.Props, err = lpg.SplitEntriesSafe(buf[off : off+entryBytes])
	if err != nil {
		return nil, err
	}
	return v, nil
}

// EncodeEdge serializes a heavy-edge holder.
func EncodeEdge(e *Edge, blockSize int) []byte {
	numBlocks := EdgeBlocks(e, blockSize)
	buf := make([]byte, numBlocks*blockSize)
	entryRegion := lpg.EncodeEntries(e.Labels, e.Props)

	binary.LittleEndian.PutUint32(buf[0:], uint32(numBlocks))
	binary.LittleEndian.PutUint32(buf[4:], 0)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(entryRegion)))
	binary.LittleEndian.PutUint32(buf[12:], flagEdgeHolder)
	binary.LittleEndian.PutUint64(buf[16:], uint64(e.Origin))
	binary.LittleEndian.PutUint64(buf[24:], uint64(e.Target))

	off := HeaderSize + 8*(numBlocks-1)
	binary.LittleEndian.PutUint32(buf[off:], uint32(e.Dir))
	off += 8
	copy(buf[off:], entryRegion)
	return buf
}

// DecodeEdge parses a logical stream produced by EncodeEdge or the v2
// encoder, dispatching on the header's codec flag. It returns an error —
// never panics — on malformed input of either format.
func DecodeEdge(buf []byte) (*Edge, error) {
	numBlocks, flags, err := checkHeader(buf)
	if err != nil {
		return nil, err
	}
	if flags&flagEdgeHolder == 0 {
		return nil, fmt.Errorf("holder: expected an edge holder, found a vertex holder")
	}
	entryBytes := int(binary.LittleEndian.Uint32(buf[8:]))
	e := &Edge{
		Origin: rma.DPtr(binary.LittleEndian.Uint64(buf[16:])),
		Target: rma.DPtr(binary.LittleEndian.Uint64(buf[24:])),
	}
	off, err := fixedRegionsEnd(buf, numBlocks, 0, 0)
	if err != nil {
		return nil, err
	}
	if off+8 > len(buf) || entryBytes > len(buf)-off-8 {
		return nil, fmt.Errorf("holder: truncated edge holder")
	}
	e.Dir = Direction(binary.LittleEndian.Uint32(buf[off:]))
	off += 8
	if flags&flagV2 != 0 {
		e.Labels, e.Props, err = lpg.SplitEntriesVar(buf[off : off+entryBytes])
	} else {
		e.Labels, e.Props, err = lpg.SplitEntriesSafe(buf[off : off+entryBytes])
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

func checkHeader(buf []byte) (numBlocks int, flags uint32, err error) {
	if len(buf) < HeaderSize {
		return 0, 0, fmt.Errorf("holder: %d bytes is smaller than the header", len(buf))
	}
	numBlocks = int(binary.LittleEndian.Uint32(buf[0:]))
	if numBlocks < 1 {
		return 0, 0, fmt.Errorf("holder: corrupt header (0 blocks)")
	}
	flags = binary.LittleEndian.Uint32(buf[12:])
	if flags&flagMoved != 0 {
		return 0, 0, fmt.Errorf("holder: block is a migration forwarding stub, not a holder")
	}
	return numBlocks, flags, nil
}

func encodeEdgeRec(dst []byte, rec EdgeRec) int {
	binary.LittleEndian.PutUint64(dst[0:], uint64(rec.Neighbor))
	meta := uint32(rec.Dir) & 0x3
	if rec.Heavy {
		meta |= 1 << 2
	}
	binary.LittleEndian.PutUint32(dst[8:], meta)
	binary.LittleEndian.PutUint32(dst[12:], uint32(rec.Label))
	return EdgeRecSize
}

func decodeEdgeRec(src []byte) EdgeRec {
	meta := binary.LittleEndian.Uint32(src[8:])
	return EdgeRec{
		Neighbor: rma.DPtr(binary.LittleEndian.Uint64(src[0:])),
		Dir:      Direction(meta & 0x3),
		Heavy:    meta&(1<<2) != 0,
		Label:    lpg.LabelID(binary.LittleEndian.Uint32(src[12:])),
	}
}

// NumBlocks reads the block count from a holder's primary-block prefix.
func NumBlocks(primary []byte) int {
	if len(primary) < 4 {
		panic("holder: primary block prefix too small")
	}
	return int(binary.LittleEndian.Uint32(primary))
}

// EncodeMoved builds the forwarding stub live migration leaves in a vacated
// primary block: a single-block stream whose header carries the flagMoved
// bit, the migrated vertex's application ID (diagnostics), and the DPtr of
// the vertex's current primary. Readers that land on a stub chase target
// instead of decoding (the stub is rejected by DecodeVertex/DecodeEdge).
func EncodeMoved(appID uint64, target rma.DPtr, blockSize int) []byte {
	buf := make([]byte, blockSize)
	binary.LittleEndian.PutUint32(buf[0:], 1)
	binary.LittleEndian.PutUint32(buf[12:], flagMoved)
	binary.LittleEndian.PutUint64(buf[16:], uint64(target))
	binary.LittleEndian.PutUint64(buf[24:], appID)
	return buf
}

// IsMoved reads the forwarding flag from a block's header prefix.
func IsMoved(primary []byte) bool {
	if len(primary) < HeaderSize {
		panic("holder: primary block prefix too small")
	}
	return binary.LittleEndian.Uint32(primary[12:])&flagMoved != 0
}

// MovedTarget returns the current-primary DPtr a forwarding stub points at.
func MovedTarget(primary []byte) rma.DPtr {
	return rma.DPtr(binary.LittleEndian.Uint64(primary[16:]))
}

// MovedAppID returns the application ID recorded in a forwarding stub.
func MovedAppID(primary []byte) uint64 {
	return binary.LittleEndian.Uint64(primary[24:])
}

// Inline reads the single-block flag from a holder's primary-block prefix:
// true for a v2 holder whose whole stream fits its primary block, so a
// reader holding that block needs no table lookup and no chain walk.
func Inline(primary []byte) bool {
	if len(primary) < HeaderSize {
		panic("holder: primary block prefix too small")
	}
	return binary.LittleEndian.Uint32(primary[12:])&flagInline != 0
}

// IsEdgeHolder reads the kind flag from a holder's primary-block prefix.
func IsEdgeHolder(primary []byte) bool {
	if len(primary) < HeaderSize {
		panic("holder: primary block prefix too small")
	}
	return binary.LittleEndian.Uint32(primary[12:])&flagEdgeHolder != 0
}

// IsReplicaBlock reads the replica flag from a block's header prefix: true
// for the head block of a follower copy.
func IsReplicaBlock(primary []byte) bool {
	if len(primary) < HeaderSize {
		panic("holder: primary block prefix too small")
	}
	return binary.LittleEndian.Uint32(primary[12:])&flagReplica != 0
}

// NumReplicas reads the follower-group count from a holder's primary-block
// prefix.
func NumReplicas(primary []byte) int {
	if len(primary) < HeaderSize {
		panic("holder: primary block prefix too small")
	}
	return int(binary.LittleEndian.Uint32(primary[28:]))
}

// RewriteAsReplica turns a primary holder stream into the byte stream of one
// follower copy: the replica flag is set and the block table is re-pointed at
// the group's own continuation blocks (group[0] is the follower's head block
// and, like the primary, is not stored in the table). Everything else —
// content, homes, the full replica group list — is byte-identical, which is
// what lets a promotion or repair reconstruct the vertex from any follower.
// The input stream is not modified.
func RewriteAsReplica(stream []byte, group []rma.DPtr) []byte {
	nb := NumBlocks(stream)
	if len(group) != nb {
		panic(fmt.Sprintf("holder: replica group has %d blocks, holder has %d", len(group), nb))
	}
	out := append([]byte(nil), stream...)
	binary.LittleEndian.PutUint32(out[12:], binary.LittleEndian.Uint32(out[12:])|flagReplica)
	for i := 1; i < nb; i++ {
		SetTableEntry(out, i-1, group[i])
	}
	return out
}

// TableEntry returns the DPtr of continuation block i (0-based: entry 0 is
// the holder's second block) from the logical stream.
func TableEntry(buf []byte, i int) rma.DPtr {
	return rma.DPtr(binary.LittleEndian.Uint64(buf[HeaderSize+8*i:]))
}

// SetTableEntry writes the DPtr of continuation block i into the stream.
func SetTableEntry(buf []byte, i int, dp rma.DPtr) {
	binary.LittleEndian.PutUint64(buf[HeaderSize+8*i:], uint64(dp))
}

// TableEntryOffset returns the logical offset of table entry i; callers use
// it to assert the streaming-read invariant (entry i inside block ≤ i).
func TableEntryOffset(i int) int { return HeaderSize + 8*i }
