package holder

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

func sampleVertex() *Vertex {
	return &Vertex{
		AppID: 987654321,
		Edges: []EdgeRec{
			{Neighbor: rma.MakeDPtr(1, 5), Dir: DirOut, Label: 17},
			{Neighbor: rma.MakeDPtr(2, 9), Dir: DirIn},
			{Neighbor: rma.MakeDPtr(0, 3), Dir: DirUndirected, Heavy: true, Label: 0},
		},
		Labels: []lpg.LabelID{16, 18},
		Props: []lpg.Property{
			{PType: 20, Value: lpg.EncodeUint64(33)},
			{PType: 21, Value: lpg.EncodeString("alice")},
		},
	}
}

func TestVertexRoundTrip(t *testing.T) {
	v := sampleVertex()
	buf := EncodeVertex(v, 512)
	if len(buf)%512 != 0 {
		t.Fatalf("stream length %d is not block-aligned", len(buf))
	}
	got, err := DecodeVertex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, v)
	}
}

func TestEmptyVertex(t *testing.T) {
	v := &Vertex{AppID: 1}
	buf := EncodeVertex(v, 128)
	if NumBlocks(buf) != 1 {
		t.Fatalf("empty vertex uses %d blocks, want 1", NumBlocks(buf))
	}
	got, err := DecodeVertex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppID != 1 || len(got.Edges) != 0 || got.Labels != nil || got.Props != nil {
		t.Fatalf("empty vertex decoded as %+v", got)
	}
}

func TestMultiBlockVertex(t *testing.T) {
	v := &Vertex{AppID: 7}
	for i := 0; i < 100; i++ { // 1600 bytes of edge records alone
		v.Edges = append(v.Edges, EdgeRec{Neighbor: rma.MakeDPtr(rma.Rank(i%4), uint64(i+1)), Dir: DirOut, Label: lpg.LabelID(i)})
	}
	v.Props = append(v.Props, lpg.Property{PType: 30, Value: bytes.Repeat([]byte{9}, 700)})
	buf := EncodeVertex(v, 256)
	if nb := NumBlocks(buf); nb < 9 {
		t.Fatalf("vertex with 2.3KB content in %d blocks of 256B", nb)
	}
	got, err := DecodeVertex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatal("multi-block round trip mismatch")
	}
}

func TestBlocksFixedPointConverges(t *testing.T) {
	// Content that barely crosses a block boundary when the table grows.
	for blockSize := 64; blockSize <= 1024; blockSize *= 2 {
		for nEdges := 0; nEdges < 64; nEdges++ {
			v := &Vertex{AppID: 1, Edges: make([]EdgeRec, nEdges)}
			nb := VertexBlocks(v, blockSize)
			content := contentSizeVertex(v, nb)
			if content > nb*blockSize {
				t.Fatalf("blockSize=%d edges=%d: content %d overflows %d blocks", blockSize, nEdges, content, nb)
			}
			if nb > 1 {
				smaller := contentSizeVertex(v, nb-1)
				if smaller <= (nb-1)*blockSize {
					t.Fatalf("blockSize=%d edges=%d: %d blocks not minimal", blockSize, nEdges, nb)
				}
			}
		}
	}
}

func TestTableEntryStreamingInvariant(t *testing.T) {
	// Table entry i must live within the first i+1 blocks for any block size
	// >= 64, so a reader never needs a block before knowing its address.
	for blockSize := 64; blockSize <= 4096; blockSize *= 2 {
		for i := 0; i < 1000; i++ {
			if TableEntryOffset(i) >= (i+1)*blockSize {
				t.Fatalf("blockSize=%d: table entry %d at offset %d outside first %d blocks",
					blockSize, i, TableEntryOffset(i), i+1)
			}
		}
	}
}

func TestSetGetTableEntry(t *testing.T) {
	v := &Vertex{AppID: 2, Props: []lpg.Property{{PType: 30, Value: bytes.Repeat([]byte{1}, 300)}}}
	buf := EncodeVertex(v, 128)
	nb := NumBlocks(buf)
	if nb < 3 {
		t.Fatalf("need a multi-block holder, got %d blocks", nb)
	}
	for i := 0; i < nb-1; i++ {
		SetTableEntry(buf, i, rma.MakeDPtr(3, uint64(100+i)))
	}
	for i := 0; i < nb-1; i++ {
		if got := TableEntry(buf, i); got != rma.MakeDPtr(3, uint64(100+i)) {
			t.Fatalf("table entry %d = %v", i, got)
		}
	}
	// The table must not have corrupted the payload.
	got, err := DecodeVertex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Props[0].Value, v.Props[0].Value) {
		t.Fatal("table writes corrupted the property payload")
	}
}

func TestEdgeRoundTrip(t *testing.T) {
	e := &Edge{
		Origin: rma.MakeDPtr(0, 10),
		Target: rma.MakeDPtr(5, 20),
		Dir:    DirOut,
		Labels: []lpg.LabelID{40, 41},
		Props:  []lpg.Property{{PType: 50, Value: lpg.EncodeFloat64(2.5)}},
	}
	buf := EncodeEdge(e, 256)
	got, err := DecodeEdge(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("edge round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestKindConfusionRejected(t *testing.T) {
	vbuf := EncodeVertex(&Vertex{AppID: 1}, 128)
	if _, err := DecodeEdge(vbuf); err == nil {
		t.Fatal("DecodeEdge accepted a vertex holder")
	}
	ebuf := EncodeEdge(&Edge{Origin: rma.MakeDPtr(0, 1), Target: rma.MakeDPtr(0, 2)}, 128)
	if _, err := DecodeVertex(ebuf); err == nil {
		t.Fatal("DecodeVertex accepted an edge holder")
	}
	if !IsEdgeHolder(ebuf[:HeaderSize]) || IsEdgeHolder(vbuf[:HeaderSize]) {
		t.Fatal("IsEdgeHolder misclassifies")
	}
}

func TestCorruptHeaders(t *testing.T) {
	if _, err := DecodeVertex(make([]byte, 8)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := DecodeVertex(make([]byte, HeaderSize)); err == nil {
		t.Fatal("zero-block header accepted")
	}
	// A header promising more edges than the buffer holds must error.
	v := &Vertex{AppID: 1}
	buf := EncodeVertex(v, 128)
	buf[4] = 0xff // numEdges = 255
	if _, err := DecodeVertex(buf); err == nil {
		t.Fatal("truncated edge area accepted")
	}
}

func TestEdgeRecEncodingExhaustive(t *testing.T) {
	for _, dir := range []Direction{DirOut, DirIn, DirUndirected} {
		for _, heavy := range []bool{false, true} {
			rec := EdgeRec{Neighbor: rma.MakeDPtr(9, 1234), Dir: dir, Heavy: heavy, Label: 77}
			var buf [EdgeRecSize]byte
			encodeEdgeRec(buf[:], rec)
			if got := decodeEdgeRec(buf[:]); got != rec {
				t.Fatalf("edge rec %+v decoded as %+v", rec, got)
			}
		}
	}
}

func TestQuickVertexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func(appID uint64, nEdges uint8, labelSeeds []uint32, payloads [][]byte) bool {
		v := &Vertex{AppID: appID}
		for i := 0; i < int(nEdges%32); i++ {
			v.Edges = append(v.Edges, EdgeRec{
				Neighbor: rma.MakeDPtr(rma.Rank(rng.Intn(8)), uint64(rng.Intn(1000)+1)),
				Dir:      Direction(rng.Intn(3)),
				Heavy:    rng.Intn(4) == 0,
				Label:    lpg.LabelID(rng.Intn(100)),
			})
		}
		for _, s := range labelSeeds {
			v.Labels = append(v.Labels, lpg.LabelID(s%500+lpg.FirstDynamicID))
		}
		for i, p := range payloads {
			if len(p) > 2000 {
				p = p[:2000]
			}
			v.Props = append(v.Props, lpg.Property{PType: lpg.PTypeID(lpg.FirstDynamicID + uint32(i)), Value: p})
		}
		for _, bs := range []int{64, 128, 512, 4096} {
			buf := EncodeVertex(v, bs)
			got, err := DecodeVertex(buf)
			if err != nil {
				return false
			}
			if got.AppID != v.AppID || len(got.Edges) != len(v.Edges) ||
				len(got.Labels) != len(v.Labels) || len(got.Props) != len(v.Props) {
				return false
			}
			for i := range v.Edges {
				if got.Edges[i] != v.Edges[i] {
					return false
				}
			}
			for i := range v.Labels {
				if got.Labels[i] != v.Labels[i] {
					return false
				}
			}
			for i := range v.Props {
				if got.Props[i].PType != v.Props[i].PType || !bytes.Equal(got.Props[i].Value, v.Props[i].Value) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionString(t *testing.T) {
	if DirOut.String() != "out" || DirIn.String() != "in" || DirUndirected.String() != "undirected" {
		t.Fatal("direction names wrong")
	}
}

func TestReplicatedVertexRoundTrip(t *testing.T) {
	v := sampleVertex()
	nb := VertexBlocks(v, 512)
	if nb != 1 {
		t.Fatalf("sample vertex spans %d blocks at 512B, want 1", nb)
	}
	v.Replicas = [][]rma.DPtr{
		{rma.MakeDPtr(1, 40)},
		{rma.MakeDPtr(2, 41)},
	}
	buf := EncodeVertex(v, 512)
	if NumReplicas(buf) != 2 {
		t.Fatalf("NumReplicas = %d, want 2", NumReplicas(buf))
	}
	if IsReplicaBlock(buf) {
		t.Fatal("primary stream carries the replica flag")
	}
	got, err := DecodeVertex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, v)
	}
}

func TestReplicatedMultiBlockVertex(t *testing.T) {
	// The replica region participates in the block-count fixed point: each
	// group stores one DPtr per block, so adding groups can itself grow the
	// block count. Groups must match the converged count exactly.
	v := &Vertex{AppID: 5, Edges: []EdgeRec{{Neighbor: rma.MakeDPtr(0, 8), Dir: DirOut}}}
	v.Props = append(v.Props, lpg.Property{PType: 30, Value: bytes.Repeat([]byte{7}, 300)})
	base := VertexBlocks(v, 128)
	group := func(r rma.Rank, n int) []rma.DPtr {
		g := make([]rma.DPtr, n)
		for i := range g {
			g[i] = rma.MakeDPtr(r, uint64(100+i))
		}
		return g
	}
	v.Replicas = [][]rma.DPtr{nil, nil}
	nb := VertexBlocks(v, 128)
	if nb < base {
		t.Fatalf("block count shrank from %d to %d after adding replica groups", base, nb)
	}
	v.Replicas = [][]rma.DPtr{group(1, nb), group(2, nb)}
	if VertexBlocks(v, 128) != nb {
		t.Fatalf("fixed point moved: %d blocks with groups sized for %d", VertexBlocks(v, 128), nb)
	}
	buf := EncodeVertex(v, 128)
	got, err := DecodeVertex(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, v)
	}
}

func TestRewriteAsReplica(t *testing.T) {
	v := &Vertex{AppID: 9}
	v.Props = append(v.Props, lpg.Property{PType: 30, Value: bytes.Repeat([]byte{3}, 300)})
	nb := VertexBlocks(v, 128)
	if nb < 2 {
		t.Fatalf("test needs a multi-block vertex, got %d blocks", nb)
	}
	group := make([]rma.DPtr, nb)
	for i := range group {
		group[i] = rma.MakeDPtr(3, uint64(200+i))
	}
	v.Replicas = [][]rma.DPtr{group}
	nb = VertexBlocks(v, 128)
	group = group[:0]
	for i := 0; i < nb; i++ {
		group = append(group, rma.MakeDPtr(3, uint64(200+i)))
	}
	v.Replicas = [][]rma.DPtr{group}
	prim := EncodeVertex(v, 128)
	for i := 1; i < nb; i++ {
		SetTableEntry(prim, i-1, rma.MakeDPtr(0, uint64(10+i)))
	}

	rep := RewriteAsReplica(prim, group)
	if !IsReplicaBlock(rep) {
		t.Fatal("rewritten stream lacks the replica flag")
	}
	if IsReplicaBlock(prim) {
		t.Fatal("RewriteAsReplica mutated its input")
	}
	for i := 1; i < nb; i++ {
		if TableEntry(rep, i-1) != group[i] {
			t.Fatalf("replica table entry %d = %v, want %v", i-1, TableEntry(rep, i-1), group[i])
		}
		if TableEntry(prim, i-1) != rma.MakeDPtr(0, uint64(10+i)) {
			t.Fatal("RewriteAsReplica mutated the primary's table")
		}
	}
	got, err := DecodeVertex(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsReplica {
		t.Fatal("decoded follower not marked IsReplica")
	}
	if got.AppID != v.AppID || !reflect.DeepEqual(got.Props, v.Props) || !reflect.DeepEqual(got.Replicas, v.Replicas) {
		t.Fatalf("follower content diverges from primary:\n got %+v\nwant %+v", got, v)
	}
}
