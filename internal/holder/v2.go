package holder

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// The v2 holder codec ("storage engine v2"): the header, block table, home
// list, and replica-group regions keep the fixed v1 layout — every in-place
// mutation the system performs on a stream (SetTableEntry, RewriteAsReplica,
// the replica flag OR) touches only those regions, so it works identically on
// both formats — while the edge and entry regions switch to delta+varint
// encodings:
//
//	edges    runs of consecutive records sharing (direction, heavy, label):
//	         uvarint run header (count<<3 | heavy<<2 | dir), uvarint label,
//	         the first neighbor DPtr as an absolute uvarint, every following
//	         neighbor as a zig-zag varint delta from its predecessor
//	entries  the package lpg varint entry format (no padding, no terminator)
//
// Records stay in insertion order — the edge UID contract (UID = record
// index, deletion is by index) forbids sorting — and the zig-zag deltas
// compress unsorted neighbors just as well when they share a rank, which is
// the common case hyper-partitioned placement produces: a run of same-rank
// neighbors costs 2–4 bytes per record instead of v1's fixed 16.
//
// A v2 stream is tagged with flagV2 in the header; DecodeVertex/DecodeEdge
// dispatch on the flag, so v1 and v2 holders coexist freely in one store and
// a store written under either codec is readable under the other. Every v2
// decode path returns an error on malformed input instead of panicking.

// Codec selects the holder wire format an engine writes. Decoding always
// auto-detects per stream, so the codec choice never affects readability.
type Codec uint8

const (
	// CodecV1 is the fixed-width format: 16-byte edge records, padded
	// 8-byte-header entries. The default and the ablation baseline.
	CodecV1 Codec = iota
	// CodecV2 is the compressed format: delta+varint edge runs, varint
	// entries, and the inline single-block flag.
	CodecV2
)

// String names the codec.
func (c Codec) String() string {
	switch c {
	case CodecV1:
		return "v1"
	case CodecV2:
		return "v2"
	default:
		return fmt.Sprintf("Codec(%d)", uint8(c))
	}
}

// ParseCodec parses a -holder-codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "v1", "1", "":
		return CodecV1, nil
	case "v2", "2":
		return CodecV2, nil
	default:
		return CodecV1, fmt.Errorf("holder: unknown codec %q (want v1 or v2)", s)
	}
}

// edgesSizeV2 returns the encoded byte size of recs in the v2 run format
// without building the region.
func edgesSizeV2(recs []EdgeRec) int {
	size := 0
	for i := 0; i < len(recs); {
		r0 := recs[i]
		j := i + 1
		for j < len(recs) && recs[j].Dir == r0.Dir && recs[j].Heavy == r0.Heavy && recs[j].Label == r0.Label {
			j++
		}
		size += lpg.UvarintLen(uint64(j-i)<<3) + lpg.UvarintLen(uint64(r0.Label)) +
			lpg.UvarintLen(uint64(r0.Neighbor))
		prev := uint64(r0.Neighbor)
		for k := i + 1; k < j; k++ {
			nb := uint64(recs[k].Neighbor)
			size += lpg.VarintLen(int64(nb) - int64(prev))
			prev = nb
		}
		i = j
	}
	return size
}

// appendEdgesV2 encodes recs into the v2 run format.
func appendEdgesV2(dst []byte, recs []EdgeRec) []byte {
	for i := 0; i < len(recs); {
		r0 := recs[i]
		j := i + 1
		for j < len(recs) && recs[j].Dir == r0.Dir && recs[j].Heavy == r0.Heavy && recs[j].Label == r0.Label {
			j++
		}
		hdr := uint64(j-i)<<3 | uint64(r0.Dir)&0x3
		if r0.Heavy {
			hdr |= 1 << 2
		}
		dst = binary.AppendUvarint(dst, hdr)
		dst = binary.AppendUvarint(dst, uint64(r0.Label))
		dst = binary.AppendUvarint(dst, uint64(r0.Neighbor))
		prev := uint64(r0.Neighbor)
		for k := i + 1; k < j; k++ {
			nb := uint64(recs[k].Neighbor)
			dst = binary.AppendVarint(dst, int64(nb)-int64(prev))
			prev = nb
		}
		i = j
	}
	return dst
}

// forEachEdgeV2 parses a v2 edge region in place, calling fn for each of the
// numEdges records in order, and returns the region's byte length. fn may be
// nil (a validating/measuring walk). It never panics on corrupt input.
func forEachEdgeV2(buf []byte, numEdges int, fn func(EdgeRec) bool) (consumed int, err error) {
	off, decoded := 0, 0
	for decoded < numEdges {
		hdr, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, fmt.Errorf("holder: malformed v2 run header at offset %d", off)
		}
		off += n
		count := int(hdr >> 3)
		if count <= 0 || count > numEdges-decoded {
			return 0, fmt.Errorf("holder: v2 run of %d records, %d remaining", count, numEdges-decoded)
		}
		dir := Direction(hdr & 0x3)
		if dir > DirUndirected {
			return 0, fmt.Errorf("holder: v2 run with direction %d", dir)
		}
		heavy := hdr&(1<<2) != 0
		label, n := binary.Uvarint(buf[off:])
		if n <= 0 || label > math.MaxUint32 {
			return 0, fmt.Errorf("holder: malformed v2 run label at offset %d", off)
		}
		off += n
		first, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, fmt.Errorf("holder: malformed v2 neighbor at offset %d", off)
		}
		off += n
		nbr := first
		for k := 0; k < count; k++ {
			if k > 0 {
				delta, n := binary.Varint(buf[off:])
				if n <= 0 {
					return 0, fmt.Errorf("holder: malformed v2 delta at offset %d", off)
				}
				off += n
				nbr = uint64(int64(nbr) + delta)
			}
			if fn != nil && !fn(EdgeRec{
				Neighbor: rma.DPtr(nbr),
				Dir:      dir,
				Heavy:    heavy,
				Label:    lpg.LabelID(label),
			}) {
				fn = nil // early stop: keep walking to measure the region
			}
		}
		decoded += count
	}
	return off, nil
}

// contentSizeVertexV2 returns the logical v2 byte size of v excluding slack,
// with the edge and entry region sizes precomputed by the caller (they do
// not depend on the block count, so the fixed point recomputes only the
// fixed-width regions).
func contentSizeVertexV2(v *Vertex, numBlocks, edgeBytes, entryBytes int) int {
	return HeaderSize + 8*(numBlocks-1) + 8*len(v.Homes) + 8*len(v.Replicas)*numBlocks +
		edgeBytes + entryBytes
}

// vertexBlocksV2 returns how many blocks v needs at the given block size
// under the v2 codec.
func vertexBlocksV2(v *Vertex, blockSize int) int {
	edgeBytes := edgesSizeV2(v.Edges)
	entryBytes := lpg.EntriesSizeVar(v.Labels, v.Props)
	return blocksFor(func(n int) int { return contentSizeVertexV2(v, n, edgeBytes, entryBytes) }, blockSize)
}

// encodeVertexV2 serializes v into a v2 logical stream of exactly
// vertexBlocksV2(v)·blockSize bytes. Like EncodeVertex, the block table is
// zeroed for the caller to fill.
func encodeVertexV2(v *Vertex, blockSize int) []byte {
	edgeBytes := edgesSizeV2(v.Edges)
	entryRegion := lpg.EncodeEntriesVar(v.Labels, v.Props)
	numBlocks := blocksFor(func(n int) int { return contentSizeVertexV2(v, n, edgeBytes, len(entryRegion)) }, blockSize)
	buf := make([]byte, numBlocks*blockSize)

	flags := uint32(flagV2)
	if v.IsReplica {
		flags |= flagReplica
	}
	if numBlocks == 1 {
		flags |= flagInline
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(numBlocks))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(v.Edges)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(entryRegion)))
	binary.LittleEndian.PutUint32(buf[12:], flags)
	binary.LittleEndian.PutUint64(buf[16:], v.AppID)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(v.Homes)))
	binary.LittleEndian.PutUint32(buf[28:], uint32(len(v.Replicas)))

	off := HeaderSize + 8*(numBlocks-1)
	for _, h := range v.Homes {
		binary.LittleEndian.PutUint64(buf[off:], uint64(h))
		off += 8
	}
	for gi, group := range v.Replicas {
		if len(group) != numBlocks {
			panic(fmt.Sprintf("holder: replica group %d has %d blocks, holder has %d", gi, len(group), numBlocks))
		}
		for _, dp := range group {
			binary.LittleEndian.PutUint64(buf[off:], uint64(dp))
			off += 8
		}
	}
	// Append in place: buf[:off] has capacity for the whole stream, so the
	// varint appends land directly in the slack-backed buffer.
	edges := appendEdgesV2(buf[:off], v.Edges)
	if len(edges) != off+edgeBytes {
		panic(fmt.Sprintf("holder: v2 edge region of %d bytes, sized %d", len(edges)-off, edgeBytes))
	}
	copy(buf[off+edgeBytes:], entryRegion)
	return buf
}

// decodeVertexV2 parses a v2 logical stream; checkHeader has already
// validated the prefix and flags.
func decodeVertexV2(buf []byte, numBlocks int, flags uint32) (*Vertex, error) {
	numEdges := int(binary.LittleEndian.Uint32(buf[4:]))
	entryBytes := int(binary.LittleEndian.Uint32(buf[8:]))
	numHomes := int(binary.LittleEndian.Uint32(buf[24:]))
	numReplicas := int(binary.LittleEndian.Uint32(buf[28:]))
	v := &Vertex{AppID: binary.LittleEndian.Uint64(buf[16:]), IsReplica: flags&flagReplica != 0, Codec: CodecV2}
	off, err := fixedRegionsEnd(buf, numBlocks, numHomes, numReplicas)
	if err != nil {
		return nil, err
	}
	if numHomes > 0 {
		v.Homes = make([]rma.DPtr, 0, numHomes)
		for i := 0; i < numHomes; i++ {
			v.Homes = append(v.Homes, rma.DPtr(binary.LittleEndian.Uint64(buf[off:])))
			off += 8
		}
	}
	if numReplicas > 0 {
		v.Replicas = make([][]rma.DPtr, numReplicas)
		for g := range v.Replicas {
			group := make([]rma.DPtr, numBlocks)
			for i := range group {
				group[i] = rma.DPtr(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			v.Replicas[g] = group
		}
	}
	if numEdges > 0 {
		if numEdges > len(buf)-off {
			return nil, fmt.Errorf("holder: v2 holder claims %d edges in %d bytes", numEdges, len(buf)-off)
		}
		v.Edges = make([]EdgeRec, 0, numEdges)
		consumed, err := forEachEdgeV2(buf[off:], numEdges, func(rec EdgeRec) bool {
			v.Edges = append(v.Edges, rec)
			return true
		})
		if err != nil {
			return nil, err
		}
		off += consumed
	}
	if entryBytes > len(buf)-off {
		return nil, fmt.Errorf("holder: truncated v2 entry region (%d bytes, %d left)", entryBytes, len(buf)-off)
	}
	v.Labels, v.Props, err = lpg.SplitEntriesVar(buf[off : off+entryBytes])
	if err != nil {
		return nil, err
	}
	return v, nil
}

// fixedRegionsEnd bound-checks the fixed-width regions (table, homes,
// replica groups) against the buffer and returns the offset of the first
// variable region. Shared by both decoders; every arithmetic step is guarded
// so arbitrary header values cannot overflow into a false bound.
func fixedRegionsEnd(buf []byte, numBlocks, numHomes, numReplicas int) (int, error) {
	n := len(buf)
	// Each count is first bounded by what could possibly fit in the buffer
	// (8 bytes per word), so the product below cannot overflow a 64-bit int
	// before it is compared against the real bound.
	if numBlocks > n/8+1 || numHomes > n/8 || numReplicas > n/8 {
		return 0, fmt.Errorf("holder: corrupt header (%d blocks, %d homes, %d replicas, %d bytes)",
			numBlocks, numHomes, numReplicas, n)
	}
	off := HeaderSize + 8*(numBlocks-1)
	if end := off + 8*numHomes + 8*numReplicas*numBlocks; end > n {
		return 0, fmt.Errorf("holder: truncated holder (%d blocks, %d homes, %d replicas, %d bytes)",
			numBlocks, numHomes, numReplicas, n)
	}
	return off, nil
}

// EncodeVertexCodec serializes v under the given codec. CodecV1 produces the
// seed fixed-width format; CodecV2 the compressed format.
func EncodeVertexCodec(v *Vertex, blockSize int, c Codec) []byte {
	if c == CodecV2 {
		return encodeVertexV2(v, blockSize)
	}
	return EncodeVertex(v, blockSize)
}

// VertexBlocksCodec returns how many blocks v needs at the given block size
// under the given codec. It always agrees with len(EncodeVertexCodec)/blockSize.
func VertexBlocksCodec(v *Vertex, blockSize int, c Codec) int {
	if c == CodecV2 {
		return vertexBlocksV2(v, blockSize)
	}
	return VertexBlocks(v, blockSize)
}

// contentSizeEdgeV2 returns the logical v2 byte size of e excluding slack.
func contentSizeEdgeV2(e *Edge, numBlocks, entryBytes int) int {
	return HeaderSize + 8*(numBlocks-1) + 8 + entryBytes
}

// edgeBlocksV2 returns how many blocks e needs under the v2 codec.
func edgeBlocksV2(e *Edge, blockSize int) int {
	entryBytes := lpg.EntriesSizeVar(e.Labels, e.Props)
	return blocksFor(func(n int) int { return contentSizeEdgeV2(e, n, entryBytes) }, blockSize)
}

// encodeEdgeV2 serializes a heavy-edge holder under the v2 codec: the fixed
// endpoint header and direction word stay, the entry region goes varint.
func encodeEdgeV2(e *Edge, blockSize int) []byte {
	entryRegion := lpg.EncodeEntriesVar(e.Labels, e.Props)
	numBlocks := blocksFor(func(n int) int { return contentSizeEdgeV2(e, n, len(entryRegion)) }, blockSize)
	buf := make([]byte, numBlocks*blockSize)

	flags := uint32(flagEdgeHolder | flagV2)
	if numBlocks == 1 {
		flags |= flagInline
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(numBlocks))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(entryRegion)))
	binary.LittleEndian.PutUint32(buf[12:], flags)
	binary.LittleEndian.PutUint64(buf[16:], uint64(e.Origin))
	binary.LittleEndian.PutUint64(buf[24:], uint64(e.Target))

	off := HeaderSize + 8*(numBlocks-1)
	binary.LittleEndian.PutUint32(buf[off:], uint32(e.Dir))
	off += 8
	copy(buf[off:], entryRegion)
	return buf
}

// EncodeEdgeCodec serializes a heavy-edge holder under the given codec.
func EncodeEdgeCodec(e *Edge, blockSize int, c Codec) []byte {
	if c == CodecV2 {
		return encodeEdgeV2(e, blockSize)
	}
	return EncodeEdge(e, blockSize)
}

// EdgeBlocksCodec returns how many blocks e needs under the given codec.
func EdgeBlocksCodec(e *Edge, blockSize int, c Codec) int {
	if c == CodecV2 {
		return edgeBlocksV2(e, blockSize)
	}
	return EdgeBlocks(e, blockSize)
}
