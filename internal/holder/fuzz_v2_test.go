package holder

import (
	"testing"

	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/rma"
)

// vertexFromBytes derives a full fuzz vertex — edge records plus labels and
// properties — from raw input, reusing recordsFromBytes for the edge list.
func vertexFromBytes(data []byte) *Vertex {
	var appID uint64
	for i, b := range data {
		appID |= uint64(b) << (8 * (i % 8))
	}
	v := &Vertex{AppID: appID, Edges: recordsFromBytes(data)}
	for i := 0; i+1 < len(data) && i < 10; i += 2 {
		if data[i]%2 == 0 {
			v.Labels = append(v.Labels, lpg.LabelID(uint32(data[i])<<8|uint32(data[i+1])))
		} else {
			v.Props = append(v.Props, lpg.Property{
				PType: lpg.PTypeID(lpg.FirstDynamicID + uint32(data[i])),
				Value: data[i+1 : min(len(data), i+1+int(data[i+1])%9)],
			})
		}
	}
	if len(data) > 2 {
		for i := 0; i < int(data[0]%3); i++ {
			v.Homes = append(v.Homes, rma.MakeDPtr(rma.Rank(data[1])+rma.Rank(i), uint64(data[2])))
		}
	}
	return v
}

// FuzzVarintEdgeRun exercises the v2 delta+varint edge-run codec at both
// ends: arbitrary bytes through the run decoder must error — never panic —
// and records derived from the input must survive encode→decode bit-exactly,
// with the measured size matching the encoder's output.
func FuzzVarintEdgeRun(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{9, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, uint16(3))
	f.Add([]byte{0x0b, 0x10, 0x64, 0x06, 0x04}, uint16(2)) // one well-formed run header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		// Raw bytes into the decoder with a fuzzed record count: must never
		// panic, and on success must have consumed no more than the buffer.
		count := int(n) % 1024
		var raw []EdgeRec
		consumed, err := forEachEdgeV2(data, count, func(rec EdgeRec) bool {
			raw = append(raw, rec)
			return true
		})
		if err == nil {
			if consumed > len(data) {
				t.Fatalf("consumed %d of %d bytes", consumed, len(data))
			}
			if len(raw) != count {
				t.Fatalf("decoded %d records, asked for %d", len(raw), count)
			}
		}

		// Derived records: encode, check the size accounting, decode back.
		recs := recordsFromBytes(data)
		enc := appendEdgesV2(nil, recs)
		if len(enc) != edgesSizeV2(recs) {
			t.Fatalf("encoded %d bytes, edgesSizeV2 said %d", len(enc), edgesSizeV2(recs))
		}
		var got []EdgeRec
		consumed, err = forEachEdgeV2(enc, len(recs), func(rec EdgeRec) bool {
			got = append(got, rec)
			return true
		})
		if err != nil {
			t.Fatalf("decode of freshly encoded runs: %v", err)
		}
		if consumed != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", consumed, len(enc))
		}
		sameRecords(t, got, recs)

		// Early stop must still report the full region length (the View
		// layout pass depends on it).
		if len(recs) > 1 {
			stopped, err := forEachEdgeV2(enc, len(recs), func(EdgeRec) bool { return false })
			if err != nil || stopped != len(enc) {
				t.Fatalf("early-stop walk: consumed %d (err %v), want %d", stopped, err, len(enc))
			}
		}
	})
}

// FuzzHolderV2RoundTrip drives the whole v2 vertex-holder codec: v2
// encode→decode identity (including the View iterators), v1→v2→v1 content
// equality for mixed-codec stores, and arbitrary bytes through DecodeVertex
// and View.Reset, which must reject corruption with an error, never a panic.
func FuzzHolderV2RoundTrip(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{9, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, byte(1))
	f.Add([]byte{39, 7, 255, 254, 253, 252, 251, 250, 2, 1, 0, 77}, byte(2))
	f.Add([]byte{16, 0, 1, 0, 0, 0, 1, 0, 1, 16, 0, 1, 0, 0, 0, 1, 2, 32}, byte(3))
	f.Fuzz(func(t *testing.T, data []byte, sizeSel byte) {
		// Arbitrary bytes are a holder stream from a hostile rank: both
		// decode entry points must fail cleanly.
		if v, err := DecodeVertex(data); err == nil && v == nil {
			t.Fatal("DecodeVertex returned nil, nil")
		}
		var w View
		_ = w.Reset(data)

		blockSize := []int{64, 72, 128, 512}[int(sizeSel)%4]
		v := vertexFromBytes(data)

		stream := EncodeVertexCodec(v, blockSize, CodecV2)
		nb := VertexBlocksCodec(v, blockSize, CodecV2)
		if len(stream) != nb*blockSize {
			t.Fatalf("stream of %d bytes for %d blocks of %d", len(stream), nb, blockSize)
		}
		if NumBlocks(stream) != nb {
			t.Fatalf("header says %d blocks, layout computed %d", NumBlocks(stream), nb)
		}
		if Inline(stream) != (nb == 1) {
			t.Fatalf("inline flag %v with %d blocks", Inline(stream), nb)
		}
		got, err := DecodeVertex(stream)
		if err != nil {
			t.Fatalf("v2 decode: %v (%d records, block size %d)", err, len(v.Edges), blockSize)
		}
		if got.Codec != CodecV2 {
			t.Fatalf("decoded codec %v", got.Codec)
		}
		sameVertexContent(t, got, v)

		// The zero-copy view must agree with the materializing decoder.
		if err := w.Reset(stream); err != nil {
			t.Fatalf("view reset on fresh v2 stream: %v", err)
		}
		if w.NumEdges() != len(v.Edges) || w.AppID() != v.AppID {
			t.Fatalf("view header %d/%d, want %d/%d", w.NumEdges(), w.AppID(), len(v.Edges), v.AppID)
		}
		sameRecords(t, w.AppendEdges(nil), v.Edges)

		// v1 → v2 → v1: content equality across both conversions, the
		// invariant migration and promotion rely on when they re-encode a
		// holder under a different engine codec.
		s1 := EncodeVertexCodec(v, blockSize, CodecV1)
		d1, err := DecodeVertex(s1)
		if err != nil {
			t.Fatalf("v1 decode: %v", err)
		}
		s2 := EncodeVertexCodec(d1, blockSize, CodecV2)
		d2, err := DecodeVertex(s2)
		if err != nil {
			t.Fatalf("v1→v2 decode: %v", err)
		}
		s3 := EncodeVertexCodec(d2, blockSize, CodecV1)
		d3, err := DecodeVertex(s3)
		if err != nil {
			t.Fatalf("v2→v1 decode: %v", err)
		}
		sameVertexContent(t, d3, d1)
	})
}
