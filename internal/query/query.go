// Package query is the declarative traversal/pattern-match front end over
// the transactional core: k-hop expansion with per-hop direction masks and
// label/property predicates, triangle and fixed-length simple-path motifs,
// plus a limit/projection step — the interactive-query taxonomy of
// "Demystifying Graph Databases" compiled onto the engine's future/batch
// API.
//
// The compiled executor (Run) turns every hop into ONE batched association
// round: the frontier is deduped and handed to core.Tx.ExpandFrontier, which
// groups the fetches by owner rank into one vectored GET train per rank,
// folds forwarding-stub chases and multi-block continuation reads into the
// following rounds of the same flush, and serves replica- and cache-eligible
// fetches with no traffic at all. A k-hop pattern therefore costs k+1
// association rounds regardless of frontier width, where the naive reference
// (RunNaive) pays one scalar AssociateVertex round-trip per frontier vertex.
// Both executors return canonically sorted rows, so their results are
// bit-identical — the golden-equivalence contract the tests pin across both
// holder codecs and replicated stores.
package query

import (
	"errors"
	"fmt"
	"sort"

	"github.com/gdi-go/gdi/internal/constraint"
	"github.com/gdi-go/gdi/internal/core"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/lpg"
)

// Kind selects the match shape.
type Kind uint8

const (
	// KHop matches the vertices reached after exactly len(Hops) expansion
	// steps (BFS layering: a vertex reached at an earlier hop is not
	// re-reported at a later one). Rows carry one vertex.
	KHop Kind = iota
	// Triangle matches triangles through the source: pairs of neighbors
	// (b, c) of the source that are themselves adjacent, under Hops[0]'s
	// mask and predicate. Rows carry (src, b, c) with b < c.
	Triangle
	// Path matches simple paths of exactly len(Hops) edges rooted at the
	// source, each hop under its own mask and predicate; no vertex repeats
	// inside one path. Rows carry the full path, source first.
	Path
)

func (k Kind) String() string {
	switch k {
	case KHop:
		return "k-hop"
	case Triangle:
		return "triangle"
	case Path:
		return "path"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Hop is one expansion step: which edge directions to follow and which
// predicate the vertices reached by the step must satisfy (nil = all).
type Hop struct {
	Mask core.DirMask
	Cons *constraint.Constraint
}

// Pattern is a declarative match request rooted at one source vertex.
type Pattern struct {
	Kind Kind
	// Hops drives KHop and Path shapes hop by hop. Triangle uses Hops[0]
	// (mask + predicate on both far corners); it defaults to MaskAll/nil
	// when absent.
	Hops []Hop
	// Limit caps the rows returned, applied AFTER the canonical sort so a
	// limited result is a deterministic prefix; 0 means unlimited.
	Limit int
	// Project, when HasProject, attaches the named property of each row's
	// last vertex to the row.
	Project    lpg.PTypeID
	HasProject bool
}

// Row is one match: the witnessing vertices (length depends on Kind) and,
// under projection, the projected property of the last vertex.
type Row struct {
	Verts []fabric.DPtr
	Prop  []byte
	OK    bool // projection present on the vertex
}

// Result is a canonically ordered set of rows: sorted lexicographically by
// Verts, deduped, then cut to Pattern.Limit.
type Result struct {
	Rows []Row
}

// Errors returned by pattern validation.
var (
	ErrBadPattern = errors.New("query: bad pattern")
)

// Validate rejects patterns the executors cannot run.
func (p *Pattern) Validate() error {
	switch p.Kind {
	case KHop, Path:
		if len(p.Hops) == 0 {
			return fmt.Errorf("%w: %s needs at least one hop", ErrBadPattern, p.Kind)
		}
	case Triangle:
		if len(p.Hops) > 1 {
			return fmt.Errorf("%w: triangle takes at most one hop spec", ErrBadPattern)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadPattern, uint8(p.Kind))
	}
	if len(p.Hops) > MaxHops {
		return fmt.Errorf("%w: %d hops exceeds the limit of %d", ErrBadPattern, len(p.Hops), MaxHops)
	}
	for i, h := range p.Hops {
		if h.Mask == 0 || h.Mask&^core.MaskAll != 0 {
			return fmt.Errorf("%w: hop %d has invalid direction mask %#x", ErrBadPattern, i, uint8(h.Mask))
		}
	}
	if p.Limit < 0 {
		return fmt.Errorf("%w: negative limit", ErrBadPattern)
	}
	return nil
}

// expander abstracts the one operation the two executors differ in: resolve
// a frontier to handles. The compiled expander batches the whole frontier
// into one association round; the naive one pays a scalar association per
// vertex. Everything downstream — predicate filtering, dedup, harvest order,
// canonical sort — is shared, which is what makes the golden-equivalence
// guarantee structural rather than coincidental.
type expander func(frontier []fabric.DPtr, mask core.DirMask, cons *constraint.Constraint) ([]*core.VertexHandle, []fabric.DPtr, error)

// Run executes the pattern with the compiled frontier-batched plan: one
// association round (one train per owner rank) per hop.
func Run(tx *core.Tx, src fabric.DPtr, p *Pattern) (*Result, error) {
	return run(tx, src, p, tx.ExpandFrontier)
}

// RunNaive executes the pattern with the per-vertex reference walk: one
// scalar AssociateVertex per frontier vertex per hop. It exists as the
// golden reference and the ablation baseline.
func RunNaive(tx *core.Tx, src fabric.DPtr, p *Pattern) (*Result, error) {
	return run(tx, src, p, naiveExpand(tx))
}

func run(tx *core.Tx, src fabric.DPtr, p *Pattern, ex expander) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var (
		rows []Row
		err  error
	)
	switch p.Kind {
	case KHop:
		rows, err = runKHop(src, p, ex)
	case Triangle:
		rows, err = runTriangle(src, p, ex)
	case Path:
		rows, err = runPath(src, p, ex)
	}
	if err != nil {
		return nil, err
	}
	return finish(tx, p, rows)
}

// runKHop is BFS layering: round i associates the layer-i frontier (one
// train per rank under the compiled expander), filters it by the predicate
// of the hop that reached it, and harvests the next layer under hop i's
// mask. Visited vertices never re-enter a frontier, so a k-hop costs exactly
// k+1 association rounds.
func runKHop(src fabric.DPtr, p *Pattern, ex expander) ([]Row, error) {
	frontier := []fabric.DPtr{src}
	visited := map[fabric.DPtr]struct{}{src: {}}
	var last []*core.VertexHandle
	for i := 0; i <= len(p.Hops); i++ {
		var cons *constraint.Constraint
		if i > 0 {
			cons = p.Hops[i-1].Cons
		}
		mask := core.DirMask(0) // final round: associate + filter only
		if i < len(p.Hops) {
			mask = p.Hops[i].Mask
		}
		matched, next, err := ex(frontier, mask, cons)
		if err != nil {
			return nil, err
		}
		last = matched
		frontier = frontier[:0]
		for _, nb := range next {
			if _, seen := visited[nb]; !seen {
				visited[nb] = struct{}{}
				frontier = append(frontier, nb)
			}
		}
	}
	rows := make([]Row, 0, len(last))
	for _, h := range last {
		rows = append(rows, Row{Verts: []fabric.DPtr{h.ID()}})
	}
	return rows, nil
}

// runTriangle closes wedges: associate the source's neighbors in one round,
// keep those matching the predicate, and report every matched pair that is
// itself adjacent under the same mask. Two association rounds total.
func runTriangle(src fabric.DPtr, p *Pattern, ex expander) ([]Row, error) {
	hop := Hop{Mask: core.MaskAll}
	if len(p.Hops) == 1 {
		hop = p.Hops[0]
	}
	_, nbs, err := ex([]fabric.DPtr{src}, hop.Mask, nil)
	if err != nil {
		return nil, err
	}
	corners := nbs[:0]
	for _, nb := range nbs {
		if nb != src {
			corners = append(corners, nb)
		}
	}
	matched, _, err := ex(corners, 0, hop.Cons)
	if err != nil {
		return nil, err
	}
	inSet := make(map[fabric.DPtr]struct{}, len(matched))
	for _, h := range matched {
		inSet[h.ID()] = struct{}{}
	}
	var rows []Row
	for _, hb := range matched {
		b := hb.ID()
		if err := hb.ForEachNeighbor(hop.Mask, func(c fabric.DPtr) {
			if c <= b {
				return // each closing edge reports once, b < c
			}
			if _, ok := inSet[c]; ok {
				rows = append(rows, Row{Verts: []fabric.DPtr{src, b, c}})
			}
		}); err != nil {
			return nil, err
		}
	}
	return dedupRows(rows), nil
}

// runPath enumerates simple paths level by level: round i associates the
// distinct depth-i path tails in one train per rank, prunes paths whose tail
// fails the predicate of the hop that reached it, and extends the survivors
// under hop i's mask, skipping vertices already on the path.
func runPath(src fabric.DPtr, p *Pattern, ex expander) ([]Row, error) {
	paths := [][]fabric.DPtr{{src}}
	for i := 0; i <= len(p.Hops); i++ {
		var cons *constraint.Constraint
		if i > 0 {
			cons = p.Hops[i-1].Cons
		}
		// One association round for ALL tails at this depth.
		var tails []fabric.DPtr
		tailSeen := make(map[fabric.DPtr]struct{})
		for _, path := range paths {
			t := path[len(path)-1]
			if _, dup := tailSeen[t]; !dup {
				tailSeen[t] = struct{}{}
				tails = append(tails, t)
			}
		}
		matched, _, err := ex(tails, 0, cons)
		if err != nil {
			return nil, err
		}
		byTail := make(map[fabric.DPtr]*core.VertexHandle, len(matched))
		for _, h := range matched {
			byTail[h.ID()] = h
		}
		if i == len(p.Hops) {
			// Final depth: keep paths whose tail survived the last predicate.
			kept := paths[:0]
			for _, path := range paths {
				if _, ok := byTail[path[len(path)-1]]; ok {
					kept = append(kept, path)
				}
			}
			paths = kept
			break
		}
		var next [][]fabric.DPtr
		for _, path := range paths {
			h, ok := byTail[path[len(path)-1]]
			if !ok {
				continue
			}
			if err := h.ForEachNeighbor(p.Hops[i].Mask, func(nb fabric.DPtr) {
				for _, v := range path {
					if v == nb {
						return // simple paths only
					}
				}
				ext := make([]fabric.DPtr, len(path)+1)
				copy(ext, path)
				ext[len(path)] = nb
				next = append(next, ext)
			}); err != nil {
				return nil, err
			}
		}
		paths = next
	}
	rows := make([]Row, 0, len(paths))
	for _, path := range paths {
		rows = append(rows, Row{Verts: path})
	}
	return dedupRows(rows), nil
}

// naiveExpand mirrors core.Tx.ExpandFrontier vertex by vertex: same dedup,
// same filter, same harvest order — but one scalar association round-trip
// per frontier vertex.
func naiveExpand(tx *core.Tx) expander {
	return func(frontier []fabric.DPtr, mask core.DirMask, cons *constraint.Constraint) ([]*core.VertexHandle, []fabric.DPtr, error) {
		var matched []*core.VertexHandle
		seenV := make(map[fabric.DPtr]struct{}, len(frontier))
		for _, dp := range frontier {
			h, err := tx.AssociateVertex(dp)
			if err != nil {
				return nil, nil, err
			}
			if _, dup := seenV[h.ID()]; dup {
				continue
			}
			seenV[h.ID()] = struct{}{}
			if h.Matches(cons) {
				matched = append(matched, h)
			}
		}
		if mask == 0 {
			return matched, nil, nil
		}
		var next []fabric.DPtr
		seenN := make(map[fabric.DPtr]struct{})
		for _, h := range matched {
			if err := h.ForEachNeighbor(mask, func(nb fabric.DPtr) {
				if _, dup := seenN[nb]; !dup {
					seenN[nb] = struct{}{}
					next = append(next, nb)
				}
			}); err != nil {
				return nil, nil, err
			}
		}
		return matched, next, nil
	}
}

// finish sorts rows canonically, applies the limit, and resolves the
// projection. Projection targets are already associated by the final
// round, so this is communication-free under both executors.
func finish(tx *core.Tx, p *Pattern, rows []Row) (*Result, error) {
	sort.Slice(rows, func(i, j int) bool { return lessVerts(rows[i].Verts, rows[j].Verts) })
	if p.Limit > 0 && len(rows) > p.Limit {
		rows = rows[:p.Limit]
	}
	if p.HasProject {
		for i := range rows {
			h, err := tx.AssociateVertexAsync(rows[i].Verts[len(rows[i].Verts)-1]).Wait()
			if err != nil {
				return nil, err
			}
			rows[i].Prop, rows[i].OK = h.Property(p.Project)
		}
	}
	return &Result{Rows: rows}, nil
}

func lessVerts(a, b []fabric.DPtr) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// dedupRows removes duplicate witness tuples (paths revisited through
// parallel edges, wedges closed by multi-edges) without disturbing order;
// finish sorts afterwards anyway.
func dedupRows(rows []Row) []Row {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := vertsKey(r.Verts)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

func vertsKey(vs []fabric.DPtr) string {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = append(b,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}
