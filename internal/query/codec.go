package query

import (
	"encoding/binary"
	"fmt"

	"github.com/gdi-go/gdi/internal/constraint"
	"github.com/gdi-go/gdi/internal/core"
	"github.com/gdi-go/gdi/internal/lpg"
)

// The pattern wire format: how a driver ships a Pattern (and its DNF
// predicates) to the rank that runs it. Varint-heavy little-endian layout,
// one byte of magic and one of version so the format can evolve:
//
//	'Q' ver kind limit hasProject [project] nhops
//	  hop*: mask consPresent [version nsubs sub*]
//	  sub*:  nlabels (label absent)* nprops (ptype datatype op len operand)*
//
// Decode is total over adversarial input: every count is bounded, every
// enum checked, and a decoded pattern always re-encodes to the same bytes
// (the canonical-form property FuzzQueryPattern pins).

// Wire-format bounds. Decode rejects anything larger, so a hostile pattern
// cannot balloon memory.
const (
	codecMagic   = 'Q'
	codecVersion = 1

	// MaxHops bounds traversal depth (and Validate enforces it too).
	MaxHops = 16
	// MaxLimit bounds the row cap a pattern may request.
	MaxLimit = 1 << 20
	// MaxSubs, MaxConds and MaxOperand bound one predicate's DNF size.
	MaxSubs    = 16
	MaxConds   = 16
	MaxOperand = 1 << 12
)

// Encode appends the pattern's canonical wire form to dst.
func Encode(dst []byte, p *Pattern) []byte {
	dst = append(dst, codecMagic, codecVersion, byte(p.Kind))
	dst = binary.AppendUvarint(dst, uint64(p.Limit))
	if p.HasProject {
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(p.Project))
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(p.Hops)))
	for _, h := range p.Hops {
		dst = append(dst, byte(h.Mask))
		if h.Cons == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, h.Cons.Version)
		dst = binary.AppendUvarint(dst, uint64(len(h.Cons.Subs)))
		for _, sub := range h.Cons.Subs {
			dst = binary.AppendUvarint(dst, uint64(len(sub.Labels)))
			for _, lc := range sub.Labels {
				dst = binary.AppendUvarint(dst, uint64(lc.Label))
				if lc.Absent {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
			dst = binary.AppendUvarint(dst, uint64(len(sub.Props)))
			for _, pc := range sub.Props {
				dst = binary.AppendUvarint(dst, uint64(pc.PType))
				dst = append(dst, byte(pc.Datatype), byte(pc.Op))
				dst = binary.AppendUvarint(dst, uint64(len(pc.Operand)))
				dst = append(dst, pc.Operand...)
			}
		}
	}
	return dst
}

// decoder walks the wire form with bounds checking.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("query: decode: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated at %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("flag byte not 0/1 at %d", d.off-1)
		return false
	}
}

func (d *decoder) uvarint(max uint64, what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint (%s) at %d", what, d.off)
		return 0
	}
	d.off += n
	if v > max {
		d.fail("%s %d exceeds %d", what, v, max)
		return 0
	}
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated operand at %d", d.off)
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return b
}

// Decode parses one canonical pattern. It rejects trailing bytes, so
// Decode∘Encode is the identity in both directions.
func Decode(buf []byte) (*Pattern, error) {
	d := &decoder{buf: buf}
	if d.byte() != codecMagic || d.byte() != codecVersion {
		d.fail("bad magic/version")
	}
	p := &Pattern{Kind: Kind(d.byte())}
	if d.err == nil && p.Kind > Path {
		d.fail("unknown kind %d", uint8(p.Kind))
	}
	p.Limit = int(d.uvarint(MaxLimit, "limit"))
	if p.HasProject = d.bool(); p.HasProject {
		p.Project = lpg.PTypeID(d.uvarint(1<<32-1, "project ptype"))
	}
	nhops := int(d.uvarint(MaxHops, "hop count"))
	for i := 0; i < nhops && d.err == nil; i++ {
		h := Hop{Mask: core.DirMask(d.byte())}
		if d.err == nil && (h.Mask == 0 || h.Mask&^core.MaskAll != 0) {
			d.fail("hop %d: invalid mask %#x", i, uint8(h.Mask))
		}
		if d.bool() {
			h.Cons = d.constraint(i)
		}
		p.Hops = append(p.Hops, h)
	}
	if d.err == nil && d.off != len(buf) {
		d.fail("%d trailing bytes", len(buf)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (d *decoder) constraint(hop int) *constraint.Constraint {
	c := &constraint.Constraint{Version: d.uvarint(1<<62, "constraint version")}
	nsubs := int(d.uvarint(MaxSubs, "subconstraint count"))
	for s := 0; s < nsubs && d.err == nil; s++ {
		var sub constraint.Subconstraint
		nlabels := int(d.uvarint(MaxConds, "label cond count"))
		for i := 0; i < nlabels && d.err == nil; i++ {
			sub.Labels = append(sub.Labels, constraint.LabelCond{
				Label:  lpg.LabelID(d.uvarint(1<<32-1, "label")),
				Absent: d.bool(),
			})
		}
		nprops := int(d.uvarint(MaxConds, "prop cond count"))
		for i := 0; i < nprops && d.err == nil; i++ {
			pc := constraint.PropCond{
				PType:    lpg.PTypeID(d.uvarint(1<<32-1, "ptype")),
				Datatype: lpg.Datatype(d.byte()),
				Op:       constraint.Op(d.byte()),
			}
			if d.err == nil && pc.Op > constraint.OpPrefix {
				d.fail("hop %d: unknown op %d", hop, uint8(pc.Op))
			}
			pc.Operand = d.bytes(int(d.uvarint(MaxOperand, "operand length")))
			sub.Props = append(sub.Props, pc)
		}
		c.Subs = append(c.Subs, sub)
	}
	return c
}
