package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/gdi-go/gdi/internal/constraint"
	"github.com/gdi-go/gdi/internal/core"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/lpg"
	"github.com/gdi-go/gdi/internal/metadata"
	"github.com/gdi-go/gdi/internal/rma"
)

// testGraph is one deterministic engine + seeded graph the executors run
// over.
type testGraph struct {
	e      *core.Engine
	person lpg.LabelID
	age    lpg.PTypeID
	verts  []fabric.DPtr // by appID
}

const graphVerts = 48

// newTestGraph seeds a fixed pseudo-random graph: every vertex gets an age,
// even appIDs get the Person label, and each vertex sends three outgoing
// edges drawn from a fixed-seed stream (self-loops skipped, parallel edges
// possible — the dedup paths must cope).
func newTestGraph(t *testing.T, ranks int, codec holder.Codec, replicas int, cache bool) *testGraph {
	t.Helper()
	e := core.NewEngine(rma.New(ranks), core.Config{
		BlockSize:       256,
		BlocksPerRank:   1 << 12,
		LockTries:       256,
		OptimisticReads: true,
		CacheBlocks:     cache,
		CacheCapacity:   1 << 10,
		HolderCodec:     codec,
	})
	g := &testGraph{e: e}
	var err error
	if g.person, err = e.DefineLabel("Person"); err != nil {
		t.Fatal(err)
	}
	if g.age, err = e.DefinePType("age", metadata.PTypeSpec{Datatype: lpg.TypeUint64}); err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	tx := e.StartLocal(0, core.ReadWrite)
	g.verts = make([]fabric.DPtr, graphVerts)
	for app := uint64(0); app < graphVerts; app++ {
		dp, err := tx.CreateVertex(app)
		if err != nil {
			t.Fatal(err)
		}
		g.verts[app] = dp
		h, err := tx.AssociateVertex(dp)
		if err != nil {
			t.Fatal(err)
		}
		if app%2 == 0 {
			if err := h.AddLabel(g.person); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.AddProperty(g.age, lpg.EncodeUint64(app*7%90)); err != nil {
			t.Fatal(err)
		}
	}
	for app := 0; app < graphVerts; app++ {
		for i := 0; i < 3; i++ {
			to := rnd.Intn(graphVerts)
			if to == app {
				continue
			}
			if _, err := tx.CreateEdge(g.verts[app], g.verts[to], holder.DirOut, g.person); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if replicas > 1 {
		for r := 0; r < ranks; r++ {
			g.e.ReplicateUniform(fabric.Rank(r), replicas)
		}
	}
	return g
}

// ageOver builds (Person && age >= over) as a DNF constraint.
func (g *testGraph) ageOver(over uint64) *constraint.Constraint {
	c := constraint.New(g.e.Registry(0))
	i := c.AddSubconstraint(constraint.Subconstraint{})
	c.AddLabelCond(i, constraint.LabelCond{Label: g.person})
	c.AddPropCond(i, constraint.PropCond{
		PType: g.age, Datatype: lpg.TypeUint64,
		Op: constraint.OpGe, Operand: lpg.EncodeUint64(over),
	})
	return c
}

// runBoth executes p compiled and naive in fresh read-only transactions and
// requires bit-identical results.
func runBoth(t *testing.T, g *testGraph, src fabric.DPtr, p *Pattern) *Result {
	t.Helper()
	txC := g.e.StartLocal(0, core.ReadOnly)
	defer txC.Abort()
	compiled, err := Run(txC, src, p)
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	txN := g.e.StartLocal(0, core.ReadOnly)
	defer txN.Abort()
	naive, err := RunNaive(txN, src, p)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	if !reflect.DeepEqual(compiled, naive) {
		t.Fatalf("compiled and naive results diverge:\ncompiled: %+v\nnaive:    %+v", compiled, naive)
	}
	return compiled
}

// patternsUnderTest enumerates every shape the golden tier pins: k-hop for
// k=1..3 with and without predicates/limit/projection, triangle plain and
// constrained, and 2/3-edge simple paths with per-hop masks.
func patternsUnderTest(g *testGraph) map[string]*Pattern {
	out := MaskOut(core.MaskOut)
	all := MaskOut(core.MaskAll)
	return map[string]*Pattern{
		"1hop-out":        {Kind: KHop, Hops: []Hop{out}},
		"2hop-all":        {Kind: KHop, Hops: []Hop{all, all}},
		"3hop-out":        {Kind: KHop, Hops: []Hop{out, out, out}},
		"2hop-pred":       {Kind: KHop, Hops: []Hop{all, {Mask: core.MaskAll, Cons: g.ageOver(30)}}},
		"2hop-limit-proj": {Kind: KHop, Hops: []Hop{all, all}, Limit: 5, Project: g.age, HasProject: true},
		"triangle":        {Kind: Triangle},
		"triangle-pred":   {Kind: Triangle, Hops: []Hop{{Mask: core.MaskAll, Cons: g.ageOver(10)}}},
		"path-2":          {Kind: Path, Hops: []Hop{out, all}},
		"path-3-pred":     {Kind: Path, Hops: []Hop{all, {Mask: core.MaskAll, Cons: g.ageOver(20)}, out}, Limit: 50},
	}
}

// MaskOut wraps a bare mask as an unconstrained hop.
func MaskOut(m core.DirMask) Hop { return Hop{Mask: m} }

// TestGoldenEquivalence is the satellite-4 contract: every query shape,
// bit-identical between the compiled plan and the naive reference, across
// both holder codecs and with replicas enabled.
func TestGoldenEquivalence(t *testing.T) {
	for _, codec := range []holder.Codec{holder.CodecV1, holder.CodecV2} {
		for _, replicas := range []int{1, 3} {
			t.Run(fmt.Sprintf("codec=%v/replicas=%d", codec, replicas), func(t *testing.T) {
				g := newTestGraph(t, 4, codec, replicas, true)
				for name, p := range patternsUnderTest(g) {
					t.Run(name, func(t *testing.T) {
						for src := uint64(0); src < graphVerts; src += 7 {
							runBoth(t, g, g.verts[src], p)
						}
					})
				}
			})
		}
	}
}

// TestKHopSemantics pins the BFS-layer meaning of KHop on a hand-built
// line-with-branch graph: 0 -> 1 -> 2 -> 3 and 0 -> 2.
func TestKHopSemantics(t *testing.T) {
	e := core.NewEngine(rma.New(2), core.Config{
		BlockSize: 256, BlocksPerRank: 1 << 10, LockTries: 64,
	})
	person, err := e.DefineLabel("Person")
	if err != nil {
		t.Fatal(err)
	}
	tx := e.StartLocal(0, core.ReadWrite)
	dps := make([]fabric.DPtr, 4)
	for i := uint64(0); i < 4; i++ {
		if dps[i], err = tx.CreateVertex(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, edge := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}} {
		if _, err := tx.CreateEdge(dps[edge[0]], dps[edge[1]], holder.DirOut, person); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	ro := e.StartLocal(0, core.ReadOnly)
	defer ro.Abort()
	// Hop 2 out of 0: layer 1 = {1, 2}, so layer 2 = {3} (2 is not
	// re-reported even though it is also two hops away via 1).
	res, err := Run(ro, dps[0], &Pattern{Kind: KHop, Hops: []Hop{{Mask: core.MaskOut}, {Mask: core.MaskOut}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Verts[0] != dps[3] {
		t.Fatalf("2-hop rows = %+v, want exactly [3]", res.Rows)
	}
	// Triangle 0-1-2 closes; rows carry (src, b, c) with b < c.
	tri, err := Run(ro, dps[0], &Pattern{Kind: Triangle})
	if err != nil {
		t.Fatal(err)
	}
	if len(tri.Rows) != 1 || len(tri.Rows[0].Verts) != 3 || tri.Rows[0].Verts[0] != dps[0] {
		t.Fatalf("triangle rows = %+v, want one (0,b,c) row", tri.Rows)
	}
	// Paths of length 2 from 0: 0-1-2 and 0-2-3 (simple, so 0-2-... cannot
	// revisit 0).
	paths, err := Run(ro, dps[0], &Pattern{Kind: Path, Hops: []Hop{{Mask: core.MaskOut}, {Mask: core.MaskOut}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths.Rows) != 2 {
		t.Fatalf("2-edge paths = %+v, want 2 rows", paths.Rows)
	}
}

// TestCompiledExpansionBatchesTrains is the one-train-per-rank-per-hop
// counter assertion at unit scale. The fabric counts a vectored remote GET
// train once in GetBatches however many blocks it carries, while a
// single-block scalar fetch counts only in RemoteGets — so the contract
// reads directly off the counters: the compiled plan's frontier rounds ride
// at most one GET train per remote rank per association round (and at least
// one train total, proving the frontier really was vectored), while the
// naive per-vertex walk never forms a train at all.
func TestCompiledExpansionBatchesTrains(t *testing.T) {
	const ranks = 4
	g := newTestGraph(t, ranks, holder.CodecV1, 1, false)
	p := &Pattern{Kind: KHop, Hops: []Hop{{Mask: core.MaskAll}, {Mask: core.MaskAll}}}

	snap := func() fabric.Snapshot { return g.e.Fabric().TotalSnapshot() }

	base := snap()
	tx := g.e.StartLocal(0, core.ReadOnly)
	res, err := Run(tx, g.verts[1], p)
	if err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	mid := snap()

	txN := g.e.StartLocal(0, core.ReadOnly)
	resN, err := RunNaive(txN, g.verts[1], p)
	if err != nil {
		t.Fatal(err)
	}
	txN.Abort()
	end := snap()

	if len(res.Rows) == 0 || !reflect.DeepEqual(res, resN) {
		t.Fatalf("executors diverged or empty: %d vs %d rows", len(res.Rows), len(resN.Rows))
	}
	// 3 association rounds (src, layer 1, layer 2), at most one GET train
	// per remote rank each; the single-vertex src round goes scalar, so the
	// bound is loose on purpose.
	maxTrains := int64((len(p.Hops) + 1) * (ranks - 1))
	trains := mid.GetBatches - base.GetBatches
	if trains < 1 || trains > maxTrains {
		t.Fatalf("compiled 2-hop issued %d GET trains, want 1..%d", trains, maxTrains)
	}
	if nt := end.GetBatches - mid.GetBatches; nt != 0 {
		t.Fatalf("naive walk issued %d GET trains, want 0 (every fetch is a scalar round-trip)", nt)
	}
	if ng := end.RemoteGets - mid.RemoteGets; ng == 0 {
		t.Fatal("naive walk issued no remote gets — graph too local to compare")
	}
}
