package query

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzQueryPattern fuzzes the pattern/predicate wire codec: any input that
// decodes must (1) produce a pattern that passes Validate, (2) re-encode to
// a canonical form that decodes back to a deep-equal pattern, and (3) have
// that canonical form be a fixed point of encode∘decode. Inputs that do not
// decode must fail without panicking — Decode is total over adversarial
// bytes.
func FuzzQueryPattern(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{codecMagic, codecVersion})
	for _, p := range samplePatterns() {
		f.Add(Encode(nil, p))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoded pattern fails Validate: %v", err)
		}
		enc := Encode(nil, p)
		p2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded pattern does not decode: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("re-decode diverged:\nfirst:  %+v\nsecond: %+v", p, p2)
		}
		if enc2 := Encode(nil, p2); !bytes.Equal(enc, enc2) {
			t.Fatal("canonical form is not a fixed point of encode/decode")
		}
	})
}
