package query

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/gdi-go/gdi/internal/constraint"
	"github.com/gdi-go/gdi/internal/core"
)

// samplePatterns covers every codec branch: all three kinds, present/absent
// predicates, projection, limits, and multi-sub DNF constraints.
func samplePatterns() []*Pattern {
	pred := &constraint.Constraint{
		Version: 42,
		Subs: []constraint.Subconstraint{
			{
				Labels: []constraint.LabelCond{{Label: 3}, {Label: 9, Absent: true}},
				Props: []constraint.PropCond{{
					PType: 1, Datatype: 2, Op: constraint.OpGe, Operand: []byte{1, 2, 3, 4},
				}},
			},
			{Props: []constraint.PropCond{{PType: 7, Op: constraint.OpExists}}},
		},
	}
	return []*Pattern{
		{Kind: KHop, Hops: []Hop{{Mask: core.MaskOut}}},
		{Kind: KHop, Hops: []Hop{{Mask: core.MaskAll}, {Mask: core.MaskIn, Cons: pred}}, Limit: 20},
		{Kind: Triangle},
		{Kind: Triangle, Hops: []Hop{{Mask: core.MaskAll, Cons: pred}}},
		{Kind: Path, Hops: []Hop{{Mask: core.MaskOut}, {Mask: core.MaskUndirected}, {Mask: core.MaskAll, Cons: pred}},
			Limit: 5, Project: 11, HasProject: true},
	}
}

func TestPatternCodecRoundTrip(t *testing.T) {
	for i, p := range samplePatterns() {
		enc := Encode(nil, p)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("pattern %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("pattern %d round trip diverged:\nin:  %+v\nout: %+v", i, p, got)
		}
		if re := Encode(nil, got); !bytes.Equal(re, enc) {
			t.Fatalf("pattern %d re-encode is not canonical", i)
		}
	}
}

func TestPatternDecodeRejects(t *testing.T) {
	good := Encode(nil, samplePatterns()[1])
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte{'X'}, good[1:]...),
		"bad version":    append([]byte{'Q', 99}, good[2:]...),
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte(nil), good...), 0),
		"bad kind":       {codecMagic, codecVersion, 99, 0, 0, 0},
		"zero mask":      {codecMagic, codecVersion, byte(KHop), 0, 0, 1, 0, 0},
	}
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: decode accepted bad input", name)
		}
	}
}

func TestPatternValidate(t *testing.T) {
	bad := []*Pattern{
		{Kind: KHop}, // no hops
		{Kind: Path}, // no hops
		{Kind: Kind(77), Hops: []Hop{{Mask: core.MaskOut}}}, // unknown kind
		{Kind: KHop, Hops: []Hop{{Mask: 0}}},                // zero mask
		{Kind: KHop, Hops: []Hop{{Mask: 0x80}}},             // out-of-range mask
		{Kind: KHop, Hops: []Hop{{Mask: core.MaskOut}}, Limit: -1},
		{Kind: Triangle, Hops: []Hop{{Mask: core.MaskOut}, {Mask: core.MaskOut}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("pattern %d: Validate accepted %+v", i, p)
		}
	}
	tooDeep := &Pattern{Kind: KHop}
	for i := 0; i <= MaxHops; i++ {
		tooDeep.Hops = append(tooDeep.Hops, Hop{Mask: core.MaskOut})
	}
	if err := tooDeep.Validate(); err == nil {
		t.Error("Validate accepted a pattern over MaxHops")
	}
}
