// Package analytics implements the OLAP and OLSP workloads of the paper's
// evaluation (§4, §6.5, Figure 6) on top of the public GDI API: BFS, k-hop,
// PageRank, Community Detection by Label Propagation (CDLP), Weakly
// Connected Components (WCC), Local Clustering Coefficient (LCC), a
// BI2-style aggregation (LDBC SNB BI), and a Graph Neural Network layer
// (graph convolution, Listing 2).
//
// Every algorithm is SPMD: it must be called from all processes (inside
// Runtime.Run) and follows the paper's recommended pattern for analytics —
// a collective transaction, per-process iteration over the local vertex
// shard, and collective communication for the cross-process phases
// (Table 2).
package analytics

import (
	"fmt"
	"math"
	"sort"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/kron"
)

// Graph bundles a loaded database with its generator schema.
type Graph struct {
	DB     *gdi.Database
	Schema kron.Schema
}

// vmsg is a vertex-addressed message: the exchange unit of the frontier/
// value-propagation phases.
type vmsg struct {
	V   gdi.VertexID
	Val uint64
}

type fmsg struct {
	V   gdi.VertexID
	Val float64
}

// exchange routes messages to the rank owning each target vertex with one
// all-to-all (O(log P) + payload depth).
func exchange[T any](p *gdi.Process, buckets [][]T) []T {
	in := collective.Alltoall(p.Comm(), p.Rank(), buckets)
	var out []T
	for _, b := range in {
		out = append(out, b...)
	}
	return out
}

func bucketize[T any](n int) [][]T { return make([][]T, n) }

// BFS runs a level-synchronous parallel breadth-first search from the
// vertex with application ID rootApp over all edges (both directions, as
// Graph500 treats the Kronecker graph). It returns the number of reached
// vertices and the eccentricity on every rank.
func BFS(p *gdi.Process, g *Graph, rootApp uint64) (visited int64, depth int, err error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()

	level := make(map[gdi.VertexID]int)
	var frontier []gdi.VertexID
	if int(p.Rank()) == int(p.Database().Engine().OwnerOf(rootApp)) {
		root, terr := tx.TranslateVertexID(rootApp)
		if terr != nil {
			err = terr
			// Fall through: the collective loop below must still run on all
			// ranks; an empty frontier terminates it immediately.
		} else {
			frontier = []gdi.VertexID{root}
		}
	}
	n := p.Size()
	for d := 0; ; d++ {
		var local int64
		buckets := bucketize[gdi.VertexID](n)
		for _, v := range frontier {
			if _, seen := level[v]; seen {
				continue
			}
			level[v] = d
			local++
			h, aerr := tx.AssociateVertex(v)
			if aerr != nil {
				err = aerr
				continue
			}
			edges, eerr := h.Edges(gdi.MaskAll, nil)
			if eerr != nil {
				err = eerr
				continue
			}
			for _, e := range edges {
				buckets[int(e.Neighbor.Rank())] = append(buckets[int(e.Neighbor.Rank())], e.Neighbor)
			}
		}
		incoming := exchange(p, buckets)
		frontier = frontier[:0]
		for _, v := range incoming {
			if _, seen := level[v]; !seen {
				frontier = append(frontier, v)
			}
		}
		visited += local
		total := p.AllreduceInt64(local)
		if total == 0 {
			visited = p.AllreduceInt64(visited)
			return visited, d, err
		}
		depth = d
	}
}

// KHop counts the vertices within k hops of rootApp (the k-hop queries of
// Figure 6e/6f).
func KHop(p *gdi.Process, g *Graph, rootApp uint64, k int) (int64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()

	seen := make(map[gdi.VertexID]bool)
	var frontier []gdi.VertexID
	if int(p.Rank()) == int(p.Database().Engine().OwnerOf(rootApp)) {
		root, err := tx.TranslateVertexID(rootApp)
		if err != nil {
			return 0, err
		}
		frontier = []gdi.VertexID{root}
	}
	n := p.Size()
	var local int64
	for d := 0; d <= k; d++ {
		buckets := bucketize[gdi.VertexID](n)
		for _, v := range frontier {
			if seen[v] {
				continue
			}
			seen[v] = true
			local++
			if d == k {
				continue // count the last ring, do not expand it
			}
			h, err := tx.AssociateVertex(v)
			if err != nil {
				return 0, err
			}
			edges, err := h.Edges(gdi.MaskAll, nil)
			if err != nil {
				return 0, err
			}
			for _, e := range edges {
				buckets[int(e.Neighbor.Rank())] = append(buckets[int(e.Neighbor.Rank())], e.Neighbor)
			}
		}
		incoming := exchange(p, buckets)
		frontier = frontier[:0]
		for _, v := range incoming {
			if !seen[v] {
				frontier = append(frontier, v)
			}
		}
	}
	return p.AllreduceInt64(local), nil
}

// localAdjacency snapshots the rank's shard: per-vertex out-neighbors and
// all-neighbors (the one-time edge fetch all iterative algorithms share).
type adjacency struct {
	ids []gdi.VertexID
	app map[gdi.VertexID]uint64
	out map[gdi.VertexID][]gdi.VertexID
	all map[gdi.VertexID][]gdi.VertexID
}

func loadAdjacency(p *gdi.Process, tx *gdi.Transaction) (*adjacency, error) {
	a := &adjacency{
		app: make(map[gdi.VertexID]uint64),
		out: make(map[gdi.VertexID][]gdi.VertexID),
		all: make(map[gdi.VertexID][]gdi.VertexID),
	}
	a.ids = p.LocalVertices()
	sort.Slice(a.ids, func(i, j int) bool { return a.ids[i] < a.ids[j] })
	for _, v := range a.ids {
		h, err := tx.AssociateVertex(v)
		if err != nil {
			return nil, err
		}
		a.app[v] = h.AppID()
		edges, err := h.Edges(gdi.MaskAll, nil)
		if err != nil {
			return nil, err
		}
		for _, e := range edges {
			a.all[v] = append(a.all[v], e.Neighbor)
			if e.Dir == gdi.DirOut || e.Dir == gdi.DirUndirected {
				a.out[v] = append(a.out[v], e.Neighbor)
			}
		}
	}
	return a, nil
}

// PageRank runs iters iterations of damped PageRank over out-edges
// (df = damping factor, the paper uses 0.85 and i=10). It returns the local
// rank mass by appID and the global L1 norm (≈1).
func PageRank(p *gdi.Process, g *Graph, iters int, df float64) (map[uint64]float64, float64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	adj, err := loadAdjacency(p, tx)
	if err != nil {
		return nil, 0, err
	}
	nGlobal := float64(p.AllreduceInt64(int64(len(adj.ids))))
	if nGlobal == 0 {
		return nil, 0, fmt.Errorf("analytics: empty graph")
	}
	rank := make(map[gdi.VertexID]float64, len(adj.ids))
	for _, v := range adj.ids {
		rank[v] = 1 / nGlobal
	}
	n := p.Size()
	for it := 0; it < iters; it++ {
		buckets := bucketize[fmsg](n)
		dangling := 0.0
		for _, v := range adj.ids {
			outs := adj.out[v]
			if len(outs) == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(len(outs))
			for _, nb := range outs {
				buckets[int(nb.Rank())] = append(buckets[int(nb.Rank())], fmsg{V: nb, Val: share})
			}
		}
		incoming := exchange(p, buckets)
		danglingAll := p.AllreduceFloat64(dangling)
		base := (1-df)/nGlobal + df*danglingAll/nGlobal
		next := make(map[gdi.VertexID]float64, len(adj.ids))
		for _, v := range adj.ids {
			next[v] = base
		}
		for _, m := range incoming {
			next[m.V] += df * m.Val
		}
		rank = next
	}
	out := make(map[uint64]float64, len(adj.ids))
	local := 0.0
	for v, r := range rank {
		out[adj.app[v]] = r
		local += r
	}
	return out, p.AllreduceFloat64(local), nil
}

// CDLP runs iters rounds of synchronous community detection by label
// propagation (Graphalytics semantics: adopt the smallest most-frequent
// neighbor label; labels start as appIDs). Returns local appID → community.
func CDLP(p *gdi.Process, g *Graph, iters int) (map[uint64]uint64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	adj, err := loadAdjacency(p, tx)
	if err != nil {
		return nil, err
	}
	label := make(map[gdi.VertexID]uint64, len(adj.ids))
	for _, v := range adj.ids {
		label[v] = adj.app[v]
	}
	n := p.Size()
	for it := 0; it < iters; it++ {
		buckets := bucketize[vmsg](n)
		for _, v := range adj.ids {
			for _, nb := range adj.all[v] {
				buckets[int(nb.Rank())] = append(buckets[int(nb.Rank())], vmsg{V: nb, Val: label[v]})
			}
		}
		incoming := exchange(p, buckets)
		counts := make(map[gdi.VertexID]map[uint64]int)
		for _, m := range incoming {
			c, ok := counts[m.V]
			if !ok {
				c = make(map[uint64]int)
				counts[m.V] = c
			}
			c[m.Val]++
		}
		for _, v := range adj.ids {
			c := counts[v]
			if len(c) == 0 {
				continue
			}
			best, bestCount := label[v], 0
			first := true
			for l, cnt := range c {
				if cnt > bestCount || (cnt == bestCount && (first || l < best)) {
					best, bestCount = l, cnt
					first = false
				}
			}
			label[v] = best
		}
	}
	out := make(map[uint64]uint64, len(adj.ids))
	for v, l := range label {
		out[adj.app[v]] = l
	}
	return out, nil
}

// WCC computes weakly connected components by iterative minimum-appID
// propagation until global convergence (bounded by maxIters; the paper
// reports i=5 rounds on Kronecker graphs). Returns local appID → component
// and the number of iterations executed.
func WCC(p *gdi.Process, g *Graph, maxIters int) (map[uint64]uint64, int, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	adj, err := loadAdjacency(p, tx)
	if err != nil {
		return nil, 0, err
	}
	comp := make(map[gdi.VertexID]uint64, len(adj.ids))
	for _, v := range adj.ids {
		comp[v] = adj.app[v]
	}
	n := p.Size()
	it := 0
	for ; it < maxIters; it++ {
		buckets := bucketize[vmsg](n)
		for _, v := range adj.ids {
			for _, nb := range adj.all[v] {
				buckets[int(nb.Rank())] = append(buckets[int(nb.Rank())], vmsg{V: nb, Val: comp[v]})
			}
		}
		incoming := exchange(p, buckets)
		var changed int64
		for _, m := range incoming {
			if m.Val < comp[m.V] {
				comp[m.V] = m.Val
				changed++
			}
		}
		if p.AllreduceInt64(changed) == 0 {
			it++
			break
		}
	}
	out := make(map[uint64]uint64, len(adj.ids))
	for v, c := range comp {
		out[adj.app[v]] = c
	}
	return out, it, nil
}

// LCC computes the average local clustering coefficient. Neighbor
// adjacency is read through GDI directly (remote holder fetches), the
// communication-heavy pattern the paper attributes to LCC's O(n + m^{3/2})
// cost.
func LCC(p *gdi.Process, g *Graph) (float64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	adj, err := loadAdjacency(p, tx)
	if err != nil {
		return 0, err
	}
	neighborSet := func(v gdi.VertexID) (map[gdi.VertexID]bool, error) {
		h, err := tx.AssociateVertex(v)
		if err != nil {
			return nil, err
		}
		edges, err := h.Edges(gdi.MaskAll, nil)
		if err != nil {
			return nil, err
		}
		set := make(map[gdi.VertexID]bool, len(edges))
		for _, e := range edges {
			if e.Neighbor != v {
				set[e.Neighbor] = true
			}
		}
		return set, nil
	}
	localSum, localCnt := 0.0, int64(0)
	for _, v := range adj.ids {
		mine := make(map[gdi.VertexID]bool)
		for _, nb := range adj.all[v] {
			if nb != v {
				mine[nb] = true
			}
		}
		deg := len(mine)
		localCnt++
		if deg < 2 {
			continue
		}
		links := 0
		for nb := range mine {
			theirs, err := neighborSet(nb)
			if err != nil {
				return 0, err
			}
			for x := range theirs {
				if mine[x] {
					links++
				}
			}
		}
		localSum += float64(links) / float64(deg*(deg-1))
	}
	sum := p.AllreduceFloat64(localSum)
	cnt := p.AllreduceInt64(localCnt)
	if cnt == 0 {
		return 0, nil
	}
	return sum / float64(cnt), nil
}

// BI2 is the business-intelligence aggregation of Figure 6b (modeled on
// LDBC SNB BI query 2): count vertices carrying the given label whose
// filter property lies in [lo, hi), grouped by the group property's value.
// Partial aggregates are merged with a gather, Listing 3 style. The full
// grouped map is returned on every rank (via broadcast).
func BI2(p *gdi.Process, g *Graph, label gdi.LabelID, filterProp gdi.PTypeID, lo, hi uint64, groupProp gdi.PTypeID) (map[uint64]int64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	local := make(map[uint64]int64)
	for _, v := range p.LocalVerticesWithLabel(label) {
		h, err := tx.AssociateVertex(v)
		if err != nil {
			return nil, err
		}
		fv, ok := h.Property(filterProp)
		if !ok {
			continue
		}
		x := gdi.Uint64Of(fv)
		if x < lo || x >= hi {
			continue
		}
		gv, ok := h.Property(groupProp)
		if !ok {
			continue
		}
		local[gdi.Uint64Of(gv)]++
	}
	parts := collective.Gather(p.Comm(), p.Rank(), 0, local)
	var merged map[uint64]int64
	if p.Rank() == 0 {
		merged = make(map[uint64]int64)
		for _, part := range parts {
			for k, v := range part {
				merged[k] += v
			}
		}
	}
	return collective.Bcast(p.Comm(), p.Rank(), 0, merged), nil
}

// relu is the GNN non-linearity of Listing 2.
func relu(x float64) float64 { return math.Max(0, x) }
