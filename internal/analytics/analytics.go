// Package analytics implements the OLAP and OLSP workloads of the paper's
// evaluation (§4, §6.5, Figure 6) on top of the public GDI API: BFS, k-hop,
// PageRank, Community Detection by Label Propagation (CDLP), Weakly
// Connected Components (WCC), Local Clustering Coefficient (LCC), a
// BI2-style aggregation (LDBC SNB BI), and a Graph Neural Network layer
// (graph convolution, Listing 2).
//
// Every algorithm is SPMD: it must be called from all processes (inside
// Runtime.Run) and follows the paper's recommended pattern for analytics —
// a collective transaction, per-process iteration over the local vertex
// shard, and collective communication for the cross-process phases
// (Table 2).
//
// The iterative kernels (BFS, PageRank, CDLP, WCC, LCC) additionally come in
// a dense CSR variant (csr.go, dense.go) selected by
// DatabaseParams.DenseAnalytics: index-compacted snapshots, bitmap frontiers
// with direction-optimizing BFS, and all iteration traffic routed through
// the one-sided exchange instead of the channel mail below. See the "Dense
// analytics engine" section of the package gdi documentation.
package analytics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/kron"
)

// Graph bundles a loaded database with its generator schema.
type Graph struct {
	DB     *gdi.Database
	Schema kron.Schema
}

// vmsg is a vertex-addressed message: the exchange unit of the frontier/
// value-propagation phases.
type vmsg struct {
	V   gdi.VertexID
	Val uint64
}

type fmsg struct {
	V   gdi.VertexID
	Val float64
}

// exchange routes messages to the rank owning each target vertex with one
// all-to-all (O(log P) + payload depth). Self-rank delivery is handed over
// directly — the local bucket never enters the mailbox (Alltoall assigns the
// self slot without a channel round-trip, and a single-rank exchange skips
// the collective entirely). The dense engine's one-sided successor
// (exchange.Round) short-circuits the self slot the same way, issuing zero
// PUT trains for rank-local traffic.
func exchange[T any](p *gdi.Process, buckets [][]T) []T {
	if p.Size() == 1 {
		return buckets[0]
	}
	in := collective.Alltoall(p.Comm(), p.Rank(), buckets)
	var out []T
	for _, b := range in {
		out = append(out, b...)
	}
	return out
}

// denseEngine reports whether this graph's database runs the CSR analytics
// engine (DatabaseParams.DenseAnalytics).
func denseEngine(g *Graph) bool { return g.DB.Engine().DenseAnalytics() }

func bucketize[T any](n int) [][]T { return make([][]T, n) }

// BFS runs a level-synchronous parallel breadth-first search from the
// vertex with application ID rootApp over all edges (both directions, as
// Graph500 treats the Kronecker graph). It returns the number of reached
// vertices and the eccentricity on every rank.
//
// Each level's frontier is expanded through Transaction.AssociateVertices:
// the whole frontier is fetched with vectored one-sided reads grouped by
// owner rank, so under injected remote latency a level pays one round-trip
// per owner rank instead of one per frontier vertex (§5.6).
func BFS(p *gdi.Process, g *Graph, rootApp uint64) (visited int64, depth int, err error) {
	if denseEngine(g) {
		visited, depth, _, err = bfsDense(p, g, rootApp)
		return visited, depth, err
	}
	return bfs(p, g, rootApp, true)
}

// BFSDense runs the direction-optimizing dense-engine BFS regardless of the
// DenseAnalytics knob and additionally reports how many levels were expanded
// top-down (push) versus bottom-up (pull).
func BFSDense(p *gdi.Process, g *Graph, rootApp uint64) (visited int64, depth int, stats BFSStats, err error) {
	return bfsDense(p, g, rootApp)
}

// BFSScalar is BFS with scalar frontier expansion — one blocking
// AssociateVertex round-trip per frontier vertex. It exists as the baseline
// of the batching ablation; use BFS.
func BFSScalar(p *gdi.Process, g *Graph, rootApp uint64) (visited int64, depth int, err error) {
	return bfs(p, g, rootApp, false)
}

func bfs(p *gdi.Process, g *Graph, rootApp uint64, batched bool) (visited int64, depth int, err error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()

	level := make(map[gdi.VertexID]int)
	var frontier []gdi.VertexID
	if int(p.Rank()) == int(p.Database().Engine().OwnerOf(rootApp)) {
		root, terr := tx.TranslateVertexID(rootApp)
		if terr != nil {
			err = terr
			// Fall through: the collective loop below must still run on all
			// ranks; an empty frontier terminates it immediately.
		} else {
			frontier = []gdi.VertexID{root}
		}
	}
	n := p.Size()
	batch := make([]gdi.VertexID, 0, len(frontier))
	for d := 0; ; d++ {
		batch = batch[:0]
		for _, v := range frontier {
			if _, seen := level[v]; seen {
				continue
			}
			level[v] = d
			batch = append(batch, v)
		}
		local := int64(len(batch))
		handles, aerr := associateFrontier(tx, batch, batched)
		if aerr != nil {
			err = aerr
		}
		buckets := bucketize[gdi.VertexID](n)
		for _, h := range handles {
			if h == nil {
				continue
			}
			if eerr := h.ForEachNeighbor(gdi.MaskAll, func(nb gdi.VertexID) {
				buckets[int(nb.Rank())] = append(buckets[int(nb.Rank())], nb)
			}); eerr != nil {
				err = eerr
			}
		}
		incoming := exchange(p, buckets)
		frontier = frontier[:0]
		for _, v := range incoming {
			if _, seen := level[v]; !seen {
				frontier = append(frontier, v)
			}
		}
		visited += local
		total := p.AllreduceInt64(local)
		if total == 0 {
			visited = p.AllreduceInt64(visited)
			return visited, d, err
		}
		depth = d
	}
}

// BFSDirect runs a breadth-first traversal executed entirely by the calling
// process through one-sided reads: every frontier holder — local or remote —
// is fetched directly with AssociateVertices, one vectored read train per
// owner rank and level. No other rank executes traversal code (they only
// participate in the collective transaction's delimiting barriers), which is
// the defining one-sided property of GDI-RMA and the access pattern of the
// paper's OLSP k-hop queries (Figure 6e/6f). Collective: every rank must
// call it, each with its own root; it returns that root's reached-vertex
// count and eccentricity.
func BFSDirect(p *gdi.Process, g *Graph, rootApp uint64) (visited int64, depth int, err error) {
	return bfsDirect(p, g, rootApp, true)
}

// BFSDirectScalar is BFSDirect with scalar expansion — one blocking remote
// round-trip per frontier vertex. It is the baseline of the batching
// ablation; use BFSDirect.
func BFSDirectScalar(p *gdi.Process, g *Graph, rootApp uint64) (visited int64, depth int, err error) {
	return bfsDirect(p, g, rootApp, false)
}

func bfsDirect(p *gdi.Process, g *Graph, rootApp uint64, batched bool) (int64, int, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	root, err := tx.TranslateVertexID(rootApp)
	if err != nil {
		return 0, 0, err
	}
	seen := map[gdi.VertexID]bool{root: true}
	frontier := []gdi.VertexID{root}
	var visited int64
	depth := 0
	for d := 0; len(frontier) > 0; d++ {
		depth = d
		visited += int64(len(frontier))
		handles, err := associateFrontier(tx, frontier, batched)
		if err != nil {
			return 0, 0, err
		}
		var next []gdi.VertexID
		for _, h := range handles {
			if h == nil {
				continue
			}
			if err := h.ForEachNeighbor(gdi.MaskAll, func(nb gdi.VertexID) {
				if !seen[nb] {
					seen[nb] = true
					next = append(next, nb)
				}
			}); err != nil {
				return 0, 0, err
			}
		}
		frontier = next
	}
	return visited, depth, nil
}

// associateFrontier materializes handles for one frontier, either through
// the batch entry point (one vectored fetch train per owner rank) or with
// scalar blocking calls (the ablation baseline). Missing vertices yield nil
// entries in both modes. With DatabaseParams.CacheBlocks the batch path
// rides the version-validated block cache automatically: a frontier vertex
// fetched by an earlier level (or an earlier query against the same
// database) is revalidated with the per-rank stamp train and served locally
// instead of paying another GET train.
func associateFrontier(tx *gdi.Transaction, frontier []gdi.VertexID, batched bool) ([]*gdi.Vertex, error) {
	if batched {
		return tx.AssociateVertices(frontier)
	}
	handles := make([]*gdi.Vertex, len(frontier))
	var firstErr error
	for i, v := range frontier {
		h, err := tx.AssociateVertex(v)
		if err != nil {
			// Match the batch contract: missing vertices yield nil entries,
			// only transaction-level failures surface as errors.
			if !errors.Is(err, gdi.ErrNotFound) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		handles[i] = h
	}
	return handles, firstErr
}

// KHop counts the vertices within k hops of rootApp (the k-hop queries of
// Figure 6e/6f).
func KHop(p *gdi.Process, g *Graph, rootApp uint64, k int) (int64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()

	seen := make(map[gdi.VertexID]bool)
	var frontier []gdi.VertexID
	if int(p.Rank()) == int(p.Database().Engine().OwnerOf(rootApp)) {
		root, err := tx.TranslateVertexID(rootApp)
		if err != nil {
			return 0, err
		}
		frontier = []gdi.VertexID{root}
	}
	n := p.Size()
	var local int64
	var batch []gdi.VertexID
	for d := 0; d <= k; d++ {
		batch = batch[:0]
		for _, v := range frontier {
			if seen[v] {
				continue
			}
			seen[v] = true
			local++
			if d == k {
				continue // count the last ring, do not expand it
			}
			batch = append(batch, v)
		}
		// Expand the whole ring at once: one batched fetch train per owner
		// rank instead of one blocking round-trip per vertex.
		handles, err := tx.AssociateVertices(batch)
		if err != nil {
			return 0, err
		}
		buckets := bucketize[gdi.VertexID](n)
		var ferr error
		for _, h := range handles {
			if h == nil {
				continue
			}
			if err := h.ForEachNeighbor(gdi.MaskAll, func(nb gdi.VertexID) {
				buckets[int(nb.Rank())] = append(buckets[int(nb.Rank())], nb)
			}); err != nil {
				ferr = err
			}
		}
		if ferr != nil {
			return 0, ferr
		}
		incoming := exchange(p, buckets)
		frontier = frontier[:0]
		for _, v := range incoming {
			if !seen[v] {
				frontier = append(frontier, v)
			}
		}
	}
	return p.AllreduceInt64(local), nil
}

// localAdjacency snapshots the rank's shard: per-vertex out-neighbors and
// all-neighbors (the one-time edge fetch all iterative algorithms share).
type adjacency struct {
	ids []gdi.VertexID
	app map[gdi.VertexID]uint64
	out map[gdi.VertexID][]gdi.VertexID
	all map[gdi.VertexID][]gdi.VertexID
}

func loadAdjacency(p *gdi.Process, tx *gdi.Transaction) (*adjacency, error) {
	a := &adjacency{
		app: make(map[gdi.VertexID]uint64),
		out: make(map[gdi.VertexID][]gdi.VertexID),
		all: make(map[gdi.VertexID][]gdi.VertexID),
	}
	a.ids = p.LocalVertices()
	sort.Slice(a.ids, func(i, j int) bool { return a.ids[i] < a.ids[j] })
	// One batched association for the whole shard (every holder is local
	// here, but the batch path also skips per-call flush overhead).
	handles, err := tx.AssociateVertices(a.ids)
	if err != nil {
		return nil, err
	}
	for i, v := range a.ids {
		h := handles[i]
		if h == nil {
			return nil, fmt.Errorf("analytics: local vertex %v disappeared", v)
		}
		a.app[v] = h.AppID()
		edges, err := h.Edges(gdi.MaskAll, nil)
		if err != nil {
			return nil, err
		}
		for _, e := range edges {
			a.all[v] = append(a.all[v], e.Neighbor)
			if e.Dir == gdi.DirOut || e.Dir == gdi.DirUndirected {
				a.out[v] = append(a.out[v], e.Neighbor)
			}
		}
	}
	return a, nil
}

// PageRank runs iters iterations of damped PageRank over out-edges
// (df = damping factor, the paper uses 0.85 and i=10). It returns the local
// rank mass by appID and the global L1 norm (≈1).
func PageRank(p *gdi.Process, g *Graph, iters int, df float64) (map[uint64]float64, float64, error) {
	if denseEngine(g) {
		return pageRankDense(p, g, iters, df)
	}
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	adj, err := loadAdjacency(p, tx)
	if err != nil {
		return nil, 0, err
	}
	nGlobal := float64(p.AllreduceInt64(int64(len(adj.ids))))
	if nGlobal == 0 {
		return nil, 0, fmt.Errorf("analytics: empty graph")
	}
	rank := make(map[gdi.VertexID]float64, len(adj.ids))
	for _, v := range adj.ids {
		rank[v] = 1 / nGlobal
	}
	n := p.Size()
	for it := 0; it < iters; it++ {
		buckets := bucketize[fmsg](n)
		dangling := 0.0
		for _, v := range adj.ids {
			outs := adj.out[v]
			if len(outs) == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(len(outs))
			for _, nb := range outs {
				buckets[int(nb.Rank())] = append(buckets[int(nb.Rank())], fmsg{V: nb, Val: share})
			}
		}
		incoming := exchange(p, buckets)
		danglingAll := p.AllreduceFloat64(dangling)
		base := (1-df)/nGlobal + df*danglingAll/nGlobal
		next := make(map[gdi.VertexID]float64, len(adj.ids))
		for _, v := range adj.ids {
			next[v] = base
		}
		for _, m := range incoming {
			next[m.V] += df * m.Val
		}
		rank = next
	}
	out := make(map[uint64]float64, len(adj.ids))
	local := 0.0
	for v, r := range rank {
		out[adj.app[v]] = r
		local += r
	}
	return out, p.AllreduceFloat64(local), nil
}

// CDLP runs iters rounds of synchronous community detection by label
// propagation (Graphalytics semantics: adopt the smallest most-frequent
// neighbor label; labels start as appIDs). Returns local appID → community.
func CDLP(p *gdi.Process, g *Graph, iters int) (map[uint64]uint64, error) {
	if denseEngine(g) {
		return cdlpDense(p, g, iters)
	}
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	adj, err := loadAdjacency(p, tx)
	if err != nil {
		return nil, err
	}
	label := make(map[gdi.VertexID]uint64, len(adj.ids))
	for _, v := range adj.ids {
		label[v] = adj.app[v]
	}
	n := p.Size()
	for it := 0; it < iters; it++ {
		buckets := bucketize[vmsg](n)
		for _, v := range adj.ids {
			for _, nb := range adj.all[v] {
				buckets[int(nb.Rank())] = append(buckets[int(nb.Rank())], vmsg{V: nb, Val: label[v]})
			}
		}
		incoming := exchange(p, buckets)
		counts := make(map[gdi.VertexID]map[uint64]int)
		for _, m := range incoming {
			c, ok := counts[m.V]
			if !ok {
				c = make(map[uint64]int)
				counts[m.V] = c
			}
			c[m.Val]++
		}
		for _, v := range adj.ids {
			c := counts[v]
			if len(c) == 0 {
				continue
			}
			best, bestCount := label[v], 0
			first := true
			for l, cnt := range c {
				if cnt > bestCount || (cnt == bestCount && (first || l < best)) {
					best, bestCount = l, cnt
					first = false
				}
			}
			label[v] = best
		}
	}
	out := make(map[uint64]uint64, len(adj.ids))
	for v, l := range label {
		out[adj.app[v]] = l
	}
	return out, nil
}

// WCC computes weakly connected components by iterative minimum-appID
// propagation until global convergence (bounded by maxIters; the paper
// reports i=5 rounds on Kronecker graphs). Returns local appID → component
// and the number of iterations executed.
func WCC(p *gdi.Process, g *Graph, maxIters int) (map[uint64]uint64, int, error) {
	if denseEngine(g) {
		return wccDense(p, g, maxIters)
	}
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	adj, err := loadAdjacency(p, tx)
	if err != nil {
		return nil, 0, err
	}
	comp := make(map[gdi.VertexID]uint64, len(adj.ids))
	for _, v := range adj.ids {
		comp[v] = adj.app[v]
	}
	n := p.Size()
	it := 0
	for ; it < maxIters; it++ {
		buckets := bucketize[vmsg](n)
		for _, v := range adj.ids {
			for _, nb := range adj.all[v] {
				buckets[int(nb.Rank())] = append(buckets[int(nb.Rank())], vmsg{V: nb, Val: comp[v]})
			}
		}
		incoming := exchange(p, buckets)
		var changed int64
		for _, m := range incoming {
			if m.Val < comp[m.V] {
				comp[m.V] = m.Val
				changed++
			}
		}
		if p.AllreduceInt64(changed) == 0 {
			it++
			break
		}
	}
	out := make(map[uint64]uint64, len(adj.ids))
	for v, c := range comp {
		out[adj.app[v]] = c
	}
	return out, it, nil
}

// LCC computes the average local clustering coefficient. Neighbor
// adjacency is read through GDI directly (remote holder fetches), the
// communication-heavy pattern the paper attributes to LCC's O(n + m^{3/2})
// cost.
func LCC(p *gdi.Process, g *Graph) (float64, error) {
	if denseEngine(g) {
		return lccDense(p, g)
	}
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	adj, err := loadAdjacency(p, tx)
	if err != nil {
		return 0, err
	}
	localSum, localCnt := 0.0, int64(0)
	for _, v := range adj.ids {
		mine := make(map[gdi.VertexID]bool)
		nbrs := make([]gdi.VertexID, 0, len(adj.all[v]))
		for _, nb := range adj.all[v] {
			if nb != v && !mine[nb] {
				mine[nb] = true
				nbrs = append(nbrs, nb)
			}
		}
		deg := len(mine)
		localCnt++
		if deg < 2 {
			continue
		}
		// Fetch the whole neighborhood in one batch: LCC is the paper's
		// communication-heaviest kernel, and batching turns its per-neighbor
		// remote fetches into one vectored train per owner rank.
		handles, err := tx.AssociateVertices(nbrs)
		if err != nil {
			return 0, err
		}
		links := 0
		for i, nb := range nbrs {
			h := handles[i]
			if h == nil {
				return 0, fmt.Errorf("analytics: neighbor %v disappeared", nb)
			}
			seen := make(map[gdi.VertexID]bool, h.Degree())
			if err := h.ForEachNeighbor(gdi.MaskAll, func(x gdi.VertexID) {
				if x == nb || seen[x] {
					return
				}
				seen[x] = true
				if mine[x] {
					links++
				}
			}); err != nil {
				return 0, err
			}
		}
		localSum += float64(links) / float64(deg*(deg-1))
	}
	sum := p.AllreduceFloat64(localSum)
	cnt := p.AllreduceInt64(localCnt)
	if cnt == 0 {
		return 0, nil
	}
	return sum / float64(cnt), nil
}

// BI2 is the business-intelligence aggregation of Figure 6b (modeled on
// LDBC SNB BI query 2): count vertices carrying the given label whose
// filter property lies in [lo, hi), grouped by the group property's value.
// Partial aggregates are merged with a gather, Listing 3 style. The full
// grouped map is returned on every rank (via broadcast).
func BI2(p *gdi.Process, g *Graph, label gdi.LabelID, filterProp gdi.PTypeID, lo, hi uint64, groupProp gdi.PTypeID) (map[uint64]int64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	local := make(map[uint64]int64)
	for _, v := range p.LocalVerticesWithLabel(label) {
		h, err := tx.AssociateVertex(v)
		if err != nil {
			return nil, err
		}
		fv, ok := h.Property(filterProp)
		if !ok {
			continue
		}
		x := gdi.Uint64Of(fv)
		if x < lo || x >= hi {
			continue
		}
		gv, ok := h.Property(groupProp)
		if !ok {
			continue
		}
		local[gdi.Uint64Of(gv)]++
	}
	parts := collective.Gather(p.Comm(), p.Rank(), 0, local)
	var merged map[uint64]int64
	if p.Rank() == 0 {
		merged = make(map[uint64]int64)
		for _, part := range parts {
			for k, v := range part {
				merged[k] += v
			}
		}
	}
	return collective.Bcast(p.Comm(), p.Rank(), 0, merged), nil
}

// relu is the GNN non-linearity of Listing 2.
func relu(x float64) float64 { return math.Max(0, x) }
