package analytics

import (
	"math"
	"sync"
	"testing"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/baseline/graph500"
	"github.com/gdi-go/gdi/internal/kron"
)

// testGraph loads a deterministic Kronecker LPG into a fresh database.
func testGraph(t *testing.T, ranks int, cfg kron.Config) (*gdi.Runtime, *Graph) {
	t.Helper()
	cfg = cfg.WithDefaults()
	rt := gdi.Init(ranks)
	db := rt.CreateDatabase(gdi.DatabaseParams{BlockSize: 512, BlocksPerRank: 1 << 16})
	sch, err := kron.DefineSchema(db.Engine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var loadErr error
	var mu sync.Mutex
	rt.Run(db, func(p *gdi.Process) {
		n := p.Size()
		if err := p.BulkLoadVertices(kron.VerticesFor(cfg, sch, int(p.Rank()), n)); err != nil {
			mu.Lock()
			loadErr = err
			mu.Unlock()
			return
		}
		if err := p.BulkLoadEdges(kron.EdgesFor(cfg, sch, int(p.Rank()), n)); err != nil {
			mu.Lock()
			loadErr = err
			mu.Unlock()
		}
	})
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	return rt, &Graph{DB: db, Schema: sch}
}

var smallCfg = kron.Config{Scale: 7, EdgeFactor: 8, Seed: 42, NumLabels: 5, NumProps: 4}

func TestBFSMatchesGraph500(t *testing.T) {
	for _, ranks := range []int{1, 4} {
		rt, g := testGraph(t, ranks, smallCfg)
		csr := kron.BuildCSR(smallCfg.WithDefaults())
		wantVisited := graph500.Visited(graph500.BFS(csr, 0, 0))

		var visited int64
		var mu sync.Mutex
		rt.Run(g.DB, func(p *gdi.Process) {
			v, _, err := BFS(p, g, 0)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			visited = v
			mu.Unlock()
		})
		if int(visited) != wantVisited {
			t.Fatalf("ranks=%d: GDI BFS visited %d, Graph500 %d", ranks, visited, wantVisited)
		}
	}
}

// TestBFSDirectMatchesGraph500 checks the one-sided traversal (and its
// scalar ablation baseline) against the Graph500 oracle: every rank
// traverses independently from its own root and must see exactly the
// reference reached-vertex count.
func TestBFSDirectMatchesGraph500(t *testing.T) {
	for _, ranks := range []int{1, 4} {
		rt, g := testGraph(t, ranks, smallCfg)
		csr := kron.BuildCSR(smallCfg.WithDefaults())
		for name, bfs := range map[string]func(*gdi.Process, *Graph, uint64) (int64, int, error){
			"batched": BFSDirect, "scalar": BFSDirectScalar,
		} {
			var mu sync.Mutex
			failed := false
			rt.Run(g.DB, func(p *gdi.Process) {
				root := uint64(p.Rank())
				want := int64(graph500.Visited(graph500.BFS(csr, root, 0)))
				got, _, err := bfs(p, g, root)
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					mu.Lock()
					failed = true
					mu.Unlock()
					t.Errorf("%s ranks=%d root=%d: visited %d, want %d", name, ranks, root, got, want)
				}
			})
			if failed {
				return
			}
		}
	}
}

func TestKHopMatchesReference(t *testing.T) {
	rt, g := testGraph(t, 4, smallCfg)
	csr := kron.BuildCSR(smallCfg.WithDefaults())
	levels := graph500.BFS(csr, 1, 0)
	for _, k := range []int{1, 2, 3} {
		want := int64(0)
		for _, l := range levels {
			if l >= 0 && int(l) <= k {
				want++
			}
		}
		var got int64
		var mu sync.Mutex
		rt.Run(g.DB, func(p *gdi.Process) {
			n, err := KHop(p, g, 1, k)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got = n
			mu.Unlock()
		})
		if got != want {
			t.Fatalf("k=%d: KHop = %d, want %d", k, got, want)
		}
	}
}

// refDirectedAdj builds out-adjacency from the generator's edge stream.
func refDirectedAdj(cfg kron.Config) (n uint64, out map[uint64][]uint64, all map[uint64][]uint64) {
	cfg = cfg.WithDefaults()
	n = cfg.NumVertices()
	out = make(map[uint64][]uint64)
	all = make(map[uint64][]uint64)
	var sch kron.Schema
	for _, sp := range kron.EdgesFor(cfg, sch, 0, 1) {
		out[sp.OriginApp] = append(out[sp.OriginApp], sp.TargetApp)
		all[sp.OriginApp] = append(all[sp.OriginApp], sp.TargetApp)
		all[sp.TargetApp] = append(all[sp.TargetApp], sp.OriginApp)
	}
	return
}

func TestPageRankMatchesReference(t *testing.T) {
	cfg := smallCfg
	rt, g := testGraph(t, 4, cfg)
	const iters, df = 5, 0.85

	// Reference: same synchronous iteration in plain Go.
	n, out, _ := refDirectedAdj(cfg)
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		dangling := 0.0
		for u := uint64(0); u < n; u++ {
			if len(out[u]) == 0 {
				dangling += ref[u]
			}
		}
		base := (1-df)/float64(n) + df*dangling/float64(n)
		for i := range next {
			next[i] = base
		}
		for u := uint64(0); u < n; u++ {
			if len(out[u]) == 0 {
				continue
			}
			share := ref[u] / float64(len(out[u]))
			for _, v := range out[u] {
				next[v] += df * share
			}
		}
		ref = next
	}

	got := make(map[uint64]float64)
	var mu sync.Mutex
	var norm float64
	rt.Run(g.DB, func(p *gdi.Process) {
		local, l1, err := PageRank(p, g, iters, df)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		for k, v := range local {
			got[k] = v
		}
		norm = l1
		mu.Unlock()
	})
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("PageRank mass = %v, want 1", norm)
	}
	if len(got) != int(n) {
		t.Fatalf("PageRank covered %d vertices, want %d", len(got), n)
	}
	for app, want := range ref {
		if math.Abs(got[uint64(app)]-want) > 1e-9 {
			t.Fatalf("PageRank[%d] = %v, want %v", app, got[uint64(app)], want)
		}
	}
}

func TestWCCMatchesUnionFind(t *testing.T) {
	cfg := smallCfg
	rt, g := testGraph(t, 2, cfg)

	// Reference: union-find over the undirected edge list.
	n, _, _ := refDirectedAdj(cfg)
	parent := make([]uint64, n)
	for i := range parent {
		parent[i] = uint64(i)
	}
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var sch kron.Schema
	for _, sp := range kron.EdgesFor(cfg.WithDefaults(), sch, 0, 1) {
		a, b := find(sp.OriginApp), find(sp.TargetApp)
		if a != b {
			parent[a] = b
		}
	}
	refComp := make(map[uint64]int)
	for u := uint64(0); u < n; u++ {
		refComp[find(u)]++
	}

	got := make(map[uint64]uint64)
	var mu sync.Mutex
	rt.Run(g.DB, func(p *gdi.Process) {
		local, _, err := WCC(p, g, 1000)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		for k, v := range local {
			got[k] = v
		}
		mu.Unlock()
	})
	// Same number of components, and WCC labels must be consistent with
	// union-find partitioning.
	gotComp := make(map[uint64]int)
	for _, c := range got {
		gotComp[c]++
	}
	if len(gotComp) != len(refComp) {
		t.Fatalf("WCC found %d components, union-find %d", len(gotComp), len(refComp))
	}
	for u := uint64(0); u < n; u++ {
		for v := u + 1; v < n && v < u+20; v++ {
			same := find(u) == find(v)
			if (got[u] == got[v]) != same {
				t.Fatalf("WCC disagrees with union-find on (%d, %d)", u, v)
			}
		}
	}
}

func TestCDLPMatchesReference(t *testing.T) {
	cfg := smallCfg
	const iters = 5
	rt, g := testGraph(t, 4, cfg)

	n, _, all := refDirectedAdj(cfg)
	ref := make([]uint64, n)
	for i := range ref {
		ref[i] = uint64(i)
	}
	for it := 0; it < iters; it++ {
		next := make([]uint64, n)
		for u := uint64(0); u < n; u++ {
			counts := make(map[uint64]int)
			for _, nb := range all[u] {
				counts[ref[nb]]++
			}
			if len(counts) == 0 {
				next[u] = ref[u]
				continue
			}
			best, bestCount := ref[u], 0
			first := true
			for l, cnt := range counts {
				if cnt > bestCount || (cnt == bestCount && (first || l < best)) {
					best, bestCount = l, cnt
					first = false
				}
			}
			next[u] = best
		}
		ref = next
	}

	got := make(map[uint64]uint64)
	var mu sync.Mutex
	rt.Run(g.DB, func(p *gdi.Process) {
		local, err := CDLP(p, g, iters)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		for k, v := range local {
			got[k] = v
		}
		mu.Unlock()
	})
	for u := uint64(0); u < n; u++ {
		if got[u] != ref[u] {
			t.Fatalf("CDLP[%d] = %d, want %d", u, got[u], ref[u])
		}
	}
}

func TestLCCMatchesReference(t *testing.T) {
	cfg := kron.Config{Scale: 6, EdgeFactor: 6, Seed: 9, NumLabels: 3, NumProps: 2}
	rt, g := testGraph(t, 2, cfg)

	n, _, all := refDirectedAdj(cfg)
	sets := make([]map[uint64]bool, n)
	for u := uint64(0); u < n; u++ {
		sets[u] = make(map[uint64]bool)
		for _, nb := range all[u] {
			if nb != u {
				sets[u][nb] = true
			}
		}
	}
	sum := 0.0
	for u := uint64(0); u < n; u++ {
		deg := len(sets[u])
		if deg < 2 {
			continue
		}
		links := 0
		for nb := range sets[u] {
			for x := range sets[nb] {
				if sets[u][x] {
					links++
				}
			}
		}
		sum += float64(links) / float64(deg*(deg-1))
	}
	want := sum / float64(n)

	var got float64
	var mu sync.Mutex
	rt.Run(g.DB, func(p *gdi.Process) {
		v, err := LCC(p, g)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		got = v
		mu.Unlock()
	})
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("LCC = %v, want %v", got, want)
	}
}

func TestBI2MatchesDirectCount(t *testing.T) {
	cfg := smallCfg.WithDefaults()
	rt, g := testGraph(t, 4, cfg)
	label := g.Schema.Labels[0]
	lo, hi := uint64(20), uint64(60)
	groupProp := g.Schema.Props[4%len(g.Schema.Props)]

	// Reference from the generator's deterministic vertex stream.
	want := make(map[uint64]int64)
	for app := uint64(0); app < cfg.NumVertices(); app++ {
		sp := kron.VertexSpec(cfg, g.Schema, app)
		if sp.Labels[0] != label {
			continue
		}
		var age, group uint64
		var hasGroup bool
		for _, pr := range sp.Props {
			if pr.PType == g.Schema.AgeProp {
				age = gdi.Uint64Of(pr.Value)
			}
			if pr.PType == groupProp {
				group = gdi.Uint64Of(pr.Value)
				hasGroup = true
			}
		}
		if age >= lo && age < hi && hasGroup {
			want[group]++
		}
	}

	var got map[uint64]int64
	var mu sync.Mutex
	rt.Run(g.DB, func(p *gdi.Process) {
		m, err := BI2(p, g, label, g.Schema.AgeProp, lo, hi, groupProp)
		if err != nil {
			t.Error(err)
			return
		}
		if p.Rank() == 0 {
			mu.Lock()
			got = m
			mu.Unlock()
		}
	})
	if len(got) != len(want) {
		t.Fatalf("BI2 groups = %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("BI2[%d] = %d, want %d", k, got[k], v)
		}
	}
}

func TestGNNDeterministicAcrossRankCounts(t *testing.T) {
	cfg := kron.Config{Scale: 6, EdgeFactor: 4, Seed: 3, NumLabels: 3, NumProps: 2}
	gnnCfg := GNNConfig{K: 8, Layers: 2, Seed: 5}
	var norms []float64
	for _, ranks := range []int{1, 4} {
		rt, g := testGraph(t, ranks, cfg)
		var norm float64
		var mu sync.Mutex
		rt.Run(g.DB, func(p *gdi.Process) {
			feat, featNext, err := GNNSetup(p, g, gnnCfg)
			if err != nil {
				t.Error(err)
				return
			}
			v, err := GNNForward(p, g, gnnCfg, feat, featNext)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			norm = v
			mu.Unlock()
		})
		if norm <= 0 || math.IsNaN(norm) {
			t.Fatalf("ranks=%d: GNN norm = %v", ranks, norm)
		}
		norms = append(norms, norm)
	}
	if rel := math.Abs(norms[0]-norms[1]) / norms[0]; rel > 1e-9 {
		t.Fatalf("GNN norm differs across rank counts: %v vs %v (rel %v)", norms[0], norms[1], rel)
	}
}

func TestBFSFromMissingRootTerminates(t *testing.T) {
	rt, g := testGraph(t, 2, kron.Config{Scale: 4, EdgeFactor: 2, Seed: 1, NumLabels: 2, NumProps: 1})
	rt.Run(g.DB, func(p *gdi.Process) {
		visited, _, _ := BFS(p, g, 1<<40) // nonexistent root
		if visited != 0 {
			t.Errorf("BFS from missing root visited %d", visited)
		}
	})
}
