package analytics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/kron"
)

// testGraphDense loads the same deterministic Kronecker LPG as testGraph,
// with the dense CSR analytics engine switched on or off.
func testGraphDense(t *testing.T, ranks int, cfg kron.Config, dense bool) (*gdi.Runtime, *Graph) {
	t.Helper()
	cfg = cfg.WithDefaults()
	rt := gdi.Init(ranks)
	db := rt.CreateDatabase(gdi.DatabaseParams{
		BlockSize: 512, BlocksPerRank: 1 << 16, DenseAnalytics: dense,
	})
	sch, err := kron.DefineSchema(db.Engine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var loadErr error
	var mu sync.Mutex
	rt.Run(db, func(p *gdi.Process) {
		n := p.Size()
		if err := p.BulkLoadVertices(kron.VerticesFor(cfg, sch, int(p.Rank()), n)); err != nil {
			mu.Lock()
			loadErr = err
			mu.Unlock()
			return
		}
		if err := p.BulkLoadEdges(kron.EdgesFor(cfg, sch, int(p.Rank()), n)); err != nil {
			mu.Lock()
			loadErr = err
			mu.Unlock()
		}
	})
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	return rt, &Graph{DB: db, Schema: sch}
}

// customGraph bulk-loads an explicit edge list (rank 0 contributes all
// specs) into a database with the dense engine enabled.
func customGraph(t *testing.T, ranks int, nVerts uint64, edges []gdi.EdgeSpec) (*gdi.Runtime, *Graph) {
	t.Helper()
	rt := gdi.Init(ranks)
	db := rt.CreateDatabase(gdi.DatabaseParams{BlocksPerRank: 1 << 14, DenseAnalytics: true})
	label, err := db.DefineLabel("L")
	if err != nil {
		t.Fatal(err)
	}
	var loadErr error
	var mu sync.Mutex
	rt.Run(db, func(p *gdi.Process) {
		var vs []gdi.VertexSpec
		var es []gdi.EdgeSpec
		if p.Rank() == 0 {
			for app := uint64(0); app < nVerts; app++ {
				vs = append(vs, gdi.VertexSpec{AppID: app, Labels: []gdi.LabelID{label}})
			}
			es = edges
		}
		if err := p.BulkLoadVertices(vs); err != nil {
			mu.Lock()
			loadErr = err
			mu.Unlock()
			return
		}
		if err := p.BulkLoadEdges(es); err != nil {
			mu.Lock()
			loadErr = err
			mu.Unlock()
		}
	})
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	return rt, &Graph{DB: db, Schema: kron.Schema{}}
}

// mergeMaps folds one rank's result map into the cross-rank accumulator.
func mergeMaps[K comparable, V any](mu *sync.Mutex, dst map[K]V, src map[K]V) {
	mu.Lock()
	defer mu.Unlock()
	for k, v := range src {
		dst[k] = v
	}
}

// TestDenseGoldenEquivalence holds the dense CSR engine to bit-identical
// results against the map engine on the same graph: PageRank mass per
// vertex, CDLP labels, WCC components and iteration count, the LCC average,
// and BFS visited count and depth.
func TestDenseGoldenEquivalence(t *testing.T) {
	for _, ranks := range []int{1, 4} {
		type result struct {
			pr      map[uint64]float64
			prNorm  float64
			cdlp    map[uint64]uint64
			wcc     map[uint64]uint64
			wccIts  int
			lcc     float64
			visited int64
			depth   int
		}
		results := make(map[bool]*result)
		for _, dense := range []bool{false, true} {
			rt, g := testGraphDense(t, ranks, smallCfg, dense)
			res := &result{
				pr:   make(map[uint64]float64),
				cdlp: make(map[uint64]uint64),
				wcc:  make(map[uint64]uint64),
			}
			results[dense] = res
			var mu sync.Mutex
			rt.Run(g.DB, func(p *gdi.Process) {
				pr, norm, err := PageRank(p, g, 5, 0.85)
				if err != nil {
					t.Error(err)
					return
				}
				cd, err := CDLP(p, g, 5)
				if err != nil {
					t.Error(err)
					return
				}
				wc, its, err := WCC(p, g, 1000)
				if err != nil {
					t.Error(err)
					return
				}
				lcc, err := LCC(p, g)
				if err != nil {
					t.Error(err)
					return
				}
				visited, depth, err := BFS(p, g, 0)
				if err != nil {
					t.Error(err)
					return
				}
				mergeMaps(&mu, res.pr, pr)
				mergeMaps(&mu, res.cdlp, cd)
				mergeMaps(&mu, res.wcc, wc)
				mu.Lock()
				res.prNorm, res.wccIts, res.lcc = norm, its, lcc
				res.visited, res.depth = visited, depth
				mu.Unlock()
			})
		}
		mapRes, denseRes := results[false], results[true]
		if len(denseRes.pr) != len(mapRes.pr) {
			t.Fatalf("ranks=%d: PageRank covered %d vs %d vertices", ranks, len(denseRes.pr), len(mapRes.pr))
		}
		for app, want := range mapRes.pr {
			if got := denseRes.pr[app]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("ranks=%d: PageRank[%d] = %v (dense) vs %v (map): not bit-identical", ranks, app, got, want)
			}
		}
		if math.Abs(denseRes.prNorm-mapRes.prNorm) > 1e-9 {
			t.Fatalf("ranks=%d: PageRank norm %v vs %v", ranks, denseRes.prNorm, mapRes.prNorm)
		}
		for app, want := range mapRes.cdlp {
			if got := denseRes.cdlp[app]; got != want {
				t.Fatalf("ranks=%d: CDLP[%d] = %d vs %d", ranks, app, got, want)
			}
		}
		if denseRes.wccIts != mapRes.wccIts {
			t.Fatalf("ranks=%d: WCC converged in %d vs %d iterations", ranks, denseRes.wccIts, mapRes.wccIts)
		}
		for app, want := range mapRes.wcc {
			if got := denseRes.wcc[app]; got != want {
				t.Fatalf("ranks=%d: WCC[%d] = %d vs %d", ranks, app, got, want)
			}
		}
		if math.Float64bits(denseRes.lcc) != math.Float64bits(mapRes.lcc) {
			t.Fatalf("ranks=%d: LCC %v (dense) vs %v (map): not bit-identical", ranks, denseRes.lcc, mapRes.lcc)
		}
		if denseRes.visited != mapRes.visited || denseRes.depth != mapRes.depth {
			t.Fatalf("ranks=%d: BFS (%d, %d) vs (%d, %d)", ranks,
				denseRes.visited, denseRes.depth, mapRes.visited, mapRes.depth)
		}
	}
}

// TestDenseBFSDirectionSwitch drives the direction-optimizing heuristic
// through both phases on a two-tier graph: a sparse root level (push), a
// dense middle level covering most of the graph (pull), whose expansion must
// still discover the leaf tier.
func TestDenseBFSDirectionSwitch(t *testing.T) {
	const nVerts = 64
	var edges []gdi.EdgeSpec
	// Root 0 fans out to 1..47 (the dense frontier), vertex 1 reaches the
	// leaves 48..63.
	for app := uint64(1); app < 48; app++ {
		edges = append(edges, gdi.EdgeSpec{OriginApp: 0, TargetApp: app, Dir: gdi.DirOut})
	}
	for app := uint64(48); app < nVerts; app++ {
		edges = append(edges, gdi.EdgeSpec{OriginApp: 1, TargetApp: app, Dir: gdi.DirOut})
	}
	rt, g := customGraph(t, 4, nVerts, edges)
	rt.Run(g.DB, func(p *gdi.Process) {
		visited, depth, stats, err := BFSDense(p, g, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if visited != nVerts || depth != 3 {
			t.Errorf("BFS = (%d, %d), want (%d, 3)", visited, depth, nVerts)
		}
		if stats.PullLevels == 0 {
			t.Errorf("dense frontier never switched to pull: %+v", stats)
		}
		if stats.PushLevels == 0 {
			t.Errorf("sparse root level should have pushed: %+v", stats)
		}
	})
}

// TestDenseBFSEdgeCases covers the frontier corner cases: a missing root, a
// graph with no edges (isolated vertices), a star whose first level is the
// whole graph, and undirected edges traversed in both directions.
func TestDenseBFSEdgeCases(t *testing.T) {
	t.Run("missing-root", func(t *testing.T) {
		rt, g := testGraphDense(t, 2, kron.Config{Scale: 4, EdgeFactor: 2, Seed: 1, NumLabels: 2, NumProps: 1}, true)
		rt.Run(g.DB, func(p *gdi.Process) {
			visited, depth, _, err := BFSDense(p, g, 1<<40)
			if visited != 0 || depth != 0 {
				t.Errorf("BFS from missing root = (%d, %d)", visited, depth)
			}
			owner := int(g.DB.Engine().OwnerOf(1 << 40))
			if int(p.Rank()) == owner && !errors.Is(err, gdi.ErrNotFound) {
				t.Errorf("owner rank error = %v, want ErrNotFound", err)
			}
		})
	})
	t.Run("isolated-vertices", func(t *testing.T) {
		rt, g := customGraph(t, 3, 12, nil)
		rt.Run(g.DB, func(p *gdi.Process) {
			visited, depth, _, err := BFSDense(p, g, 5)
			if err != nil {
				t.Error(err)
				return
			}
			if visited != 1 || depth != 1 {
				t.Errorf("BFS on edgeless graph = (%d, %d), want (1, 1)", visited, depth)
			}
		})
		// Every isolated vertex is its own WCC component.
		comps := make(map[uint64]uint64)
		var mu sync.Mutex
		rt.Run(g.DB, func(p *gdi.Process) {
			wc, _, err := WCC(p, g, 10)
			if err != nil {
				t.Error(err)
				return
			}
			mergeMaps(&mu, comps, wc)
		})
		for app, c := range comps {
			if c != app {
				t.Errorf("WCC[%d] = %d on an edgeless graph", app, c)
			}
		}
	})
	t.Run("full-graph-frontier", func(t *testing.T) {
		// Star: level 1 is every remaining vertex at once.
		const nVerts = 32
		var edges []gdi.EdgeSpec
		for app := uint64(1); app < nVerts; app++ {
			edges = append(edges, gdi.EdgeSpec{OriginApp: 0, TargetApp: app, Dir: gdi.DirOut})
		}
		rt, g := customGraph(t, 4, nVerts, edges)
		rt.Run(g.DB, func(p *gdi.Process) {
			visited, depth, stats, err := BFSDense(p, g, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if visited != nVerts || depth != 2 {
				t.Errorf("star BFS = (%d, %d), want (%d, 2)", visited, depth, nVerts)
			}
			if stats.PullLevels == 0 {
				t.Errorf("full-graph frontier should pull: %+v", stats)
			}
		})
	})
	t.Run("undirected-edges", func(t *testing.T) {
		// An undirected path 0-1-2-...-9; a BFS from the middle reaches both
		// ends only if undirected records traverse both ways.
		const nVerts = 10
		var edges []gdi.EdgeSpec
		for app := uint64(0); app+1 < nVerts; app++ {
			edges = append(edges, gdi.EdgeSpec{OriginApp: app, TargetApp: app + 1, Dir: gdi.DirUndirected})
		}
		rt, g := customGraph(t, 3, nVerts, edges)
		rt.Run(g.DB, func(p *gdi.Process) {
			visited, depth, _, err := BFSDense(p, g, 5)
			if err != nil {
				t.Error(err)
				return
			}
			if visited != nVerts || depth != 6 {
				t.Errorf("undirected path BFS = (%d, %d), want (%d, 6)", visited, depth, nVerts)
			}
		})
	})
}

// TestDensePageRankDeterministic: two independent runs of dense PageRank at
// the same seed must be diff-clean to the last bit — the dense arrays remove
// the map-iteration nondeterminism of the old engine.
func TestDensePageRankDeterministic(t *testing.T) {
	dump := func() string {
		rt, g := testGraphDense(t, 4, smallCfg, true)
		got := make(map[uint64]float64)
		var mu sync.Mutex
		var norm float64
		rt.Run(g.DB, func(p *gdi.Process) {
			pr, n, err := PageRank(p, g, 10, 0.85)
			if err != nil {
				t.Error(err)
				return
			}
			mergeMaps(&mu, got, pr)
			mu.Lock()
			norm = n
			mu.Unlock()
		})
		apps := make([]uint64, 0, len(got))
		for app := range got {
			apps = append(apps, app)
		}
		sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
		out := fmt.Sprintf("norm=%016x\n", math.Float64bits(norm))
		for _, app := range apps {
			out += fmt.Sprintf("%d=%016x\n", app, math.Float64bits(got[app]))
		}
		return out
	}
	if a, b := dump(), dump(); a != b {
		t.Fatalf("two dense PageRank runs at the same seed differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}
