package analytics

import (
	"math"
	"math/rand"

	gdi "github.com/gdi-go/gdi"
)

// GNNConfig parameterizes the graph-convolution workload of Listing 2 /
// Figure 6c-d: k is the feature dimension, Layers the number of
// convolutions.
type GNNConfig struct {
	K      int
	Layers int
	Seed   int64
}

// GNNSetup registers the feature property types and initializes every local
// vertex's feature vector deterministically. It must run collectively after
// the graph is loaded. The two p-types implement the double buffering the
// layer update needs (all vertices read old features, write new ones).
func GNNSetup(p *gdi.Process, g *Graph, cfg GNNConfig) (feat, featNext gdi.PTypeID, err error) {
	spec := gdi.PTypeSpec{Datatype: gdi.TypeFloat64Vector, Entity: gdi.EntityVertex}
	if feat, err = p.CreatePType("__gnn_feat", spec); err != nil {
		return
	}
	if featNext, err = p.CreatePType("__gnn_feat_next", spec); err != nil {
		return
	}
	tx := p.StartCollectiveTransaction(gdi.ReadWrite)
	for _, v := range p.LocalVertices() {
		h, aerr := tx.AssociateVertex(v)
		if aerr != nil {
			err = aerr
			break
		}
		vec := make([]float64, cfg.K)
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(h.AppID()*31+1)))
		for i := range vec {
			vec[i] = rng.Float64()
		}
		if serr := h.SetProperty(feat, gdi.Float64VectorValue(vec)); serr != nil {
			err = serr
			break
		}
	}
	if cerr := tx.Commit(); cerr != nil && err == nil {
		err = cerr
	}
	return
}

// gnnWeights builds the replicated k×k MLP weight matrix (deterministic).
func gnnWeights(cfg GNNConfig) [][]float64 {
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	w := make([][]float64, cfg.K)
	for i := range w {
		w[i] = make([]float64, cfg.K)
		for j := range w[i] {
			w[i][j] = (rng.Float64() - 0.5) / float64(cfg.K)
		}
	}
	return w
}

// GNNForward runs cfg.Layers graph convolutions (Listing 2): per layer,
// every vertex sums its out-neighbors' feature vectors into its own
// (aggregation), applies the replicated MLP (update), then a ReLU. Each
// layer is two collective transactions: a read phase that computes into
// memory and a write phase in which every rank writes only its own shard
// (so per-vertex write locks never contend). Returns the global L1 norm of
// the final features as a checksum.
func GNNForward(p *gdi.Process, g *Graph, cfg GNNConfig, feat, featNext gdi.PTypeID) (float64, error) {
	w := gnnWeights(cfg)
	cur, nxt := feat, featNext
	for layer := 0; layer < cfg.Layers; layer++ {
		// Read phase: aggregate neighbor features (remote reads through GDI).
		tx := p.StartCollectiveTransaction(gdi.ReadOnly)
		computed := make(map[gdi.VertexID][]float64)
		for _, v := range p.LocalVertices() {
			h, err := tx.AssociateVertex(v)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			raw, ok := h.Property(cur)
			if !ok {
				continue
			}
			agg := gdi.Float64VectorOf(raw)
			edges, err := h.Edges(gdi.MaskOut, nil)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			for _, e := range edges {
				nh, err := tx.AssociateVertex(e.Neighbor)
				if err != nil {
					tx.Abort()
					return 0, err
				}
				nraw, ok := nh.Property(cur)
				if !ok {
					continue
				}
				nvec := gdi.Float64VectorOf(nraw)
				for i := range agg {
					agg[i] += nvec[i]
				}
			}
			// Update phase: MLP + ReLU.
			out := make([]float64, cfg.K)
			for i := 0; i < cfg.K; i++ {
				s := 0.0
				for j := 0; j < cfg.K; j++ {
					s += w[i][j] * agg[j]
				}
				out[i] = relu(s)
			}
			computed[v] = out
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
		// Write phase: each rank updates only its own vertices.
		wtx := p.StartCollectiveTransaction(gdi.ReadWrite)
		for v, vec := range computed {
			h, err := wtx.AssociateVertex(v)
			if err != nil {
				wtx.Abort()
				return 0, err
			}
			if err := h.SetProperty(nxt, gdi.Float64VectorValue(vec)); err != nil {
				wtx.Abort()
				return 0, err
			}
		}
		if err := wtx.Commit(); err != nil {
			return 0, err
		}
		cur, nxt = nxt, cur
	}
	// Checksum: global L1 norm of the final layer.
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	local := 0.0
	for _, v := range p.LocalVertices() {
		h, err := tx.AssociateVertex(v)
		if err != nil {
			tx.Abort()
			return 0, err
		}
		if raw, ok := h.Property(cur); ok {
			for _, x := range gdi.Float64VectorOf(raw) {
				local += math.Abs(x)
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return p.AllreduceFloat64(local), nil
}
