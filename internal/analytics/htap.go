package analytics

import (
	"fmt"
	"sort"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/core"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/holder"
	"github.com/gdi-go/gdi/internal/snapshot"
)

// This file is the HTAP analytics path: iterative kernels over a pinned
// snapshot cut (package snapshot) instead of a read-only transaction, so
// PageRank and BFS run while OLTP commit trains keep landing. A session owns
// one cut and a per-rank shard mirror — the decoded committed state of this
// rank's vertices as of the cut. The CSR the kernels iterate is built from
// the mirror, and Refresh advances the session to a fresh cut by folding the
// committed delta-log window into the mirror instead of re-reading holders;
// because both the incremental fold and a full rebuild fill the same mirror
// and finish through the same mirror-to-CSR path, a fold is bit-identical to
// rebuilding from scratch (the golden equivalence test holds it to that).

// mirrorVertex is one vertex's committed state in the shard mirror: its
// application ID and its holder's inline edge-record list, verbatim. homes
// (former primaries, kept across migrations) only matter for resolving
// heavy self-loop endpoints; delta records don't carry them, and updates
// never change them, so folds preserve the entry's existing homes.
type mirrorVertex struct {
	app   uint64
	edges []holder.EdgeRec
	homes []fabric.DPtr
}

// HTAPSession is one rank's handle on a live-analytics run. All methods are
// collective unless noted: every rank must call them in the same order.
type HTAPSession struct {
	p      *gdi.Process
	eng    *core.Engine
	cut    *snapshot.Cut
	mirror map[fabric.DPtr]*mirrorVertex
	c      *csr
}

// OpenHTAP pins a cut and builds the session's shard mirror and CSR from it.
// Collective; requires DatabaseParams.HTAPSnapshots.
func OpenHTAP(p *gdi.Process, g *Graph) (*HTAPSession, error) {
	s := &HTAPSession{p: p, eng: g.DB.Engine()}
	if s.eng.Snapshots() == nil {
		return nil, fmt.Errorf("analytics: HTAP sessions need DatabaseParams.HTAPSnapshots")
	}
	cut, err := s.eng.AcquireCut(p.Rank())
	if err != nil {
		return nil, err
	}
	s.cut = cut
	if s.mirror, err = s.buildMirror(cut); err != nil {
		return nil, err
	}
	if s.c, err = s.buildCSRFromMirror(cut); err != nil {
		return nil, err
	}
	return s, nil
}

// buildMirror reads every vertex of this rank's cut listing through the
// cut's versioned block reads. Local work only.
func (s *HTAPSession) buildMirror(cut *snapshot.Cut) (map[fabric.DPtr]*mirrorVertex, error) {
	me := s.p.Rank()
	refs := cut.Verts(me)
	mirror := make(map[fabric.DPtr]*mirrorVertex, len(refs))
	for _, ref := range refs {
		v, err := s.eng.CutVertex(me, cut, ref.DP)
		if err != nil {
			return nil, err
		}
		mirror[ref.DP] = &mirrorVertex{app: v.AppID, edges: v.Edges, homes: v.Homes}
	}
	return mirror, nil
}

// buildCSRFromMirror converts the shard mirror into the dense CSR the
// kernels iterate. Heavy edge records resolve their holder through the cut,
// exactly like a live holder walk; everything after the local arrays — the
// index exchange and the shard-size allgather — is the same finish step the
// live build uses.
func (s *HTAPSession) buildCSRFromMirror(cut *snapshot.Cut) (*csr, error) {
	me := s.p.Rank()
	c := &csr{me: int32(me), nRanks: s.p.Size()}
	c.ids = make([]gdi.VertexID, 0, len(s.mirror))
	for dp := range s.mirror {
		c.ids = append(c.ids, dp)
	}
	sort.Slice(c.ids, func(i, j int) bool { return c.ids[i] < c.ids[j] })
	c.idx = make(map[gdi.VertexID]int32, len(c.ids))
	for i, v := range c.ids {
		c.idx[v] = int32(i)
	}
	c.app = make([]uint64, len(c.ids))
	c.outOff = make([]int32, len(c.ids)+1)
	c.allOff = make([]int32, len(c.ids)+1)
	var allNbr []gdi.VertexID
	var isOut []bool
	nOut := 0
	for i, dp := range c.ids {
		mv := s.mirror[dp]
		c.app[i] = mv.app
		for _, rec := range mv.edges {
			nb := rec.Neighbor
			if rec.Heavy {
				e, err := s.eng.CutEdge(me, cut, rec.Neighbor)
				if err != nil {
					return nil, err
				}
				nb = e.Target
				if nb == dp || mirrorIsHome(mv, nb) {
					nb = e.Origin
				}
			}
			allNbr = append(allNbr, nb)
			out := rec.Dir == gdi.DirOut || rec.Dir == gdi.DirUndirected
			isOut = append(isOut, out)
			if out {
				nOut++
			}
		}
		c.outOff[i+1] = int32(nOut)
		c.allOff[i+1] = int32(len(allNbr))
	}
	return c, c.finish(s.p, allNbr, isOut, nOut)
}

// mirrorIsHome reports whether dp is one of the vertex's former primaries
// (edge holders record endpoints as of creation; migration does not rewrite
// them).
func mirrorIsHome(mv *mirrorVertex, dp fabric.DPtr) bool {
	for _, h := range mv.homes {
		if h == dp {
			return true
		}
	}
	return false
}

// Refresh advances the session to a freshly pinned cut. The committed
// delta-log window between the old and new cut positions folds into the
// mirror in commit order; if any rank's window was trimmed or its vertex set
// drifted from the log's account (live migration moves primaries without
// logging), every rank falls back to a full mirror rebuild — agreed with one
// OR-reduction so the collective CSR finish stays aligned. The old cut is
// released only after the fold read its log window, since releasing may trim
// the log up to the new cut's position.
func (s *HTAPSession) Refresh() error {
	me := s.p.Rank()
	newCut, err := s.eng.AcquireCut(me)
	if err != nil {
		return err
	}
	snap := s.eng.Snapshots()
	fallback := false
	recs, err := snap.Deltas(me, s.cut.LogPos(me), newCut.LogPos(me))
	if err != nil {
		fallback = true
	} else {
		for _, r := range recs {
			switch r.Kind {
			case snapshot.KindDelete:
				delete(s.mirror, r.DP)
			default: // create or update: replace wholesale
				if mv, ok := s.mirror[r.DP]; ok {
					mv.app = r.App
					mv.edges = r.Edges
				} else {
					s.mirror[r.DP] = &mirrorVertex{app: r.App, edges: r.Edges}
				}
			}
		}
		// Drift check: the folded mirror must name exactly the new cut's
		// vertices. Anything the log could not account for (migrations)
		// shows up here as a set mismatch.
		refs := newCut.Verts(me)
		if len(refs) != len(s.mirror) {
			fallback = true
		} else {
			for _, ref := range refs {
				mv, ok := s.mirror[ref.DP]
				if !ok || mv.app != ref.App {
					fallback = true
					break
				}
			}
		}
	}
	fallback = collective.OrReduce(s.p.Comm(), me, fallback)
	s.eng.ReleaseCut(me, s.cut)
	s.cut = newCut
	if fallback {
		if s.mirror, err = s.buildMirror(newCut); err != nil {
			return err
		}
	} else if me == 0 {
		snap.CountFold() // once per collective fold, not once per rank
	}
	s.c, err = s.buildCSRFromMirror(newCut)
	return err
}

// Close releases the session's cut collectively, returning its retired
// block versions to the arena free path. A run dying mid-iteration on one
// rank may instead call Drop from that single goroutine.
func (s *HTAPSession) Close() {
	s.eng.ReleaseCut(s.p.Rank(), s.cut)
}

// Drop releases the cut non-collectively (single-goroutine, idempotent):
// the escape hatch for an analytics run abandoned mid-iteration.
func (s *HTAPSession) Drop() { s.cut.Release() }

// Cut exposes the session's pinned cut (diagnostics and tests).
func (s *HTAPSession) Cut() *snapshot.Cut { return s.cut }

// PageRank runs damped PageRank over the session's cut-sourced CSR.
// Collective; bit-identical to the dense engine on a quiesced database.
func (s *HTAPSession) PageRank(iters int, df float64) (map[uint64]float64, float64, error) {
	return pageRankOverCSR(s.p, s.c, iters, df)
}

// BFS runs direction-optimizing BFS from rootApp over the session's
// cut-sourced CSR. Collective. A root that did not exist at cut time reports
// ErrNotFound (with zero vertices visited) on every rank.
func (s *HTAPSession) BFS(rootApp uint64) (int64, int, BFSStats, error) {
	rootIdx := int32(-1)
	found := int64(0)
	for i, a := range s.c.app {
		if a == rootApp {
			rootIdx = int32(i)
			found = 1
			break
		}
	}
	var firstErr error
	if s.p.AllreduceInt64(found) == 0 {
		firstErr = fmt.Errorf("%w: BFS root %d at cut time", gdi.ErrNotFound, rootApp)
	}
	return bfsOverCSR(s.p, s.c, rootIdx, firstErr)
}
