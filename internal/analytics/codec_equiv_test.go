package analytics

import (
	"math"
	"sync"
	"testing"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/kron"
)

// testGraphCodec loads the deterministic Kronecker LPG under an explicit
// holder codec (testGraphDense is the CodecV1 shorthand).
func testGraphCodec(t *testing.T, ranks int, cfg kron.Config, dense bool, codec gdi.HolderCodec) (*gdi.Runtime, *Graph) {
	t.Helper()
	cfg = cfg.WithDefaults()
	rt := gdi.Init(ranks)
	db := rt.CreateDatabase(gdi.DatabaseParams{
		BlockSize: 512, BlocksPerRank: 1 << 16, DenseAnalytics: dense, HolderCodec: codec,
	})
	sch, err := kron.DefineSchema(db.Engine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var loadErr error
	var mu sync.Mutex
	rt.Run(db, func(p *gdi.Process) {
		n := p.Size()
		if err := p.BulkLoadVertices(kron.VerticesFor(cfg, sch, int(p.Rank()), n)); err != nil {
			mu.Lock()
			loadErr = err
			mu.Unlock()
			return
		}
		if err := p.BulkLoadEdges(kron.EdgesFor(cfg, sch, int(p.Rank()), n)); err != nil {
			mu.Lock()
			loadErr = err
			mu.Unlock()
		}
	})
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	return rt, &Graph{DB: db, Schema: sch}
}

// TestCodecGoldenEquivalence holds the v2 holder codec to bit-identical
// analytics results against v1 on the same graph, for both the map engine
// and the dense CSR engine: a wire format is a storage concern, and the
// moment it reorders edge records or perturbs a float the kernels drift.
// PageRank mass per vertex and norm, BFS visited count and depth.
func TestCodecGoldenEquivalence(t *testing.T) {
	const ranks = 4
	for _, dense := range []bool{false, true} {
		type result struct {
			pr      map[uint64]float64
			prNorm  float64
			visited int64
			depth   int
		}
		results := make(map[gdi.HolderCodec]*result)
		for _, codec := range []gdi.HolderCodec{gdi.CodecV1, gdi.CodecV2} {
			rt, g := testGraphCodec(t, ranks, smallCfg, dense, codec)
			res := &result{pr: make(map[uint64]float64)}
			results[codec] = res
			var mu sync.Mutex
			rt.Run(g.DB, func(p *gdi.Process) {
				pr, norm, err := PageRank(p, g, 5, 0.85)
				if err != nil {
					t.Error(err)
					return
				}
				visited, depth, err := BFS(p, g, 0)
				if err != nil {
					t.Error(err)
					return
				}
				mergeMaps(&mu, res.pr, pr)
				mu.Lock()
				res.prNorm, res.visited, res.depth = norm, visited, depth
				mu.Unlock()
			})
		}
		v1, v2 := results[gdi.CodecV1], results[gdi.CodecV2]
		if len(v1.pr) != len(v2.pr) {
			t.Fatalf("dense=%v: PageRank covered %d (v1) vs %d (v2) vertices", dense, len(v1.pr), len(v2.pr))
		}
		for app, want := range v1.pr {
			if got := v2.pr[app]; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("dense=%v: PageRank[%d] = %v (v2) vs %v (v1): not bit-identical", dense, app, got, want)
			}
		}
		// The dense engine folds the norm over flat arrays in index order —
		// bit-exact across codecs. The map engine's final fold iterates a Go
		// map, so its summation order (and last-ulp rounding) varies run to
		// run regardless of codec; tolerance there, as in TestDenseGoldenEquivalence.
		if dense {
			if math.Float64bits(v1.prNorm) != math.Float64bits(v2.prNorm) {
				t.Fatalf("dense=%v: PageRank norm %v (v2) vs %v (v1)", dense, v2.prNorm, v1.prNorm)
			}
		} else if math.Abs(v1.prNorm-v2.prNorm) > 1e-9 {
			t.Fatalf("dense=%v: PageRank norm %v (v2) vs %v (v1)", dense, v2.prNorm, v1.prNorm)
		}
		if v1.visited != v2.visited || v1.depth != v2.depth {
			t.Fatalf("dense=%v: BFS (%d, %d) (v2) vs (%d, %d) (v1)", dense,
				v2.visited, v2.depth, v1.visited, v1.depth)
		}
	}
}
