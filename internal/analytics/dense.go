package analytics

import (
	"fmt"
	"math/bits"
	"sort"

	gdi "github.com/gdi-go/gdi"
)

// This file implements the dense CSR analytics engine
// (DatabaseParams.DenseAnalytics): the iterative kernels rebuilt over the
// index-compacted snapshot of csr.go. Values live in flat arrays indexed by
// dense vertex index, messages are little-endian records in reusable
// per-destination byte buffers, and every exchange is exactly one PUT train
// per destination rank and round through the one-sided exchange — no map
// lookups and no per-edge allocations anywhere on the iteration path.
//
// Message emission order deliberately mirrors the map engine (ascending
// dense index = ascending VertexID, holder record order within a vertex,
// incoming chunks folded in source-rank order), so floating-point kernels
// produce bit-identical per-vertex results; the golden equivalence tests
// hold both engines to that.

// BFSStats reports how a direction-optimizing BFS traversed: how many
// levels expanded top-down (push) versus bottom-up (pull).
type BFSStats struct {
	PushLevels int
	PullLevels int
}

// bfsPullAlpha tunes the direction-optimizing switch: a level is expanded
// bottom-up when pullAlpha * |frontier| exceeds the number of unvisited
// vertices, i.e. once the frontier is dense enough that scanning the
// unvisited side touches fewer edges than pushing the frontier's (Beamer's
// heuristic on vertex counts).
const bfsPullAlpha = 4

// bfsDense is the direction-optimizing breadth-first search over bitmap
// frontiers in the dense index space. Push levels route frontier segments
// (dense indices, deduplicated per destination with a bitmap) through the
// exchange; pull levels broadcast the claimed-frontier bitmap and let every
// rank scan its own unvisited vertices for a frontier neighbor. The return
// contract matches the map engine's BFS exactly.
func bfsDense(p *gdi.Process, g *Graph, rootApp uint64) (int64, int, BFSStats, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	c, err := buildCSR(p, tx)
	if err != nil {
		return 0, 0, BFSStats{}, err
	}
	rootIdx := int32(-1)
	var firstErr error
	if int(c.me) == int(p.Database().Engine().OwnerOf(rootApp)) {
		root, terr := tx.TranslateVertexID(rootApp)
		if terr != nil {
			// Match the map engine: record the error but keep running the
			// collective loop; an empty frontier terminates it immediately.
			firstErr = terr
		} else if ix, ok := c.idx[root]; ok {
			rootIdx = ix
		}
	}
	return bfsOverCSR(p, c, rootIdx, firstErr)
}

// bfsOverCSR runs the direction-optimizing BFS over an already-built CSR
// snapshot (live or cut-sourced); rootIdx is the root's dense index on this
// rank, or -1 when the root lives elsewhere.
func bfsOverCSR(p *gdi.Process, c *csr, rootIdx int32, firstErr error) (int64, int, BFSStats, error) {
	var stats BFSStats
	nv := c.nv()
	me := int(c.me)
	n := c.nRanks
	visited := newBitset(nv)
	frontier := newBitset(nv)
	next := newBitset(nv)
	newly := newBitset(nv)
	if rootIdx >= 0 {
		frontier.set(rootIdx)
	}
	globalN := p.AllreduceInt64(int64(nv))
	x := xchg(p)
	bufs := make([][]byte, n)
	pushBufs := make([][]byte, n)
	queued := make([]bitset, n) // per-destination dedup of pushed indices
	for r := 0; r < n; r++ {
		if r != me {
			queued[r] = newBitset(int(c.counts[r]))
		}
	}
	fb := make([][]byte, n) // per-source frontier bitmaps during pull levels
	var visitedGlobal int64
	for d := 0; ; d++ {
		// Claim this level's frontier: new vertices only, bitmap-deduped.
		local := int64(0)
		for k := range newly {
			w := frontier[k] &^ visited[k]
			newly[k] = w
			visited[k] |= w
			local += int64(bits.OnesCount8(w))
		}
		total := p.AllreduceInt64(local)
		if total == 0 {
			// visitedGlobal already holds the allreduced claim totals.
			return visitedGlobal, d, stats, firstErr
		}
		visitedGlobal += total
		next.clear()
		for r := range bufs {
			bufs[r] = nil
		}
		if bfsPullAlpha*total > globalN-visitedGlobal {
			// Bottom-up: ship the claimed frontier bitmap to every rank,
			// then scan unvisited vertices for any frontier neighbor.
			stats.PullLevels++
			for r := 0; r < n; r++ {
				if r != me {
					bufs[r] = newly
				}
			}
			in := x.Round(p.Rank(), bufs)
			for s := 0; s < n; s++ {
				if s == me {
					fb[s] = newly
				} else {
					fb[s] = in[s]
				}
			}
			for i := int32(0); int(i) < nv; i++ {
				if visited.get(i) {
					continue
				}
				for _, t := range c.all(i) {
					if bitGet(fb[t.rank], t.idx) {
						next.set(i)
						break
					}
				}
			}
		} else {
			// Top-down: push every claimed vertex's neighbors, local ones
			// straight into the next-frontier bitmap, remote ones as dense
			// indices (one train per owner rank).
			stats.PushLevels++
			for r := 0; r < n; r++ {
				if r != me {
					queued[r].clear()
					bufs[r] = pushBufs[r][:0]
				}
			}
			for k, w := range newly {
				for ; w != 0; w &= w - 1 {
					i := int32(k*8 + bits.TrailingZeros8(w))
					for _, t := range c.all(i) {
						if int(t.rank) == me {
							if !visited.get(t.idx) {
								next.set(t.idx)
							}
							continue
						}
						if q := queued[t.rank]; !q.get(t.idx) {
							q.set(t.idx)
							bufs[t.rank] = appendU32(bufs[t.rank], uint32(t.idx))
						}
					}
				}
			}
			for r := 0; r < n; r++ {
				if r != me {
					pushBufs[r] = bufs[r] // keep grown buffers for reuse
				}
			}
			in := x.Round(p.Rank(), bufs)
			for s := 0; s < n; s++ {
				if s == me {
					continue
				}
				msg := in[s]
				for off := 0; off+4 <= len(msg); off += 4 {
					if ix := int32(getU32(msg, off)); !visited.get(ix) {
						next.set(ix)
					}
				}
			}
		}
		frontier, next = next, frontier
	}
}

// pageRankDense is damped PageRank over the CSR snapshot: dense []float64
// mass arrays, rank-mass messages as (index, share) records, one PUT train
// per owner rank and iteration.
func pageRankDense(p *gdi.Process, g *Graph, iters int, df float64) (map[uint64]float64, float64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	c, err := buildCSR(p, tx)
	if err != nil {
		return nil, 0, err
	}
	return pageRankOverCSR(p, c, iters, df)
}

// pageRankOverCSR runs PageRank over an already-built CSR snapshot (live or
// cut-sourced).
func pageRankOverCSR(p *gdi.Process, c *csr, iters int, df float64) (map[uint64]float64, float64, error) {
	nGlobal := float64(p.AllreduceInt64(int64(c.nv())))
	if nGlobal == 0 {
		return nil, 0, fmt.Errorf("analytics: empty graph")
	}
	nv := c.nv()
	rank := make([]float64, nv)
	next := make([]float64, nv)
	for i := range rank {
		rank[i] = 1 / nGlobal
	}
	x := xchg(p)
	bufs := make([][]byte, c.nRanks)
	for it := 0; it < iters; it++ {
		for d := range bufs {
			bufs[d] = bufs[d][:0]
		}
		dangling := 0.0
		for i := 0; i < nv; i++ {
			outs := c.out(int32(i))
			if len(outs) == 0 {
				dangling += rank[i]
				continue
			}
			share := rank[i] / float64(len(outs))
			for _, t := range outs {
				bufs[t.rank] = appendU32F64(bufs[t.rank], uint32(t.idx), share)
			}
		}
		in := x.Round(p.Rank(), bufs)
		danglingAll := p.AllreduceFloat64(dangling)
		base := (1-df)/nGlobal + df*danglingAll/nGlobal
		for i := range next {
			next[i] = base
		}
		for s := 0; s < c.nRanks; s++ {
			msg := in[s]
			for off := 0; off+12 <= len(msg); off += 12 {
				next[getU32(msg, off)] += df * getF64(msg, off+4)
			}
		}
		rank, next = next, rank
	}
	out := make(map[uint64]float64, nv)
	local := 0.0
	for i := 0; i < nv; i++ {
		out[c.app[i]] = rank[i]
		local += rank[i]
	}
	return out, p.AllreduceFloat64(local), nil
}

// cdlpDense is synchronous label propagation over the CSR snapshot. Incoming
// labels are grouped per destination index with a counting sort into
// reusable flat arrays, each group sorted ascending, and the smallest
// most-frequent label adopted — the same Graphalytics rule, without the
// per-vertex frequency maps.
func cdlpDense(p *gdi.Process, g *Graph, iters int) (map[uint64]uint64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	c, err := buildCSR(p, tx)
	if err != nil {
		return nil, err
	}
	nv := c.nv()
	label := append([]uint64(nil), c.app...)
	x := xchg(p)
	bufs := make([][]byte, c.nRanks)
	off := make([]int32, nv+1)
	pos := make([]int32, nv)
	var flat []uint64
	for it := 0; it < iters; it++ {
		for d := range bufs {
			bufs[d] = bufs[d][:0]
		}
		for i := 0; i < nv; i++ {
			for _, t := range c.all(int32(i)) {
				bufs[t.rank] = appendU32U64(bufs[t.rank], uint32(t.idx), label[i])
			}
		}
		in := x.Round(p.Rank(), bufs)
		// Counting sort of incoming labels by destination index.
		for i := range off {
			off[i] = 0
		}
		total := 0
		for s := 0; s < c.nRanks; s++ {
			msg := in[s]
			for o := 0; o+12 <= len(msg); o += 12 {
				off[getU32(msg, o)+1]++
				total++
			}
		}
		for i := 1; i <= nv; i++ {
			off[i] += off[i-1]
		}
		copy(pos, off[:nv])
		if cap(flat) < total {
			flat = make([]uint64, total)
		}
		flat = flat[:total]
		for s := 0; s < c.nRanks; s++ {
			msg := in[s]
			for o := 0; o+12 <= len(msg); o += 12 {
				i := getU32(msg, o)
				flat[pos[i]] = getU64(msg, o+4)
				pos[i]++
			}
		}
		for i := 0; i < nv; i++ {
			group := flat[off[i]:off[i+1]]
			if len(group) == 0 {
				continue
			}
			sort.Slice(group, func(a, b int) bool { return group[a] < group[b] })
			best, bestCount := label[i], 0
			for a := 0; a < len(group); {
				b := a + 1
				for b < len(group) && group[b] == group[a] {
					b++
				}
				if b-a > bestCount {
					best, bestCount = group[a], b-a
				}
				a = b
			}
			label[i] = best
		}
	}
	out := make(map[uint64]uint64, nv)
	for i := 0; i < nv; i++ {
		out[c.app[i]] = label[i]
	}
	return out, nil
}

// wccDense is minimum-label propagation over the CSR snapshot until global
// convergence, dense []uint64 component array, same iteration count as the
// map engine.
func wccDense(p *gdi.Process, g *Graph, maxIters int) (map[uint64]uint64, int, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	c, err := buildCSR(p, tx)
	if err != nil {
		return nil, 0, err
	}
	nv := c.nv()
	comp := append([]uint64(nil), c.app...)
	x := xchg(p)
	bufs := make([][]byte, c.nRanks)
	it := 0
	for ; it < maxIters; it++ {
		for d := range bufs {
			bufs[d] = bufs[d][:0]
		}
		for i := 0; i < nv; i++ {
			for _, t := range c.all(int32(i)) {
				bufs[t.rank] = appendU32U64(bufs[t.rank], uint32(t.idx), comp[i])
			}
		}
		in := x.Round(p.Rank(), bufs)
		var changed int64
		for s := 0; s < c.nRanks; s++ {
			msg := in[s]
			for o := 0; o+12 <= len(msg); o += 12 {
				if i, v := getU32(msg, o), getU64(msg, o+4); v < comp[i] {
					comp[i] = v
					changed++
				}
			}
		}
		if p.AllreduceInt64(changed) == 0 {
			it++
			break
		}
	}
	out := make(map[uint64]uint64, nv)
	for i := 0; i < nv; i++ {
		out[c.app[i]] = comp[i]
	}
	return out, it, nil
}

// lccDense computes the average local clustering coefficient over the CSR
// snapshot with exactly two exchange rounds for the whole rank: a request
// round shipping each vertex's sorted deduplicated neighbor set to every
// neighbor's owner, and a reply round carrying one intersection count per
// request — instead of the map engine's per-vertex remote holder fetches.
func lccDense(p *gdi.Process, g *Graph) (float64, error) {
	tx := p.StartCollectiveTransaction(gdi.ReadOnly)
	defer tx.Commit()
	c, err := buildCSR(p, tx)
	if err != nil {
		return 0, err
	}
	nv := c.nv()
	n := c.nRanks
	selfPacked := func(i int32) uint64 { return target{rank: c.me, idx: i}.packed() }
	// mine[i]: v's distinct neighbors (self-loops excluded), sorted packed.
	mineOff := make([]int32, nv+1)
	var mineFlat []uint64
	for i := 0; i < nv; i++ {
		start := len(mineFlat)
		self := selfPacked(int32(i))
		for _, t := range c.all(int32(i)) {
			if pk := t.packed(); pk != self {
				mineFlat = append(mineFlat, pk)
			}
		}
		seg := mineFlat[start:]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
		w := start
		for k, pk := range seg {
			if k == 0 || pk != mineFlat[w-1] {
				mineFlat[w] = pk
				w++
			}
		}
		mineFlat = mineFlat[:w]
		mineOff[i+1] = int32(w)
	}
	// Request round: one (neighborIndex, |mine|, mine...) record per
	// (vertex, neighbor) pair, bucketed by the neighbor's owner.
	x := xchg(p)
	bufs := make([][]byte, n)
	reqFrom := make([][]int32, n) // requesting vertex per record, in send order
	for i := 0; i < nv; i++ {
		mine := mineFlat[mineOff[i]:mineOff[i+1]]
		if len(mine) < 2 {
			continue
		}
		for _, pk := range mine {
			d := int(pk >> 32)
			b := appendU32(bufs[d], uint32(pk))
			b = appendU32(b, uint32(len(mine)))
			for _, m := range mine {
				b = appendU64(b, m)
			}
			bufs[d] = b
			reqFrom[d] = append(reqFrom[d], int32(i))
		}
	}
	in := x.Round(p.Rank(), bufs)
	// Answer round: for each request, count u's distinct neighbors
	// (excluding u itself) that lie in the shipped set. u's own sorted
	// deduplicated neighbor set is already in mineFlat.
	reply := make([][]byte, n)
	for s := 0; s < n; s++ {
		msg := in[s]
		var rb []byte
		for o := 0; o < len(msg); {
			uIdx := int32(getU32(msg, o))
			m := int(getU32(msg, o+4))
			mineBase := o + 8
			o = mineBase + m*8
			links := 0
			for _, pk := range mineFlat[mineOff[uIdx]:mineOff[uIdx+1]] {
				// Binary search the shipped sorted set directly in wire form.
				lo, hi := 0, m
				for lo < hi {
					mid := (lo + hi) / 2
					if getU64(msg, mineBase+mid*8) < pk {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				if lo < m && getU64(msg, mineBase+lo*8) == pk {
					links++
				}
			}
			rb = appendU32(rb, uint32(links))
		}
		reply[s] = rb
	}
	rin := x.Round(p.Rank(), reply)
	acc := make([]int64, nv)
	for d := 0; d < n; d++ {
		if len(rin[d]) != len(reqFrom[d])*4 {
			return 0, fmt.Errorf("analytics: rank %d answered %d bytes for %d LCC requests", d, len(rin[d]), len(reqFrom[d]))
		}
		for k, vi := range reqFrom[d] {
			acc[vi] += int64(getU32(rin[d], k*4))
		}
	}
	localSum, localCnt := 0.0, int64(nv)
	for i := 0; i < nv; i++ {
		deg := int(mineOff[i+1] - mineOff[i])
		if deg < 2 {
			continue
		}
		localSum += float64(acc[i]) / float64(deg*(deg-1))
	}
	sum := p.AllreduceFloat64(localSum)
	cnt := p.AllreduceInt64(localCnt)
	if cnt == 0 {
		return 0, nil
	}
	return sum / float64(cnt), nil
}
