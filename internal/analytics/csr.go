package analytics

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/collective"
	exch "github.com/gdi-go/gdi/internal/exchange"
)

// target is a pre-resolved neighbor reference in the dense index space: the
// owning rank and the neighbor's dense index on that rank. Resolving every
// neighbor once at snapshot build time is what lets the iterative kernels
// run without a single map lookup — message routing and value updates are
// plain array indexing on both sides of the exchange.
type target struct {
	rank int32
	idx  int32
}

// packed folds a target into one comparable word (rank in the high half),
// the key LCC's sorted neighbor sets use.
func (t target) packed() uint64 { return uint64(uint32(t.rank))<<32 | uint64(uint32(t.idx)) }

// csr is one rank's index-compacted snapshot of its shard: local vertices in
// ascending VertexID order (the dense index space), their appIDs, and out-
// and all-neighbor lists as flat offset+target arrays — the CSR layout
// "Demystifying Graph Databases" identifies as the canonical
// high-performance adjacency organization. Edge targets preserve holder
// record order, so the dense kernels emit messages in exactly the order the
// map engine does (bit-identical floating-point results).
type csr struct {
	me     int32
	nRanks int
	ids    []gdi.VertexID         // dense index -> vertex, ascending
	app    []uint64               // dense index -> application ID
	idx    map[gdi.VertexID]int32 // local vertex -> dense index (root seeding only)
	counts []int32                // per-rank shard sizes (sizes remote frontier bitmaps)
	outOff []int32                // CSR offsets, len(ids)+1
	outTgt []target               // out/undirected neighbors
	allOff []int32
	allTgt []target // neighbors over every direction
}

func (c *csr) nv() int { return len(c.ids) }

func (c *csr) out(i int32) []target { return c.outTgt[c.outOff[i]:c.outOff[i+1]] }
func (c *csr) all(i int32) []target { return c.allTgt[c.allOff[i]:c.allOff[i+1]] }

// xchg returns the engine's one-sided exchange for this graph.
func xchg(p *gdi.Process) *exch.Exchange { return p.Database().Engine().Exchange() }

// buildCSR snapshots the rank's shard into dense CSR form. Collective: one
// batched association of the local shard, then a single index-exchange pass
// over the one-sided exchange — every distinct remote neighbor is looked up
// on its owner exactly once (query round, reply round) and stored as a
// (rank, remoteIndex) pair.
func buildCSR(p *gdi.Process, tx *gdi.Transaction) (*csr, error) {
	n := p.Size()
	me := int32(p.Rank())
	c := &csr{me: me, nRanks: n}
	c.ids = p.LocalVertices()
	sort.Slice(c.ids, func(i, j int) bool { return c.ids[i] < c.ids[j] })
	c.idx = make(map[gdi.VertexID]int32, len(c.ids))
	for i, v := range c.ids {
		c.idx[v] = int32(i)
	}
	handles, err := tx.AssociateVertices(c.ids)
	if err != nil {
		return nil, err
	}
	c.app = make([]uint64, len(c.ids))
	c.outOff = make([]int32, len(c.ids)+1)
	c.allOff = make([]int32, len(c.ids)+1)
	// Degree is a header read (no edge-region walk on lazy holders), so one
	// cheap pass sizes the adjacency arrays exactly and the gather loop below
	// never reallocates them.
	totalDeg := 0
	for i, v := range c.ids {
		if handles[i] == nil {
			return nil, fmt.Errorf("analytics: local vertex %v disappeared", v)
		}
		totalDeg += handles[i].Degree()
	}
	allNbr := make([]gdi.VertexID, 0, totalDeg)
	isOut := make([]bool, 0, totalDeg) // parallel to allNbr: record also feeds the out list
	nOut := 0
	for i, v := range c.ids {
		h := handles[i]
		if h == nil {
			return nil, fmt.Errorf("analytics: local vertex %v disappeared", v)
		}
		c.app[i] = h.AppID()
		if err := h.ForEachEdge(gdi.MaskAll, func(nb gdi.VertexID, dir gdi.Direction) {
			allNbr = append(allNbr, nb)
			out := dir == gdi.DirOut || dir == gdi.DirUndirected
			isOut = append(isOut, out)
			if out {
				nOut++
			}
		}); err != nil {
			return nil, err
		}
		c.outOff[i+1] = int32(nOut)
		c.allOff[i+1] = int32(len(allNbr))
	}

	return c, c.finish(p, allNbr, isOut, nOut)
}

// finish turns a csr whose ids/app/offset arrays are filled into a complete
// snapshot: it resolves every neighbor reference into dense (rank, index)
// targets with one index-exchange pass and allgathers the shard sizes. Both
// the live build (buildCSR) and the cut-sourced HTAP build (htap.go) end
// here, which is what makes their outputs comparable bit for bit.
//
// Index exchange: one query per distinct remote neighbor, bucketed by
// owner, shipped as one PUT train per owner rank; owners answer from
// their own dense index, again one train per requester.
func (c *csr) finish(p *gdi.Process, allNbr []gdi.VertexID, isOut []bool, nOut int) error {
	n := c.nRanks
	me := c.me
	queries := make([][]gdi.VertexID, n)
	resolve := make(map[gdi.VertexID]int32)
	for _, nb := range allNbr {
		r := int(nb.Rank())
		if r == int(me) {
			continue
		}
		if _, dup := resolve[nb]; dup {
			continue
		}
		resolve[nb] = -1
		queries[r] = append(queries[r], nb)
	}
	x := xchg(p)
	bufs := make([][]byte, n)
	for d, q := range queries {
		if d == int(me) || len(q) == 0 {
			continue
		}
		sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })
		buf := make([]byte, 0, len(q)*8)
		for _, nb := range q {
			buf = appendU64(buf, uint64(nb))
		}
		bufs[d] = buf
	}
	in := x.Round(p.Rank(), bufs)
	reply := make([][]byte, n)
	for s := 0; s < n; s++ {
		if s == int(me) || len(in[s]) == 0 {
			continue
		}
		nq := len(in[s]) / 8
		rb := make([]byte, 0, nq*4)
		for k := 0; k < nq; k++ {
			ix, ok := c.idx[gdi.VertexID(getU64(in[s], k*8))]
			if !ok {
				ix = -1
			}
			rb = appendU32(rb, uint32(ix))
		}
		reply[s] = rb
	}
	rin := x.Round(p.Rank(), reply)
	for d := 0; d < n; d++ {
		if d == int(me) {
			continue
		}
		q := queries[d]
		if len(rin[d]) != len(q)*4 {
			return fmt.Errorf("analytics: rank %d answered %d bytes for %d index queries", d, len(rin[d]), len(q))
		}
		for k, nb := range q {
			ix := int32(getU32(rin[d], k*4))
			if ix < 0 {
				return fmt.Errorf("analytics: neighbor %v disappeared", nb)
			}
			resolve[nb] = ix
		}
	}
	// One resolution per record fills both target arrays (the out list is a
	// record-order subset of the all list).
	c.allTgt = make([]target, len(allNbr))
	c.outTgt = make([]target, 0, nOut)
	for i, nb := range allNbr {
		var t target
		if int32(nb.Rank()) == me {
			ix, ok := c.idx[nb]
			if !ok {
				return fmt.Errorf("analytics: neighbor %v disappeared", nb)
			}
			t = target{rank: me, idx: ix}
		} else {
			t = target{rank: int32(nb.Rank()), idx: resolve[nb]}
		}
		c.allTgt[i] = t
		if isOut[i] {
			c.outTgt = append(c.outTgt, t)
		}
	}
	c.counts = collective.Allgather(p.Comm(), p.Rank(), int32(len(c.ids)))
	return nil
}

// Wire-format helpers: all dense-engine messages are little-endian records
// appended to reusable per-destination byte buffers.

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// appendU32U64 appends one 12-byte (index, word) record with a single append
// — the wire unit of the label/component/rank-mass messages.
func appendU32U64(b []byte, i uint32, v uint64) []byte {
	return append(b, byte(i), byte(i>>8), byte(i>>16), byte(i>>24),
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendU32F64(b []byte, i uint32, v float64) []byte {
	return appendU32U64(b, i, math.Float64bits(v))
}

func getU32(b []byte, off int) uint32 { return binary.LittleEndian.Uint32(b[off:]) }
func getU64(b []byte, off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
func getF64(b []byte, off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
}

// bitset is a dense-index bit vector backed by bytes, so frontier bitmaps
// travel through the exchange without re-encoding.
type bitset []byte

func newBitset(n int) bitset { return make(bitset, (n+7)/8) }

func (b bitset) set(i int32)      { b[i>>3] |= 1 << (i & 7) }
func (b bitset) get(i int32) bool { return b[i>>3]&(1<<(i&7)) != 0 }

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// bitGet tests bit i of a raw bitmap payload.
func bitGet(b []byte, i int32) bool {
	k := int(i >> 3)
	return k < len(b) && b[k]&(1<<(i&7)) != 0
}
