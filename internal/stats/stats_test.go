package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Fatalf("p25 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestPercentileUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{5, 1, 3}
	_ = Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestCI95BracketsMean(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	lo, hi := CI95(xs)
	m := Mean(xs)
	if !(lo <= m && m <= hi) {
		t.Fatalf("CI [%v, %v] does not bracket mean %v", lo, hi, m)
	}
	if hi-lo <= 0 {
		t.Fatal("degenerate CI on varied data")
	}
	// Single sample: point interval.
	lo, hi = CI95([]float64{7})
	if lo != 7 || hi != 7 {
		t.Fatalf("single-sample CI = [%v, %v]", lo, hi)
	}
}

func TestCI95Deterministic(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	lo1, hi1 := CI95(xs)
	lo2, hi2 := CI95(xs)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("bootstrap CI not deterministic")
	}
}

func TestQuickCIWithinRange(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := CI95(xs)
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return lo >= mn-1e-9 && hi <= mx+1e-9 && lo <= hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(10 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	wantMean := (100.0 + 100.0 + 10000.0) / 3
	if math.Abs(h.MeanNs()-wantMean) > 0.01 {
		t.Fatalf("MeanNs = %v, want %v", h.MeanNs(), wantMean)
	}
	bks := h.Buckets()
	if len(bks) != 2 || bks[0][1] != 2 || bks[1][1] != 1 {
		t.Fatalf("Buckets = %v", bks)
	}
	// 100ns lands in [64, 128).
	if bks[0][0] != 64 {
		t.Fatalf("first bucket lower bound = %d", bks[0][0])
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Millisecond)
	q50 := h.QuantileNs(0.5)
	if q50 > 4096 {
		t.Fatalf("p50 = %dns, want ~1µs bucket", q50)
	}
	q999 := h.QuantileNs(0.999)
	if q999 < 1<<20 {
		t.Fatalf("p99.9 = %dns, want ~1ms bucket", q999)
	}
	var empty Histogram
	if empty.QuantileNs(0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
}

func TestHistogramRender(t *testing.T) {
	var h Histogram
	if h.Render(20) != "(empty)\n" {
		t.Fatal("empty render")
	}
	h.Observe(time.Microsecond)
	h.Observe(2 * time.Millisecond)
	out := h.Render(20)
	if len(out) == 0 || out == "(empty)\n" {
		t.Fatal("render produced nothing")
	}
}

func TestObserveClampsZero(t *testing.T) {
	var h Histogram
	h.Observe(0)
	if h.Count() != 1 {
		t.Fatal("zero-duration observation lost")
	}
}
