// Package stats provides the summary statistics the paper's evaluation
// methodology prescribes (§6.1): arithmetic means, 95% non-parametric
// (bootstrap percentile) confidence intervals, and the logarithmic latency
// histograms of Figure 5.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CI95 returns a 95% non-parametric confidence interval for the mean of xs
// via the bootstrap percentile method with a fixed seed (deterministic
// reports).
func CI95(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if len(xs) == 1 {
		return xs[0], xs[0]
	}
	const resamples = 1000
	rng := rand.New(rand.NewSource(42))
	means := make([]float64, resamples)
	for i := range means {
		s := 0.0
		for j := 0; j < len(xs); j++ {
			s += xs[rng.Intn(len(xs))]
		}
		means[i] = s / float64(len(xs))
	}
	return Percentile(means, 2.5), Percentile(means, 97.5)
}

// Summary bundles the reported statistics for one measurement series.
type Summary struct {
	N          int
	Mean       float64
	CILo, CIHi float64
	P50, P95   float64
	Min, Max   float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	lo, hi := CI95(xs)
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	return Summary{
		N: len(xs), Mean: Mean(xs), CILo: lo, CIHi: hi,
		P50: Percentile(xs, 50), P95: Percentile(xs, 95),
		Min: mn, Max: mx,
	}
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g ci95=[%.3g, %.3g] p50=%.3g p95=%.3g", s.N, s.Mean, s.CILo, s.CIHi, s.P50, s.P95)
}

// Histogram is a logarithmic latency histogram: bucket i counts samples in
// [2^i, 2^(i+1)) nanoseconds. It mirrors the per-operation latency
// histograms of Figure 5. Histogram is not safe for concurrent use; merge
// per-worker histograms with Merge.
type Histogram struct {
	buckets [64]int64
	count   int64
	sum     int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	h.buckets[bits64(ns)]++
	h.count++
	h.sum += ns
}

func bits64(ns int64) int {
	b := 0
	for ns > 1 {
		ns >>= 1
		b++
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// MeanNs returns the mean observation in nanoseconds.
func (h *Histogram) MeanNs() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
}

// QuantileNs returns an upper bound on the q-quantile (q in [0,1]) from the
// bucket boundaries.
func (h *Histogram) QuantileNs(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return 1 << uint(i+1)
		}
	}
	return math.MaxInt64
}

// Buckets returns (lowerBoundNs, count) pairs for non-empty buckets.
func (h *Histogram) Buckets() [][2]int64 {
	var out [][2]int64
	for i, c := range h.buckets {
		if c > 0 {
			out = append(out, [2]int64{1 << uint(i), c})
		}
	}
	return out
}

// Render draws an ASCII bar chart of the histogram (Figure 5 style).
func (h *Histogram) Render(width int) string {
	bks := h.Buckets()
	if len(bks) == 0 {
		return "(empty)\n"
	}
	var max int64
	for _, b := range bks {
		if b[1] > max {
			max = b[1]
		}
	}
	var sb strings.Builder
	for _, b := range bks {
		bar := int(float64(b[1]) / float64(max) * float64(width))
		fmt.Fprintf(&sb, "%10s | %-*s %d\n", fmtNs(b[0]), width, strings.Repeat("#", bar), b[1])
	}
	return sb.String()
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.1fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
