package locks

import (
	"sync"
	"sync/atomic"

	"github.com/gdi-go/gdi/internal/fabric"
)

// Write-unlock retirement hook. Every write-unlock bumps the guarded word's
// version counter even when the release wrote no byte (an abort after
// lock-upgrade, a no-op update, a migration's secondary words): the bump
// alone invalidates version-stamped copies, so an HTAP cut pinned at the
// pre-bump version would lose its last way to read the block's unchanged
// bytes. The hook lets the snapshot layer retire those bytes into its
// version arena before the bump becomes visible. Byte-changing writers are
// already covered by the block store's pre-write hook; this one closes the
// bump-without-write gap, which is why it fires on the unlock path.
//
// Hooks are registered per lock-word window (one database engine per block
// store's system window), so multiple engines in one process do not see each
// other's releases. The hot path pays one atomic load while no hook is
// registered anywhere in the process.
var (
	releaseHooksOn atomic.Bool
	releaseHooks   sync.Map // fabric.WordWin -> func(fabric.Rank, int)
)

// SetReleaseHook installs fn as win's write-unlock hook: it is called with
// the word's owner rank and index immediately before each release's version-
// bump CAS, while the caller still holds the word exclusively. A nil fn
// removes the hook.
func SetReleaseHook(win fabric.WordWin, fn func(target fabric.Rank, idx int)) {
	if fn == nil {
		releaseHooks.Delete(win)
		return
	}
	releaseHooks.Store(win, fn)
	releaseHooksOn.Store(true)
}

// runReleaseHook fires the registered hook for one about-to-be-released word.
func runReleaseHook(win fabric.WordWin, target fabric.Rank, idx int) {
	if !releaseHooksOn.Load() {
		return
	}
	if fn, ok := releaseHooks.Load(win); ok {
		fn.(func(fabric.Rank, int))(target, idx)
	}
}
