package locks

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

func word(ranks int) (Word, *rma.Fabric) {
	f := rma.New(ranks)
	return Word{Win: f.NewWordWin(4), Target: 0, Idx: 1}, f
}

func TestReadLockBasics(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal("second reader refused:", err)
	}
	if wr, rd := w.Peek(0); wr || rd != 2 {
		t.Fatalf("Peek = (%v, %d), want (false, 2)", wr, rd)
	}
	w.ReleaseRead(0)
	w.ReleaseRead(0)
	if wr, rd := w.Peek(0); wr || rd != 0 {
		t.Fatalf("after release Peek = (%v, %d), want (false, 0)", wr, rd)
	}
}

func TestWriteExcludesReaders(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireWrite(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireRead(0, 4); err != ErrContended {
		t.Fatalf("reader under writer: err = %v, want ErrContended", err)
	}
	if err := w.TryAcquireWrite(0, 4); err != ErrContended {
		t.Fatalf("second writer: err = %v, want ErrContended", err)
	}
	w.ReleaseWrite(0)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal("reader after writer released:", err)
	}
}

func TestReadersExcludeWriter(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireWrite(0, 4); err != ErrContended {
		t.Fatalf("writer under reader: err = %v, want ErrContended", err)
	}
	w.ReleaseRead(0)
}

func TestUpgradeSoleReader(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryUpgrade(0, DefaultTries); err != nil {
		t.Fatal("upgrade as sole reader failed:", err)
	}
	if wr, rd := w.Peek(0); !wr || rd != 0 {
		t.Fatalf("after upgrade Peek = (%v, %d), want (true, 0)", wr, rd)
	}
	w.ReleaseWrite(0)
}

func TestUpgradeFailsWithOtherReaders(t *testing.T) {
	w, _ := word(1)
	_ = w.TryAcquireRead(0, DefaultTries)
	_ = w.TryAcquireRead(0, DefaultTries)
	if err := w.TryUpgrade(0, 4); err != ErrContended {
		t.Fatalf("upgrade with 2 readers: err = %v, want ErrContended", err)
	}
	// The failed upgrade must not have dropped our shared lock.
	if wr, rd := w.Peek(0); wr || rd != 2 {
		t.Fatalf("after failed upgrade Peek = (%v, %d), want (false, 2)", wr, rd)
	}
}

func TestReleasePanics(t *testing.T) {
	w, _ := word(1)
	for name, fn := range map[string]func(){
		"ReleaseRead":  func() { w.ReleaseRead(0) },
		"ReleaseWrite": func() { w.ReleaseWrite(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s without lock did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMutualExclusionUnderContention(t *testing.T) {
	w, f := word(8)
	var inCrit atomic.Int64
	var acquired atomic.Int64
	f.Run(func(r rma.Rank) {
		for i := 0; i < 200; i++ {
			if err := w.TryAcquireWrite(r, 10_000); err != nil {
				continue
			}
			if inCrit.Add(1) != 1 {
				t.Error("two writers in the critical section")
			}
			inCrit.Add(-1)
			acquired.Add(1)
			w.ReleaseWrite(r)
		}
	})
	if acquired.Load() == 0 {
		t.Fatal("no writer ever acquired the lock")
	}
	if wr, rd := w.Peek(0); wr || rd != 0 {
		t.Fatalf("lock not clean after contention: (%v, %d)", wr, rd)
	}
}

// trainWords builds one lock word per rank on a fresh fabric of n ranks,
// plus extra words per rank when width > 1.
func trainWords(n, width int) ([]Word, *rma.Fabric) {
	f := rma.New(n)
	win := f.NewWordWin(1 + width)
	var ws []Word
	for r := 0; r < n; r++ {
		for i := 0; i < width; i++ {
			ws = append(ws, Word{Win: win, Target: rma.Rank(r), Idx: 1 + i})
		}
	}
	return ws, f
}

func TestAcquireWriteTrainFreshAndUpgrade(t *testing.T) {
	ws, _ := trainWords(4, 2)
	// Hold a read lock on half of the words; the train must upgrade those
	// and fresh-acquire the rest.
	ls := make([]TrainLock, len(ws))
	for i, w := range ws {
		ls[i] = TrainLock{Word: w, FromRead: i%2 == 0}
		if ls[i].FromRead {
			if err := w.TryAcquireRead(0, DefaultTries); err != nil {
				t.Fatal(err)
			}
		}
	}
	vers, err := AcquireWriteTrain(0, ls, DefaultTries)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if wr, rd := w.Peek(0); !wr || rd != 0 {
			t.Fatalf("word %d after train: (%v, %d), want exclusively held", i, wr, rd)
		}
	}
	ReleaseWriteTrain(0, ws, vers)
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d after release train: (%v, %d), want free", i, wr, rd)
		}
	}
}

func TestAcquireWriteTrainRollsBackOnContention(t *testing.T) {
	ws, _ := trainWords(3, 1)
	// A foreign reader on the middle word makes its fresh acquisition fail.
	if err := ws[1].TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	// Our own read lock on the last word marks it as an upgrade.
	if err := ws[2].TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	ls := []TrainLock{
		{Word: ws[0]},
		{Word: ws[1]},
		{Word: ws[2], FromRead: true},
	}
	if _, err := AcquireWriteTrain(0, ls, 4); err != ErrContended {
		t.Fatalf("train over a held word: err = %v, want ErrContended", err)
	}
	if wr, rd := ws[0].Peek(0); wr || rd != 0 {
		t.Fatalf("word 0 not rolled back to free: (%v, %d)", wr, rd)
	}
	if wr, rd := ws[1].Peek(0); wr || rd != 1 {
		t.Fatalf("word 1 disturbed: (%v, %d), want the foreign reader intact", wr, rd)
	}
	if wr, rd := ws[2].Peek(0); wr || rd != 1 {
		t.Fatalf("word 2 not rolled back to our reader: (%v, %d)", wr, rd)
	}
}

func TestReadTrainAcquireRelease(t *testing.T) {
	ws, _ := trainWords(4, 2)
	if err := AcquireReadTrain(0, ws, DefaultTries); err != nil {
		t.Fatal(err)
	}
	// A second overlapping train stacks reader counts.
	if err := AcquireReadTrain(1, ws, DefaultTries); err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 2 {
			t.Fatalf("word %d: (%v, %d), want 2 readers", i, wr, rd)
		}
	}
	ReleaseReadTrain(0, ws)
	ReleaseReadTrain(1, ws)
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d after releases: (%v, %d), want free", i, wr, rd)
		}
	}
}

func TestReadTrainFailsUnderWriterAndRollsBack(t *testing.T) {
	ws, _ := trainWords(3, 1)
	if err := ws[2].TryAcquireWrite(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := AcquireReadTrain(1, ws, 4); err != ErrContended {
		t.Fatalf("read train under a writer: err = %v, want ErrContended", err)
	}
	for i, w := range ws[:2] {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d not rolled back: (%v, %d)", i, wr, rd)
		}
	}
	if wr, _ := ws[2].Peek(0); !wr {
		t.Fatal("foreign write lock disturbed by failed read train")
	}
	// Once the writer leaves, the same train succeeds.
	ws[2].ReleaseWrite(0)
	if err := AcquireReadTrain(1, ws, DefaultTries); err != nil {
		t.Fatal(err)
	}
	ReleaseReadTrain(1, ws)
}

func TestWriteTrainsExcludeEachOtherUnderContention(t *testing.T) {
	ws, f := trainWords(4, 4)
	var inCrit atomic.Int64
	var acquired atomic.Int64
	f.Run(func(r rma.Rank) {
		ls := make([]TrainLock, len(ws))
		for i, w := range ws {
			ls[i] = TrainLock{Word: w}
		}
		for i := 0; i < 50; i++ {
			vers, err := AcquireWriteTrain(r, ls, 100)
			if err != nil {
				continue
			}
			if inCrit.Add(1) != 1 {
				t.Error("two trains holding the full word set")
			}
			inCrit.Add(-1)
			acquired.Add(1)
			ReleaseWriteTrain(r, ws, vers)
		}
	})
	if acquired.Load() == 0 {
		t.Fatal("no train ever acquired the word set")
	}
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d not clean after contention: (%v, %d)", i, wr, rd)
		}
	}
}

func TestTrainSpanningWindowsPanics(t *testing.T) {
	f := rma.New(2)
	w1 := Word{Win: f.NewWordWin(2), Target: 0, Idx: 1}
	w2 := Word{Win: f.NewWordWin(2), Target: 1, Idx: 1}
	defer func() {
		if recover() == nil {
			t.Error("mixed-window train did not panic")
		}
	}()
	_, _ = AcquireWriteTrain(0, []TrainLock{{Word: w1}, {Word: w2}}, 4)
}

func TestReadersWritersInterleaved(t *testing.T) {
	w, f := word(8)
	var shared int64 // guarded by w
	var mu sync.Mutex
	var writes int
	f.Run(func(r rma.Rank) {
		for i := 0; i < 100; i++ {
			if int(r)%2 == 0 {
				if err := w.TryAcquireWrite(r, 100_000); err != nil {
					continue
				}
				shared++
				w.ReleaseWrite(r)
				mu.Lock()
				writes++
				mu.Unlock()
			} else {
				if err := w.TryAcquireRead(r, 100_000); err != nil {
					continue
				}
				_ = shared
				w.ReleaseRead(r)
			}
		}
	})
	if int(shared) != writes {
		t.Fatalf("lost updates: shared = %d, writes = %d", shared, writes)
	}
}

// raw reads the lock word value directly for version assertions.
func raw(w Word) uint64 { return w.Win.Load(w.Target, w.Target, w.Idx) }

func TestWriteUnlockBumpsVersion(t *testing.T) {
	w, _ := word(1)
	if v := Version(raw(w)); v != 0 {
		t.Fatalf("fresh word version = %d, want 0", v)
	}
	for i := 1; i <= 3; i++ {
		if err := w.TryAcquireWrite(0, DefaultTries); err != nil {
			t.Fatal(err)
		}
		if !WriteHeld(raw(w)) {
			t.Fatal("write bit not set while held")
		}
		if v := Version(raw(w)); v != uint64(i-1) {
			t.Fatalf("version moved during hold: %d, want %d", v, i-1)
		}
		w.ReleaseWrite(0)
		if v := Version(raw(w)); v != uint64(i) {
			t.Fatalf("after release %d: version = %d", i, v)
		}
	}
	// Read lock/unlock cycles must not move the version.
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	w.ReleaseRead(0)
	if v := Version(raw(w)); v != 3 {
		t.Fatalf("read cycle moved version to %d", v)
	}
	// Upgrade from a shared lock preserves the version until release.
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryUpgrade(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if v := Version(raw(w)); v != 3 {
		t.Fatalf("upgrade moved version to %d", v)
	}
	w.ReleaseWrite(0)
	if v := Version(raw(w)); v != 4 {
		t.Fatalf("post-upgrade release version = %d, want 4", v)
	}
}

func TestScalarLockingWorksAtNonzeroVersions(t *testing.T) {
	w, _ := word(1)
	// Advance the version, then re-run the basic protocol on top of it.
	for i := 0; i < 5; i++ {
		if err := w.TryAcquireWrite(0, DefaultTries); err != nil {
			t.Fatal(err)
		}
		w.ReleaseWrite(0)
	}
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireWrite(0, 4); err != ErrContended {
		t.Fatalf("writer under reader at version 5: %v", err)
	}
	w.ReleaseRead(0)
	if err := w.TryAcquireWrite(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireRead(0, 4); err != ErrContended {
		t.Fatalf("reader under writer at version 5: %v", err)
	}
	w.ReleaseWrite(0)
	if v := Version(raw(w)); v != 6 {
		t.Fatalf("version = %d, want 6", v)
	}
}

func TestTrainsLearnNonzeroVersions(t *testing.T) {
	ws, _ := trainWords(3, 2)
	// Put every word at a different version so the trains' version-0 guesses
	// are all wrong and must be corrected from CAS results.
	for i, w := range ws {
		for n := 0; n <= i; n++ {
			if err := w.TryAcquireWrite(0, DefaultTries); err != nil {
				t.Fatal(err)
			}
			w.ReleaseWrite(0)
		}
	}
	before := make([]uint64, len(ws))
	for i, w := range ws {
		before[i] = Version(raw(w))
	}
	// Read train: no version movement.
	if err := AcquireReadTrain(0, ws, DefaultTries); err != nil {
		t.Fatal(err)
	}
	ReleaseReadTrain(0, ws)
	for i, w := range ws {
		if got := Version(raw(w)); got != before[i] {
			t.Fatalf("word %d: read train moved version %d -> %d", i, before[i], got)
		}
	}
	// Write train with mixed upgrades; release bumps every word once.
	ls := make([]TrainLock, len(ws))
	for i, w := range ws {
		ls[i] = TrainLock{Word: w, FromRead: i%2 == 0}
		if ls[i].FromRead {
			if err := w.TryAcquireRead(0, DefaultTries); err != nil {
				t.Fatal(err)
			}
		}
	}
	vers, err := AcquireWriteTrain(0, ls, DefaultTries)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if vers[i] != before[i] {
			t.Fatalf("word %d: train reported version %d, want %d", i, vers[i], before[i])
		}
		if got := Version(raw(w)); got != before[i] || !WriteHeld(raw(w)) {
			t.Fatalf("word %d mid-hold: version %d (want %d), held %v", i, got, before[i], WriteHeld(raw(w)))
		}
	}
	ReleaseWriteTrain(0, ws, vers)
	for i, w := range ws {
		if got := Version(raw(w)); got != before[i]+1 {
			t.Fatalf("word %d: release train version %d, want %d", i, got, before[i]+1)
		}
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d not free after release train: (%v, %d)", i, wr, rd)
		}
	}
}

func TestWriteTrainRollbackPreservesVersion(t *testing.T) {
	ws, _ := trainWords(3, 1)
	// Give word 0 a nonzero version, block word 1 with a foreign reader.
	if err := ws[0].TryAcquireWrite(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	ws[0].ReleaseWrite(0)
	if err := ws[1].TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := ws[2].TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	ls := []TrainLock{{Word: ws[0]}, {Word: ws[1]}, {Word: ws[2], FromRead: true}}
	if _, err := AcquireWriteTrain(0, ls, 4); err != ErrContended {
		t.Fatalf("train over a held word: err = %v, want ErrContended", err)
	}
	// Rollback is not a write-unlock: versions unchanged, reader restored.
	if v := Version(raw(ws[0])); v != 1 {
		t.Fatalf("word 0 version after rollback = %d, want 1", v)
	}
	if v := Version(raw(ws[2])); v != 0 {
		t.Fatalf("word 2 version after rollback = %d, want 0", v)
	}
	if wr, rd := ws[2].Peek(0); wr || rd != 1 {
		t.Fatalf("word 2 not rolled back to our reader: (%v, %d)", wr, rd)
	}
}

func TestVersionsMonotonicUnderContention(t *testing.T) {
	w, f := word(8)
	var acquired atomic.Int64
	f.Run(func(r rma.Rank) {
		last := uint64(0)
		for i := 0; i < 100; i++ {
			cur := w.Win.Load(r, w.Target, w.Idx)
			if v := Version(cur); v < last {
				t.Errorf("version went backwards: %d after %d", v, last)
			} else {
				last = v
			}
			if err := w.TryAcquireWrite(r, 10_000); err != nil {
				continue
			}
			acquired.Add(1)
			w.ReleaseWrite(r)
		}
	})
	n := acquired.Load()
	if n == 0 {
		t.Fatal("no writer ever acquired the lock")
	}
	if v := Version(raw(w)); v != uint64(n) {
		t.Fatalf("final version %d, want one bump per acquisition (%d)", v, n)
	}
}

func TestReleaseTrainWithVersionsConvergesInOneRound(t *testing.T) {
	ws, f := trainWords(3, 2)
	// Put every word at a nonzero version so version-0 guesses are wrong.
	for _, w := range ws {
		if err := w.TryAcquireWrite(0, DefaultTries); err != nil {
			t.Fatal(err)
		}
		w.ReleaseWrite(0)
	}
	ls := make([]TrainLock, len(ws))
	for i, w := range ws {
		ls[i] = TrainLock{Word: w}
	}
	// Origin 1 makes every CAS remote, so AtomicBatches counts the rounds.
	vers, err := AcquireWriteTrain(1, ls, DefaultTries)
	if err != nil {
		t.Fatal(err)
	}
	f.ResetCounters()
	ReleaseWriteTrain(1, ws, vers)
	s := f.CounterSnapshot(1)
	if want := int64(2); s.AtomicBatches != want { // one train per remote owner rank
		t.Fatalf("seeded release used %d trains, want %d (one round per rank)", s.AtomicBatches, want)
	}
	// The unseeded release at nonzero versions needs a learning round.
	if _, err := AcquireWriteTrain(1, ls, DefaultTries); err != nil {
		t.Fatal(err)
	}
	f.ResetCounters()
	ReleaseWriteTrain(1, ws, nil)
	s = f.CounterSnapshot(1)
	if want := int64(4); s.AtomicBatches != want {
		t.Fatalf("unseeded release used %d trains, want %d (two rounds per rank)", s.AtomicBatches, want)
	}
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d not free after releases: (%v, %d)", i, wr, rd)
		}
	}
}

func TestMirrorTrainLockstep(t *testing.T) {
	f := rma.New(3)
	win := f.NewWordWin(8)
	words := []Word{
		{Win: win, Target: 1, Idx: 2},
		{Win: win, Target: 2, Idx: 5},
	}
	// Follower words sit free at version 7 (lockstep with a primary at 7).
	for _, w := range words {
		win.Store(0, w.Target, w.Idx, 7<<versionShift)
	}
	vers := []uint64{7, 7}
	held := AcquireMirrorTrain(0, words, vers)
	for i, h := range held {
		if !h {
			t.Fatalf("follower %d not marked despite lockstep", i)
		}
		if got := raw(words[i]); got != 7<<versionShift|writeBit {
			t.Fatalf("follower %d word = %#x after mark", i, got)
		}
	}
	ReleaseMirrorTrain(0, words, vers)
	for i := range words {
		got := raw(words[i])
		if WriteHeld(got) || Version(got) != 8 {
			t.Fatalf("follower %d word = %#x after release, want free at version 8", i, got)
		}
	}
}

func TestMirrorTrainDropsOutOfLockstepFollowers(t *testing.T) {
	f := rma.New(2)
	win := f.NewWordWin(8)
	words := []Word{
		{Win: win, Target: 1, Idx: 0}, // in lockstep at 4
		{Win: win, Target: 1, Idx: 1}, // ahead: re-seeded at version 9
		{Win: win, Target: 1, Idx: 2}, // already marked by a (protocol-violating) writer
	}
	win.Store(0, 1, 0, 4<<versionShift)
	win.Store(0, 1, 1, 9<<versionShift)
	win.Store(0, 1, 2, 4<<versionShift|writeBit)
	held := AcquireMirrorTrain(0, words, []uint64{4, 4, 4})
	if !held[0] || held[1] || held[2] {
		t.Fatalf("held = %v, want [true false false]", held)
	}
	// Only the marked follower releases; the dropped ones are untouched.
	ReleaseMirrorTrain(0, words[:1], []uint64{4})
	if got := raw(words[0]); Version(got) != 5 || WriteHeld(got) {
		t.Fatalf("follower 0 word = %#x, want free at version 5", got)
	}
	if got := raw(words[1]); got != 9<<versionShift {
		t.Fatalf("dropped follower 1 word changed to %#x", got)
	}
}

func TestMirrorTrainVersionWrap(t *testing.T) {
	f := rma.New(1)
	win := f.NewWordWin(2)
	w := Word{Win: win, Target: 0, Idx: 0}
	top := uint64(1<<versionBits - 1)
	win.Store(0, 0, 0, top<<versionShift)
	if held := AcquireMirrorTrain(0, []Word{w}, []uint64{top}); !held[0] {
		t.Fatal("mark at the top version failed")
	}
	ReleaseMirrorTrain(0, []Word{w}, []uint64{top})
	if got := raw(w); got != 0 {
		t.Fatalf("word = %#x after wrap, want 0 (version wrapped inside its field)", got)
	}
}
