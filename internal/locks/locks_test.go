package locks

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

func word(ranks int) (Word, *rma.Fabric) {
	f := rma.New(ranks)
	return Word{Win: f.NewWordWin(4), Target: 0, Idx: 1}, f
}

func TestReadLockBasics(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal("second reader refused:", err)
	}
	if wr, rd := w.Peek(0); wr || rd != 2 {
		t.Fatalf("Peek = (%v, %d), want (false, 2)", wr, rd)
	}
	w.ReleaseRead(0)
	w.ReleaseRead(0)
	if wr, rd := w.Peek(0); wr || rd != 0 {
		t.Fatalf("after release Peek = (%v, %d), want (false, 0)", wr, rd)
	}
}

func TestWriteExcludesReaders(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireWrite(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireRead(0, 4); err != ErrContended {
		t.Fatalf("reader under writer: err = %v, want ErrContended", err)
	}
	if err := w.TryAcquireWrite(0, 4); err != ErrContended {
		t.Fatalf("second writer: err = %v, want ErrContended", err)
	}
	w.ReleaseWrite(0)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal("reader after writer released:", err)
	}
}

func TestReadersExcludeWriter(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireWrite(0, 4); err != ErrContended {
		t.Fatalf("writer under reader: err = %v, want ErrContended", err)
	}
	w.ReleaseRead(0)
}

func TestUpgradeSoleReader(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryUpgrade(0, DefaultTries); err != nil {
		t.Fatal("upgrade as sole reader failed:", err)
	}
	if wr, rd := w.Peek(0); !wr || rd != 0 {
		t.Fatalf("after upgrade Peek = (%v, %d), want (true, 0)", wr, rd)
	}
	w.ReleaseWrite(0)
}

func TestUpgradeFailsWithOtherReaders(t *testing.T) {
	w, _ := word(1)
	_ = w.TryAcquireRead(0, DefaultTries)
	_ = w.TryAcquireRead(0, DefaultTries)
	if err := w.TryUpgrade(0, 4); err != ErrContended {
		t.Fatalf("upgrade with 2 readers: err = %v, want ErrContended", err)
	}
	// The failed upgrade must not have dropped our shared lock.
	if wr, rd := w.Peek(0); wr || rd != 2 {
		t.Fatalf("after failed upgrade Peek = (%v, %d), want (false, 2)", wr, rd)
	}
}

func TestReleasePanics(t *testing.T) {
	w, _ := word(1)
	for name, fn := range map[string]func(){
		"ReleaseRead":  func() { w.ReleaseRead(0) },
		"ReleaseWrite": func() { w.ReleaseWrite(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s without lock did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMutualExclusionUnderContention(t *testing.T) {
	w, f := word(8)
	var inCrit atomic.Int64
	var acquired atomic.Int64
	f.Run(func(r rma.Rank) {
		for i := 0; i < 200; i++ {
			if err := w.TryAcquireWrite(r, 10_000); err != nil {
				continue
			}
			if inCrit.Add(1) != 1 {
				t.Error("two writers in the critical section")
			}
			inCrit.Add(-1)
			acquired.Add(1)
			w.ReleaseWrite(r)
		}
	})
	if acquired.Load() == 0 {
		t.Fatal("no writer ever acquired the lock")
	}
	if wr, rd := w.Peek(0); wr || rd != 0 {
		t.Fatalf("lock not clean after contention: (%v, %d)", wr, rd)
	}
}

func TestReadersWritersInterleaved(t *testing.T) {
	w, f := word(8)
	var shared int64 // guarded by w
	var mu sync.Mutex
	var writes int
	f.Run(func(r rma.Rank) {
		for i := 0; i < 100; i++ {
			if int(r)%2 == 0 {
				if err := w.TryAcquireWrite(r, 100_000); err != nil {
					continue
				}
				shared++
				w.ReleaseWrite(r)
				mu.Lock()
				writes++
				mu.Unlock()
			} else {
				if err := w.TryAcquireRead(r, 100_000); err != nil {
					continue
				}
				_ = shared
				w.ReleaseRead(r)
			}
		}
	})
	if int(shared) != writes {
		t.Fatalf("lost updates: shared = %d, writes = %d", shared, writes)
	}
}
