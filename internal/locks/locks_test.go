package locks

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

func word(ranks int) (Word, *rma.Fabric) {
	f := rma.New(ranks)
	return Word{Win: f.NewWordWin(4), Target: 0, Idx: 1}, f
}

func TestReadLockBasics(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal("second reader refused:", err)
	}
	if wr, rd := w.Peek(0); wr || rd != 2 {
		t.Fatalf("Peek = (%v, %d), want (false, 2)", wr, rd)
	}
	w.ReleaseRead(0)
	w.ReleaseRead(0)
	if wr, rd := w.Peek(0); wr || rd != 0 {
		t.Fatalf("after release Peek = (%v, %d), want (false, 0)", wr, rd)
	}
}

func TestWriteExcludesReaders(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireWrite(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireRead(0, 4); err != ErrContended {
		t.Fatalf("reader under writer: err = %v, want ErrContended", err)
	}
	if err := w.TryAcquireWrite(0, 4); err != ErrContended {
		t.Fatalf("second writer: err = %v, want ErrContended", err)
	}
	w.ReleaseWrite(0)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal("reader after writer released:", err)
	}
}

func TestReadersExcludeWriter(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryAcquireWrite(0, 4); err != ErrContended {
		t.Fatalf("writer under reader: err = %v, want ErrContended", err)
	}
	w.ReleaseRead(0)
}

func TestUpgradeSoleReader(t *testing.T) {
	w, _ := word(1)
	if err := w.TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := w.TryUpgrade(0, DefaultTries); err != nil {
		t.Fatal("upgrade as sole reader failed:", err)
	}
	if wr, rd := w.Peek(0); !wr || rd != 0 {
		t.Fatalf("after upgrade Peek = (%v, %d), want (true, 0)", wr, rd)
	}
	w.ReleaseWrite(0)
}

func TestUpgradeFailsWithOtherReaders(t *testing.T) {
	w, _ := word(1)
	_ = w.TryAcquireRead(0, DefaultTries)
	_ = w.TryAcquireRead(0, DefaultTries)
	if err := w.TryUpgrade(0, 4); err != ErrContended {
		t.Fatalf("upgrade with 2 readers: err = %v, want ErrContended", err)
	}
	// The failed upgrade must not have dropped our shared lock.
	if wr, rd := w.Peek(0); wr || rd != 2 {
		t.Fatalf("after failed upgrade Peek = (%v, %d), want (false, 2)", wr, rd)
	}
}

func TestReleasePanics(t *testing.T) {
	w, _ := word(1)
	for name, fn := range map[string]func(){
		"ReleaseRead":  func() { w.ReleaseRead(0) },
		"ReleaseWrite": func() { w.ReleaseWrite(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s without lock did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMutualExclusionUnderContention(t *testing.T) {
	w, f := word(8)
	var inCrit atomic.Int64
	var acquired atomic.Int64
	f.Run(func(r rma.Rank) {
		for i := 0; i < 200; i++ {
			if err := w.TryAcquireWrite(r, 10_000); err != nil {
				continue
			}
			if inCrit.Add(1) != 1 {
				t.Error("two writers in the critical section")
			}
			inCrit.Add(-1)
			acquired.Add(1)
			w.ReleaseWrite(r)
		}
	})
	if acquired.Load() == 0 {
		t.Fatal("no writer ever acquired the lock")
	}
	if wr, rd := w.Peek(0); wr || rd != 0 {
		t.Fatalf("lock not clean after contention: (%v, %d)", wr, rd)
	}
}

// trainWords builds one lock word per rank on a fresh fabric of n ranks,
// plus extra words per rank when width > 1.
func trainWords(n, width int) ([]Word, *rma.Fabric) {
	f := rma.New(n)
	win := f.NewWordWin(1 + width)
	var ws []Word
	for r := 0; r < n; r++ {
		for i := 0; i < width; i++ {
			ws = append(ws, Word{Win: win, Target: rma.Rank(r), Idx: 1 + i})
		}
	}
	return ws, f
}

func TestAcquireWriteTrainFreshAndUpgrade(t *testing.T) {
	ws, _ := trainWords(4, 2)
	// Hold a read lock on half of the words; the train must upgrade those
	// and fresh-acquire the rest.
	ls := make([]TrainLock, len(ws))
	for i, w := range ws {
		ls[i] = TrainLock{Word: w, FromRead: i%2 == 0}
		if ls[i].FromRead {
			if err := w.TryAcquireRead(0, DefaultTries); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := AcquireWriteTrain(0, ls, DefaultTries); err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if wr, rd := w.Peek(0); !wr || rd != 0 {
			t.Fatalf("word %d after train: (%v, %d), want exclusively held", i, wr, rd)
		}
	}
	ReleaseWriteTrain(0, ws)
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d after release train: (%v, %d), want free", i, wr, rd)
		}
	}
}

func TestAcquireWriteTrainRollsBackOnContention(t *testing.T) {
	ws, _ := trainWords(3, 1)
	// A foreign reader on the middle word makes its fresh acquisition fail.
	if err := ws[1].TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	// Our own read lock on the last word marks it as an upgrade.
	if err := ws[2].TryAcquireRead(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	ls := []TrainLock{
		{Word: ws[0]},
		{Word: ws[1]},
		{Word: ws[2], FromRead: true},
	}
	if err := AcquireWriteTrain(0, ls, 4); err != ErrContended {
		t.Fatalf("train over a held word: err = %v, want ErrContended", err)
	}
	if wr, rd := ws[0].Peek(0); wr || rd != 0 {
		t.Fatalf("word 0 not rolled back to free: (%v, %d)", wr, rd)
	}
	if wr, rd := ws[1].Peek(0); wr || rd != 1 {
		t.Fatalf("word 1 disturbed: (%v, %d), want the foreign reader intact", wr, rd)
	}
	if wr, rd := ws[2].Peek(0); wr || rd != 1 {
		t.Fatalf("word 2 not rolled back to our reader: (%v, %d)", wr, rd)
	}
}

func TestReadTrainAcquireRelease(t *testing.T) {
	ws, _ := trainWords(4, 2)
	if err := AcquireReadTrain(0, ws, DefaultTries); err != nil {
		t.Fatal(err)
	}
	// A second overlapping train stacks reader counts.
	if err := AcquireReadTrain(1, ws, DefaultTries); err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 2 {
			t.Fatalf("word %d: (%v, %d), want 2 readers", i, wr, rd)
		}
	}
	ReleaseReadTrain(0, ws)
	ReleaseReadTrain(1, ws)
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d after releases: (%v, %d), want free", i, wr, rd)
		}
	}
}

func TestReadTrainFailsUnderWriterAndRollsBack(t *testing.T) {
	ws, _ := trainWords(3, 1)
	if err := ws[2].TryAcquireWrite(0, DefaultTries); err != nil {
		t.Fatal(err)
	}
	if err := AcquireReadTrain(1, ws, 4); err != ErrContended {
		t.Fatalf("read train under a writer: err = %v, want ErrContended", err)
	}
	for i, w := range ws[:2] {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d not rolled back: (%v, %d)", i, wr, rd)
		}
	}
	if wr, _ := ws[2].Peek(0); !wr {
		t.Fatal("foreign write lock disturbed by failed read train")
	}
	// Once the writer leaves, the same train succeeds.
	ws[2].ReleaseWrite(0)
	if err := AcquireReadTrain(1, ws, DefaultTries); err != nil {
		t.Fatal(err)
	}
	ReleaseReadTrain(1, ws)
}

func TestWriteTrainsExcludeEachOtherUnderContention(t *testing.T) {
	ws, f := trainWords(4, 4)
	var inCrit atomic.Int64
	var acquired atomic.Int64
	f.Run(func(r rma.Rank) {
		ls := make([]TrainLock, len(ws))
		for i, w := range ws {
			ls[i] = TrainLock{Word: w}
		}
		for i := 0; i < 50; i++ {
			if err := AcquireWriteTrain(r, ls, 100); err != nil {
				continue
			}
			if inCrit.Add(1) != 1 {
				t.Error("two trains holding the full word set")
			}
			inCrit.Add(-1)
			acquired.Add(1)
			ReleaseWriteTrain(r, ws)
		}
	})
	if acquired.Load() == 0 {
		t.Fatal("no train ever acquired the word set")
	}
	for i, w := range ws {
		if wr, rd := w.Peek(0); wr || rd != 0 {
			t.Fatalf("word %d not clean after contention: (%v, %d)", i, wr, rd)
		}
	}
}

func TestTrainSpanningWindowsPanics(t *testing.T) {
	f := rma.New(2)
	w1 := Word{Win: f.NewWordWin(2), Target: 0, Idx: 1}
	w2 := Word{Win: f.NewWordWin(2), Target: 1, Idx: 1}
	defer func() {
		if recover() == nil {
			t.Error("mixed-window train did not panic")
		}
	}()
	_ = AcquireWriteTrain(0, []TrainLock{{Word: w1}, {Word: w2}}, 4)
}

func TestReadersWritersInterleaved(t *testing.T) {
	w, f := word(8)
	var shared int64 // guarded by w
	var mu sync.Mutex
	var writes int
	f.Run(func(r rma.Rank) {
		for i := 0; i < 100; i++ {
			if int(r)%2 == 0 {
				if err := w.TryAcquireWrite(r, 100_000); err != nil {
					continue
				}
				shared++
				w.ReleaseWrite(r)
				mu.Lock()
				writes++
				mu.Unlock()
			} else {
				if err := w.TryAcquireRead(r, 100_000); err != nil {
					continue
				}
				_ = shared
				w.ReleaseRead(r)
			}
		}
	})
	if int(shared) != writes {
		t.Fatalf("lost updates: shared = %d, writes = %d", shared, writes)
	}
}
