// Package locks implements the scalable two-phase reader-writer locking of
// GDI-RMA (§5.6 of the paper). One 64-bit lock word guards each vertex:
//
//	bit  63      write bit (exclusively held)
//	bits 32..62  version counter, bumped by every write-unlock
//	bits  0..31  reader count
//
// All acquisition is performed with remote CAS on the word, so a lock
// operation costs one or two network atomics on the fast path.
//
// The version counter is the foundation of the optimistic read tier (§3.8,
// §5.2): holder content only changes while the write bit is set, and every
// write-unlock bumps the version, so a reader that observes the same version
// with the write bit clear before and after a fetch holds an untorn copy,
// and a cached copy stamped with version v is current exactly while the word
// still carries v. Versions are per word and strictly monotonic (releases
// only increment; the 31-bit counter wraps after 2^31 writes per vertex,
// far beyond any transaction lifetime this simulation runs).
//
// Acquisition is bounded: after maxTries failed CAS/recheck rounds the
// attempt fails and the caller (the transaction layer) must abort the
// transaction with a transaction-critical error. This bounded try-lock is
// what produces the paper's small failed-transaction percentages under
// write-heavy load, and it also rules out distributed deadlock without a
// lock manager.
package locks

import (
	"errors"
	"fmt"
	"sort"

	"github.com/gdi-go/gdi/internal/fabric"
)

// writeBit marks an exclusively held word.
const writeBit uint64 = 1 << 63

// readerMask extracts the reader count.
const readerMask uint64 = 1<<32 - 1

// The version counter occupies bits 32..62.
const (
	versionShift        = 32
	versionBits         = 31
	versionOne   uint64 = 1 << versionShift
	versionMask  uint64 = (1<<versionBits - 1) << versionShift
)

// Version extracts the version counter from a raw lock word.
func Version(word uint64) uint64 { return (word & versionMask) >> versionShift }

// WriteHeld reports whether a raw lock word is exclusively held.
func WriteHeld(word uint64) bool { return word&writeBit != 0 }

// Readers extracts the reader count from a raw lock word.
func Readers(word uint64) uint32 { return uint32(word & readerMask) }

// bumpVersion increments the version field of word, wrapping inside the
// field so an overflow cannot spill into the write bit.
func bumpVersion(word uint64) uint64 {
	return (word &^ versionMask) | ((word + versionOne) & versionMask)
}

// ErrContended is returned when a bounded acquisition gives up. Transactions
// translate it into a transaction-critical error.
var ErrContended = errors.New("locks: lock acquisition exceeded retry budget")

// DefaultTries is the default retry budget for bounded acquisition.
const DefaultTries = 64

// Word addresses one lock word inside an RMA word window.
type Word struct {
	Win    fabric.WordWin
	Target fabric.Rank
	Idx    int
}

// TryAcquireRead takes a shared lock, retrying at most tries rounds.
func (w Word) TryAcquireRead(origin fabric.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&writeBit != 0 {
			continue // a writer holds the lock
		}
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, cur+1); ok {
			return nil
		}
	}
	return ErrContended
}

// ReleaseRead drops a shared lock.
func (w Word) ReleaseRead(origin fabric.Rank) {
	for {
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&readerMask == 0 {
			panic("locks: ReleaseRead with zero reader count")
		}
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, cur-1); ok {
			return
		}
	}
}

// TryAcquireWrite takes the exclusive lock: it succeeds only when no reader
// and no writer holds the word. The version field is preserved across
// acquisition (it only moves on release).
func (w Word) TryAcquireWrite(origin fabric.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&(writeBit|readerMask) != 0 {
			continue // a writer or readers hold the lock
		}
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, cur|writeBit); ok {
			return nil
		}
	}
	return ErrContended
}

// TryUpgrade converts a held shared lock into the exclusive lock. It
// succeeds only while the caller is the sole reader; otherwise the caller
// keeps its shared lock and receives ErrContended.
func (w Word) TryUpgrade(origin fabric.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&writeBit != 0 {
			// Impossible while we hold a read lock under correct usage.
			return ErrContended
		}
		if cur&readerMask != 1 {
			continue // other readers present
		}
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, (cur-1)|writeBit); ok {
			return nil
		}
	}
	return ErrContended
}

// ReleaseWrite drops the exclusive lock and bumps the version counter — the
// signal that tells version-validated readers their cached copies of the
// guarded holder are stale. A write-held word is stable (readers cannot
// enter and probes are value-preserving), so one load plus one CAS suffice.
func (w Word) ReleaseWrite(origin fabric.Rank) {
	runReleaseHook(w.Win, w.Target, w.Idx)
	cur := w.Win.Load(origin, w.Target, w.Idx)
	if cur&writeBit == 0 {
		panic("locks: ReleaseWrite without holding the write lock")
	}
	if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, bumpVersion(cur&^writeBit)); !ok {
		panic("locks: write-held lock word changed underfoot")
	}
}

// Peek returns the raw lock word (diagnostics and tests).
func (w Word) Peek(origin fabric.Rank) (writer bool, readers uint32) {
	cur := w.Win.Load(origin, w.Target, w.Idx)
	return cur&writeBit != 0, uint32(cur & readerMask)
}

// Stamp atomically loads the raw lock word. Combined with Version and
// WriteHeld it is the seqlock primitive of validated reads: load, read the
// guarded content, load again — an unchanged free stamp proves the copy
// untorn.
func (w Word) Stamp(origin fabric.Rank) uint64 {
	return w.Win.Load(origin, w.Target, w.Idx)
}

// Lock trains: the write-side batching of §5.6. A transaction's commit
// touches one lock word per written vertex; acquiring them with scalar CAS
// costs one remote atomic round-trip each. A train sorts the words globally
// (rank, then index — a total order shared by all ranks, so concurrent
// trains cannot deadlock even when acquisition blocks) and issues all CAS
// for one owner rank as a single vectored train, paying the injected remote
// latency once per rank per round instead of once per word. All words of a
// train must address the same window (in GDA they all live in the block
// store's system window).

// TrainLock is one element of a write-lock train.
type TrainLock struct {
	Word Word
	// FromRead marks a word the caller already holds shared: the train
	// upgrades it (sole reader → writer, CAS 1→writeBit) instead of
	// acquiring it from free (CAS 0→writeBit).
	FromRead bool
}

// checkTrainWin verifies the single-window invariant of lock trains.
func checkTrainWin(win fabric.WordWin, w Word) {
	if w.Win != win {
		panic("locks: lock train spans multiple windows")
	}
}

// trainOldReaders returns the reader count a train entry starts from: one
// for an upgrade of our own shared lock, zero for a fresh acquisition.
func trainOldReaders(l TrainLock) uint64 {
	if l.FromRead {
		return 1
	}
	return 0
}

// sortTrain globally orders ls (rank, then index — the shared total order
// that makes concurrent trains deadlock-free) and returns the sorted train
// plus the mapping sorted position -> index in ls.
func sortTrain(ls []TrainLock) (train []TrainLock, order []int) {
	order = make([]int, len(ls))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := ls[order[i]].Word, ls[order[j]].Word
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Idx < b.Idx
	})
	train = make([]TrainLock, len(ls))
	for i, src := range order {
		train[i] = ls[src]
	}
	return train, order
}

// acquireWriteRounds is the acquisition core shared by the all-or-nothing
// and best-effort write trains: up to tries vectored CAS rounds over the
// sorted train, one train per owner rank per round. Because lock words carry
// version counters, it cannot guess current word values; it learns them from
// failed CAS results (a word observed in an unacquirable state is probed
// with a value-preserving CAS). It returns the per-word held flags and, for
// held words, the value installed (write bit + the word's version).
func acquireWriteRounds(origin fabric.Rank, train []TrainLock, tries int) (held []bool, expected []uint64, nHeld int) {
	win := train[0].Word.Win
	held = make([]bool, len(train))
	expected = make([]uint64, len(train)) // last observed word value, or held value
	for i, l := range train {
		checkTrainWin(win, l.Word)
		expected[i] = trainOldReaders(l) // version-0 guess; corrected by CAS results
	}
	for round := 0; round < tries && nHeld < len(train); round++ {
		forEachRank(len(train), func(i int) fabric.Rank { return train[i].Word.Target }, func(lo, hi int) {
			ops := make([]fabric.CASOp, 0, hi-lo)
			opIdx := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if held[i] {
					continue
				}
				op := fabric.CASOp{Idx: train[i].Word.Idx, Old: expected[i]}
				if expected[i]&writeBit == 0 && expected[i]&readerMask == trainOldReaders(train[i]) {
					// Acquirable: drop our reader (upgrades) and set the bit.
					op.New = (expected[i] - trainOldReaders(train[i])) | writeBit
				} else {
					op.New = op.Old // probe: foreign readers or a writer hold it
				}
				ops = append(ops, op)
				opIdx = append(opIdx, i)
			}
			for j, r := range win.CASBatch(origin, train[lo].Word.Target, ops) {
				i := opIdx[j]
				switch {
				case r.Swapped && ops[j].New != ops[j].Old:
					held[i] = true
					expected[i] = ops[j].New // the value we installed
					nHeld++
				case r.Swapped: // probe confirmed the blockers are still there
				default:
					expected[i] = r.Prev
				}
			}
		})
	}
	return held, expected, nHeld
}

// AcquireWriteTrain write-locks every word of the train, issuing one
// vectored CAS train per owner rank per retry round (acquireWriteRounds).
// Acquisition is all or nothing: if any word cannot be taken within the
// retry budget, every lock the train did acquire is rolled back to its
// pre-train state (upgrades return to one reader, versions untouched — a
// rollback is not a write-unlock) and (nil, ErrContended) is returned.
//
// On success it returns the version of every held word, aligned with ls.
// Passing those versions to ReleaseWriteTrain lets the release converge in
// one CAS round per rank instead of re-learning the values the acquisition
// already knew.
func AcquireWriteTrain(origin fabric.Rank, ls []TrainLock, tries int) ([]uint64, error) {
	if len(ls) == 0 {
		return nil, nil
	}
	train, order := sortTrain(ls)
	win := train[0].Word.Win
	held, expected, nHeld := acquireWriteRounds(origin, train, tries)
	if nHeld == len(train) {
		vers := make([]uint64, len(ls))
		for i, src := range order {
			vers[src] = Version(expected[i])
		}
		return vers, nil
	}
	// Roll back every word this train acquired, again one train per rank.
	// Held words are stable, so the single CAS per word must succeed.
	forEachRank(len(train), func(i int) fabric.Rank { return train[i].Word.Target }, func(lo, hi int) {
		ops := make([]fabric.CASOp, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if held[i] {
				ops = append(ops, fabric.CASOp{Idx: train[i].Word.Idx, Old: expected[i], New: (expected[i] &^ writeBit) + trainOldReaders(train[i])})
			}
		}
		for _, r := range win.CASBatch(origin, train[lo].Word.Target, ops) {
			if !r.Swapped {
				panic("locks: write-train rollback of a word not exclusively held")
			}
		}
	})
	return nil, ErrContended
}

// ReleaseWriteTrain drops exclusively held locks and bumps their version
// counters, one vectored CAS train per owner rank per round. Every word must
// be write-held by the caller. vers, when non-nil, carries the held words'
// versions (aligned with words, as returned by AcquireWriteTrain): a held
// word's value is stable, so correct versions make the train converge in a
// single round per rank. With vers nil the first round guesses version 0
// and any word whose guess was wrong is released on the second round.
func ReleaseWriteTrain(origin fabric.Rank, words []Word, vers []uint64) {
	if vers != nil && len(vers) != len(words) {
		panic(fmt.Sprintf("locks: release train of %d words with %d versions", len(words), len(vers)))
	}
	switch len(words) {
	case 0:
		return
	case 1:
		words[0].ReleaseWrite(origin)
		return
	}
	order := make([]int, len(words))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := words[order[i]], words[order[j]]
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Idx < b.Idx
	})
	train := make([]Word, len(words))
	for i, src := range order {
		train[i] = words[src]
	}
	win := train[0].Win
	done := make([]bool, len(train))
	expected := make([]uint64, len(train))
	for i, src := range order {
		checkTrainWin(win, train[i])
		// The hook must see every word still write-held at its pre-bump
		// version, so fire it for the whole train before any CAS round.
		runReleaseHook(win, train[i].Target, train[i].Idx)
		expected[i] = writeBit // version-0 guess; corrected by CAS results
		if vers != nil {
			expected[i] = vers[src]<<versionShift | writeBit
		}
	}
	nDone := 0
	for nDone < len(train) {
		forEachRank(len(train), func(i int) fabric.Rank { return train[i].Target }, func(lo, hi int) {
			ops := make([]fabric.CASOp, 0, hi-lo)
			opIdx := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if done[i] {
					continue
				}
				ops = append(ops, fabric.CASOp{Idx: train[i].Idx, Old: expected[i], New: bumpVersion(expected[i] &^ writeBit)})
				opIdx = append(opIdx, i)
			}
			for j, r := range win.CASBatch(origin, train[lo].Target, ops) {
				i := opIdx[j]
				if r.Swapped {
					done[i] = true
					nDone++
					continue
				}
				if r.Prev&writeBit == 0 {
					panic("locks: ReleaseWriteTrain without holding the write lock")
				}
				expected[i] = r.Prev
			}
		})
	}
}

// AcquireWriteTrainEach is the best-effort sibling of AcquireWriteTrain for
// background work (live vertex migration): same acquisition rounds
// (acquireWriteRounds), but a word still contended when the budget runs out
// is simply not taken — the words that were acquired stay held, nothing is
// rolled back. It returns, aligned with ls, each word's held flag and (for
// held words) its version; the caller releases the held words with
// ReleaseWriteTrain when done. A migrator uses this to skip busy vertices
// instead of aborting a whole migration batch on one hot lock.
func AcquireWriteTrainEach(origin fabric.Rank, ls []TrainLock, tries int) (vers []uint64, heldOut []bool) {
	vers = make([]uint64, len(ls))
	heldOut = make([]bool, len(ls))
	if len(ls) == 0 {
		return vers, heldOut
	}
	train, order := sortTrain(ls)
	held, expected, _ := acquireWriteRounds(origin, train, tries)
	for i, src := range order {
		if held[i] {
			heldOut[src] = true
			vers[src] = Version(expected[i])
		}
	}
	return vers, heldOut
}

// Mirror trains: the follower-word half of the replica lockstep protocol.
// Each follower copy of a replicated vertex has its own version word, kept in
// lockstep with the primary's: follower word free at version v means the
// follower content equals the primary content at v. The committer (which
// already holds the primary's write lock, so no other mirror train can race
// it on the same vertex) write-marks the follower words, lands the follower
// payload, releases the primary (bumping it to v+1), and only then releases
// the follower words to v+1 — primary-then-follower order, so a reader that
// validates against either word never accepts a follower payload newer than
// the primary version it proved.

// AcquireMirrorTrain write-marks follower version words, one vectored CAS
// train per owner rank, one round. vers carries each word's expected current
// version (the primary's pre-commit version, which lockstep guarantees the
// follower shares). Unlike a lock acquisition there is no retry: the primary
// write lock already excludes every competing mirror train, so a CAS that
// fails means the follower is not in lockstep (it was just seeded, dropped,
// or re-seeded against a different version) — the caller drops that follower
// from the fan-out instead of waiting. Returns the per-word marked flags,
// aligned with words.
func AcquireMirrorTrain(origin fabric.Rank, words []Word, vers []uint64) []bool {
	held := make([]bool, len(words))
	if len(words) == 0 {
		return held
	}
	if len(vers) != len(words) {
		panic(fmt.Sprintf("locks: mirror train of %d words with %d versions", len(words), len(vers)))
	}
	order := make([]int, len(words))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := words[order[i]], words[order[j]]
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Idx < b.Idx
	})
	win := words[0].Win
	forEachRank(len(order), func(i int) fabric.Rank { return words[order[i]].Target }, func(lo, hi int) {
		ops := make([]fabric.CASOp, 0, hi-lo)
		for i := lo; i < hi; i++ {
			w := words[order[i]]
			checkTrainWin(win, w)
			free := vers[order[i]] << versionShift
			ops = append(ops, fabric.CASOp{Idx: w.Idx, Old: free, New: free | writeBit})
		}
		for j, r := range win.CASBatch(origin, words[order[lo]].Target, ops) {
			if r.Swapped {
				held[order[lo+j]] = true
			}
		}
	})
	return held
}

// ReleaseMirrorTrain completes the fan-out on follower words AcquireMirrorTrain
// marked: each word moves from write-marked at version v to free at v+1, the
// same bump the primary's release already performed. A failed CAS means the
// mark was stolen: when a vertex's primary rank dies while a (surviving)
// committer is mid-fan-out, promotion forcibly re-seeds the marked follower
// words — nothing would ever complete the fan-out if the committer had died
// too, and a live committer finding its mark gone simply leaves the word to
// its new owner. No release hook fires: snapshot cuts pin primaries, so
// follower blocks never carry retirement obligations.
func ReleaseMirrorTrain(origin fabric.Rank, words []Word, vers []uint64) {
	if len(words) == 0 {
		return
	}
	if len(vers) != len(words) {
		panic(fmt.Sprintf("locks: mirror train of %d words with %d versions", len(words), len(vers)))
	}
	order := make([]int, len(words))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := words[order[i]], words[order[j]]
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Idx < b.Idx
	})
	win := words[0].Win
	forEachRank(len(order), func(i int) fabric.Rank { return words[order[i]].Target }, func(lo, hi int) {
		ops := make([]fabric.CASOp, 0, hi-lo)
		for i := lo; i < hi; i++ {
			w := words[order[i]]
			checkTrainWin(win, w)
			marked := vers[order[i]]<<versionShift | writeBit
			ops = append(ops, fabric.CASOp{Idx: w.Idx, Old: marked, New: bumpVersion(marked &^ writeBit)})
		}
		win.CASBatch(origin, words[order[lo]].Target, ops)
	})
}

// SeedMirrorWord initializes a follower copy's version word. Seeding runs
// under the primary's write lock at version v and writes content equal to
// what the primary's pending release will publish as v+1, so the word enters
// lockstep as free at v+1 (the same bump the primary's release performs).
// Promotion reuses it to forcibly reset a follower word that a committer on a
// now-dead rank left write-marked mid-fan-out: nothing will ever complete
// that fan-out, so an unconditional store is the only way the word can move
// again.
func SeedMirrorWord(origin fabric.Rank, w Word, primaryVer uint64) {
	w.Win.Store(origin, w.Target, w.Idx, bumpVersion(primaryVer<<versionShift))
}

// BumpMirrorTrain moves lockstep follower words from free at v to free at
// v+1 with one best-effort CAS train per owner rank — the follower half of a
// content-preserving write release (an aborted transaction, a skipped
// migration, a bailed replica seed). The primary's release bumped its version
// without changing its content, so a follower in lockstep stays in lockstep
// by tracking the bump. A word that fails the CAS was already out of lockstep
// (or is mid-mark by a racing committer) and is left alone: its next replica
// read simply fails version validation and falls back.
func BumpMirrorTrain(origin fabric.Rank, words []Word, vers []uint64) {
	if len(words) == 0 {
		return
	}
	if len(vers) != len(words) {
		panic(fmt.Sprintf("locks: mirror train of %d words with %d versions", len(words), len(vers)))
	}
	order := make([]int, len(words))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := words[order[i]], words[order[j]]
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Idx < b.Idx
	})
	win := words[0].Win
	forEachRank(len(order), func(i int) fabric.Rank { return words[order[i]].Target }, func(lo, hi int) {
		ops := make([]fabric.CASOp, 0, hi-lo)
		for i := lo; i < hi; i++ {
			w := words[order[i]]
			checkTrainWin(win, w)
			free := vers[order[i]] << versionShift
			ops = append(ops, fabric.CASOp{Idx: w.Idx, Old: free, New: bumpVersion(free)})
		}
		win.CASBatch(origin, words[order[lo]].Target, ops)
	})
}

// AcquireReadTrain takes shared locks on every word, one vectored CAS train
// per owner rank per round. Words observed under a writer are probed with a
// value-preserving CAS until the writer leaves or the budget runs out. All
// or nothing: on ErrContended every read lock the train took is released.
func AcquireReadTrain(origin fabric.Rank, words []Word, tries int) error {
	switch len(words) {
	case 0:
		return nil
	case 1:
		return words[0].TryAcquireRead(origin, tries)
	}
	train := sortedWords(words)
	win := train[0].Win
	held := make([]bool, len(train))
	expected := make([]uint64, len(train)) // last observed word value
	nHeld := 0
	for round := 0; round < tries && nHeld < len(train); round++ {
		forEachRank(len(train), func(i int) fabric.Rank { return train[i].Target }, func(lo, hi int) {
			ops := make([]fabric.CASOp, 0, hi-lo)
			opIdx := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if held[i] {
					continue
				}
				checkTrainWin(win, train[i])
				op := fabric.CASOp{Idx: train[i].Idx, Old: expected[i], New: expected[i] + 1}
				if expected[i]&writeBit != 0 {
					op.New = op.Old // probe: a writer holds the word
				}
				ops = append(ops, op)
				opIdx = append(opIdx, i)
			}
			for j, r := range win.CASBatch(origin, train[lo].Target, ops) {
				i := opIdx[j]
				switch {
				case r.Swapped && ops[j].New != ops[j].Old:
					held[i] = true
					nHeld++
				case r.Swapped: // probe confirmed the writer is still there
				default:
					expected[i] = r.Prev
				}
			}
		})
	}
	if nHeld == len(train) {
		return nil
	}
	var taken []Word
	for i, h := range held {
		if h {
			taken = append(taken, train[i])
		}
	}
	ReleaseReadTrain(origin, taken)
	return ErrContended
}

// ReleaseReadTrain drops shared locks, one vectored CAS train per owner rank
// per round; words still contended after a few optimistic rounds fall back
// to the scalar release loop.
func ReleaseReadTrain(origin fabric.Rank, words []Word) {
	switch len(words) {
	case 0:
		return
	case 1:
		words[0].ReleaseRead(origin)
		return
	}
	const optimisticRounds = 8
	train := sortedWords(words)
	win := train[0].Win
	done := make([]bool, len(train))
	expected := make([]uint64, len(train))
	for i := range expected {
		expected[i] = 1 // uncontended case: we are the only reader
	}
	nDone := 0
	for round := 0; round < optimisticRounds && nDone < len(train); round++ {
		forEachRank(len(train), func(i int) fabric.Rank { return train[i].Target }, func(lo, hi int) {
			ops := make([]fabric.CASOp, 0, hi-lo)
			opIdx := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if done[i] {
					continue
				}
				checkTrainWin(win, train[i])
				if expected[i]&readerMask == 0 {
					panic("locks: ReleaseReadTrain with zero reader count")
				}
				ops = append(ops, fabric.CASOp{Idx: train[i].Idx, Old: expected[i], New: expected[i] - 1})
				opIdx = append(opIdx, i)
			}
			for j, r := range win.CASBatch(origin, train[lo].Target, ops) {
				if r.Swapped {
					done[opIdx[j]] = true
					nDone++
				} else {
					expected[opIdx[j]] = r.Prev
				}
			}
		})
	}
	for i, d := range done {
		if !d {
			train[i].ReleaseRead(origin)
		}
	}
}

// sortedWords copies and globally orders a word list (rank, then index).
func sortedWords(words []Word) []Word {
	train := append([]Word(nil), words...)
	sort.Slice(train, func(i, j int) bool {
		if train[i].Target != train[j].Target {
			return train[i].Target < train[j].Target
		}
		return train[i].Idx < train[j].Idx
	})
	return train
}

// forEachRank walks the maximal runs of equal-target elements of a sorted
// train, calling visit with each half-open run [lo, hi).
func forEachRank(n int, target func(int) fabric.Rank, visit func(lo, hi int)) {
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && target(hi) == target(lo) {
			hi++
		}
		visit(lo, hi)
		lo = hi
	}
}
