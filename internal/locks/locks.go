// Package locks implements the scalable two-phase reader-writer locking of
// GDI-RMA (§5.6 of the paper). One 64-bit lock word guards each vertex: the
// high bit is the write bit, the low 32 bits count readers. All acquisition
// is performed with remote CAS on the word, so a lock operation costs one
// network atomic on the fast path.
//
// Acquisition is bounded: after maxTries failed CAS/recheck rounds the
// attempt fails and the caller (the transaction layer) must abort the
// transaction with a transaction-critical error. This bounded try-lock is
// what produces the paper's small failed-transaction percentages under
// write-heavy load, and it also rules out distributed deadlock without a
// lock manager.
package locks

import (
	"errors"

	"github.com/gdi-go/gdi/internal/rma"
)

// writeBit marks an exclusively held word.
const writeBit uint64 = 1 << 63

// readerMask extracts the reader count.
const readerMask uint64 = 1<<32 - 1

// ErrContended is returned when a bounded acquisition gives up. Transactions
// translate it into a transaction-critical error.
var ErrContended = errors.New("locks: lock acquisition exceeded retry budget")

// DefaultTries is the default retry budget for bounded acquisition.
const DefaultTries = 64

// Word addresses one lock word inside an RMA word window.
type Word struct {
	Win    *rma.WordWin
	Target rma.Rank
	Idx    int
}

// TryAcquireRead takes a shared lock, retrying at most tries rounds.
func (w Word) TryAcquireRead(origin rma.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&writeBit != 0 {
			continue // a writer holds the lock
		}
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, cur+1); ok {
			return nil
		}
	}
	return ErrContended
}

// ReleaseRead drops a shared lock.
func (w Word) ReleaseRead(origin rma.Rank) {
	for {
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&readerMask == 0 {
			panic("locks: ReleaseRead with zero reader count")
		}
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, cur-1); ok {
			return
		}
	}
}

// TryAcquireWrite takes the exclusive lock: it succeeds only when no reader
// and no writer holds the word.
func (w Word) TryAcquireWrite(origin rma.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, 0, writeBit); ok {
			return nil
		}
	}
	return ErrContended
}

// TryUpgrade converts a held shared lock into the exclusive lock. It
// succeeds only while the caller is the sole reader; otherwise the caller
// keeps its shared lock and receives ErrContended.
func (w Word) TryUpgrade(origin rma.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, 1, writeBit); ok {
			return nil
		}
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&writeBit != 0 {
			// Impossible while we hold a read lock under correct usage.
			return ErrContended
		}
	}
	return ErrContended
}

// ReleaseWrite drops the exclusive lock.
func (w Word) ReleaseWrite(origin rma.Rank) {
	if prev, ok := w.Win.CAS(origin, w.Target, w.Idx, writeBit, 0); !ok {
		_ = prev
		panic("locks: ReleaseWrite without holding the write lock")
	}
}

// Peek returns the raw lock word (diagnostics and tests).
func (w Word) Peek(origin rma.Rank) (writer bool, readers uint32) {
	cur := w.Win.Load(origin, w.Target, w.Idx)
	return cur&writeBit != 0, uint32(cur & readerMask)
}
