// Package locks implements the scalable two-phase reader-writer locking of
// GDI-RMA (§5.6 of the paper). One 64-bit lock word guards each vertex: the
// high bit is the write bit, the low 32 bits count readers. All acquisition
// is performed with remote CAS on the word, so a lock operation costs one
// network atomic on the fast path.
//
// Acquisition is bounded: after maxTries failed CAS/recheck rounds the
// attempt fails and the caller (the transaction layer) must abort the
// transaction with a transaction-critical error. This bounded try-lock is
// what produces the paper's small failed-transaction percentages under
// write-heavy load, and it also rules out distributed deadlock without a
// lock manager.
package locks

import (
	"errors"
	"sort"

	"github.com/gdi-go/gdi/internal/rma"
)

// writeBit marks an exclusively held word.
const writeBit uint64 = 1 << 63

// readerMask extracts the reader count.
const readerMask uint64 = 1<<32 - 1

// ErrContended is returned when a bounded acquisition gives up. Transactions
// translate it into a transaction-critical error.
var ErrContended = errors.New("locks: lock acquisition exceeded retry budget")

// DefaultTries is the default retry budget for bounded acquisition.
const DefaultTries = 64

// Word addresses one lock word inside an RMA word window.
type Word struct {
	Win    *rma.WordWin
	Target rma.Rank
	Idx    int
}

// TryAcquireRead takes a shared lock, retrying at most tries rounds.
func (w Word) TryAcquireRead(origin rma.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&writeBit != 0 {
			continue // a writer holds the lock
		}
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, cur+1); ok {
			return nil
		}
	}
	return ErrContended
}

// ReleaseRead drops a shared lock.
func (w Word) ReleaseRead(origin rma.Rank) {
	for {
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&readerMask == 0 {
			panic("locks: ReleaseRead with zero reader count")
		}
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, cur, cur-1); ok {
			return
		}
	}
}

// TryAcquireWrite takes the exclusive lock: it succeeds only when no reader
// and no writer holds the word.
func (w Word) TryAcquireWrite(origin rma.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, 0, writeBit); ok {
			return nil
		}
	}
	return ErrContended
}

// TryUpgrade converts a held shared lock into the exclusive lock. It
// succeeds only while the caller is the sole reader; otherwise the caller
// keeps its shared lock and receives ErrContended.
func (w Word) TryUpgrade(origin rma.Rank, tries int) error {
	for i := 0; i < tries; i++ {
		if _, ok := w.Win.CAS(origin, w.Target, w.Idx, 1, writeBit); ok {
			return nil
		}
		cur := w.Win.Load(origin, w.Target, w.Idx)
		if cur&writeBit != 0 {
			// Impossible while we hold a read lock under correct usage.
			return ErrContended
		}
	}
	return ErrContended
}

// ReleaseWrite drops the exclusive lock.
func (w Word) ReleaseWrite(origin rma.Rank) {
	if prev, ok := w.Win.CAS(origin, w.Target, w.Idx, writeBit, 0); !ok {
		_ = prev
		panic("locks: ReleaseWrite without holding the write lock")
	}
}

// Peek returns the raw lock word (diagnostics and tests).
func (w Word) Peek(origin rma.Rank) (writer bool, readers uint32) {
	cur := w.Win.Load(origin, w.Target, w.Idx)
	return cur&writeBit != 0, uint32(cur & readerMask)
}

// Lock trains: the write-side batching of §5.6. A transaction's commit
// touches one lock word per written vertex; acquiring them with scalar CAS
// costs one remote atomic round-trip each. A train sorts the words globally
// (rank, then index — a total order shared by all ranks, so concurrent
// trains cannot deadlock even when acquisition blocks) and issues all CAS
// for one owner rank as a single vectored train, paying the injected remote
// latency once per rank per round instead of once per word. All words of a
// train must address the same window (in GDA they all live in the block
// store's system window).

// TrainLock is one element of a write-lock train.
type TrainLock struct {
	Word Word
	// FromRead marks a word the caller already holds shared: the train
	// upgrades it (sole reader → writer, CAS 1→writeBit) instead of
	// acquiring it from free (CAS 0→writeBit).
	FromRead bool
}

// checkTrainWin verifies the single-window invariant of lock trains.
func checkTrainWin(win *rma.WordWin, w Word) {
	if w.Win != win {
		panic("locks: lock train spans multiple windows")
	}
}

// AcquireWriteTrain write-locks every word of the train, issuing one
// vectored CAS train per owner rank per retry round. Acquisition is all or
// nothing: if any word cannot be taken within the retry budget, every lock
// the train did acquire is rolled back to its pre-train state (upgrades
// return to one reader) and ErrContended is returned. A train of size one
// degenerates to the scalar TryAcquireWrite/TryUpgrade.
func AcquireWriteTrain(origin rma.Rank, ls []TrainLock, tries int) error {
	switch len(ls) {
	case 0:
		return nil
	case 1:
		if ls[0].FromRead {
			return ls[0].Word.TryUpgrade(origin, tries)
		}
		return ls[0].Word.TryAcquireWrite(origin, tries)
	}
	train := append([]TrainLock(nil), ls...)
	sort.Slice(train, func(i, j int) bool {
		a, b := train[i].Word, train[j].Word
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Idx < b.Idx
	})
	win := train[0].Word.Win
	held := make([]bool, len(train))
	nHeld := 0
	oldOf := func(l TrainLock) uint64 {
		if l.FromRead {
			return 1
		}
		return 0
	}
	for round := 0; round < tries && nHeld < len(train); round++ {
		forEachRank(len(train), func(i int) rma.Rank { return train[i].Word.Target }, func(lo, hi int) {
			ops := make([]rma.CASOp, 0, hi-lo)
			opIdx := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if held[i] {
					continue
				}
				checkTrainWin(win, train[i].Word)
				ops = append(ops, rma.CASOp{Idx: train[i].Word.Idx, Old: oldOf(train[i]), New: writeBit})
				opIdx = append(opIdx, i)
			}
			for i, r := range win.CASBatch(origin, train[lo].Word.Target, ops) {
				if r.Swapped {
					held[opIdx[i]] = true
					nHeld++
				}
			}
		})
	}
	if nHeld == len(train) {
		return nil
	}
	// Roll back every word this train acquired, again one train per rank.
	forEachRank(len(train), func(i int) rma.Rank { return train[i].Word.Target }, func(lo, hi int) {
		ops := make([]rma.CASOp, 0, hi-lo)
		for i := lo; i < hi; i++ {
			if held[i] {
				ops = append(ops, rma.CASOp{Idx: train[i].Word.Idx, Old: writeBit, New: oldOf(train[i])})
			}
		}
		for _, r := range win.CASBatch(origin, train[lo].Word.Target, ops) {
			if !r.Swapped {
				panic("locks: write-train rollback of a word not exclusively held")
			}
		}
	})
	return ErrContended
}

// ReleaseWriteTrain drops exclusively held locks, one vectored CAS train per
// owner rank. Every word must be write-held by the caller.
func ReleaseWriteTrain(origin rma.Rank, words []Word) {
	switch len(words) {
	case 0:
		return
	case 1:
		words[0].ReleaseWrite(origin)
		return
	}
	train := sortedWords(words)
	win := train[0].Win
	forEachRank(len(train), func(i int) rma.Rank { return train[i].Target }, func(lo, hi int) {
		ops := make([]rma.CASOp, 0, hi-lo)
		for i := lo; i < hi; i++ {
			checkTrainWin(win, train[i])
			ops = append(ops, rma.CASOp{Idx: train[i].Idx, Old: writeBit, New: 0})
		}
		for _, r := range win.CASBatch(origin, train[lo].Target, ops) {
			if !r.Swapped {
				panic("locks: ReleaseWriteTrain without holding the write lock")
			}
		}
	})
}

// AcquireReadTrain takes shared locks on every word, one vectored CAS train
// per owner rank per round. Words observed under a writer are probed with a
// value-preserving CAS until the writer leaves or the budget runs out. All
// or nothing: on ErrContended every read lock the train took is released.
func AcquireReadTrain(origin rma.Rank, words []Word, tries int) error {
	switch len(words) {
	case 0:
		return nil
	case 1:
		return words[0].TryAcquireRead(origin, tries)
	}
	train := sortedWords(words)
	win := train[0].Win
	held := make([]bool, len(train))
	expected := make([]uint64, len(train)) // last observed word value
	nHeld := 0
	for round := 0; round < tries && nHeld < len(train); round++ {
		forEachRank(len(train), func(i int) rma.Rank { return train[i].Target }, func(lo, hi int) {
			ops := make([]rma.CASOp, 0, hi-lo)
			opIdx := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if held[i] {
					continue
				}
				checkTrainWin(win, train[i])
				op := rma.CASOp{Idx: train[i].Idx, Old: expected[i], New: expected[i] + 1}
				if expected[i]&writeBit != 0 {
					op.New = op.Old // probe: a writer holds the word
				}
				ops = append(ops, op)
				opIdx = append(opIdx, i)
			}
			for j, r := range win.CASBatch(origin, train[lo].Target, ops) {
				i := opIdx[j]
				switch {
				case r.Swapped && ops[j].New != ops[j].Old:
					held[i] = true
					nHeld++
				case r.Swapped: // probe confirmed the writer is still there
				default:
					expected[i] = r.Prev
				}
			}
		})
	}
	if nHeld == len(train) {
		return nil
	}
	var taken []Word
	for i, h := range held {
		if h {
			taken = append(taken, train[i])
		}
	}
	ReleaseReadTrain(origin, taken)
	return ErrContended
}

// ReleaseReadTrain drops shared locks, one vectored CAS train per owner rank
// per round; words still contended after a few optimistic rounds fall back
// to the scalar release loop.
func ReleaseReadTrain(origin rma.Rank, words []Word) {
	switch len(words) {
	case 0:
		return
	case 1:
		words[0].ReleaseRead(origin)
		return
	}
	const optimisticRounds = 8
	train := sortedWords(words)
	win := train[0].Win
	done := make([]bool, len(train))
	expected := make([]uint64, len(train))
	for i := range expected {
		expected[i] = 1 // uncontended case: we are the only reader
	}
	nDone := 0
	for round := 0; round < optimisticRounds && nDone < len(train); round++ {
		forEachRank(len(train), func(i int) rma.Rank { return train[i].Target }, func(lo, hi int) {
			ops := make([]rma.CASOp, 0, hi-lo)
			opIdx := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				if done[i] {
					continue
				}
				checkTrainWin(win, train[i])
				if expected[i]&readerMask == 0 {
					panic("locks: ReleaseReadTrain with zero reader count")
				}
				ops = append(ops, rma.CASOp{Idx: train[i].Idx, Old: expected[i], New: expected[i] - 1})
				opIdx = append(opIdx, i)
			}
			for j, r := range win.CASBatch(origin, train[lo].Target, ops) {
				if r.Swapped {
					done[opIdx[j]] = true
					nDone++
				} else {
					expected[opIdx[j]] = r.Prev
				}
			}
		})
	}
	for i, d := range done {
		if !d {
			train[i].ReleaseRead(origin)
		}
	}
}

// sortedWords copies and globally orders a word list (rank, then index).
func sortedWords(words []Word) []Word {
	train := append([]Word(nil), words...)
	sort.Slice(train, func(i, j int) bool {
		if train[i].Target != train[j].Target {
			return train[i].Target < train[j].Target
		}
		return train[i].Idx < train[j].Idx
	})
	return train
}

// forEachRank walks the maximal runs of equal-target elements of a sorted
// train, calling visit with each half-open run [lo, hi).
func forEachRank(n int, target func(int) rma.Rank, visit func(lo, hi int)) {
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && target(hi) == target(lo) {
			hi++
		}
		visit(lo, hi)
		lo = hi
	}
}
