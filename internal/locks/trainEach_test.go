package locks

import (
	"testing"

	"github.com/gdi-go/gdi/internal/rma"
)

// TestAcquireWriteTrainEachPartial: the best-effort train takes every free
// word, skips the contended ones without rolling back its successes, and the
// returned versions release cleanly in one round.
func TestAcquireWriteTrainEachPartial(t *testing.T) {
	f := rma.New(2)
	win := f.NewWordWin(8)
	word := func(target rma.Rank, idx int) Word { return Word{Win: win, Target: target, Idx: idx} }

	// Word (1,1) is pinned by a foreign reader; (0,2) by a writer.
	if err := word(1, 1).TryAcquireRead(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := word(0, 2).TryAcquireWrite(0, 4); err != nil {
		t.Fatal(err)
	}
	// Bump (1,3)'s version so the train has to learn a non-zero word.
	if err := word(1, 3).TryAcquireWrite(0, 4); err != nil {
		t.Fatal(err)
	}
	word(1, 3).ReleaseWrite(0)

	train := []TrainLock{
		{Word: word(0, 1)},
		{Word: word(1, 1)}, // blocked by the reader
		{Word: word(0, 2)}, // blocked by the writer
		{Word: word(1, 3)},
	}
	vers, held := AcquireWriteTrainEach(0, train, 8)
	if !held[0] || held[1] || !held[3] {
		t.Fatalf("held = %v, want [true false _ true]", held)
	}
	if held[2] {
		t.Fatal("train acquired a word another writer holds")
	}
	if vers[3] != 1 {
		t.Fatalf("version of (1,3) = %d, want 1", vers[3])
	}

	// The blocked words are untouched: reader count and writer bit intact.
	if w, r := word(1, 1).Peek(0); w || r != 1 {
		t.Fatalf("(1,1) disturbed: writer=%v readers=%d", w, r)
	}
	if w, _ := word(0, 2).Peek(0); !w {
		t.Fatal("(0,2) lost its writer bit")
	}

	// Release the held subset with the returned versions; everything is
	// acquirable again afterwards.
	var ws []Word
	var vs []uint64
	for i, h := range held {
		if h {
			ws = append(ws, train[i].Word)
			vs = append(vs, vers[i])
		}
	}
	ReleaseWriteTrain(0, ws, vs)
	for _, w := range []Word{word(0, 1), word(1, 3)} {
		if err := w.TryAcquireWrite(0, 4); err != nil {
			t.Fatalf("word not released: %v", err)
		}
		w.ReleaseWrite(0)
	}
	if got := Version(win.Load(0, 1, 3)); got != 3 {
		t.Fatalf("(1,3) version = %d after two release cycles, want 3", got)
	}
}

// TestAcquireWriteTrainEachUpgrade: FromRead entries upgrade held shared
// locks best-effort, leaving contended ones as plain read locks.
func TestAcquireWriteTrainEachUpgrade(t *testing.T) {
	f := rma.New(1)
	win := f.NewWordWin(4)
	a := Word{Win: win, Target: 0, Idx: 0}
	b := Word{Win: win, Target: 0, Idx: 1}
	if err := a.TryAcquireRead(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.TryAcquireRead(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.TryAcquireRead(0, 4); err != nil { // second reader blocks the upgrade
		t.Fatal(err)
	}
	vers, held := AcquireWriteTrainEach(0, []TrainLock{
		{Word: a, FromRead: true},
		{Word: b, FromRead: true},
	}, 8)
	if !held[0] || held[1] {
		t.Fatalf("held = %v, want [true false]", held)
	}
	if w, r := a.Peek(0); !w || r != 0 {
		t.Fatalf("a not upgraded: writer=%v readers=%d", w, r)
	}
	if w, r := b.Peek(0); w || r != 2 {
		t.Fatalf("b disturbed: writer=%v readers=%d", w, r)
	}
	ReleaseWriteTrain(0, []Word{a}, []uint64{vers[0]})
	b.ReleaseRead(0)
	b.ReleaseRead(0)
}
