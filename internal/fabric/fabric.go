// Package fabric defines the service-provider interface (SPI) between the
// GDI engine layers and the interconnect that carries their one-sided
// traffic — the hexagonal seam of the system: contracts live here, mechanisms
// live behind them.
//
// The paper's GDI-RMA implementation runs on Cray Aries RDMA hardware through
// foMPI's MPI-3 one-sided routines. This reproduction has two backends:
//
//   - package rma, the process-local simulator (all ranks are goroutines in
//     one address space, with per-op traffic counters and an injectable
//     latency model for the ablation experiments);
//   - package fabric/tcp, a real multi-process transport (each rank is its
//     own OS process; one-sided operations travel as framed request/response
//     trains over a TCP mesh).
//
// Everything above this package — locks, block store, DHT, collectives,
// exchange, core transaction engine, snapshots, analytics — depends only on
// the interfaces here, so the same engine binary runs unmodified over either
// backend. The defining one-sided property is part of the contract: the
// target rank's *application* code never executes on the data path. (The TCP
// backend services remote operations with a transport-owned handler
// goroutine, exactly as an RDMA NIC services them with its DMA engine.)
//
// # SPMD contract
//
// Programs are SPMD, as with MPI: every rank executes the same code, and
// window allocation (NewByteWin, NewWordWin, NewInbox) is collective — all
// ranks must perform the same allocations in the same order, because windows
// are identified across processes by allocation sequence. Wire transports
// verify the sequence at launch (see Transport.Run) and fail fast on a
// divergence instead of silently corrupting remote memory.
package fabric

import "fmt"

// ByteWin is a byte-granularity RMA window: every rank owns a segment of
// SegSize bytes, and any rank may Put/Get arbitrary ranges of any segment.
// It models the MPI data window used by BGDL for block payloads.
//
// Bulk accesses are atomic at page granularity (mirroring the per-cache-line
// atomicity a DMA engine provides); higher layers are responsible for
// protocol-level consistency, exactly as with real RDMA.
type ByteWin interface {
	// SegSize returns the per-rank segment size in bytes.
	SegSize() int
	// Put writes data into target's segment at off (one-sided PUT).
	Put(origin, target Rank, off int, data []byte)
	// Get reads len(buf) bytes from target's segment at off into buf (GET).
	Get(origin, target Rank, off int, buf []byte)
	// GetBatch issues every op towards target as one pipelined train of
	// non-blocking GETs and completes them all before returning — the
	// paper's §5.6 pattern of posting many one-sided accesses and paying a
	// single synchronization. A batch of size one costs exactly as much as a
	// scalar Get.
	GetBatch(origin, target Rank, ops []GetOp)
	// PutBatch is the write-side counterpart of GetBatch. Ops within one
	// train must not overlap; the window provides no ordering between them.
	PutBatch(origin, target Rank, ops []PutOp)
}

// WordWin is a 64-bit-word-granularity RMA window with atomic semantics: the
// system and usage windows of BGDL, lock words, and the offloaded DHT all
// live in word windows. Word operations map to the network-accelerated
// remote atomics the paper relies on (AGET/APUT/CAS/FetchAdd).
type WordWin interface {
	// Words returns the per-rank segment size in 64-bit words.
	Words() int
	// Load atomically reads target's word idx (AGET).
	Load(origin, target Rank, idx int) uint64
	// Store atomically writes target's word idx (APUT).
	Store(origin, target Rank, idx int, val uint64)
	// CAS atomically compares target's word idx with old and, when equal,
	// replaces it with new. It returns the previous value and whether the
	// swap happened. On failure the reported value may already be stale
	// again; callers must retry from it.
	CAS(origin, target Rank, idx int, old, new uint64) (prev uint64, swapped bool)
	// LoadBatch atomically reads every word in idxs from target's segment as
	// one train of remote atomic gets and returns the values in order.
	LoadBatch(origin, target Rank, idxs []int) []uint64
	// CASBatch issues every op towards target as one train of remote CAS
	// atomics and returns the per-op results in order. The ops are applied
	// independently (no transactional semantics across the train).
	CASBatch(origin, target Rank, ops []CASOp) []CASResult
	// FetchAdd atomically adds delta to target's word idx and returns the
	// previous value (MPI_Fetch_and_op with MPI_SUM).
	FetchAdd(origin, target Rank, idx int, delta uint64) uint64
}

// GetOp is one element of a vectored read: len(Buf) bytes from the target's
// segment at Off.
type GetOp struct {
	Off int
	Buf []byte
}

// PutOp is one element of a vectored write: len(Data) bytes into the
// target's segment at Off.
type PutOp struct {
	Off  int
	Data []byte
}

// CASOp is one element of a vectored compare-and-swap train.
type CASOp struct {
	Idx      int
	Old, New uint64
}

// CASResult reports one constituent CAS of a train: the previous word value
// and whether the swap happened, with the same retry contract as CAS.
type CASResult struct {
	Prev    uint64
	Swapped bool
}

// Inbox is a one-sided per-rank mailbox: the alltoallv substrate of the
// dense analytics engine. Every rank owns one segment, statically
// partitioned into one slot per source rank, so a delivery needs no offset
// negotiation — the sender writes header plus payload into its own slot of
// the target's segment as a single vectored PUT train, and the target
// executes no code on the data path.
//
// Epoch discipline is the caller's job, exactly as with raw MPI RMA: at most
// one delivery per (source, target) pair per epoch, all Delivers completed
// (externally, e.g. with a barrier) before the target Drains, and the Drain
// completed before the next epoch's Delivers begin.
type Inbox interface {
	// Budget returns the largest payload one delivery can carry.
	Budget() int
	// Deliver writes payload into the origin's slot of target's mailbox as
	// one PUT train. Payloads beyond Budget are a programming error.
	Deliver(origin, target Rank, payload []byte)
	// Drain scans the caller's own mailbox slots in ascending source order,
	// invokes fn once per delivery, and clears the consumed headers for the
	// next epoch. The payload slice is freshly allocated; fn may retain it.
	Drain(me Rank, fn func(src Rank, payload []byte))
}

// Messenger is the pairwise ordered message substrate underneath the
// collective layer (package collective): every directed (from, to) rank pair
// is an independent FIFO channel. The collective algorithms — dissemination
// barrier, binomial trees — are pure control flow over these pairs, which is
// what makes them backend-agnostic.
//
// Shared reports whether all ranks share one address space. When true, the
// collective layer moves Go values by reference through Send/Recv — zero
// serialization, and reference semantics some in-process subsystems (the
// HTAP cut broadcast) rely on. When false, only SendBytes/RecvBytes are
// usable and the collective layer encodes values for the wire; in-process
// Send/Recv panic on wire transports.
type Messenger interface {
	Shared() bool
	Send(from, to Rank, v any)
	Recv(from, to Rank) any
	SendBytes(from, to Rank, b []byte)
	RecvBytes(from, to Rank) []byte
}

// PeerError reports that an operation targeted a rank the transport knows to
// be dead (its process exited, its connection dropped, or the simulator's
// KillRank hook marked it). The SPI's data-path methods return no errors —
// remote operations on healthy fabrics cannot fail — so peer death surfaces
// as a typed panic that failure-aware layers (the commit fan-out, promotion,
// kill-a-rank harnesses) recover and convert; everything else keeps its
// fail-stop behavior.
type PeerError struct {
	// Rank is the dead peer.
	Rank Rank
	// Op names the operation that observed the death (diagnostics only).
	Op string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("fabric: peer rank %d is dead (%s)", e.Rank, e.Op)
}

// AsPeerDeath reports whether a recovered panic value is a PeerError, and
// returns it. Use in recover blocks:
//
//	defer func() {
//		if pe, ok := fabric.AsPeerDeath(recover()); ok { ... }
//	}()
func AsPeerDeath(v any) (*PeerError, bool) {
	pe, ok := v.(*PeerError)
	return pe, ok
}

// ServiceID names a control-plane service handler (see Transport.Register).
type ServiceID uint8

// Engine service IDs. The data path is strictly one-sided, but a handful of
// control-plane maintenance operations target another rank's process-local
// bookkeeping (the explicit vertex/label indexes a committer maintains on
// the owner). In one address space these are direct calls; across processes
// they ride the transport's service channel — the same pragmatic escape
// hatch real RDMA systems keep for their control plane.
const (
	// SvcIndexAdd publishes a new vertex into the owner's explicit indexes.
	SvcIndexAdd ServiceID = iota
	// SvcIndexRemove retracts a deleted vertex from the owner's indexes.
	SvcIndexRemove
	// SvcIndexRelabel updates a vertex's label postings on the owner.
	SvcIndexRelabel
	// SvcReplicaInstall installs a primary→follower entry in the follower
	// rank's replica directory.
	SvcReplicaInstall
	// SvcReplicaDrop removes a replica-directory entry on the follower rank.
	SvcReplicaDrop
	// SvcReplicaRekey moves a replica-directory entry to a new primary after
	// a follower promotion.
	SvcReplicaRekey
	// SvcListVertices returns the (appID, DPtr) listing of the target rank's
	// vertex shard, for replica placement planning.
	SvcListVertices
)

// Handler services one control-plane call on the target rank. It must be
// safe for concurrent invocation.
type Handler func(from Rank, req []byte) []byte

// Transport is the full fabric SPI: a group of N ranks, their windows, their
// counters, and the control plane. It plays the role of MPI_COMM_WORLD plus
// the RDMA NIC.
//
// A Transport is safe for concurrent use by all of its local ranks.
type Transport interface {
	// Size returns the number of ranks in the fabric.
	Size() int
	// Local reports whether rank r's window memory lives in this process.
	// The simulator answers true for every rank; a wire transport answers
	// true only for its own rank. Layers use it to route process-local
	// bookkeeping: direct access when local, a service Call when not.
	Local(r Rank) bool
	// Run executes fn for every rank hosted by this process and waits for
	// completion — the SPMD launch, mpirun's role. The simulator runs all N
	// ranks as goroutines; a wire transport runs exactly one (its own) and
	// first verifies that all processes performed the same window
	// allocation sequence.
	Run(fn func(rank Rank))
	// Close releases the transport's resources (connections, listeners).
	// The simulator's Close is a no-op.
	Close() error

	// NewByteWin collectively allocates a byte window with segSize bytes
	// per rank.
	NewByteWin(segSize int) ByteWin
	// NewWordWin collectively allocates a word window with nWords 64-bit
	// words per rank.
	NewWordWin(nWords int) WordWin
	// NewInbox collectively allocates an inbox with segBytes of mailbox
	// space per rank, split evenly across source slots.
	NewInbox(segBytes int) Inbox
	// Messenger returns the pairwise substrate of the collective layer.
	Messenger() Messenger

	// Flush completes all outstanding non-blocking operations issued by
	// origin towards target (MPI_Win_flush). Both backends complete
	// operations eagerly, so Flush only charges accounting.
	Flush(origin, target Rank)
	// FlushAll completes all outstanding operations issued by origin to
	// every target (MPI_Win_flush_all).
	FlushAll(origin Rank)

	// Register installs the handler for one service ID. Registering a
	// service twice panics: services are engine-global, so a wire transport
	// carries at most one database engine per process.
	Register(svc ServiceID, h Handler)
	// Call invokes svc on rank target and returns its response. On the
	// simulator this is a direct function call; on a wire transport it is
	// one request/response round-trip to the target's process.
	Call(origin, target Rank, svc ServiceID, req []byte) []byte

	// CounterSnapshot returns a copy of rank r's traffic counters. Wire
	// transports fetch remote ranks' counters over the service channel.
	CounterSnapshot(r Rank) Snapshot
	// TotalSnapshot sums the counters of every rank.
	TotalSnapshot() Snapshot
	// ResetCounters zeroes the counters of every rank.
	ResetCounters()
	// AddCache accounts lookups of origin's rank-local block cache. The
	// cache lives in the block layer; the counters live here so cache
	// traffic is reported alongside the one-sided traffic it replaces.
	AddCache(origin Rank, hits, misses int64)

	// Alive reports whether rank r is believed reachable. The simulator
	// answers true unless a test harness killed the rank; a wire transport
	// answers false once the connection to r's process has died. Liveness is
	// advisory — an operation may still hit a peer that died an instant ago,
	// in which case it panics with *PeerError.
	Alive(r Rank) bool
	// NotifyPeerDeath registers fn to be invoked (once per death, from a
	// transport-owned goroutine) when a peer rank is detected dead: the
	// liveness signal replica promotion hangs off. Multiple registrations
	// all fire. Callbacks must not block and must not issue fabric
	// operations toward the dead rank.
	NotifyPeerDeath(fn func(r Rank))
}
