package fabric

// Rank identifies one process in the fabric, mirroring an MPI rank. Ranks
// are dense integers in [0, Size).
type Rank int

// NullRank marks an absent/invalid rank.
const NullRank Rank = -1
