package fabric

import (
	"encoding/binary"
	"fmt"
)

// inboxHeader prefixes every delivery in an inbox slot: the payload length
// plus one as a little-endian uint32, so a zeroed slot reads as "empty".
const inboxHeader = 4

// slotInbox implements Inbox over any ByteWin: the slot layout, headers, and
// drain protocol are pure window arithmetic, so one implementation serves
// every backend — the simulator and the TCP transport both build their
// inboxes through NewSlotInbox.
type slotInbox struct {
	n    int
	data ByteWin
	slot int // bytes per source slot
}

// NewSlotInbox builds the standard static-slot inbox over an already
// allocated byte window shared by n ranks. Transports call this from their
// NewInbox; callers outside a transport should use Transport.NewInbox.
func NewSlotInbox(n int, data ByteWin) Inbox {
	slot := data.SegSize() / n
	if slot <= inboxHeader {
		panic(fmt.Sprintf("fabric: inbox segment of %d bytes leaves no payload room across %d source slots", data.SegSize(), n))
	}
	return &slotInbox{n: n, data: data, slot: slot}
}

func (ib *slotInbox) Budget() int { return ib.slot - inboxHeader }

func (ib *slotInbox) Deliver(origin, target Rank, payload []byte) {
	if len(payload) > ib.Budget() {
		panic(fmt.Sprintf("fabric: inbox delivery of %d bytes exceeds the %d-byte slot budget", len(payload), ib.Budget()))
	}
	var hdr [inboxHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload))+1)
	base := int(origin) * ib.slot
	ib.data.PutBatch(origin, target, []PutOp{
		{Off: base, Data: hdr[:]},
		{Off: base + inboxHeader, Data: payload},
	})
}

func (ib *slotInbox) Drain(me Rank, fn func(src Rank, payload []byte)) {
	var hdr [inboxHeader]byte
	zero := make([]byte, inboxHeader)
	for s := 0; s < ib.n; s++ {
		base := s * ib.slot
		ib.data.Get(me, me, base, hdr[:])
		l := binary.LittleEndian.Uint32(hdr[:])
		if l == 0 {
			continue
		}
		buf := make([]byte, int(l-1))
		ib.data.Get(me, me, base+inboxHeader, buf)
		ib.data.Put(me, me, base, zero)
		fn(Rank(s), buf)
	}
}
