package fabric

import (
	"testing"
	"testing/quick"
)

func TestDPtrRoundTrip(t *testing.T) {
	check := func(r uint16, off uint64) bool {
		off &= 1<<offBits - 1
		p := MakeDPtr(Rank(r), off)
		return p.Rank() == Rank(r) && p.Off() == off && !p.IsNull() == (p != 0)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDPtrNull(t *testing.T) {
	if !NullDPtr.IsNull() {
		t.Fatal("NullDPtr.IsNull() = false")
	}
	if NullDPtr.String() != "DPtr(null)" {
		t.Fatalf("NullDPtr.String() = %q", NullDPtr.String())
	}
	p := MakeDPtr(3, 42)
	if p.String() != "DPtr(3:42)" {
		t.Fatalf("String() = %q", p.String())
	}
}

func TestDPtrOffsetOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeDPtr with 49-bit offset did not panic")
		}
	}()
	MakeDPtr(0, 1<<offBits)
}
