package fabric

import "fmt"

// DPtr is the 64-bit distributed hierarchical pointer of the paper (§5.3):
// the top 16 bits name the owning rank ("compute server"), the low 48 bits
// are an owner-local offset whose unit is defined by the layer using the
// pointer (block index for BGDL, word index for the DHT heap). The 64-bit
// width is what lets every pointer travel through a single remote atomic.
//
// The zero value is the NULL pointer. Layers must therefore never hand out
// offset 0 on rank 0 — BGDL reserves block 0 of every rank for this reason.
type DPtr uint64

// NullDPtr is the invalid/absent pointer.
const NullDPtr DPtr = 0

const offBits = 48

// MakeDPtr builds a pointer to offset off on rank r.
func MakeDPtr(r Rank, off uint64) DPtr {
	if off >= 1<<offBits {
		panic(fmt.Sprintf("fabric: DPtr offset %d exceeds 48 bits", off))
	}
	return DPtr(uint64(r)<<offBits | off)
}

// Rank returns the owning rank.
func (p DPtr) Rank() Rank { return Rank(uint64(p) >> offBits) }

// Off returns the owner-local offset.
func (p DPtr) Off() uint64 { return uint64(p) & (1<<offBits - 1) }

// IsNull reports whether p is the NULL pointer.
func (p DPtr) IsNull() bool { return p == NullDPtr }

// String formats the pointer as rank:offset for diagnostics.
func (p DPtr) String() string {
	if p.IsNull() {
		return "DPtr(null)"
	}
	return fmt.Sprintf("DPtr(%d:%d)", p.Rank(), p.Off())
}
