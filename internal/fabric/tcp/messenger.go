package tcp

import (
	"fmt"
	"sync"

	"github.com/gdi-go/gdi/internal/fabric"
)

// messenger is the wire backend's pairwise substrate: Shared reports false,
// so the collective layer encodes every value for the wire and only
// SendBytes/RecvBytes carry traffic. Because each (from, to) pair rides one
// TCP connection and TCP preserves order, per-pair FIFO — the property the
// collective algorithms rest on — comes for free; this side only buffers.
type messenger struct {
	t      *Transport
	queues []msgQueue // indexed by source rank; queues[me] is the self-loop
}

// msgQueue is one source rank's unbounded FIFO of undrained deliveries.
type msgQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    [][]byte
	dead bool // source's connection died; drain what arrived, then fail fast
}

func newMessenger(t *Transport) *messenger {
	m := &messenger{t: t, queues: make([]msgQueue, t.n)}
	for i := range m.queues {
		m.queues[i].cond = sync.NewCond(&m.queues[i].mu)
	}
	return m
}

// Shared reports false: ranks live in separate address spaces.
func (m *messenger) Shared() bool { return false }

// Send is the in-process reference-passing path; it cannot cross a wire.
func (m *messenger) Send(from, to fabric.Rank, v any) {
	panic("tcp: Messenger.Send passes Go values by reference and is unavailable on a wire transport; use SendBytes")
}

// Recv is the in-process reference-passing path; it cannot cross a wire.
func (m *messenger) Recv(from, to fabric.Rank) any {
	panic("tcp: Messenger.Recv passes Go values by reference and is unavailable on a wire transport; use RecvBytes")
}

// SendBytes delivers b on the (from, to) FIFO channel. from must be this
// process's rank.
func (m *messenger) SendBytes(from, to fabric.Rank, b []byte) {
	if from != m.t.me {
		panic(fmt.Sprintf("tcp: rank %d cannot send as rank %d", m.t.me, from))
	}
	if to == m.t.me {
		m.enqueue(to, append([]byte(nil), b...))
		return
	}
	if to < 0 || int(to) >= m.t.n || m.t.peers[to] == nil {
		panic(fmt.Sprintf("tcp: send to unconnected rank %d", to))
	}
	p := m.t.peers[to]
	if p.dead.Load() {
		panic(&fabric.PeerError{Rank: to, Op: "send"})
	}
	if err := p.writeFrame(ftMsg, b); err != nil {
		m.t.peerDied(p)
		panic(&fabric.PeerError{Rank: to, Op: "send"})
	}
}

// RecvBytes blocks until a delivery from from arrives and returns it. to
// must be this process's rank.
func (m *messenger) RecvBytes(from, to fabric.Rank) []byte {
	if to != m.t.me {
		panic(fmt.Sprintf("tcp: rank %d cannot receive as rank %d", m.t.me, to))
	}
	if from < 0 || int(from) >= m.t.n {
		panic(fmt.Sprintf("tcp: receive from rank %d out of range [0, %d)", from, m.t.n))
	}
	q := &m.queues[from]
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.q) == 0 {
		// A dead source can never deliver again: fail the wait instead of
		// blocking a collective forever on a vanished peer.
		if q.dead {
			panic(&fabric.PeerError{Rank: from, Op: "recv"})
		}
		q.cond.Wait()
	}
	b := q.q[0]
	q.q = q.q[1:]
	return b
}

// fail poisons src's queue after its connection died: queued deliveries
// remain drainable (TCP handed them over in order before the death), but any
// wait that would block on more panics with *fabric.PeerError.
func (m *messenger) fail(src fabric.Rank) {
	q := &m.queues[src]
	q.mu.Lock()
	q.dead = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// enqueue appends one delivery from src (called by the reader goroutine of
// src's connection, or by SendBytes for the self-loop).
func (m *messenger) enqueue(src fabric.Rank, b []byte) {
	q := &m.queues[src]
	q.mu.Lock()
	q.q = append(q.q, b)
	q.mu.Unlock()
	q.cond.Signal()
}
