package tcp

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		ft   byte
		body []byte
	}{
		{ftHello, []byte{3, 0}},
		{ftReq, []byte("request body")},
		{ftResp, nil},
		{ftMsg, bytes.Repeat([]byte{0xAB}, 9001)},
	}
	var stream []byte
	for _, c := range cases {
		stream = appendFrame(stream, c.ft, c.body)
	}
	r := bytes.NewReader(stream)
	for i, c := range cases {
		ft, body, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != c.ft || !bytes.Equal(body, c.body) {
			t.Fatalf("frame %d: got type %d body %d bytes, want type %d body %d bytes",
				i, ft, len(body), c.ft, len(c.body))
		}
	}
	if _, _, err := readFrame(r); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// oneByteReader exposes readFrame to partial reads: every Read call returns
// at most one byte, as a fragmented TCP stream would.
type oneByteReader struct{ r io.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestFrameReadTolerantOfPartialReads(t *testing.T) {
	body := []byte("split across many tiny reads")
	stream := appendFrame(nil, ftMsg, body)
	ft, got, err := readFrame(oneByteReader{bytes.NewReader(stream)})
	if err != nil {
		t.Fatal(err)
	}
	if ft != ftMsg || !bytes.Equal(got, body) {
		t.Fatalf("got type %d body %q", ft, got)
	}
}

func TestFrameTruncatedBodyErrors(t *testing.T) {
	stream := appendFrame(nil, ftMsg, []byte("full body"))
	_, _, err := readFrame(bytes.NewReader(stream[:len(stream)-3]))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameRejectsMalformedHeaders(t *testing.T) {
	bad := [][]byte{
		{0, 0, 0, 0, byte(ftMsg)},       // length 0 < 1
		{0xFF, 0xFF, 0xFF, 0xFF, ftMsg}, // length over maxFrame
		{1, 0, 0, 0, 0},                 // frame type 0
		{1, 0, 0, 0, 99},                // unknown frame type
	}
	for i, h := range bad {
		if _, _, err := readFrame(bytes.NewReader(h)); err == nil {
			t.Errorf("header %d (% x): accepted, want error", i, h)
		}
	}
}

// FuzzFrame asserts readFrame never panics and never over-allocates on
// arbitrary input, and that every frame it accepts re-encodes to the bytes
// it consumed.
func FuzzFrame(f *testing.F) {
	f.Add(appendFrame(nil, ftMsg, []byte("seed")))
	f.Add(appendFrame(nil, ftHello, []byte{1, 0}))
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		ft, body, err := readFrame(r)
		if err != nil {
			return
		}
		re := appendFrame(nil, ft, body)
		consumed := len(data) - r.Len()
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("accepted frame does not re-encode to its input: % x vs % x", re, data[:consumed])
		}
		if binary.LittleEndian.Uint32(data) != uint32(1+len(body)) {
			t.Fatalf("length field %d disagrees with body %d", binary.LittleEndian.Uint32(data), len(body))
		}
	})
}
