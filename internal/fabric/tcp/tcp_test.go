package tcp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/gdi-go/gdi/internal/collective"
	"github.com/gdi-go/gdi/internal/fabric"
	"github.com/gdi-go/gdi/internal/rma"
)

// runCluster drives one SPMD program over every transport of a loopback
// cluster (each Transport.Run hosts exactly one rank) and closes the mesh
// once all ranks return.
func runCluster(t *testing.T, ts []*Transport, fn func(tr fabric.Transport, me fabric.Rank)) {
	t.Helper()
	var wg sync.WaitGroup
	for _, tr := range ts {
		wg.Add(1)
		go func(tr *Transport) {
			defer wg.Done()
			tr.Run(func(me fabric.Rank) { fn(tr, me) })
		}(tr)
	}
	wg.Wait()
	for _, tr := range ts {
		tr.Close()
	}
}

// opScript executes a deterministic mixed workload of scalar and vectored
// window operations from every rank against every rank, and returns a digest
// of everything observed. Running it over the simulator and over the TCP
// loopback mesh must produce identical digests — the backends are
// semantically interchangeable.
func opScript(tr fabric.Transport, me fabric.Rank, bw fabric.ByteWin, ww fabric.WordWin, comm *collective.Comm) []byte {
	n := tr.Size()
	rng := rand.New(rand.NewSource(100 + int64(me)))
	var digest []byte

	// Phase 1: every rank writes rank-tagged pages into every segment, in
	// disjoint per-origin regions so the phase is race-free by construction.
	region := bw.SegSize() / n
	for tgt := 0; tgt < n; tgt++ {
		data := make([]byte, 64+rng.Intn(200))
		for i := range data {
			data[i] = byte(int(me)*31 + i)
		}
		bw.Put(me, fabric.Rank(tgt), int(me)*region, data)
		ops := []fabric.PutOp{
			{Off: int(me)*region + 512, Data: bytes.Repeat([]byte{byte(me) + 1}, 33)},
			{Off: int(me)*region + 777, Data: []byte(fmt.Sprintf("origin-%d", me))},
		}
		bw.PutBatch(me, fabric.Rank(tgt), ops)
	}
	comm.Barrier(me)

	// Phase 2: read back every origin's region from every segment, scalar and
	// vectored, and fold the bytes into the digest.
	for tgt := 0; tgt < n; tgt++ {
		for src := 0; src < n; src++ {
			buf := make([]byte, 64)
			bw.Get(me, fabric.Rank(tgt), src*region, buf)
			digest = append(digest, buf...)
		}
		gops := []fabric.GetOp{
			{Off: 512, Buf: make([]byte, 33)},
			{Off: 777, Buf: make([]byte, 8)},
		}
		bw.GetBatch(me, fabric.Rank(tgt), gops)
		for _, g := range gops {
			digest = append(digest, g.Buf...)
		}
	}
	comm.Barrier(me)

	// Phase 3: contended word atomics. Every rank FetchAdds every counter
	// word and CAS-claims per-rank slots; totals are deterministic even
	// though interleavings are not.
	for tgt := 0; tgt < n; tgt++ {
		ww.FetchAdd(me, fabric.Rank(tgt), 0, 1)
		ww.FetchAdd(me, fabric.Rank(tgt), 1, uint64(me)+1)
		// Slot n+me is uncontended: the CAS train must succeed then fail.
		res := ww.CASBatch(me, fabric.Rank(tgt), []fabric.CASOp{
			{Idx: 2 + int(me), Old: 0, New: uint64(me) + 100},
			{Idx: 2 + int(me), Old: 0, New: 9999},
		})
		digest = append(digest, boolByte(res[0].Swapped), boolByte(res[1].Swapped))
		digest = binary.LittleEndian.AppendUint64(digest, res[1].Prev)
		ww.Store(me, fabric.Rank(tgt), 2+n+int(me), uint64(me)^0xDEAD)
	}
	comm.Barrier(me)

	// Phase 4: observe the settled words everywhere.
	for tgt := 0; tgt < n; tgt++ {
		digest = binary.LittleEndian.AppendUint64(digest, ww.Load(me, fabric.Rank(tgt), 0))
		digest = binary.LittleEndian.AppendUint64(digest, ww.Load(me, fabric.Rank(tgt), 1))
		idxs := make([]int, 2*n)
		for i := range idxs {
			idxs[i] = 2 + i
		}
		for _, v := range ww.LoadBatch(me, fabric.Rank(tgt), idxs) {
			digest = binary.LittleEndian.AppendUint64(digest, v)
		}
	}
	comm.Barrier(me)
	return digest
}

// runOpScript executes opScript over an arbitrary transport and returns the
// per-rank digests.
func runOpScript(tr fabric.Transport) [][]byte {
	n := tr.Size()
	bw := tr.NewByteWin(1 << 13)
	ww := tr.NewWordWin(2 + 2*n)
	out := make([][]byte, n)
	tr.Run(func(me fabric.Rank) {
		out[me] = opScript(tr, me, bw, ww, collective.New(tr))
	})
	return out
}

func TestLoopbackMatchesSimulator(t *testing.T) {
	const n = 3
	sim := rma.New(n)
	simDigests := runOpScript(sim)

	ts, err := NewLoopbackCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	tcpDigests := make([][]byte, n)
	var wg sync.WaitGroup
	for rank, tr := range ts {
		wg.Add(1)
		go func(rank int, tr *Transport) {
			defer wg.Done()
			bw := tr.NewByteWin(1 << 13)
			ww := tr.NewWordWin(2 + 2*n)
			tr.Run(func(me fabric.Rank) {
				tcpDigests[me] = opScript(tr, me, bw, ww, collective.New(tr))
			})
		}(rank, tr)
	}
	wg.Wait()
	for _, tr := range ts {
		tr.Close()
	}

	for r := 0; r < n; r++ {
		if !bytes.Equal(simDigests[r], tcpDigests[r]) {
			t.Errorf("rank %d: TCP digest (%d bytes) diverges from simulator digest (%d bytes)",
				r, len(tcpDigests[r]), len(simDigests[r]))
		}
	}
}

func TestLoopbackCollectives(t *testing.T) {
	const n = 4
	ts, err := NewLoopbackCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	runCluster(t, ts, func(tr fabric.Transport, me fabric.Rank) {
		comm := collective.New(tr)
		sum := collective.Allreduce(comm, me, int64(me)+1, func(a, b int64) int64 { return a + b })
		if sum != n*(n+1)/2 {
			t.Errorf("rank %d: Allreduce sum = %d, want %d", me, sum, n*(n+1)/2)
		}
		got := collective.Bcast(comm, me, 2, pick(me == 2, []byte("payload from two"), nil))
		if string(got) != "payload from two" {
			t.Errorf("rank %d: Bcast = %q", me, got)
		}
		all := collective.Allgather(comm, me, fmt.Sprintf("r%d", me))
		for r, s := range all {
			if s != fmt.Sprintf("r%d", r) {
				t.Errorf("rank %d: Allgather[%d] = %q", me, r, s)
			}
		}
		mine := collective.Exscan(comm, me, int64(1)<<uint(me), func(a, b int64) int64 { return a + b })
		if want := int64(1)<<uint(me) - 1; mine != want {
			t.Errorf("rank %d: Exscan = %d, want %d", me, mine, want)
		}
		comm.Barrier(me)
	})
}

func TestLoopbackInboxDelivery(t *testing.T) {
	const n = 3
	ts, err := NewLoopbackCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	runCluster(t, ts, func(tr fabric.Transport, me fabric.Rank) {
		inbox := tr.NewInbox(3 * 1024)
		comm := collective.New(tr)
		for tgt := 0; tgt < n; tgt++ {
			inbox.Deliver(me, fabric.Rank(tgt), []byte(fmt.Sprintf("from %d to %d", me, tgt)))
		}
		comm.Barrier(me)
		seen := 0
		inbox.Drain(me, func(src fabric.Rank, payload []byte) {
			if want := fmt.Sprintf("from %d to %d", src, me); string(payload) != want {
				t.Errorf("rank %d: drained %q from %d, want %q", me, payload, src, want)
			}
			seen++
		})
		if seen != n {
			t.Errorf("rank %d: drained %d deliveries, want %d", me, seen, n)
		}
		comm.Barrier(me)
	})
}

func TestLoopbackServiceCalls(t *testing.T) {
	const n = 2
	ts, err := NewLoopbackCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		tr.Register(fabric.SvcIndexAdd, func(from fabric.Rank, req []byte) []byte {
			return append([]byte(fmt.Sprintf("seen-by-%d-from-%d:", tr.me, from)), req...)
		})
	}
	runCluster(t, ts, func(tr fabric.Transport, me fabric.Rank) {
		other := fabric.Rank(1 - int(me))
		resp := tr.Call(me, other, fabric.SvcIndexAdd, []byte("hello"))
		if want := fmt.Sprintf("seen-by-%d-from-%d:hello", other, me); string(resp) != want {
			t.Errorf("rank %d: Call = %q, want %q", me, resp, want)
		}
		self := tr.Call(me, me, fabric.SvcIndexAdd, []byte("self"))
		if want := fmt.Sprintf("seen-by-%d-from-%d:self", me, me); string(self) != want {
			t.Errorf("rank %d: local Call = %q, want %q", me, self, want)
		}
		collective.New(tr).Barrier(me)
	})
}

func TestLoopbackCounters(t *testing.T) {
	const n = 2
	ts, err := NewLoopbackCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	runCluster(t, ts, func(tr fabric.Transport, me fabric.Rank) {
		bw := tr.NewByteWin(4096)
		comm := collective.New(tr)
		other := fabric.Rank(1 - int(me))
		bw.Put(me, other, 0, make([]byte, 100))
		bw.Get(me, me, 0, make([]byte, 50))
		comm.Barrier(me)
		own := tr.CounterSnapshot(me)
		if own.RemotePuts != 1 || own.BytesPut != 100 {
			t.Errorf("rank %d: RemotePuts=%d BytesPut=%d, want 1/100", me, own.RemotePuts, own.BytesPut)
		}
		peer := tr.CounterSnapshot(other)
		if peer.RemotePuts != 1 || peer.LocalGets != 1 {
			t.Errorf("rank %d: peer RemotePuts=%d LocalGets=%d, want 1/1", me, peer.RemotePuts, peer.LocalGets)
		}
		tot := tr.TotalSnapshot()
		if tot.RemotePuts != 2 || tot.LocalGets != 2 || tot.BytesPut != 200 {
			t.Errorf("rank %d: total %+v", me, tot)
		}
		comm.Barrier(me)
		if me == 0 {
			tr.ResetCounters()
		}
		comm.Barrier(me)
		if tot := tr.TotalSnapshot(); tot.RemoteOps() != 0 && me == 0 {
			t.Errorf("after reset: total remote ops = %d", tot.RemoteOps())
		}
		comm.Barrier(me)
	})
}

// TestPeerDeathFailsPendingCalls covers the mid-run failure path: a request
// blocked on a peer whose connection dies must complete promptly with
// *fabric.PeerError instead of hanging forever, the registered death callback
// must fire, Alive must flip, and every subsequent operation toward the dead
// peer must fail immediately.
func TestPeerDeathFailsPendingCalls(t *testing.T) {
	const n = 3
	const victim = fabric.Rank(2)
	ts, err := NewLoopbackCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()

	// The victim's handler wedges until the test ends, so the in-flight
	// request can only complete through the death path.
	block := make(chan struct{})
	defer close(block)
	entered := make(chan struct{}, 1)
	for _, tr := range ts {
		tr.Register(fabric.SvcIndexAdd, func(from fabric.Rank, req []byte) []byte {
			entered <- struct{}{}
			<-block
			return nil
		})
	}
	deaths := make(chan fabric.Rank, n)
	ts[0].NotifyPeerDeath(func(r fabric.Rank) { deaths <- r })

	callErr := make(chan *fabric.PeerError, 1)
	go func() {
		var pe *fabric.PeerError
		defer func() {
			if r := recover(); r != nil {
				pe, _ = fabric.AsPeerDeath(r)
			}
			callErr <- pe
		}()
		ts[0].Call(0, victim, fabric.SvcIndexAdd, []byte("stuck"))
	}()

	<-entered // the request reached the victim and its handler is wedged
	ts[victim].Close()

	select {
	case pe := <-callErr:
		if pe == nil || pe.Rank != victim {
			t.Fatalf("blocked Call: want *fabric.PeerError for rank %d, got %v", victim, pe)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Call still hanging 5s after the peer died")
	}

	select {
	case r := <-deaths:
		if r != victim {
			t.Fatalf("death callback fired for rank %d, want %d", r, victim)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("death callback never fired")
	}

	if ts[0].Alive(victim) {
		t.Error("Alive(victim) = true after its connection died")
	}
	if !ts[0].Alive(1) {
		t.Error("Alive(1) = false, but rank 1 is healthy")
	}

	// Subsequent operations toward the dead peer fail fast, not after a
	// network timeout.
	start := time.Now()
	func() {
		defer func() {
			if pe, ok := fabric.AsPeerDeath(recover()); !ok || pe.Rank != victim {
				t.Errorf("post-death Call: want *fabric.PeerError for rank %d, got %v", victim, pe)
			}
		}()
		ts[0].Call(0, victim, fabric.SvcIndexAdd, nil)
		t.Error("post-death Call returned instead of failing")
	}()
	if e := time.Since(start); e > time.Second {
		t.Errorf("post-death Call took %v, want immediate failure", e)
	}
}

func pick[T any](cond bool, a, b T) T {
	if cond {
		return a
	}
	return b
}
