// Package tcp is the real multi-process backend of the fabric SPI: each
// rank is its own OS process, and one-sided operations travel as framed
// request/response trains over a full TCP mesh.
//
// The semantics match the simulator backend (package rma) exactly — the
// engine cannot tell them apart — but the mechanism differs where an RDMA
// NIC would: remote operations are serviced by a transport-owned handler
// goroutine in the target's process (software-emulated one-sided access;
// the target's application code still never runs on the data path), and a
// vectored train is one request/response round-trip however many
// constituent operations it carries, which preserves the paper's §5.6
// batching economics over a real network.
//
// # Bootstrap
//
// Every process knows the full address list (rank i listens on Peers[i]).
// Rank pairs connect lower-listens/higher-dials: process p dials every rank
// below it (retrying while those listeners come up) and accepts one
// connection from every rank above it, identified by a hello frame. After
// New returns, the mesh is complete.
//
// # Window identity
//
// Windows are identified across processes by collective allocation order
// (the SPMD contract of the fabric package): the i-th window allocated on
// every process is window i. Each process holds only its own rank's
// segment; Transport.Run exchanges window digests (kind and size per
// window, in order) before releasing application code, so a divergent
// allocation sequence fails fast instead of corrupting remote memory.
package tcp

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gdi-go/gdi/internal/fabric"
)

// Config describes one rank's membership in the cluster.
type Config struct {
	// Rank is this process's rank in [0, len(Peers)).
	Rank int
	// Peers lists every rank's listen address, indexed by rank.
	Peers []string
	// Listener optionally supplies a pre-bound listener for this rank
	// (loopback tests bind ephemeral ports before the addresses are known);
	// when nil, New listens on Peers[Rank].
	Listener net.Listener
	// DialTimeout bounds how long New retries dialing a lower-ranked peer
	// whose listener has not come up yet (default 60s).
	DialTimeout time.Duration
}

// Transport is a TCP-mesh fabric backend hosting exactly one rank. It
// implements fabric.Transport.
type Transport struct {
	me    fabric.Rank
	n     int
	lis   net.Listener
	peers []*peerConn // indexed by rank; peers[me] == nil

	winMu   sync.Mutex
	winCond *sync.Cond // signalled on every addWindow
	wins    []window
	digest  []byte // (kind, size) per window, in allocation order

	counters fabric.Counters
	msgr     *messenger

	svcMu    sync.RWMutex
	services map[fabric.ServiceID]fabric.Handler

	nextReq atomic.Uint64
	pending sync.Map // reqID uint64 -> *pendingReq

	liveMu    sync.Mutex
	deathSubs []func(fabric.Rank)

	closed atomic.Bool
}

// pendingReq is one in-flight request: the response channel plus the target
// rank, so a dying connection can fail exactly its own requests.
type pendingReq struct {
	target fabric.Rank
	ch     chan pendingResp
}

// pendingResp completes one request: the response payload, or dead=true when
// the peer connection died before responding.
type pendingResp struct {
	data []byte
	dead bool
}

var _ fabric.Transport = (*Transport)(nil)

// window is the server-side dispatch view of one collectively allocated
// window: exactly one of bw/ww is set.
type window interface {
	digestEntry() (kind byte, size uint64)
}

// peerConn is one mesh edge: a single TCP connection to a peer rank, with
// serialized writes and a reader goroutine demultiplexing responses,
// requests, and messenger frames.
type peerConn struct {
	rank fabric.Rank
	c    net.Conn
	wmu  sync.Mutex
	dead atomic.Bool
}

func (p *peerConn) writeFrame(ft byte, body []byte) error {
	buf := appendFrame(make([]byte, 0, 5+len(body)), ft, body)
	p.wmu.Lock()
	defer p.wmu.Unlock()
	_, err := p.c.Write(buf)
	return err
}

// New bootstraps this rank's end of the mesh and blocks until every pair
// connection is established.
func New(cfg Config) (*Transport, error) {
	n := len(cfg.Peers)
	if n < 1 || n > 1<<16 {
		return nil, fmt.Errorf("tcp: rank count %d out of range [1, 65536]", n)
	}
	if cfg.Rank < 0 || cfg.Rank >= n {
		return nil, fmt.Errorf("tcp: rank %d out of range [0, %d)", cfg.Rank, n)
	}
	t := &Transport{
		me:       fabric.Rank(cfg.Rank),
		n:        n,
		peers:    make([]*peerConn, n),
		services: make(map[fabric.ServiceID]fabric.Handler),
	}
	t.winCond = sync.NewCond(&t.winMu)
	t.msgr = newMessenger(t)
	if n == 1 {
		return t, nil
	}

	lis := cfg.Listener
	if lis == nil {
		var err error
		lis, err = net.Listen("tcp", cfg.Peers[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("tcp: rank %d listening on %s: %w", cfg.Rank, cfg.Peers[cfg.Rank], err)
		}
	}
	t.lis = lis

	// Dial every lower rank (they listen for us), retrying while their
	// listeners come up; accept one connection from every higher rank.
	timeout := cfg.DialTimeout
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	errc := make(chan error, 2)
	go func() { errc <- t.dialLower(cfg.Peers, timeout) }()
	go func() { errc <- t.acceptHigher() }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			lis.Close()
			return nil, err
		}
	}
	for r, p := range t.peers {
		if p != nil {
			go t.readLoop(p)
		} else if fabric.Rank(r) != t.me {
			lis.Close()
			return nil, fmt.Errorf("tcp: rank %d has no connection to rank %d", t.me, r)
		}
	}
	return t, nil
}

func (t *Transport) dialLower(peers []string, timeout time.Duration) error {
	for r := 0; r < int(t.me); r++ {
		deadline := time.Now().Add(timeout)
		var c net.Conn
		for {
			var err error
			c, err = net.Dial("tcp", peers[r])
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("tcp: rank %d dialing rank %d at %s: %w", t.me, r, peers[r], err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		var hello [2]byte
		binary.LittleEndian.PutUint16(hello[:], uint16(t.me))
		p := &peerConn{rank: fabric.Rank(r), c: c}
		if err := p.writeFrame(ftHello, hello[:]); err != nil {
			return fmt.Errorf("tcp: rank %d hello to rank %d: %w", t.me, r, err)
		}
		t.peers[r] = p
	}
	return nil
}

func (t *Transport) acceptHigher() error {
	for accepted := 0; accepted < t.n-1-int(t.me); accepted++ {
		c, err := t.lis.Accept()
		if err != nil {
			return fmt.Errorf("tcp: rank %d accepting: %w", t.me, err)
		}
		ft, body, err := readFrame(c)
		if err != nil || ft != ftHello || len(body) != 2 {
			c.Close()
			return fmt.Errorf("tcp: rank %d bad handshake: type=%d err=%v", t.me, ft, err)
		}
		r := fabric.Rank(binary.LittleEndian.Uint16(body))
		if r <= t.me || int(r) >= t.n || t.peers[r] != nil {
			c.Close()
			return fmt.Errorf("tcp: rank %d unexpected hello from rank %d", t.me, r)
		}
		t.peers[r] = &peerConn{rank: r, c: c}
	}
	return nil
}

// readLoop demultiplexes one peer connection: responses complete pending
// requests, requests are served by per-request goroutines (the transport's
// stand-in for the NIC's DMA engine), messenger frames enqueue in
// per-source FIFO order.
func (t *Transport) readLoop(p *peerConn) {
	for {
		ft, body, err := readFrame(p.c)
		if err != nil {
			// Our own Close surfaces as a read error on the closed
			// connection; anything else — orderly EOF at the peer's
			// shutdown or a mid-run death (killed process, dropped conn) —
			// marks the peer dead and fails everything waiting on it, so
			// no caller is ever left blocked on a connection that can no
			// longer answer.
			if !t.closed.Load() {
				t.peerDied(p)
			}
			return
		}
		switch ft {
		case ftResp:
			id := binary.LittleEndian.Uint64(body)
			pr, ok := t.pending.LoadAndDelete(id)
			if !ok {
				panic(fmt.Sprintf("tcp: rank %d response for unknown request %d", t.me, id))
			}
			pr.(*pendingReq).ch <- pendingResp{data: body[8:]}
		case ftReq:
			go t.serve(p, body)
		case ftMsg:
			t.msgr.enqueue(p.rank, body)
		default:
			panic(fmt.Sprintf("tcp: rank %d unexpected frame type %d mid-stream", t.me, ft))
		}
	}
}

// peerDied transitions one peer connection to the dead state exactly once:
// every pending request targeting it completes immediately with a peer-death
// verdict (the callers' blocked Call/train waits panic with *fabric.PeerError
// instead of hanging forever), the messenger's per-source queue is poisoned
// the same way, and the registered death callbacks fire.
func (t *Transport) peerDied(p *peerConn) {
	if !p.dead.CompareAndSwap(false, true) {
		return
	}
	p.c.Close()
	t.pending.Range(func(k, v any) bool {
		pr := v.(*pendingReq)
		if pr.target != p.rank {
			return true
		}
		if _, loaded := t.pending.LoadAndDelete(k); loaded {
			pr.ch <- pendingResp{dead: true}
		}
		return true
	})
	t.msgr.fail(p.rank)
	t.liveMu.Lock()
	subs := append([]func(fabric.Rank){}, t.deathSubs...)
	t.liveMu.Unlock()
	for _, fn := range subs {
		fn(p.rank)
	}
}

// Alive reports whether rank r's connection is still up.
func (t *Transport) Alive(r fabric.Rank) bool {
	if r < 0 || int(r) >= t.n {
		panic(fmt.Sprintf("tcp: rank %d out of range [0, %d)", r, t.n))
	}
	if r == t.me {
		return !t.closed.Load()
	}
	p := t.peers[r]
	return p != nil && !p.dead.Load()
}

// NotifyPeerDeath registers fn to fire (from the dying connection's reader
// goroutine) once per detected peer death.
func (t *Transport) NotifyPeerDeath(fn func(fabric.Rank)) {
	t.liveMu.Lock()
	defer t.liveMu.Unlock()
	t.deathSubs = append(t.deathSubs, fn)
}

// request issues one operation towards target and blocks for its response —
// the single round-trip every remote scalar op or train costs.
func (t *Transport) request(target fabric.Rank, op byte, body []byte) []byte {
	p := t.peers[target]
	if p == nil {
		panic(fmt.Sprintf("tcp: rank %d request to unconnected rank %d", t.me, target))
	}
	id := t.nextReq.Add(1)
	pr := &pendingReq{target: target, ch: make(chan pendingResp, 1)}
	t.pending.Store(id, pr)
	// Registered before the liveness check: if the peer dies at any point
	// after the check, peerDied's sweep finds this entry and completes it.
	if p.dead.Load() {
		t.pending.Delete(id)
		panic(&fabric.PeerError{Rank: target, Op: opName(op)})
	}
	buf := make([]byte, 0, 9+len(body))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = append(buf, op)
	buf = append(buf, body...)
	if err := p.writeFrame(ftReq, buf); err != nil {
		t.peerDied(p)
		t.pending.Delete(id)
		panic(&fabric.PeerError{Rank: target, Op: opName(op)})
	}
	resp := <-pr.ch
	if resp.dead {
		panic(&fabric.PeerError{Rank: target, Op: opName(op)})
	}
	return resp.data
}

// serve executes one remote request against this process's segments and
// writes the response. It runs on a transport goroutine, never on the
// application's.
func (t *Transport) serve(p *peerConn, body []byte) {
	id := binary.LittleEndian.Uint64(body)
	op := body[8]
	req := body[9:]
	result := t.execute(p.rank, op, req)
	resp := make([]byte, 0, 8+len(result))
	resp = binary.LittleEndian.AppendUint64(resp, id)
	resp = append(resp, result...)
	// An undeliverable response means the requester died mid-request; its
	// process is gone, so there is no one left to answer.
	if err := p.writeFrame(ftResp, resp); err != nil {
		t.peerDied(p)
	}
}

func (t *Transport) execute(from fabric.Rank, op byte, req []byte) []byte {
	switch op {
	case opGet, opPut, opGetBatch, opPutBatch:
		return t.byteWinAt(binary.LittleEndian.Uint32(req)).execute(op, req[4:])
	case opLoad, opStore, opCAS, opLoadBatch, opCASBatch, opFetchAdd:
		return t.wordWinAt(binary.LittleEndian.Uint32(req)).execute(op, req[4:])
	case opCall:
		svc := fabric.ServiceID(req[0])
		t.svcMu.RLock()
		h := t.services[svc]
		t.svcMu.RUnlock()
		if h == nil {
			panic(fmt.Sprintf("tcp: rank %d call to unregistered service %d", t.me, svc))
		}
		return h(from, req[1:])
	case opCounters:
		return appendSnapshot(nil, t.counters.Snapshot())
	case opReset:
		t.counters.Reset()
		return nil
	}
	panic(fmt.Sprintf("tcp: rank %d unknown op %d", t.me, op))
}

// windowAt blocks until window id exists locally. Allocation is collective
// but unsynchronized, so a remote operation can arrive before this process
// has executed the matching NewByteWin/NewWordWin call; the SPMD contract
// guarantees it will, so the serving goroutine simply waits.
func (t *Transport) windowAt(id uint32) window {
	t.winMu.Lock()
	defer t.winMu.Unlock()
	for int(id) >= len(t.wins) {
		t.winCond.Wait()
	}
	return t.wins[id]
}

func (t *Transport) byteWinAt(id uint32) *byteWin {
	w, ok := t.windowAt(id).(*byteWin)
	if !ok {
		panic(fmt.Sprintf("tcp: window %d is not a byte window", id))
	}
	return w
}

func (t *Transport) wordWinAt(id uint32) *wordWin {
	w, ok := t.windowAt(id).(*wordWin)
	if !ok {
		panic(fmt.Sprintf("tcp: window %d is not a word window", id))
	}
	return w
}

// Size returns the number of ranks in the mesh.
func (t *Transport) Size() int { return t.n }

// Local reports whether rank r's memory lives in this process — true only
// for this transport's own rank.
func (t *Transport) Local(r fabric.Rank) bool {
	if r < 0 || int(r) >= t.n {
		panic(fmt.Sprintf("tcp: rank %d out of range [0, %d)", r, t.n))
	}
	return r == t.me
}

// Run verifies that every process performed the same window allocation
// sequence (digest gather at rank 0, verdict broadcast back), then executes
// fn for this process's single rank.
func (t *Transport) Run(fn func(rank fabric.Rank)) {
	t.verifyWindows()
	fn(t.me)
}

func (t *Transport) verifyWindows() {
	if t.n == 1 {
		return
	}
	t.winMu.Lock()
	digest := append([]byte(nil), t.digest...)
	t.winMu.Unlock()
	if t.me != 0 {
		t.msgr.SendBytes(t.me, 0, digest)
		verdict := t.msgr.RecvBytes(0, t.me)
		if len(verdict) != 1 || verdict[0] != 1 {
			panic(fmt.Sprintf("tcp: rank %d window allocation sequence diverges from rank 0 (%d windows locally) — all ranks must allocate the same windows in the same order", t.me, len(digest)/9))
		}
		return
	}
	ok := byte(1)
	bad := fabric.NullRank
	for r := 1; r < t.n; r++ {
		d := t.msgr.RecvBytes(fabric.Rank(r), 0)
		if string(d) != string(digest) && bad == fabric.NullRank {
			ok, bad = 0, fabric.Rank(r)
		}
	}
	for r := 1; r < t.n; r++ {
		t.msgr.SendBytes(0, fabric.Rank(r), []byte{ok})
	}
	if ok == 0 {
		panic(fmt.Sprintf("tcp: rank %d window allocation sequence diverges from rank 0 — all ranks must allocate the same windows in the same order", bad))
	}
}

// Close tears down the mesh: listener and every peer connection.
func (t *Transport) Close() error {
	if !t.closed.CompareAndSwap(false, true) {
		return nil
	}
	if t.lis != nil {
		t.lis.Close()
	}
	for _, p := range t.peers {
		if p != nil {
			p.c.Close()
		}
	}
	return nil
}

// Messenger returns the pairwise substrate of the collective layer.
func (t *Transport) Messenger() fabric.Messenger { return t.msgr }

// Flush completes outstanding operations towards target. Every operation on
// this transport completes synchronously within its round-trip, so Flush
// only accounts.
func (t *Transport) Flush(origin, target fabric.Rank) { t.counters.Flushes.Add(1) }

// FlushAll completes all outstanding operations issued by origin.
func (t *Transport) FlushAll(origin fabric.Rank) { t.counters.Flushes.Add(1) }

// Register installs the handler for one control-plane service.
func (t *Transport) Register(svc fabric.ServiceID, h fabric.Handler) {
	t.svcMu.Lock()
	defer t.svcMu.Unlock()
	if _, dup := t.services[svc]; dup {
		panic(fmt.Sprintf("tcp: service %d registered twice", svc))
	}
	t.services[svc] = h
}

// Call invokes svc on rank target: directly when target is this process,
// else as one request/response round-trip.
func (t *Transport) Call(origin, target fabric.Rank, svc fabric.ServiceID, req []byte) []byte {
	if target == t.me {
		t.svcMu.RLock()
		h := t.services[svc]
		t.svcMu.RUnlock()
		if h == nil {
			panic(fmt.Sprintf("tcp: call to unregistered service %d", svc))
		}
		return h(origin, req)
	}
	body := make([]byte, 0, 1+len(req))
	body = append(body, byte(svc))
	body = append(body, req...)
	return t.request(target, opCall, body)
}

// CounterSnapshot returns rank r's counters: the local structure for this
// process, one RPC for a peer.
func (t *Transport) CounterSnapshot(r fabric.Rank) fabric.Snapshot {
	if r == t.me {
		return t.counters.Snapshot()
	}
	if r < 0 || int(r) >= t.n {
		panic(fmt.Sprintf("tcp: rank %d out of range [0, %d)", r, t.n))
	}
	return decodeSnapshot(t.request(r, opCounters, nil))
}

// TotalSnapshot sums the counters of every rank (n-1 RPCs).
func (t *Transport) TotalSnapshot() fabric.Snapshot {
	var tot fabric.Snapshot
	for r := 0; r < t.n; r++ {
		tot.Add(t.CounterSnapshot(fabric.Rank(r)))
	}
	return tot
}

// ResetCounters zeroes every rank's counters. Resets are idempotent, so
// concurrent calls from several ranks converge to zero everywhere.
func (t *Transport) ResetCounters() {
	t.counters.Reset()
	for r := 0; r < t.n; r++ {
		if fabric.Rank(r) != t.me {
			t.request(fabric.Rank(r), opReset, nil)
		}
	}
}

// AddCache accounts lookups of this process's block cache.
func (t *Transport) AddCache(origin fabric.Rank, hits, misses int64) {
	t.counters.AddCache(hits, misses)
}

func appendSnapshot(b []byte, s fabric.Snapshot) []byte {
	for _, v := range []int64{
		s.LocalPuts, s.RemotePuts, s.LocalGets, s.RemoteGets,
		s.LocalAtomics, s.RemoteAtoms, s.BytesPut, s.BytesGot,
		s.Flushes, s.GetBatches, s.PutBatches, s.AtomicBatches,
		s.CacheHits, s.CacheMisses,
	} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func decodeSnapshot(b []byte) fabric.Snapshot {
	var s fabric.Snapshot
	for i, f := range []*int64{
		&s.LocalPuts, &s.RemotePuts, &s.LocalGets, &s.RemoteGets,
		&s.LocalAtomics, &s.RemoteAtoms, &s.BytesPut, &s.BytesGot,
		&s.Flushes, &s.GetBatches, &s.PutBatches, &s.AtomicBatches,
		&s.CacheHits, &s.CacheMisses,
	} {
		*f = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return s
}
