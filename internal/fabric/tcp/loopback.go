package tcp

import (
	"fmt"
	"net"
)

// NewLoopbackCluster constructs an n-rank mesh entirely over 127.0.0.1
// ephemeral ports, all transports in the calling process. Each transport
// still talks to the others strictly through the TCP stack — the wire
// protocol, framing, and request multiplexing are exercised exactly as in a
// real multi-process deployment — which makes this the unit-test harness for
// the backend (and nothing more: production clusters run one transport per
// process via New).
func NewLoopbackCluster(n int) ([]*Transport, error) {
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("tcp: loopback listener %d: %w", i, err)
		}
		listeners[i] = lis
		peers[i] = lis.Addr().String()
	}
	ts := make([]*Transport, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(rank int) {
			t, err := New(Config{Rank: rank, Peers: peers, Listener: listeners[rank]})
			ts[rank] = t
			errs <- err
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		for _, t := range ts {
			if t != nil {
				t.Close()
			}
		}
		return nil, first
	}
	return ts, nil
}
