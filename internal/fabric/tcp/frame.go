package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire format: every frame is
//
//	u32 length | u8 type | body (length-1 bytes)
//
// with all integers little-endian. The length covers the type byte plus the
// body, so a zero-body frame has length 1.
//
// Frame types:
//
//	hello  body = u16 rank                — handshake, first frame of a conn
//	req    body = u64 id | u8 op | rest   — one-sided operation request
//	resp   body = u64 id | result         — response, matched by id
//	msg    body = payload                 — messenger delivery (FIFO per conn)
const (
	ftHello = byte(1)
	ftReq   = byte(2)
	ftResp  = byte(3)
	ftMsg   = byte(4)
)

// Operation codes carried by req frames. Request bodies are op-specific,
// fixed-width little-endian:
//
//	get        win u32 | off u64 | n u64                  → n bytes
//	put        win u32 | off u64 | data                   → empty
//	getBatch   win u32 | k u32 | k×(off u64, n u64)       → concatenated bytes
//	putBatch   win u32 | k u32 | k×(off u64, n u32, data) → empty
//	load       win u32 | idx u64                          → u64
//	store      win u32 | idx u64 | val u64                → empty
//	cas        win u32 | idx u64 | old u64 | new u64      → u64 prev | u8 swapped
//	loadBatch  win u32 | k u32 | k×idx u64                → k×u64
//	casBatch   win u32 | k u32 | k×(idx, old, new u64)    → k×(prev u64, swapped u8)
//	fetchAdd   win u32 | idx u64 | delta u64              → u64 prev
//	call       svc u8 | req bytes                         → resp bytes
//	counters   empty                                      → 14×u64 snapshot
//	reset      empty                                      → empty
const (
	opGet = byte(iota + 1)
	opPut
	opGetBatch
	opPutBatch
	opLoad
	opStore
	opCAS
	opLoadBatch
	opCASBatch
	opFetchAdd
	opCall
	opCounters
	opReset
)

// opName names an op code for PeerError diagnostics.
func opName(op byte) string {
	names := [...]string{
		opGet: "get", opPut: "put", opGetBatch: "get-batch", opPutBatch: "put-batch",
		opLoad: "load", opStore: "store", opCAS: "cas", opLoadBatch: "load-batch",
		opCASBatch: "cas-batch", opFetchAdd: "fetch-add", opCall: "call",
		opCounters: "counters", opReset: "reset",
	}
	if int(op) < len(names) && names[op] != "" {
		return names[op]
	}
	return fmt.Sprintf("op%d", op)
}

// maxFrame bounds a frame's length field: a defense against a corrupt or
// hostile peer allocating unbounded memory. 1 GiB comfortably exceeds any
// train the engine issues (the largest are full-inbox PutBatch deliveries).
const maxFrame = 1 << 30

// appendFrame encodes one frame (header, type, body) into dst and returns
// the extended slice.
func appendFrame(dst []byte, ft byte, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(1+len(body)))
	dst = append(dst, ft)
	return append(dst, body...)
}

// readFrame reads exactly one frame from r. It tolerates partial reads (the
// header and body are filled with io.ReadFull) and rejects malformed length
// fields without allocating for them.
func readFrame(r io.Reader) (ft byte, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	l := binary.LittleEndian.Uint32(hdr[:4])
	if l < 1 {
		return 0, nil, fmt.Errorf("tcp: frame length %d < 1", l)
	}
	if l > maxFrame {
		return 0, nil, fmt.Errorf("tcp: frame length %d exceeds the %d-byte bound", l, maxFrame)
	}
	ft = hdr[4]
	if ft < ftHello || ft > ftMsg {
		return 0, nil, fmt.Errorf("tcp: unknown frame type %d", ft)
	}
	body = make([]byte, l-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return ft, body, nil
}
