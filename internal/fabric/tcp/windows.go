package tcp

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/gdi-go/gdi/internal/fabric"
)

// pageShift fixes the striping granularity of byte windows at 4 KiB pages,
// matching the simulator backend: bulk accesses are atomic per page, and
// higher layers own protocol-level consistency across pages.
const pageShift = 12

const (
	winKindByte = byte(1)
	winKindWord = byte(2)
)

// NewByteWin collectively allocates a byte window. This process materializes
// only its own rank's segment; the other segments live in their owners'
// processes and are reached by request.
func (t *Transport) NewByteWin(segSize int) fabric.ByteWin {
	if segSize <= 0 {
		panic(fmt.Sprintf("tcp: byte window segment size %d must be positive", segSize))
	}
	w := &byteWin{
		t:       t,
		segSize: segSize,
		seg:     make([]byte, segSize),
		stripes: make([]sync.RWMutex, (segSize>>pageShift)+1),
	}
	w.id = t.addWindow(w, winKindByte, uint64(segSize))
	return w
}

// NewWordWin collectively allocates a word window backed by sync/atomic
// operations, so the handler goroutines serving remote atomics and the local
// fast path agree on every word.
func (t *Transport) NewWordWin(nWords int) fabric.WordWin {
	if nWords <= 0 {
		panic(fmt.Sprintf("tcp: word window size %d must be positive", nWords))
	}
	w := &wordWin{t: t, words: nWords, seg: make([]uint64, nWords)}
	w.id = t.addWindow(w, winKindWord, uint64(nWords))
	return w
}

// NewInbox collectively allocates a slot inbox over a fresh byte window.
func (t *Transport) NewInbox(segBytes int) fabric.Inbox {
	return fabric.NewSlotInbox(t.n, t.NewByteWin(segBytes))
}

func (t *Transport) addWindow(w window, kind byte, size uint64) uint32 {
	t.winMu.Lock()
	defer t.winMu.Unlock()
	id := uint32(len(t.wins))
	t.wins = append(t.wins, w)
	t.digest = append(t.digest, kind)
	t.digest = binary.LittleEndian.AppendUint64(t.digest, size)
	t.winCond.Broadcast()
	return id
}

// byteWin is the TCP backend's byte window: the local segment with striped
// page locks, and a request path for every other segment.
type byteWin struct {
	t       *Transport
	id      uint32
	segSize int
	seg     []byte
	stripes []sync.RWMutex
}

var _ fabric.ByteWin = (*byteWin)(nil)

func (w *byteWin) digestEntry() (byte, uint64) { return winKindByte, uint64(w.segSize) }

func (w *byteWin) SegSize() int { return w.segSize }

func (w *byteWin) checkRange(off, n int) {
	if off < 0 || n < 0 || off+n > w.segSize {
		panic(fmt.Sprintf("tcp: byte window access [%d, %d) outside segment of %d bytes", off, off+n, w.segSize))
	}
}

func (w *byteWin) localPut(off int, data []byte) {
	for len(data) > 0 {
		page := off >> pageShift
		n := min((page+1)<<pageShift-off, len(data))
		mu := &w.stripes[page]
		mu.Lock()
		copy(w.seg[off:off+n], data[:n])
		mu.Unlock()
		off += n
		data = data[n:]
	}
}

func (w *byteWin) localGet(off int, buf []byte) {
	for len(buf) > 0 {
		page := off >> pageShift
		n := min((page+1)<<pageShift-off, len(buf))
		mu := &w.stripes[page]
		mu.RLock()
		copy(buf[:n], w.seg[off:off+n])
		mu.RUnlock()
		off += n
		buf = buf[n:]
	}
}

func (w *byteWin) Put(origin, target fabric.Rank, off int, data []byte) {
	w.checkRange(off, len(data))
	local := target == w.t.me
	w.t.counters.CountPut(local, len(data))
	if local {
		w.localPut(off, data)
		return
	}
	body := make([]byte, 0, 12+len(data))
	body = binary.LittleEndian.AppendUint32(body, w.id)
	body = binary.LittleEndian.AppendUint64(body, uint64(off))
	body = append(body, data...)
	w.t.request(target, opPut, body)
}

func (w *byteWin) Get(origin, target fabric.Rank, off int, buf []byte) {
	w.checkRange(off, len(buf))
	local := target == w.t.me
	w.t.counters.CountGet(local, len(buf))
	if local {
		w.localGet(off, buf)
		return
	}
	var body [20]byte
	binary.LittleEndian.PutUint32(body[0:], w.id)
	binary.LittleEndian.PutUint64(body[4:], uint64(off))
	binary.LittleEndian.PutUint64(body[12:], uint64(len(buf)))
	copy(buf, w.t.request(target, opGet, body[:]))
}

func (w *byteWin) GetBatch(origin, target fabric.Rank, ops []fabric.GetOp) {
	if len(ops) == 0 {
		return
	}
	local := target == w.t.me
	w.t.counters.CountGetBatch(local)
	total := 0
	for _, op := range ops {
		w.checkRange(op.Off, len(op.Buf))
		w.t.counters.CountGet(local, len(op.Buf))
		total += len(op.Buf)
	}
	if local {
		for _, op := range ops {
			w.localGet(op.Off, op.Buf)
		}
		return
	}
	body := make([]byte, 0, 8+16*len(ops))
	body = binary.LittleEndian.AppendUint32(body, w.id)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(ops)))
	for _, op := range ops {
		body = binary.LittleEndian.AppendUint64(body, uint64(op.Off))
		body = binary.LittleEndian.AppendUint64(body, uint64(len(op.Buf)))
	}
	resp := w.t.request(target, opGetBatch, body)
	if len(resp) != total {
		panic(fmt.Sprintf("tcp: get train returned %d bytes, want %d", len(resp), total))
	}
	for _, op := range ops {
		resp = resp[copy(op.Buf, resp):]
	}
}

func (w *byteWin) PutBatch(origin, target fabric.Rank, ops []fabric.PutOp) {
	if len(ops) == 0 {
		return
	}
	local := target == w.t.me
	w.t.counters.CountPutBatch(local)
	size := 8
	for _, op := range ops {
		w.checkRange(op.Off, len(op.Data))
		w.t.counters.CountPut(local, len(op.Data))
		size += 12 + len(op.Data)
	}
	if local {
		for _, op := range ops {
			w.localPut(op.Off, op.Data)
		}
		return
	}
	body := make([]byte, 0, size)
	body = binary.LittleEndian.AppendUint32(body, w.id)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(ops)))
	for _, op := range ops {
		body = binary.LittleEndian.AppendUint64(body, uint64(op.Off))
		body = binary.LittleEndian.AppendUint32(body, uint32(len(op.Data)))
		body = append(body, op.Data...)
	}
	w.t.request(target, opPutBatch, body)
}

// execute serves one remote byte-window request against the local segment.
func (w *byteWin) execute(op byte, req []byte) []byte {
	switch op {
	case opGet:
		off := int(binary.LittleEndian.Uint64(req[0:]))
		n := int(binary.LittleEndian.Uint64(req[8:]))
		w.checkRange(off, n)
		buf := make([]byte, n)
		w.localGet(off, buf)
		return buf
	case opPut:
		off := int(binary.LittleEndian.Uint64(req[0:]))
		w.checkRange(off, len(req)-8)
		w.localPut(off, req[8:])
		return nil
	case opGetBatch:
		k := int(binary.LittleEndian.Uint32(req[0:]))
		req = req[4:]
		var out []byte
		for i := 0; i < k; i++ {
			off := int(binary.LittleEndian.Uint64(req[0:]))
			n := int(binary.LittleEndian.Uint64(req[8:]))
			req = req[16:]
			w.checkRange(off, n)
			buf := make([]byte, n)
			w.localGet(off, buf)
			out = append(out, buf...)
		}
		return out
	case opPutBatch:
		k := int(binary.LittleEndian.Uint32(req[0:]))
		req = req[4:]
		for i := 0; i < k; i++ {
			off := int(binary.LittleEndian.Uint64(req[0:]))
			n := int(binary.LittleEndian.Uint32(req[8:]))
			req = req[12:]
			w.checkRange(off, n)
			w.localPut(off, req[:n])
			req = req[n:]
		}
		return nil
	}
	panic(fmt.Sprintf("tcp: byte window cannot serve op %d", op))
}

// wordWin is the TCP backend's word window. Every access to the local
// segment — application fast path and handler goroutines alike — goes
// through sync/atomic, which is what makes remote atomics correct.
type wordWin struct {
	t     *Transport
	id    uint32
	words int
	seg   []uint64
}

var _ fabric.WordWin = (*wordWin)(nil)

func (w *wordWin) digestEntry() (byte, uint64) { return winKindWord, uint64(w.words) }

func (w *wordWin) Words() int { return w.words }

func (w *wordWin) checkIdx(idx int) {
	if idx < 0 || idx >= w.words {
		panic(fmt.Sprintf("tcp: word window index %d outside segment of %d words", idx, w.words))
	}
}

func (w *wordWin) localCAS(idx int, old, new uint64) (uint64, bool) {
	for {
		if atomic.CompareAndSwapUint64(&w.seg[idx], old, new) {
			return old, true
		}
		if cur := atomic.LoadUint64(&w.seg[idx]); cur != old {
			return cur, false
		}
	}
}

func (w *wordWin) Load(origin, target fabric.Rank, idx int) uint64 {
	w.checkIdx(idx)
	local := target == w.t.me
	w.t.counters.CountAtomic(local)
	if local {
		return atomic.LoadUint64(&w.seg[idx])
	}
	var body [12]byte
	binary.LittleEndian.PutUint32(body[0:], w.id)
	binary.LittleEndian.PutUint64(body[4:], uint64(idx))
	return binary.LittleEndian.Uint64(w.t.request(target, opLoad, body[:]))
}

func (w *wordWin) Store(origin, target fabric.Rank, idx int, val uint64) {
	w.checkIdx(idx)
	local := target == w.t.me
	w.t.counters.CountAtomic(local)
	if local {
		atomic.StoreUint64(&w.seg[idx], val)
		return
	}
	var body [20]byte
	binary.LittleEndian.PutUint32(body[0:], w.id)
	binary.LittleEndian.PutUint64(body[4:], uint64(idx))
	binary.LittleEndian.PutUint64(body[12:], val)
	w.t.request(target, opStore, body[:])
}

func (w *wordWin) CAS(origin, target fabric.Rank, idx int, old, new uint64) (uint64, bool) {
	w.checkIdx(idx)
	local := target == w.t.me
	w.t.counters.CountAtomic(local)
	if local {
		return w.localCAS(idx, old, new)
	}
	var body [28]byte
	binary.LittleEndian.PutUint32(body[0:], w.id)
	binary.LittleEndian.PutUint64(body[4:], uint64(idx))
	binary.LittleEndian.PutUint64(body[12:], old)
	binary.LittleEndian.PutUint64(body[20:], new)
	resp := w.t.request(target, opCAS, body[:])
	return binary.LittleEndian.Uint64(resp), resp[8] == 1
}

func (w *wordWin) LoadBatch(origin, target fabric.Rank, idxs []int) []uint64 {
	if len(idxs) == 0 {
		return nil
	}
	local := target == w.t.me
	w.t.counters.CountAtomicBatch(local)
	for _, idx := range idxs {
		w.checkIdx(idx)
		w.t.counters.CountAtomic(local)
	}
	out := make([]uint64, len(idxs))
	if local {
		for i, idx := range idxs {
			out[i] = atomic.LoadUint64(&w.seg[idx])
		}
		return out
	}
	body := make([]byte, 0, 8+8*len(idxs))
	body = binary.LittleEndian.AppendUint32(body, w.id)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(idxs)))
	for _, idx := range idxs {
		body = binary.LittleEndian.AppendUint64(body, uint64(idx))
	}
	resp := w.t.request(target, opLoadBatch, body)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(resp[8*i:])
	}
	return out
}

func (w *wordWin) CASBatch(origin, target fabric.Rank, ops []fabric.CASOp) []fabric.CASResult {
	if len(ops) == 0 {
		return nil
	}
	local := target == w.t.me
	w.t.counters.CountAtomicBatch(local)
	for _, op := range ops {
		w.checkIdx(op.Idx)
		w.t.counters.CountAtomic(local)
	}
	out := make([]fabric.CASResult, len(ops))
	if local {
		for i, op := range ops {
			out[i].Prev, out[i].Swapped = w.localCAS(op.Idx, op.Old, op.New)
		}
		return out
	}
	body := make([]byte, 0, 8+24*len(ops))
	body = binary.LittleEndian.AppendUint32(body, w.id)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(ops)))
	for _, op := range ops {
		body = binary.LittleEndian.AppendUint64(body, uint64(op.Idx))
		body = binary.LittleEndian.AppendUint64(body, op.Old)
		body = binary.LittleEndian.AppendUint64(body, op.New)
	}
	resp := w.t.request(target, opCASBatch, body)
	for i := range out {
		out[i].Prev = binary.LittleEndian.Uint64(resp[9*i:])
		out[i].Swapped = resp[9*i+8] == 1
	}
	return out
}

func (w *wordWin) FetchAdd(origin, target fabric.Rank, idx int, delta uint64) uint64 {
	w.checkIdx(idx)
	local := target == w.t.me
	w.t.counters.CountAtomic(local)
	if local {
		return atomic.AddUint64(&w.seg[idx], delta) - delta
	}
	var body [20]byte
	binary.LittleEndian.PutUint32(body[0:], w.id)
	binary.LittleEndian.PutUint64(body[4:], uint64(idx))
	binary.LittleEndian.PutUint64(body[12:], delta)
	return binary.LittleEndian.Uint64(w.t.request(target, opFetchAdd, body[:]))
}

// execute serves one remote word-window request against the local segment.
func (w *wordWin) execute(op byte, req []byte) []byte {
	switch op {
	case opLoad:
		idx := int(binary.LittleEndian.Uint64(req))
		w.checkIdx(idx)
		return binary.LittleEndian.AppendUint64(nil, atomic.LoadUint64(&w.seg[idx]))
	case opStore:
		idx := int(binary.LittleEndian.Uint64(req[0:]))
		w.checkIdx(idx)
		atomic.StoreUint64(&w.seg[idx], binary.LittleEndian.Uint64(req[8:]))
		return nil
	case opCAS:
		idx := int(binary.LittleEndian.Uint64(req[0:]))
		w.checkIdx(idx)
		prev, swapped := w.localCAS(idx, binary.LittleEndian.Uint64(req[8:]), binary.LittleEndian.Uint64(req[16:]))
		out := binary.LittleEndian.AppendUint64(nil, prev)
		return append(out, boolByte(swapped))
	case opLoadBatch:
		k := int(binary.LittleEndian.Uint32(req))
		out := make([]byte, 0, 8*k)
		for i := 0; i < k; i++ {
			idx := int(binary.LittleEndian.Uint64(req[4+8*i:]))
			w.checkIdx(idx)
			out = binary.LittleEndian.AppendUint64(out, atomic.LoadUint64(&w.seg[idx]))
		}
		return out
	case opCASBatch:
		k := int(binary.LittleEndian.Uint32(req))
		out := make([]byte, 0, 9*k)
		for i := 0; i < k; i++ {
			e := req[4+24*i:]
			idx := int(binary.LittleEndian.Uint64(e[0:]))
			w.checkIdx(idx)
			prev, swapped := w.localCAS(idx, binary.LittleEndian.Uint64(e[8:]), binary.LittleEndian.Uint64(e[16:]))
			out = binary.LittleEndian.AppendUint64(out, prev)
			out = append(out, boolByte(swapped))
		}
		return out
	case opFetchAdd:
		idx := int(binary.LittleEndian.Uint64(req[0:]))
		w.checkIdx(idx)
		delta := binary.LittleEndian.Uint64(req[8:])
		return binary.LittleEndian.AppendUint64(nil, atomic.AddUint64(&w.seg[idx], delta)-delta)
	}
	panic(fmt.Sprintf("tcp: word window cannot serve op %d", op))
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
