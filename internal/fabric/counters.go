package fabric

import "sync/atomic"

// Counters aggregates the one-sided traffic a single rank has issued. It
// substitutes for the RDMA NIC hardware counters of the paper's testbed and
// lets experiments report communication volume alongside wall-clock time.
// Both backends account into the same structure, so reports and ablation
// gates read identically over the simulator and over a wire transport.
type Counters struct {
	LocalPuts    atomic.Int64
	RemotePuts   atomic.Int64
	LocalGets    atomic.Int64
	RemoteGets   atomic.Int64
	LocalAtomics atomic.Int64
	RemoteAtomic atomic.Int64
	BytesPut     atomic.Int64
	BytesGot     atomic.Int64
	Flushes      atomic.Int64
	// GetBatches counts vectored GetBatch trains towards remote targets;
	// each train pays the remote round-trip once however many constituent
	// gets (counted above) it carries.
	GetBatches atomic.Int64
	// PutBatches counts vectored PutBatch trains towards remote targets
	// (the commit write-back trains of §5.6).
	PutBatches atomic.Int64
	// AtomicBatches counts vectored CASBatch/LoadBatch trains towards remote
	// targets (the lock trains of the batched commit path and the version
	// revalidation trains of the block cache).
	AtomicBatches atomic.Int64
	// CacheHits and CacheMisses count lookups of the rank's block cache:
	// hits are remote block reads served from a version-validated local copy
	// without any GET traffic, misses fall through to a fetch train.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64

	_ [2]int64 // pad to a cache line to avoid false sharing between ranks
}

// Snapshot is a plain-value copy of a rank's counters.
type Snapshot struct {
	LocalPuts, RemotePuts     int64
	LocalGets, RemoteGets     int64
	LocalAtomics, RemoteAtoms int64
	BytesPut, BytesGot        int64
	Flushes                   int64
	GetBatches                int64
	PutBatches                int64
	AtomicBatches             int64
	CacheHits, CacheMisses    int64
}

// RemoteOps returns the total number of remote one-sided operations.
func (s Snapshot) RemoteOps() int64 { return s.RemotePuts + s.RemoteGets + s.RemoteAtoms }

// LocalOps returns the total number of local window operations.
func (s Snapshot) LocalOps() int64 { return s.LocalPuts + s.LocalGets + s.LocalAtomics }

// Add accumulates o into s field by field.
func (s *Snapshot) Add(o Snapshot) {
	s.LocalPuts += o.LocalPuts
	s.RemotePuts += o.RemotePuts
	s.LocalGets += o.LocalGets
	s.RemoteGets += o.RemoteGets
	s.LocalAtomics += o.LocalAtomics
	s.RemoteAtoms += o.RemoteAtoms
	s.BytesPut += o.BytesPut
	s.BytesGot += o.BytesGot
	s.Flushes += o.Flushes
	s.GetBatches += o.GetBatches
	s.PutBatches += o.PutBatches
	s.AtomicBatches += o.AtomicBatches
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
}

// Snapshot returns a plain-value copy of c.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		LocalPuts: c.LocalPuts.Load(), RemotePuts: c.RemotePuts.Load(),
		LocalGets: c.LocalGets.Load(), RemoteGets: c.RemoteGets.Load(),
		LocalAtomics: c.LocalAtomics.Load(), RemoteAtoms: c.RemoteAtomic.Load(),
		BytesPut: c.BytesPut.Load(), BytesGot: c.BytesGot.Load(),
		Flushes: c.Flushes.Load(), GetBatches: c.GetBatches.Load(),
		PutBatches: c.PutBatches.Load(), AtomicBatches: c.AtomicBatches.Load(),
		CacheHits: c.CacheHits.Load(), CacheMisses: c.CacheMisses.Load(),
	}
}

// Reset zeroes every field of c.
func (c *Counters) Reset() {
	c.LocalPuts.Store(0)
	c.RemotePuts.Store(0)
	c.LocalGets.Store(0)
	c.RemoteGets.Store(0)
	c.LocalAtomics.Store(0)
	c.RemoteAtomic.Store(0)
	c.BytesPut.Store(0)
	c.BytesGot.Store(0)
	c.Flushes.Store(0)
	c.GetBatches.Store(0)
	c.PutBatches.Store(0)
	c.AtomicBatches.Store(0)
	c.CacheHits.Store(0)
	c.CacheMisses.Store(0)
}

// CountPut accounts one put of n bytes (local when origin == target).
func (c *Counters) CountPut(local bool, n int) {
	if local {
		c.LocalPuts.Add(1)
	} else {
		c.RemotePuts.Add(1)
	}
	c.BytesPut.Add(int64(n))
}

// CountGet accounts one get of n bytes.
func (c *Counters) CountGet(local bool, n int) {
	if local {
		c.LocalGets.Add(1)
	} else {
		c.RemoteGets.Add(1)
	}
	c.BytesGot.Add(int64(n))
}

// CountAtomic accounts one word atomic.
func (c *Counters) CountAtomic(local bool) {
	if local {
		c.LocalAtomics.Add(1)
	} else {
		c.RemoteAtomic.Add(1)
	}
}

// CountGetBatch accounts one remote GET train; local trains are free.
func (c *Counters) CountGetBatch(local bool) {
	if !local {
		c.GetBatches.Add(1)
	}
}

// CountPutBatch accounts one remote PUT train.
func (c *Counters) CountPutBatch(local bool) {
	if !local {
		c.PutBatches.Add(1)
	}
}

// CountAtomicBatch accounts one remote atomic train.
func (c *Counters) CountAtomicBatch(local bool) {
	if !local {
		c.AtomicBatches.Add(1)
	}
}

// AddCache accounts block-cache lookups.
func (c *Counters) AddCache(hits, misses int64) {
	if hits != 0 {
		c.CacheHits.Add(hits)
	}
	if misses != 0 {
		c.CacheMisses.Add(misses)
	}
}
