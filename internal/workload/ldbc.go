package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/constraint"
	"github.com/gdi-go/gdi/internal/kron"
	"github.com/gdi-go/gdi/internal/query"
	"github.com/gdi-go/gdi/internal/stats"
)

// The LDBC-SNB-interactive-flavored mix: the same three query-class shapes
// the SNB interactive workload is built from, sized down to the kron graph —
// short point reads (IS-style), 2-hop friend-of-friend pattern queries with
// a predicate and a LIMIT (IC-style, compiled onto the batch API through
// internal/query), and update transactions (U-style). Per-class latency
// histograms report what per-op histograms cannot: a multi-hop pattern query
// and a point read live on completely different latency scales.

// QueryClass partitions the mix.
type QueryClass int

const (
	// ClassShort is an IS-flavored point read: one vertex's properties and
	// labels.
	ClassShort QueryClass = iota
	// ClassFriends is an IC-flavored 2-hop friend-of-friend: the compiled
	// k-hop pattern with an age predicate on the final hop, a LIMIT, and an
	// age projection.
	ClassFriends
	// ClassUpdate is a U-flavored update transaction: a property rewrite or
	// an edge insert.
	ClassUpdate
	// NumQueryClasses sizes per-class arrays.
	NumQueryClasses
)

// String names the class in reports.
func (c QueryClass) String() string {
	switch c {
	case ClassShort:
		return "short-read"
	case ClassFriends:
		return "2hop-friends"
	case ClassUpdate:
		return "update"
	default:
		return fmt.Sprintf("QueryClass(%d)", int(c))
	}
}

// LDBCConfig parameterizes one interactive-mix run.
type LDBCConfig struct {
	// Workers and OpsPerWorker shape the closed loop exactly as RunConfig
	// does.
	Workers      int
	OpsPerWorker int
	// KeySpace is the loaded graph's appID range.
	KeySpace uint64
	// Seed reproduces the run.
	Seed int64
	// ZipfS, when positive, skews query roots (rank 0 hottest).
	ZipfS float64
	// Weights are the relative class frequencies; zero means the LDBC-ish
	// default 70/20/10 (interactive mixes are read-dominated with a thin
	// update stream).
	Weights [NumQueryClasses]int
	// FriendLimit caps each 2-hop result (SNB's LIMIT 20 when zero).
	FriendLimit int
	// AgeOver is the friend-of-friend predicate: friends-of-friends with
	// age >= AgeOver.
	AgeOver uint64
	// InsertBase offsets fresh appIDs clear of earlier runs.
	InsertBase uint64
	// Naive runs the 2-hop class through the per-vertex reference walk
	// instead of the compiled frontier-batched plan — the ablation baseline.
	Naive bool
}

// LDBCResult reports one run with per-class accounting.
type LDBCResult struct {
	Workers  int
	Ops      int64
	Failed   int64
	Rows     int64 // total 2-hop rows returned — proof the queries did work
	Elapsed  time.Duration
	PerClass [NumQueryClasses]*stats.Histogram
}

// QPS returns the successful-query throughput.
func (r LDBCResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops-r.Failed) / r.Elapsed.Seconds()
}

// FailedFraction returns the failed-transaction fraction.
func (r LDBCResult) FailedFraction() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Failed) / float64(r.Ops)
}

// pickClass draws one class from the weight vector.
func pickClass(weights [NumQueryClasses]int, rng *rand.Rand) QueryClass {
	total := 0
	for _, w := range weights {
		total += w
	}
	r, acc := rng.Intn(total), 0
	for c := QueryClass(0); c < NumQueryClasses; c++ {
		acc += weights[c]
		if r < acc {
			return c
		}
	}
	return ClassShort
}

// friendPattern builds the IC-flavored 2-hop pattern: expand KNOWS-shaped
// edges both directions, keep final-hop vertices with age >= over, order
// canonically, cut to limit, and project the age property.
func friendPattern(db *gdi.Database, sch kron.Schema, over uint64, limit int) *query.Pattern {
	cons := constraint.New(db.Engine().Registry(0))
	i := cons.AddSubconstraint(constraint.Subconstraint{})
	cons.AddPropCond(i, constraint.PropCond{
		PType:    sch.AgeProp,
		Datatype: gdi.TypeUint64,
		Op:       constraint.OpGe,
		Operand:  gdi.Uint64Value(over),
	})
	return &query.Pattern{
		Kind: query.KHop,
		Hops: []query.Hop{
			{Mask: gdi.MaskAll},
			{Mask: gdi.MaskAll, Cons: cons},
		},
		Limit:      limit,
		Project:    sch.AgeProp,
		HasProject: true,
	}
}

// RunLDBC drives cfg.Workers concurrent sessions of the interactive mix
// against db and aggregates per-class latency.
func RunLDBC(db *gdi.Database, sch kron.Schema, cfg LDBCConfig) (LDBCResult, error) {
	if cfg.Workers <= 0 || cfg.OpsPerWorker <= 0 || cfg.KeySpace == 0 {
		return LDBCResult{}, fmt.Errorf("workload: bad LDBC config %+v", cfg)
	}
	if cfg.Weights == ([NumQueryClasses]int{}) {
		cfg.Weights = [NumQueryClasses]int{ClassShort: 70, ClassFriends: 20, ClassUpdate: 10}
	}
	if cfg.FriendLimit == 0 {
		cfg.FriendLimit = 20
	}
	res := LDBCResult{Workers: cfg.Workers}
	for i := range res.PerClass {
		res.PerClass[i] = &stats.Histogram{}
	}
	perWorker := make([][NumQueryClasses]*stats.Histogram, cfg.Workers)
	for w := range perWorker {
		for i := range perWorker[w] {
			perWorker[w][i] = &stats.Histogram{}
		}
	}
	pattern := friendPattern(db, sch, cfg.AgeOver, cfg.FriendLimit)

	var zipf *Zipf
	if cfg.ZipfS > 0 {
		zipf = NewZipf(int(cfg.KeySpace), cfg.ZipfS)
	}
	pickKey := func(rng *rand.Rand) uint64 {
		if zipf == nil {
			return rng.Uint64() % cfg.KeySpace
		}
		return zipf.Sample(rng)
	}
	nextApp := func(w, i int) uint64 {
		return cfg.KeySpace + cfg.InsertBase + uint64(i)*uint64(cfg.Workers) + uint64(w) + 1
	}

	var issued, failed, rows, hardErrs atomic.Int64
	var firstErr atomic.Value
	size := db.Engine().Fabric().Size()

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := db.Process(gdi.Rank(w % size))
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			inserts := 0
			for i := 0; i < cfg.OpsPerWorker; i++ {
				class := pickClass(cfg.Weights, rng)
				app := pickKey(rng)
				t0 := time.Now()
				var err error
				switch class {
				case ClassShort:
					err = ldbcShortRead(p, sch, app)
				case ClassFriends:
					var n int
					n, err = ldbcFriends(p, pattern, app, cfg.Naive)
					rows.Add(int64(n))
				case ClassUpdate:
					app2 := pickKey(rng)
					if rng.Intn(2) == 0 {
						app = nextApp(w, inserts)
						inserts++
					}
					err = ldbcUpdate(p, sch, rng, app, app2)
				}
				issued.Add(1)
				perWorker[w][class].Observe(time.Since(t0))
				switch {
				case err == nil:
				case errors.Is(err, ErrTxFailed):
					failed.Add(1)
				default:
					hardErrs.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Ops = issued.Load()
	res.Failed = failed.Load()
	res.Rows = rows.Load()
	for w := range perWorker {
		for i := range perWorker[w] {
			res.PerClass[i].Merge(perWorker[w][i])
		}
	}
	if hardErrs.Load() > 0 {
		return res, fmt.Errorf("workload: %d hard errors, first: %v", hardErrs.Load(), firstErr.Load())
	}
	return res, nil
}

// ldbcShortRead is the IS-style point read: age and labels of one vertex.
func ldbcShortRead(p *gdi.Process, sch kron.Schema, app uint64) error {
	tx := p.StartTransaction(gdi.ReadOnly)
	defer tx.Abort()
	id, err := tx.TranslateVertexID(app)
	if err != nil {
		return mapErr(err)
	}
	h, err := tx.AssociateVertex(id)
	if err != nil {
		return mapErr(err)
	}
	h.Property(sch.AgeProp)
	h.Labels()
	return mapErr(tx.Commit())
}

// ldbcFriends is the IC-style 2-hop friend-of-friend query, compiled or
// naive. It returns the row count so the driver can prove the run did real
// pattern matching.
func ldbcFriends(p *gdi.Process, pattern *query.Pattern, app uint64, naive bool) (int, error) {
	tx := p.StartTransaction(gdi.ReadOnly)
	defer tx.Abort()
	id, err := tx.TranslateVertexID(app)
	if err != nil {
		return 0, mapErr(err)
	}
	var res *query.Result
	if naive {
		res, err = query.RunNaive(tx, id, pattern)
	} else {
		res, err = query.Run(tx, id, pattern)
	}
	if err != nil {
		return 0, mapErr(err)
	}
	if err := tx.Commit(); err != nil {
		return 0, mapErr(err)
	}
	return len(res.Rows), nil
}

// ldbcUpdate is the U-style update transaction: an age rewrite on an
// existing vertex, or (for fresh appIDs above the key space) a vertex
// insert wired to app2 by one edge.
func ldbcUpdate(p *gdi.Process, sch kron.Schema, rng *rand.Rand, app, app2 uint64) error {
	tx := p.StartTransaction(gdi.ReadWrite)
	defer tx.Abort()
	id, err := tx.TranslateVertexID(app)
	if errors.Is(err, gdi.ErrNotFound) {
		// Fresh appID: the person-insert shape.
		if id, err = tx.CreateVertex(app); err != nil {
			return mapErr(err)
		}
		h, err := tx.AssociateVertex(id)
		if err != nil {
			return mapErr(err)
		}
		if len(sch.Labels) > 0 {
			if err := h.AddLabel(sch.Labels[0]); err != nil {
				return mapErr(err)
			}
		}
		if err := h.SetProperty(sch.AgeProp, gdi.Uint64Value(rng.Uint64()%100)); err != nil {
			return mapErr(err)
		}
		to, err := tx.TranslateVertexID(app2)
		if err != nil {
			return mapErr(err)
		}
		if _, err := tx.CreateEdge(id, to, gdi.DirOut, 0); err != nil {
			return mapErr(err)
		}
		return mapErr(tx.Commit())
	}
	if err != nil {
		return mapErr(err)
	}
	h, err := tx.AssociateVertex(id)
	if err != nil {
		return mapErr(err)
	}
	if err := h.SetProperty(sch.AgeProp, gdi.Uint64Value(rng.Uint64()%100)); err != nil {
		return mapErr(err)
	}
	return mapErr(tx.Commit())
}
