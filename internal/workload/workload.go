// Package workload implements the OLTP evaluation driver of §6.4: the four
// operation mixes of Table 3 (Read Mostly, Read Intensive, Write Intensive,
// LinkBench), per-operation latency histograms (Figure 5), throughput and
// failed-transaction accounting (Figure 4), and a System abstraction so the
// identical driver stresses GDA and the comparison baselines.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gdi-go/gdi/internal/stats"
)

// Op enumerates the seven LinkBench-derived operation types of Table 3 and
// Figure 5.
type Op int

// Operation kinds, in Figure 5's order.
const (
	OpGetProps   Op = iota // retrieve vertex (properties)
	OpAddVertex            // insert vertex
	OpDelVertex            // delete vertex
	OpUpdProp              // update vertex
	OpCountEdges           // count edges
	OpGetEdges             // retrieve edges
	OpAddEdge              // add edges
	NumOps
)

// String names the operation as in Figure 5.
func (o Op) String() string {
	switch o {
	case OpGetProps:
		return "retrieve vertex"
	case OpAddVertex:
		return "insert vertex"
	case OpDelVertex:
		return "delete vertex"
	case OpUpdProp:
		return "update vertex"
	case OpCountEdges:
		return "count edges"
	case OpGetEdges:
		return "retrieve edges"
	case OpAddEdge:
		return "add edges"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Mix is one Table 3 workload: per-operation fractions summing to 1.
type Mix struct {
	Name    string
	Weights [NumOps]float64
}

// The four mixes of Table 3, with the paper's exact fractions.
var (
	// ReadMostly: 99.8% reads ("RM" [80]).
	ReadMostly = Mix{Name: "read mostly", Weights: [NumOps]float64{
		OpGetProps: 0.288, OpCountEdges: 0.117, OpGetEdges: 0.593,
		OpAddEdge: 0.002,
	}}
	// ReadIntensive: 75% reads ("RI" [80]).
	ReadIntensive = Mix{Name: "read intensive", Weights: [NumOps]float64{
		OpGetProps: 0.217, OpCountEdges: 0.088, OpGetEdges: 0.445,
		OpAddEdge: 0.25,
	}}
	// WriteIntensive: 80% updates ("WI" [63]).
	WriteIntensive = Mix{Name: "write intensive", Weights: [NumOps]float64{
		OpGetProps: 0.091, OpGetEdges: 0.109,
		OpAddVertex: 0.2, OpDelVertex: 0.067, OpUpdProp: 0.133, OpAddEdge: 0.4,
	}}
	// LinkBench: the Facebook social-graph mix ("LB" [16]).
	LinkBench = Mix{Name: "LinkBench", Weights: [NumOps]float64{
		OpGetProps: 0.129, OpCountEdges: 0.049, OpGetEdges: 0.512,
		OpAddVertex: 0.026, OpDelVertex: 0.01, OpUpdProp: 0.074, OpAddEdge: 0.2,
	}}
	// Mixes lists all Table 3 workloads.
	Mixes = []Mix{ReadMostly, ReadIntensive, WriteIntensive, LinkBench}
)

// ReadFraction returns the mix's total read weight.
func (m Mix) ReadFraction() float64 {
	return m.Weights[OpGetProps] + m.Weights[OpCountEdges] + m.Weights[OpGetEdges]
}

// pick samples an operation according to the weights.
func (m Mix) pick(rng *rand.Rand) Op {
	r := rng.Float64()
	acc := 0.0
	for op := Op(0); op < NumOps; op++ {
		acc += m.Weights[op]
		if r < acc {
			return op
		}
	}
	return OpGetProps
}

// ErrTxFailed marks a failed (aborted) transaction: the op counts towards
// the failed-transaction percentage, as in Figure 4.
var ErrTxFailed = errors.New("workload: transaction failed")

// Client is one worker's session against a system under test. Clients are
// single-goroutine; systems hand out one per worker.
type Client interface {
	// Do executes one operation against vertex app (and app2 for AddEdge).
	// It returns nil on success (including not-found no-ops), ErrTxFailed
	// for aborted transactions, or another error for real faults.
	Do(op Op, app, app2 uint64) error
}

// System is a database under OLTP test.
type System interface {
	Name() string
	// NewClient returns worker w's session; w < Workers passed to Run.
	NewClient(w int) Client
}

// RunConfig parameterizes one OLTP run.
type RunConfig struct {
	Mix Mix
	// Workers is the number of concurrent client sessions (one per rank in
	// the paper's setting).
	Workers int
	// OpsPerWorker is the number of operations each session issues.
	OpsPerWorker int
	// KeySpace is the initial appID range to draw vertices from.
	KeySpace uint64
	// Seed makes runs reproducible.
	Seed int64
	// ZipfS, when positive, draws operation keys from a Zipf distribution
	// with this exponent instead of uniformly (rank 0 hottest). The sampler
	// is seeded through each worker's rng, so runs stay reproducible.
	ZipfS float64
	// ZipfWorkerHot gives every worker its own hot set (WorkerKey): the
	// worker-affine skew a workload-aware rebalancer converts into local
	// accesses. With it false all workers share one global hot ranking.
	ZipfWorkerHot bool
	// InsertBase offsets the fresh appIDs AddVertex draws (above KeySpace).
	// A driver chaining several runs against one database (e.g. a heat
	// warmup before a measured run) advances it so the runs' inserts cannot
	// collide on appIDs.
	InsertBase uint64
	// ThinkNs, when positive, makes the run open-loop: each worker sleeps
	// this long between operations, modeling a fixed client arrival rate
	// instead of the default closed-loop saturation. HTAP experiments use
	// it so served QPS under concurrent analytics is comparable against an
	// analytics-free run at the same offered load.
	ThinkNs int64
}

// Result reports one run.
type Result struct {
	System  string
	Mix     string
	Workers int
	// Ops counts the operations actually issued: a worker that exits early
	// on a hard error contributes only what it ran, so QPS is not inflated
	// by operations that never happened.
	Ops     int64
	Failed  int64
	Elapsed time.Duration
	PerOp   [NumOps]*stats.Histogram
}

// QPS returns the successful-operation throughput.
func (r Result) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops-r.Failed) / r.Elapsed.Seconds()
}

// FailedFraction returns the failed-transaction fraction of Figure 4.
func (r Result) FailedFraction() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Failed) / float64(r.Ops)
}

// Run drives cfg.Workers concurrent sessions against sys and aggregates
// throughput, failure counts, and per-op latency histograms.
func Run(sys System, cfg RunConfig) (Result, error) {
	if cfg.Workers <= 0 || cfg.OpsPerWorker <= 0 {
		return Result{}, fmt.Errorf("workload: bad config %+v", cfg)
	}
	res := Result{System: sys.Name(), Mix: cfg.Mix.Name, Workers: cfg.Workers}
	for i := range res.PerOp {
		res.PerOp[i] = &stats.Histogram{}
	}
	perWorker := make([][NumOps]*stats.Histogram, cfg.Workers)
	for w := range perWorker {
		for i := range perWorker[w] {
			perWorker[w][i] = &stats.Histogram{}
		}
	}
	var issued, failed, hardErrs atomic.Int64
	var firstErr atomic.Value

	// Fresh appIDs for inserts: disjoint per worker, above the key space
	// (plus the caller's base for chained runs).
	nextApp := func(w, i int) uint64 {
		return cfg.KeySpace + cfg.InsertBase + uint64(i)*uint64(cfg.Workers) + uint64(w) + 1
	}
	var zipf *Zipf
	if cfg.ZipfS > 0 {
		zipf = NewZipf(int(cfg.KeySpace), cfg.ZipfS)
	}
	pickKey := func(w int, rng *rand.Rand) uint64 {
		if zipf == nil {
			return rng.Uint64() % cfg.KeySpace
		}
		k := zipf.Sample(rng)
		if cfg.ZipfWorkerHot {
			return WorkerKey(k, w, cfg.Workers, cfg.KeySpace)
		}
		return k
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := sys.NewClient(w)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			inserts := 0
			for i := 0; i < cfg.OpsPerWorker; i++ {
				op := cfg.Mix.pick(rng)
				app := pickKey(w, rng)
				app2 := pickKey(w, rng)
				if op == OpAddVertex {
					app = nextApp(w, inserts)
					inserts++
				}
				t0 := time.Now()
				err := client.Do(op, app, app2)
				issued.Add(1)
				perWorker[w][op].Observe(time.Since(t0))
				switch {
				case err == nil:
				case errors.Is(err, ErrTxFailed):
					failed.Add(1)
				default:
					hardErrs.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if cfg.ThinkNs > 0 {
					time.Sleep(time.Duration(cfg.ThinkNs))
				}
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Failed = failed.Load()
	res.Ops = issued.Load()
	for w := range perWorker {
		for i := range perWorker[w] {
			res.PerOp[i].Merge(perWorker[w][i])
		}
	}
	if hardErrs.Load() > 0 {
		return res, fmt.Errorf("workload: %d hard errors, first: %v", hardErrs.Load(), firstErr.Load())
	}
	return res, nil
}
