package workload

import (
	"testing"

	gdi "github.com/gdi-go/gdi"
	"github.com/gdi-go/gdi/internal/kron"
)

func newLDBCDatabase(t *testing.T) (*gdi.Runtime, *gdi.Database, kron.Config, kron.Schema) {
	t.Helper()
	cfg := kron.Config{Scale: 8, EdgeFactor: 8, Seed: 3, NumLabels: 20, NumProps: 13}.WithDefaults()
	rt := gdi.Init(4)
	db := rt.CreateDatabase(gdi.DatabaseParams{
		BlockSize:       512,
		BlocksPerRank:   int((cfg.NumVertices()*10+cfg.NumEdges()*2)/4) + (1 << 13),
		CacheBlocks:     true,
		OptimisticReads: true,
	})
	sch, err := kron.DefineSchema(db.Engine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadGDA(rt, db, cfg, sch); err != nil {
		t.Fatal(err)
	}
	return rt, db, cfg, sch
}

// TestRunLDBCMix smoke-runs the interactive mix and checks the per-class
// accounting adds up: every class ran, 2-hop queries returned rows, and the
// compiled and naive plans agree on the total row count at the same seed.
func TestRunLDBCMix(t *testing.T) {
	_, db, cfg, sch := newLDBCDatabase(t)
	base := LDBCConfig{
		Workers:      4,
		OpsPerWorker: 100,
		KeySpace:     cfg.NumVertices(),
		Seed:         11,
		ZipfS:        0.6,
		AgeOver:      30,
	}
	res, err := RunLDBC(db, sch, base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 400 {
		t.Fatalf("Ops = %d, want 400", res.Ops)
	}
	var perClass int64
	for c := QueryClass(0); c < NumQueryClasses; c++ {
		n := res.PerClass[c].Count()
		if n == 0 {
			t.Errorf("class %s never ran", c)
		}
		perClass += n
	}
	if perClass != res.Ops {
		t.Fatalf("per-class counts sum to %d, want %d", perClass, res.Ops)
	}
	if res.Rows == 0 {
		t.Fatal("2-hop queries returned no rows")
	}

	// The same seed with the naive plan must do the same logical work.
	// Friends-only weights keep the comparison runs read-only, so the first
	// run cannot mutate the graph out from under the second.
	cfgC, cfgN := base, base
	cfgC.Seed, cfgN.Seed = 99, 99
	cfgC.Weights = [NumQueryClasses]int{ClassFriends: 100}
	cfgN.Weights = cfgC.Weights
	cfgN.Naive = true
	resC, err := RunLDBC(db, sch, cfgC)
	if err != nil {
		t.Fatal(err)
	}
	resN, err := RunLDBC(db, sch, cfgN)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Rows != resN.Rows {
		t.Fatalf("compiled plan returned %d rows, naive %d — plans diverge", resC.Rows, resN.Rows)
	}
}

// TestPickClassWeights pins the weight semantics: a zeroed class never runs.
func TestPickClassWeights(t *testing.T) {
	_, db, cfg, sch := newLDBCDatabase(t)
	res, err := RunLDBC(db, sch, LDBCConfig{
		Workers:      2,
		OpsPerWorker: 50,
		KeySpace:     cfg.NumVertices(),
		Seed:         5,
		Weights:      [NumQueryClasses]int{ClassShort: 1, ClassFriends: 0, ClassUpdate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.PerClass[ClassFriends].Count(); n != 0 {
		t.Fatalf("zero-weight class ran %d times", n)
	}
	if res.Rows != 0 {
		t.Fatalf("rows = %d without any 2-hop queries", res.Rows)
	}
}
